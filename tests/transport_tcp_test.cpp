#include <gtest/gtest.h>

#include <memory>

#include "arnet/net/loss.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/tcp.hpp"
#include "arnet/transport/udp.hpp"

namespace arnet::transport {
namespace {

using net::Link;
using net::Network;
using net::NodeId;
using sim::milliseconds;
using sim::seconds;

/// Client <-> server through a single duplex bottleneck.
struct Dumbbell {
  sim::Simulator sim;
  Network net{sim, 42};
  NodeId client, server;
  Link* up;    // client -> server
  Link* down;  // server -> client

  Dumbbell(double up_bps, double down_bps, sim::Time delay, std::size_t queue_pkts,
           double up_loss = 0.0) {
    client = net.add_node("client");
    server = net.add_node("server");
    Link::Config cu;
    cu.rate_bps = up_bps;
    cu.delay = delay;
    cu.queue_packets = queue_pkts;
    if (up_loss > 0) cu.loss = std::make_unique<net::BernoulliLoss>(up_loss);
    Link::Config cd;
    cd.rate_bps = down_bps;
    cd.delay = delay;
    cd.queue_packets = queue_pkts;
    auto [l1, l2] = net.connect(client, server, std::move(cu), std::move(cd));
    up = l1;
    down = l2;
  }
};

TEST(Tcp, BulkTransferCompletes) {
  Dumbbell d(10e6, 10e6, milliseconds(10), 100);
  TcpSink sink(d.net, d.server, 80);
  TcpSource src(d.net, d.client, 1000, d.server, 80, 1);
  bool done = false;
  src.set_on_complete([&] { done = true; });
  src.send(1'000'000);
  d.sim.run_until(seconds(30));
  EXPECT_TRUE(done);
  EXPECT_TRUE(src.complete());
  EXPECT_EQ(sink.received_bytes(), 1'000'000);
}

TEST(Tcp, ThroughputApproachesLinkRate) {
  Dumbbell d(10e6, 10e6, milliseconds(10), 100);
  TcpSink sink(d.net, d.server, 80);
  TcpSource src(d.net, d.client, 1000, d.server, 80, 1);
  src.send_forever();
  d.sim.run_until(seconds(10));
  double mbps = static_cast<double>(sink.received_bytes()) * 8.0 / 10.0 / 1e6;
  EXPECT_GT(mbps, 8.0);
  EXPECT_LE(mbps, 10.0);
}

TEST(Tcp, SlowStartDoublesPerRtt) {
  Dumbbell d(100e6, 100e6, milliseconds(50), 10000);
  TcpSink sink(d.net, d.server, 80);
  TcpSource::Config cfg;
  cfg.trace_cwnd = true;
  TcpSource src(d.net, d.client, 1000, d.server, 80, 1, cfg);
  src.send_forever();
  // After ~5 RTTs (500 ms) of slow start cwnd should have grown
  // exponentially: 2 -> ~64 segments, far beyond linear growth.
  d.sim.run_until(milliseconds(520));
  EXPECT_GT(src.cwnd_bytes(), 30.0 * 1460);
}

TEST(Tcp, LossTriggersFastRetransmitNotTimeout) {
  Dumbbell d(10e6, 10e6, milliseconds(10), 1000, /*up_loss=*/0.01);
  TcpSink sink(d.net, d.server, 80);
  TcpSource src(d.net, d.client, 1000, d.server, 80, 1);
  src.send_forever();
  d.sim.run_until(seconds(10));
  EXPECT_GT(src.fast_retransmits(), 0);
  // With 1% loss and dupack recovery, timeouts should be rare.
  EXPECT_LT(src.timeouts(), src.fast_retransmits());
  // Transfer still makes solid progress.
  EXPECT_GT(sink.received_bytes(), 2'000'000);
}

TEST(Tcp, SawtoothUnderPeriodicLoss) {
  Dumbbell d(10e6, 10e6, milliseconds(20), 50);
  TcpSink sink(d.net, d.server, 80);
  TcpSource::Config cfg;
  cfg.trace_cwnd = true;
  TcpSource src(d.net, d.client, 1000, d.server, 80, 1, cfg);
  src.send_forever();
  d.sim.run_until(seconds(20));
  // Queue overflow losses must have produced multiplicative decreases: the
  // cwnd trace has at least a few drops of >= 30%.
  const auto& pts = src.cwnd_trace().points();
  int big_drops = 0;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].second < 0.7 * pts[i - 1].second) ++big_drops;
  }
  EXPECT_GE(big_drops, 3);
}

TEST(Tcp, RtoFiresAndBacksOffOnBlackout) {
  Dumbbell d(10e6, 10e6, milliseconds(10), 100);
  TcpSink sink(d.net, d.server, 80);
  TcpSource src(d.net, d.client, 1000, d.server, 80, 1);
  src.send_forever();
  d.sim.run_until(seconds(2));
  EXPECT_GT(sink.received_bytes(), 0);
  d.up->set_up(false);
  d.sim.run_until(seconds(12));
  EXPECT_GE(src.timeouts(), 2);
  std::int64_t before = sink.received_bytes();
  d.up->set_up(true);
  d.sim.run_until(seconds(25));
  EXPECT_GT(sink.received_bytes(), before);  // recovers after blackout
}

TEST(Tcp, SrttConvergesToPathRtt) {
  Dumbbell d(50e6, 50e6, milliseconds(30), 1000);
  TcpSink sink(d.net, d.server, 80);
  TcpSource src(d.net, d.client, 1000, d.server, 80, 1);
  src.send(200'000);
  d.sim.run_until(seconds(5));
  // Path RTT is 60 ms + small serialization; srtt must be in that vicinity.
  EXPECT_GT(src.srtt(), milliseconds(55));
  EXPECT_LT(src.srtt(), milliseconds(90));
}

TEST(Tcp, TwoFlowsShareBottleneckRoughlyFairly) {
  Dumbbell d(10e6, 10e6, milliseconds(20), 60);
  TcpSink sink1(d.net, d.server, 80);
  TcpSink sink2(d.net, d.server, 81);
  TcpSource src1(d.net, d.client, 1000, d.server, 80, 1);
  TcpSource src2(d.net, d.client, 1001, d.server, 81, 2);
  src1.send_forever();
  src2.send_forever();
  d.sim.run_until(seconds(30));
  double r1 = static_cast<double>(sink1.received_bytes());
  double r2 = static_cast<double>(sink2.received_bytes());
  EXPECT_GT(r1 / r2, 0.4);
  EXPECT_LT(r1 / r2, 2.5);
  // Together they should saturate the link.
  EXPECT_GT((r1 + r2) * 8.0 / 30.0 / 1e6, 8.0);
}

TEST(Tcp, DelayedAckStillCompletes) {
  Dumbbell d(10e6, 10e6, milliseconds(10), 100);
  TcpSink::Config scfg;
  scfg.delayed_ack = true;
  TcpSink sink(d.net, d.server, 80, scfg);
  TcpSource src(d.net, d.client, 1000, d.server, 80, 1);
  bool done = false;
  src.set_on_complete([&] { done = true; });
  src.send(500'000);
  d.sim.run_until(seconds(30));
  EXPECT_TRUE(done);
  EXPECT_EQ(sink.received_bytes(), 500'000);
}

TEST(Tcp, ShortTransferWithPartialSegment) {
  Dumbbell d(10e6, 10e6, milliseconds(5), 100);
  TcpSink sink(d.net, d.server, 80);
  TcpSource src(d.net, d.client, 1000, d.server, 80, 1);
  src.send(2000);  // 1 full + 1 partial segment
  d.sim.run_until(seconds(5));
  EXPECT_TRUE(src.complete());
  EXPECT_EQ(sink.received_bytes(), 2000);
}

TEST(Tcp, UploadInflatesDownloadLatency) {
  // Precursor of Fig. 3: an upload filling an oversized uplink buffer delays
  // the download's ACKs and collapses its throughput.
  Dumbbell d(/*up*/ 1e6, /*down*/ 8e6, milliseconds(10), /*oversized*/ 1000);
  // Download: server -> client.
  TcpSink down_sink(d.net, d.client, 80);
  TcpSource down_src(d.net, d.server, 1000, d.client, 80, 1);
  down_src.send_forever();
  d.sim.run_until(seconds(8));
  double solo_mbps = static_cast<double>(down_sink.received_bytes()) * 8.0 / 8.0 / 1e6;

  // Now add an upload sharing the uplink with the download's ACKs.
  TcpSink up_sink(d.net, d.server, 81);
  TcpSource up_src(d.net, d.client, 1001, d.server, 81, 2);
  up_src.send_forever();
  std::int64_t mark = down_sink.received_bytes();
  d.sim.run_until(seconds(28));
  double shared_mbps = static_cast<double>(down_sink.received_bytes() - mark) * 8.0 / 20.0 / 1e6;

  EXPECT_GT(solo_mbps, 6.0);                    // solo download near link rate
  EXPECT_LT(shared_mbps, 0.55 * solo_mbps);     // collapses once upload starts
}

TEST(Udp, CbrSourcePacesAtConfiguredRate) {
  Dumbbell d(100e6, 100e6, milliseconds(1), 1000);
  UdpEndpoint server(d.net, d.server, 90);
  std::int64_t bytes = 0;
  server.set_handler([&](net::Packet&& p) { bytes += p.size_bytes; });
  CbrSource::Config cfg;
  cfg.rate_bps = 2e6;
  cfg.payload_bytes = 972;
  CbrSource cbr(d.net, d.client, 91, d.server, 90, cfg);
  cbr.start();
  d.sim.run_until(seconds(10));
  double mbps = static_cast<double>(bytes) * 8.0 / 10.0 / 1e6;
  EXPECT_NEAR(mbps, 2.0, 0.1);
}

}  // namespace
}  // namespace arnet::transport
