#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "arnet/net/link.hpp"
#include "arnet/net/network.hpp"
#include "arnet/net/obs_tap.hpp"
#include "arnet/obs/export.hpp"
#include "arnet/obs/metrics.hpp"
#include "arnet/obs/recorder.hpp"
#include "arnet/obs/registry.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/transport/tcp.hpp"
#include "arnet/wireless/wifi.hpp"

namespace arnet {
namespace {

using sim::milliseconds;
using sim::seconds;

// ------------------------------------------------------------- primitives

TEST(ObsCounter, AddAndMerge) {
  obs::Counter a, b;
  a.add();
  a.add(41);
  EXPECT_EQ(a.value(), 42);
  b.add(8);
  a.merge(b);
  EXPECT_EQ(a.value(), 50);
}

TEST(ObsGauge, LatestWinsOnMerge) {
  obs::Gauge a, b;
  EXPECT_FALSE(a.has_value());
  a.set(1.5);
  EXPECT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a.value(), 1.5);
  b.set(7.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 7.0);
  obs::Gauge unset;
  a.merge(unset);  // merging an unset gauge keeps the current value
  EXPECT_DOUBLE_EQ(a.value(), 7.0);
}

TEST(ObsHistogram, ExactForMinMaxMeanCount) {
  obs::Histogram h;
  for (double v : {3.0, 11.0, 250.0, 0.4}) h.record(v);
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.min(), 0.4);
  EXPECT_DOUBLE_EQ(h.max(), 250.0);
  EXPECT_DOUBLE_EQ(h.mean(), (3.0 + 11.0 + 250.0 + 0.4) / 4.0);
}

TEST(ObsHistogram, PercentilesTrackExactQuantiles) {
  // Log-bucketed at 16 buckets/decade the relative error per bucket is
  // 10^(1/16)-1 ~ 15.5%; allow a bit over that for interpolation effects.
  obs::Histogram h;
  sim::Samples exact;
  sim::Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    double v = rng.exponential(40.0) + rng.uniform(0.1, 2.0);
    h.record(v);
    exact.add(v);
  }
  for (double p : {0.5, 0.9, 0.99}) {
    double want = exact.percentile(p);
    double got = h.percentile(p);
    EXPECT_NEAR(got, want, 0.18 * want) << "p=" << p;
  }
  // Edge percentiles are bucket-interpolated too, but clamp to the exact
  // tracked extremes so they can never leave the observed range.
  EXPECT_GE(h.percentile(0.0), exact.min());
  EXPECT_LE(h.percentile(1.0), exact.max());
  EXPECT_NEAR(h.percentile(1.0), exact.max(), 0.18 * exact.max());
}

TEST(ObsHistogram, MergeEqualsRecordingIntoOne) {
  obs::Histogram a, b, all;
  sim::Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    double v = rng.uniform(0.5, 900.0);
    (i % 2 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.p50(), all.p50());
  EXPECT_DOUBLE_EQ(a.p99(), all.p99());
}

// Property-style cross-shard check: shard a stream of observations, merge
// the shards in two different orders, and require state identical to
// recording the whole stream into one histogram. Integer-valued samples make
// double addition exact, so even `sum` must match bit-for-bit regardless of
// merge order — the invariant behind byte-identical serial/parallel sweeps.
TEST(ObsHistogram, ShardMergeIsOrderIndependentAndExact) {
  constexpr int kShards = 5;
  obs::Histogram shards_a[kShards], shards_b[kShards], all;
  sim::Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    const double v = static_cast<double>(rng.uniform_int(1, 1 << 20));
    const auto trace = static_cast<std::uint32_t>(rng.uniform_int(1, 1 << 30));
    shards_a[i % kShards].record(v, trace);
    shards_b[i % kShards].record(v, trace);
    all.record(v, trace);
  }
  obs::Histogram fwd, rev;
  for (int s = 0; s < kShards; ++s) fwd.merge(shards_a[s]);
  for (int s = kShards - 1; s >= 0; --s) rev.merge(shards_b[s]);

  for (const obs::Histogram* m : {&fwd, &rev}) {
    EXPECT_EQ(m->count(), all.count());
    EXPECT_EQ(m->sum(), all.sum());  // bitwise: integer sums are exact
    EXPECT_EQ(m->min(), all.min());
    EXPECT_EQ(m->max(), all.max());
    EXPECT_EQ(m->nonzero_buckets(), all.nonzero_buckets());
    ASSERT_EQ(m->exemplars().size(), all.exemplars().size());
    auto it = all.exemplars().begin();
    for (const auto& [bucket, ex] : m->exemplars()) {
      EXPECT_EQ(bucket, it->first);
      EXPECT_EQ(ex.trace_id, it->second.trace_id);
      EXPECT_EQ(ex.value, it->second.value);
      ++it;
    }
  }
}

TEST(ObsHistogram, ExemplarKeepsMaxValueTiesToLowerTraceId) {
  obs::Histogram h;
  h.record(10.0, 7);
  h.record(10.5, 9);   // same bucket, larger value: replaces
  h.record(10.2, 3);   // smaller value: ignored
  ASSERT_EQ(h.exemplars().size(), 1u);
  const auto& ex = h.exemplars().begin()->second;
  EXPECT_EQ(ex.trace_id, 9u);
  EXPECT_DOUBLE_EQ(ex.value, 10.5);

  obs::Histogram tie;
  tie.record(10.5, 12);
  obs::Histogram merged_a = h;  // NOLINT: Histogram is copyable state
  merged_a.merge(tie);
  // Equal values tie-break toward the lower trace id, whichever merge side
  // it lives on — the rule that keeps cross-shard merges commutative.
  EXPECT_EQ(merged_a.exemplars().begin()->second.trace_id, 9u);
  obs::Histogram merged_b = tie;
  merged_b.merge(h);
  EXPECT_EQ(merged_b.exemplars().begin()->second.trace_id, 9u);

  obs::Histogram untraced;
  untraced.record(99.0);  // trace 0: never becomes an exemplar
  EXPECT_TRUE(untraced.exemplars().empty());
}

TEST(ObsRegistry, CreateOnTouchAndMergeSemantics) {
  obs::MetricsRegistry a, b;
  a.counter("pkts", "link:0").add(10);
  b.counter("pkts", "link:0").add(5);
  b.counter("pkts", "link:1").add(3);
  a.gauge("util", "link:0").set(0.25);
  b.gauge("util", "link:0").set(0.75);
  a.histogram("delay", "flow:1").record(4.0);
  b.histogram("delay", "flow:1").record(6.0);
  a.recorder().record("rate", "x", seconds(1), 1.0);
  b.recorder().record("rate", "x", seconds(2), 2.0);

  a.merge_from(b);
  EXPECT_EQ(a.find_counter("pkts", "link:0")->value(), 15);
  EXPECT_EQ(a.find_counter("pkts", "link:1")->value(), 3);
  EXPECT_DOUBLE_EQ(a.find_gauge("util", "link:0")->value(), 0.75);
  EXPECT_EQ(a.find_histogram("delay", "flow:1")->count(), 2);
  ASSERT_NE(a.recorder().find("rate", "x"), nullptr);
  EXPECT_EQ(a.recorder().find("rate", "x")->points().size(), 2u);
}

// --------------------------------------------------------------- exporter

TEST(ObsExport, JsonlRoundTripIsLossless) {
  obs::MetricsRegistry reg;
  reg.counter("pkts", "link:\"up\"").add(12345678901LL);  // quote in entity
  reg.gauge("util", "link:0").set(0.123456789012345678);
  auto& h = reg.histogram("delay_ms", "flow:1");
  sim::Rng rng(99);
  for (int i = 0; i < 300; ++i) h.record(rng.exponential(25.0));
  reg.recorder().record("rate", "app:video", milliseconds(1500), 3.25);
  reg.recorder().record("rate", "app:video", milliseconds(2500), 1e-17);

  std::stringstream ss;
  obs::write_jsonl(reg, ss);
  obs::MetricsRegistry back;
  ASSERT_TRUE(obs::read_jsonl(ss, back));

  ASSERT_NE(back.find_counter("pkts", "link:\"up\""), nullptr);
  EXPECT_EQ(back.find_counter("pkts", "link:\"up\"")->value(), 12345678901LL);
  ASSERT_NE(back.find_gauge("util", "link:0"), nullptr);
  EXPECT_DOUBLE_EQ(back.find_gauge("util", "link:0")->value(), 0.123456789012345678);
  const obs::Histogram* hb = back.find_histogram("delay_ms", "flow:1");
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->count(), h.count());
  EXPECT_DOUBLE_EQ(hb->mean(), h.mean());
  EXPECT_DOUBLE_EQ(hb->min(), h.min());
  EXPECT_DOUBLE_EQ(hb->max(), h.max());
  EXPECT_DOUBLE_EQ(hb->p50(), h.p50());
  EXPECT_DOUBLE_EQ(hb->p90(), h.p90());
  EXPECT_DOUBLE_EQ(hb->p99(), h.p99());
  const sim::TimeSeries* ts = back.recorder().find("rate", "app:video");
  ASSERT_NE(ts, nullptr);
  ASSERT_EQ(ts->points().size(), 2u);
  EXPECT_EQ(ts->points()[0].first, milliseconds(1500));
  EXPECT_DOUBLE_EQ(ts->points()[0].second, 3.25);
  EXPECT_DOUBLE_EQ(ts->points()[1].second, 1e-17);
}

// The v2 schema additions: a meta line announcing the version, the raw
// `sum` field (shortest-round-trip, so it restores bit-exactly — the
// mean*count reconstruction it replaced drifted by ULPs per merge), and
// per-bucket exemplars that survive the round trip.
TEST(ObsExport, V2MetaSumAndExemplarsRoundTrip) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("m2p_ms", "cell:a");
  sim::Rng rng(5);
  for (int i = 0; i < 257; ++i) {
    h.record(rng.exponential(33.0), static_cast<std::uint32_t>(i % 7));
  }
  std::stringstream ss;
  obs::write_jsonl(reg, ss);
  const std::string doc = ss.str();
  EXPECT_EQ(doc.find("{\"kind\":\"meta\",\"schema\":\"arnet-obs-v2\""), 0u);
  EXPECT_NE(doc.find("\"exemplars\""), std::string::npos);
  EXPECT_NE(doc.find("\"sum\""), std::string::npos);

  obs::MetricsRegistry back;
  std::stringstream in(doc);
  ASSERT_TRUE(obs::read_jsonl(in, back));
  const obs::Histogram* hb = back.find_histogram("m2p_ms", "cell:a");
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->count(), h.count());
  EXPECT_EQ(hb->sum(), h.sum());  // bitwise, not approximate
  EXPECT_EQ(hb->mean(), h.mean());
  ASSERT_EQ(hb->exemplars().size(), h.exemplars().size());
  auto it = h.exemplars().begin();
  for (const auto& [bucket, ex] : hb->exemplars()) {
    EXPECT_EQ(bucket, it->first);
    EXPECT_EQ(ex.trace_id, it->second.trace_id);
    EXPECT_EQ(ex.value, it->second.value);
    ++it;
  }
}

TEST(ObsExport, ReadRejectsMalformedLines) {
  obs::MetricsRegistry reg;
  std::stringstream ss("{\"kind\":\"counter\",\"name\":\"x\"}\n");  // no entity/value
  EXPECT_FALSE(obs::read_jsonl(ss, reg));
  std::stringstream garbage("not json at all\n");
  EXPECT_FALSE(obs::read_jsonl(garbage, reg));
}

TEST(ObsExport, CsvHasHeaderAndOneRowPerPoint) {
  obs::TimeSeriesRecorder rec;
  rec.record("rate", "a", seconds(1), 1.5);
  rec.record("rate", "a", seconds(2), 2.5);
  rec.record("cwnd", "tcp", seconds(1), 10.0);
  std::stringstream ss;
  obs::write_csv(rec, ss);
  std::string line;
  int lines = 0;
  ASSERT_TRUE(std::getline(ss, line));
  EXPECT_EQ(line, "name,entity,t_ns,value");
  while (std::getline(ss, line)) ++lines;
  EXPECT_EQ(lines, 3);
}

// ------------------------------------------------------ subsystem wiring

TEST(ObsWiring, ObsTapAndLinkPublishNetworkBehavior) {
  sim::Simulator sim;
  net::Network net(sim, 1);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto [ab, ba] = net.connect(a, b, 1e6, milliseconds(5), 4);  // tiny queue
  (void)ba;
  obs::MetricsRegistry reg;
  ab->attach_obs(reg, "link:ab");
  net::ObsTap tap(net, reg);

  // Burst of 20 one-KB packets into a 4-packet queue: some deliver, some
  // tail-drop.
  for (int i = 0; i < 20; ++i) {
    net::Packet p;
    p.flow = 7;
    p.dst = b;
    p.dst_port = 80;
    p.size_bytes = 1000;
    net.node(a).send(std::move(p));
  }
  sim.run_until(seconds(2));

  const obs::Counter* injected = reg.find_counter("net.injected_packets", "net");
  const obs::Counter* delivered = reg.find_counter("net.delivered_packets", "net");
  const obs::Counter* dropped = reg.find_counter("net.drop.queue", "net");
  ASSERT_NE(injected, nullptr);
  ASSERT_NE(delivered, nullptr);
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(injected->value(), 20);
  EXPECT_GT(delivered->value(), 0);
  EXPECT_GT(dropped->value(), 0);
  EXPECT_EQ(delivered->value() + dropped->value(), 20);

  // Per-flow accounting and end-to-end delay under "flow:<id>".
  const obs::Counter* flow_pkts = reg.find_counter("flow.delivered_packets", "flow:7");
  ASSERT_NE(flow_pkts, nullptr);
  EXPECT_EQ(flow_pkts->value(), delivered->value());
  const obs::Histogram* delay = reg.find_histogram("flow.delay_ms", "flow:7");
  ASSERT_NE(delay, nullptr);
  EXPECT_EQ(delay->count(), delivered->value());
  EXPECT_GE(delay->min(), 5.0);  // at least the propagation delay

  // Link-side metrics: sojourn histogram, delivered counters, utilization.
  const obs::Counter* link_pkts = reg.find_counter("link.delivered_packets", "link:ab");
  ASSERT_NE(link_pkts, nullptr);
  EXPECT_EQ(link_pkts->value(), delivered->value());
  const obs::Histogram* sojourn = reg.find_histogram("queue.sojourn_ms", "link:ab");
  ASSERT_NE(sojourn, nullptr);
  EXPECT_GT(sojourn->count(), 0);
  const obs::Gauge* util = reg.find_gauge("link.utilization", "link:ab");
  ASSERT_NE(util, nullptr);
  EXPECT_GT(util->value(), 0.0);
  EXPECT_LE(util->value(), 1.0);
  // The link also tags drops with its own entity.
  const obs::Counter* link_drops = reg.find_counter("link.drop.queue", "link:ab");
  ASSERT_NE(link_drops, nullptr);
  EXPECT_EQ(link_drops->value(), dropped->value());
}

TEST(ObsWiring, TcpPublishesCwndSeriesAndRttHistogram) {
  sim::Simulator sim;
  net::Network net(sim, 1);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net.connect(c, s, 10e6, milliseconds(10), 100);
  obs::MetricsRegistry reg;
  transport::TcpSink sink(net, s, 80);
  transport::TcpSource::Config cfg;
  cfg.metrics = &reg;
  cfg.metrics_entity = "tcp:1";
  transport::TcpSource src(net, c, 1000, s, 80, 1, cfg);
  src.send(200'000);
  sim.run_until(seconds(10));
  ASSERT_TRUE(src.complete());

  const sim::TimeSeries* cwnd = reg.recorder().find("tcp.cwnd", "tcp:1");
  ASSERT_NE(cwnd, nullptr);
  EXPECT_GT(cwnd->points().size(), 2u);
  const obs::Histogram* rtt = reg.find_histogram("tcp.rtt_ms", "tcp:1");
  ASSERT_NE(rtt, nullptr);
  EXPECT_GT(rtt->count(), 0);
  EXPECT_GE(rtt->min(), 20.0);  // 2 x 10 ms propagation
}

TEST(ObsWiring, WifiCellPublishesAirtimeShares) {
  sim::Simulator sim;
  wireless::WifiCell cell(sim, sim::Rng(1), wireless::WifiCell::Config{});
  obs::MetricsRegistry reg;
  cell.attach_obs(reg, "cell0");
  auto fast = cell.add_station(54e6, "fast");
  auto slow = cell.add_station(1e6, "slow");
  // Keep both stations backlogged for a simulated second.
  for (int i = 0; i < 200; ++i) {
    net::Packet p;
    p.size_bytes = 1500;
    cell.send(fast, wireless::WifiCell::kApId, std::move(p));
    net::Packet q;
    q.size_bytes = 1500;
    cell.send(slow, wireless::WifiCell::kApId, std::move(q));
  }
  sim.run_until(seconds(1));

  std::string fast_label = "cell0/fast:" + std::to_string(fast);
  std::string slow_label = "cell0/slow:" + std::to_string(slow);
  const obs::Gauge* fast_share = reg.find_gauge("wifi.airtime_share", fast_label);
  const obs::Gauge* slow_share = reg.find_gauge("wifi.airtime_share", slow_label);
  ASSERT_NE(fast_share, nullptr);
  ASSERT_NE(slow_share, nullptr);
  // DCF grants equal opportunities, so the slow station (longer frames)
  // burns far more airtime — the Fig. 2 anomaly, visible in the gauges.
  EXPECT_GT(slow_share->value(), fast_share->value());
  // Shares are published at each entity's last frame completion, so their
  // sum can overshoot 1 by one frame's worth of skew, never much more.
  EXPECT_LE(slow_share->value() + fast_share->value(), 1.05);
  EXPECT_DOUBLE_EQ(reg.find_gauge("wifi.sta_rate_bps", slow_label)->value(), 1e6);
  EXPECT_GT(reg.find_counter("wifi.delivered_packets",
                             "cell0/ap:" + std::to_string(wireless::WifiCell::kApId))
                ->value(),
            0);
}

}  // namespace
}  // namespace arnet
