// Tests for the §V protocol-survey pieces: jitter buffer + intermedia sync
// (RTP/RTCP, §V-A2), the DCCP-like datagram socket (§V-B3), and the
// network-wide FlowMonitor.
#include <gtest/gtest.h>

#include "arnet/net/flow_monitor.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/dccp_like.hpp"
#include "arnet/transport/jitter_buffer.hpp"
#include "arnet/transport/tcp.hpp"
#include "arnet/transport/udp.hpp"

namespace arnet::transport {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(JitterBuffer, PlaysInOrderAfterPlayoutDelay) {
  JitterBuffer::Config cfg;
  cfg.adaptive = false;
  cfg.initial_playout_delay = milliseconds(40);
  JitterBuffer jb(cfg);
  // Samples captured every 10 ms, arriving with 20 ms transit, reordered.
  for (std::uint32_t seq : {1u, 0u, 2u}) {
    JitterBuffer::Sample s;
    s.seq = seq;
    s.source_ts = milliseconds(10) * seq;
    s.arrival = s.source_ts + milliseconds(20);
    EXPECT_TRUE(jb.push(s, s.arrival));
  }
  EXPECT_TRUE(jb.due(milliseconds(39)).empty());  // nothing before playout
  auto first = jb.due(milliseconds(41));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].seq, 0u);
  auto rest = jb.due(milliseconds(70));
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].seq, 1u);
  EXPECT_EQ(rest[1].seq, 2u);
  EXPECT_EQ(jb.underruns(), 0);
}

TEST(JitterBuffer, DiscardsLateSamples) {
  JitterBuffer::Config cfg;
  cfg.adaptive = false;
  cfg.initial_playout_delay = milliseconds(30);
  JitterBuffer jb(cfg);
  JitterBuffer::Sample s;
  s.seq = 0;
  s.source_ts = 0;
  s.arrival = milliseconds(50);  // past its playout time of 30 ms
  EXPECT_FALSE(jb.push(s, s.arrival));
  EXPECT_EQ(jb.late_discards(), 1);
}

TEST(JitterBuffer, AdaptsToJitter) {
  JitterBuffer calm_buf;
  JitterBuffer noisy_buf;
  sim::Rng rng(5);
  for (std::uint32_t i = 0; i < 400; ++i) {
    sim::Time ts = milliseconds(10) * i;
    JitterBuffer::Sample calm{i, ts, ts + milliseconds(20)};
    calm_buf.push(calm, calm.arrival);
    calm_buf.due(calm.arrival);
    sim::Time noise = sim::from_milliseconds(rng.uniform(0.0, 60.0));
    JitterBuffer::Sample noisy{i, ts, ts + milliseconds(20) + noise};
    noisy_buf.push(noisy, noisy.arrival);
    noisy_buf.due(noisy.arrival);
  }
  EXPECT_GT(noisy_buf.interarrival_jitter(), 4 * calm_buf.interarrival_jitter());
  EXPECT_GT(noisy_buf.playout_delay(), calm_buf.playout_delay() + milliseconds(15));
}

TEST(JitterBuffer, CountsUnderrunsForMissingSamples) {
  JitterBuffer::Config cfg;
  cfg.adaptive = false;
  cfg.initial_playout_delay = milliseconds(30);
  JitterBuffer jb(cfg);
  for (std::uint32_t seq : {0u, 1u, 3u}) {  // 2 lost
    JitterBuffer::Sample s{seq, milliseconds(10) * seq, milliseconds(10) * seq + milliseconds(5)};
    ASSERT_TRUE(jb.push(s, s.arrival));
  }
  auto out = jb.due(seconds(1));
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(jb.underruns(), 1);
}

TEST(IntermediaSync, AlignsStreamsToSlowest) {
  IntermediaSync sync(2);
  sim::Rng rng(9);
  // Stream 0: stable 15 ms transit; stream 1: jittery 40-90 ms transit.
  for (std::uint32_t i = 0; i < 300; ++i) {
    sim::Time ts = milliseconds(10) * i;
    JitterBuffer::Sample a{i, ts, ts + milliseconds(15)};
    sync.stream(0).push(a, a.arrival);
    sync.stream(0).due(a.arrival);
    JitterBuffer::Sample v{i, ts, ts + sim::from_milliseconds(rng.uniform(40.0, 90.0))};
    sync.stream(1).push(v, v.arrival);
    sync.stream(1).due(v.arrival);
  }
  EXPECT_GT(sync.max_skew(), milliseconds(20));
  EXPECT_GE(sync.sync_playout_delay(), sync.stream(1).playout_delay());
  EXPECT_GE(sync.sync_playout_delay(), sync.stream(0).playout_delay());
}

TEST(DccpLike, DropsStaleInsteadOfQueueing) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.connect(a, b, 2e6, milliseconds(10), 1000);
  ArtpReceiver rx(net, b, 80);
  int delivered = 0;
  sim::Samples latency_ms;
  rx.set_message_callback([&](const ArtpDelivery& d) {
    if (!d.complete) return;
    ++delivered;
    latency_ms.add(sim::to_milliseconds(d.latency()));
  });
  DatagramCcSocket sock(net, a, 1000, b, 80, 5);
  // Offer 6 Mb/s into a 2 Mb/s pipe.
  for (int i = 0; i < 500; ++i) {
    sim.at(milliseconds(10) * i, [&sock, i] {
      sock.send(7500, static_cast<std::uint32_t>(i));
    });
  }
  sim.run_until(seconds(7));
  EXPECT_GT(sock.dropped_stale(), 100);  // old data was never sent
  ASSERT_GT(delivered, 50);
  // What does arrive is fresh: bounded by the freshness window plus flight
  // time and the controller's ramp.
  EXPECT_LT(latency_ms.percentile(0.9), 150.0);
}

TEST(DccpLike, UsesAvailableCapacityWhenOfferFits) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.connect(a, b, 10e6, milliseconds(10), 500);
  ArtpReceiver rx(net, b, 80);
  std::int64_t bytes = 0;
  rx.set_message_callback([&](const ArtpDelivery& d) { bytes += d.complete ? d.bytes : 0; });
  DatagramCcSocket sock(net, a, 1000, b, 80, 5);
  for (int i = 0; i < 500; ++i) {
    sim.at(milliseconds(10) * i, [&sock, i] { sock.send(2500, static_cast<std::uint32_t>(i)); });
  }
  sim.run_until(seconds(7));
  EXPECT_GT(bytes, 500 * 2500 * 8 / 10);  // the vast majority got through
}

}  // namespace
}  // namespace arnet::transport

namespace arnet::net {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(FlowMonitor, TracksPerFlowDeliveryAndDelay) {
  sim::Simulator sim;
  Network net(sim, 1);
  auto a = net.add_node("a");
  auto r = net.add_node("r");
  auto b = net.add_node("b");
  net.connect(a, r, 10e6, milliseconds(5), 200);
  net.connect(r, b, 10e6, milliseconds(5), 200);
  FlowMonitor mon(net);

  transport::UdpEndpoint src(net, a, 100);
  transport::UdpEndpoint dst(net, b, 200);
  dst.set_handler([](Packet&&) {});
  for (int i = 0; i < 20; ++i) src.send(b, 200, 1000, /*flow=*/7);
  for (int i = 0; i < 10; ++i) src.send(b, 200, 500, /*flow=*/8);
  sim.run();

  ASSERT_EQ(mon.flow_count(), 2u);
  const auto& f7 = mon.flow(7);
  EXPECT_EQ(f7.delivered_packets, 20);
  EXPECT_EQ(f7.delivered_bytes, 20 * 1028);
  EXPECT_NEAR(f7.mean_hops(), 2.0, 1e-9);
  EXPECT_GT(f7.delay_ms.median(), 10.0);  // two 5 ms hops + serialization
  EXPECT_EQ(mon.flow(8).delivered_packets, 10);
}

TEST(FlowMonitor, ThroughputOfBulkTcpFlow) {
  sim::Simulator sim;
  Network net(sim, 1);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.connect(a, b, 10e6, milliseconds(10), 200);
  FlowMonitor mon(net);
  transport::TcpSink sink(net, b, 80);
  transport::TcpSource src(net, a, 1000, b, 80, /*flow=*/42);
  src.send_forever();
  sim.run_until(seconds(10));
  EXPECT_GT(mon.flow(42).throughput_mbps(), 8.0);
  // ACKs ride the same flow id, so the flow's packet count exceeds its
  // data-segment count.
  EXPECT_GT(mon.flow(42).delivered_packets, mon.flow(42).delivered_bytes / 1500);
  EXPECT_EQ(mon.total_delivered_bytes(), mon.flow(42).delivered_bytes);
}

}  // namespace
}  // namespace arnet::net
