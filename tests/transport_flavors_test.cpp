// Tests for the TCP congestion-control flavors (Reno/NewReno/CUBIC/Vegas),
// the MPTCP-style multipath baseline, and the TFRC equation controller —
// the protocol landscape the paper surveys in §V.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>

#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/artp.hpp"
#include "arnet/transport/congestion.hpp"
#include "arnet/transport/mptcp.hpp"
#include "arnet/transport/tcp.hpp"

namespace arnet::transport {
namespace {

using net::Network;
using net::NodeId;
using sim::milliseconds;
using sim::seconds;

struct Pipe {
  sim::Simulator sim;
  Network net{sim, 42};
  NodeId a, b;
  net::Link* up;

  Pipe(double bps, sim::Time delay, std::size_t queue) {
    a = net.add_node("a");
    b = net.add_node("b");
    auto [l, r] = net.connect(a, b, bps, delay, queue);
    up = l;
    (void)r;
  }
};

double run_flavor_mbps(TcpFlavor flavor, double bps, sim::Time delay, std::size_t queue,
                       sim::Time dur) {
  Pipe p(bps, delay, queue);
  TcpSink sink(p.net, p.b, 80);
  TcpSource::Config cfg;
  cfg.flavor = flavor;
  TcpSource src(p.net, p.a, 1000, p.b, 80, 1, cfg);
  src.send_forever();
  p.sim.run_until(dur);
  return sink.received_bytes() * 8.0 / sim::to_seconds(dur) / 1e6;
}

TEST(TcpFlavors, AllFlavorsCompleteTransfers) {
  for (auto f : {TcpFlavor::kReno, TcpFlavor::kNewReno, TcpFlavor::kCubic, TcpFlavor::kVegas}) {
    Pipe p(10e6, milliseconds(10), 100);
    TcpSink sink(p.net, p.b, 80);
    TcpSource::Config cfg;
    cfg.flavor = f;
    TcpSource src(p.net, p.a, 1000, p.b, 80, 1, cfg);
    bool done = false;
    src.set_on_complete([&] { done = true; });
    src.send(500'000);
    p.sim.run_until(seconds(20));
    EXPECT_TRUE(done) << to_string(f);
    EXPECT_EQ(sink.received_bytes(), 500'000) << to_string(f);
  }
}

TEST(TcpFlavors, CubicOutgrowsRenoOnLongFatPipe) {
  // 100 Mb/s x 80 ms: Reno's 1 MSS/RTT crawl leaves capacity unused in a
  // 30 s window; CUBIC's polynomial probing recovers much faster.
  double reno = run_flavor_mbps(TcpFlavor::kNewReno, 100e6, milliseconds(40), 400, seconds(30));
  double cubic = run_flavor_mbps(TcpFlavor::kCubic, 100e6, milliseconds(40), 400, seconds(30));
  EXPECT_GT(cubic, reno * 1.2);
  EXPECT_LE(cubic, 100.0);
}

TEST(TcpFlavors, VegasKeepsQueueShort) {
  // On a modest pipe with a deep buffer, Reno fills the queue (high srtt)
  // while Vegas holds a few packets (srtt near propagation RTT).
  Pipe preno(10e6, milliseconds(20), 500);
  TcpSink sink_r(preno.net, preno.b, 80);
  TcpSource::Config rcfg;
  rcfg.flavor = TcpFlavor::kNewReno;
  TcpSource reno(preno.net, preno.a, 1000, preno.b, 80, 1, rcfg);
  reno.send_forever();
  preno.sim.run_until(seconds(20));

  Pipe pveg(10e6, milliseconds(20), 500);
  TcpSink sink_v(pveg.net, pveg.b, 80);
  TcpSource::Config vcfg;
  vcfg.flavor = TcpFlavor::kVegas;
  TcpSource vegas(pveg.net, pveg.a, 1000, pveg.b, 80, 1, vcfg);
  vegas.send_forever();
  pveg.sim.run_until(seconds(20));

  EXPECT_LT(vegas.srtt(), milliseconds(60));   // ~2 pkts of standing queue
  EXPECT_GT(reno.srtt(), milliseconds(100));   // bufferbloat
  // Vegas still uses the link well.
  EXPECT_GT(sink_v.received_bytes() * 8.0 / 20 / 1e6, 8.0);
}

TEST(TcpFlavors, RenoStarvesVegasAtSharedBottleneck) {
  // The fairness problem the paper cites ([65]): loss-based Reno fills the
  // buffer, delay-based Vegas interprets that as congestion and retreats.
  Pipe p(10e6, milliseconds(20), 250);
  TcpSink sink_r(p.net, p.b, 80);
  TcpSink sink_v(p.net, p.b, 81);
  TcpSource::Config rcfg;
  rcfg.flavor = TcpFlavor::kNewReno;
  TcpSource reno(p.net, p.a, 1000, p.b, 80, 1, rcfg);
  TcpSource::Config vcfg;
  vcfg.flavor = TcpFlavor::kVegas;
  TcpSource vegas(p.net, p.a, 1001, p.b, 81, 2, vcfg);
  reno.send_forever();
  vegas.send_forever();
  p.sim.run_until(seconds(30));
  EXPECT_GT(sink_r.received_bytes(), 3 * sink_v.received_bytes());
}

TEST(TcpFlavors, BbrCompletesTransferAndReachesProbeBw) {
  Pipe p(10e6, milliseconds(20), 100);
  TcpSink sink(p.net, p.b, 80);
  TcpSource::Config cfg;
  cfg.flavor = TcpFlavor::kBbr;
  cfg.sack = true;
  TcpSource src(p.net, p.a, 1000, p.b, 80, 1, cfg);
  src.send_forever();
  p.sim.run_until(seconds(5));

  // Startup -> Drain -> ProbeBW well before 5 s (ProbeRTT first fires at
  // 10 s), with a model close to the true path: 10 Mb/s bottleneck, 40 ms
  // propagation RTT.
  EXPECT_EQ(src.bbr_state(), BbrState::kProbeBw) << to_string(src.bbr_state());
  EXPECT_GT(src.bbr_bandwidth_bps(), 6e6);
  EXPECT_LT(src.bbr_bandwidth_bps(), 14e6);
  EXPECT_GE(src.bbr_min_rtt(), milliseconds(40));
  EXPECT_LT(src.bbr_min_rtt(), milliseconds(60));
  EXPECT_GT(sink.received_bytes() * 8.0 / 5.0 / 1e6, 6.0);  // uses the link
}

TEST(TcpFlavors, BbrProbeRttFloorsCwnd) {
  Pipe p(10e6, milliseconds(20), 100);
  TcpSink sink(p.net, p.b, 80);
  TcpSource::Config cfg;
  cfg.flavor = TcpFlavor::kBbr;
  cfg.sack = true;
  TcpSource src(p.net, p.a, 1000, p.b, 80, 1, cfg);
  src.send_forever();

  // Sample the state machine every 50 ms: ProbeRTT must occur (the 10 s
  // min-RTT filter expires) and while it holds, cwnd must sit at the 4-MSS
  // floor so the queue actually drains.
  bool saw_probe_rtt = false;
  double max_cwnd_in_probe_rtt = 0.0;
  for (int i = 0; i < 25 * 20; ++i) {
    p.sim.at(milliseconds(50) * i, [&] {
      if (src.bbr_state() == BbrState::kProbeRtt) {
        saw_probe_rtt = true;
        max_cwnd_in_probe_rtt = std::max(max_cwnd_in_probe_rtt, src.cwnd_bytes());
      }
    });
  }
  p.sim.run_until(seconds(25));
  EXPECT_TRUE(saw_probe_rtt);
  EXPECT_LE(max_cwnd_in_probe_rtt, 4.0 * 1460 + 1.0);
  // ...and it comes back: still moving traffic afterwards.
  EXPECT_EQ(src.bbr_state(), BbrState::kProbeBw) << to_string(src.bbr_state());
  EXPECT_GT(sink.received_bytes() * 8.0 / 25.0 / 1e6, 6.0);
}

TEST(TcpFlavors, BbrKeepsQueueShorterThanRenoOnDeepBuffer) {
  // The bufferbloat contrast (same shape as the Vegas test): on a deep
  // buffer, loss-based Reno fills the queue; BBR's model holds cwnd near one
  // BDP so srtt stays near the propagation RTT.
  Pipe preno(10e6, milliseconds(20), 500);
  TcpSink sink_r(preno.net, preno.b, 80);
  TcpSource::Config rcfg;
  rcfg.flavor = TcpFlavor::kNewReno;
  TcpSource reno(preno.net, preno.a, 1000, preno.b, 80, 1, rcfg);
  reno.send_forever();
  preno.sim.run_until(seconds(20));

  Pipe pbbr(10e6, milliseconds(20), 500);
  TcpSink sink_b(pbbr.net, pbbr.b, 80);
  TcpSource::Config bcfg;
  bcfg.flavor = TcpFlavor::kBbr;
  bcfg.sack = true;
  TcpSource bbr(pbbr.net, pbbr.a, 1000, pbbr.b, 80, 1, bcfg);
  bbr.send_forever();
  pbbr.sim.run_until(seconds(20));

  EXPECT_GT(reno.srtt(), milliseconds(100));  // bufferbloat
  EXPECT_LT(bbr.srtt(), milliseconds(80));    // ~<=1 BDP standing
  // BBR pays little throughput for the short queue.
  EXPECT_GT(sink_b.received_bytes() * 8.0 / 20 / 1e6, 7.0);
}

TEST(TcpFlavors, BbrSurvivesRandomLossBetterThanReno) {
  // Non-congestive loss does not collapse BBR's model (loss is not a window
  // signal); Reno halves on every loss event and starves.
  auto run_with_loss = [](TcpFlavor flavor) {
    sim::Simulator sim;
    Network net(sim, 42);
    auto a = net.add_node("a");
    auto b = net.add_node("b");
    net::Link::Config up;
    up.rate_bps = 10e6;
    up.delay = milliseconds(20);
    up.queue_packets = 200;
    up.loss = std::make_unique<net::BernoulliLoss>(0.01);
    net::Link::Config down;
    down.rate_bps = 10e6;
    down.delay = milliseconds(20);
    down.queue_packets = 200;
    net.connect(a, b, std::move(up), std::move(down));
    TcpSink sink(net, b, 80);
    TcpSource::Config cfg;
    cfg.flavor = flavor;
    cfg.sack = true;
    TcpSource src(net, a, 1000, b, 80, 1, cfg);
    src.send_forever();
    sim.run_until(seconds(20));
    return sink.received_bytes() * 8.0 / 20 / 1e6;
  };
  double reno = run_with_loss(TcpFlavor::kNewReno);
  double bbr = run_with_loss(TcpFlavor::kBbr);
  EXPECT_GT(bbr, 1.5 * reno);
}

TEST(Mptcp, AggregatesDisjointPaths) {
  sim::Simulator sim;
  Network net(sim, 7);
  auto c = net.add_node("c");
  auto r1 = net.add_node("r1");
  auto r2 = net.add_node("r2");
  auto s = net.add_node("s");
  auto [p1, q1] = net.connect(c, r1, 8e6, milliseconds(10), 100);
  (void)q1;
  net.connect(r1, s, 1e9, milliseconds(1), 500);
  auto [p2, q2] = net.connect(c, r2, 12e6, milliseconds(15), 100);
  (void)q2;
  net.connect(r2, s, 1e9, milliseconds(1), 500);

  MultipathTcp::Config cfg;
  cfg.coupled = false;  // disjoint bottlenecks: run uncoupled for full use
  MultipathTcp mptcp(net, c, s, 1000, 80, {{p1, "path1"}, {p2, "path2"}}, cfg);
  mptcp.send_forever();
  sim.run_until(seconds(20));
  double mbps = mptcp.total_received() * 8.0 / 20 / 1e6;
  EXPECT_GT(mbps, 15.0);  // well above either path alone
  EXPECT_GT(mptcp.subflow_received(0), 0);
  EXPECT_GT(mptcp.subflow_received(1), 0);
}

TEST(Mptcp, SurvivesPathFailure) {
  sim::Simulator sim;
  Network net(sim, 7);
  auto c = net.add_node("c");
  auto r1 = net.add_node("r1");
  auto r2 = net.add_node("r2");
  auto s = net.add_node("s");
  auto [p1, q1] = net.connect(c, r1, 10e6, milliseconds(5), 100);
  (void)q1;
  net.connect(r1, s, 1e9, milliseconds(1), 500);
  auto [p2, q2] = net.connect(c, r2, 10e6, milliseconds(25), 100);
  (void)q2;
  net.connect(r2, s, 1e9, milliseconds(1), 500);

  MultipathTcp mptcp(net, c, s, 1000, 80, {{p1, "wifi"}, {p2, "lte"}},
                     MultipathTcp::Config{});
  mptcp.send_forever();
  sim.at(seconds(5), [&, l = p1] { l->set_up(false); });  // WiFi dies
  sim.run_until(seconds(20));
  std::int64_t at_20 = mptcp.total_received();
  sim.run_until(seconds(30));
  // The LTE subflow keeps the logical connection moving.
  EXPECT_GT(mptcp.total_received(), at_20 + 5'000'000);
}

TEST(Mptcp, CoupledSubflowsAreFairToSingleTcp) {
  // Two MPTCP subflows + one plain TCP share one 12 Mb/s bottleneck. With
  // LIA-style coupling the MPTCP aggregate should take roughly half, not
  // two thirds.
  sim::Simulator sim;
  Network net(sim, 7);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net.connect(c, s, 12e6, milliseconds(20), 120);

  MultipathTcp mptcp(net, c, s, 1000, 80, {{nullptr, "sf1"}, {nullptr, "sf2"}},
                     MultipathTcp::Config{});
  TcpSink single_sink(net, s, 90);
  TcpSource single(net, c, 1100, s, 90, 99);
  // Let the single flow establish first so simultaneous slow starts don't
  // lock it out before coupling takes effect.
  single.send_forever();
  sim.at(seconds(2), [&] { mptcp.send_forever(); });
  sim.run_until(seconds(60));
  double ratio = static_cast<double>(mptcp.total_received()) /
                 static_cast<double>(single_sink.received_bytes());
  EXPECT_LT(ratio, 1.9);  // uncoupled subflows would push toward ~2
  EXPECT_GT(ratio, 0.45);
}

TEST(Tfrc, RateTracksLossEquation) {
  TfrcController tfrc;
  CcFeedback fb;
  fb.owd = milliseconds(25);  // RTT 50 ms
  fb.min_owd = milliseconds(25);
  fb.loss_fraction = 0.01;
  double rate = 0;
  for (int i = 0; i < 100; ++i) rate = tfrc.on_feedback(fb, 0);
  // TCP equation at p=1%, RTT=50 ms, s=1200 B: roughly 2-3 Mb/s.
  EXPECT_GT(rate, 1.0e6);
  EXPECT_LT(rate, 5.0e6);

  // Quadrupling loss roughly halves the equation rate.
  fb.loss_fraction = 0.04;
  double rate4 = 0;
  for (int i = 0; i < 100; ++i) rate4 = tfrc.on_feedback(fb, 0);
  EXPECT_LT(rate4, 0.65 * rate);
}

TEST(Tfrc, SmootherThanLossAimd) {
  // Feed both controllers the same noisy loss process; TFRC's rate variance
  // should be far smaller — the property that makes it media-friendly.
  sim::Rng rng(3);
  TfrcController tfrc;
  LossAimdController aimd;
  sim::Samples tfrc_rates, aimd_rates;
  for (int i = 0; i < 400; ++i) {
    CcFeedback fb;
    fb.owd = milliseconds(25);
    fb.min_owd = milliseconds(20);
    fb.loss_fraction = rng.bernoulli(0.3) ? 0.02 : 0.0;
    tfrc_rates.add(tfrc.on_feedback(fb, 0) / 1e6);
    aimd_rates.add(aimd.on_feedback(fb, 0) / 1e6);
  }
  // Compare spread relative to each controller's own median (the absolute
  // operating points differ by design).
  double tfrc_rel =
      (tfrc_rates.percentile(0.9) - tfrc_rates.percentile(0.1)) / tfrc_rates.median();
  double aimd_rel =
      (aimd_rates.percentile(0.9) - aimd_rates.percentile(0.1)) / aimd_rates.median();
  EXPECT_LT(tfrc_rel, 0.6 * aimd_rel);
}

TEST(Tfrc, WorksAsArtpController) {
  sim::Simulator sim;
  Network net(sim, 7);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net.connect(c, s, 10e6, milliseconds(15), 300);
  ArtpReceiver rx(net, s, 80);
  int delivered = 0;
  rx.set_message_callback([&](const ArtpDelivery& d) { delivered += d.complete ? 1 : 0; });
  ArtpSenderConfig cfg;
  std::vector<ArtpPathConfig> paths;
  ArtpPathConfig pc;
  pc.controller = std::make_unique<TfrcController>();
  paths.push_back(std::move(pc));
  ArtpSender tx(net, c, 1000, s, 80, 1, cfg, std::move(paths));
  for (int i = 0; i < 200; ++i) {
    sim.at(milliseconds(20) * i, [&tx] {
      ArtpMessageSpec m;
      m.bytes = 8000;
      m.tclass = net::TrafficClass::kFullBestEffort;
      m.priority = net::Priority::kMediumNoDrop;
      tx.send_message(m);
    });
  }
  sim.run_until(seconds(10));
  EXPECT_GT(delivered, 180);
}

}  // namespace
}  // namespace arnet::transport
