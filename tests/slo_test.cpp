// SLO engine tests: windowed burn-rate math, the alert state machine and
// its hysteresis band, cold-start gating, idle-window expiry, the alert
// callback contract, export determinism, and the bounded log accounting.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "arnet/obs/registry.hpp"
#include "arnet/sim/time.hpp"
#include "arnet/slo/slo.hpp"

namespace arnet {
namespace {

using sim::milliseconds;
using sim::seconds;

// A small objective for readable arithmetic: 10 ms deadline, 90% target
// (error budget 0.1), 1 s fast window in 10 slots, 10 s slow window.
slo::SloConfig small_cfg() {
  slo::SloConfig cfg;
  cfg.deadline_ms = 10.0;
  cfg.objective = 0.9;
  cfg.fast_window = seconds(1);
  cfg.slow_window = seconds(10);
  cfg.slots_per_fast_window = 10;
  cfg.min_samples = 10;
  cfg.entity = "test";
  return cfg;
}

// Feed `good` on-time and `miss` late frames, interleaved, all inside one
// fast window starting at `t0`.
void feed(slo::SloTracker& t, sim::Time t0, int good, int miss) {
  const int total = good + miss;
  for (int i = 0; i < total; ++i) {
    const sim::Time at = t0 + i * (seconds(1) / (total + 1));
    if (i < miss) {
      t.observe(at, 20.0);  // past the 10 ms deadline
    } else {
      t.observe(at, 1.0);
    }
  }
}

TEST(SloBurn, BurnIsMissRateOverErrorBudget) {
  slo::SloTracker t(small_cfg());
  feed(t, 0, 15, 5);  // miss rate 0.25, budget 0.1 -> burn 2.5
  EXPECT_NEAR(t.burn_fast(), 2.5, 1e-9);
  EXPECT_NEAR(t.burn_slow(), 2.5, 1e-9);  // same frames fill both windows
  EXPECT_EQ(t.good(), 15);
  EXPECT_EQ(t.miss(), 5);
}

TEST(SloBurn, ObserveClassifiesAgainstDeadline) {
  slo::SloTracker t(small_cfg());
  t.observe(0, 10.0);  // exactly on deadline: good (miss iff strictly over)
  t.observe(1, 10.001);
  EXPECT_EQ(t.good(), 1);
  EXPECT_EQ(t.miss(), 1);
  t.observe_miss(2);
  EXPECT_EQ(t.miss(), 2);
}

TEST(SloBurn, MinSamplesGatesColdStart) {
  auto cfg = small_cfg();  // min_samples = 10
  cfg.fast_burn_threshold = 8.0;
  slo::SloTracker t(cfg);
  for (int i = 0; i < 9; ++i) t.observe_miss(milliseconds(i));
  // 9/9 missed, but the window is below min_samples: no burn, no alert.
  EXPECT_NEAR(t.burn_fast(), 0.0, 1e-9);
  EXPECT_EQ(t.state(), slo::AlertState::kOk);
  t.observe_miss(milliseconds(9));  // 10th sample arms the window
  EXPECT_NEAR(t.burn_fast(), 10.0, 1e-9);
  EXPECT_EQ(t.state(), slo::AlertState::kFastBurn);
}

TEST(SloAlert, EntersFastBurnThenClearsWithHysteresis) {
  auto cfg = small_cfg();
  cfg.fast_burn_threshold = 5.0;
  cfg.slow_burn_threshold = 5.0;
  cfg.clear_factor = 0.5;
  slo::SloTracker t(cfg);

  // 10 miss + 10 good inside one fast window: burn 5.0 -> enter fast-burn.
  for (int i = 0; i < 10; ++i) t.observe_miss(milliseconds(i * 40));
  for (int i = 0; i < 10; ++i) t.observe(milliseconds(400 + i * 40), 1.0);
  EXPECT_EQ(t.state(), slo::AlertState::kFastBurn);
  ASSERT_EQ(t.alerts().size(), 1u);
  EXPECT_EQ(t.alerts()[0].state, slo::AlertState::kFastBurn);

  // 13 healthy frames in the same window pull burn to ~3.0 — inside the
  // hysteresis band (2.5, 5.0) — so the alert must hold without flapping.
  for (int i = 0; i < 13; ++i) t.observe(milliseconds(800 + i * 10), 1.0);
  EXPECT_EQ(t.state(), slo::AlertState::kFastBurn);
  EXPECT_EQ(t.alerts().size(), 1u);

  // 50 more healthy frames push burn below threshold * clear_factor: clears.
  for (int i = 0; i < 50; ++i) t.observe(milliseconds(930 + i), 1.0);
  EXPECT_EQ(t.state(), slo::AlertState::kOk);
}

TEST(SloAlert, SustainedDriftTripsSlowBurnWithoutFastBurn) {
  auto cfg = small_cfg();
  cfg.fast_burn_threshold = 14.4;  // fast never trips at 50% miss
  cfg.slow_burn_threshold = 4.0;
  slo::SloTracker t(cfg);
  for (int w = 0; w < 8; ++w) feed(t, seconds(w), 10, 10);  // burn 5 sustained
  EXPECT_EQ(t.state(), slo::AlertState::kSlowBurn);
  EXPECT_NEAR(t.burn_slow(), 5.0, 1e-9);
}

TEST(SloAlert, IdleGapLongerThanWheelForgetsHistory) {
  slo::SloTracker t(small_cfg());
  feed(t, 0, 0, 20);  // 100% miss -> burning
  EXPECT_GT(t.burn_fast(), 0.0);
  // An idle gap longer than the slow window wipes the wheel: the first
  // frame of the new era sees empty windows (and min_samples gating).
  t.observe(seconds(30), 1.0);
  EXPECT_NEAR(t.burn_fast(), 0.0, 1e-9);
  EXPECT_NEAR(t.burn_slow(), 0.0, 1e-9);
  // Totals survive the wipe — they are run-lifetime accounting.
  EXPECT_EQ(t.miss(), 20);
  EXPECT_EQ(t.good(), 1);
}

TEST(SloAlert, CallbackFiresOncePerEpisodeNeverOnClear) {
  auto cfg = small_cfg();
  cfg.fast_burn_threshold = 5.0;
  slo::SloTracker t(cfg);
  std::vector<slo::AlertEvent> fired;
  t.set_alert_callback([&](const slo::AlertEvent& e) { fired.push_back(e); });

  feed(t, 0, 0, 20);            // enter fast-burn: one callback
  feed(t, seconds(20), 50, 0);  // long gap + healthy: clears silently
  EXPECT_EQ(t.state(), slo::AlertState::kOk);
  feed(t, seconds(40), 0, 20);  // second episode

  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0].state, slo::AlertState::kFastBurn);
  EXPECT_EQ(fired[1].state, slo::AlertState::kFastBurn);
  EXPECT_EQ(t.alert_episodes(), 2u);
  // The transition log also carries the clears; episodes counts entries only.
  EXPECT_GE(t.alerts().size(), 3u);
}

TEST(SloAlert, AlertLogBoundDropsButCounts) {
  auto cfg = small_cfg();
  cfg.fast_burn_threshold = 5.0;
  cfg.max_alerts = 2;
  slo::SloTracker t(cfg);
  // 30 s cycles: each gap exceeds the 10 s slow window, so every episode
  // starts from a wiped wheel and cleanly enters then clears.
  for (int w = 0; w < 6; ++w) {
    feed(t, seconds(30 * w), 0, 20);        // enter
    feed(t, seconds(30 * w + 15), 50, 0);   // clear
  }
  EXPECT_EQ(t.alerts().size(), 2u);
  EXPECT_GT(t.alerts_dropped(), 0u);
  EXPECT_EQ(t.alert_episodes(), 6u);  // episodes keep counting past the bound
}

TEST(SloBurn, TimelineSamplesOncePerSlotBoundary) {
  slo::SloTracker t(small_cfg());
  feed(t, 0, 20, 0);  // 20 frames inside one fast window: 10 slots crossed
  const std::size_t n = t.burn_samples().size();
  EXPECT_GT(n, 0u);
  EXPECT_LE(n, 20u);
  // Sample times are strictly increasing slot starts.
  for (std::size_t i = 1; i < t.burn_samples().size(); ++i) {
    EXPECT_LT(t.burn_samples()[i - 1].time, t.burn_samples()[i].time);
  }
}

TEST(SloExport, ByteIdenticalAcrossIdenticalRuns) {
  auto run = [] {
    slo::SloTracker a(small_cfg());
    auto cfg_b = small_cfg();
    cfg_b.entity = "cell-b";
    slo::SloTracker b(cfg_b);
    feed(a, 0, 17, 3);
    feed(b, 0, 0, 25);
    std::ostringstream os;
    slo::write_slo_jsonl({&a, &b}, os);
    return os.str();
  };
  const std::string first = run();
  EXPECT_EQ(first, run());
  EXPECT_NE(first.find("\"schema\":\"arnet-slo-v1\""), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"objective\""), std::string::npos);
  EXPECT_NE(first.find("\"entity\":\"cell-b\""), std::string::npos);
  EXPECT_NE(first.find("\"kind\":\"end\",\"objectives\":2"), std::string::npos);
}

TEST(SloObs, PublishExportsGauges) {
  slo::SloTracker t(small_cfg());
  feed(t, 0, 15, 5);
  obs::MetricsRegistry reg;
  t.publish(reg);
  EXPECT_NEAR(reg.gauge("slo.burn_fast", "test").value(), 2.5, 1e-9);
  EXPECT_NEAR(reg.gauge("slo.burn_slow", "test").value(), 2.5, 1e-9);
}

}  // namespace
}  // namespace arnet
