#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <utility>

#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/wireless/cellular.hpp"
#include "arnet/wireless/coverage.hpp"
#include "arnet/wireless/d2d.hpp"
#include "arnet/wireless/survey.hpp"
#include "arnet/wireless/wifi.hpp"

namespace arnet::wireless {
namespace {

using sim::milliseconds;
using sim::seconds;

net::Packet frame(std::int32_t bytes) {
  net::Packet p;
  p.size_bytes = bytes;
  return p;
}

/// Saturate the cell from `station` to the AP for `dur`; returns Mb/s.
double saturate_uplink(WifiCell& cell, sim::Simulator& sim, std::uint32_t station,
                       sim::Time dur) {
  // Keep 3 frames queued at all times.
  std::function<void()> feed = [&cell, station] {
    cell.send(station, WifiCell::kApId, frame(1500));
  };
  for (int i = 0; i < 3; ++i) feed();
  cell.set_sink(WifiCell::kApId, [&](net::Packet&&, std::uint32_t) { feed(); });
  std::int64_t start = cell.delivered_bytes(WifiCell::kApId);
  sim::Time t0 = sim.now();
  sim.run_until(t0 + dur);
  return static_cast<double>(cell.delivered_bytes(WifiCell::kApId) - start) * 8.0 /
         sim::to_seconds(dur) / 1e6;
}

TEST(WifiCell, SingleStationEfficiencyIsRealistic) {
  sim::Simulator sim;
  WifiCell::Config cfg;
  WifiCell cell(sim, sim::Rng(1), cfg);
  auto sta = cell.add_station(54e6);
  double mbps = saturate_uplink(cell, sim, sta, seconds(2));
  // 802.11g at 54 Mb/s delivers roughly 45-60% of PHY rate with 1500 B
  // frames (OpenSignal's everyday numbers are lower still due to contention).
  EXPECT_GT(mbps, 22.0);
  EXPECT_LT(mbps, 36.0);
}

TEST(WifiCell, AirtimeScalesWithPhyRate) {
  sim::Simulator sim;
  WifiCell cell(sim, sim::Rng(1), WifiCell::Config{});
  sim::Time fast = cell.frame_airtime(1500, 54e6);
  sim::Time slow = cell.frame_airtime(1500, 6e6);
  EXPECT_GT(slow, 4 * fast);  // payload term dominates at low rates
  EXPECT_LT(slow, 12 * fast); // fixed overhead still present
}

/// The Fig. 2 anomaly: a far station at a low PHY rate drags a near
/// station's throughput down to roughly the slow station's level.
struct AnomalyResult {
  double fast_mbps;
  double slow_mbps;
};

AnomalyResult run_two_station_cell(double fast_phy, double slow_phy) {
  sim::Simulator sim;
  WifiCell cell(sim, sim::Rng(1), WifiCell::Config{});
  auto a = cell.add_station(fast_phy, "A");
  auto b = cell.add_station(slow_phy, "B");
  std::int64_t bytes_a = 0, bytes_b = 0;
  cell.set_sink(WifiCell::kApId, [&](net::Packet&& p, std::uint32_t from) {
    (from == a ? bytes_a : bytes_b) += p.size_bytes;
    cell.send(from, WifiCell::kApId, frame(1500));  // keep both saturated
  });
  for (int i = 0; i < 4; ++i) {
    cell.send(a, WifiCell::kApId, frame(1500));
    cell.send(b, WifiCell::kApId, frame(1500));
  }
  sim.run_until(seconds(5));
  return {static_cast<double>(bytes_a) * 8 / 5 / 1e6,
          static_cast<double>(bytes_b) * 8 / 5 / 1e6};
}

TEST(WifiCell, EqualRatesShareEvenly) {
  auto r = run_two_station_cell(54e6, 54e6);
  EXPECT_NEAR(r.fast_mbps / r.slow_mbps, 1.0, 0.1);
  EXPECT_GT(r.fast_mbps + r.slow_mbps, 22.0);
}

TEST(WifiCell, PerformanceAnomalyEqualizesThroughput) {
  auto r = run_two_station_cell(54e6, 6e6);
  // DCF equal opportunities: both stations land at nearly the same rate...
  EXPECT_NEAR(r.fast_mbps / r.slow_mbps, 1.0, 0.15);
  // ...and the fast station loses most of its solo throughput.
  auto solo = run_two_station_cell(54e6, 54e6);
  EXPECT_LT(r.fast_mbps, 0.35 * (solo.fast_mbps + solo.slow_mbps));
}

TEST(WifiCell, FrameLossConsumesAirtimeViaRetries) {
  sim::Simulator sim;
  WifiCell::Config clean_cfg;
  WifiCell clean(sim, sim::Rng(1), clean_cfg);
  auto s1 = clean.add_station(54e6);
  double clean_mbps = saturate_uplink(clean, sim, s1, seconds(2));

  sim::Simulator sim2;
  WifiCell::Config lossy_cfg;
  lossy_cfg.frame_loss = 0.3;
  WifiCell lossy(sim2, sim::Rng(1), lossy_cfg);
  auto s2 = lossy.add_station(54e6);
  double lossy_mbps = saturate_uplink(lossy, sim2, s2, seconds(2));
  EXPECT_LT(lossy_mbps, 0.85 * clean_mbps);
}

TEST(WifiCell, StationToStationRelaysThroughAp) {
  sim::Simulator sim;
  WifiCell cell(sim, sim::Rng(1), WifiCell::Config{});
  auto a = cell.add_station(54e6);
  auto b = cell.add_station(54e6);
  int got = 0;
  cell.set_sink(b, [&](net::Packet&&, std::uint32_t) { ++got; });
  cell.send(a, b, frame(1000));
  sim.run_until(seconds(1));
  EXPECT_EQ(got, 1);
  // Relay pays two medium occupancies: compare to direct AP delivery time.
  sim::Time one_hop = cell.frame_airtime(1000, 54e6);
  EXPECT_GE(sim.events_executed(), 2u);
  (void)one_hop;
}

TEST(WifiCell, QueueOverflowDrops) {
  sim::Simulator sim;
  WifiCell::Config cfg;
  cfg.queue_packets = 10;
  WifiCell cell(sim, sim::Rng(1), cfg);
  auto a = cell.add_station(6e6);
  for (int i = 0; i < 50; ++i) cell.send(a, WifiCell::kApId, frame(1500));
  EXPECT_GT(cell.dropped_frames(), 30);
}

TEST(Cellular, ProfilesMatchSurveyShape) {
  auto hspa = CellularProfile::hspa_plus();
  auto lte = CellularProfile::lte();
  EXPECT_LT(hspa.mean_down_bps, lte.mean_down_bps);
  EXPECT_GT(hspa.base_one_way_delay, lte.base_one_way_delay);
  auto fiveg = CellularProfile::fiveg_kpi();
  EXPECT_GE(fiveg.mean_down_bps, 300e6);
  EXPECT_LE(fiveg.base_one_way_delay, milliseconds(5));
}

TEST(Cellular, ModulatorVariesRateAndDelay) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto c = net.add_node("c");
  auto t = net.add_node("t");
  auto att = attach_cellular(net, c, t, CellularProfile::hspa_plus(), 99);
  att.modulator->start();
  sim::Samples rates, delays;
  for (int i = 0; i < 200; ++i) {
    sim.run_until(milliseconds(100 * (i + 1)));
    rates.add(att.modulator->current_down_bps());
    delays.add(sim::to_milliseconds(att.modulator->current_one_way_delay()));
  }
  // HSPA+ displays large swings: spread well over 2x between p10 and p90.
  EXPECT_GT(rates.percentile(0.9) / rates.percentile(0.1), 2.0);
  // Delay spikes reach far above the base delay.
  EXPECT_GT(delays.max(), 1.8 * delays.median());
  // And the link object actually tracks the modulator.
  EXPECT_NEAR(att.downlink->rate_bps(), att.modulator->current_down_bps(), 1.0);
}

TEST(Cellular, LteRttInMeasuredBallpark) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto c = net.add_node("c");
  auto t = net.add_node("t");
  auto att = attach_cellular(net, c, t, CellularProfile::lte(), 7);
  att.modulator->start();
  sim::Samples rtt_ms;
  for (int i = 0; i < 300; ++i) {
    sim.run_until(milliseconds(100 * (i + 1)));
    rtt_ms.add(2 * sim::to_milliseconds(att.modulator->current_one_way_delay()));
  }
  // Measured LTE RTTs are 66-85 ms; our model should have its median there.
  EXPECT_GT(rtt_ms.median(), 60.0);
  EXPECT_LT(rtt_ms.median(), 95.0);
}

TEST(Coverage, DutyCycleMatchesWi2Me) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto [up, down] = net.connect(a, b, 10e6, milliseconds(5));
  CoverageProcess cov(sim, sim::Rng(5), *up, *down, CoverageProcess::wi2me_wifi());
  cov.start();
  sim.run_until(seconds(3600));
  EXPECT_NEAR(cov.usable_fraction(sim.now()), 0.538, 0.08);
  EXPECT_GT(cov.handovers(), 20);
}

TEST(Coverage, TogglesLinkState) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto [up, down] = net.connect(a, b, 10e6, milliseconds(5));
  CoverageProcess::Config cfg;
  cfg.mean_usable = seconds(5);
  cfg.mean_gap = seconds(5);
  CoverageProcess cov(sim, sim::Rng(5), *up, *down, cfg);
  cov.start();
  bool saw_down = false, saw_up = false;
  for (int i = 0; i < 600; ++i) {
    sim.run_until(milliseconds(100 * (i + 1)));
    (up->is_up() ? saw_up : saw_down) = true;
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
}

TEST(D2d, RateFallsWithDistanceAndMobility) {
  double near_rate = d2d_rate_bps(D2dTechnology::kWifiDirect, 5.0);
  double far_rate = d2d_rate_bps(D2dTechnology::kWifiDirect, 150.0);
  double out = d2d_rate_bps(D2dTechnology::kWifiDirect, 250.0);
  EXPECT_GT(near_rate, 10 * far_rate);
  EXPECT_EQ(out, 0.0);
  double moving = d2d_rate_bps(D2dTechnology::kWifiDirect, 5.0, 1.0);
  EXPECT_LT(moving, 0.5 * near_rate);
}

TEST(D2d, LteDirectOutrangesWifiDirect) {
  EXPECT_GT(d2d_params(D2dTechnology::kLteDirect).range_m,
            d2d_params(D2dTechnology::kWifiDirect).range_m);
  // At 500 m only LTE Direct works.
  EXPECT_EQ(d2d_rate_bps(D2dTechnology::kWifiDirect, 500.0), 0.0);
  EXPECT_GT(d2d_rate_bps(D2dTechnology::kLteDirect, 500.0), 0.0);
}

TEST(D2d, EnergyModelMatchesCitedComparison) {
  // WiFi Direct is the more energy-efficient choice per MB for small
  // transfers; LTE Direct discovers peers more cheaply.
  auto wd = d2d_params(D2dTechnology::kWifiDirect);
  auto ld = d2d_params(D2dTechnology::kLteDirect);
  EXPECT_LT(wd.energy_per_mb, ld.energy_per_mb);
  EXPECT_LT(ld.discovery_energy, wd.discovery_energy);
  // The paper's two verdicts: WiFi Direct wins small transfers among few
  // peers; LTE Direct wins when the crowd is dense.
  EXPECT_EQ(d2d_energy_winner(5.0, 2), D2dTechnology::kWifiDirect);
  EXPECT_EQ(d2d_energy_winner(5.0, 30), D2dTechnology::kLteDirect);
  // Energy is monotone in both inputs.
  EXPECT_LT(d2d_energy(D2dTechnology::kWifiDirect, 1.0, 1),
            d2d_energy(D2dTechnology::kWifiDirect, 10.0, 1));
  EXPECT_LT(d2d_energy(D2dTechnology::kLteDirect, 1.0, 1),
            d2d_energy(D2dTechnology::kLteDirect, 1.0, 10));
}

TEST(D2d, LinkConfigIsUsable) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto a = net.add_node("glasses");
  auto b = net.add_node("phone");
  auto cfg1 = d2d_link_config(D2dTechnology::kWifiDirect, 10.0);
  auto cfg2 = d2d_link_config(D2dTechnology::kWifiDirect, 10.0);
  net.connect(a, b, std::move(cfg1), std::move(cfg2));
  bool got = false;
  net.node(b).bind(5, [&](net::Packet&&) { got = true; });
  net::Packet p;
  p.src = a;
  p.dst = b;
  p.dst_port = 5;
  p.size_bytes = 1000;
  net.send(std::move(p));
  sim.run();
  EXPECT_TRUE(got);
}

TEST(Survey, TablesAreConsistent) {
  auto rows = wireless_survey();
  ASSERT_GE(rows.size(), 5u);
  for (const auto& r : rows) {
    EXPECT_FALSE(r.technology.empty());
    EXPECT_GE(r.theoretical_down_mbps, r.measured_down_mbps)
        << r.technology << ": measured must not exceed theoretical";
  }
  auto est = mar_bandwidth_estimates();
  ASSERT_GE(est.size(), 5u);
  // The paper's ordering: eye < compressed < uncompressed < raw estimate.
  EXPECT_LT(est[0].mbps, est[3].mbps * 10);
  EXPECT_LT(est[3].mbps, est[2].mbps);
  EXPECT_LT(est[2].mbps, est[1].mbps);
}

TEST(Cellular, Nr5gBlockageBurstsCollapseAndRestoreTheLink) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto c = net.add_node("c");
  auto t = net.add_node("t");
  auto att = attach_cellular(net, c, t, CellularProfile::nr_5g(), 21);
  att.modulator->start();
  // Track the uplink's rate while blocked vs clear.
  double min_blocked_rate = 1e18, min_clear_rate = 1e18;
  for (int i = 0; i < 60 * 50; ++i) {
    sim.at(milliseconds(20) * i, [&] {
      double r = att.uplink->rate_bps();
      if (att.modulator->blockage_active()) {
        min_blocked_rate = std::min(min_blocked_rate, r);
      } else {
        min_clear_rate = std::min(min_clear_rate, r);
      }
    });
  }
  sim.run_until(seconds(60));
  // ~15 bursts per minute at a 4 s mean clear time; be generous.
  EXPECT_GE(att.modulator->blockage_bursts(), 4);
  EXPECT_FALSE(att.modulator->blockage_log().empty());
  // Blocked capacity sits at 5% of the fading value: far under any clear
  // sample of a 120 Mb/s-mean uplink.
  EXPECT_LT(min_blocked_rate, 0.25 * min_clear_rate);
}

TEST(Cellular, Nr5gBlockageScheduleIsSeedDeterministic) {
  auto schedule = [](std::uint64_t seed) {
    sim::Simulator sim;
    net::Network net(sim, seed);
    auto c = net.add_node("c");
    auto t = net.add_node("t");
    auto att = attach_cellular(net, c, t, CellularProfile::nr_5g(), seed);
    att.modulator->start();
    sim.run_until(seconds(30));
    return std::make_pair(att.modulator->blockage_log(),
                          att.modulator->blockage_bursts());
  };
  auto [log_a, bursts_a] = schedule(77);
  auto [log_b, bursts_b] = schedule(77);
  auto [log_c, bursts_c] = schedule(78);
  EXPECT_EQ(bursts_a, bursts_b);
  EXPECT_EQ(log_a, log_b) << "same seed must give a byte-equal burst schedule";
  EXPECT_NE(log_a, log_c) << "different seeds should move the bursts";
  ASSERT_FALSE(log_a.empty());
}

TEST(Cellular, LegacyProfilesDrawNoBlockage) {
  // The blockage substream is forked only when the profile enables it, so
  // LTE/HSPA+ behavior (and fingerprints) are unchanged by the NR feature.
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto c = net.add_node("c");
  auto t = net.add_node("t");
  auto att = attach_cellular(net, c, t, CellularProfile::lte(), 21);
  att.modulator->start();
  sim.run_until(seconds(30));
  EXPECT_EQ(att.modulator->blockage_bursts(), 0);
  EXPECT_FALSE(att.modulator->blockage_active());
  EXPECT_TRUE(att.modulator->blockage_log().empty());
}

}  // namespace
}  // namespace arnet::wireless
