// arnet::fluid — mean-field cell model, packet cross-validation, city grid
// sharding, and the rng-discipline of per-cell seed streams.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "arnet/check/rng_audit.hpp"
#include "arnet/fleet/population.hpp"
#include "arnet/fluid/city.hpp"
#include "arnet/fluid/fluid.hpp"
#include "arnet/fluid/validate.hpp"
#include "arnet/obs/export.hpp"
#include "arnet/obs/registry.hpp"
#include "arnet/runner/experiment.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/slo/slo.hpp"

using namespace arnet;
using sim::seconds;

// ------------------------------------------------ per-cell diurnal profiles

TEST(DiurnalProfile, SlotsWrapAndPhaseShifts) {
  fleet::DiurnalProfile d;
  EXPECT_FALSE(d.active());  // empty curve = legacy fields stay in charge
  d.curve = {0.5, 2.0};
  d.period = seconds(10);
  ASSERT_TRUE(d.active());
  EXPECT_DOUBLE_EQ(d.multiplier(seconds(2)), 0.5);
  EXPECT_DOUBLE_EQ(d.multiplier(seconds(7)), 2.0);
  EXPECT_DOUBLE_EQ(d.multiplier(seconds(12)), 0.5);  // wraps
  EXPECT_DOUBLE_EQ(d.peak(), 2.0);

  d.phase = seconds(5);  // this cell's clock runs half a period ahead
  EXPECT_DOUBLE_EQ(d.multiplier(seconds(0)), 2.0);
  d.phase = -seconds(5);  // and behind: negative phases wrap, never index < 0
  EXPECT_DOUBLE_EQ(d.multiplier(seconds(2)), 2.0);
  EXPECT_DOUBLE_EQ(d.multiplier(seconds(7)), 0.5);
}

TEST(DiurnalProfile, PeakFloorsAtOneForThinning) {
  // Lewis-Shedler thins from base * peak; a curve entirely below 1.0 must
  // not shrink the majorizing rate below the base.
  fleet::DiurnalProfile d;
  d.curve = {0.2, 0.4};
  EXPECT_DOUBLE_EQ(d.peak(), 1.0);
}

TEST(Population, CellLocalProfileOverridesLegacyFields) {
  sim::Simulator s;
  fleet::PopulationConfig cfg;
  cfg.base_arrivals_per_s = 10.0;
  cfg.diurnal = {0.5, 2.0};  // legacy shape, would give 5 / 20
  cfg.diurnal_period = seconds(10);
  cfg.profile.curve = {3.0, 1.0};  // cell-local profile wins
  cfg.profile.period = seconds(20);
  fleet::PopulationModel p(s, cfg, 1);
  EXPECT_DOUBLE_EQ(p.diurnal_multiplier(seconds(2)), 3.0);
  EXPECT_DOUBLE_EQ(p.diurnal_multiplier(seconds(12)), 1.0);
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(2)), 30.0);
}

TEST(Population, InactiveProfileIsBitIdenticalToLegacy) {
  // Single-cell (no profile) behavior must not move: same seed, same config
  // modulo the inactive profile member, same arrival stream.
  sim::Simulator s1, s2;
  fleet::PopulationConfig legacy;
  legacy.base_arrivals_per_s = 8.0;
  legacy.diurnal = {0.5, 2.0, 1.0};
  legacy.diurnal_period = seconds(30);
  fleet::PopulationConfig with_default = legacy;  // profile present, inactive
  with_default.profile = fleet::DiurnalProfile{};
  fleet::PopulationModel a(s1, legacy, 42), b(s2, with_default, 42);
  std::vector<sim::Time> ta, tb;
  a.set_session_callback([&](const fleet::SessionSpec&) { ta.push_back(s1.now()); });
  b.set_session_callback([&](const fleet::SessionSpec&) { tb.push_back(s2.now()); });
  a.start();
  b.start();
  s1.run_until(seconds(60));
  s2.run_until(seconds(60));
  a.stop();
  b.stop();
  ASSERT_GT(ta.size(), 100u);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) ASSERT_EQ(ta[i], tb[i]) << i;
}

TEST(Population, PhaseStaggersIdenticalCurves) {
  sim::Simulator s;
  fleet::PopulationConfig cfg;
  cfg.base_arrivals_per_s = 1.0;
  cfg.profile.curve = {1.0, 2.0, 3.0, 4.0};
  cfg.profile.period = seconds(40);
  fleet::PopulationConfig shifted = cfg;
  shifted.profile.phase = seconds(10);  // one slot ahead
  fleet::PopulationModel a(s, cfg, 3), b(s, shifted, 3);
  for (int slot = 0; slot < 4; ++slot) {
    const sim::Time t = seconds(5 + 10 * slot);
    EXPECT_DOUBLE_EQ(b.diurnal_multiplier(t),
                     a.diurnal_multiplier(t + seconds(10)));
  }
}

// ------------------------------------------------------- SLO batch feeding

TEST(SloBatch, ObserveBatchMatchesPerFrameLoop) {
  slo::SloConfig cfg;
  cfg.deadline_ms = 75.0;
  slo::SloTracker loop(cfg), batch(cfg);
  const int kGood = 137, kMiss = 9;
  for (sim::Time t : {seconds(1), seconds(2), seconds(7)}) {
    for (int i = 0; i < kGood; ++i) loop.observe(t, 10.0);
    for (int i = 0; i < kMiss; ++i) loop.observe(t, 200.0);
    batch.observe_batch(t, kGood, kMiss);
    EXPECT_EQ(batch.good(), loop.good());
    EXPECT_EQ(batch.miss(), loop.miss());
    EXPECT_DOUBLE_EQ(batch.burn_fast(), loop.burn_fast());
    EXPECT_DOUBLE_EQ(batch.burn_slow(), loop.burn_slow());
    EXPECT_EQ(batch.state(), loop.state());
  }
}

TEST(SloBatch, EmptyBatchIsANoOp) {
  slo::SloTracker t((slo::SloConfig()));
  t.observe_batch(seconds(1), 0, 0);
  EXPECT_EQ(t.good(), 0);
  EXPECT_EQ(t.miss(), 0);
  EXPECT_EQ(t.burn_samples().size(), 0u);
}

TEST(SloBatch, BatchOverloadTripsFastBurn) {
  slo::SloConfig cfg;
  cfg.min_samples = 20;
  slo::SloTracker t(cfg);
  t.observe_batch(seconds(1), 50, 0);
  EXPECT_EQ(t.state(), slo::AlertState::kOk);
  t.observe_batch(seconds(2), 10, 90);  // 90% miss of a 1% budget
  EXPECT_EQ(t.state(), slo::AlertState::kFastBurn);
  EXPECT_EQ(t.alert_episodes(), 1u);
}

// ------------------------------------------- rng discipline across the city

TEST(RngAudit, ShardedCellStreamsAreCollisionFree) {
  // The city contract: per-cell subpopulations draw from
  // derive_seed(city_seed, cell_index) streams. An active auditor across a
  // whole grid's worth of populations must stay clean.
  check::RngAuditor auditor;
  {
    check::ScopedRngAudit scope(auditor);
    sim::Simulator s;
    fleet::PopulationConfig cfg;
    cfg.base_arrivals_per_s = 1.0;
    // Streams register with the auditor at Rng construction; collisions are
    // detected on registration, before any draw happens.
    std::vector<std::unique_ptr<fleet::PopulationModel>> pops;
    for (std::uint64_t cell = 0; cell < 64; ++cell) {
      pops.push_back(std::make_unique<fleet::PopulationModel>(
          s, cfg, runner::derive_seed(1, cell)));
    }
  }
  EXPECT_TRUE(auditor.clean()) << auditor.findings().size() << " findings";
}

TEST(RngAudit, SharedCellSeedIsCaughtAsCollision) {
  // The bug class the satellite exists for: two "independent" cells built
  // from the same root seed share every stream. The auditor must name it.
  check::RngAuditor auditor;
  {
    check::ScopedRngAudit scope(auditor);
    sim::Simulator s;
    fleet::PopulationConfig cfg;
    cfg.base_arrivals_per_s = 1.0;
    fleet::PopulationModel cell_a(s, cfg, runner::derive_seed(1, 7));
    fleet::PopulationModel cell_b(s, cfg, runner::derive_seed(1, 7));  // oops
  }
  EXPECT_FALSE(auditor.clean());
  bool saw_collision = false;
  for (const check::RngAuditor::Finding& f : auditor.findings()) {
    if (f.kind == check::RngAuditor::Violation::kSeedCollision) saw_collision = true;
  }
  EXPECT_TRUE(saw_collision);
}

// ------------------------------------------------------- fluid-cell physics

namespace {

fluid::FluidConfig quiet_cell() {
  fluid::FluidConfig f;
  f.seed = 9;
  f.population.base_arrivals_per_s = 0.5;
  f.population.mean_lifetime_s = 60.0;
  f.duration = seconds(30);
  return f;
}

}  // namespace

TEST(Fluid, LowLoadCellFollowsLittlesLaw) {
  fluid::FluidCell cell(quiet_cell());
  const fluid::FluidResult r = cell.run();
  // N(t) = a*L*(1 - e^{-t/L}) -> 30 * (1 - e^{-0.5}) at the horizon.
  const double expect_n = 0.5 * 60.0 * (1.0 - std::exp(-30.0 / 60.0));
  EXPECT_NEAR(r.peak_sessions, expect_n, 0.5);
  EXPECT_LT(r.p99_ms, 75.0);
  EXPECT_LT(r.miss_rate, 1e-9);
  EXPECT_LT(r.backlog_end, 1.0);
  EXPECT_EQ(r.first_breach, -1);
  EXPECT_GT(r.knee_sessions, 0.0);
  EXPECT_GT(r.frames, 0);
  // Open loop, no admission: everything that arrives is admitted.
  EXPECT_EQ(r.arrivals, r.admitted);
  EXPECT_EQ(r.rejected, 0u);
}

TEST(Fluid, RunIsDeterministic) {
  fluid::FluidCell a(quiet_cell()), b(quiet_cell());
  const fluid::FluidResult ra = a.run(), rb = b.run();
  EXPECT_EQ(ra.p99_ms, rb.p99_ms);
  EXPECT_EQ(ra.served_fps, rb.served_fps);
  EXPECT_EQ(ra.peak_sessions, rb.peak_sessions);
  ASSERT_EQ(ra.occupancy.size(), rb.occupancy.size());
  for (std::size_t i = 0; i < ra.occupancy.size(); ++i) {
    EXPECT_EQ(ra.occupancy[i], rb.occupancy[i]);
  }
}

TEST(Fluid, StepIsExposedForTheMicrobench) {
  fluid::FluidCell cell(quiet_cell());
  for (int i = 0; i < 10; ++i) cell.step();
  EXPECT_EQ(cell.now(), sim::milliseconds(1000));
  EXPECT_GT(cell.sessions(), 0.0);
  const fluid::FluidResult r = cell.finish();
  EXPECT_EQ(r.ticks, 10);
}

TEST(Fluid, OverloadBreachesBudgetAndAdmissionBoundsIt) {
  fluid::FluidConfig open = quiet_cell();
  open.population.base_arrivals_per_s = 10.0;  // ~600 offered vs ~94 knee
  open.duration = seconds(60);
  fluid::FluidResult r_open = fluid::FluidCell(open).run();
  EXPECT_GE(r_open.first_breach, 0);
  EXPECT_GT(r_open.p99_ms, 75.0);
  EXPECT_GT(r_open.miss_rate, 0.05);

  fluid::FluidConfig gated = open;
  gated.admission.enabled = true;
  fluid::FluidResult r_gate = fluid::FluidCell(gated).run();
  EXPECT_GT(r_gate.rejected, 0u);
  EXPECT_LT(r_gate.p99_ms, r_open.p99_ms);
}

TEST(Fluid, PublishesInstrumentsUnderEntity) {
  obs::MetricsRegistry reg;
  slo::SloConfig sc;
  sc.entity = "cell-under-test";
  slo::SloTracker slo(sc);
  fluid::FluidConfig f = quiet_cell();
  f.metrics = &reg;
  f.slo = &slo;
  f.entity = "cell-under-test";
  const fluid::FluidResult r = fluid::FluidCell(f).run();
  EXPECT_EQ(slo.good() + slo.miss(), r.frames);
  std::ostringstream os;
  obs::write_jsonl(reg, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("fluid.served"), std::string::npos);
  EXPECT_NE(out.find("fluid.m2p_ms"), std::string::npos);
  EXPECT_NE(out.find("cell-under-test"), std::string::npos);
}

// ------------------------------------------- packet cross-validation bands

// The tentpole contract: across 25-200 users the fluid model tracks the
// packet model within pinned tolerance bands. 25/50 sit below the ~94-user
// knee where both models are arrival-dominated; 100 straddles the knee (the
// mean-field approximation is weakest at the critical point, hence the wider
// band); 200 is deeply saturated where the backlog integral governs both.
// Bands were set from measured deltas (see EXPERIMENTS.md E18) with ~2x
// headroom; a regression that doubles the disagreement fails loudly.
namespace {

struct Band {
  double users;
  double p99_pct;
  double goodput_pct;
};

}  // namespace

TEST(FluidValidate, TracksPacketModelWithinBands) {
  const Band bands[] = {
      {25, 30.0, 12.0},
      {50, 30.0, 12.0},
      {100, 45.0, 20.0},
      {200, 45.0, 20.0},
  };
  for (const Band& b : bands) {
    const fluid::ValidationRow row =
        fluid::run_validation_level(b.users, seconds(20), 11);
    EXPECT_LE(row.p99_delta_pct, b.p99_pct)
        << b.users << " users: fluid p99 " << row.fluid.p99_ms << " vs packet "
        << row.packet.p99_ms;
    EXPECT_LE(row.goodput_delta_pct, b.goodput_pct)
        << b.users << " users: fluid fps " << row.fluid.served_fps
        << " vs packet " << row.packet.served_fps;
  }
}

TEST(FluidValidate, ConfigMirrorsPacketCell) {
  fleet::CellConfig cell;
  cell.name = "u100";
  cell.offered_users = 100;
  cell.admit = true;
  const fluid::FluidConfig f = fluid::fluid_cell_config(cell, 5);
  EXPECT_TRUE(f.admission.enabled);
  EXPECT_EQ(f.entity, "u100/fluid");
  EXPECT_EQ(f.duration, cell.duration);
}

// ------------------------------------------------------------- city grid

TEST(City, ArchetypeAssignmentIsDeterministic) {
  fluid::CityConfig city;  // 20x20 defaults
  EXPECT_EQ(fluid::archetype_index(city, 10, 10), 0u);  // downtown core
  // The ring between the core and the fabric is commercial.
  EXPECT_EQ(fluid::archetype_index(city, 10, 6), 1u);
  // Outside: hashed residential/nightlife/transit mix, stable per position.
  for (int cx = 0; cx < city.grid_x; ++cx) {
    for (int cy = 0; cy < city.grid_y; ++cy) {
      const std::size_t a = fluid::archetype_index(city, cx, cy);
      EXPECT_LT(a, 5u);
      EXPECT_EQ(a, fluid::archetype_index(city, cx, cy));
    }
  }
}

TEST(City, CellConfigCarriesStaggeredProfiles) {
  fluid::CityConfig city;
  const fluid::FluidConfig c0 = fluid::make_city_cell(city, 0, 100);
  const fluid::FluidConfig c1 = fluid::make_city_cell(city, 1, 101);
  EXPECT_TRUE(c0.population.profile.active());
  EXPECT_EQ(c0.population.profile.period, city.day);
  EXPECT_NE(c0.population.profile.phase, c1.population.profile.phase);
  EXPECT_EQ(c0.entity.rfind("cell:00,00/", 0), 0u);
  EXPECT_EQ(c0.duration, city.day);
}

namespace {

fluid::CityConfig tiny_city() {
  fluid::CityConfig city;
  city.grid_x = 2;
  city.grid_y = 2;
  city.day = seconds(600);
  city.tick = sim::milliseconds(500);
  city.mean_lifetime_s = 60.0;
  return city;
}

// The scale_city merge, in miniature: per-cell registries and SLO trackers
// indexed by run, merged in cell order after the pool drains.
std::pair<std::string, std::string> run_city_merged(int jobs) {
  const fluid::CityConfig city = tiny_city();
  std::vector<obs::MetricsRegistry> regs(city.cells());
  std::vector<std::unique_ptr<slo::SloTracker>> slos(city.cells());
  runner::ExperimentRunner::Config pc;
  pc.jobs = jobs;
  pc.root_seed = city.seed;
  runner::ExperimentRunner pool(pc);
  pool.for_each(city.cells(), [&](runner::RunContext& ctx) {
    const std::string entity =
        fluid::make_city_cell(city, ctx.run_index, ctx.seed).entity;
    slos[ctx.run_index] =
        std::make_unique<slo::SloTracker>(fluid::city_slo_config(city, entity));
    fluid::run_city_cell(city, ctx.run_index, ctx.seed, &regs[ctx.run_index],
                         slos[ctx.run_index].get());
  });
  obs::MetricsRegistry merged;
  for (const obs::MetricsRegistry& r : regs) merged.merge_from(r);
  std::ostringstream mo;
  obs::write_jsonl(merged, mo);
  std::vector<const slo::SloTracker*> trackers;
  for (const auto& s : slos) trackers.push_back(s.get());
  std::ostringstream so;
  slo::write_slo_jsonl(trackers, so);
  return {mo.str(), so.str()};
}

}  // namespace

TEST(City, SerialAndParallelShardsAreByteIdentical) {
  const auto serial = run_city_merged(1);
  const auto parallel = run_city_merged(4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_NE(serial.first.find("city.p99_ms"), std::string::npos);
  EXPECT_NE(serial.second.find("arnet-slo-v1"), std::string::npos);
}

TEST(City, CellGaugesCoverTheGrid) {
  const fluid::CityConfig city = tiny_city();
  obs::MetricsRegistry reg;
  const fluid::CityCellOutcome out =
      fluid::run_city_cell(city, 3, runner::derive_seed(city.seed, 3), &reg);
  EXPECT_EQ(out.cx, 1);
  EXPECT_EQ(out.cy, 1);
  EXPECT_GT(out.r.peak_sessions, 0.0);
  std::ostringstream os;
  obs::write_jsonl(reg, os);
  EXPECT_NE(os.str().find("city.peak_sessions"), std::string::npos);
  EXPECT_NE(os.str().find("city.first_breach_s"), std::string::npos);
}
