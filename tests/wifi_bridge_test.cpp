// Tests for WifiSharedMedium: DCF contention imported into routed
// Network scenarios, including the anomaly hitting a live MAR session.
#include <gtest/gtest.h>

#include "arnet/mar/offload.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/udp.hpp"
#include "arnet/wireless/wifi_bridge.hpp"

namespace arnet::wireless {
namespace {

using sim::milliseconds;
using sim::seconds;

struct Cell {
  sim::Simulator sim;
  net::Network net{sim, 21};
  net::NodeId ap, server;
  WifiSharedMedium medium{sim};
  std::vector<net::NodeId> stations;
  std::vector<net::Link*> uplinks;

  Cell() {
    ap = net.add_node("ap");
    server = net.add_node("server");
    net.connect(ap, server, 1e9, milliseconds(2), 1000);
  }

  net::NodeId add_station(double phy_bps) {
    auto sta = net.add_node("sta" + std::to_string(stations.size()));
    auto [up, down] = net.connect(sta, ap, 30e6, milliseconds(1), 300);
    (void)down;
    medium.attach(*up, phy_bps);
    stations.push_back(sta);
    uplinks.push_back(up);
    return sta;
  }
};

TEST(WifiSharedMedium, SoloStationGetsSoloGoodput) {
  Cell c;
  auto sta = c.add_station(54e6);
  c.net.compute_routes();
  c.medium.start();
  transport::UdpEndpoint sink(c.net, c.server, 90);
  std::int64_t bytes = 0;
  sink.set_handler([&](net::Packet&& p) { bytes += p.size_bytes; });
  transport::CbrSource::Config cbr;
  cbr.rate_bps = 60e6;  // saturate
  transport::CbrSource src(c.net, sta, 91, c.server, 90, cbr);
  src.start();
  c.sim.run_until(seconds(5));
  double mbps = bytes * 8.0 / 5 / 1e6;
  double solo = c.medium.solo_goodput_bps(54e6) / 1e6;
  EXPECT_NEAR(mbps, solo, 0.25 * solo);
}

TEST(WifiSharedMedium, AnomalyEqualizesThroughRoutedNetwork) {
  Cell c;
  auto fast = c.add_station(54e6);
  auto slow = c.add_station(6e6);
  c.net.compute_routes();
  c.medium.start();
  transport::UdpEndpoint sink(c.net, c.server, 90);
  std::int64_t fast_bytes = 0, slow_bytes = 0;
  sink.set_handler([&](net::Packet&& p) {
    (p.flow == 1 ? fast_bytes : slow_bytes) += p.size_bytes;
  });
  transport::CbrSource::Config cbr;
  cbr.rate_bps = 60e6;
  cbr.flow = 1;
  transport::CbrSource f(c.net, fast, 91, c.server, 90, cbr);
  cbr.flow = 2;
  transport::CbrSource s(c.net, slow, 92, c.server, 90, cbr);
  f.start();
  s.start();
  c.sim.run_until(seconds(5));
  double fast_mbps = fast_bytes * 8.0 / 5 / 1e6;
  double slow_mbps = slow_bytes * 8.0 / 5 / 1e6;
  // Equal opportunities: both land near the slow station's level.
  EXPECT_NEAR(fast_mbps / slow_mbps, 1.0, 0.3);
  EXPECT_LT(fast_mbps, 0.5 * c.medium.solo_goodput_bps(54e6) / 1e6);
}

TEST(WifiSharedMedium, IdleNeighborDoesNotThrottle) {
  Cell c;
  auto active = c.add_station(54e6);
  c.add_station(6e6);  // associated but silent
  c.net.compute_routes();
  c.medium.start();
  transport::UdpEndpoint sink(c.net, c.server, 90);
  std::int64_t bytes = 0;
  sink.set_handler([&](net::Packet&& p) { bytes += p.size_bytes; });
  transport::CbrSource::Config cbr;
  cbr.rate_bps = 60e6;
  transport::CbrSource src(c.net, active, 91, c.server, 90, cbr);
  src.start();
  c.sim.run_until(seconds(5));
  double mbps = bytes * 8.0 / 5 / 1e6;
  EXPECT_GT(mbps, 0.6 * c.medium.solo_goodput_bps(54e6) / 1e6);
}

TEST(WifiSharedMedium, MarSessionDegradesWhenSlowNeighborSaturates) {
  // The Fig. 2 consequence, live: an offloading session shares the cell
  // with a slow saturating neighbor.
  auto run = [](bool neighbor_active) {
    Cell c;
    auto user = c.add_station(54e6);
    auto neighbor = c.add_station(6e6);
    c.net.compute_routes();
    c.medium.start();
    mar::OffloadConfig cfg;
    cfg.strategy = mar::OffloadStrategy::kFullOffload;
    cfg.device = mar::DeviceClass::kSmartphone;
    mar::OffloadSession session(c.net, user, c.server, cfg);
    session.start();
    std::unique_ptr<transport::CbrSource> noise;
    transport::UdpEndpoint noise_sink(c.net, c.server, 99);
    noise_sink.set_handler([](net::Packet&&) {});
    if (neighbor_active) {
      transport::CbrSource::Config cbr;
      cbr.rate_bps = 20e6;
      noise = std::make_unique<transport::CbrSource>(c.net, neighbor, 98, c.server, 99, cbr);
      noise->start();
    }
    c.sim.run_until(seconds(15));
    session.stop();
    return session.stats().miss_rate();
  };
  double clean = run(false);
  double contended = run(true);
  EXPECT_LT(clean, 0.05);
  // The user's share falls to ~4.6 Mb/s, right at the feed's rate: misses
  // jump an order of magnitude even though ARTP shedding contains the worst.
  EXPECT_GT(contended, 0.10);
  EXPECT_GT(contended, clean + 0.08);
}

}  // namespace
}  // namespace arnet::wireless
