#include <gtest/gtest.h>

#include <vector>

#include "arnet/net/link.hpp"
#include "arnet/net/loss.hpp"
#include "arnet/net/network.hpp"
#include "arnet/net/queue.hpp"
#include "arnet/sim/simulator.hpp"

namespace arnet::net {
namespace {

using sim::milliseconds;
using sim::seconds;

Packet make_packet(std::int32_t size, Priority prio = Priority::kLowest) {
  Packet p;
  p.size_bytes = size;
  p.priority = prio;
  return p;
}

// ------------------------------------------------------------------ Queues

TEST(DropTailQueue, FifoOrderAndByteAccounting) {
  DropTailQueue q(10);
  for (int i = 0; i < 3; ++i) {
    Packet p = make_packet(100 * (i + 1));
    p.uid = static_cast<std::uint64_t>(i + 1);
    ASSERT_TRUE(q.enqueue(std::move(p), 0));
  }
  EXPECT_EQ(q.packets(), 3u);
  EXPECT_EQ(q.bytes(), 600);
  auto p = q.dequeue(0);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->uid, 1u);
  EXPECT_EQ(q.bytes(), 500);
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(2);
  EXPECT_TRUE(q.enqueue(make_packet(100), 0));
  EXPECT_TRUE(q.enqueue(make_packet(100), 0));
  EXPECT_FALSE(q.enqueue(make_packet(100), 0));
  EXPECT_EQ(q.drops(), 1);
  EXPECT_EQ(q.packets(), 2u);
}

TEST(DropTailQueue, EmptyDequeueReturnsNullopt) {
  DropTailQueue q(2);
  EXPECT_FALSE(q.dequeue(0));
  EXPECT_TRUE(q.empty());
}

TEST(CoDelQueue, NoDropsAtLowDelay) {
  CoDelQueue q;
  // Packets dequeued immediately: sojourn ~0, CoDel must never drop.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.enqueue(make_packet(1500), milliseconds(i)));
    ASSERT_TRUE(q.dequeue(milliseconds(i)));
  }
  EXPECT_EQ(q.drops(), 0);
}

TEST(CoDelQueue, DropsUnderStandingQueue) {
  CoDelQueue q;
  // Build a standing queue, then dequeue with sojourn far above target.
  sim::Time t = 0;
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(q.enqueue(make_packet(1500), t));
  t = milliseconds(400);  // every packet has 400 ms sojourn, target is 5 ms
  int delivered = 0;
  while (auto p = q.dequeue(t)) {
    ++delivered;
    t += milliseconds(12);  // slow drain keeps the standing queue
  }
  EXPECT_GT(q.drops(), 0);
  EXPECT_LT(delivered, 500);
}

TEST(FqCoDelQueue, IsolatesFlows) {
  FqCoDelQueue q;
  // Flow 1 floods, flow 2 sends one packet; flow 2 must not wait behind all
  // of flow 1's backlog.
  for (int i = 0; i < 50; ++i) {
    Packet p = make_packet(1500);
    p.flow = 1;
    p.uid = 100 + static_cast<std::uint64_t>(i);
    ASSERT_TRUE(q.enqueue(std::move(p), 0));
  }
  Packet lone = make_packet(200);
  lone.flow = 2;
  lone.uid = 999;
  ASSERT_TRUE(q.enqueue(std::move(lone), 0));

  // The lone packet must appear within the first few dequeues (new-flow
  // priority), far earlier than position 51.
  int position = -1;
  for (int i = 0; i < 51; ++i) {
    auto p = q.dequeue(0);
    ASSERT_TRUE(p);
    if (p->uid == 999) {
      position = i;
      break;
    }
  }
  ASSERT_GE(position, 0);
  EXPECT_LE(position, 3);
}

TEST(FqCoDelQueue, CountsStayConsistent) {
  FqCoDelQueue q;
  for (int f = 0; f < 8; ++f) {
    for (int i = 0; i < 10; ++i) {
      Packet p = make_packet(500);
      p.flow = static_cast<FlowId>(f);
      ASSERT_TRUE(q.enqueue(std::move(p), 0));
    }
  }
  EXPECT_EQ(q.packets(), 80u);
  int n = 0;
  while (q.dequeue(0)) ++n;
  EXPECT_EQ(n, 80);
  EXPECT_EQ(q.packets(), 0u);
  EXPECT_EQ(q.bytes(), 0);
}

TEST(ClassfulPriorityQueue, StrictPriorityOrder) {
  ClassfulPriorityQueue q;
  Packet low = make_packet(100, Priority::kLowest);
  low.uid = 1;
  Packet high = make_packet(100, Priority::kHighest);
  high.uid = 2;
  Packet mid = make_packet(100, Priority::kMediumNoDrop);
  mid.uid = 3;
  ASSERT_TRUE(q.enqueue(std::move(low), 0));
  ASSERT_TRUE(q.enqueue(std::move(high), 0));
  ASSERT_TRUE(q.enqueue(std::move(mid), 0));
  EXPECT_EQ(q.dequeue(0)->uid, 2u);
  EXPECT_EQ(q.dequeue(0)->uid, 3u);
  EXPECT_EQ(q.dequeue(0)->uid, 1u);
}

TEST(ClassfulPriorityQueue, ShedDropsLowBands) {
  ClassfulPriorityQueue q;
  ASSERT_TRUE(q.enqueue(make_packet(100, Priority::kHighest), 0));
  ASSERT_TRUE(q.enqueue(make_packet(100, Priority::kMediumNoDrop), 0));
  ASSERT_TRUE(q.enqueue(make_packet(100, Priority::kMediumNoDelay), 0));
  ASSERT_TRUE(q.enqueue(make_packet(100, Priority::kLowest), 0));
  std::size_t shed = q.shed_at_or_below(Priority::kMediumNoDelay);
  EXPECT_EQ(shed, 2u);
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_EQ(q.bytes(), 200);
}

// ------------------------------------------------------------------- Links

struct LinkFixture : ::testing::Test {
  sim::Simulator sim;
  std::vector<Packet> received;

  std::unique_ptr<Link> make_link(Link::Config cfg) {
    auto link = std::make_unique<Link>(sim, sim::Rng(1), std::move(cfg));
    link->set_sink([this](Packet&& p) { received.push_back(std::move(p)); });
    return link;
  }
};

TEST_F(LinkFixture, DeliversWithSerializationPlusPropagation) {
  Link::Config cfg;
  cfg.rate_bps = 12e6;  // 1500 B = 1 ms
  cfg.delay = milliseconds(5);
  auto link = make_link(std::move(cfg));
  link->send(make_packet(1500));
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(sim.now(), milliseconds(6));
}

TEST_F(LinkFixture, BackToBackPacketsSerialize) {
  Link::Config cfg;
  cfg.rate_bps = 12e6;
  cfg.delay = 0;
  auto link = make_link(std::move(cfg));
  for (int i = 0; i < 10; ++i) link->send(make_packet(1500));
  sim.run();
  ASSERT_EQ(received.size(), 10u);
  EXPECT_EQ(sim.now(), milliseconds(10));  // 10 x 1 ms, pipelined queueing
}

TEST_F(LinkFixture, QueueOverflowDrops) {
  Link::Config cfg;
  cfg.rate_bps = 1e6;
  cfg.delay = 0;
  cfg.queue_packets = 5;
  auto link = make_link(std::move(cfg));
  for (int i = 0; i < 20; ++i) link->send(make_packet(1500));
  sim.run();
  // 1 in flight + 5 queued survive from the initial burst.
  EXPECT_EQ(received.size(), 6u);
  EXPECT_EQ(link->queue().drops(), 14);
}

TEST_F(LinkFixture, BernoulliLossDropsSomePackets) {
  Link::Config cfg;
  cfg.rate_bps = 100e6;
  cfg.delay = 0;
  cfg.queue_packets = 10000;
  cfg.loss = std::make_unique<BernoulliLoss>(0.2);
  auto link = make_link(std::move(cfg));
  for (int i = 0; i < 2000; ++i) link->send(make_packet(100));
  sim.run();
  double loss = 1.0 - static_cast<double>(received.size()) / 2000.0;
  EXPECT_NEAR(loss, 0.2, 0.05);
  EXPECT_EQ(link->lost_packets(), 2000 - static_cast<std::int64_t>(received.size()));
}

TEST_F(LinkFixture, DownLinkLosesTraffic) {
  Link::Config cfg;
  cfg.rate_bps = 1e6;
  cfg.delay = milliseconds(10);
  auto link = make_link(std::move(cfg));
  link->send(make_packet(1500));
  link->set_up(false);
  link->send(make_packet(1500));
  sim.run();
  EXPECT_TRUE(received.empty());
  link->set_up(true);
  link->send(make_packet(1500));
  sim.run();
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(LinkFixture, RateChangeAppliesToNextPacket) {
  Link::Config cfg;
  cfg.rate_bps = 12e6;
  cfg.delay = 0;
  auto link = make_link(std::move(cfg));
  link->send(make_packet(1500));
  sim.run();
  EXPECT_EQ(sim.now(), milliseconds(1));
  link->set_rate(1.2e6);
  link->send(make_packet(1500));
  sim.run();
  EXPECT_EQ(sim.now(), milliseconds(11));  // 10 ms at the new rate
}

TEST(GilbertElliott, ProducesBurstyLoss) {
  sim::Rng rng(3);
  GilbertElliottLoss::Config cfg;
  cfg.p_good_to_bad = 0.02;
  cfg.p_bad_to_good = 0.2;
  cfg.loss_in_good = 0.001;
  cfg.loss_in_bad = 0.6;
  GilbertElliottLoss ge(cfg);
  Packet p = make_packet(100);
  int losses = 0, runs = 0;
  bool prev = false;
  for (int i = 0; i < 50000; ++i) {
    bool l = ge.lose(rng, p);
    losses += l ? 1 : 0;
    if (l && !prev) ++runs;
    prev = l;
  }
  ASSERT_GT(losses, 0);
  double mean_burst = static_cast<double>(losses) / runs;
  // Bursty: mean run length clearly above 1 (independent losses give ~1.05).
  EXPECT_GT(mean_burst, 1.2);
}

// ----------------------------------------------------------------- Network

TEST(Network, RoutesAcrossMultipleHops) {
  sim::Simulator sim;
  Network net(sim, 1);
  NodeId a = net.add_node("a");
  NodeId r = net.add_node("r");
  NodeId b = net.add_node("b");
  net.connect(a, r, 100e6, milliseconds(1));
  net.connect(r, b, 100e6, milliseconds(2));

  std::vector<Packet> got;
  net.node(b).bind(7, [&](Packet&& p) { got.push_back(std::move(p)); });

  Packet p = make_packet(1000);
  p.src = a;
  p.dst = b;
  p.dst_port = 7;
  net.send(std::move(p));
  sim.run();
  ASSERT_EQ(got.size(), 1u);
  // Two serializations (0.08 ms each) + 3 ms propagation.
  EXPECT_GT(sim.now(), milliseconds(3));
  EXPECT_LT(sim.now(), milliseconds(4));
}

TEST(Network, PicksLowerDelayPath) {
  sim::Simulator sim;
  Network net(sim, 1);
  NodeId a = net.add_node("a");
  NodeId fast = net.add_node("fast");
  NodeId slow = net.add_node("slow");
  NodeId b = net.add_node("b");
  net.connect(a, fast, 100e6, milliseconds(1));
  net.connect(fast, b, 100e6, milliseconds(1));
  net.connect(a, slow, 100e6, milliseconds(50));
  net.connect(slow, b, 100e6, milliseconds(50));

  int via_fast = 0;
  net.node(b).bind(7, [&](Packet&&) {});
  Packet p = make_packet(100);
  p.src = a;
  p.dst = b;
  p.dst_port = 7;
  net.send(std::move(p));
  sim.run();
  via_fast = static_cast<int>(net.link_between(a, fast)->delivered_packets());
  EXPECT_EQ(via_fast, 1);
  EXPECT_EQ(net.link_between(a, slow)->delivered_packets(), 0);
}

TEST(Network, ForwardingDelayAddsMiddleboxLatency) {
  sim::Simulator sim;
  Network net(sim, 1);
  NodeId a = net.add_node("a");
  NodeId fw = net.add_node("firewall");
  NodeId b = net.add_node("b");
  net.connect(a, fw, 1e9, milliseconds(1));
  net.connect(fw, b, 1e9, milliseconds(1));
  net.node(fw).set_forwarding_delay(milliseconds(15));

  sim::Time arrival = -1;
  net.node(b).bind(7, [&](Packet&&) { arrival = sim.now(); });
  Packet p = make_packet(100);
  p.src = a;
  p.dst = b;
  p.dst_port = 7;
  net.send(std::move(p));
  sim.run();
  EXPECT_GE(arrival, milliseconds(17));
}

TEST(Network, LocalDeliveryWorks) {
  sim::Simulator sim;
  Network net(sim, 1);
  NodeId a = net.add_node("a");
  bool got = false;
  net.node(a).bind(9, [&](Packet&&) { got = true; });
  Packet p = make_packet(10);
  p.src = a;
  p.dst = a;
  p.dst_port = 9;
  net.send(std::move(p));
  sim.run();
  EXPECT_TRUE(got);
}

TEST(Network, SendViaOverridesFirstHop) {
  sim::Simulator sim;
  Network net(sim, 1);
  NodeId a = net.add_node("a");
  NodeId fast = net.add_node("fast");
  NodeId slow = net.add_node("slow");
  NodeId b = net.add_node("b");
  net.connect(a, fast, 100e6, milliseconds(1));
  net.connect(fast, b, 100e6, milliseconds(1));
  auto [to_slow, from_slow] = net.connect(a, slow, 100e6, milliseconds(50));
  (void)from_slow;
  net.connect(slow, b, 100e6, milliseconds(50));
  net.node(b).bind(7, [&](Packet&&) {});

  Packet p = make_packet(100);
  p.src = a;
  p.dst = b;
  p.dst_port = 7;
  net.send_via(*to_slow, std::move(p));
  sim.run();
  EXPECT_EQ(net.link_between(a, slow)->delivered_packets(), 1);
  EXPECT_EQ(net.link_between(slow, b)->delivered_packets(), 1);
  EXPECT_EQ(net.link_between(a, fast)->delivered_packets(), 0);
}

TEST(Network, UnroutablePacketIsDropped) {
  sim::Simulator sim;
  Network net(sim, 1);
  NodeId a = net.add_node("a");
  NodeId b = net.add_node("b");  // no link
  net.node(b).bind(7, [&](Packet&&) { FAIL() << "unroutable packet delivered"; });
  Packet p = make_packet(10);
  p.src = a;
  p.dst = b;
  p.dst_port = 7;
  net.send(std::move(p));
  sim.run();
}

TEST(Network, AssignsUniqueUids) {
  sim::Simulator sim;
  Network net(sim, 1);
  NodeId a = net.add_node("a");
  NodeId b = net.add_node("b");
  net.connect(a, b, 1e9, 0);
  std::vector<std::uint64_t> uids;
  net.node(b).bind(7, [&](Packet&& p) { uids.push_back(p.uid); });
  for (int i = 0; i < 5; ++i) {
    Packet p = make_packet(10);
    p.src = a;
    p.dst = b;
    p.dst_port = 7;
    net.send(std::move(p));
  }
  sim.run();
  ASSERT_EQ(uids.size(), 5u);
  std::sort(uids.begin(), uids.end());
  EXPECT_EQ(std::unique(uids.begin(), uids.end()), uids.end());
}

}  // namespace
}  // namespace arnet::net
