// Tests for the adaptive offloading runtime: strategy selection must follow
// the live link conditions (the paper's x/y split chosen dynamically).
#include <gtest/gtest.h>

#include "arnet/mar/offload.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"

namespace arnet::mar {
namespace {

using sim::milliseconds;
using sim::seconds;

struct AdaptiveFixture {
  sim::Simulator sim;
  net::Network net{sim, 55};
  net::NodeId client, server;
  net::Link* up;

  AdaptiveFixture(double bps, sim::Time delay) {
    client = net.add_node("client");
    server = net.add_node("edge");
    auto [u, d] = net.connect(client, server, bps, delay, 500);
    up = u;
    (void)d;
  }
};

TEST(Adaptive, PicksCloudRidArOnGoodEdgeLink) {
  AdaptiveFixture f(30e6, milliseconds(6));
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kAdaptive;
  cfg.device = DeviceClass::kSmartphone;
  OffloadSession s(f.net, f.client, f.server, cfg);
  s.start();
  f.sim.run_until(seconds(10));
  EXPECT_EQ(s.active_strategy(), OffloadStrategy::kCloudRidAR);
  EXPECT_LT(s.stats().miss_rate(), 0.1);
}

TEST(Adaptive, FallsBackToGlimpseOnFarServer) {
  // 60 ms one-way: no per-frame offload can meet 75 ms; the runtime must
  // hide latency behind local tracking.
  AdaptiveFixture f(30e6, milliseconds(60));
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kAdaptive;
  cfg.device = DeviceClass::kSmartphone;
  OffloadSession s(f.net, f.client, f.server, cfg);
  s.start();
  f.sim.run_until(seconds(10));
  EXPECT_EQ(s.active_strategy(), OffloadStrategy::kGlimpse);
}

TEST(Adaptive, PicksLocalOnDesktopWithBadNetwork) {
  AdaptiveFixture f(1e6, milliseconds(80));
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kAdaptive;
  cfg.device = DeviceClass::kDesktop;  // can run vision locally
  OffloadSession s(f.net, f.client, f.server, cfg);
  s.start();
  f.sim.run_until(seconds(10));
  EXPECT_EQ(s.active_strategy(), OffloadStrategy::kLocalOnly);
  EXPECT_LT(s.stats().miss_rate(), 0.05);
}

TEST(Adaptive, SwitchesWhenLinkDegrades) {
  AdaptiveFixture f(30e6, milliseconds(6));
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kAdaptive;
  cfg.device = DeviceClass::kSmartphone;
  OffloadSession s(f.net, f.client, f.server, cfg);
  s.start();
  f.sim.run_until(seconds(5));
  EXPECT_EQ(s.active_strategy(), OffloadStrategy::kCloudRidAR);
  // The edge path degrades to WAN-like latency mid-session.
  f.up->set_delay(milliseconds(70));
  f.net.link_between(f.server, f.client)->set_delay(milliseconds(70));
  f.sim.run_until(seconds(15));
  EXPECT_EQ(s.active_strategy(), OffloadStrategy::kGlimpse);
  EXPECT_GE(s.strategy_switches(), 1);
}

TEST(Adaptive, RecoversWhenLinkHeals) {
  AdaptiveFixture f(30e6, milliseconds(70));
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kAdaptive;
  cfg.device = DeviceClass::kSmartphone;
  OffloadSession s(f.net, f.client, f.server, cfg);
  s.start();
  f.sim.run_until(seconds(5));
  EXPECT_EQ(s.active_strategy(), OffloadStrategy::kGlimpse);
  f.up->set_delay(milliseconds(5));
  f.net.link_between(f.server, f.client)->set_delay(milliseconds(5));
  f.sim.run_until(seconds(15));
  EXPECT_EQ(s.active_strategy(), OffloadStrategy::kCloudRidAR);
}

TEST(Adaptive, BeatsEveryFixedStrategyOnAVaryingLink) {
  // Link alternates between edge-grade and WAN-grade every 8 s; the
  // adaptive runtime should limit deadline misses versus fixed CloudRidAR.
  auto run = [](OffloadStrategy strategy) {
    AdaptiveFixture f(30e6, milliseconds(6));
    for (int i = 0; i < 5; ++i) {
      f.sim.at(seconds(8 * (i + 1)), [&f, i] {
        sim::Time d = i % 2 == 0 ? milliseconds(65) : milliseconds(6);
        f.up->set_delay(d);
        f.net.link_between(f.server, f.client)->set_delay(d);
      });
    }
    OffloadConfig cfg;
    cfg.strategy = strategy;
    cfg.device = DeviceClass::kSmartphone;
    OffloadSession s(f.net, f.client, f.server, cfg);
    s.start();
    f.sim.run_until(seconds(48));
    s.stop();
    return s.stats().miss_rate();
  };
  double adaptive = run(OffloadStrategy::kAdaptive);
  double fixed = run(OffloadStrategy::kCloudRidAR);
  EXPECT_LT(adaptive, 0.75 * fixed);
}

}  // namespace
}  // namespace arnet::mar
