// Causal-tracing subsystem tests: ring accounting, cross-layer context
// propagation, exporter well-formedness (Perfetto JSON, pcap-ng, flight
// JSONL), the crash flight recorder, drop-reason attribution, the sim-time
// profiler, and the fingerprint contract (tracing must not perturb runs).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arnet/check/assert.hpp"
#include "arnet/check/determinism.hpp"
#include "arnet/mar/offload.hpp"
#include "arnet/net/network.hpp"
#include "arnet/net/queue.hpp"
#include "arnet/obs/registry.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/trace/export.hpp"
#include "arnet/trace/flight.hpp"
#include "arnet/trace/pcap.hpp"
#include "arnet/trace/profiler.hpp"
#include "arnet/trace/trace.hpp"
#include "arnet/transport/artp.hpp"
#include "arnet/transport/tcp.hpp"
#include "arnet/wireless/wifi.hpp"

namespace arnet {
namespace {

using net::Link;
using net::Network;
using net::NodeId;
using sim::milliseconds;
using sim::seconds;

// ------------------------------------------------------------------- rings

TEST(TraceRing, WrapsOverwritingOldestAndAccountsOverflow) {
  trace::Ring<int> ring(4);
  for (int i = 0; i < 10; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.overflowed(), 6u);
  std::vector<int> seen;
  ring.for_each([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{6, 7, 8, 9}));  // oldest -> newest
}

TEST(TraceRing, PartialFillKeepsInsertionOrder) {
  trace::Ring<int> ring(8);
  for (int i = 0; i < 3; ++i) ring.push(i);
  EXPECT_EQ(ring.overflowed(), 0u);
  std::vector<int> seen;
  ring.for_each([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

TEST(TraceRing, TracerTotalsAggregateAcrossEntities) {
  trace::Tracer::Config cfg;
  cfg.ring_capacity = 2;
  trace::Tracer tracer(cfg);
  auto a = tracer.register_entity("a");
  auto b = tracer.register_entity("b");
  trace::TraceEvent e;
  for (int i = 0; i < 5; ++i) tracer.record(a, e);
  tracer.record(b, e);
  EXPECT_EQ(tracer.total_recorded(), 6u);
  EXPECT_EQ(tracer.total_overflowed(), 3u);
  EXPECT_EQ(tracer.entity_count(), 2u);
}

// ------------------------------------------------- context propagation

// ARTP chunks minted with a TraceContext must carry it across the net layer:
// the link's ring and the receiver's ring see the same trace id.
TEST(TracePropagation, ArtpContextSurvivesTransportAndNet) {
  sim::Simulator sim;
  Network net(sim, 7);
  trace::Tracer tracer;
  auto client = net.add_node("client");
  auto server = net.add_node("server");
  net.connect(client, server, 10e6, milliseconds(5), 100);
  net.compute_routes();
  net.attach_trace(tracer);

  transport::ArtpSenderConfig scfg;
  scfg.tracer = &tracer;
  transport::ArtpReceiver::Config rcfg;
  rcfg.tracer = &tracer;
  transport::ArtpReceiver rx(net, server, 80, rcfg);
  std::vector<transport::ArtpDelivery> deliveries;
  rx.set_message_callback(
      [&](const transport::ArtpDelivery& d) { deliveries.push_back(d); });
  transport::ArtpSender tx(net, client, 1000, server, 80, 1, scfg);

  transport::ArtpMessageSpec m;
  m.bytes = 4000;
  m.tclass = net::TrafficClass::kCriticalData;
  m.priority = net::Priority::kHighest;
  m.app = net::AppData::kFeaturePayload;
  m.trace = tracer.new_trace();
  tx.send_message(m);
  sim.run_until(seconds(1));

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].trace.trace_id, m.trace.trace_id);

  // Every layer recorded events under the same trace id.
  int link_events = 0, sender_events = 0, receiver_events = 0;
  for (const auto& e : tracer.collect()) {
    if (e.trace_id != m.trace.trace_id) continue;
    const std::string& name = tracer.entity_name(e.entity);
    if (name.rfind("link:", 0) == 0) ++link_events;
    if (name == "artp-tx") ++sender_events;
    if (name == "artp-rx") ++receiver_events;
  }
  EXPECT_GT(link_events, 0);
  EXPECT_GT(sender_events, 0);
  EXPECT_GT(receiver_events, 0);
}

TEST(TracePropagation, TcpSourceRecordsTxAndAck) {
  sim::Simulator sim;
  Network net(sim, 7);
  trace::Tracer tracer;
  auto client = net.add_node("client");
  auto server = net.add_node("server");
  net.connect(client, server, 10e6, milliseconds(5), 100);
  net.compute_routes();

  transport::TcpSink sink(net, server, 80);
  transport::TcpSource::Config cfg;
  cfg.tracer = &tracer;
  transport::TcpSource src(net, client, 1000, server, 80, 1, cfg);
  src.send(50'000);
  sim.run_until(seconds(2));
  EXPECT_TRUE(src.complete());

  int tx = 0, ack = 0;
  std::uint32_t trace_id = 0;
  for (const auto& e : tracer.collect()) {
    if (e.kind == trace::EventKind::kTx) {
      ++tx;
      trace_id = e.trace_id;
    }
    if (e.kind == trace::EventKind::kAck) ++ack;
  }
  EXPECT_GT(tx, 0);
  EXPECT_GT(ack, 0);
  EXPECT_NE(trace_id, 0u);  // per-connection context minted at construction
}

// --------------------------------------------------------- drop reasons

// Each discard path must reach the drop hook with its own DropReason: a full
// DropTail reports kQueue, CoDel's control law reports kAqm, and both surface
// as distinct "net.drop.<reason>"-style strings via to_string.
TEST(TraceDropReasons, DropTailReportsQueueCoDelReportsAqm) {
  auto flood = [](net::Queue& q, int packets) {
    std::vector<std::pair<net::DropReason, std::uint64_t>> drops;
    q.set_drop_hook([&](const net::Packet& p, net::DropReason r) {
      drops.emplace_back(r, p.uid);
    });
    for (int i = 0; i < packets; ++i) {
      net::Packet p;
      p.uid = static_cast<std::uint64_t>(i) + 1;
      p.size_bytes = 1500;
      q.enqueue(std::move(p), 0);
    }
    return drops;
  };

  net::DropTailQueue tail(4);
  auto tail_drops = flood(tail, 10);
  ASSERT_EQ(tail_drops.size(), 6u);
  for (const auto& [r, uid] : tail_drops) EXPECT_EQ(r, net::DropReason::kQueue);

  // CoDel: build a standing queue, then dequeue across > interval of sojourn
  // so the control law kicks in during dequeue.
  net::CoDelQueue::Config ccfg;
  ccfg.target = milliseconds(5);
  ccfg.interval = milliseconds(100);
  net::CoDelQueue codel(ccfg);
  std::vector<net::DropReason> codel_drops;
  codel.set_drop_hook(
      [&](const net::Packet&, net::DropReason r) { codel_drops.push_back(r); });
  for (int i = 0; i < 200; ++i) {
    net::Packet p;
    p.uid = static_cast<std::uint64_t>(i) + 1;
    p.size_bytes = 1500;
    codel.enqueue(std::move(p), 0);
  }
  sim::Time now = milliseconds(120);  // every packet's sojourn is over target
  while (auto p = codel.dequeue(now)) now += milliseconds(2);
  ASSERT_FALSE(codel_drops.empty());
  for (auto r : codel_drops) EXPECT_EQ(r, net::DropReason::kAqm);
  EXPECT_STREQ(net::to_string(net::DropReason::kQueue), "queue");
  EXPECT_STREQ(net::to_string(net::DropReason::kAqm), "aqm");
  EXPECT_STREQ(net::to_string(net::DropReason::kShed), "shed");
}

// A traced link whose queue tail-drops records kDrop events with the reason
// string attached, and the obs counters pick up the per-reason name.
TEST(TraceDropReasons, LinkDropEventsCarryReasonString) {
  sim::Simulator sim;
  Network net(sim, 7);
  trace::Tracer tracer;
  obs::MetricsRegistry reg;
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  Link::Config up;
  up.rate_bps = 1e6;
  up.delay = milliseconds(5);
  up.queue_packets = 2;  // tiny: bursts must tail-drop
  Link& link = net.add_link(a, b, std::move(up));
  net.compute_routes();
  link.attach_trace(tracer, "link:a->b");
  link.attach_obs(reg, "a->b");

  for (int i = 0; i < 50; ++i) {
    net::Packet p;
    p.src = a;
    p.dst = b;
    p.size_bytes = 1500;
    net.send(std::move(p));
  }
  sim.run_until(seconds(1));

  int drops = 0;
  for (const auto& e : tracer.collect()) {
    if (e.kind == trace::EventKind::kDrop) {
      ++drops;
      ASSERT_NE(e.reason, nullptr);
      EXPECT_STREQ(e.reason, "queue");
    }
  }
  EXPECT_GT(drops, 0);
}

TEST(TraceDropReasons, WifiCellDropsGetDistinctReasonsAndCounters) {
  sim::Simulator sim;
  trace::Tracer tracer;
  obs::MetricsRegistry reg;
  wireless::WifiCell::Config cfg;
  cfg.queue_packets = 2;  // force queue-full drops under a burst
  wireless::WifiCell cell(sim, sim::Rng(1), cfg);
  auto sta = cell.add_station(54e6, "sta");
  cell.attach_trace(tracer, "wifi:cell");
  cell.attach_obs(reg, "cell");
  for (int i = 0; i < 20; ++i) {
    net::Packet p;
    p.uid = static_cast<std::uint64_t>(i) + 1;
    p.size_bytes = 1500;
    cell.send(sta, wireless::WifiCell::kApId, std::move(p));
  }
  sim.run_until(seconds(1));

  int queue_full = 0;
  for (const auto& e : tracer.collect()) {
    if (e.kind == trace::EventKind::kDrop) {
      ASSERT_NE(e.reason, nullptr);
      if (std::strcmp(e.reason, "queue-full") == 0) ++queue_full;
    }
  }
  EXPECT_GT(queue_full, 0);
  const obs::Counter* c = reg.find_counter("wifi.drop.queue-full", "cell");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), queue_full);
}

// ----------------------------------------------------------- exporters

// A traced end-to-end MAR run used by several exporter tests.
struct TracedOffloadRun {
  sim::Simulator sim;
  Network net{sim, 11};
  trace::Tracer tracer;
  std::unique_ptr<mar::OffloadSession> session;
  std::uint32_t last_frame = 0;
  sim::Time last_latency = 0;

  TracedOffloadRun() {
    auto user = net.add_node("user");
    auto edge = net.add_node("edge");
    net.connect(user, edge, 20e6, milliseconds(8), 200);
    net.compute_routes();
    tracer.set_wire_capture(true);  // the pcap exporter tests read the ring
    net.attach_trace(tracer);
    mar::OffloadConfig cfg;
    cfg.strategy = mar::OffloadStrategy::kCloudRidAR;
    cfg.tracer = &tracer;
    session = std::make_unique<mar::OffloadSession>(net, user, edge, cfg);
    session->set_result_callback([this](std::uint32_t f, sim::Time lat) {
      last_frame = f;
      last_latency = lat;
    });
    session->start();
    sim.run_until(seconds(1));
    session->stop();
  }
};

TEST(TraceExport, PerfettoJsonIsWellFormed) {
  TracedOffloadRun run;
  std::ostringstream os;
  trace::write_perfetto_json(run.tracer, os);
  const std::string json = os.str();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  // Braces and brackets balance (no truncated emission).
  long braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // entity metadata
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // synthesized spans
  EXPECT_NE(json.find("\"arnet-trace-v1\""), std::string::npos);
  // The MAR frame span pairing produced at least one "frame" slice.
  EXPECT_NE(json.find("\"name\":\"frame\""), std::string::npos);
}

TEST(TraceExport, PcapngBlockStructureIsValid) {
  TracedOffloadRun run;
  std::ostringstream os;
  trace::write_pcapng(run.tracer, os);
  const std::string buf = os.str();
  ASSERT_GE(buf.size(), 28u);

  auto u32 = [&](std::size_t off) {
    std::uint32_t v;
    std::memcpy(&v, buf.data() + off, 4);
    return v;
  };
  EXPECT_EQ(u32(0), 0x0A0D0D0Au);  // SHB type
  EXPECT_EQ(u32(8), 0x1A2B3C4Du);  // byte-order magic
  // Walk every block: 4-byte alignment, trailing length echo, known types.
  std::size_t off = 0;
  int shb = 0, idb = 0, epb = 0;
  while (off + 12 <= buf.size()) {
    std::uint32_t type = u32(off);
    std::uint32_t len = u32(off + 4);
    ASSERT_EQ(len % 4, 0u);
    ASSERT_GE(len, 12u);
    ASSERT_LE(off + len, buf.size());
    EXPECT_EQ(u32(off + len - 4), len);  // trailing total-length copy
    if (type == 0x0A0D0D0Au) ++shb;
    if (type == 1) ++idb;
    if (type == 6) ++epb;
    off += len;
  }
  EXPECT_EQ(off, buf.size());  // no trailing garbage
  EXPECT_EQ(shb, 1);
  EXPECT_EQ(idb, 1);
  EXPECT_GT(epb, 0);
}

TEST(TraceExport, FrameBreakdownStagesTileTheFrame) {
  TracedOffloadRun run;
  ASSERT_GT(run.last_latency, 0);
  auto ctx = run.session->frame_trace(run.last_frame);
  ASSERT_TRUE(ctx.active());
  auto bd = trace::frame_breakdown(run.tracer, ctx.trace_id);
  ASSERT_TRUE(bd.valid);
  EXPECT_EQ(bd.frame_id, run.last_frame);
  EXPECT_GE(bd.queue_ns(), 0);
  EXPECT_GE(bd.uplink_ns(), 0);
  EXPECT_GE(bd.compute_ns(), 0);
  EXPECT_GE(bd.downlink_ns(), 0);
  // The stages tile [capture, done] exactly, and the total matches the
  // latency the session reported for the same frame.
  EXPECT_EQ(bd.queue_ns() + bd.uplink_ns() + bd.compute_ns() + bd.downlink_ns(),
            bd.total_ns());
  EXPECT_EQ(bd.total_ns(), run.last_latency);
}

TEST(TraceExport, FlightJsonlHasHeaderEventsAndEnd) {
  TracedOffloadRun run;
  std::ostringstream os;
  trace::write_flight_jsonl(run.tracer, os, "unit-test");
  std::istringstream is(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_NE(line.find("\"kind\":\"header\""), std::string::npos);
  EXPECT_NE(line.find("\"schema\":\"arnet-trace-v1\""), std::string::npos);
  EXPECT_NE(line.find("\"cause\":\"unit-test\""), std::string::npos);
  std::string last;
  long events = 0;
  while (std::getline(is, line)) {
    if (line.find("\"kind\":\"event\"") != std::string::npos) ++events;
    last = line;
  }
  EXPECT_GT(events, 0);
  EXPECT_NE(last.find("\"kind\":\"end\""), std::string::npos);
}

// ------------------------------------------------------ flight recorder

TEST(FlightRecorderTest, DumpsOnCheckFailure) {
  const std::string path = "flight_test_dump.jsonl";
  std::remove(path.c_str());
  trace::Tracer tracer;
  auto e = tracer.register_entity("unit");
  trace::TraceEvent ev;
  ev.kind = trace::EventKind::kEnqueue;
  tracer.record(e, ev);
  {
    trace::FlightRecorder recorder(tracer, path);
    check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
    EXPECT_THROW(ARNET_CHECK(false, "forced failure for the flight recorder"),
                 check::CheckError);
    EXPECT_TRUE(recorder.dumped());
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_NE(header.find("check-failure"), std::string::npos);
  EXPECT_NE(header.find("forced failure for the flight recorder"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, OnlyFirstTriggerWrites) {
  const std::string path = "flight_test_once.jsonl";
  std::remove(path.c_str());
  trace::Tracer tracer;
  tracer.register_entity("unit");
  trace::FlightRecorder recorder(tracer, path);
  recorder.dump("first-cause");
  recorder.dump("second-cause");
  std::ifstream is(path);
  std::string header;
  ASSERT_TRUE(std::getline(is, header));
  EXPECT_NE(header.find("first-cause"), std::string::npos);
  EXPECT_EQ(header.find("second-cause"), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, RestoresPreviousHookOnDestruction) {
  int outer_calls = 0;
  auto prev = check::set_failure_hook([&](const std::string&) { ++outer_calls; });
  {
    trace::Tracer tracer;
    trace::FlightRecorder recorder(tracer, "flight_test_restore.jsonl");
  }
  // Recorder gone: the outer hook must be back in the slot.
  check::ScopedFailPolicy policy(check::FailPolicy::kCountAndLog);
  check::reset_failures();
  ARNET_CHECK(false, "hook restoration probe");
  EXPECT_EQ(outer_calls, 1);
  check::reset_failures();
  check::set_failure_hook(std::move(prev));
  std::remove("flight_test_restore.jsonl");
}

// ----------------------------------------------------------- profiler

TEST(SimProfilerTest, AttributesWallAndSelfTimeWithInjectedClock) {
  sim::Simulator sim;
  std::int64_t fake_now = 0;
  trace::SimProfiler prof(sim, [&] { return fake_now; });
  auto outer = prof.site_id("outer");
  auto inner = prof.site_id("inner");
  EXPECT_EQ(prof.site_id("outer"), outer);  // interned by content

  prof.enter(outer);
  fake_now += 10;
  prof.enter(inner);
  fake_now += 5;
  prof.exit(inner);
  fake_now += 2;
  prof.exit(outer);

  auto table = prof.table();
  ASSERT_EQ(table.size(), 2u);
  const auto* o = &table[0];
  const auto* i = &table[1];
  if (o->name != "outer") std::swap(o, i);
  EXPECT_EQ(o->calls, 1u);
  EXPECT_EQ(o->wall_total_ns, 17);
  EXPECT_EQ(o->wall_self_ns, 12);  // 17 minus the nested 5
  EXPECT_EQ(i->wall_total_ns, 5);
  EXPECT_EQ(i->wall_self_ns, 5);
}

TEST(SimProfilerTest, NullClockYieldsZeroWallColumns) {
  sim::Simulator sim;
  trace::SimProfiler prof(sim);
  auto s = prof.site_id("site");
  prof.enter(s);
  prof.exit(s);
  auto table = prof.table();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].calls, 1u);
  EXPECT_EQ(table[0].wall_total_ns, 0);
}

// -------------------------------------------------------- determinism

// The fingerprint contract: a run with a Tracer (and profiler) attached is
// bit-identical to the same-seed run without one. Tracing must never
// schedule events, draw randomness, or branch simulation logic.
TEST(TraceDeterminism, FingerprintIdenticalWithTracingOnAndOff) {
  auto run_once = [](bool traced) {
    sim::Simulator sim;
    Network net(sim, 11);
    check::TraceRecorder rec;
    rec.attach(net);
    trace::Tracer tracer;
    trace::SimProfiler prof(sim, nullptr);
    auto user = net.add_node("user");
    auto edge = net.add_node("edge");
    net.connect(user, edge, 8e6, milliseconds(10), 150);
    net.compute_routes();
    mar::OffloadConfig cfg;
    cfg.strategy = mar::OffloadStrategy::kCloudRidAR;
    if (traced) {
      net.attach_trace(tracer);
      tracer.set_profiler(&prof);
      cfg.tracer = &tracer;
    }
    mar::OffloadSession session(net, user, edge, cfg);
    session.start();
    sim.run_until(seconds(2));
    session.stop();
    rec.detach_all();
    return std::pair<std::uint64_t, std::uint64_t>{rec.fingerprint(), rec.records()};
  };
  auto off = run_once(false);
  auto on = run_once(true);
  EXPECT_EQ(off.first, on.first);
  EXPECT_EQ(off.second, on.second);
}

// ------------------------------------------------------ band histograms

TEST(TraceObs, ArtpPerBandDelayHistogramsPublished) {
  sim::Simulator sim;
  Network net(sim, 7);
  obs::MetricsRegistry reg;
  auto client = net.add_node("client");
  auto server = net.add_node("server");
  net.connect(client, server, 10e6, milliseconds(5), 100);
  net.compute_routes();

  transport::ArtpReceiver::Config rcfg;
  rcfg.metrics = &reg;
  rcfg.metrics_entity = "artp";
  transport::ArtpReceiver rx(net, server, 80, rcfg);
  transport::ArtpSender tx(net, client, 1000, server, 80, 1, {});

  auto send = [&](net::Priority prio) {
    transport::ArtpMessageSpec m;
    m.bytes = 2000;
    m.tclass = net::TrafficClass::kCriticalData;
    m.priority = prio;
    m.app = net::AppData::kSensorData;
    tx.send_message(m);
  };
  send(net::Priority::kHighest);
  send(net::Priority::kLowest);
  sim.run_until(seconds(1));

  const obs::Histogram* h0 = reg.find_histogram(
      "artp.band_delay_ms", "artp/band:" + std::to_string(static_cast<int>(net::Priority::kHighest)));
  const obs::Histogram* h3 = reg.find_histogram(
      "artp.band_delay_ms", "artp/band:" + std::to_string(static_cast<int>(net::Priority::kLowest)));
  ASSERT_NE(h0, nullptr);
  ASSERT_NE(h3, nullptr);
  EXPECT_EQ(h0->count(), 1);
  EXPECT_EQ(h3->count(), 1);
  EXPECT_GT(h0->mean(), 0.0);
}

}  // namespace
}  // namespace arnet
