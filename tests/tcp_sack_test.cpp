// Tests for TCP selective acknowledgments (RFC 2018/6675-flavored).
#include <gtest/gtest.h>

#include <memory>

#include "arnet/net/loss.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/tcp.hpp"

namespace arnet::transport {
namespace {

using sim::milliseconds;
using sim::seconds;

struct LossyPipe {
  sim::Simulator sim;
  net::Network net{sim, 42};
  net::NodeId a, b;

  LossyPipe(double loss, std::uint64_t seed = 42) : net(sim, seed) {
    a = net.add_node("a");
    b = net.add_node("b");
    net::Link::Config up;
    up.rate_bps = 20e6;
    up.delay = milliseconds(25);
    up.queue_packets = 1000;
    if (loss > 0) {
      // Bursty losses: where SACK shines over NewReno.
      net::GilbertElliottLoss::Config ge;
      ge.p_good_to_bad = 0.004;
      ge.p_bad_to_good = 0.25;
      ge.loss_in_bad = 0.7;
      up.loss = std::make_unique<net::GilbertElliottLoss>(ge);
    }
    net::Link::Config down;
    down.rate_bps = 20e6;
    down.delay = milliseconds(25);
    down.queue_packets = 1000;
    net.connect(a, b, std::move(up), std::move(down));
  }
};

std::int64_t run_transfer(bool sack, std::uint64_t seed, sim::Time dur) {
  LossyPipe p(0.01, seed);
  TcpSink sink(p.net, p.b, 80);
  TcpSource::Config cfg;
  cfg.sack = sack;
  TcpSource src(p.net, p.a, 1000, p.b, 80, 1, cfg);
  src.send_forever();
  p.sim.run_until(dur);
  return sink.received_bytes();
}

TEST(TcpSack, CompletesCleanTransfer) {
  LossyPipe p(0.0);
  TcpSink sink(p.net, p.b, 80);
  TcpSource::Config cfg;
  cfg.sack = true;
  TcpSource src(p.net, p.a, 1000, p.b, 80, 1, cfg);
  bool done = false;
  src.set_on_complete([&] { done = true; });
  src.send(800'000);
  p.sim.run_until(seconds(20));
  EXPECT_TRUE(done);
  EXPECT_EQ(sink.received_bytes(), 800'000);
}

TEST(TcpSack, BeatsNewRenoUnderBurstLoss) {
  // Burst losses drop several segments per window; NewReno repairs one per
  // RTT while SACK repairs one per incoming ACK.
  double total_sack = 0, total_newreno = 0;
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    total_sack += static_cast<double>(run_transfer(true, seed, seconds(20)));
    total_newreno += static_cast<double>(run_transfer(false, seed, seconds(20)));
  }
  EXPECT_GT(total_sack, 1.15 * total_newreno);
}

TEST(TcpSack, RecoveryIsMostlyFastRetransmitNotTimeout) {
  // Loss *events* scale with packets sent, so raw RTO counts are not
  // comparable across flows with different throughput. The SACK property
  // worth asserting: most loss events are repaired by fast recovery, and
  // the flow keeps a healthy goodput despite the bursts.
  int timeouts = 0, fast = 0;
  std::int64_t bytes = 0;
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    LossyPipe p(0.01, seed);
    TcpSink sink(p.net, p.b, 80);
    TcpSource::Config cfg;
    cfg.sack = true;
    TcpSource src(p.net, p.a, 1000, p.b, 80, 1, cfg);
    src.send_forever();
    p.sim.run_until(seconds(20));
    timeouts += src.timeouts();
    fast += src.fast_retransmits();
    bytes += sink.received_bytes();
  }
  EXPECT_GT(fast, timeouts);
  // >2 Mb/s average on a 20 Mb/s pipe with ~2 % bursty loss.
  EXPECT_GT(bytes, 3 * 5'000'000);
}

TEST(TcpSack, ExactDeliveryUnderHeavyLoss) {
  LossyPipe p(0.01, 7);
  TcpSink sink(p.net, p.b, 80);
  TcpSource::Config cfg;
  cfg.sack = true;
  TcpSource src(p.net, p.a, 1000, p.b, 80, 1, cfg);
  src.send(500'000);
  p.sim.run_until(seconds(120));
  EXPECT_TRUE(src.complete());
  EXPECT_EQ(sink.received_bytes(), 500'000);  // no duplication into the app
}

TEST(TcpSack, SinkAdvertisesOutOfOrderRanges) {
  // Direct check of the ACK contents: drop one segment, observe SACK block.
  sim::Simulator sim;
  net::Network net(sim, 1);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.connect(a, b, 10e6, milliseconds(5), 100);

  std::vector<net::TcpHeader> acks;
  net.node(a).bind(1000, [&](net::Packet&& p) {
    if (auto* h = std::get_if<net::TcpHeader>(&p.header)) acks.push_back(*h);
  });
  TcpSink sink(net, b, 80);

  auto send_seg = [&](std::uint64_t seq, std::int32_t payload) {
    net::Packet p;
    p.src = a;
    p.dst = b;
    p.src_port = 1000;
    p.dst_port = 80;
    p.size_bytes = payload + 40;
    net::TcpHeader h;
    h.seq = seq;
    p.header = h;
    net.node(a).send(std::move(p));
  };
  send_seg(0, 1000);
  send_seg(2000, 1000);  // hole at [1000, 2000)
  sim.run();
  ASSERT_GE(acks.size(), 2u);
  const auto& last = acks.back();
  EXPECT_EQ(last.ack, 1000u);
  ASSERT_EQ(last.sack.size(), 1u);
  EXPECT_EQ(last.sack[0].first, 2000u);
  EXPECT_EQ(last.sack[0].second, 3000u);
}

}  // namespace
}  // namespace arnet::transport
