// Correctness-tooling tests: ARNET_ASSERT/ARNET_CHECK policies, the
// simulator event-order auditor, packet-conservation auditing, and the
// same-seed determinism harness.
#include <gtest/gtest.h>

#include <memory>

#include "arnet/check/assert.hpp"
#include "arnet/check/conservation.hpp"
#include "arnet/check/determinism.hpp"
#include "arnet/check/sim_audit.hpp"
#include "arnet/mar/offload.hpp"
#include "arnet/net/loss.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/udp.hpp"

using namespace arnet;

// ---------------------------------------------------------------- policies

TEST(CheckPolicyTest, ThrowPolicyThrowsAndCounts) {
  check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
  check::reset_failures();
  EXPECT_THROW(ARNET_CHECK(1 == 2, "one is not ", 2), check::CheckError);
  EXPECT_THROW(ARNET_ASSERT(false, "asserts are live in every build type"),
               check::CheckError);
  EXPECT_EQ(check::failure_count(), 2u);
}

TEST(CheckPolicyTest, CountAndLogContinues) {
  check::ScopedFailPolicy policy(check::FailPolicy::kCountAndLog);
  check::reset_failures();
  for (int i = 0; i < 5; ++i) ARNET_CHECK(i < 0, "failure #", i);
  EXPECT_EQ(check::failure_count(), 5u);
  check::reset_failures();
}

TEST(CheckPolicyTest, PassingChecksAreFree) {
  check::reset_failures();
  ARNET_CHECK(2 + 2 == 4);
  ARNET_ASSERT(true, "never evaluated");
  EXPECT_EQ(check::failure_count(), 0u);
}

TEST(CheckPolicyTest, MessageCarriesDiagnostics) {
  check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
  try {
    ARNET_CHECK(false, "flow ", 7, " lost ", 3, " packets");
    FAIL() << "should have thrown";
  } catch (const check::CheckError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("flow 7 lost 3 packets"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
  }
  check::reset_failures();
}

// ---------------------------------------------------------------- sim audit

TEST(SimAuditTest, CleanRunHasNoViolations) {
  sim::Simulator sim;
  check::SimAuditor audit(sim);
  int fired = 0;
  // Equal-time events (FIFO tie-break) plus a legitimate cancel.
  sim.at(sim::milliseconds(5), [&] { ++fired; });
  sim.at(sim::milliseconds(5), [&] { ++fired; });
  sim.at(sim::milliseconds(1), [&] { ++fired; });
  auto h = sim.after(sim::milliseconds(2), [&] { ++fired; });
  sim.cancel(h);
  sim.run();
  audit.finish();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(audit.events_seen(), 3u);
  EXPECT_EQ(audit.violations(), 0u);
}

TEST(SimAuditTest, FlagsCancelOfUnissuedHandle) {
  check::ScopedFailPolicy policy(check::FailPolicy::kCountAndLog);
  check::reset_failures();
  sim::Simulator sim;
  check::SimAuditor audit(sim);
  sim.cancel(sim::EventHandle{999999});  // simulator never issued this id
  EXPECT_EQ(audit.violations(), 1u);
  check::reset_failures();
}

TEST(SimAuditTest, CancelOfFiredHandleLeavesNoTombstone) {
  // Cancelling a handle whose event already executed is a benign no-op: the
  // simulator must not insert a tombstone that can never be collected (the
  // auditor's finish() would flag exactly that as stale backlog).
  sim::Simulator sim;
  check::SimAuditor audit(sim);
  auto h = sim.after(sim::milliseconds(1), [] {});
  sim.run();
  sim.cancel(h);
  audit.finish();
  EXPECT_EQ(audit.violations(), 0u);
  EXPECT_EQ(sim.cancel_backlog(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// ------------------------------------------------------------- conservation

namespace {

/// Two hosts behind a slow lossy bottleneck; blast UDP datagrams so that all
/// terminal fates occur: delivery, queue tail-drop, and random wire loss.
struct LossyPair {
  sim::Simulator sim;
  net::Network net{sim, /*seed=*/7};
  net::NodeId a, b;

  LossyPair() {
    a = net.add_node("a");
    b = net.add_node("b");
    net::Link::Config ab;
    ab.rate_bps = 2e6;
    ab.delay = sim::milliseconds(5);
    ab.queue_packets = 8;  // small: force tail drops
    ab.loss = std::make_unique<net::BernoulliLoss>(0.1);
    net::Link::Config ba;
    ba.rate_bps = 2e6;
    ba.delay = sim::milliseconds(5);
    net.connect(a, b, std::move(ab), std::move(ba));
  }
};

}  // namespace

TEST(ConservationTest, LossyRunConserves) {
  LossyPair t;
  check::ConservationAuditor audit(t.net);
  transport::UdpEndpoint tx(t.net, t.a, 1000);
  transport::UdpEndpoint rx(t.net, t.b, 2000);
  int received = 0;
  rx.set_handler([&](net::Packet&&) { ++received; });

  constexpr int kPackets = 400;
  for (int i = 0; i < kPackets; ++i) {
    t.sim.after(sim::milliseconds(i), [&] { tx.send(t.b, 2000, 1200, /*flow=*/1); });
  }
  t.sim.run();

  audit.checkpoint();
  audit.expect_drained();
  EXPECT_EQ(audit.violations(), 0u);

  const auto& f = audit.flow(1);
  EXPECT_EQ(f.injected, kPackets);
  EXPECT_EQ(f.delivered + f.dropped, kPackets);
  EXPECT_EQ(f.delivered, received);
  EXPECT_EQ(f.in_flight(), 0);
  // The topology forces both drop mechanisms to fire.
  EXPECT_GT(audit.drops_for(net::DropReason::kRandomLoss), 0);
  EXPECT_GT(audit.drops_for(net::DropReason::kQueue), 0);
}

TEST(ConservationTest, CatchesInjectedFakeDrop) {
  LossyPair t;
  check::ConservationAuditor audit(t.net);
  check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
  // Forge a drop event for a packet the network never carried: the auditor
  // must reject it instead of silently absorbing the bogus accounting.
  net::Packet fake;
  fake.uid = 0xDEADBEEF;
  fake.flow = 1;
  fake.size_bytes = 1200;
  EXPECT_THROW(audit.on_drop(t.sim.now(), fake, net::DropReason::kQueue),
               check::CheckError);
  EXPECT_EQ(audit.violations(), 1u);
  check::reset_failures();
}

TEST(ConservationTest, CatchesDoubleDelivery) {
  LossyPair t;
  check::ConservationAuditor audit(t.net);
  check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
  net::Packet p;
  p.uid = 42;
  p.flow = 3;
  audit.on_inject(0, p);
  audit.on_deliver(1, p, t.b);
  EXPECT_THROW(audit.on_deliver(2, p, t.b), check::CheckError);  // same uid twice
  check::reset_failures();
}

TEST(ConservationTest, LinkDownLossIsAccounted) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto [ab, ba] = net.connect(a, b, 1e6, sim::milliseconds(10));
  (void)ba;
  check::ConservationAuditor audit(net);
  transport::UdpEndpoint tx(net, a, 1000);
  for (int i = 0; i < 50; ++i) tx.send(b, 2000, 1200, /*flow=*/9);
  // Kill the link while packets sit in its queue and pipe.
  sim.after(sim::milliseconds(5), [l = ab] { l->set_up(false); });
  sim.run();
  audit.expect_drained();
  EXPECT_EQ(audit.violations(), 0u);
  const auto& f = audit.flow(9);
  EXPECT_EQ(f.injected, 50);
  EXPECT_EQ(f.delivered + f.dropped, 50);
  EXPECT_GT(audit.drops_for(net::DropReason::kLinkDown), 0);
}

// -------------------------------------------------------------- determinism

namespace {

/// Quickstart-shaped scenario: phone -> AP -> edge CloudRidAR offloading
/// over a lossy WiFi hop, trace-fingerprinting the whole stack (ARTP, MAR
/// traffic model, link RNG streams, event engine).
void offload_scenario(std::uint64_t seed, check::TraceRecorder& trace) {
  sim::Simulator sim;
  net::Network net(sim, seed);
  trace.attach(net);
  trace.attach(sim);

  net::NodeId phone = net.add_node("phone");
  net::NodeId ap = net.add_node("ap");
  net::NodeId edge = net.add_node("edge");
  net::Link::Config up;
  up.rate_bps = 25e6;
  up.delay = sim::milliseconds(3);
  up.loss = std::make_unique<net::BernoulliLoss>(0.02);
  net::Link::Config down;
  down.rate_bps = 25e6;
  down.delay = sim::milliseconds(3);
  net.connect(phone, ap, std::move(up), std::move(down));
  net.connect(ap, edge, 1e9, sim::milliseconds(2));

  mar::OffloadConfig cfg;
  cfg.strategy = mar::OffloadStrategy::kCloudRidAR;
  cfg.device = mar::DeviceClass::kSmartphone;
  cfg.video = mar::VideoModel::hd720p30();
  cfg.deadline = sim::milliseconds(75);
  mar::OffloadSession session(net, phone, edge, cfg);
  session.start();
  sim.run_until(sim::seconds(5));
  session.stop();
}

}  // namespace

TEST(DeterminismTest, SameSeedProducesIdenticalFingerprints) {
  auto report = check::DeterminismHarness::verify(offload_scenario, /*seed=*/1);
  EXPECT_TRUE(report.deterministic());
  EXPECT_EQ(report.fingerprint_first, report.fingerprint_second);
  EXPECT_EQ(report.records_first, report.records_second);
  EXPECT_GT(report.records_first, 1000u) << "scenario produced no meaningful trace";
}

TEST(DeterminismTest, PerturbedSeedProducesDifferentFingerprint) {
  auto a = check::DeterminismHarness::run_twice(offload_scenario, /*seed=*/1);
  auto b = check::DeterminismHarness::run_twice(offload_scenario, /*seed=*/2);
  ASSERT_TRUE(a.deterministic());
  ASSERT_TRUE(b.deterministic());
  EXPECT_NE(a.fingerprint_first, b.fingerprint_first)
      << "different seeds must perturb the packet/event trace";
}

TEST(DeterminismTest, DivergenceIsDetected) {
  check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
  // A scenario that depends on state outside the seed is the exact failure
  // mode the harness exists to catch.
  int calls = 0;
  auto nondeterministic = [&calls](std::uint64_t /*seed*/, check::TraceRecorder& trace) {
    sim::Simulator sim;
    net::Network net(sim, static_cast<std::uint64_t>(++calls));  // leaks across runs
    trace.attach(net);
    auto a = net.add_node("a");
    auto b = net.add_node("b");
    net::Link::Config ab;
    ab.rate_bps = 1e6;
    ab.delay = sim::milliseconds(1);
    ab.loss = std::make_unique<net::BernoulliLoss>(0.5);
    net::Link::Config ba;
    ba.rate_bps = 1e6;
    ba.delay = sim::milliseconds(1);
    net.connect(a, b, std::move(ab), std::move(ba));
    transport::UdpEndpoint tx(net, a, 1);
    for (int i = 0; i < 100; ++i) tx.send(b, 2, 1000, 1);
    sim.run();
  };
  EXPECT_THROW(check::DeterminismHarness::verify(nondeterministic, 1), check::CheckError);
  check::reset_failures();
}

TEST(DeterminismTest, AuditorsComposeWithHarness) {
  // All three tools on one run: trace fingerprinting, conservation, and
  // event-order auditing operating as stacked observers.
  auto audited = [](std::uint64_t seed, check::TraceRecorder& trace) {
    sim::Simulator sim;
    check::SimAuditor sim_audit(sim);
    net::Network net(sim, seed);
    check::ConservationAuditor conserve(net);
    trace.attach(net);
    trace.attach(sim);
    auto a = net.add_node("a");
    auto b = net.add_node("b");
    net::Link::Config ab;
    ab.rate_bps = 5e6;
    ab.delay = sim::milliseconds(2);
    ab.queue_packets = 20;
    ab.loss = std::make_unique<net::BernoulliLoss>(0.05);
    net::Link::Config ba;
    ba.rate_bps = 5e6;
    ba.delay = sim::milliseconds(2);
    net.connect(a, b, std::move(ab), std::move(ba));
    transport::UdpEndpoint tx(net, a, 1);
    for (int i = 0; i < 200; ++i) {
      sim.after(sim::milliseconds(i / 4), [&] { tx.send(b, 2, 1000, 1); });
    }
    sim.run();
    conserve.expect_drained();
    sim_audit.finish();
    EXPECT_EQ(conserve.violations(), 0u);
    EXPECT_EQ(sim_audit.violations(), 0u);
  };
  auto report = check::DeterminismHarness::verify(audited, /*seed=*/11);
  EXPECT_TRUE(report.deterministic());
}
