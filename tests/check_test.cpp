// Correctness-tooling tests: ARNET_ASSERT/ARNET_CHECK policies, the
// simulator event-order auditor, packet-conservation auditing, the
// same-seed determinism harness, the RNG stream auditor, and the
// hash-seed canary.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "arnet/check/assert.hpp"
#include "arnet/check/conservation.hpp"
#include "arnet/check/determinism.hpp"
#include "arnet/check/hash_canary.hpp"
#include "arnet/check/rng_audit.hpp"
#include "arnet/check/sim_audit.hpp"
#include "arnet/mar/offload.hpp"
#include "arnet/net/loss.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/udp.hpp"

using namespace arnet;

// ---------------------------------------------------------------- policies

TEST(CheckPolicyTest, ThrowPolicyThrowsAndCounts) {
  check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
  check::reset_failures();
  EXPECT_THROW(ARNET_CHECK(1 == 2, "one is not ", 2), check::CheckError);
  EXPECT_THROW(ARNET_ASSERT(false, "asserts are live in every build type"),
               check::CheckError);
  EXPECT_EQ(check::failure_count(), 2u);
}

TEST(CheckPolicyTest, CountAndLogContinues) {
  check::ScopedFailPolicy policy(check::FailPolicy::kCountAndLog);
  check::reset_failures();
  for (int i = 0; i < 5; ++i) ARNET_CHECK(i < 0, "failure #", i);
  EXPECT_EQ(check::failure_count(), 5u);
  check::reset_failures();
}

TEST(CheckPolicyTest, PassingChecksAreFree) {
  check::reset_failures();
  ARNET_CHECK(2 + 2 == 4);
  ARNET_ASSERT(true, "never evaluated");
  EXPECT_EQ(check::failure_count(), 0u);
}

TEST(CheckPolicyTest, MessageCarriesDiagnostics) {
  check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
  try {
    ARNET_CHECK(false, "flow ", 7, " lost ", 3, " packets");
    FAIL() << "should have thrown";
  } catch (const check::CheckError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("flow 7 lost 3 packets"), std::string::npos) << what;
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
  }
  check::reset_failures();
}

// ---------------------------------------------------------------- sim audit

TEST(SimAuditTest, CleanRunHasNoViolations) {
  sim::Simulator sim;
  check::SimAuditor audit(sim);
  int fired = 0;
  // Equal-time events (FIFO tie-break) plus a legitimate cancel.
  sim.at(sim::milliseconds(5), [&] { ++fired; });
  sim.at(sim::milliseconds(5), [&] { ++fired; });
  sim.at(sim::milliseconds(1), [&] { ++fired; });
  auto h = sim.after(sim::milliseconds(2), [&] { ++fired; });
  sim.cancel(h);
  sim.run();
  audit.finish();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(audit.events_seen(), 3u);
  EXPECT_EQ(audit.violations(), 0u);
}

TEST(SimAuditTest, FlagsCancelOfUnissuedHandle) {
  check::ScopedFailPolicy policy(check::FailPolicy::kCountAndLog);
  check::reset_failures();
  sim::Simulator sim;
  check::SimAuditor audit(sim);
  sim.cancel(sim::EventHandle{999999});  // simulator never issued this id
  EXPECT_EQ(audit.violations(), 1u);
  check::reset_failures();
}

TEST(SimAuditTest, CancelOfFiredHandleLeavesNoTombstone) {
  // Cancelling a handle whose event already executed is a benign no-op: the
  // simulator must not insert a tombstone that can never be collected (the
  // auditor's finish() would flag exactly that as stale backlog).
  sim::Simulator sim;
  check::SimAuditor audit(sim);
  auto h = sim.after(sim::milliseconds(1), [] {});
  sim.run();
  sim.cancel(h);
  audit.finish();
  EXPECT_EQ(audit.violations(), 0u);
  EXPECT_EQ(sim.cancel_backlog(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// ------------------------------------------------------------- conservation

namespace {

/// Two hosts behind a slow lossy bottleneck; blast UDP datagrams so that all
/// terminal fates occur: delivery, queue tail-drop, and random wire loss.
struct LossyPair {
  sim::Simulator sim;
  net::Network net{sim, /*seed=*/7};
  net::NodeId a, b;

  LossyPair() {
    a = net.add_node("a");
    b = net.add_node("b");
    net::Link::Config ab;
    ab.rate_bps = 2e6;
    ab.delay = sim::milliseconds(5);
    ab.queue_packets = 8;  // small: force tail drops
    ab.loss = std::make_unique<net::BernoulliLoss>(0.1);
    net::Link::Config ba;
    ba.rate_bps = 2e6;
    ba.delay = sim::milliseconds(5);
    net.connect(a, b, std::move(ab), std::move(ba));
  }
};

}  // namespace

TEST(ConservationTest, LossyRunConserves) {
  LossyPair t;
  check::ConservationAuditor audit(t.net);
  transport::UdpEndpoint tx(t.net, t.a, 1000);
  transport::UdpEndpoint rx(t.net, t.b, 2000);
  int received = 0;
  rx.set_handler([&](net::Packet&&) { ++received; });

  constexpr int kPackets = 400;
  for (int i = 0; i < kPackets; ++i) {
    t.sim.after(sim::milliseconds(i), [&] { tx.send(t.b, 2000, 1200, /*flow=*/1); });
  }
  t.sim.run();

  audit.checkpoint();
  audit.expect_drained();
  EXPECT_EQ(audit.violations(), 0u);

  const auto& f = audit.flow(1);
  EXPECT_EQ(f.injected, kPackets);
  EXPECT_EQ(f.delivered + f.dropped, kPackets);
  EXPECT_EQ(f.delivered, received);
  EXPECT_EQ(f.in_flight(), 0);
  // The topology forces both drop mechanisms to fire.
  EXPECT_GT(audit.drops_for(net::DropReason::kRandomLoss), 0);
  EXPECT_GT(audit.drops_for(net::DropReason::kQueue), 0);
}

TEST(ConservationTest, CatchesInjectedFakeDrop) {
  LossyPair t;
  check::ConservationAuditor audit(t.net);
  check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
  // Forge a drop event for a packet the network never carried: the auditor
  // must reject it instead of silently absorbing the bogus accounting.
  net::Packet fake;
  fake.uid = 0xDEADBEEF;
  fake.flow = 1;
  fake.size_bytes = 1200;
  EXPECT_THROW(audit.on_drop(t.sim.now(), fake, net::DropReason::kQueue),
               check::CheckError);
  EXPECT_EQ(audit.violations(), 1u);
  check::reset_failures();
}

TEST(ConservationTest, CatchesDoubleDelivery) {
  LossyPair t;
  check::ConservationAuditor audit(t.net);
  check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
  net::Packet p;
  p.uid = 42;
  p.flow = 3;
  audit.on_inject(0, p);
  audit.on_deliver(1, p, t.b);
  EXPECT_THROW(audit.on_deliver(2, p, t.b), check::CheckError);  // same uid twice
  check::reset_failures();
}

TEST(ConservationTest, LinkDownLossIsAccounted) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto [ab, ba] = net.connect(a, b, 1e6, sim::milliseconds(10));
  (void)ba;
  check::ConservationAuditor audit(net);
  transport::UdpEndpoint tx(net, a, 1000);
  for (int i = 0; i < 50; ++i) tx.send(b, 2000, 1200, /*flow=*/9);
  // Kill the link while packets sit in its queue and pipe.
  sim.after(sim::milliseconds(5), [l = ab] { l->set_up(false); });
  sim.run();
  audit.expect_drained();
  EXPECT_EQ(audit.violations(), 0u);
  const auto& f = audit.flow(9);
  EXPECT_EQ(f.injected, 50);
  EXPECT_EQ(f.delivered + f.dropped, 50);
  EXPECT_GT(audit.drops_for(net::DropReason::kLinkDown), 0);
}

// -------------------------------------------------------------- determinism

namespace {

/// Quickstart-shaped scenario: phone -> AP -> edge CloudRidAR offloading
/// over a lossy WiFi hop, trace-fingerprinting the whole stack (ARTP, MAR
/// traffic model, link RNG streams, event engine).
void offload_scenario(std::uint64_t seed, check::TraceRecorder& trace) {
  sim::Simulator sim;
  net::Network net(sim, seed);
  trace.attach(net);
  trace.attach(sim);

  net::NodeId phone = net.add_node("phone");
  net::NodeId ap = net.add_node("ap");
  net::NodeId edge = net.add_node("edge");
  net::Link::Config up;
  up.rate_bps = 25e6;
  up.delay = sim::milliseconds(3);
  up.loss = std::make_unique<net::BernoulliLoss>(0.02);
  net::Link::Config down;
  down.rate_bps = 25e6;
  down.delay = sim::milliseconds(3);
  net.connect(phone, ap, std::move(up), std::move(down));
  net.connect(ap, edge, 1e9, sim::milliseconds(2));

  mar::OffloadConfig cfg;
  cfg.strategy = mar::OffloadStrategy::kCloudRidAR;
  cfg.device = mar::DeviceClass::kSmartphone;
  cfg.video = mar::VideoModel::hd720p30();
  cfg.deadline = sim::milliseconds(75);
  mar::OffloadSession session(net, phone, edge, cfg);
  session.start();
  sim.run_until(sim::seconds(5));
  session.stop();
}

}  // namespace

TEST(DeterminismTest, SameSeedProducesIdenticalFingerprints) {
  auto report = check::DeterminismHarness::verify(offload_scenario, /*seed=*/1);
  EXPECT_TRUE(report.deterministic());
  EXPECT_EQ(report.fingerprint_first, report.fingerprint_second);
  EXPECT_EQ(report.records_first, report.records_second);
  EXPECT_GT(report.records_first, 1000u) << "scenario produced no meaningful trace";
}

TEST(DeterminismTest, PerturbedSeedProducesDifferentFingerprint) {
  auto a = check::DeterminismHarness::run_twice(offload_scenario, /*seed=*/1);
  auto b = check::DeterminismHarness::run_twice(offload_scenario, /*seed=*/2);
  ASSERT_TRUE(a.deterministic());
  ASSERT_TRUE(b.deterministic());
  EXPECT_NE(a.fingerprint_first, b.fingerprint_first)
      << "different seeds must perturb the packet/event trace";
}

TEST(DeterminismTest, DivergenceIsDetected) {
  check::ScopedFailPolicy policy(check::FailPolicy::kThrow);
  // A scenario that depends on state outside the seed is the exact failure
  // mode the harness exists to catch.
  int calls = 0;
  auto nondeterministic = [&calls](std::uint64_t /*seed*/, check::TraceRecorder& trace) {
    sim::Simulator sim;
    net::Network net(sim, static_cast<std::uint64_t>(++calls));  // leaks across runs
    trace.attach(net);
    auto a = net.add_node("a");
    auto b = net.add_node("b");
    net::Link::Config ab;
    ab.rate_bps = 1e6;
    ab.delay = sim::milliseconds(1);
    ab.loss = std::make_unique<net::BernoulliLoss>(0.5);
    net::Link::Config ba;
    ba.rate_bps = 1e6;
    ba.delay = sim::milliseconds(1);
    net.connect(a, b, std::move(ab), std::move(ba));
    transport::UdpEndpoint tx(net, a, 1);
    for (int i = 0; i < 100; ++i) tx.send(b, 2, 1000, 1);
    sim.run();
  };
  EXPECT_THROW(check::DeterminismHarness::verify(nondeterministic, 1), check::CheckError);
  check::reset_failures();
}

// ---------------------------------------------------------------- rng audit

TEST(RngAuditTest, CleanRunRegistersForksAndStaysQuiet) {
  check::RngAuditor audit;
  {
    check::ScopedRngAudit scope(audit);
    sim::Rng root(/*seed=*/42);
    audit.label_stream(root.audit_stream(), "root");
    sim::Rng arrivals = root.fork("arrivals");
    sim::Rng motion = root.fork("motion");
    for (int i = 0; i < 16; ++i) {
      (void)arrivals.exponential(1.0);
      (void)motion.normal(0.0, 1.0);
    }
    EXPECT_EQ(audit.streams(), 3u);
    EXPECT_EQ(audit.path(arrivals.audit_stream()), "root/arrivals");
    EXPECT_EQ(audit.path(motion.audit_stream()), "root/motion");
    // Each fork drew once from the root to derive the child seed.
    EXPECT_EQ(audit.draws(root.audit_stream()), 2u);
    EXPECT_EQ(audit.draws(arrivals.audit_stream()), 16u);
  }
  EXPECT_TRUE(audit.clean()) << audit.findings().front().detail;
}

TEST(RngAuditTest, SeedCollisionIsDetected) {
  check::RngAuditor audit;
  check::ScopedRngAudit scope(audit);
  sim::Rng a(/*seed=*/7);
  audit.label_stream(a.audit_stream(), "network.loss");
  sim::Rng b(/*seed=*/7);  // forgot derive_seed(root, index)
  audit.label_stream(b.audit_stream(), "population.arrivals");
  const auto findings = audit.findings();
  ASSERT_EQ(findings.size(), 1u);
  const auto& f = findings.front();
  EXPECT_EQ(f.kind, check::RngAuditor::Violation::kSeedCollision);
  EXPECT_EQ(f.stream, b.audit_stream());
  EXPECT_EQ(f.other, a.audit_stream());
  EXPECT_NE(f.detail.find("network.loss"), std::string::npos) << f.detail;
}

TEST(RngAuditTest, CrossThreadDrawIsDetected) {
  check::RngAuditor audit;
  check::ScopedRngAudit scope(audit);
  sim::Rng rng(/*seed=*/9);
  audit.label_stream(rng.audit_stream(), "shared.rng");
  (void)rng.uniform();  // same-thread draw: fine
  EXPECT_TRUE(audit.clean());
  std::thread worker([&] { (void)rng.uniform(); });
  worker.join();
  const auto findings = audit.findings();
  ASSERT_EQ(findings.size(), 1u);
  const auto& f = findings.front();
  EXPECT_EQ(f.kind, check::RngAuditor::Violation::kCrossThreadDraw);
  EXPECT_NE(f.detail.find("shared.rng"), std::string::npos) << f.detail;
  // Reported once per stream, not once per draw.
  std::thread again([&] { (void)rng.uniform(); });
  again.join();
  EXPECT_EQ(audit.findings().size(), 1u);
}

TEST(RngAuditTest, InactiveAuditingIsUntrackedAndHarmless) {
  sim::Rng rng(/*seed=*/5);
  EXPECT_EQ(rng.audit_stream(), 0u);
  (void)rng.uniform();
  (void)rng.fork("child").next_u64();
  // Activating later does not retroactively track existing streams.
  check::RngAuditor audit;
  check::ScopedRngAudit scope(audit);
  (void)rng.uniform();
  EXPECT_EQ(audit.streams(), 0u);
  EXPECT_TRUE(audit.clean());
}

TEST(RngAuditTest, AuditedScenarioStaysDeterministic) {
  // The auditor must observe, never perturb: the audited fingerprint has to
  // match the unaudited one bit for bit.
  auto plain = check::DeterminismHarness::run_twice(offload_scenario, /*seed=*/3);
  auto audited_scenario = [](std::uint64_t seed, check::TraceRecorder& trace) {
    check::RngAuditor audit;
    check::ScopedRngAudit scope(audit);
    offload_scenario(seed, trace);
    EXPECT_TRUE(audit.clean());
    EXPECT_GT(audit.streams(), 0u);
  };
  auto audited = check::DeterminismHarness::run_twice(audited_scenario, /*seed=*/3);
  ASSERT_TRUE(plain.deterministic());
  ASSERT_TRUE(audited.deterministic());
  EXPECT_EQ(plain.fingerprint_first, audited.fingerprint_first);
  EXPECT_EQ(plain.records_first, audited.records_first);
}

// --------------------------------------------------------------- hash canary

TEST(HashCanaryTest, PerturbedMixDependsOnSeed) {
  check::set_hash_seed(0);
  const std::uint64_t at0 = check::perturbed_mix(1234);
  check::set_hash_seed(0x5eedULL);
  const std::uint64_t at5eed = check::perturbed_mix(1234);
  EXPECT_NE(at0, at5eed);
  EXPECT_EQ(check::hash_seed(), 0x5eedULL);
  check::set_hash_seed(0);
  EXPECT_EQ(check::perturbed_mix(1234), at0);
}

TEST(HashCanaryTest, SortedFoldIsSeedInvariantButBucketOrderIsNot) {
  auto populate = [] {
    std::unordered_map<std::string, int, check::PerturbedHash<std::string>> m;
    m.reserve(64);
    for (int i = 0; i < 40; ++i) m["key" + std::to_string(i)] = i;
    return m;
  };
  auto bucket_order_sig = [](const auto& m) {
    std::uint64_t h = 14695981039346656037ULL;
    for (const auto& [k, v] : m) {  // NOLINT-arnet(unordered-container): probing bucket order is this test's purpose
      for (char c : k) { h ^= static_cast<unsigned char>(c); h *= 1099511628211ULL; }
      h ^= static_cast<std::uint64_t>(v);
    }
    return h;
  };
  auto sorted_sum = [](const auto& m) {
    long sum = 0;
    for (const auto& [k, v] : m) sum += v;  // NOLINT-arnet(unordered-container): order-insensitive sum
    return sum;
  };
  check::set_hash_seed(1);
  auto m1 = populate();
  check::set_hash_seed(2);
  auto m2 = populate();
  // The order-insensitive view agrees; the bucket order does not (the whole
  // point of the canary — latent order dependence becomes a visible diff).
  EXPECT_EQ(sorted_sum(m1), sorted_sum(m2));
  EXPECT_NE(bucket_order_sig(m1), bucket_order_sig(m2))
      << "perturbed seeds should shuffle bucket order; widen the key set if "
         "this ever collides";
  check::set_hash_seed(0);
}

TEST(DeterminismTest, AuditorsComposeWithHarness) {
  // All three tools on one run: trace fingerprinting, conservation, and
  // event-order auditing operating as stacked observers.
  auto audited = [](std::uint64_t seed, check::TraceRecorder& trace) {
    sim::Simulator sim;
    check::SimAuditor sim_audit(sim);
    net::Network net(sim, seed);
    check::ConservationAuditor conserve(net);
    trace.attach(net);
    trace.attach(sim);
    auto a = net.add_node("a");
    auto b = net.add_node("b");
    net::Link::Config ab;
    ab.rate_bps = 5e6;
    ab.delay = sim::milliseconds(2);
    ab.queue_packets = 20;
    ab.loss = std::make_unique<net::BernoulliLoss>(0.05);
    net::Link::Config ba;
    ba.rate_bps = 5e6;
    ba.delay = sim::milliseconds(2);
    net.connect(a, b, std::move(ab), std::move(ba));
    transport::UdpEndpoint tx(net, a, 1);
    for (int i = 0; i < 200; ++i) {
      sim.after(sim::milliseconds(i / 4), [&] { tx.send(b, 2, 1000, 1); });
    }
    sim.run();
    conserve.expect_drained();
    sim_audit.finish();
    EXPECT_EQ(conserve.violations(), 0u);
    EXPECT_EQ(sim_audit.violations(), 0u);
  };
  auto report = check::DeterminismHarness::verify(audited, /*seed=*/11);
  EXPECT_TRUE(report.deterministic());
}
