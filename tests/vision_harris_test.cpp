// Tests for the Harris detector, image pyramid, multi-scale FAST, and the
// WFQ / RTS-CTS additions sharing this suite for build economy.
#include <gtest/gtest.h>

#include <memory>

#include "arnet/net/link.hpp"
#include "arnet/net/queue.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/vision/harris.hpp"
#include "arnet/vision/synth.hpp"
#include "arnet/wireless/wifi.hpp"

namespace arnet::vision {
namespace {

TEST(Harris, DetectsSquareCorners) {
  Image img(64, 64, 20);
  for (int y = 20; y < 44; ++y) {
    for (int x = 20; x < 44; ++x) img.at(x, y) = 220;
  }
  auto feats = harris_detect(img);
  ASSERT_GE(feats.size(), 4u);
  for (const auto& f : feats) {
    double d1 = std::hypot(f.x - 20.0, f.y - 20.0);
    double d2 = std::hypot(f.x - 43.0, f.y - 20.0);
    double d3 = std::hypot(f.x - 20.0, f.y - 43.0);
    double d4 = std::hypot(f.x - 43.0, f.y - 43.0);
    EXPECT_LT(std::min(std::min(d1, d2), std::min(d3, d4)), 4.0);
  }
}

TEST(Harris, RejectsEdgesAndFlats) {
  // A pure vertical edge has a rank-1 structure tensor: no Harris corners.
  Image img(64, 64, 20);
  for (int y = 0; y < 64; ++y) {
    for (int x = 32; x < 64; ++x) img.at(x, y) = 220;
  }
  EXPECT_TRUE(harris_detect(img).empty());
  Image flat(64, 64, 128);
  EXPECT_TRUE(harris_detect(flat).empty());
}

TEST(Harris, MoreStableUnderBlurThanFast) {
  sim::Rng rng(3);
  Image img = render_scene(rng, SceneParams{});
  Image blurred = box_blur(img, 2);
  auto fast_sharp = fast_detect(img, 20);
  auto fast_blur = fast_detect(blurred, 20);
  auto harris_sharp = harris_detect(img);
  auto harris_blur = harris_detect(blurred);
  ASSERT_GT(fast_sharp.size(), 0u);
  ASSERT_GT(harris_sharp.size(), 0u);
  double fast_keep = static_cast<double>(fast_blur.size()) / fast_sharp.size();
  double harris_keep = static_cast<double>(harris_blur.size()) / harris_sharp.size();
  EXPECT_GT(harris_keep, fast_keep);
}

TEST(Pyramid, HalvesEachLevel) {
  Image img(320, 240);
  auto pyr = build_pyramid(img, 4);
  ASSERT_EQ(pyr.size(), 4u);
  EXPECT_EQ(pyr[1].width(), 160);
  EXPECT_EQ(pyr[2].width(), 80);
  EXPECT_EQ(pyr[3].width(), 40);
}

TEST(Pyramid, StopsAtMinimumSize) {
  Image img(100, 80);
  auto pyr = build_pyramid(img, 8);
  EXPECT_LT(pyr.size(), 8u);
  EXPECT_GE(pyr.back().width(), 20);
}

TEST(MultiscaleFast, FindsLargeScaleChanges) {
  // A scene scaled down 2.5x: single-scale matching suffers, but the
  // multiscale detector still finds corners at a matching pyramid level.
  sim::Rng rng(5);
  Image img = render_scene(rng, SceneParams{});
  auto pyr = build_pyramid(img, 3);
  auto feats = multiscale_fast(pyr);
  int at_level[3] = {0, 0, 0};
  for (const auto& sf : feats) {
    ASSERT_LT(sf.level, 3);
    ++at_level[sf.level];
    // Coordinates mapped back to base-image space.
    EXPECT_LT(sf.f.x, img.width());
    EXPECT_LT(sf.f.y, img.height());
  }
  EXPECT_GT(at_level[0], 0);
  EXPECT_GT(at_level[1], 0);
}

}  // namespace
}  // namespace arnet::vision

namespace arnet::net {
namespace {

Packet sized(std::int32_t bytes, FlowId flow) {
  Packet p;
  p.size_bytes = bytes;
  p.flow = flow;
  return p;
}

TEST(WeightedFairQueue, HonorsWeightsUnderSaturation) {
  // Class 0 (reserved, weight 3) and class 1 (weight 1), both saturated:
  // dequeued bytes must split ~3:1.
  WeightedFairQueue q({{3.0, 1000}, {1.0, 1000}}, WeightedFairQueue::reserve_flow(42));
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(q.enqueue(sized(1000, 42), 0));
    ASSERT_TRUE(q.enqueue(sized(1000, 7), 0));
  }
  for (int i = 0; i < 400; ++i) ASSERT_TRUE(q.dequeue(0).has_value());
  double ratio = static_cast<double>(q.class_dequeued_bytes(0)) /
                 static_cast<double>(q.class_dequeued_bytes(1));
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(WeightedFairQueue, IdleClassDoesNotHoardBandwidth) {
  // Only the best-effort class is backlogged: it gets everything.
  WeightedFairQueue q({{3.0, 1000}, {1.0, 1000}}, WeightedFairQueue::reserve_flow(42));
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(q.enqueue(sized(1000, 7), 0));
  int served = 0;
  while (q.dequeue(0)) ++served;
  EXPECT_EQ(served, 50);
}

TEST(WeightedFairQueue, ReservedFlowKeepsRateOnSharedLink) {
  // End-to-end: an AR flow with an RSVP-style reservation keeps its
  // bandwidth share while a background flood saturates the same link.
  sim::Simulator sim;
  Link::Config cfg;
  cfg.rate_bps = 8e6;
  cfg.delay = sim::milliseconds(5);
  cfg.queue = std::make_unique<WeightedFairQueue>(
      std::vector<WeightedFairQueue::ClassConfig>{{3.0, 500}, {1.0, 500}},
      WeightedFairQueue::reserve_flow(42));
  Link link(sim, sim::Rng(1), std::move(cfg));
  std::int64_t ar_bytes = 0, bg_bytes = 0;
  link.set_sink([&](Packet&& p) { (p.flow == 42 ? ar_bytes : bg_bytes) += p.size_bytes; });
  // AR flow offers 4 Mb/s; background offers 12 Mb/s.
  for (int i = 0; i < 1000; ++i) {
    sim.at(sim::milliseconds(2) * i, [&] {
      link.send(sized(1000, 42));
      link.send(sized(1500, 7));
      link.send(sized(1500, 7));
    });
  }
  sim.run_until(sim::seconds(2));
  double ar_mbps = ar_bytes * 8.0 / 2 / 1e6;
  // Reservation guarantees 3/4 of 8 Mb/s = 6 > offered 4: full delivery.
  EXPECT_GT(ar_mbps, 3.6);
}

TEST(WeightedFairQueue, PerClassCapacityDrops) {
  WeightedFairQueue q({{1.0, 5}, {1.0, 5}}, WeightedFairQueue::reserve_flow(42));
  for (int i = 0; i < 10; ++i) q.enqueue(sized(100, 42), 0);
  EXPECT_EQ(q.packets(), 5u);
  EXPECT_EQ(q.drops(), 5);
}

}  // namespace
}  // namespace arnet::net

namespace arnet::wireless {
namespace {

TEST(WifiRtsCts, HandshakeCostsAirtime) {
  sim::Simulator sim;
  WifiCell::Config plain_cfg;
  WifiCell plain(sim, sim::Rng(1), plain_cfg);
  WifiCell::Config rts_cfg;
  rts_cfg.mac.rts_cts = true;
  WifiCell protected_cell(sim, sim::Rng(1), rts_cfg);
  sim::Time t_plain = plain.frame_airtime(1500, 54e6);
  sim::Time t_rts = protected_cell.frame_airtime(1500, 54e6);
  EXPECT_GT(t_rts, t_plain + sim::microseconds(100));
  // Overhead hurts small frames relatively more.
  double small_ratio = static_cast<double>(protected_cell.frame_airtime(100, 54e6)) /
                       static_cast<double>(plain.frame_airtime(100, 54e6));
  double big_ratio = static_cast<double>(t_rts) / static_cast<double>(t_plain);
  EXPECT_GT(small_ratio, big_ratio);
}

}  // namespace
}  // namespace arnet::wireless
