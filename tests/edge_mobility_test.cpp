// Tests for capacitated placement, k-median refinement, and the mobile
// server-selection / migration study (paper §VI-E/F extensions).
#include <gtest/gtest.h>

#include "arnet/edge/mobility.hpp"
#include "arnet/edge/placement.hpp"
#include "arnet/sim/rng.hpp"

namespace arnet::edge {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(CapacitatedPlacement, HotspotNeedsMultipleSitesUnderCapacity) {
  // 30 users in one hotspot; one site covers them all latency-wise, but
  // capacity 10 forces three deployments.
  PlacementProblem p;
  p.set_constraint(0, {milliseconds(30)});
  for (int i = 0; i < 4; ++i) {
    p.add_site({{static_cast<double>(i), 0.0}, "dc" + std::to_string(i), 10});
  }
  sim::Rng rng(3);
  for (int u = 0; u < 30; ++u) {
    p.add_user({{rng.uniform(0.0, 3.0), rng.uniform(0.0, 1.0)}, 0});
  }
  auto uncap = p.solve_greedy();
  auto cap = p.solve_greedy_capacitated();
  EXPECT_EQ(uncap.datacenters(), 1u);
  ASSERT_TRUE(cap.feasible);
  EXPECT_EQ(cap.datacenters(), 3u);
  // No site exceeds its capacity.
  std::map<int, int> load;
  for (int a : cap.assignment) {
    if (a >= 0) ++load[a];
  }
  for (const auto& [site, n] : load) {
    EXPECT_LE(n, 10) << "site " << site;
  }
}

TEST(CapacitatedPlacement, InfeasibleWhenTotalCapacityTooSmall) {
  PlacementProblem p;
  p.set_constraint(0, {milliseconds(30)});
  p.add_site({{0, 0}, "dc", 5});
  for (int u = 0; u < 10; ++u) p.add_user({{0.1 * u, 0}, 0});
  auto sol = p.solve_greedy_capacitated();
  EXPECT_FALSE(sol.feasible);
  int assigned = 0;
  for (int a : sol.assignment) assigned += a >= 0 ? 1 : 0;
  EXPECT_EQ(assigned, 5);
}

TEST(Refinement, ImprovesMeanRttAtFixedCount) {
  // Users cluster in one corner; minimal cover may pick a central site, and
  // the k-median refinement should pull the choice toward the cluster.
  PlacementProblem p;
  p.set_constraint(0, {milliseconds(20)});
  p.add_site({{10, 10}, "center"});
  p.add_site({{2, 2}, "corner"});
  sim::Rng rng(5);
  for (int u = 0; u < 20; ++u) {
    p.add_user({{rng.normal(2.0, 1.0), rng.normal(2.0, 1.0)}, 0});
  }
  PlacementSolution base = p.solution_for({0});  // deliberately suboptimal
  auto refined = p.refine_mean_rtt(base, 8);
  EXPECT_LE(p.mean_assigned_rtt(refined), p.mean_assigned_rtt(base));
  ASSERT_EQ(refined.datacenters(), 1u);
  EXPECT_EQ(refined.chosen_sites[0], 1);  // moved to the corner site
}

TEST(RandomWaypoint, StaysInsideCityAndMoves) {
  RandomWaypoint::Config cfg;
  cfg.city_km = 10.0;
  RandomWaypoint w(sim::Rng(7), cfg);
  GeoPoint first = w.position_at(0);
  double max_step_km = 0.0;
  GeoPoint prev = first;
  double total = 0.0;
  for (int i = 1; i <= 600; ++i) {
    GeoPoint pos = w.position_at(seconds(i));
    EXPECT_GE(pos.x_km, 0.0);
    EXPECT_LE(pos.x_km, 10.0);
    EXPECT_GE(pos.y_km, 0.0);
    EXPECT_LE(pos.y_km, 10.0);
    max_step_km = std::max(max_step_km, distance_km(prev, pos));
    total += distance_km(prev, pos);
    prev = pos;
  }
  EXPECT_GT(total, 0.5);                 // actually moved
  EXPECT_LT(max_step_km, 40.0 / 3600 + 0.02);  // never faster than max speed
}

TEST(MigrationStudy, DenserDeploymentLowersRttButRaisesMigrations) {
  std::vector<CandidateSite> sites;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      sites.push_back({{5.0 * i + 2.5, 5.0 * j + 2.5}, "dc"});
    }
  }
  MigrationStudy::Config cfg;
  cfg.duration = seconds(3600);
  cfg.max_rtt = milliseconds(20);

  std::vector<int> sparse = {5};                 // one central DC
  std::vector<int> dense;
  for (int i = 0; i < 16; ++i) dense.push_back(i);

  auto r_sparse = MigrationStudy::run(sites, sparse, 20, 11, cfg);
  auto r_dense = MigrationStudy::run(sites, dense, 20, 11, cfg);

  EXPECT_LT(r_dense.rtt_ms.median(), r_sparse.rtt_ms.median());
  EXPECT_EQ(r_sparse.migrations, 0);  // nowhere else to go
  EXPECT_GT(r_dense.migrations, 50);  // handoffs as users roam
  EXPECT_GT(r_dense.migrations_per_user_hour, 1.0);
}

TEST(MigrationStudy, TightConstraintCreatesDeadZones) {
  std::vector<CandidateSite> sites = {{{10, 10}, "dc"}};
  MigrationStudy::Config cfg;
  cfg.duration = seconds(1800);
  cfg.max_rtt = sim::from_milliseconds(4.8);  // ~5 km radius in a 20 km city
  auto r = MigrationStudy::run(sites, {0}, 15, 13, cfg);
  EXPECT_GT(r.out_of_constraint_fraction, 0.3);
  EXPECT_LT(r.out_of_constraint_fraction, 0.95);
}

TEST(MigrationStudy, MigrationDowntimeFollowsStateSize) {
  std::vector<CandidateSite> sites = {{{0, 0}, "a"}, {{20, 0}, "b"}};
  MigrationStudy::Config small;
  small.session_state_bytes = 1'000'000;
  MigrationStudy::Config big;
  big.session_state_bytes = 50'000'000;
  auto rs = MigrationStudy::run(sites, {0, 1}, 5, 3, small);
  auto rb = MigrationStudy::run(sites, {0, 1}, 5, 3, big);
  EXPECT_EQ(rb.mean_migration_downtime, 50 * rs.mean_migration_downtime);
}

}  // namespace
}  // namespace arnet::edge
