// Tests for the transport-shootout cell runner: frame accounting invariants
// across every transport x network cell, and byte-identical results whether
// cells run serially or fanned across an ExperimentRunner pool (the property
// the CI smoke sweep checks end to end on the bench binary's artifacts).
#include <gtest/gtest.h>

#include <vector>

#include "arnet/core/shootout.hpp"
#include "arnet/runner/experiment.hpp"

namespace arnet::core {
namespace {

std::vector<ShootoutCellConfig> small_grid(sim::Time duration) {
  std::vector<ShootoutCellConfig> cells;
  for (ShootoutNetwork n :
       {ShootoutNetwork::kWifi, ShootoutNetwork::kLte, ShootoutNetwork::kNr5g}) {
    for (ShootoutTransport t :
         {ShootoutTransport::kArtp, ShootoutTransport::kReno, ShootoutTransport::kCubic,
          ShootoutTransport::kBbr, ShootoutTransport::kQuicLite}) {
      ShootoutCellConfig c;
      c.transport = t;
      c.network = n;
      c.duration = duration;
      cells.push_back(c);
    }
  }
  return cells;
}

void expect_identical(const ShootoutCellResult& a, const ShootoutCellResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.frames_sent, b.frames_sent) << a.name;
  EXPECT_EQ(a.frames_on_time, b.frames_on_time) << a.name;
  EXPECT_EQ(a.frames_late, b.frames_late) << a.name;
  EXPECT_EQ(a.frames_incomplete, b.frames_incomplete) << a.name;
  EXPECT_EQ(a.sim_events, b.sim_events) << a.name;
  // Bitwise-equal doubles, not approximate: the bench JSON is diffed by CI.
  EXPECT_EQ(a.hit_ratio, b.hit_ratio) << a.name;
  EXPECT_EQ(a.p50_ms, b.p50_ms) << a.name;
  EXPECT_EQ(a.p99_ms, b.p99_ms) << a.name;
  EXPECT_EQ(a.goodput_mbps, b.goodput_mbps) << a.name;
}

TEST(Shootout, CellIsDeterministicPerSeed) {
  ShootoutCellConfig cfg;
  cfg.transport = ShootoutTransport::kBbr;
  cfg.network = ShootoutNetwork::kNr5g;
  cfg.duration = sim::seconds(3);
  ShootoutCellResult a = run_shootout_cell(cfg, 9);
  ShootoutCellResult b = run_shootout_cell(cfg, 9);
  expect_identical(a, b);
  EXPECT_GT(a.frames_sent, 0);
}

TEST(Shootout, AllCellsAccountForEveryFrame) {
  for (const ShootoutCellConfig& cfg : small_grid(sim::seconds(3))) {
    ShootoutCellResult r = run_shootout_cell(cfg, 4);
    EXPECT_EQ(r.frames_sent, 90) << r.name;  // 30 fps x 3 s
    EXPECT_EQ(r.frames_on_time + r.frames_late + r.frames_incomplete, r.frames_sent)
        << r.name;
    EXPECT_GE(r.frames_on_time, 0) << r.name;
    EXPECT_GE(r.hit_ratio, 0.0) << r.name;
    EXPECT_LE(r.hit_ratio, 1.0) << r.name;
    EXPECT_GT(r.sim_events, 0) << r.name;
    // Somebody must deliver *something* in every cell: even the worst
    // transport/network pairing moves a few frames in 3 s.
    EXPECT_GT(r.frames_on_time + r.frames_late, 0) << r.name;
  }
}

TEST(Shootout, SerialAndParallelPoolsAgreeExactly) {
  const std::vector<ShootoutCellConfig> cells = small_grid(sim::seconds(2));

  auto sweep = [&](int jobs) {
    runner::ExperimentRunner::Config pc;
    pc.jobs = jobs;
    pc.root_seed = 1;
    runner::ExperimentRunner pool(pc);
    std::vector<ShootoutCellResult> out(cells.size());
    pool.for_each(cells.size(), [&](runner::RunContext& ctx) {
      out[ctx.run_index] = run_shootout_cell(cells[ctx.run_index], ctx.seed);
    });
    return out;
  };

  std::vector<ShootoutCellResult> serial = sweep(1);
  std::vector<ShootoutCellResult> parallel = sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace arnet::core
