#include <gtest/gtest.h>

#include <sstream>

#include "arnet/core/scenarios.hpp"
#include "arnet/core/table.hpp"

namespace arnet::core {
namespace {

using sim::milliseconds;

TEST(Table, RendersAlignedAscii) {
  TablePrinter t({"Setup", "RTT"});
  t.add_row({"Local server / WiFi", "8 ms"});
  t.add_row({"Cloud server / LTE", "120 ms"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("| Setup"), std::string::npos);
  EXPECT_NE(s.find("| Cloud server / LTE"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
  // All lines have equal width.
  std::istringstream is(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(is, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_mbps(25e6, 1), "25.0 Mb/s");
  EXPECT_EQ(fmt_ms(8.25, 1), "8.2 ms");
}

double median_rtt(Table2Setup setup) {
  auto sc = make_table2_scenario(setup, 42);
  sc.start_dynamics();
  auto ping = run_ping(sc, 50, milliseconds(100));
  EXPECT_GT(ping.received, 40) << to_string(setup);
  return ping.rtt_ms.median();
}

TEST(Table2Scenarios, LocalWifiNearEightMs) {
  double rtt = median_rtt(Table2Setup::kLocalServerWifi);
  EXPECT_GT(rtt, 5.0);
  EXPECT_LT(rtt, 11.0);
}

TEST(Table2Scenarios, CloudWifiNearThirtySixMs) {
  double rtt = median_rtt(Table2Setup::kCloudServerWifi);
  EXPECT_GT(rtt, 30.0);
  EXPECT_LT(rtt, 43.0);
}

TEST(Table2Scenarios, UniversityNearSeventyTwoMs) {
  double rtt = median_rtt(Table2Setup::kUniversityServerWifi);
  EXPECT_GT(rtt, 62.0);
  EXPECT_LT(rtt, 82.0);
}

TEST(Table2Scenarios, CloudLteNearHundredTwentyMs) {
  double rtt = median_rtt(Table2Setup::kCloudServerLte);
  EXPECT_GT(rtt, 100.0);
  EXPECT_LT(rtt, 145.0);
}

TEST(Table2Scenarios, OrderingMatchesPaper) {
  double local = median_rtt(Table2Setup::kLocalServerWifi);
  double cloud = median_rtt(Table2Setup::kCloudServerWifi);
  double univ = median_rtt(Table2Setup::kUniversityServerWifi);
  double lte = median_rtt(Table2Setup::kCloudServerLte);
  EXPECT_LT(local, cloud);
  EXPECT_LT(cloud, univ);
  EXPECT_LT(univ, lte);
}

TEST(Table2Scenarios, DeterministicPerSeed) {
  auto a = make_table2_scenario(Table2Setup::kCloudServerLte, 7);
  auto b = make_table2_scenario(Table2Setup::kCloudServerLte, 7);
  a.start_dynamics();
  b.start_dynamics();
  auto pa = run_ping(a, 20, milliseconds(50));
  auto pb = run_ping(b, 20, milliseconds(50));
  ASSERT_EQ(pa.rtt_ms.count(), pb.rtt_ms.count());
  EXPECT_DOUBLE_EQ(pa.rtt_ms.median(), pb.rtt_ms.median());
}

}  // namespace
}  // namespace arnet::core
