// Cross-module integration tests: scenarios that exercise the whole stack
// (deployments, wireless dynamics, transport, offloading, QoE) together,
// plus the QoE model's properties.
#include <gtest/gtest.h>

#include "arnet/core/qoe.hpp"
#include "arnet/core/scenarios.hpp"
#include "arnet/mar/offload.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/wireless/cellular.hpp"
#include "arnet/wireless/coverage.hpp"

namespace arnet {
namespace {

using sim::milliseconds;
using sim::seconds;

// ------------------------------------------------------------------- QoE

TEST(Qoe, AnchorPoints) {
  core::QoeInputs perfect{15.0, 20.0, 0.0, 30.0, 30.0};
  EXPECT_GT(core::qoe_mos(perfect), 4.3);
  core::QoeInputs telemetry{250.0, 400.0, 0.9, 30.0, 30.0};
  EXPECT_LT(core::qoe_mos(telemetry), 1.5);
}

TEST(Qoe, MonotoneInEachInput) {
  core::QoeInputs base{40.0, 60.0, 0.05, 25.0, 30.0};
  double mos = core::qoe_mos(base);
  auto worse = base;
  worse.median_latency_ms = 120.0;
  worse.p95_latency_ms = 140.0;
  EXPECT_LT(core::qoe_mos(worse), mos);
  worse = base;
  worse.miss_rate = 0.5;
  EXPECT_LT(core::qoe_mos(worse), mos);
  worse = base;
  worse.result_rate_hz = 8.0;
  EXPECT_LT(core::qoe_mos(worse), mos);
  worse = base;
  worse.p95_latency_ms = 300.0;  // jitter alone
  EXPECT_LT(core::qoe_mos(worse), mos);
}

TEST(Qoe, BoundedAndGraded) {
  for (double lat : {1.0, 50.0, 500.0}) {
    for (double miss : {0.0, 0.5, 1.0}) {
      core::QoeInputs in{lat, lat * 1.5, miss, 30.0, 30.0};
      double mos = core::qoe_mos(in);
      EXPECT_GE(mos, 1.0);
      EXPECT_LE(mos, 5.0);
      EXPECT_NE(std::string(core::qoe_grade(mos)), "");
    }
  }
  EXPECT_STREQ(core::qoe_grade(4.9), "excellent");
  EXPECT_STREQ(core::qoe_grade(1.1), "bad");
}

// ---------------------------------------------------- Whole-stack scenarios

/// Run an adaptive offloading session over a Table II deployment; return
/// the MOS.
double mos_for(core::Table2Setup setup) {
  auto sc = core::make_table2_scenario(setup, 77);
  sc.start_dynamics();
  mar::OffloadConfig cfg;
  cfg.strategy = mar::OffloadStrategy::kAdaptive;
  cfg.device = mar::DeviceClass::kSmartphone;
  mar::OffloadSession session(*sc.net, sc.client, sc.server, cfg);
  session.start();
  sc.sim->run_until(seconds(25));
  session.stop();
  return core::qoe_mos(core::qoe_inputs(session.stats(), 25.0));
}

TEST(Integration, QoeTracksDeploymentQuality) {
  double local = mos_for(core::Table2Setup::kLocalServerWifi);
  double cloud = mos_for(core::Table2Setup::kCloudServerWifi);
  double lte = mos_for(core::Table2Setup::kCloudServerLte);
  // The paper's Table II consequence as user experience: edge > cloud > LTE.
  EXPECT_GT(local, cloud);
  EXPECT_GT(cloud, lte);
  EXPECT_GT(local, 3.2);  // edge deployment is genuinely usable
}

TEST(Integration, AdaptiveSavesTheLteDeployment) {
  // On the LTE deployment, fixed CloudRidAR busts the budget on every
  // frame while the adaptive runtime falls back to Glimpse tracking.
  auto run = [](mar::OffloadStrategy strategy) {
    auto sc = core::make_table2_scenario(core::Table2Setup::kCloudServerLte, 78);
    sc.start_dynamics();
    mar::OffloadConfig cfg;
    cfg.strategy = strategy;
    cfg.device = mar::DeviceClass::kSmartphone;
    mar::OffloadSession session(*sc.net, sc.client, sc.server, cfg);
    session.start();
    sc.sim->run_until(seconds(25));
    session.stop();
    return core::qoe_mos(core::qoe_inputs(session.stats(), 25.0));
  };
  double fixed = run(mar::OffloadStrategy::kCloudRidAR);
  double adaptive = run(mar::OffloadStrategy::kAdaptive);
  EXPECT_GT(adaptive, fixed + 0.5);
}

TEST(Integration, CoverageGapsDegradeSinglePathQoe) {
  // One stack: offload session over a WiFi path driven by the Wi2Me
  // coverage process; the same session over always-up WiFi scores higher.
  auto run = [](bool flaky) {
    sim::Simulator sim;
    net::Network net(sim, 31);
    auto c = net.add_node("c");
    auto ap = net.add_node("ap");
    auto s = net.add_node("s");
    auto [up, down] = net.connect(c, ap, 25e6, milliseconds(4), 300);
    net.connect(ap, s, 1e9, milliseconds(3), 500);
    net.compute_routes();
    std::unique_ptr<wireless::CoverageProcess> cov;
    if (flaky) {
      wireless::CoverageProcess::Config cc;
      cc.mean_usable = seconds(20);
      cc.mean_gap = seconds(8);
      cov = std::make_unique<wireless::CoverageProcess>(sim, sim::Rng(5), *up, *down, cc);
      cov->start();
    }
    mar::OffloadConfig cfg;
    cfg.strategy = mar::OffloadStrategy::kCloudRidAR;
    mar::OffloadSession session(net, c, s, cfg);
    session.start();
    sim.run_until(seconds(60));
    session.stop();
    return core::qoe_mos(core::qoe_inputs(session.stats(), 60.0));
  };
  double stable = run(false);
  double flaky = run(true);
  EXPECT_GT(stable, flaky + 0.4);
}

TEST(Integration, HspaCannotCarryMarButEdgeWifiCan) {
  // §IV-A1's verdict end to end: the same app over an HSPA+ model vs an
  // edge WiFi deployment.
  auto run_hspa = [] {
    sim::Simulator sim;
    net::Network net(sim, 13);
    auto c = net.add_node("c");
    auto t = net.add_node("tower");
    auto s = net.add_node("server");
    auto att = wireless::attach_cellular(net, c, t, wireless::CellularProfile::hspa_plus(), 3);
    net.connect(t, s, 10e9, milliseconds(5), 1000);
    net.compute_routes();
    att.modulator->start();
    mar::OffloadConfig cfg;
    cfg.strategy = mar::OffloadStrategy::kCloudRidAR;
    mar::OffloadSession session(net, c, s, cfg);
    session.start();
    sim.run_until(seconds(30));
    session.stop();
    return core::qoe_mos(core::qoe_inputs(session.stats(), 30.0));
  };
  double hspa = run_hspa();
  double edge = mos_for(core::Table2Setup::kLocalServerWifi);
  EXPECT_LT(hspa, 2.0);  // "improper for any real-time multimedia application"
  EXPECT_GT(edge, hspa + 1.5);
}

}  // namespace
}  // namespace arnet
