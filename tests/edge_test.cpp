#include <gtest/gtest.h>

#include "arnet/edge/placement.hpp"
#include "arnet/sim/rng.hpp"

namespace arnet::edge {
namespace {

using sim::milliseconds;

PlacementProblem grid_problem(int site_grid, int users, double city_km, sim::Time max_rtt,
                              std::uint64_t seed) {
  PlacementProblem p;
  p.set_constraint(0, {max_rtt});
  for (int i = 0; i < site_grid; ++i) {
    for (int j = 0; j < site_grid; ++j) {
      double step = city_km / (site_grid + 1);
      p.add_site({{step * (i + 1), step * (j + 1)},
                  "dc-" + std::to_string(i) + "-" + std::to_string(j)});
    }
  }
  sim::Rng rng(seed);
  for (int u = 0; u < users; ++u) {
    p.add_user({{rng.uniform(0, city_km), rng.uniform(0, city_km)}, 0});
  }
  return p;
}

TEST(Placement, SingleSiteCoversRelaxedConstraint) {
  auto p = grid_problem(3, 40, 20.0, milliseconds(50), 1);
  auto sol = p.solve_greedy();
  EXPECT_TRUE(sol.feasible);
  EXPECT_EQ(sol.datacenters(), 1u);  // 50 ms covers the whole 20 km city
}

TEST(Placement, TightConstraintNeedsMoreSites) {
  auto relaxed = grid_problem(5, 50, 40.0, sim::from_milliseconds(9.0), 2).solve_greedy();
  auto tight = grid_problem(5, 50, 40.0, sim::from_milliseconds(5.5), 2).solve_greedy();
  ASSERT_TRUE(relaxed.feasible);
  ASSERT_TRUE(tight.feasible);
  EXPECT_GT(tight.datacenters(), relaxed.datacenters());
}

TEST(Placement, InfeasibleWhenUsersOutOfReach) {
  PlacementProblem p;
  p.set_constraint(0, {milliseconds(5)});
  p.add_site({{0, 0}, "dc"});
  p.add_user({{100, 100}, 0});  // ~15 ms away
  auto sol = p.solve_greedy();
  EXPECT_FALSE(sol.feasible);
  EXPECT_EQ(sol.assignment[0], -1);
}

TEST(Placement, ExactMatchesGreedyOrBetter) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto p = grid_problem(4, 40, 40.0, milliseconds(6), seed);
    auto greedy = p.solve_greedy();
    auto exact = p.solve_exact();
    ASSERT_TRUE(exact.feasible) << "seed " << seed;
    EXPECT_LE(exact.datacenters(), greedy.datacenters()) << "seed " << seed;
    // Greedy's ln(n) bound is far from tight here; expect near-optimal.
    EXPECT_LE(greedy.datacenters(), exact.datacenters() + 2) << "seed " << seed;
  }
}

TEST(Placement, AssignmentPicksNearestChosenSite) {
  PlacementProblem p;
  p.set_constraint(0, {milliseconds(30)});
  int near = p.add_site({{1, 1}, "near"});
  p.add_site({{50, 50}, "far"});
  p.add_user({{0, 0}, 0});
  p.add_user({{52, 52}, 0});
  auto sol = p.solve_greedy();
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.assignment[0], near);
}

TEST(Placement, MixedAppConstraintsRespected) {
  PlacementProblem p;
  p.set_constraint(0, {milliseconds(50)});  // tolerant telemetry
  p.set_constraint(1, {milliseconds(6)});   // MAR
  p.add_site({{0, 0}, "dc0"});
  p.add_site({{20, 0}, "dc1"});
  p.add_user({{19, 0}, 1});  // MAR user near dc1 only
  p.add_user({{1, 0}, 0});
  auto sol = p.solve_greedy();
  ASSERT_TRUE(sol.feasible);
  EXPECT_EQ(sol.assignment[0], 1);
  auto worst = p.max_assigned_rtt(sol);
  EXPECT_LE(worst, milliseconds(50));
}

TEST(Placement, MaxAssignedRttWithinConstraint) {
  auto p = grid_problem(4, 60, 30.0, milliseconds(7), 9);
  auto sol = p.solve_greedy();
  ASSERT_TRUE(sol.feasible);
  EXPECT_LE(p.max_assigned_rtt(sol), milliseconds(7));
}

TEST(Sync, NwaySyncGrowsWithSpread) {
  std::vector<CandidateSite> sites = {
      {{0, 0}, "a"}, {{5, 0}, "b"}, {{60, 0}, "c"}};
  LatencyModel model;
  sim::Time tight = nway_sync_period(sites, {0, 1}, model);
  sim::Time wide = nway_sync_period(sites, {0, 2}, model);
  EXPECT_GT(wide, tight);
  // Single datacenter needs no sync.
  EXPECT_EQ(nway_sync_period(sites, {0}, model), 0);
}

TEST(Sync, InterDcFactorScales) {
  std::vector<CandidateSite> sites = {{{0, 0}, "a"}, {{40, 0}, "b"}};
  LatencyModel model;
  sim::Time base = nway_sync_period(sites, {0, 1}, model, 1.0);
  sim::Time guarded = nway_sync_period(sites, {0, 1}, model, 2.0);
  EXPECT_EQ(guarded, 2 * base);
}

}  // namespace
}  // namespace arnet::edge
