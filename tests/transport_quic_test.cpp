// Tests for the QUIC-lite paced transport: fixed-interval fragment pacing on
// the send side, and frame reassembly that tolerates reordering/duplication
// and classifies every frame as on-time, late, or incomplete (the arvr-sim
// accounting the transport shootout scores by).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "arnet/net/network.hpp"
#include "arnet/net/packet.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/quic_lite.hpp"

namespace arnet::transport {
namespace {

using net::Network;
using net::Packet;
using net::QuicHeader;
using sim::microseconds;
using sim::milliseconds;
using sim::seconds;

struct QuicWorld {
  sim::Simulator sim;
  Network net{sim, 5};
  net::NodeId a, b;

  QuicWorld(double bps = 100e6, sim::Time delay = milliseconds(2)) {
    a = net.add_node("a");
    b = net.add_node("b");
    net.connect(a, b, bps, delay, 500);
  }

  /// Hand-crafted fragment injection, for reorder/duplicate/loss scenarios
  /// the real pacer would never produce on a clean link.
  void inject(std::uint32_t frame, std::uint32_t frag, std::uint32_t count,
              sim::Time submitted_at) {
    Packet p;
    p.flow = 9;
    p.src = a;
    p.dst = b;
    p.src_port = 1000;
    p.dst_port = 80;
    p.size_bytes = 1238;
    QuicHeader h;
    h.frame_id = frame;
    h.frag = frag;
    h.frag_count = count;
    h.sent_at = sim.now();
    h.frame_submitted_at = submitted_at;
    p.header = h;
    net.node(a).send(std::move(p));
  }
};

TEST(QuicLite, DeliversFramesOnTimeOverCleanLink) {
  QuicWorld w;
  QuicLiteSender::Config scfg;
  QuicLiteSender tx(w.net, w.a, 1000, w.b, 80, 9, scfg);
  QuicLiteReceiver rx(w.net, w.b, 80);
  int callbacks = 0;
  rx.set_frame_callback([&](const QuicFrameResult& r) {
    EXPECT_TRUE(r.complete);
    EXPECT_TRUE(r.on_time);
    ++callbacks;
  });
  for (int i = 0; i < 30; ++i) {
    w.sim.at(milliseconds(33) * i, [&tx] { tx.send_frame(30'000); });
  }
  w.sim.run_until(seconds(2));
  EXPECT_EQ(tx.frames_sent(), 30u);
  EXPECT_EQ(rx.frames_on_time(), 30);
  EXPECT_EQ(rx.frames_late(), 0);
  EXPECT_EQ(rx.frames_incomplete(), 0);
  EXPECT_EQ(callbacks, 30);
  EXPECT_EQ(rx.duplicate_fragments(), 0);
  // 30 KB / 1200 B = 25 fragments per frame.
  EXPECT_EQ(rx.fragments_received(), 30 * 25);
  EXPECT_GT(rx.frame_latency_ms().median(), 0.0);
}

TEST(QuicLite, PacerSpacesFragmentsByConfiguredInterval) {
  QuicWorld w(1e9, milliseconds(1));
  QuicLiteSender::Config scfg;
  QuicLiteSender tx(w.net, w.a, 1000, w.b, 80, 9, scfg);
  // Raw tap instead of the reassembler: record every fragment arrival time.
  std::vector<sim::Time> arrivals;
  w.net.node(w.b).bind(80, [&](Packet&& p) {
    (void)p;
    arrivals.push_back(w.sim.now());
  });
  tx.send_frame(12'000);  // 10 fragments
  w.sim.run_until(milliseconds(100));
  w.net.node(w.b).unbind(80);
  ASSERT_EQ(arrivals.size(), 10u);
  // A 1 Gb/s pipe serializes a fragment in ~10 us, so arrival spacing is set
  // by the 200 us pacer, not the link.
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i] - arrivals[i - 1], microseconds(200));
    EXPECT_LE(arrivals[i] - arrivals[i - 1], microseconds(250));
  }
}

TEST(QuicLite, ReassemblesReorderedFragments) {
  QuicWorld w;
  QuicLiteReceiver rx(w.net, w.b, 80);
  sim::Time submitted = w.sim.now();
  // Fragments of frame 7 injected in reverse order, interleaved with frame 8.
  w.sim.at(milliseconds(1), [&] { w.inject(7, 2, 3, submitted); });
  w.sim.at(milliseconds(2), [&] { w.inject(8, 0, 2, submitted); });
  w.sim.at(milliseconds(3), [&] { w.inject(7, 1, 3, submitted); });
  w.sim.at(milliseconds(4), [&] { w.inject(8, 1, 2, submitted); });
  w.sim.at(milliseconds(5), [&] { w.inject(7, 0, 3, submitted); });
  w.sim.run_until(milliseconds(50));
  EXPECT_EQ(rx.frames_completed(), 2);
  EXPECT_EQ(rx.frames_on_time(), 2);
  EXPECT_EQ(rx.duplicate_fragments(), 0);
}

TEST(QuicLite, CountsDuplicatesWithoutDoubleDelivery) {
  QuicWorld w;
  QuicLiteReceiver rx(w.net, w.b, 80);
  int callbacks = 0;
  rx.set_frame_callback([&](const QuicFrameResult&) { ++callbacks; });
  sim::Time submitted = w.sim.now();
  w.sim.at(milliseconds(1), [&] { w.inject(1, 0, 2, submitted); });
  w.sim.at(milliseconds(2), [&] { w.inject(1, 0, 2, submitted); });  // dup pre-completion
  w.sim.at(milliseconds(3), [&] { w.inject(1, 1, 2, submitted); });  // completes
  w.sim.at(milliseconds(4), [&] { w.inject(1, 1, 2, submitted); });  // dup post-completion
  w.sim.run_until(milliseconds(50));
  EXPECT_EQ(rx.frames_completed(), 1);
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(rx.duplicate_fragments(), 2);
}

TEST(QuicLite, MissingFragmentBecomesIncompleteAtExpiry) {
  QuicWorld w;
  QuicLiteReceiver rx(w.net, w.b, 80);
  QuicFrameResult last;
  int callbacks = 0;
  rx.set_frame_callback([&](const QuicFrameResult& r) {
    last = r;
    ++callbacks;
  });
  sim::Time submitted = w.sim.now();
  // 2 of 3 fragments arrive; the third is lost forever.
  w.sim.at(milliseconds(1), [&] { w.inject(3, 0, 3, submitted); });
  w.sim.at(milliseconds(2), [&] { w.inject(3, 2, 3, submitted); });
  w.sim.run_until(milliseconds(100));
  EXPECT_EQ(rx.frames_incomplete(), 0) << "expired before the 250 ms grace";
  w.sim.run_until(milliseconds(400));
  EXPECT_EQ(rx.frames_incomplete(), 1);
  EXPECT_EQ(rx.frames_completed(), 0);
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(last.complete);
  EXPECT_FALSE(last.on_time);
  // A straggler after the sweep forgot the frame starts a fresh (doomed)
  // reassembly rather than crashing or double-counting.
  w.sim.at(milliseconds(410), [&] { w.inject(3, 1, 3, submitted); });
  w.sim.run_until(milliseconds(800));
  EXPECT_EQ(rx.frames_incomplete(), 2);
}

TEST(QuicLite, LateCompletionCountsAsLateNotOnTime) {
  QuicWorld w;
  QuicLiteReceiver::Config rcfg;
  rcfg.deadline = milliseconds(50);
  QuicLiteReceiver rx(w.net, w.b, 80, rcfg);
  sim::Time submitted = w.sim.now();
  w.sim.at(milliseconds(1), [&] { w.inject(4, 0, 2, submitted); });
  // Second fragment completes the frame 80 ms after submission: past the
  // 50 ms deadline but inside the 250 ms expiry.
  w.sim.at(milliseconds(80), [&] { w.inject(4, 1, 2, submitted); });
  w.sim.run_until(milliseconds(500));
  EXPECT_EQ(rx.frames_late(), 1);
  EXPECT_EQ(rx.frames_on_time(), 0);
  EXPECT_EQ(rx.frames_incomplete(), 0);
}

}  // namespace
}  // namespace arnet::transport
