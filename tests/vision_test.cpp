#include <gtest/gtest.h>

#include "arnet/sim/rng.hpp"
#include "arnet/vision/features.hpp"
#include "arnet/vision/geometry.hpp"
#include "arnet/vision/homography.hpp"
#include "arnet/vision/image.hpp"
#include "arnet/vision/pipeline.hpp"
#include "arnet/vision/synth.hpp"
#include "arnet/vision/track.hpp"

namespace arnet::vision {
namespace {

TEST(Image, ClampedAndBilinearAccess) {
  Image img(4, 4);
  img.at(0, 0) = 10;
  img.at(3, 3) = 200;
  EXPECT_EQ(img.at_clamped(-5, -5), 10);
  EXPECT_EQ(img.at_clamped(10, 10), 200);
  img.at(1, 1) = 100;
  img.at(2, 1) = 200;
  EXPECT_NEAR(img.bilinear(1.5, 1.0), 150.0, 1e-9);
}

TEST(Mat3, InverseRoundTrips) {
  Mat3 h = Mat3::similarity(1.3, 0.4, 10, -5);
  h(2, 0) = 1e-4;
  Mat3 id = h * h.inverse();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(id(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(Mat3, ApplyTranslation) {
  Mat3 t = Mat3::translation(5, -3);
  Vec2 p = t.apply({1, 1});
  EXPECT_DOUBLE_EQ(p.x, 6);
  EXPECT_DOUBLE_EQ(p.y, -2);
}

TEST(Jacobi, FindsNullVectorOfSingularMatrix) {
  // A = v v^T for v = (1,2,3): eigenvector for eigenvalue 0 must be
  // orthogonal to v.
  std::array<std::array<double, 3>, 3> a{};
  double v[3] = {1, 2, 3};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) a[i][j] = v[i] * v[j];
  }
  auto e = smallest_eigenvector<3>(a);
  double dot = e[0] * 1 + e[1] * 2 + e[2] * 3;
  EXPECT_NEAR(dot, 0.0, 1e-9);
  double norm = e[0] * e[0] + e[1] * e[1] + e[2] * e[2];
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(Synth, SceneIsDeterministicPerSeed) {
  sim::Rng a(5), b(5), c(6);
  SceneParams p;
  Image ia = render_scene(a, p);
  Image ib = render_scene(b, p);
  Image ic = render_scene(c, p);
  EXPECT_EQ(ia.data(), ib.data());
  EXPECT_NE(ia.data(), ic.data());
}

TEST(Synth, WarpByTranslationShiftsContent) {
  sim::Rng rng(5);
  Image img = render_scene(rng, SceneParams{});
  Image shifted = warp_image(img, Mat3::translation(7, 0));
  int agree = 0, total = 0;
  for (int y = 20; y < img.height() - 20; ++y) {
    for (int x = 20; x < img.width() - 20; ++x) {
      ++total;
      if (std::abs(int(shifted.at(x, y)) - int(img.at(x - 7, y))) <= 1) ++agree;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.99);
}

TEST(Fast, DetectsSyntheticCorner) {
  // Bright square on dark background: corners at the 4 square corners.
  Image img(64, 64, 20);
  for (int y = 20; y < 44; ++y) {
    for (int x = 20; x < 44; ++x) img.at(x, y) = 220;
  }
  auto feats = fast_detect(img, 20);
  ASSERT_GE(feats.size(), 4u);
  // Every detection should be near one of the four square corners.
  for (const auto& f : feats) {
    double d1 = std::hypot(f.x - 20.0, f.y - 20.0);
    double d2 = std::hypot(f.x - 43.0, f.y - 20.0);
    double d3 = std::hypot(f.x - 20.0, f.y - 43.0);
    double d4 = std::hypot(f.x - 43.0, f.y - 43.0);
    EXPECT_LT(std::min(std::min(d1, d2), std::min(d3, d4)), 4.0)
        << "stray corner at " << f.x << "," << f.y;
  }
}

TEST(Fast, FlatImageHasNoCorners) {
  Image img(64, 64, 128);
  EXPECT_TRUE(fast_detect(img, 20).empty());
}

TEST(Fast, NmsLimitsDensity) {
  sim::Rng rng(9);
  Image img = render_scene(rng, SceneParams{});
  auto feats = fast_detect(img, 20, /*nms_radius=*/6);
  for (std::size_t i = 0; i < feats.size(); ++i) {
    for (std::size_t j = i + 1; j < feats.size(); ++j) {
      bool close = std::abs(feats[i].x - feats[j].x) <= 6 &&
                   std::abs(feats[i].y - feats[j].y) <= 6;
      EXPECT_FALSE(close);
    }
  }
}

TEST(Fast, SceneProducesUsableFeatureCount) {
  sim::Rng rng(11);
  Image img = render_scene(rng, SceneParams{});
  auto feats = fast_detect(img, 20);
  EXPECT_GT(feats.size(), 30u);
  EXPECT_LT(feats.size(), 2000u);
}

TEST(Brief, DescriptorStableUnderNoise) {
  sim::Rng rng(13);
  Image img = render_scene(rng, SceneParams{});
  auto feats = fast_detect(img, 20);
  auto clean = brief_describe(img, feats);
  Image noisy = img;
  sim::Rng nrng(99);
  add_noise(noisy, nrng, 4.0);
  auto dirty = brief_describe(noisy, feats);
  ASSERT_EQ(clean.descriptors.size(), dirty.descriptors.size());
  ASSERT_GT(clean.descriptors.size(), 10u);
  double mean_dist = 0;
  for (std::size_t i = 0; i < clean.descriptors.size(); ++i) {
    mean_dist += clean.descriptors[i].hamming(dirty.descriptors[i]);
  }
  mean_dist /= static_cast<double>(clean.descriptors.size());
  // Same point under mild noise: far below the ~128 expected for random
  // descriptors.
  EXPECT_LT(mean_dist, 40.0);
}

TEST(Brief, DifferentPointsAreFar) {
  sim::Rng rng(13);
  Image img = render_scene(rng, SceneParams{});
  auto d = brief_describe(img, fast_detect(img, 20));
  ASSERT_GT(d.descriptors.size(), 10u);
  double mean = 0;
  int n = 0;
  for (std::size_t i = 0; i + 1 < d.descriptors.size() && n < 200; i += 2, ++n) {
    mean += d.descriptors[i].hamming(d.descriptors[i + 1]);
  }
  mean /= n;
  EXPECT_GT(mean, 60.0);
}

TEST(Match, FindsCorrespondencesUnderTranslation) {
  sim::Rng rng(17);
  Image img = render_scene(rng, SceneParams{});
  Mat3 t = Mat3::translation(9, 4);
  Image moved = warp_image(img, t);
  auto a = brief_describe(img, fast_detect(img, 20));
  auto b = brief_describe(moved, fast_detect(moved, 20));
  auto matches = match_descriptors(a.descriptors, b.descriptors);
  ASSERT_GT(matches.size(), 15u);
  int correct = 0;
  for (const auto& m : matches) {
    const auto& fa = a.features[static_cast<std::size_t>(m.query)];
    const auto& fb = b.features[static_cast<std::size_t>(m.train)];
    if (std::abs(fb.x - fa.x - 9) <= 2 && std::abs(fb.y - fa.y - 4) <= 2) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / matches.size(), 0.8);
}

TEST(Dlt, RecoversExactHomographyFromCleanPoints) {
  Mat3 truth = Mat3::similarity(1.1, 0.2, 15, -8);
  truth(2, 0) = 2e-4;
  std::vector<Correspondence> pts;
  for (int i = 0; i < 12; ++i) {
    Vec2 p{20.0 + 25 * (i % 4), 15.0 + 30 * (i / 4)};
    pts.push_back({p, truth.apply(p)});
  }
  auto h = estimate_homography_dlt(pts);
  ASSERT_TRUE(h);
  for (int i = 0; i < 50; ++i) {
    Vec2 p{double(7 * i % 100), double(11 * i % 80)};
    EXPECT_LT(distance(h->apply(p), truth.apply(p)), 0.01);
  }
}

TEST(Dlt, RejectsDegenerateInput) {
  // All points collinear.
  std::vector<Correspondence> pts;
  for (int i = 0; i < 8; ++i) {
    Vec2 p{static_cast<double>(i), static_cast<double>(2 * i)};
    pts.push_back({p, p});
  }
  auto h = estimate_homography_dlt(pts);
  if (h) {
    // If numerically something came back, it must not be wildly confident:
    // mapping a non-collinear probe should not be trusted. Accept either
    // nullopt or a result; the RANSAC layer guards with inlier counts.
    SUCCEED();
  }
  EXPECT_FALSE(estimate_homography_dlt({}).has_value());
}

TEST(Ransac, SurvivesOutliers) {
  sim::Rng rng(23);
  Mat3 truth = Mat3::similarity(0.95, -0.15, -12, 6);
  std::vector<Correspondence> pts;
  for (int i = 0; i < 60; ++i) {
    Vec2 p{rng.uniform(0, 300), rng.uniform(0, 200)};
    pts.push_back({p, truth.apply(p)});
  }
  for (int i = 0; i < 40; ++i) {  // 40% outliers
    pts.push_back({{rng.uniform(0, 300), rng.uniform(0, 200)},
                   {rng.uniform(0, 300), rng.uniform(0, 200)}});
  }
  auto r = estimate_homography_ransac(pts, rng);
  ASSERT_TRUE(r);
  EXPECT_GE(static_cast<int>(r->inliers.size()), 55);
  Vec2 probe{150, 100};
  EXPECT_LT(distance(r->h.apply(probe), truth.apply(probe)), 1.0);
}

TEST(Ransac, FailsCleanlyOnPureNoise) {
  sim::Rng rng(29);
  std::vector<Correspondence> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({{rng.uniform(0, 300), rng.uniform(0, 200)},
                   {rng.uniform(0, 300), rng.uniform(0, 200)}});
  }
  RansacParams params;
  params.min_inliers = 12;
  auto r = estimate_homography_ransac(pts, rng, params);
  EXPECT_FALSE(r.has_value());
}

TEST(Track, FollowsPureTranslation) {
  sim::Rng rng(31);
  Image img = render_scene(rng, SceneParams{});
  Image moved = warp_image(img, Mat3::translation(5, -3));
  auto feats = fast_detect(img, 20);
  ASSERT_GT(feats.size(), 20u);
  std::vector<Vec2> pts;
  for (std::size_t i = 0; i < std::min<std::size_t>(feats.size(), 50); ++i) {
    pts.push_back({static_cast<double>(feats[i].x), static_cast<double>(feats[i].y)});
  }
  auto tracks = track_points(img, moved, pts);
  int good = 0;
  for (const auto& t : tracks) {
    if (t.ok && std::abs(t.curr.x - t.prev.x - 5) <= 1 &&
        std::abs(t.curr.y - t.prev.y + 3) <= 1) {
      ++good;
    }
  }
  EXPECT_GT(static_cast<double>(good) / tracks.size(), 0.7);
  EXPECT_GT(tracking_quality(tracks), 0.7);
}

TEST(Track, QualityDropsOnUnrelatedFrame) {
  sim::Rng rng(37);
  Image a = render_scene(rng, SceneParams{});
  Image b = render_scene(rng, SceneParams{});  // different scene
  auto feats = fast_detect(a, 20);
  std::vector<Vec2> pts;
  for (std::size_t i = 0; i < std::min<std::size_t>(feats.size(), 40); ++i) {
    pts.push_back({static_cast<double>(feats[i].x), static_cast<double>(feats[i].y)});
  }
  auto same = track_points(a, a, pts);
  auto diff = track_points(a, b, pts);
  EXPECT_GT(tracking_quality(same), 0.95);
  EXPECT_LT(tracking_quality(diff), tracking_quality(same));
}

TEST(Pipeline, RecognizesWarpedObjectAmongDistractors) {
  sim::Rng rng(41);
  ObjectDatabase db;
  std::vector<Image> refs;
  for (int i = 0; i < 4; ++i) {
    refs.push_back(render_scene(rng, SceneParams{}));
    db.add_object("object-" + std::to_string(i), refs.back());
  }
  // Camera sees object 2 under a small motion.
  sim::Rng mrng(43);
  Mat3 motion = random_camera_motion(mrng);
  Image frame = warp_image(refs[2], motion);

  RecognitionPipeline pipe;
  sim::Rng rrng(47);
  auto result = pipe.recognize_frame(frame, db, rrng);
  ASSERT_TRUE(result);
  EXPECT_EQ(result->object_id, 2);
  EXPECT_GT(result->inliers, 10);
  EXPECT_GT(result->feature_upload_bytes, 0);
  // Pose maps reference corners close to where the motion put them.
  Vec2 probe{100, 80};
  EXPECT_LT(distance(result->pose.apply(probe), motion.apply(probe)), 3.0);
}

TEST(Pipeline, NoMatchOnUnknownScene) {
  sim::Rng rng(53);
  ObjectDatabase db;
  for (int i = 0; i < 3; ++i) {
    Image ref = render_scene(rng, SceneParams{});
    db.add_object("object-" + std::to_string(i), ref);
  }
  Image unknown = render_scene(rng, SceneParams{});
  RecognitionPipeline pipe;
  sim::Rng rrng(59);
  auto result = pipe.recognize_frame(unknown, db, rrng);
  EXPECT_FALSE(result.has_value());
}

TEST(Pipeline, FeatureBytesMatchCloudRidArModel) {
  sim::Rng rng(61);
  Image img = render_scene(rng, SceneParams{});
  RecognitionPipeline pipe;
  auto feats = pipe.extract(img);
  EXPECT_EQ(static_cast<std::int64_t>(feats.features.size()) * kSerializedFeatureBytes,
            static_cast<std::int64_t>(feats.features.size()) * 36);
}

/// Property sweep: recognition keeps working across motion magnitudes.
class PipelineMotionSweep : public ::testing::TestWithParam<double> {};

TEST_P(PipelineMotionSweep, RecognitionSurvivesMotion) {
  double magnitude = GetParam();
  sim::Rng rng(67);
  ObjectDatabase db;
  Image ref = render_scene(rng, SceneParams{});
  db.add_object("target", ref);
  const std::uint64_t motion_seed = static_cast<std::uint64_t>(magnitude * 1000) + 3;
  sim::Rng mrng(motion_seed);
  Mat3 motion = random_camera_motion(mrng, magnitude);
  Image frame = warp_image(ref, motion);
  RecognitionPipeline pipe;
  sim::Rng rrng(71);
  auto result = pipe.recognize_frame(frame, db, rrng);
  ASSERT_TRUE(result) << "magnitude " << magnitude;
  EXPECT_EQ(result->object_id, 0);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, PipelineMotionSweep,
                         ::testing::Values(0.25, 0.5, 1.0, 1.5));

}  // namespace
}  // namespace arnet::vision
