// Tests for the shared ComputeResource and its effect on offload sessions.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "arnet/mar/compute.hpp"
#include "arnet/mar/offload.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"

namespace arnet::mar {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(ComputeResource, SerialJobsQueueOnOneCore) {
  sim::Simulator sim;
  ComputeResource cpu(sim, 1);
  std::vector<sim::Time> done;
  for (int i = 0; i < 3; ++i) {
    cpu.submit(milliseconds(10), [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], milliseconds(10));
  EXPECT_EQ(done[1], milliseconds(20));
  EXPECT_EQ(done[2], milliseconds(30));
  EXPECT_GT(cpu.queue_wait_ms().max(), 9.0);  // the third job waited 20 ms
}

TEST(ComputeResource, CoresRunInParallel) {
  sim::Simulator sim;
  ComputeResource cpu(sim, 4);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    cpu.submit(milliseconds(10), [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(sim.now(), milliseconds(10));  // all four finished together
  EXPECT_NEAR(cpu.utilization(), 1.0, 1e-9);
}

TEST(ComputeResource, UtilizationReflectsIdleTime) {
  sim::Simulator sim;
  ComputeResource cpu(sim, 2);
  cpu.submit(milliseconds(10), [] {});
  sim.run_until(milliseconds(100));
  // 10 ms busy on one of two cores over 100 ms = 5 %.
  EXPECT_NEAR(cpu.utilization(), 0.05, 1e-6);
}

TEST(ComputeResource, SharedPoolCreatesContentionAcrossSessions) {
  // Two clients offload to one server. With a dedicated-capacity model both
  // get identical latency; with a single shared core, they queue.
  auto run = [](bool shared) {
    sim::Simulator sim;
    net::Network net(sim, 3);
    auto s = net.add_node("server");
    std::unique_ptr<ComputeResource> pool;
    if (shared) pool = std::make_unique<ComputeResource>(sim, 1);
    std::vector<std::unique_ptr<OffloadSession>> sessions;
    for (int i = 0; i < 6; ++i) {
      auto c = net.add_node("c" + std::to_string(i));
      net.connect(c, s, 50e6, milliseconds(4), 300);
      OffloadConfig cfg;
      cfg.strategy = OffloadStrategy::kFullOffload;  // heavy server work
      cfg.send_sensor_stream = false;
      auto sess = std::make_unique<OffloadSession>(net, c, s, cfg);
      if (pool) sess->set_server_compute(pool.get());
      sessions.push_back(std::move(sess));
    }
    net.compute_routes();
    for (auto& sess : sessions) sess->start();
    sim.run_until(seconds(10));
    sim::Samples lat;
    for (auto& sess : sessions) {
      sess->stop();
      for (double v : sess->stats().latency_ms.values()) lat.add(v);
    }
    return lat.median();
  };
  double dedicated = run(false);
  double contended = run(true);
  // 6 users x 30 fps x ~3.2 ms server work = 58 % of one core... plus
  // bursts: queueing inflates latency measurably.
  EXPECT_GT(contended, dedicated + 1.0);
}

TEST(ComputeResource, OffloadSessionStillCompletesWithPool) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net.connect(c, s, 30e6, milliseconds(5), 300);
  ComputeResource pool(sim, 2);
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kCloudRidAR;
  OffloadSession session(net, c, s, cfg);
  session.set_server_compute(&pool);
  session.start();
  sim.run_until(seconds(10));
  session.stop();
  EXPECT_GT(session.stats().results, 250);
  EXPECT_GT(pool.jobs(), 250);
}

}  // namespace
}  // namespace arnet::mar
