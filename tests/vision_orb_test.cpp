// Tests for ORB-style oriented descriptors and the Glimpse dynamic trigger.
#include <gtest/gtest.h>

#include "arnet/mar/offload.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/vision/features.hpp"
#include "arnet/vision/synth.hpp"

namespace arnet::vision {
namespace {

/// Fraction of cross-checked matches consistent with the known rotation.
double match_accuracy(const DescribedFeatures& a, const DescribedFeatures& b,
                      const Mat3& truth) {
  auto matches = match_descriptors(a.descriptors, b.descriptors);
  if (matches.size() < 8) return 0.0;
  int good = 0;
  for (const auto& m : matches) {
    const Feature& fa = a.features[static_cast<std::size_t>(m.query)];
    const Feature& fb = b.features[static_cast<std::size_t>(m.train)];
    Vec2 mapped = truth.apply({static_cast<double>(fa.x), static_cast<double>(fa.y)});
    if (std::hypot(mapped.x - fb.x, mapped.y - fb.y) < 3.0) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(matches.size());
}

TEST(Orb, OrientationFollowsPatchRotation) {
  // A patch with a bright half on the right has orientation ~0; rotating
  // the gradient by 90 deg rotates the centroid angle accordingly.
  Image right(64, 64, 20);
  for (int y = 0; y < 64; ++y) {
    for (int x = 32; x < 64; ++x) right.at(x, y) = 220;
  }
  Image down(64, 64, 20);
  for (int y = 32; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) down.at(x, y) = 220;
  }
  double a_right = feature_orientation(right, {32, 32, 0});
  double a_down = feature_orientation(down, {32, 32, 0});
  EXPECT_NEAR(a_right, 0.0, 0.2);
  EXPECT_NEAR(a_down, 1.5708, 0.2);
}

TEST(Orb, SurvivesLargeRotationWherePlainBriefFails) {
  sim::Rng rng(3);
  SceneParams params;
  params.width = 360;
  params.height = 360;
  Image img = render_scene(rng, params);
  // Rotate 55 degrees about the image center.
  double angle = 55.0 * 3.14159265 / 180.0;
  Mat3 to_origin = Mat3::translation(-180, -180);
  Mat3 rot = Mat3::similarity(1.0, angle, 0, 0);
  Mat3 back = Mat3::translation(180, 180);
  Mat3 h = back * rot * to_origin;
  Image rotated = warp_image(img, h);

  auto fa = fast_detect(img, 20);
  auto fb = fast_detect(rotated, 20);
  auto plain_a = brief_describe(img, fa);
  auto plain_b = brief_describe(rotated, fb);
  auto orb_a = orb_describe(img, fa);
  auto orb_b = orb_describe(rotated, fb);

  double plain_acc = match_accuracy(plain_a, plain_b, h);
  double orb_acc = match_accuracy(orb_a, orb_b, h);
  EXPECT_GT(orb_acc, 0.5);
  EXPECT_GT(orb_acc, plain_acc + 0.25);
}

TEST(Orb, ComparableToPlainBriefWithoutRotation) {
  sim::Rng rng(5);
  Image img = render_scene(rng, SceneParams{});
  Mat3 t = Mat3::translation(6, -4);
  Image moved = warp_image(img, t);
  auto fa = fast_detect(img, 20);
  auto fb = fast_detect(moved, 20);
  double orb_acc = match_accuracy(orb_describe(img, fa), orb_describe(moved, fb), t);
  EXPECT_GT(orb_acc, 0.7);
}

}  // namespace
}  // namespace arnet::vision

namespace arnet::mar {
namespace {

using sim::milliseconds;
using sim::seconds;

OffloadStats run_glimpse(double motion, bool adaptive) {
  sim::Simulator sim;
  net::Network net(sim, 19);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net.connect(c, s, 30e6, milliseconds(8), 500);
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kGlimpse;
  cfg.glimpse_adaptive = adaptive;
  cfg.glimpse_motion_level = motion;
  OffloadSession session(net, c, s, cfg);
  session.start();
  sim.run_until(seconds(20));
  session.stop();
  return session.stats();
}

TEST(GlimpseAdaptive, OffloadsMoreUnderFastMotion) {
  auto calm = run_glimpse(0.02, true);
  auto shaky = run_glimpse(0.15, true);
  ASSERT_GT(calm.frames, 500);
  EXPECT_GT(shaky.offloaded_frames, 2 * calm.offloaded_frames);
  EXPECT_GT(shaky.uplink_bytes, 2 * calm.uplink_bytes);
}

TEST(GlimpseAdaptive, CalmSceneBeatsFixedIntervalOnUplink) {
  // With little motion, the dynamic trigger offloads far less than the
  // fixed every-5th-frame policy at equivalent tracking quality.
  auto fixed = run_glimpse(0.02, false);
  auto adaptive = run_glimpse(0.02, true);
  EXPECT_LT(adaptive.uplink_bytes, fixed.uplink_bytes / 2);
}

TEST(GlimpseAdaptive, AllFramesStillProduceResults) {
  auto stats = run_glimpse(0.08, true);
  EXPECT_GT(static_cast<double>(stats.results) / stats.frames, 0.95);
}

}  // namespace
}  // namespace arnet::mar
