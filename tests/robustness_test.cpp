// Property-based and failure-injection tests: protocol invariants that must
// hold across random seeds, bursty loss, and link flaps.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "arnet/mar/offload.hpp"
#include "arnet/net/loss.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/artp.hpp"
#include "arnet/transport/tcp.hpp"

namespace arnet {
namespace {

using net::TrafficClass;
using sim::milliseconds;
using sim::seconds;

// ---------------------------------------------------------------- ARTP

class ArtpChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArtpChaosSweep, CriticalInvariantsUnderBurstLossAndFlaps) {
  std::uint64_t seed = GetParam();
  sim::Simulator sim;
  net::Network net(sim, seed);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net::Link::Config up;
  up.rate_bps = 10e6;
  up.delay = milliseconds(12);
  up.queue_packets = 500;
  net::GilbertElliottLoss::Config ge;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.2;
  ge.loss_in_bad = 0.5;
  up.loss = std::make_unique<net::GilbertElliottLoss>(ge);
  net::Link::Config down;
  down.rate_bps = 10e6;
  down.delay = milliseconds(12);
  down.queue_packets = 500;
  auto [ul, dl] = net.connect(c, s, std::move(up), std::move(down));
  (void)dl;

  // Random link flaps: three outages of 0.3-1.5 s.
  sim::Rng flap_rng(seed ^ 0xF1A9);
  for (int i = 0; i < 3; ++i) {
    sim::Time start = sim::from_seconds(flap_rng.uniform(2.0, 14.0));
    sim::Time dur = sim::from_seconds(flap_rng.uniform(0.3, 1.5));
    sim.at(start, [l = ul] { l->set_up(false); });
    sim.at(start + dur, [l = ul] { l->set_up(true); });
  }

  transport::ArtpReceiver rx(net, s, 80);
  std::vector<std::uint64_t> critical_order;
  std::multiset<std::uint64_t> all_delivered;
  rx.set_message_callback([&](const transport::ArtpDelivery& d) {
    all_delivered.insert(d.msg_id);
    if (d.tclass == TrafficClass::kCriticalData) {
      ASSERT_TRUE(d.complete);
      critical_order.push_back(d.msg_id);
    }
  });

  transport::ArtpSenderConfig cfg;
  cfg.critical_rto = milliseconds(150);
  transport::ArtpSender tx(net, c, 1000, s, 80, 1, cfg);
  std::set<std::uint64_t> critical_ids;
  constexpr int kCritical = 150;
  for (int i = 0; i < kCritical; ++i) {
    sim.at(milliseconds(100) * i, [&tx, &critical_ids, i] {
      transport::ArtpMessageSpec m;
      m.bytes = 3000;
      m.tclass = TrafficClass::kCriticalData;
      m.priority = net::Priority::kMediumNoDrop;
      m.frame_id = static_cast<std::uint32_t>(i);
      critical_ids.insert(tx.send_message(m));
    });
    // Interleave droppable noise.
    sim.at(milliseconds(100) * i + milliseconds(37), [&tx] {
      transport::ArtpMessageSpec m;
      m.bytes = 6000;
      m.tclass = TrafficClass::kFullBestEffort;
      m.priority = net::Priority::kLowest;
      tx.send_message(m);
    });
  }
  sim.run_until(seconds(60));

  // Invariant 1: every critical message is delivered...
  ASSERT_EQ(critical_order.size(), static_cast<std::size_t>(kCritical)) << "seed " << seed;
  // ...exactly once...
  for (std::uint64_t id : critical_ids) {
    EXPECT_EQ(all_delivered.count(id), 1u) << "seed " << seed << " msg " << id;
  }
  // ...and in order.
  for (std::size_t i = 1; i < critical_order.size(); ++i) {
    EXPECT_LT(critical_order[i - 1], critical_order[i]) << "seed " << seed;
  }
  // Invariant 2: nothing is ever delivered twice.
  for (std::uint64_t id : all_delivered) {
    EXPECT_EQ(all_delivered.count(id), 1u) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArtpChaosSweep,
                         ::testing::Values(1u, 7u, 23u, 99u, 1234u, 777777u));

class TcpLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossSweep, TransferCompletesExactlyOnceAtAnyLossRate) {
  double loss = GetParam();
  sim::Simulator sim;
  net::Network net(sim, 5);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net::Link::Config up;
  up.rate_bps = 10e6;
  up.delay = milliseconds(10);
  up.queue_packets = 200;
  up.loss = std::make_unique<net::BernoulliLoss>(loss);
  net::Link::Config down;
  down.rate_bps = 10e6;
  down.delay = milliseconds(10);
  down.queue_packets = 200;
  net.connect(c, s, std::move(up), std::move(down));
  transport::TcpSink sink(net, s, 80);
  transport::TcpSource src(net, c, 1000, s, 80, 1);
  src.send(300'000);
  sim.run_until(seconds(300));
  EXPECT_TRUE(src.complete()) << "loss " << loss;
  // Exactly the sent bytes are delivered to the application, no more.
  EXPECT_EQ(sink.received_bytes(), 300'000) << "loss " << loss;
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLossSweep,
                         ::testing::Values(0.0, 0.01, 0.05, 0.1, 0.2));

TEST(Robustness, ArtpSurvivesTotalBlackoutAndResumes) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  auto [up, down] = net.connect(c, s, 10e6, milliseconds(10), 300);
  transport::ArtpReceiver rx(net, s, 80);
  int critical_delivered = 0;
  rx.set_message_callback([&](const transport::ArtpDelivery& d) {
    if (d.tclass == TrafficClass::kCriticalData && d.complete) ++critical_delivered;
  });
  transport::ArtpSender tx(net, c, 1000, s, 80, 1, transport::ArtpSenderConfig{});
  for (int i = 0; i < 100; ++i) {
    sim.at(milliseconds(100) * i, [&tx] {
      transport::ArtpMessageSpec m;
      m.bytes = 2000;
      m.tclass = TrafficClass::kCriticalData;
      m.priority = net::Priority::kHighest;
      tx.send_message(m);
    });
  }
  // 4-second blackout of BOTH directions (feedback dies too).
  sim.at(seconds(3), [&, u = up, d = down] {
    u->set_up(false);
    d->set_up(false);
  });
  sim.at(seconds(7), [&, u = up, d = down] {
    u->set_up(true);
    d->set_up(true);
  });
  sim.run_until(seconds(40));
  EXPECT_EQ(critical_delivered, 100);
}

TEST(Robustness, OffloadSessionRecoversFromOutage) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  auto [up, down] = net.connect(c, s, 30e6, milliseconds(8), 500);
  mar::OffloadConfig cfg;
  cfg.strategy = mar::OffloadStrategy::kCloudRidAR;
  mar::OffloadSession session(net, c, s, cfg);
  session.start();
  sim.at(seconds(5), [&, u = up, d = down] {
    u->set_up(false);
    d->set_up(false);
  });
  sim.at(seconds(8), [&, u = up, d = down] {
    u->set_up(true);
    d->set_up(true);
  });
  std::int64_t at_10 = 0;
  sim.at(seconds(10), [&] { at_10 = session.stats().results; });
  sim.run_until(seconds(20));
  session.stop();
  // Frames flowed again after the outage.
  EXPECT_GT(session.stats().results, at_10 + 200);
}

TEST(Robustness, ArtpDestructorsMidTrafficAreSafe) {
  // Tearing a sender/receiver down while packets are in flight must not
  // crash or deliver into freed objects.
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net.connect(c, s, 10e6, milliseconds(10), 300);
  auto rx = std::make_unique<transport::ArtpReceiver>(net, s, 80);
  auto tx = std::make_unique<transport::ArtpSender>(net, c, 1000, s, 80, 1,
                                                    transport::ArtpSenderConfig{});
  for (int i = 0; i < 50; ++i) {
    sim.at(milliseconds(10) * i, [&tx] {
      if (!tx) return;
      transport::ArtpMessageSpec m;
      m.bytes = 5000;
      m.tclass = TrafficClass::kBestEffortLossRecovery;
      m.priority = net::Priority::kMediumNoDrop;
      tx->send_message(m);
    });
  }
  sim.at(milliseconds(250), [&] { tx.reset(); });
  sim.at(milliseconds(300), [&] { rx.reset(); });
  sim.run_until(seconds(2));
  SUCCEED();
}

TEST(Robustness, QueuesConserveBytes) {
  // Property: for any enqueue/dequeue interleaving, bytes out + bytes held
  // + bytes dropped == bytes offered.
  sim::Rng rng(17);
  net::FqCoDelQueue q;
  std::int64_t offered = 0, out = 0;
  std::int64_t dropped_bytes = 0;
  sim::Time now = 0;
  for (int step = 0; step < 5000; ++step) {
    now += sim::microseconds(static_cast<std::int64_t>(rng.uniform(1, 500)));
    if (rng.bernoulli(0.6)) {
      net::Packet p;
      p.size_bytes = static_cast<std::int32_t>(rng.uniform_int(40, 1500));
      p.flow = static_cast<net::FlowId>(rng.uniform_int(0, 5));
      offered += p.size_bytes;
      std::int64_t sz = p.size_bytes;
      if (!q.enqueue(std::move(p), now)) dropped_bytes += sz;
    } else {
      std::int64_t before = q.bytes();
      if (auto p = q.dequeue(now)) {
        out += p->size_bytes;
        // AQM drops inside dequeue are reflected in bytes().
        dropped_bytes += before - q.bytes() - p->size_bytes;
      } else {
        dropped_bytes += before - q.bytes();
      }
    }
  }
  EXPECT_EQ(offered, out + q.bytes() + dropped_bytes);
}

}  // namespace
}  // namespace arnet
