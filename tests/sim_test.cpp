#include <gtest/gtest.h>

#include <vector>

#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/sim/time.hpp"

namespace arnet::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(75)), 75.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_EQ(from_milliseconds(1.5), 1'500'000);
}

TEST(Time, TransmissionDelay) {
  // 1500 bytes at 12 Mb/s = 1 ms.
  EXPECT_EQ(transmission_delay(1500, 12e6), milliseconds(1));
  // 1 byte at 8 bps = 1 s.
  EXPECT_EQ(transmission_delay(1, 8.0), seconds(1));
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(milliseconds(30), [&] { order.push_back(3); });
  sim.at(milliseconds(10), [&] { order.push_back(1); });
  sim.at(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(30));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(milliseconds(5), [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  Time fired = -1;
  sim.at(milliseconds(10), [&] {
    sim.after(milliseconds(5), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, milliseconds(15));
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(milliseconds(10), [&] { ++fired; });
  sim.at(milliseconds(50), [&] { ++fired; });
  sim.run_until(milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(20));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto h = sim.at(milliseconds(10), [&] { ran = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  bool ran = false;
  auto h = sim.at(milliseconds(10), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  sim.cancel(h);  // must not crash or corrupt state
  sim.after(milliseconds(1), [] {});
  sim.run();
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.at(milliseconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.at(milliseconds(5), [] {}), std::invalid_argument);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.after(microseconds(1), chain);
  };
  sim.after(0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
}

TEST(Timer, ArmFiresOnce) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(milliseconds(10));
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmReplacesPending) {
  Simulator sim;
  Time fired_at = -1;
  Timer t(sim, [&] { fired_at = sim.now(); });
  t.arm(milliseconds(10));
  t.arm(milliseconds(30));
  sim.run();
  EXPECT_EQ(fired_at, milliseconds(30));
}

TEST(Timer, StopCancels) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(milliseconds(10));
  t.stop();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(42);
  Rng a = parent.fork("link-a");
  Rng b = parent.fork("link-b");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    auto n = rng.uniform_int(-5, 5);
    EXPECT_GE(n, -5);
    EXPECT_LE(n, 5);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double s = 0.0;
  for (int i = 0; i < 20000; ++i) s += rng.exponential(5.0);
  EXPECT_NEAR(s / 20000.0, 5.0, 0.25);
}

TEST(Rng, NormalAtLeastClamps) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.normal_at_least(0.0, 10.0, 0.5), 0.5);
}

TEST(Stats, SummaryMatchesClosedForm) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Stats, EmptySamplesAreZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  Summary sm;
  EXPECT_DOUBLE_EQ(sm.mean(), 0.0);
  EXPECT_DOUBLE_EQ(sm.stddev(), 0.0);
}

TEST(Stats, TimeSeriesWindowMean) {
  TimeSeries ts;
  ts.add(seconds(1), 10.0);
  ts.add(seconds(2), 20.0);
  ts.add(seconds(3), 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(seconds(1), seconds(3)), 15.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(seconds(0), seconds(10)), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(seconds(5), seconds(10)), 0.0);
}

TEST(Stats, RateMeterComputesMbps) {
  RateMeter m;
  m.on_bytes(125'000);  // 1 Mb
  m.sample(seconds(1));
  EXPECT_NEAR(m.series().points().back().second, 1.0, 1e-9);
  m.on_bytes(250'000);  // 2 Mb in next second
  m.sample(seconds(2));
  EXPECT_NEAR(m.series().points().back().second, 2.0, 1e-9);
  EXPECT_NEAR(m.average_mbps(seconds(2)), 1.5, 1e-9);
}

}  // namespace
}  // namespace arnet::sim
