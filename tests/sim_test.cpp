#include <gtest/gtest.h>

#include <vector>

#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/sim/time.hpp"

namespace arnet::sim {
namespace {

TEST(Time, Conversions) {
  EXPECT_EQ(milliseconds(1), 1'000'000);
  EXPECT_EQ(seconds(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(75)), 75.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_EQ(from_milliseconds(1.5), 1'500'000);
}

TEST(Time, TransmissionDelay) {
  // 1500 bytes at 12 Mb/s = 1 ms.
  EXPECT_EQ(transmission_delay(1500, 12e6), milliseconds(1));
  // 1 byte at 8 bps = 1 s.
  EXPECT_EQ(transmission_delay(1, 8.0), seconds(1));
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(milliseconds(30), [&] { order.push_back(3); });
  sim.at(milliseconds(10), [&] { order.push_back(1); });
  sim.at(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(30));
  EXPECT_EQ(sim.events_executed(), 3u);
}

TEST(Simulator, EqualTimesRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(milliseconds(5), [&, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  Time fired = -1;
  sim.at(milliseconds(10), [&] {
    sim.after(milliseconds(5), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, milliseconds(15));
}

TEST(Simulator, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(milliseconds(10), [&] { ++fired; });
  sim.at(milliseconds(50), [&] { ++fired; });
  sim.run_until(milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(20));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  auto h = sim.at(milliseconds(10), [&] { ran = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_executed(), 0u);
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  bool ran = false;
  auto h = sim.at(milliseconds(10), [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  sim.cancel(h);  // must not crash or corrupt state
  sim.after(milliseconds(1), [] {});
  sim.run();
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.at(milliseconds(10), [] {});
  sim.run();
  EXPECT_THROW(sim.at(milliseconds(5), [] {}), std::invalid_argument);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.after(microseconds(1), chain);
  };
  sim.after(0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
}

TEST(Timer, ArmFiresOnce) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(milliseconds(10));
  EXPECT_TRUE(t.armed());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, RearmReplacesPending) {
  Simulator sim;
  Time fired_at = -1;
  Timer t(sim, [&] { fired_at = sim.now(); });
  t.arm(milliseconds(10));
  t.arm(milliseconds(30));
  sim.run();
  EXPECT_EQ(fired_at, milliseconds(30));
}

TEST(Timer, StopCancels) {
  Simulator sim;
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm(milliseconds(10));
  t.stop();
  sim.run();
  EXPECT_EQ(fired, 0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(42);
  Rng a = parent.fork("link-a");
  Rng b = parent.fork("link-b");
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    auto n = rng.uniform_int(-5, 5);
    EXPECT_GE(n, -5);
    EXPECT_LE(n, 5);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double s = 0.0;
  for (int i = 0; i < 20000; ++i) s += rng.exponential(5.0);
  EXPECT_NEAR(s / 20000.0, 5.0, 0.25);
}

TEST(Rng, NormalAtLeastClamps) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.normal_at_least(0.0, 10.0, 0.5), 0.5);
}

TEST(Stats, SummaryMatchesClosedForm) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, SamplesPercentiles) {
  Samples s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

TEST(Stats, EmptySamplesAreZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  Summary sm;
  EXPECT_DOUBLE_EQ(sm.mean(), 0.0);
  EXPECT_DOUBLE_EQ(sm.stddev(), 0.0);
}

TEST(Stats, TimeSeriesWindowMean) {
  TimeSeries ts;
  ts.add(seconds(1), 10.0);
  ts.add(seconds(2), 20.0);
  ts.add(seconds(3), 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(seconds(1), seconds(3)), 15.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(seconds(0), seconds(10)), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean_in(seconds(5), seconds(10)), 0.0);
}

TEST(Stats, RateMeterComputesMbps) {
  RateMeter m;
  m.on_bytes(125'000);  // 1 Mb
  m.sample(seconds(1));
  EXPECT_NEAR(m.series().points().back().second, 1.0, 1e-9);
  m.on_bytes(250'000);  // 2 Mb in next second
  m.sample(seconds(2));
  EXPECT_NEAR(m.series().points().back().second, 2.0, 1e-9);
  EXPECT_NEAR(m.average_mbps(seconds(2)), 1.5, 1e-9);
}

// ---- Slab engine stress: slot recycling and generation safety. -----------

TEST(SimulatorSlab, ChurnRecyclesSlotsWithoutGrowth) {
  // Schedule/cancel/fire far more events than the slab has slots; freed
  // slots must recycle, so the slab stays near the peak live count instead
  // of growing with total event count.
  Simulator sim;
  Rng rng(42);
  // Deliberately keep handles to already-fired events around: cancelling a
  // stale handle must be a no-op, and the accounting below only counts a
  // cancel when the event had not fired yet.
  std::vector<std::pair<EventHandle, std::size_t>> handles;
  std::vector<bool> fired_flags;
  std::uint64_t fired = 0, scheduled = 0, cancelled = 0;
  constexpr int kRounds = 20'000;
  for (int i = 0; i < kRounds; ++i) {
    double coin = rng.uniform(0.0, 1.0);
    if (coin < 0.5 || handles.empty()) {
      std::size_t k = fired_flags.size();
      fired_flags.push_back(false);
      handles.emplace_back(sim.after(1 + static_cast<Time>(rng.uniform(0, 1000)),
                                     [&fired, &fired_flags, k] {
                                       ++fired;
                                       fired_flags[k] = true;
                                     }),
                           k);
      ++scheduled;
    } else if (coin < 0.75) {
      auto idx = static_cast<std::size_t>(rng.uniform(0, static_cast<double>(handles.size())));
      std::swap(handles[idx], handles.back());
      auto [h, k] = handles.back();
      if (!fired_flags[k]) ++cancelled;  // else: stale handle, cancel is a no-op
      sim.cancel(h);
      handles.pop_back();
    } else {
      sim.run_for(static_cast<Time>(rng.uniform(0, 200)));
    }
  }
  sim.run();
  EXPECT_EQ(fired, scheduled - cancelled);
  EXPECT_EQ(sim.events_executed(), fired);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancel_backlog(), 0u);
  // Peak concurrency is bounded by the number of rounds between drains; the
  // slab must be far below the 20k total events scheduled.
  EXPECT_LT(SimulatorTestPeer::slab_size(sim), 4096u);
}

TEST(SimulatorSlab, ChurnPreservesTimeThenFifoOrder) {
  // Recycled slots must not disturb (time, seq) ordering: interleave fresh
  // and recycled slots at equal and distinct times and replay the order.
  Simulator sim;
  std::vector<int> order;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      Time t = sim.now() + 10 + (i % 2);  // two event times, 4 events each
      sim.at(t, [&order, round, i] { order.push_back(round * 8 + i); });
    }
    sim.run_for(20);
  }
  sim.run();
  ASSERT_EQ(order.size(), 400u);
  // Within each round: the four even-index (earlier-time) events in FIFO
  // order, then the four odd-index ones.
  for (int round = 0; round < 50; ++round) {
    const int base = round * 8;
    const int expect[] = {0, 2, 4, 6, 1, 3, 5, 7};
    for (int k = 0; k < 8; ++k) {
      EXPECT_EQ(order[static_cast<std::size_t>(base + k)], base + expect[k]);
    }
  }
}

TEST(SimulatorSlab, StaleHandleAfterReuseIsRejected) {
  Simulator sim;
  bool first_ran = false, second_ran = false;
  auto h1 = sim.at(10, [&] { first_ran = true; });
  sim.run();
  EXPECT_TRUE(first_ran);
  // The fired event's slot is free; the next schedule reuses it with a
  // bumped generation.
  auto h2 = sim.at(20, [&] { second_ran = true; });
  EXPECT_EQ(SimulatorTestPeer::slot_of(h1), SimulatorTestPeer::slot_of(h2));
  EXPECT_NE(SimulatorTestPeer::generation_of(h1), SimulatorTestPeer::generation_of(h2));
  sim.cancel(h1);  // stale: must NOT cancel the new occupant
  sim.run();
  EXPECT_TRUE(second_ran);
}

TEST(SimulatorSlab, GenerationWrapSkipsZeroAndStaysValid) {
  Simulator sim;
  // Recycle one slot so the free list is non-empty, then force its
  // generation to the wrap point.
  auto h0 = sim.at(1, [] {});
  sim.cancel(h0);
  sim.run();
  const std::uint32_t slot = SimulatorTestPeer::slot_of(h0);
  SimulatorTestPeer::set_slot_generation(sim, slot, 0xFFFFFFFFu);

  bool a_ran = false, b_ran = false;
  auto ha = sim.at(10, [&] { a_ran = true; });
  ASSERT_EQ(SimulatorTestPeer::slot_of(ha), slot);
  EXPECT_EQ(SimulatorTestPeer::generation_of(ha), 0xFFFFFFFFu);
  EXPECT_TRUE(ha.valid());
  sim.run();
  EXPECT_TRUE(a_ran);

  // The release wrapped the generation; it must skip 0 (a packed id of 0 is
  // the null handle) and the max-generation handle must now be stale.
  auto hb = sim.at(20, [&] { b_ran = true; });
  ASSERT_EQ(SimulatorTestPeer::slot_of(hb), slot);
  EXPECT_EQ(SimulatorTestPeer::generation_of(hb), 1u);
  EXPECT_TRUE(hb.valid());
  sim.cancel(ha);  // wrapped-generation stale handle: no-op
  sim.run();
  EXPECT_TRUE(b_ran);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancel_backlog(), 0u);
}

TEST(SimulatorSlab, CancelBacklogDiscardedLazily) {
  Simulator sim;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 100; ++i) hs.push_back(sim.at(10 + i, [] {}));
  for (int i = 0; i < 100; i += 2) sim.cancel(hs[static_cast<std::size_t>(i)]);
  EXPECT_EQ(sim.pending_events(), 50u);
  EXPECT_EQ(sim.cancel_backlog(), 50u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancel_backlog(), 0u);
  EXPECT_EQ(sim.events_executed(), 50u);
}

}  // namespace
}  // namespace arnet::sim
