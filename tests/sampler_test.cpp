// Tail-based trace sampler tests: post-completion verdicts and their
// priority order, the span-budget eviction policy, per-frame truncation,
// the seeded healthy-frame reservoir, the traceless note log, the stats
// invariant, overload-cell retention acceptance, export determinism across
// worker counts, and sampler fingerprint neutrality.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "arnet/check/determinism.hpp"
#include "arnet/fleet/scenario.hpp"
#include "arnet/mar/offload.hpp"
#include "arnet/net/network.hpp"
#include "arnet/runner/experiment.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/slo/slo.hpp"
#include "arnet/trace/sampler.hpp"
#include "arnet/trace/trace.hpp"

namespace arnet {
namespace {

using sim::milliseconds;
using sim::seconds;

// A tracer+sampler pair wired the way every caller wires them.
struct Rig {
  explicit Rig(trace::SamplerConfig cfg) : sampler(cfg) {
    ent = tracer.register_entity("dev");
    tracer.set_sink(&sampler);
  }
  trace::Tracer tracer;
  trace::TailSampler sampler;
  trace::EntityId ent = 0;
};

// Drive one traced frame through the rig: capture at t0, `extra` middle
// spans, optional drop span, completion (done or miss) at t1.
std::uint32_t emit_frame(Rig& r, sim::Time t0, sim::Time t1, bool miss,
                         bool drop = false, int extra = 0) {
  const std::uint32_t tid = r.tracer.new_trace().trace_id;
  trace::TraceEvent cap;
  cap.time = t0;
  cap.uid = tid;
  cap.trace_id = tid;
  cap.kind = trace::EventKind::kFrameCapture;
  r.tracer.record(r.ent, cap);
  for (int i = 0; i < extra; ++i) {
    trace::TraceEvent s;
    s.time = t0 + i + 1;
    s.trace_id = tid;
    s.kind = trace::EventKind::kEnqueue;
    r.tracer.record(r.ent, s);
  }
  if (drop) {
    trace::TraceEvent d;
    d.time = t1 - 1;
    d.trace_id = tid;
    d.kind = trace::EventKind::kDrop;
    d.reason = "queue-full";
    r.tracer.record(r.ent, d);
  }
  trace::TraceEvent done;
  done.time = t1;
  done.trace_id = tid;
  done.kind = miss ? trace::EventKind::kFrameMiss : trace::EventKind::kFrameDone;
  r.tracer.record(r.ent, done);
  return tid;
}

// ---------------------------------------------------------------- verdicts

TEST(TailSampler, VerdictPriorityMissOverDropOverOutlier) {
  trace::SamplerConfig cfg;
  cfg.reservoir_capacity = 0;  // isolate the rule-based verdicts
  Rig r(cfg);
  r.sampler.set_outlier_threshold_ms(50.0);

  // A frame that both dropped data *and* missed its deadline is a miss.
  const auto both = emit_frame(r, 0, milliseconds(100), true, true);
  // Dropped but on time: drop. Slow but clean: outlier. Fast and clean: gone.
  const auto dropped = emit_frame(r, 0, milliseconds(10), false, true);
  const auto slow = emit_frame(r, 0, milliseconds(60), false);
  const auto healthy = emit_frame(r, 0, milliseconds(10), false);

  ASSERT_TRUE(r.sampler.retained(both));
  ASSERT_TRUE(r.sampler.retained(dropped));
  ASSERT_TRUE(r.sampler.retained(slow));
  EXPECT_FALSE(r.sampler.retained(healthy));
  EXPECT_STREQ(r.sampler.retained_frames().at(both).verdict, "miss");
  EXPECT_STREQ(r.sampler.retained_frames().at(dropped).verdict, "drop");
  EXPECT_STREQ(r.sampler.retained_frames().at(slow).verdict, "outlier");
  EXPECT_EQ(r.sampler.stats().frames_seen, 4u);
}

TEST(TailSampler, OutlierThresholdZeroDisablesTheRule) {
  trace::SamplerConfig cfg;
  cfg.reservoir_capacity = 0;
  Rig r(cfg);  // outlier_threshold_ms defaults to 0
  const auto slow = emit_frame(r, 0, seconds(5), false);
  EXPECT_FALSE(r.sampler.retained(slow));
}

TEST(TailSampler, RetainsFullSpanSetAndLatency) {
  Rig r(trace::SamplerConfig{});
  const auto tid = emit_frame(r, milliseconds(10), milliseconds(110), true,
                              /*drop=*/false, /*extra=*/5);
  const auto& f = r.sampler.retained_frames().at(tid);
  EXPECT_EQ(f.spans.size(), 7u);  // capture + 5 + completion
  EXPECT_EQ(f.first_time, milliseconds(10));
  EXPECT_EQ(f.last_time, milliseconds(110));
  EXPECT_EQ(f.latency_ns, milliseconds(100));
  EXPECT_EQ(f.truncated, 0u);
  EXPECT_EQ(f.spans.front().kind, trace::EventKind::kFrameCapture);
  EXPECT_EQ(f.spans.back().kind, trace::EventKind::kFrameMiss);
}

TEST(TailSampler, PerFrameSpanCapTruncatesAndCounts) {
  trace::SamplerConfig cfg;
  cfg.max_spans_per_frame = 4;
  Rig r(cfg);
  const auto tid = emit_frame(r, 0, milliseconds(100), true, false, 10);
  const auto& f = r.sampler.retained_frames().at(tid);
  EXPECT_EQ(f.spans.size(), 4u);
  EXPECT_EQ(f.truncated, 8u);  // 12 emitted, 4 kept
  EXPECT_EQ(r.sampler.stats().truncated_spans, 8u);
}

// ------------------------------------------------------------------ budget

TEST(TailSampler, BudgetEvictsLowerPriorityOldestFirst) {
  trace::SamplerConfig cfg;
  cfg.span_budget = 8;  // four 2-span frames
  cfg.reservoir_capacity = 16;
  Rig r(cfg);
  // Fill the budget with healthy reservoir frames (2 spans each).
  std::vector<std::uint32_t> healthy;
  for (int i = 0; i < 4; ++i) healthy.push_back(emit_frame(r, i, i + 10, false));
  EXPECT_EQ(r.sampler.spans_used(), 8u);
  // A miss must displace the *oldest* reservoir frame.
  const auto miss1 = emit_frame(r, 100, milliseconds(100), true);
  EXPECT_TRUE(r.sampler.retained(miss1));
  EXPECT_FALSE(r.sampler.retained(healthy[0]));
  EXPECT_TRUE(r.sampler.retained(healthy[1]));
  // Three more misses clear out the rest of the reservoir.
  for (int i = 0; i < 3; ++i) emit_frame(r, 200 + i, milliseconds(200), true);
  EXPECT_EQ(r.sampler.retained_count(), 4u);
  for (const auto& [tid, f] : r.sampler.retained_frames()) {
    EXPECT_STREQ(f.verdict, "miss") << tid;
  }
  // Budget full of misses: another miss cannot evict its own priority.
  const auto miss5 = emit_frame(r, 300, milliseconds(300), true);
  EXPECT_FALSE(r.sampler.retained(miss5));
  EXPECT_GT(r.sampler.stats().budget_rejected, 0u);
  EXPECT_LE(r.sampler.spans_used(), cfg.span_budget);
}

TEST(TailSampler, OversizedFrameIsRejectedNeverPartiallyKept) {
  trace::SamplerConfig cfg;
  cfg.span_budget = 4;
  cfg.max_spans_per_frame = 64;
  Rig r(cfg);
  const auto big = emit_frame(r, 0, milliseconds(100), true, false, 10);
  EXPECT_FALSE(r.sampler.retained(big));
  EXPECT_EQ(r.sampler.stats().budget_rejected, 1u);
  EXPECT_EQ(r.sampler.spans_used(), 0u);
}

TEST(TailSampler, StatsInvariantRetainedEqualsAdmitsMinusEvictions) {
  trace::SamplerConfig cfg;
  cfg.span_budget = 64;
  cfg.reservoir_capacity = 4;
  Rig r(cfg);
  for (int i = 0; i < 200; ++i) {
    const bool miss = i % 17 == 0;
    const bool drop = i % 23 == 0;
    emit_frame(r, i * 100, i * 100 + 50, miss, drop, i % 3);
  }
  const auto& st = r.sampler.stats();
  EXPECT_EQ(st.frames_seen, 200u);
  EXPECT_EQ(r.sampler.retained_count(),
            st.retained_miss + st.retained_drop + st.retained_outlier +
                st.retained_reservoir - st.evicted);
  EXPECT_LE(r.sampler.spans_used(), cfg.span_budget);
}

// --------------------------------------------------------------- reservoir

TEST(TailSampler, ReservoirIsSeededAndDeterministic) {
  auto run = [](std::uint64_t seed) {
    trace::SamplerConfig cfg;
    cfg.seed = seed;
    cfg.reservoir_capacity = 8;
    Rig r(cfg);
    for (int i = 0; i < 500; ++i) emit_frame(r, i * 10, i * 10 + 5, false);
    std::vector<std::uint32_t> kept;
    for (const auto& [tid, f] : r.sampler.retained_frames()) kept.push_back(tid);
    return kept;
  };
  const auto a = run(7);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a, run(7));       // same seed, same exemplars
  EXPECT_NE(a, run(8));       // the sample actually depends on the seed
}

TEST(TailSampler, NoteLogIsBounded) {
  trace::SamplerConfig cfg;
  cfg.note_capacity = 3;
  Rig r(cfg);
  for (int i = 0; i < 10; ++i) r.sampler.note(i, "admission-reject", i);
  EXPECT_EQ(r.sampler.notes().size(), 3u);
  EXPECT_EQ(r.sampler.stats().notes_dropped, 7u);
  EXPECT_EQ(r.sampler.notes()[0].uid, 0u);
  EXPECT_STREQ(r.sampler.notes()[0].reason, "admission-reject");
}

// -------------------------------------------------- overload-cell retention

// The acceptance bar from the issue: in an overloaded fleet cell, the tail
// sampler keeps every deadline-missed frame's full span set within budget.
TEST(TailSamplerAcceptance, OverloadCellKeepsEveryMissInFull) {
  fleet::CellConfig cell;
  cell.name = "overload";
  cell.offered_users = 140.0;  // far past the 2-server knee
  cell.duration = seconds(8);
  cell.mean_lifetime_s = 4.0;
  trace::Tracer tracer;
  trace::SamplerConfig scfg;
  scfg.seed = 42;
  // Budget sized so every miss in this cell fits — the assertion below
  // (budget_rejected == 0) is the claim that it did.
  scfg.span_budget = 1u << 18;
  trace::TailSampler sampler(scfg);
  slo::SloConfig lcfg;
  lcfg.entity = cell.name;
  slo::SloTracker slo(lcfg);
  fleet::CellTelemetry t;
  t.tracer = &tracer;
  t.sampler = &sampler;
  t.slo = &slo;
  const fleet::CellResult res = fleet::run_capacity_cell(cell, 5, t);

  ASSERT_GT(res.misses, 10) << "cell not overloaded; test is vacuous";
  const auto& st = sampler.stats();
  EXPECT_EQ(st.budget_rejected, 0u) << "budget too small for this cell";
  EXPECT_EQ(st.retained_miss, static_cast<std::uint64_t>(res.misses));
  EXPECT_LE(sampler.spans_used(), scfg.span_budget);

  std::uint64_t misses_retained = 0;
  for (const auto& [tid, f] : sampler.retained_frames()) {
    if (std::string(f.verdict) != "miss") continue;
    ++misses_retained;
    EXPECT_EQ(f.truncated, 0u) << tid;
    ASSERT_FALSE(f.spans.empty()) << tid;
    EXPECT_EQ(f.spans.front().kind, trace::EventKind::kFrameCapture) << tid;
    EXPECT_EQ(f.spans.back().kind, trace::EventKind::kFrameMiss) << tid;
  }
  EXPECT_EQ(misses_retained, static_cast<std::uint64_t>(res.misses));
  // The burn accounting saw the same frames the fleet completed.
  EXPECT_EQ(slo.good() + slo.miss(), res.results);
}

// ------------------------------------------------------------- determinism

TEST(TailSamplerDeterminism, SampledSetByteIdenticalSerialVsParallel) {
  std::vector<fleet::CellConfig> cells;
  for (double users : {40.0, 90.0, 140.0}) {
    fleet::CellConfig c;
    c.name = "u" + std::to_string(static_cast<int>(users));
    c.offered_users = users;
    c.duration = seconds(5);
    c.mean_lifetime_s = 3.0;
    c.admit = true;
    cells.push_back(c);
  }
  auto sweep = [&cells](int jobs) {
    runner::ExperimentRunner::Config pc;
    pc.jobs = jobs;
    pc.root_seed = 9;
    runner::ExperimentRunner pool(pc);
    std::vector<std::unique_ptr<trace::Tracer>> tracers(cells.size());
    std::vector<std::unique_ptr<trace::TailSampler>> samplers(cells.size());
    std::vector<std::unique_ptr<slo::SloTracker>> slos(cells.size());
    pool.for_each(cells.size(), [&](runner::RunContext& ctx) {
      const std::size_t i = ctx.run_index;
      tracers[i] = std::make_unique<trace::Tracer>();
      trace::SamplerConfig sc;
      sc.seed = runner::derive_seed(ctx.seed, 0x5A3917);
      samplers[i] = std::make_unique<trace::TailSampler>(sc);
      slo::SloConfig lc;
      lc.entity = cells[i].name;
      slos[i] = std::make_unique<slo::SloTracker>(lc);
      fleet::CellTelemetry t;
      t.tracer = tracers[i].get();
      t.sampler = samplers[i].get();
      t.slo = slos[i].get();
      fleet::run_capacity_cell(cells[i], ctx.seed, t);
    });
    std::ostringstream samples, slo_log;
    trace::write_samples_header(samples);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      trace::append_samples_run(*samplers[i], *tracers[i], cells[i].name, samples);
    }
    trace::write_samples_end(samples, cells.size());
    std::vector<const slo::SloTracker*> trackers;
    for (const auto& s : slos) trackers.push_back(s.get());
    slo::write_slo_jsonl(trackers, slo_log);
    return std::pair<std::string, std::string>{samples.str(), slo_log.str()};
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(8);
  EXPECT_GT(serial.first.size(), 500u);
  EXPECT_EQ(serial.first, parallel.first);    // samples JSONL
  EXPECT_EQ(serial.second, parallel.second);  // SLO JSONL
}

// The fingerprint contract, extended to the sampler and SLO tracker: a run
// with the full telemetry stack attached is bit-identical to a bare run.
TEST(TailSamplerDeterminism, SamplerAndSloAreFingerprintNeutral) {
  auto run_once = [](bool telemetry) {
    sim::Simulator sim;
    net::Network net(sim, 11);
    check::TraceRecorder rec;
    rec.attach(net);
    trace::Tracer tracer;
    trace::TailSampler sampler(trace::SamplerConfig{});
    slo::SloTracker slo{slo::SloConfig{}};
    auto user = net.add_node("user");
    auto edge = net.add_node("edge");
    net.connect(user, edge, 8e6, milliseconds(10), 150);
    net.compute_routes();
    mar::OffloadConfig cfg;
    cfg.strategy = mar::OffloadStrategy::kCloudRidAR;
    if (telemetry) {
      net.attach_trace(tracer);
      tracer.set_sink(&sampler);
      cfg.tracer = &tracer;
      cfg.slo = &slo;
    }
    mar::OffloadSession session(net, user, edge, cfg);
    session.start();
    sim.run_until(seconds(2));
    session.stop();
    rec.detach_all();
    if (telemetry) {
      // The stack actually observed the run (the neutrality claim is not
      // vacuous): frames flowed through sampler and tracker alike.
      EXPECT_GT(sampler.stats().frames_seen, 0u);
      EXPECT_GT(slo.good() + slo.miss(), 0);
    }
    return std::pair<std::uint64_t, std::uint64_t>{rec.fingerprint(), rec.records()};
  };
  const auto off = run_once(false);
  const auto on = run_once(true);
  EXPECT_EQ(off.first, on.first);
  EXPECT_EQ(off.second, on.second);
}

// ------------------------------------------------------------------ export

TEST(TailSamplerExport, JsonlCarriesRunFrameSpanNoteLines) {
  Rig r(trace::SamplerConfig{});
  emit_frame(r, milliseconds(1), milliseconds(90), true, false, 2);
  r.sampler.note(77, "admission-downgrade", milliseconds(5));
  std::ostringstream os;
  trace::write_samples_header(os);
  trace::append_samples_run(r.sampler, r.tracer, "cell-a", os);
  trace::write_samples_end(os, 1);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"schema\":\"arnet-sample-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"run\",\"scope\":\"cell-a\""), std::string::npos);
  EXPECT_NE(doc.find("\"verdict\":\"miss\""), std::string::npos);
  EXPECT_NE(doc.find("\"entity\":\"dev\""), std::string::npos);
  EXPECT_NE(doc.find("\"reason\":\"admission-downgrade\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\":\"end\",\"runs\":1"), std::string::npos);
}

}  // namespace
}  // namespace arnet
