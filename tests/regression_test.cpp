// Regression tests pinning the three bugfixes that rode along with the
// arnet::obs PR: the simulator's cancel-tombstone leak, CoDel's hardcoded
// MTU / cold-start drop memory, and TCP's sub-MSS tail stall.
#include <gtest/gtest.h>

#include <algorithm>

#include "arnet/mar/offload.hpp"
#include "arnet/net/network.hpp"
#include "arnet/net/queue.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/artp.hpp"
#include "arnet/transport/tcp.hpp"

namespace arnet {
namespace {

using sim::milliseconds;
using sim::seconds;

// --------------------------------------------------- Simulator::cancel leak

// Cancelling a handle that already fired used to leave a tombstone in the
// cancelled set forever (the id can never match a queued event again). Any
// long-running scenario that races timers against completions — every RTO
// path — grew that set without bound.
TEST(CancelRegression, CancelAfterFireLeavesNoTombstone) {
  sim::Simulator sim;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 100; ++i)
    handles.push_back(sim.after(milliseconds(i), [] {}));
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
  // The RTO pattern: completion handler cancels its (already fired) timer.
  for (int round = 0; round < 3; ++round)
    for (auto h : handles) sim.cancel(h);
  EXPECT_EQ(sim.cancel_backlog(), 0u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(CancelRegression, CancelOfPendingEventStillWorks) {
  sim::Simulator sim;
  int fired = 0;
  auto keep = sim.after(milliseconds(1), [&] { ++fired; });
  auto drop = sim.after(milliseconds(2), [&] { ++fired; });
  sim.cancel(drop);
  sim.cancel(drop);  // double-cancel must not tombstone twice
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.cancel_backlog(), 0u);
  (void)keep;
}

TEST(CancelRegression, InvalidAndNeverIssuedHandlesAreNoOps) {
  sim::Simulator sim;
  sim.cancel(sim::EventHandle{});        // id 0: invalid
  sim.cancel(sim::EventHandle{999999});  // never issued
  EXPECT_EQ(sim.cancel_backlog(), 0u);
  sim.after(milliseconds(1), [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.events_executed(), 1u);
}

// ------------------------------------------------------- CoDel MTU + memory

net::Packet small_packet(std::int32_t bytes) {
  net::Packet p;
  p.size_bytes = bytes;
  return p;
}

// A standing queue of small frames (features, sensor batches) stays below
// two *Ethernet* MTUs of backlog even when its sojourn time is enormous.
// With the hardcoded 1514-byte constant CoDel exempted such queues from AQM
// entirely; the configurable mtu_bytes restores the RFC 8289 exit condition
// for the link's real MTU. Drive the same schedule against both configs.
std::int64_t drive_codel(net::CoDelQueue& q) {
  // 25 x 100 B standing at t=0: 2500 B is below 2*1514 but above 2*200.
  for (int i = 0; i < 25; ++i) (void)q.enqueue(small_packet(100), 0);
  // Dequeue every 50 ms from t=250 ms, topping the queue back up so the
  // backlog (and its huge sojourn) stands throughout.
  for (sim::Time t = milliseconds(250); t <= milliseconds(500); t += milliseconds(50)) {
    (void)q.dequeue(t);
    while (q.bytes() < 2500) (void)q.enqueue(small_packet(100), t);
  }
  return q.drops();
}

TEST(CoDelRegression, SmallFrameStandingQueueIsControlled) {
  net::CoDelQueue::Config cfg;
  cfg.mtu_bytes = 200;  // link MTU for a feature/sensor-frame path
  net::CoDelQueue with_mtu(cfg);
  EXPECT_GT(drive_codel(with_mtu), 0)
      << "standing queue of small frames must not be exempt from AQM";

  net::CoDelQueue default_mtu;  // 1514: 2.5 KB backlog is sub-2-MTU, exempt
  EXPECT_EQ(drive_codel(default_mtu), 0);
}

// At cold start drop_next_ == 0; the raw "now - drop_next_ < interval" test
// must not read that as "we were dropping recently" and seed the first drop
// spell with stale control-law memory. Correct seeding is count_ = 1, which
// places the second drop a full interval after the first.
TEST(CoDelRegression, ColdStartSeedsControlLawFromOne) {
  net::CoDelQueue::Config cfg;
  cfg.mtu_bytes = 200;
  net::CoDelQueue q(cfg);
  for (int i = 0; i < 25; ++i) ASSERT_TRUE(q.enqueue(small_packet(100), 0));
  // t=250: first sojourn-above observation (arms first_above = 350 ms).
  // t=350..400: above, but not yet a full interval past first_above.
  // t=450: enters dropping -> first drop, drop_next_ = 450 + interval/sqrt(1).
  for (sim::Time t : {milliseconds(250), milliseconds(300), milliseconds(350),
                      milliseconds(400)}) {
    (void)q.dequeue(t);
    while (q.bytes() < 2500) (void)q.enqueue(small_packet(100), t);
  }
  (void)q.dequeue(milliseconds(450));
  EXPECT_EQ(q.drops(), 1);
  while (q.bytes() < 2500) (void)q.enqueue(small_packet(100), milliseconds(450));
  // With count_ seeded to 1 the next drop is due at 550 ms, not earlier. A
  // stale-memory seed (count_ > 1) would shrink the gap below 100 ms.
  (void)q.dequeue(milliseconds(500));
  EXPECT_EQ(q.drops(), 1) << "second drop fired early: cold-start seeded count_ > 1";
  while (q.bytes() < 2500) (void)q.enqueue(small_packet(100), milliseconds(500));
  (void)q.dequeue(milliseconds(560));
  EXPECT_EQ(q.drops(), 2);
}

// ------------------------------------------------------- TCP sub-MSS tail

// try_send used to require a full MSS of window headroom before emitting any
// segment, so an app-limited sub-MSS tail stalled until flight drained below
// cwnd - MSS — one spurious extra RTT on every short transfer. The tail must
// instead fill the remaining window immediately.
TEST(TcpRegression, SubMssTailDoesNotStallAnExtraRtt) {
  sim::Simulator sim;
  net::Network net(sim, 1);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net.connect(c, s, 10e6, milliseconds(10), 100);
  transport::TcpSink sink(net, s, 80);
  transport::TcpSource::Config cfg;
  cfg.initial_window_segments = 1.5;  // room for one MSS + the 100 B tail
  transport::TcpSource src(net, c, 1000, s, 80, 1, cfg);
  src.send(1460 + 100);
  // Both segments fit the initial window, so the whole transfer completes in
  // ~one RTT (20 ms propagation + serialization). The pre-fix sender held
  // the 100 B tail until the first ACK and needed a second RTT (~45 ms).
  sim.run_until(milliseconds(30));
  EXPECT_TRUE(src.complete());
  EXPECT_EQ(src.acked_bytes(), 1460 + 100);
}

// ----------------------------------------------------- port-block recycling

// The per-Network port allocator used to be a pure bump allocator: every
// OffloadSession claimed a 4-port block that was never returned, so a
// multi-user scenario churning sessions marched next_port_ toward the
// uint16 ceiling and wrapped into in-use ports after ~15k sessions. Blocks
// must be recycled on session teardown, LIFO, so churn neither exhausts the
// space nor shifts the ports (and thus the packet fingerprints) of the
// sessions that come after.
TEST(PortChurnRegression, TenThousandSessionsRecycleOneBlock) {
  sim::Simulator sim;
  net::Network net(sim, 1);
  const net::Port first = net.allocate_port_block(4);
  net.release_port_block(first, 4);
  for (int i = 0; i < 10'000; ++i) {
    const net::Port base = net.allocate_port_block(4);
    ASSERT_EQ(base, first) << "allocator stopped recycling at churn " << i;
    net.release_port_block(base, 4);
  }
  // Distinct block sizes recycle independently (exact-size match only).
  const net::Port pair_block = net.allocate_port_block(2);
  EXPECT_NE(pair_block, first);
  net.release_port_block(pair_block, 2);
  EXPECT_EQ(net.allocate_port_block(4), first);
}

TEST(PortChurnRegression, SessionChurnKeepsFingerprintsStable) {
  // End-to-end shape of the leak: sessions constructed and destroyed through
  // mar::OffloadSession must hand their 4-port blocks back, so heavy churn
  // neither marches the allocator (port drift changes every later session's
  // wire fingerprint) nor exhausts the uint16 port space.
  sim::Simulator sim;
  net::Network net(sim, 9);
  auto client = net.add_node("client");
  auto server = net.add_node("edge");
  net.connect(client, server, 30e6, milliseconds(8), 500);

  const net::Port probe = net.allocate_port_block(4);
  net.release_port_block(probe, 4);

  // 10k construct/destroy cycles; a bump-only allocator would march
  // next_port_ by 40k ports here (and wrap into bound ports at ~15k
  // sessions), leaving every post-churn session on shifted ports.
  for (int i = 0; i < 10'000; ++i) {
    mar::OffloadSession session(net, client, server, mar::OffloadConfig{});
  }

  const net::Port after = net.allocate_port_block(4);
  EXPECT_EQ(after, probe) << "OffloadSession teardown is not releasing its ports";
  net.release_port_block(after, 4);

  // The network still serves a real session normally after the churn.
  mar::OffloadConfig cfg;
  cfg.strategy = mar::OffloadStrategy::kCloudRidAR;
  mar::OffloadSession session(net, client, server, cfg);
  session.start();
  sim.run_until(sim.now() + seconds(2));
  session.stop();
  EXPECT_GT(session.stats().results, 30);
  EXPECT_LT(session.stats().latency_ms.median(), 100.0);
}

// ------------------------------------------- ARTP all-time min-OWD latch

// The receiver's per-path min_owd used to be an all-time minimum. After any
// base-delay increase (handover, reroute), every later sample read as an
// 80 ms standing queue, so the delay-gradient controller multiplicatively
// collapsed to its 64 kb/s floor and stayed there forever. The windowed
// filter ages the stale minimum out, and the controller recovers.
TEST(ArtpMinOwdRegression, RecoversFromBaseDelayStep) {
  sim::Simulator sim;
  net::Network net(sim, 11);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  auto [up, down] = net.connect(c, s, 8e6, milliseconds(30), 300);

  transport::ArtpReceiver rx(net, s, 80);
  transport::ArtpSenderConfig cfg;
  transport::ArtpSender tx(net, c, 1000, s, 80, 1, cfg);
  // 30 Hz x 8 KB = ~1.9 Mb/s of never-dropped traffic keeps feedback flowing
  // even while the controller sits at its floor.
  for (int i = 0; i < 35 * 30; ++i) {
    sim.at(sim::from_seconds(i / 30.0), [&tx] {
      transport::ArtpMessageSpec m;
      m.bytes = 8000;
      m.tclass = net::TrafficClass::kFullBestEffort;
      m.priority = net::Priority::kMediumNoDrop;
      tx.send_message(m);
    });
  }

  sim.run_until(seconds(10));
  const double before = tx.allowed_rate_bps();
  EXPECT_GT(before, 1.5e6);

  // Permanent +80 ms base-delay step on both directions at t=10 s.
  up->set_delay(milliseconds(110));
  down->set_delay(milliseconds(110));
  sim.run_until(seconds(35));

  // Pre-fix: pinned at the 64 kb/s floor 25 s after the step. Post-fix the
  // 10 s window ages the stale minimum out and AIMD climbs back.
  EXPECT_GT(tx.allowed_rate_bps(), 1.0e6)
      << "delay-gradient controller still pinned at its floor after a base-RTT step";
}

// --------------------------------------------- CUBIC idle-epoch regression

// W_cubic(t) is a function of congestion-epoch time, not wall time
// (RFC 8312 §5.8). Pre-fix, an app-limited gap ran the cubic clock, so the
// first ACK after a long idle landed far up the curve and the window grew at
// the full per-ACK clamp — a sustained slow-start-like burst far past wmax.
TEST(CubicIdleRegression, EpochFreezesAcrossQuiescentGap) {
  sim::Simulator sim;
  net::Network net(sim, 12);
  auto c = net.add_node("c");
  auto s = net.add_node("s");
  net.connect(c, s, 10e6, milliseconds(20), 100);

  transport::TcpSink sink(net, s, 80);
  transport::TcpSource::Config cfg;
  cfg.flavor = transport::TcpFlavor::kCubic;
  transport::TcpSource src(net, c, 1000, s, 80, 1, cfg);

  // Phase 1: reach congestion avoidance, then go idle (~8 s of silence).
  src.send(2'000'000);
  sim.run_until(seconds(10));
  ASSERT_TRUE(src.complete());
  const double cwnd_before = src.cwnd_bytes();

  // Phase 2: resume and watch the window over the first 400 ms. With the
  // epoch frozen, growth continues from where it paused; with the clock
  // running, t ~ 9 s puts the cubic target hundreds of MSS above cwnd and
  // every ACK grows the window by a full MSS.
  double max_cwnd = 0.0;
  for (int i = 0; i < 40; ++i) {
    sim.at(seconds(10) + milliseconds(10) * (i + 1),
           [&] { max_cwnd = std::max(max_cwnd, src.cwnd_bytes()); });
  }
  sim.at(seconds(10), [&] { src.send(1'500'000); });
  sim.run_until(seconds(10) + milliseconds(400));

  EXPECT_LT(max_cwnd, cwnd_before + 30 * 1460)
      << "cubic clock ran across the idle gap: post-idle burst to " << max_cwnd
      << " bytes from " << cwnd_before;
}

}  // namespace
}  // namespace arnet
