// Coverage for smaller utilities and edge cases across modules.
#include <gtest/gtest.h>

#include <sstream>

#include "arnet/core/table.hpp"
#include "arnet/mar/device.hpp"
#include "arnet/mar/offload.hpp"
#include "arnet/net/link.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/transport/tcp.hpp"
#include "arnet/wireless/coverage.hpp"
#include "arnet/wireless/d2d.hpp"
#include "arnet/wireless/wifi.hpp"

namespace arnet {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(SimMisc, PendingEventsAndRunFor) {
  sim::Simulator sim;
  sim.at(milliseconds(10), [] {});
  auto h = sim.at(milliseconds(20), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(h);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_for(milliseconds(15));
  EXPECT_EQ(sim.now(), milliseconds(15));
  EXPECT_EQ(sim.events_executed(), 1u);
}

TEST(SimMisc, SamplesValuesAreSorted) {
  sim::Samples s;
  s.add(3.0);
  s.add(1.0);
  s.add(2.0);
  const auto& v = s.values();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(SimMisc, RateMeterZeroSpanIsSafe) {
  sim::RateMeter m;
  m.on_bytes(1000);
  m.sample(0);  // same timestamp as start
  EXPECT_DOUBLE_EQ(m.series().points().back().second, 0.0);
  EXPECT_DOUBLE_EQ(m.average_mbps(0), 0.0);
}

TEST(NetMisc, LinkInstrumentationCounts) {
  sim::Simulator sim;
  net::Link::Config cfg;
  cfg.rate_bps = 12e6;
  cfg.delay = milliseconds(1);
  cfg.name = "probe";
  net::Link link(sim, sim::Rng(1), std::move(cfg));
  int got = 0;
  link.set_sink([&](net::Packet&&) { ++got; });
  for (int i = 0; i < 5; ++i) {
    net::Packet p;
    p.size_bytes = 1500;
    link.send(std::move(p));
  }
  sim.run();
  EXPECT_EQ(link.name(), "probe");
  EXPECT_EQ(link.delivered_packets(), 5);
  EXPECT_EQ(link.delivered_bytes(), 5 * 1500);
  EXPECT_EQ(link.lost_packets(), 0);
  // 4 of 5 packets queued behind the first: mean queueing delay > 0.
  EXPECT_GT(link.queueing_delay_ms().mean(), 0.5);
}

TEST(NetMisc, LinkBetweenReturnsNullForMissing) {
  sim::Simulator sim;
  net::Network net(sim, 1);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  EXPECT_EQ(net.link_between(a, b), nullptr);
  net.connect(a, b, 1e6, 0);
  EXPECT_NE(net.link_between(a, b), nullptr);
  EXPECT_NE(net.link_between(b, a), nullptr);
}

TEST(CoreMisc, TableHandlesEmptyAndRaggedRows) {
  core::TablePrinter t({"a", "b", "c"});
  t.add_row({"only-one"});  // padded
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);

  core::TablePrinter empty({"x"});
  std::ostringstream os2;
  empty.print(os2);
  EXPECT_NE(os2.str().find("| x |"), std::string::npos);
}

TEST(MarMisc, OffloadStatsMissRateEdgeCases) {
  mar::OffloadStats st;
  EXPECT_DOUBLE_EQ(st.miss_rate(), 0.0);  // no results yet
  st.results = 10;
  st.deadline_misses = 3;
  EXPECT_DOUBLE_EQ(st.miss_rate(), 0.3);
}

TEST(MarMisc, StrategyNames) {
  EXPECT_STREQ(mar::to_string(mar::OffloadStrategy::kLocalOnly), "LocalOnly");
  EXPECT_STREQ(mar::to_string(mar::OffloadStrategy::kAdaptive), "Adaptive");
  EXPECT_STREQ(transport::to_string(transport::TcpFlavor::kCubic), "CUBIC");
}

TEST(WirelessMisc, WifiPhyRateChangeTakesEffect) {
  sim::Simulator sim;
  wireless::WifiCell cell(sim, sim::Rng(1), wireless::WifiCell::Config{});
  auto sta = cell.add_station(54e6);
  sim::Time fast = cell.frame_airtime(1500, 54e6);
  cell.set_phy_rate(sta, 6e6);
  // Airtime helper is rate-parameterized; the station's queue now drains at
  // the slow rate: verify by a send/measure.
  net::Packet p;
  p.size_bytes = 1500;
  int got = 0;
  cell.set_sink(wireless::WifiCell::kApId, [&](net::Packet&&, std::uint32_t) { ++got; });
  cell.send(sta, wireless::WifiCell::kApId, std::move(p));
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_GT(sim.now(), fast);  // slower than the 54 Mb/s airtime
}

TEST(WirelessMisc, CoverageCellularProfileIsMostlyUp) {
  sim::Simulator sim;
  net::Network net(sim, 1);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto [up, down] = net.connect(a, b, 10e6, milliseconds(5));
  wireless::CoverageProcess cov(sim, sim::Rng(3), *up, *down,
                                wireless::CoverageProcess::cellular());
  cov.start();
  sim.run_until(seconds(7200));
  EXPECT_GT(cov.usable_fraction(sim.now()), 0.95);
}

TEST(WirelessMisc, CoverageStopFreezesState) {
  sim::Simulator sim;
  net::Network net(sim, 1);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  auto [up, down] = net.connect(a, b, 10e6, milliseconds(5));
  wireless::CoverageProcess::Config cfg;
  cfg.mean_usable = seconds(1);
  cfg.mean_gap = seconds(1);
  wireless::CoverageProcess cov(sim, sim::Rng(3), *up, *down, cfg);
  cov.start();
  sim.run_until(seconds(10));
  cov.stop();
  bool state = up->is_up();
  sim.run_until(seconds(30));
  EXPECT_EQ(up->is_up(), state);  // no more toggles after stop
}

TEST(WirelessMisc, D2dConfigClampsOutOfRange) {
  auto cfg = wireless::d2d_link_config(wireless::D2dTechnology::kWifiDirect, 500.0);
  EXPECT_GE(cfg.rate_bps, 1e3);  // floor, not zero/negative
  EXPECT_GT(cfg.delay, 0);
}

TEST(TcpMisc, CompleteIsFalseForInfiniteTransfers) {
  sim::Simulator sim;
  net::Network net(sim, 1);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.connect(a, b, 10e6, milliseconds(5), 100);
  transport::TcpSink sink(net, b, 80);
  transport::TcpSource src(net, a, 1000, b, 80, 1);
  src.send_forever();
  sim.run_until(seconds(2));
  EXPECT_FALSE(src.complete());
  EXPECT_GT(src.acked_bytes(), 0);
}

TEST(DeviceMisc, AllProfilesHaveSaneFields) {
  for (const auto& d : mar::all_device_profiles()) {
    EXPECT_FALSE(d.name.empty());
    EXPECT_GT(d.compute_scale, 0.0);
    if (d.cls != mar::DeviceClass::kCloud) {
      EXPECT_GT(d.active_power_w, 0.0);
    }
  }
}

}  // namespace
}  // namespace arnet
