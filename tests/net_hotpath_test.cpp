// Equivalence tests for the link/network hot-path overhaul (packet arena +
// batched transmit events). The contract, pinned here with TraceRecorder
// fingerprints:
//
//   - TxPath::kArena reproduces the legacy path *event for event*: same
//     simulator event times, seqs, and packet life cycle — the sim-level
//     fingerprint (network + simulator attach) is byte-identical.
//   - TxPath::kArenaBatched reproduces the legacy *packet-level* behavior
//     (inject/deliver/drop times, uids, reasons — network attach) while
//     necessarily executing fewer simulator events. This holds through tail
//     drops, mid-flight rate/delay modulation, and link flaps.
//   - Batching self-disables (falling back to kArena, which is exact) for
//     AQM queues and loss models, so those configurations stay identical
//     even at the simulator level.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "arnet/check/determinism.hpp"
#include "arnet/net/network.hpp"
#include "arnet/net/packet_arena.hpp"
#include "arnet/net/queue.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/artp.hpp"
#include "arnet/transport/tcp.hpp"

namespace {

using namespace arnet;
using net::Link;

struct Fp {
  std::uint64_t fingerprint;
  std::uint64_t records;
};

/// Build-and-run harness: `scenario` receives the network, the configured
/// duplex pair, and the simulator; the recorder observes the network always
/// and the simulator only in `sim_level` mode.
using Scenario = std::function<void(sim::Simulator&, net::Network&, Link*, Link*)>;

Fp run_scenario(const Scenario& scenario, Link::Config base_ab, Link::Config base_ba,
                Link::TxPath path, bool sim_level) {
  sim::Simulator sim;
  net::Network net(sim, 7);
  check::TraceRecorder trace;
  trace.attach(net);
  if (sim_level) trace.attach(sim);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  base_ab.tx_path = path;
  base_ba.tx_path = path;
  auto [ab, ba] = net.connect(a, b, std::move(base_ab), std::move(base_ba));
  scenario(sim, net, ab, ba);
  return {trace.fingerprint(), trace.records()};
}

Link::Config plain_cfg(double rate_bps, sim::Time delay, std::size_t queue_packets) {
  Link::Config cfg;
  cfg.rate_bps = rate_bps;
  cfg.delay = delay;
  cfg.queue_packets = queue_packets;
  return cfg;
}

/// Assert the three paths agree: kArena at the simulator level, batched at
/// the packet level (and that the runs actually produced traffic).
void expect_equivalent(const char* label, const Scenario& scenario,
                       const std::function<Link::Config()>& make_ab,
                       const std::function<Link::Config()>& make_ba,
                       bool batched_sim_identical = false) {
  const Fp legacy_sim =
      run_scenario(scenario, make_ab(), make_ba(), Link::TxPath::kLegacy, true);
  const Fp arena_sim =
      run_scenario(scenario, make_ab(), make_ba(), Link::TxPath::kArena, true);
  EXPECT_EQ(legacy_sim.fingerprint, arena_sim.fingerprint) << label << " (arena, sim-level)";
  EXPECT_EQ(legacy_sim.records, arena_sim.records) << label << " (arena, sim-level)";
  EXPECT_GT(legacy_sim.records, 100u) << label << " produced too little traffic to mean much";

  const Fp legacy_pkt =
      run_scenario(scenario, make_ab(), make_ba(), Link::TxPath::kLegacy, false);
  const Fp batched_pkt =
      run_scenario(scenario, make_ab(), make_ba(), Link::TxPath::kArenaBatched, false);
  EXPECT_EQ(legacy_pkt.fingerprint, batched_pkt.fingerprint) << label << " (batched, packet-level)";
  EXPECT_EQ(legacy_pkt.records, batched_pkt.records) << label << " (batched, packet-level)";

  if (batched_sim_identical) {
    // Configurations where batching must fall back to the exact kArena path.
    const Fp batched_sim =
        run_scenario(scenario, make_ab(), make_ba(), Link::TxPath::kArenaBatched, true);
    EXPECT_EQ(legacy_sim.fingerprint, batched_sim.fingerprint) << label << " (batched, sim-level)";
  }
}

// ------------------------------------------------------------- scenarios

void tcp_bulk(sim::Simulator& sim, net::Network& net, Link*, Link*) {
  transport::TcpSink sink(net, 1, 80);
  transport::TcpSource src(net, 0, 1000, 1, 80, 1);
  src.send(400'000);
  sim.run_until(sim::seconds(20));
  (void)sink;
}

void artp_stream(sim::Simulator& sim, net::Network& net, Link*, Link*) {
  transport::ArtpReceiver rx(net, 1, 80);
  transport::ArtpSender tx(net, 0, 1000, 1, 80, 1, transport::ArtpSenderConfig{});
  for (int i = 0; i < 60; ++i) {
    sim.at(sim::from_seconds(i / 30.0), [&tx] {
      transport::ArtpMessageSpec m;
      m.bytes = 14'400;
      m.tclass = net::TrafficClass::kBestEffortLossRecovery;
      m.priority = net::Priority::kMediumNoDrop;
      tx.send_message(m);
    });
  }
  sim.run_until(sim::seconds(4));
  (void)rx;
}

void tcp_with_rate_modulation(sim::Simulator& sim, net::Network& net, Link* ab, Link* ba) {
  transport::TcpSink sink(net, 1, 80);
  transport::TcpSource src(net, 0, 1000, 1, 80, 1);
  src.send(400'000);
  // Kick the rate up and down mid-transfer, including while a transmit plan
  // is in flight, to force the batched path through its unwind logic.
  for (int i = 1; i <= 40; ++i) {
    sim.at(sim::milliseconds(37 * i), [ab, ba, i] {
      const double r = (i % 3 == 0) ? 4e6 : (i % 3 == 1) ? 10e6 : 7e6;
      ab->set_rate(r);
      ba->set_rate(r / 2);
    });
  }
  sim.run_until(sim::seconds(20));
  (void)sink;
}

void tcp_with_delay_modulation(sim::Simulator& sim, net::Network& net, Link* ab, Link* ba) {
  transport::TcpSink sink(net, 1, 80);
  transport::TcpSource src(net, 0, 1000, 1, 80, 1);
  src.send(300'000);
  for (int i = 1; i <= 30; ++i) {
    sim.at(sim::milliseconds(53 * i), [ab, ba, i] {
      // Both directions: grow and shrink, so the FIFO no-overtake guard and
      // the serializing-packet re-time both trigger.
      ab->set_delay(sim::milliseconds(i % 4 == 0 ? 2 : 12));
      ba->set_delay(sim::milliseconds(i % 2 == 0 ? 1 : 9));
    });
  }
  sim.run_until(sim::seconds(20));
  (void)sink;
}

void tcp_with_link_flaps(sim::Simulator& sim, net::Network& net, Link* ab, Link* ba) {
  transport::TcpSink sink(net, 1, 80);
  transport::TcpSource src(net, 0, 1000, 1, 80, 1);
  src.send(300'000);
  for (int i = 1; i <= 6; ++i) {
    sim.at(sim::milliseconds(400 * i), [ab] { ab->set_up(false); });
    sim.at(sim::milliseconds(400 * i + 130), [ab] { ab->set_up(true); });
    if (i % 2 == 0) {
      sim.at(sim::milliseconds(400 * i + 50), [ba] { ba->set_up(false); });
      sim.at(sim::milliseconds(400 * i + 90), [ba] { ba->set_up(true); });
    }
  }
  sim.run_until(sim::seconds(10));
  (void)sink;
}

// ------------------------------------------------------------------ tests

TEST(HotPathEquivalence, TcpBulkWithTailDrops) {
  // Queue of 10 on a slow uplink: steady tail drops and retransmissions.
  expect_equivalent(
      "tcp-bulk", tcp_bulk, [] { return plain_cfg(5e6, sim::milliseconds(10), 10); },
      [] { return plain_cfg(5e6, sim::milliseconds(10), 100); });
}

TEST(HotPathEquivalence, ArtpFeatureStream) {
  expect_equivalent(
      "artp", artp_stream, [] { return plain_cfg(20e6, sim::milliseconds(10), 300); },
      [] { return plain_cfg(20e6, sim::milliseconds(10), 300); });
}

TEST(HotPathEquivalence, RateModulationMidBatch) {
  expect_equivalent(
      "rate-mod", tcp_with_rate_modulation,
      [] { return plain_cfg(10e6, sim::milliseconds(8), 50); },
      [] { return plain_cfg(10e6, sim::milliseconds(8), 50); });
}

TEST(HotPathEquivalence, DelayModulationMidBatch) {
  expect_equivalent(
      "delay-mod", tcp_with_delay_modulation,
      [] { return plain_cfg(10e6, sim::milliseconds(8), 50); },
      [] { return plain_cfg(10e6, sim::milliseconds(8), 50); });
}

TEST(HotPathEquivalence, LinkFlapsDropBatchedPlans) {
  expect_equivalent(
      "flap", tcp_with_link_flaps, [] { return plain_cfg(8e6, sim::milliseconds(6), 40); },
      [] { return plain_cfg(8e6, sim::milliseconds(6), 40); });
}

TEST(HotPathEquivalence, CoDelQueueFallsBackToExactPath) {
  auto make = [] {
    Link::Config cfg;
    cfg.rate_bps = 4e6;
    cfg.delay = sim::milliseconds(10);
    cfg.queue = std::make_unique<net::CoDelQueue>();
    return cfg;
  };
  // AQM is time-dependent: batching must not engage, so even the sim-level
  // fingerprint matches legacy.
  expect_equivalent("codel", tcp_bulk, make, make, /*batched_sim_identical=*/true);
}

TEST(HotPathEquivalence, LossModelFallsBackToExactPath) {
  auto make = [] {
    Link::Config cfg;
    cfg.rate_bps = 8e6;
    cfg.delay = sim::milliseconds(10);
    cfg.queue_packets = 60;
    cfg.loss = std::make_unique<net::BernoulliLoss>(0.02);
    return cfg;
  };
  // The loss roll consumes the link's RNG per tx-complete; batching would
  // perturb draw order, so it must not engage on either lossy direction —
  // which makes even the sim-level stream identical to legacy.
  expect_equivalent("loss", tcp_bulk, make, make, /*batched_sim_identical=*/true);
}

TEST(HotPathEquivalence, DeterministicUnderBatching) {
  // The batched default still satisfies the determinism harness: two runs of
  // the same seed produce identical packet and simulator traces.
  auto report = check::DeterminismHarness::run_twice(
      [](std::uint64_t seed, check::TraceRecorder& trace) {
        sim::Simulator sim;
        net::Network net(sim, seed);
        trace.attach(net);
        trace.attach(sim);
        auto a = net.add_node("a");
        auto b = net.add_node("b");
        net.connect(a, b, 10e6, sim::milliseconds(10), 20);
        transport::TcpSink sink(net, b, 80);
        transport::TcpSource src(net, a, 1000, b, 80, 1);
        src.send(200'000);
        sim.run_until(sim::seconds(10));
      },
      42);
  EXPECT_TRUE(report.deterministic());
}

// -------------------------------------------------------------- unit level

TEST(PacketArena, SlotsRecycleLifoWithStableAddresses) {
  net::PacketArena arena;
  net::Packet p;
  p.size_bytes = 100;
  p.uid = 1;
  const std::uint32_t s0 = arena.acquire(std::move(p));
  net::Packet q;
  q.size_bytes = 200;
  q.uid = 2;
  const std::uint32_t s1 = arena.acquire(std::move(q));
  EXPECT_NE(s0, s1);
  EXPECT_EQ(arena.in_flight(), 2u);
  const net::Packet* addr0 = &arena.at(s0);

  // Growth must not move parked packets (deque-backed slab).
  for (int i = 0; i < 1000; ++i) {
    net::Packet f;
    f.uid = 100 + static_cast<std::uint64_t>(i);
    arena.acquire(std::move(f));
  }
  EXPECT_EQ(&arena.at(s0), addr0);
  EXPECT_EQ(arena.at(s0).uid, 1u);

  // take() frees the slot; the next acquire reuses it (LIFO).
  net::Packet out = arena.take(s1);
  EXPECT_EQ(out.uid, 2u);
  net::Packet r;
  r.uid = 3;
  EXPECT_EQ(arena.acquire(std::move(r)), s1);
  EXPECT_EQ(arena.at(s1).uid, 3u);

  // release() frees without moving the payload out.
  arena.release(s1);
  net::Packet r2;
  r2.uid = 4;
  EXPECT_EQ(arena.acquire(std::move(r2)), s1);
}

TEST(PacketArena, BatchedLinkObeysQueueCapacityExactly) {
  // A batch claims queued packets ahead of time; the occupancy supplement
  // must keep the *effective* buffer identical to the un-batched link, so a
  // burst larger than the queue drops exactly the same packets.
  auto run = [](Link::TxPath path) {
    sim::Simulator sim;
    net::Network net(sim, 3);
    auto a = net.add_node("a");
    auto b = net.add_node("b");
    Link::Config ab = plain_cfg(1e6, sim::milliseconds(5), 4);
    ab.tx_path = path;
    Link::Config ba = plain_cfg(1e6, sim::milliseconds(5), 4);
    ba.tx_path = path;
    auto [link, rev] = net.connect(a, b, std::move(ab), std::move(ba));
    (void)rev;
    std::int64_t delivered = 0;
    net.node(b).bind(9, [&delivered](net::Packet&&) { ++delivered; });
    // Burst of 12 into a 4-packet queue, then a second burst mid-drain.
    auto burst = [&net, a, b](int n, std::uint64_t base) {
      for (int i = 0; i < n; ++i) {
        net::Packet p;
        p.src = a;
        p.dst = b;
        p.dst_port = 9;
        p.size_bytes = 1000;
        p.uid = base + static_cast<std::uint64_t>(i);
        net.send(std::move(p));
      }
    };
    burst(12, 1);
    sim.at(sim::milliseconds(20), [&burst] { burst(12, 100); });
    sim.run();
    // Tail drops are accounted by the discipline, not lost_packets() (that
    // counts loss-model and link-down kills).
    return std::pair<std::int64_t, std::int64_t>(delivered, link->queue().drops());
  };
  const auto legacy = run(Link::TxPath::kLegacy);
  const auto batched = run(Link::TxPath::kArenaBatched);
  EXPECT_EQ(legacy.first, batched.first);
  EXPECT_EQ(legacy.second, batched.second);
  EXPECT_GT(legacy.second, 0);  // the scenario must actually overflow
}

TEST(PacketArena, BatchedLinkMetricsMatchLegacy) {
  auto run = [](Link::TxPath path) {
    sim::Simulator sim;
    net::Network net(sim, 3);
    auto a = net.add_node("a");
    auto b = net.add_node("b");
    Link::Config ab = plain_cfg(2e6, sim::milliseconds(5), 64);
    ab.tx_path = path;
    Link::Config ba = plain_cfg(2e6, sim::milliseconds(5), 64);
    ba.tx_path = path;
    auto [link, rev] = net.connect(a, b, std::move(ab), std::move(ba));
    (void)rev;
    for (int i = 0; i < 40; ++i) {
      net::Packet p;
      p.src = a;
      p.dst = b;
      p.dst_port = 9;
      p.size_bytes = 1200;
      net.send(std::move(p));
    }
    sim.run();
    struct Out {
      std::int64_t delivered_bytes, delivered_packets;
      std::int64_t sojourn_count;
      double sojourn_mean;
    };
    return Out{link->delivered_bytes(), link->delivered_packets(),
               link->queueing_delay_ms().count(), link->queueing_delay_ms().mean()};
  };
  const auto legacy = run(Link::TxPath::kLegacy);
  const auto batched = run(Link::TxPath::kArenaBatched);
  EXPECT_EQ(legacy.delivered_bytes, batched.delivered_bytes);
  EXPECT_EQ(legacy.delivered_packets, batched.delivered_packets);
  EXPECT_EQ(legacy.sojourn_count, batched.sojourn_count);
  EXPECT_DOUBLE_EQ(legacy.sojourn_mean, batched.sojourn_mean);
  EXPECT_GT(legacy.sojourn_count, 30);
}

}  // namespace
