// Tests of the arnet::fleet multi-user serving layer: population arrival
// determinism, batch formation edge cases, admission hysteresis, balancer
// tie-breaking, autoscaler cooldown, and bit-equality of the scale_fleet
// capacity cells between serial and parallel sweeps.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "arnet/fleet/admission.hpp"
#include "arnet/fleet/autoscaler.hpp"
#include "arnet/fleet/balancer.hpp"
#include "arnet/fleet/fleet.hpp"
#include "arnet/fleet/population.hpp"
#include "arnet/fleet/scenario.hpp"
#include "arnet/fleet/server.hpp"
#include "arnet/obs/export.hpp"
#include "arnet/runner/experiment.hpp"
#include "arnet/sim/simulator.hpp"

namespace arnet {
namespace {

using sim::milliseconds;
using sim::seconds;

// ----------------------------------------------------------- population

TEST(Population, SameSeedMintsIdenticalSessions) {
  sim::Simulator sim_a, sim_b;
  fleet::PopulationConfig cfg;
  cfg.base_arrivals_per_s = 10.0;
  fleet::PopulationModel a(sim_a, cfg, 42), b(sim_b, cfg, 42);

  std::vector<fleet::SessionSpec> got_a, got_b;
  a.set_session_callback([&](const fleet::SessionSpec& s) { got_a.push_back(s); });
  b.set_session_callback([&](const fleet::SessionSpec& s) { got_b.push_back(s); });
  a.start();
  b.start();
  sim_a.run_until(seconds(10));
  sim_b.run_until(seconds(10));

  ASSERT_GT(got_a.size(), 50u);
  ASSERT_EQ(got_a.size(), got_b.size());
  for (std::size_t i = 0; i < got_a.size(); ++i) {
    EXPECT_EQ(got_a[i].id, got_b[i].id);
    EXPECT_EQ(got_a[i].arrival, got_b[i].arrival);
    EXPECT_EQ(got_a[i].lifetime, got_b[i].lifetime);
    EXPECT_EQ(got_a[i].device, got_b[i].device);
    EXPECT_EQ(got_a[i].app, got_b[i].app);
    EXPECT_EQ(got_a[i].pos.x_km, got_b[i].pos.x_km);
    EXPECT_EQ(got_a[i].pos.y_km, got_b[i].pos.y_km);
  }
}

TEST(Population, SessionAttributesIndependentOfArrivalHistory) {
  // Session k's identity comes from derive_seed(seed, k + 1), never from how
  // many draws the arrival process consumed before it.
  sim::Simulator sim;
  fleet::PopulationConfig calm, bursty;
  calm.base_arrivals_per_s = 1.0;
  bursty = calm;
  bursty.process = fleet::ArrivalProcess::kMmpp;
  bursty.burst_multiplier = 5.0;
  fleet::PopulationModel a(sim, calm, 7), b(sim, bursty, 7);
  for (std::uint64_t id : {0ull, 5ull, 99ull}) {
    const fleet::SessionSpec sa = a.make_session(id, seconds(3));
    const fleet::SessionSpec sb = b.make_session(id, seconds(8));
    EXPECT_EQ(sa.device, sb.device);
    EXPECT_EQ(sa.lifetime, sb.lifetime);
    EXPECT_EQ(sa.pos.x_km, sb.pos.x_km);
  }
}

TEST(Population, DiurnalProfileModulatesRate) {
  sim::Simulator sim;
  fleet::PopulationConfig cfg;
  cfg.base_arrivals_per_s = 10.0;
  cfg.diurnal = {0.5, 2.0};
  cfg.diurnal_period = seconds(10);
  fleet::PopulationModel p(sim, cfg, 1);
  EXPECT_DOUBLE_EQ(p.diurnal_multiplier(seconds(2)), 0.5);
  EXPECT_DOUBLE_EQ(p.diurnal_multiplier(seconds(7)), 2.0);
  EXPECT_DOUBLE_EQ(p.diurnal_multiplier(seconds(12)), 0.5);  // wraps
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(2)), 5.0);
  EXPECT_DOUBLE_EQ(p.rate_at(seconds(7)), 20.0);
}

// ---------------------------------------------------------- batch formation

struct ServerFixture {
  sim::Simulator sim;
  obs::MetricsRegistry reg;
  std::vector<sim::Time> done_at;

  fleet::ComputeRequest request(std::uint64_t uid, sim::Time work = milliseconds(3)) {
    fleet::ComputeRequest r;
    r.uid = uid;
    r.work = work;
    r.done = [this] { done_at.push_back(sim.now()); };
    return r;
  }
};

TEST(EdgeServer, PartialBatchExecutesOnTimeout) {
  ServerFixture f;
  fleet::EdgeServerConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.timeout = milliseconds(4);
  cfg.batch.setup = milliseconds(1);
  cfg.batch.marginal = 0.5;
  fleet::EdgeServer srv(f.sim, cfg);

  // 3 requests at t=0: far below max_batch, so only the timeout can fire the
  // batch. service = setup + w_max + marginal * (sum - w_max) = 1 + 3 + 3 = 7.
  for (int i = 0; i < 3; ++i) srv.submit(f.request(static_cast<std::uint64_t>(i)));
  f.sim.run();
  ASSERT_EQ(f.done_at.size(), 3u);
  EXPECT_EQ(srv.batches(), 1);
  for (sim::Time t : f.done_at) EXPECT_EQ(t, milliseconds(4) + milliseconds(7));
}

TEST(EdgeServer, BatchCapsAtMaxSize) {
  ServerFixture f;
  fleet::EdgeServerConfig cfg;
  cfg.batch.max_batch = 8;
  cfg.batch.executors = 1;
  cfg.metrics = &f.reg;
  fleet::EdgeServer srv(f.sim, cfg);

  // 20 requests at t=0 on one lane: batches of 8, 8, then the 4-tail.
  for (int i = 0; i < 20; ++i) srv.submit(f.request(static_cast<std::uint64_t>(i)));
  f.sim.run();
  EXPECT_EQ(srv.requests(), 20);
  EXPECT_EQ(srv.batches(), 3);
  const obs::Histogram& h = f.reg.histogram("fleet.batch_size", cfg.entity);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.max(), 8.0);
  EXPECT_EQ(h.min(), 4.0);
}

TEST(EdgeServer, UnbatchedModeServesOneAtATime) {
  ServerFixture f;
  fleet::EdgeServerConfig cfg;
  cfg.batch.enabled = false;
  cfg.batch.executors = 1;
  fleet::EdgeServer srv(f.sim, cfg);
  for (int i = 0; i < 4; ++i) srv.submit(f.request(static_cast<std::uint64_t>(i)));
  f.sim.run();
  EXPECT_EQ(srv.batches(), 4);
  ASSERT_EQ(f.done_at.size(), 4u);
  // Strictly sequential completions: each waits for the previous batch.
  for (std::size_t i = 1; i < f.done_at.size(); ++i) {
    EXPECT_GT(f.done_at[i], f.done_at[i - 1]);
  }
}

TEST(EdgeServer, BatchingBeatsSerialServiceUnderBacklog) {
  // The whole point of batching: the same backlog drains faster.
  ServerFixture batched, serial;
  fleet::EdgeServerConfig on, off;
  on.batch.executors = off.batch.executors = 1;
  off.batch.enabled = false;
  fleet::EdgeServer a(batched.sim, on), b(serial.sim, off);
  for (int i = 0; i < 32; ++i) {
    a.submit(batched.request(static_cast<std::uint64_t>(i)));
    b.submit(serial.request(static_cast<std::uint64_t>(i)));
  }
  batched.sim.run();
  serial.sim.run();
  EXPECT_LT(batched.sim.now(), serial.sim.now());
}

// ---------------------------------------------------------------- admission

TEST(Admission, HysteresisDoesNotFlap) {
  fleet::AdmissionConfig cfg;
  cfg.min_samples = 8;
  cfg.window = 32;
  cfg.allow_downgrade = false;
  fleet::AdmissionController ac(cfg);

  // Saturate the window with over-budget latencies: trips to overloaded.
  for (int i = 0; i < 32; ++i) ac.observe_latency_ms(90.0);
  EXPECT_EQ(ac.decide(seconds(1), 1), fleet::AdmissionDecision::kReject);
  EXPECT_TRUE(ac.overloaded());

  // p99 drifts down into the hysteresis band [60, 75): still rejecting —
  // a controller without the band would flap admit/reject here.
  for (int i = 0; i < 32; ++i) {
    ac.observe_latency_ms(70.0);
    EXPECT_EQ(ac.decide(seconds(2) + milliseconds(i), 100 + static_cast<std::uint64_t>(i)),
              fleet::AdmissionDecision::kReject);
  }
  EXPECT_TRUE(ac.overloaded());

  // Only clearing the lower water mark (75 * 0.8 = 60) readmits.
  for (int i = 0; i < 32; ++i) ac.observe_latency_ms(40.0);
  EXPECT_EQ(ac.decide(seconds(3), 200), fleet::AdmissionDecision::kAdmit);
  EXPECT_FALSE(ac.overloaded());

  // Exactly one reject->admit transition in the whole log.
  int transitions = 0;
  const auto& log = ac.log();
  for (std::size_t i = 1; i < log.size(); ++i) {
    if (log[i].decision != log[i - 1].decision) ++transitions;
  }
  EXPECT_EQ(transitions, 1);
}

TEST(Admission, DowngradeBandSitsBelowRejectLine) {
  fleet::AdmissionConfig cfg;
  cfg.min_samples = 8;
  cfg.window = 16;
  fleet::AdmissionController ac(cfg);
  // p99 ~ 70 ms: above downgrade_factor * 75 = 67.5, below 75.
  for (int i = 0; i < 16; ++i) ac.observe_latency_ms(70.0);
  EXPECT_EQ(ac.decide(seconds(1), 1), fleet::AdmissionDecision::kDowngrade);
  EXPECT_FALSE(ac.overloaded());
}

TEST(Admission, DisabledAdmitsEverythingSilently) {
  fleet::AdmissionConfig cfg;
  cfg.enabled = false;
  fleet::AdmissionController ac(cfg);
  for (int i = 0; i < 64; ++i) ac.observe_latency_ms(500.0);
  EXPECT_EQ(ac.decide(seconds(1), 1), fleet::AdmissionDecision::kAdmit);
  EXPECT_TRUE(ac.log().empty());
}

// ----------------------------------------------------------------- balancer

TEST(Balancer, TiesBreakTowardLowestIndex) {
  sim::Simulator sim;
  fleet::EdgeServerConfig cfg;
  fleet::EdgeServer s0(sim, cfg), s1(sim, cfg), s2(sim, cfg);
  std::vector<fleet::EdgeServer*> servers = {&s0, &s1, &s2};

  fleet::LoadBalancer least(fleet::BalancerPolicy::kLeastOutstanding);
  fleet::LoadBalancer ewma(fleet::BalancerPolicy::kLatencyEwma);
  // All idle, all EWMAs zero: deterministic lowest index, repeatedly.
  EXPECT_EQ(least.pick(servers), 0u);
  EXPECT_EQ(least.pick(servers), 0u);
  EXPECT_EQ(ewma.pick(servers), 0u);

  // Load server 0: least-outstanding moves to the next-lowest tied index.
  fleet::ComputeRequest r;
  r.work = milliseconds(3);
  r.done = [] {};
  s0.submit(std::move(r));
  EXPECT_EQ(least.pick(servers), 1u);
}

TEST(Balancer, RoundRobinCyclesInOrder) {
  sim::Simulator sim;
  fleet::EdgeServerConfig cfg;
  fleet::EdgeServer s0(sim, cfg), s1(sim, cfg), s2(sim, cfg);
  std::vector<fleet::EdgeServer*> servers = {&s0, &s1, &s2};
  fleet::LoadBalancer rr(fleet::BalancerPolicy::kRoundRobin);
  EXPECT_EQ(rr.pick(servers), 0u);
  EXPECT_EQ(rr.pick(servers), 1u);
  EXPECT_EQ(rr.pick(servers), 2u);
  EXPECT_EQ(rr.pick(servers), 0u);
}

// --------------------------------------------------------------- autoscaler

TEST(Autoscaler, SustainAndCooldownGateActions) {
  fleet::AutoscalerConfig cfg;
  cfg.enabled = true;
  cfg.min_servers = 1;
  cfg.max_servers = 4;
  cfg.sustain_ticks = 3;
  cfg.cooldown = seconds(1);
  fleet::Autoscaler as(cfg);

  // Two hot ticks: not sustained yet.
  EXPECT_EQ(as.evaluate(milliseconds(250), 0.9, 2), fleet::ScaleAction::kNone);
  EXPECT_EQ(as.evaluate(milliseconds(500), 0.9, 2), fleet::ScaleAction::kNone);
  // Third consecutive hot tick: scale out.
  EXPECT_EQ(as.evaluate(milliseconds(750), 0.9, 2), fleet::ScaleAction::kOut);
  // Still hot, but inside the cooldown window: held back.
  EXPECT_EQ(as.evaluate(milliseconds(1000), 0.9, 3), fleet::ScaleAction::kNone);
  EXPECT_EQ(as.evaluate(milliseconds(1250), 0.9, 3), fleet::ScaleAction::kNone);
  EXPECT_EQ(as.evaluate(milliseconds(1500), 0.9, 3), fleet::ScaleAction::kNone);
  // Cooldown elapsed and the streak is sustained again: next action.
  EXPECT_EQ(as.evaluate(milliseconds(1800), 0.9, 3), fleet::ScaleAction::kOut);
}

TEST(Autoscaler, RespectsServerBounds) {
  fleet::AutoscalerConfig cfg;
  cfg.enabled = true;
  cfg.min_servers = 2;
  cfg.max_servers = 3;
  cfg.sustain_ticks = 1;
  cfg.cooldown = 0;
  fleet::Autoscaler as(cfg);
  EXPECT_EQ(as.evaluate(milliseconds(250), 0.9, 3), fleet::ScaleAction::kNone);  // at max
  EXPECT_EQ(as.evaluate(milliseconds(500), 0.1, 2), fleet::ScaleAction::kNone);  // at min
  EXPECT_EQ(as.evaluate(milliseconds(750), 0.1, 3), fleet::ScaleAction::kIn);
}

// -------------------------------------------------- end-to-end determinism

TEST(FleetDeterminism, SameSeedSameAdmissionLogAndStats) {
  auto run = [](std::vector<fleet::AdmissionLogEntry>* log) {
    sim::Simulator sim;
    fleet::FleetConfig cfg;
    cfg.seed = 11;
    cfg.population.base_arrivals_per_s = 12.0;
    cfg.population.mean_lifetime_s = 5.0;
    cfg.population.process = fleet::ArrivalProcess::kMmpp;
    fleet::Fleet fl(sim, cfg);
    fl.start();
    sim.run_until(seconds(12));
    fl.stop();
    *log = fl.admission().log();
    return fl.stats();
  };
  std::vector<fleet::AdmissionLogEntry> log_a, log_b;
  const fleet::FleetStats a = run(&log_a);
  const fleet::FleetStats b = run(&log_b);

  EXPECT_GT(a.arrivals, 50u);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  ASSERT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].time, log_b[i].time);
    EXPECT_EQ(log_a[i].session, log_b[i].session);
    EXPECT_EQ(log_a[i].decision, log_b[i].decision);
    EXPECT_DOUBLE_EQ(log_a[i].projected_p99_ms, log_b[i].projected_p99_ms);
  }
}

TEST(FleetDeterminism, SerialAndParallelSweepsAreByteIdentical) {
  // Exactly the bench's structure: per-cell registries, merged in run-index
  // order, exported as arnet-obs-v1 — the merged JSONL must not depend on
  // the worker count.
  std::vector<fleet::CellConfig> cells;
  for (double users : {30.0, 60.0, 90.0}) {
    fleet::CellConfig c;
    c.name = "cell" + std::to_string(static_cast<int>(users));
    c.offered_users = users;
    c.duration = seconds(4);
    c.mean_lifetime_s = 3.0;
    c.admit = true;
    cells.push_back(c);
  }
  auto sweep = [&cells](int jobs) {
    runner::ExperimentRunner::Config pc;
    pc.jobs = jobs;
    pc.root_seed = 5;
    runner::ExperimentRunner pool(pc);
    std::vector<obs::MetricsRegistry> regs(cells.size());
    pool.for_each(cells.size(), [&](runner::RunContext& ctx) {
      fleet::run_capacity_cell(cells[ctx.run_index], ctx.seed, &regs[ctx.run_index]);
    });
    obs::MetricsRegistry merged;
    for (const obs::MetricsRegistry& r : regs) merged.merge_from(r);
    std::ostringstream os;
    obs::write_jsonl(merged, os);
    return os.str();
  };
  const std::string serial = sweep(1);
  const std::string parallel = sweep(8);
  EXPECT_GT(serial.size(), 1000u);
  EXPECT_EQ(serial, parallel);
}

TEST(Fleet, AutoscalerAddsServersUnderOverload) {
  sim::Simulator sim;
  fleet::FleetConfig cfg;
  cfg.seed = 3;
  cfg.population.base_arrivals_per_s = 15.0;
  cfg.population.mean_lifetime_s = 10.0;
  cfg.initial_servers = 1;
  cfg.admission.enabled = false;
  cfg.autoscaler.enabled = true;
  cfg.autoscaler.min_servers = 1;
  cfg.autoscaler.max_servers = 6;
  fleet::Fleet fl(sim, cfg);
  fl.start();
  sim.run_until(seconds(15));
  fl.stop();
  EXPECT_GT(fl.active_servers(), 1u);
  EXPECT_FALSE(fl.autoscaler().events().empty());
}

}  // namespace
}  // namespace arnet
