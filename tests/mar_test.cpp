#include <gtest/gtest.h>

#include "arnet/mar/cost_model.hpp"
#include "arnet/mar/device.hpp"
#include "arnet/mar/offload.hpp"
#include "arnet/mar/traffic.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"

namespace arnet::mar {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(Device, TableOneHasSixClasses) {
  const auto& all = all_device_profiles();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all.front().name, "Smart glasses");
  EXPECT_EQ(all.back().name, "Cloud computing");
}

TEST(Device, ComputeScalesAreMonotonic) {
  // Table I orders devices by growing computing power.
  const auto& all = all_device_profiles();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i].compute_scale, all[i - 1].compute_scale)
        << all[i].name << " should be at least as fast as " << all[i - 1].name;
  }
}

TEST(Device, ScaledCostMultiplies) {
  const auto& glasses = device_profile(DeviceClass::kSmartGlasses);
  EXPECT_EQ(scaled_cost(glasses, milliseconds(4)), milliseconds(160));
  const auto& cloud = device_profile(DeviceClass::kCloud);
  EXPECT_LT(scaled_cost(cloud, milliseconds(4)), milliseconds(4));
}

TEST(Video, PaperBitrates) {
  VideoModel uhd = VideoModel::uhd4k60();
  // The paper's §III-B raw figure: 4K 60 FPS 12 bpp ~= several Gb/s raw...
  EXPECT_NEAR(uhd.raw_bps() / 1e9, 5.97, 0.1);
  // ...and 20-30 Mb/s once lossy-compressed.
  EXPECT_GT(uhd.compressed_bps() / 1e6, 20.0);
  EXPECT_LT(uhd.compressed_bps() / 1e6, 30.0);
}

TEST(Video, GopStructure) {
  VideoModel v = VideoModel::hd720p30();
  EXPECT_TRUE(v.is_reference(0));
  EXPECT_FALSE(v.is_reference(1));
  EXPECT_TRUE(v.is_reference(static_cast<std::uint32_t>(v.gop)));
  EXPECT_GT(v.ref_frame_bytes(), v.inter_frame_bytes());
  EXPECT_EQ(v.frame_interval(), sim::from_seconds(1.0 / 30.0));
}

TEST(CostModel, GlassesCannotRunVisionLocally) {
  AppParams app;  // 30 FPS, 4 ms reference work, 75 ms budget
  const auto& glasses = device_profile(DeviceClass::kSmartGlasses);
  const auto& desktop = device_profile(DeviceClass::kDesktop);
  EXPECT_FALSE(meets_deadline(p_local(glasses, app), app));
  EXPECT_TRUE(meets_deadline(p_local(desktop, app), app));
}

TEST(CostModel, OffloadingHelpsWeakDevicesOnGoodLinks) {
  AppParams app;
  LinkParams good{50e6, milliseconds(10)};
  const auto& glasses = device_profile(DeviceClass::kSmartGlasses);
  const auto& cloud = device_profile(DeviceClass::kCloud);
  sim::Time local = p_local(glasses, app);
  sim::Time offloaded = p_offloading(glasses, cloud, app, good, 1.0, 0.0);
  EXPECT_LT(offloaded, local);
  EXPECT_TRUE(meets_deadline(offloaded, app));
}

TEST(CostModel, OffloadingHurtsOnBadLinks) {
  AppParams app;
  LinkParams bad{1e6, milliseconds(150)};  // HSPA-like
  const auto& phone = device_profile(DeviceClass::kSmartphone);
  const auto& cloud = device_profile(DeviceClass::kCloud);
  sim::Time offloaded = p_offloading(phone, cloud, app, bad, 1.0, 0.0);
  EXPECT_FALSE(meets_deadline(offloaded, app));
  // The link dominates: latency alone blows the 75 ms budget.
  EXPECT_GT(offloaded, milliseconds(300));
}

TEST(CostModel, CachingReducesDbCost) {
  AppParams app;
  app.db_request_hz = 30.0;  // one fetch per frame
  LinkParams link{10e6, milliseconds(25)};
  const auto& phone = device_profile(DeviceClass::kSmartphone);
  sim::Time cold = p_local_external_db(phone, app, link, 0.0);
  sim::Time warm = p_local_external_db(phone, app, link, 0.9);
  sim::Time full = p_local_external_db(phone, app, link, 1.0);
  EXPECT_GT(cold, warm);
  EXPECT_GT(warm, full);
  EXPECT_EQ(full, p_local(phone, app));
}

TEST(CostModel, SplitParameterTradesComputeForBandwidth) {
  AppParams app;
  app.upload_bytes_per_frame = 120'000;  // full frame
  LinkParams thin{4e6, milliseconds(15)};
  const auto& phone = device_profile(DeviceClass::kSmartphone);
  const auto& cloud = device_profile(DeviceClass::kCloud);
  // On a thin link, doing feature extraction locally (y=0.75) beats
  // shipping whole frames (y=0).
  sim::Time ship_frames = p_offloading(phone, cloud, app, thin, 1.0, 0.0);
  sim::Time ship_features = p_offloading(phone, cloud, app, thin, 1.0, 0.75);
  EXPECT_LT(ship_features, ship_frames);
}

TEST(CostModel, BestStrategyPicksOffloadForGlasses) {
  AppParams app;
  LinkParams link{30e6, milliseconds(8)};
  auto best = best_strategy(device_profile(DeviceClass::kSmartGlasses),
                            device_profile(DeviceClass::kCloud), app, link, 1.0);
  EXPECT_EQ(best.kind, BestStrategy::Kind::kOffload);
  auto desk = best_strategy(device_profile(DeviceClass::kDesktop),
                            device_profile(DeviceClass::kCloud), app, link, 1.0);
  EXPECT_EQ(desk.kind, BestStrategy::Kind::kLocal);
}

// ------------------------------------------------------- OffloadSession

struct SessionFixture {
  sim::Simulator sim;
  net::Network net{sim, 21};
  net::NodeId client, server;

  SessionFixture(double rate_bps = 30e6, sim::Time delay = milliseconds(8)) {
    client = net.add_node("client");
    server = net.add_node("edge");
    net.connect(client, server, rate_bps, delay, 500);
  }

  OffloadStats run(OffloadConfig cfg, sim::Time dur = seconds(10)) {
    OffloadSession session(net, client, server, cfg);
    session.start();
    sim.run_until(sim.now() + dur);
    session.stop();
    return session.stats();
  }
};

TEST(OffloadSession, CloudRidArMeetsDeadlineOnEdgeLink) {
  SessionFixture f;
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kCloudRidAR;
  cfg.device = DeviceClass::kSmartphone;
  auto stats = f.run(cfg);
  EXPECT_GT(stats.results, 250);  // ~300 frames in 10 s
  EXPECT_LT(stats.miss_rate(), 0.1);
  EXPECT_LT(stats.latency_ms.median(), 75.0);
  EXPECT_GT(stats.uplink_bytes, 0);
}

TEST(OffloadSession, LocalOnlyOnGlassesMissesEveryDeadline) {
  SessionFixture f;
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kLocalOnly;
  cfg.device = DeviceClass::kSmartGlasses;
  auto stats = f.run(cfg, seconds(5));
  EXPECT_GT(stats.results, 10);
  EXPECT_GT(stats.miss_rate(), 0.9);  // 280 ms compute vs 75 ms budget
  EXPECT_EQ(stats.uplink_bytes, 0);
}

TEST(OffloadSession, LocalOnlyOnDesktopIsFast) {
  SessionFixture f;
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kLocalOnly;
  cfg.device = DeviceClass::kDesktop;
  auto stats = f.run(cfg, seconds(5));
  EXPECT_LT(stats.miss_rate(), 0.01);
  EXPECT_LT(stats.latency_ms.median(), 10.0);
}

TEST(OffloadSession, GlimpseReducesUplinkVsCloudRidAr) {
  SessionFixture f1, f2;
  OffloadConfig a;
  a.strategy = OffloadStrategy::kCloudRidAR;
  OffloadConfig b;
  b.strategy = OffloadStrategy::kGlimpse;
  b.glimpse_offload_interval = 5;
  auto sa = f1.run(a);
  auto sb = f2.run(b);
  EXPECT_LT(sb.uplink_bytes, sa.uplink_bytes / 3);
  EXPECT_LT(sb.offloaded_frames, sa.offloaded_frames / 3);
  // Tracked frames respond almost instantly, so Glimpse's median is lower.
  EXPECT_LT(sb.latency_ms.median(), sa.latency_ms.median());
}

TEST(OffloadSession, FullOffloadNeedsMoreBandwidth) {
  // On a 4 Mb/s uplink the feature stream (~3.5 Mb/s) squeezes by while
  // whole frames (~4.4 Mb/s + FEC) congest and blow the tail latency.
  SessionFixture f1(4e6, milliseconds(8)), f2(4e6, milliseconds(8));
  OffloadConfig frames;
  frames.strategy = OffloadStrategy::kFullOffload;
  OffloadConfig feats;
  feats.strategy = OffloadStrategy::kCloudRidAR;
  auto sf = f1.run(frames);
  auto sc = f2.run(feats);
  EXPECT_GT(sf.uplink_bytes, sc.uplink_bytes);
  EXPECT_GT(sf.latency_ms.percentile(0.9), sc.latency_ms.percentile(0.9));
}

TEST(OffloadSession, GlassesOffloadingBeatsLocal) {
  // The paper's central claim quantified: offloading rescues weak hardware.
  SessionFixture f1, f2;
  OffloadConfig local;
  local.strategy = OffloadStrategy::kLocalOnly;
  local.device = DeviceClass::kSmartGlasses;
  // Glasses are too weak even for on-device feature extraction (40x the
  // desktop cost blows the budget by itself) — the paper's motivation for
  // offloading *everything* from wearables. Ship compressed frames instead.
  OffloadConfig off;
  off.strategy = OffloadStrategy::kFullOffload;
  off.device = DeviceClass::kSmartGlasses;
  auto sl = f1.run(local, seconds(5));
  auto so = f2.run(off, seconds(5));
  EXPECT_LT(so.latency_ms.median(), sl.latency_ms.median());
  EXPECT_LT(so.miss_rate(), sl.miss_rate());
  EXPECT_EQ(sl.miss_rate(), 1.0);
}

TEST(OffloadSession, EnergyAccountingIsPositiveAndStrategyDependent) {
  SessionFixture f1, f2;
  OffloadConfig local;
  local.strategy = OffloadStrategy::kLocalOnly;
  local.device = DeviceClass::kSmartphone;
  OffloadConfig off;
  off.strategy = OffloadStrategy::kCloudRidAR;
  off.device = DeviceClass::kSmartphone;
  auto sl = f1.run(local, seconds(5));
  auto so = f2.run(off, seconds(5));
  EXPECT_GT(sl.energy_j, 0.0);
  EXPECT_GT(so.energy_j, 0.0);
  // Local runs extract+recognize on-device; offload only extract.
  EXPECT_GT(sl.energy_j, so.energy_j);
}

}  // namespace
}  // namespace arnet::mar
