// Tests for the §VI-G privacy & security layer: sensitive-region detection,
// redaction, its interaction with the recognition pipeline, and transport
// crypto overhead.
#include <gtest/gtest.h>

#include "arnet/mar/offload.hpp"
#include "arnet/mar/security.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/vision/features.hpp"
#include "arnet/vision/pipeline.hpp"
#include "arnet/vision/privacy.hpp"

namespace arnet::vision {
namespace {

double iou(const SensitiveRegion& a, const SensitiveRegion& b) {
  int x0 = std::max(a.x, b.x), y0 = std::max(a.y, b.y);
  int x1 = std::min(a.x + a.w, b.x + b.w), y1 = std::min(a.y + a.h, b.y + b.h);
  int inter = std::max(0, x1 - x0) * std::max(0, y1 - y0);
  int uni = a.w * a.h + b.w * b.h - inter;
  return uni > 0 ? static_cast<double>(inter) / uni : 0.0;
}

TEST(Privacy, DetectorFindsPlantedRegions) {
  sim::Rng rng(5);
  std::vector<SensitiveRegion> truth;
  Image img = render_scene_with_sensitive(rng, SceneParams{}, 3, 2, truth);
  auto found = detect_sensitive_regions(img);
  ASSERT_EQ(truth.size(), 5u);
  int matched = 0;
  for (const auto& t : truth) {
    for (const auto& f : found) {
      if (iou(t, f) > 0.3) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GE(matched, 4);  // at least 4 of 5 planted regions recovered
}

TEST(Privacy, DetectorClassifiesByShape) {
  sim::Rng rng(7);
  std::vector<SensitiveRegion> truth;
  Image img = render_scene_with_sensitive(rng, SceneParams{}, 2, 2, truth);
  auto found = detect_sensitive_regions(img);
  int plates = 0, faces = 0;
  for (const auto& f : found) {
    (f.kind == SensitiveRegion::Kind::kPlate ? plates : faces) += 1;
  }
  EXPECT_GE(plates, 1);
  EXPECT_GE(faces, 1);
}

TEST(Privacy, CleanSceneHasNoDetections) {
  sim::Rng rng(9);
  std::vector<SensitiveRegion> truth;
  Image img = render_scene_with_sensitive(rng, SceneParams{}, 0, 0, truth);
  EXPECT_TRUE(detect_sensitive_regions(img).empty());
}

TEST(Privacy, BlurDestroysFeaturesInsideRegionOnly) {
  sim::Rng rng(11);
  std::vector<SensitiveRegion> truth;
  Image img = render_scene_with_sensitive(rng, SceneParams{}, 4, 2, truth);
  auto before = fast_detect(img, 20);
  Image redacted = img;
  blur_regions(redacted, truth);
  auto after = fast_detect(redacted, 20);

  auto in_any_region = [&](const Feature& f) {
    for (const auto& r : truth) {
      if (f.x >= r.x - 4 && f.x < r.x + r.w + 4 && f.y >= r.y - 4 && f.y < r.y + r.h + 4) {
        return true;
      }
    }
    return false;
  };
  int inside_before = 0, inside_after = 0, outside_after = 0, outside_before = 0;
  for (const auto& f : before) (in_any_region(f) ? inside_before : outside_before) += 1;
  for (const auto& f : after) (in_any_region(f) ? inside_after : outside_after) += 1;
  ASSERT_GT(inside_before, 0);
  EXPECT_LT(inside_after, inside_before / 3);  // redacted content has no corners
  EXPECT_GT(outside_after, outside_before / 2);  // the rest of the scene survives
}

TEST(Privacy, RecognitionSurvivesSensitiveBlur) {
  // The paper's requirement: anonymize before offloading *and* keep the
  // application functional. Blur the faces, then recognize the scene.
  sim::Rng rng(13);
  std::vector<SensitiveRegion> truth;
  SceneParams params;
  params.shapes = 30;  // plenty of non-sensitive texture
  Image ref = render_scene_with_sensitive(rng, params, 2, 1, truth);
  ObjectDatabase db;
  db.add_object("scene", ref);

  sim::Rng mrng(17);
  Image frame = warp_image(ref, random_camera_motion(mrng, 0.5));
  int redacted = apply_privacy(frame, PrivacyLevel::kBlurSensitive);
  EXPECT_GE(redacted, 2);

  RecognitionPipeline pipe;
  sim::Rng rrng(19);
  auto result = pipe.recognize_frame(frame, db, rrng);
  ASSERT_TRUE(result);
  EXPECT_EQ(result->object_id, 0);
}

TEST(Privacy, BlurAllDegradesRecognition) {
  sim::Rng rng(23);
  Image ref = render_scene(rng, SceneParams{});
  ObjectDatabase db;
  db.add_object("scene", ref);
  sim::Rng mrng(29);
  Image frame = warp_image(ref, random_camera_motion(mrng, 0.5));
  Image blurred = frame;
  apply_privacy(blurred, PrivacyLevel::kBlurAll);

  RecognitionPipeline pipe;
  sim::Rng r1(31), r2(31);
  auto clear_result = pipe.recognize_frame(frame, db, r1);
  auto blur_result = pipe.recognize_frame(blurred, db, r2);
  ASSERT_TRUE(clear_result);
  int blurred_inliers = blur_result ? blur_result->inliers : 0;
  EXPECT_LT(blurred_inliers, clear_result->inliers / 2);
}

}  // namespace
}  // namespace arnet::vision

namespace arnet::mar {
namespace {

TEST(Security, CryptoCostsScaleWithProfileAndDevice) {
  EXPECT_EQ(crypto_costs(CryptoProfile::kNone).per_packet_overhead_bytes, 0);
  EXPECT_GT(crypto_costs(CryptoProfile::kAes128Gcm).per_packet_overhead_bytes, 20);
  const auto& glasses = device_profile(DeviceClass::kSmartGlasses);
  const auto& desktop = device_profile(DeviceClass::kDesktop);
  sim::Time g = crypto_delay(glasses, CryptoProfile::kAes128Gcm, 100'000);
  sim::Time d = crypto_delay(desktop, CryptoProfile::kAes128Gcm, 100'000);
  EXPECT_GT(g, 10 * d);
  EXPECT_EQ(crypto_delay(desktop, CryptoProfile::kNone, 100'000), 0);
  // AES-256 is slower than AES-128.
  EXPECT_GT(crypto_delay(desktop, CryptoProfile::kAes256Gcm, 100'000),
            crypto_delay(desktop, CryptoProfile::kAes128Gcm, 100'000));
}

TEST(Security, EncryptedOffloadStillMeetsBudgetOnPhone) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto c = net.add_node("phone");
  auto s = net.add_node("edge");
  net.connect(c, s, 30e6, sim::milliseconds(8), 500);
  OffloadConfig cfg;
  cfg.strategy = OffloadStrategy::kCloudRidAR;
  cfg.crypto = CryptoProfile::kAes128Gcm;
  OffloadSession session(net, c, s, cfg);
  session.start();
  sim.run_until(sim::seconds(10));
  session.stop();
  EXPECT_GT(session.stats().results, 250);
  EXPECT_LT(session.stats().miss_rate(), 0.15);
}

TEST(Security, CryptoAddsWireOverheadAndLatency) {
  auto run = [](CryptoProfile crypto) {
    sim::Simulator sim;
    net::Network net(sim, 3);
    auto c = net.add_node("phone");
    auto s = net.add_node("edge");
    net.connect(c, s, 30e6, sim::milliseconds(8), 500);
    OffloadConfig cfg;
    cfg.strategy = OffloadStrategy::kFullOffload;
    cfg.device = DeviceClass::kSmartphone;
    cfg.crypto = crypto;
    OffloadSession session(net, c, s, cfg);
    session.start();
    sim.run_until(sim::seconds(10));
    session.stop();
    return session.stats().latency_ms.median();
  };
  double plain = run(CryptoProfile::kNone);
  double enc = run(CryptoProfile::kAes256Gcm);
  EXPECT_GT(enc, plain);           // encryption is not free...
  EXPECT_LT(enc, plain + 20.0);    // ...but must not dominate the budget
}

}  // namespace
}  // namespace arnet::mar
