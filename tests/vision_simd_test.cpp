// Golden tests for the vectorized vision fast paths: the library's FAST,
// Harris, and box-blur implementations (SIMD cardinal pre-test, separable
// integer blur, integer Sobel + rolling structure tensor) must be
// *bit-identical* to straightforward scalar references on seeded synthetic
// frames — including odd widths that exercise the partial-lane tails. The
// references below are deliberately naive transcriptions of the definitions,
// independent of the library's loop structure, so they pin whichever SIMD
// backend (SSE2, NEON, or the ARNET_NO_SIMD scalar fallback) a build picked.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "arnet/sim/rng.hpp"
#include "arnet/vision/features.hpp"
#include "arnet/vision/harris.hpp"
#include "arnet/vision/image.hpp"
#include "arnet/vision/simd.hpp"
#include "arnet/vision/synth.hpp"

namespace {

using namespace arnet;
using namespace arnet::vision;

Image seeded_scene(int w, int h, std::uint64_t seed) {
  sim::Rng rng(seed);
  SceneParams p;
  p.width = w;
  p.height = h;
  Image img = render_scene(rng, p);
  add_noise(img, rng, 6.0);
  return img;
}

// ------------------------------------------------------------ references

/// Naive clamped box blur, the definition the separable SIMD pass must match.
Image ref_box_blur(const Image& src, int radius) {
  Image out(src.width(), src.height());
  const int n = (2 * radius + 1) * (2 * radius + 1);
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      int sum = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          sum += src.at_clamped(x + dx, y + dy);
        }
      }
      out.at(x, y) = static_cast<std::uint8_t>(sum / n);
    }
  }
  return out;
}

constexpr int kRefRing[16][2] = {{0, -3}, {1, -3}, {2, -2}, {3, -1}, {3, 0},  {3, 1},
                                 {2, 2},  {1, 3},  {0, 3},  {-1, 3}, {-2, 2}, {-3, 1},
                                 {-3, 0}, {-3, -1}, {-2, -2}, {-1, -3}};

/// Reference FAST-9 score: classify all 16 ring pixels, scan the doubled
/// ring for a >= 9 run of one polarity, score = SAD over the best run.
int ref_fast_score(const Image& img, int x, int y, int threshold) {
  int center = img.at(x, y);
  int bright = center + threshold;
  int dark = center - threshold;
  int cls[16];
  int vals[16];
  for (int i = 0; i < 16; ++i) {
    vals[i] = img.at(x + kRefRing[i][0], y + kRefRing[i][1]);
    cls[i] = vals[i] > bright ? 1 : (vals[i] < dark ? -1 : 0);
  }
  for (int polarity : {1, -1}) {
    int run = 0, best_run = 0, run_score = 0, best_score = 0;
    for (int i = 0; i < 32; ++i) {
      if (cls[i % 16] == polarity) {
        ++run;
        run_score += std::abs(vals[i % 16] - center);
        if (run > best_run) {
          best_run = run;
          best_score = run_score;
        }
        if (run >= 16) break;
      } else {
        run = 0;
        run_score = 0;
      }
    }
    if (best_run >= 9) return best_score;
  }
  return 0;
}

std::vector<Feature> ref_fast_detect(const Image& img, int threshold, int nms_radius) {
  std::vector<Feature> raw;
  for (int y = 3; y < img.height() - 3; ++y) {
    for (int x = 3; x < img.width() - 3; ++x) {
      int s = ref_fast_score(img, x, y, threshold);
      if (s > 0) raw.push_back({x, y, s});
    }
  }
  std::sort(raw.begin(), raw.end(),
            [](const Feature& a, const Feature& b) { return a.score > b.score; });
  std::vector<Feature> kept;
  std::vector<bool> suppressed(raw.size(), false);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (suppressed[i]) continue;
    kept.push_back(raw[i]);
    for (std::size_t j = i + 1; j < raw.size(); ++j) {
      if (suppressed[j]) continue;
      if (std::abs(raw[i].x - raw[j].x) <= nms_radius &&
          std::abs(raw[i].y - raw[j].y) <= nms_radius) {
        suppressed[j] = true;
      }
    }
  }
  return kept;
}

/// Reference Harris: all-double Sobel + brute-force window accumulation.
/// The library's integer pipeline is exact below 2^53, so converting at the
/// end must reproduce these doubles bit for bit.
std::vector<Feature> ref_harris_detect(const Image& img, const HarrisParams& params) {
  const int w = img.width(), h = img.height();
  if (w < 8 || h < 8) return {};
  std::vector<double> ix(static_cast<std::size_t>(w) * h, 0.0);
  std::vector<double> iy(static_cast<std::size_t>(w) * h, 0.0);
  for (int y = 1; y < h - 1; ++y) {
    for (int x = 1; x < w - 1; ++x) {
      double gx = -img.at(x - 1, y - 1) - 2.0 * img.at(x - 1, y) - img.at(x - 1, y + 1) +
                  img.at(x + 1, y - 1) + 2.0 * img.at(x + 1, y) + img.at(x + 1, y + 1);
      double gy = -img.at(x - 1, y - 1) - 2.0 * img.at(x, y - 1) - img.at(x + 1, y - 1) +
                  img.at(x - 1, y + 1) + 2.0 * img.at(x, y + 1) + img.at(x + 1, y + 1);
      ix[static_cast<std::size_t>(y) * w + x] = gx;
      iy[static_cast<std::size_t>(y) * w + x] = gy;
    }
  }
  const int r = params.window_radius;
  std::vector<Feature> raw;
  for (int y = 1 + r; y < h - 1 - r; ++y) {
    for (int x = 1 + r; x < w - 1 - r; ++x) {
      double sxx = 0, syy = 0, sxy = 0;
      for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
          double gx = ix[static_cast<std::size_t>(y + dy) * w + (x + dx)];
          double gy = iy[static_cast<std::size_t>(y + dy) * w + (x + dx)];
          sxx += gx * gx;
          syy += gy * gy;
          sxy += gx * gy;
        }
      }
      double det = sxx * syy - sxy * sxy;
      double trace = sxx + syy;
      double response = det - params.k * trace * trace;
      if (response > params.threshold) {
        raw.push_back({x, y, static_cast<int>(std::min(response / 1e4, 2.0e9))});
      }
    }
  }
  std::sort(raw.begin(), raw.end(),
            [](const Feature& a, const Feature& b) { return a.score > b.score; });
  std::vector<Feature> kept;
  std::vector<bool> suppressed(raw.size(), false);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (suppressed[i]) continue;
    kept.push_back(raw[i]);
    for (std::size_t j = i + 1; j < raw.size(); ++j) {
      if (!suppressed[j] && std::abs(raw[i].x - raw[j].x) <= params.nms_radius &&
          std::abs(raw[i].y - raw[j].y) <= params.nms_radius) {
        suppressed[j] = true;
      }
    }
  }
  return kept;
}

void expect_same_features(const std::vector<Feature>& got, const std::vector<Feature>& want,
                          const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].x, want[i].x) << label << " #" << i;
    EXPECT_EQ(got[i].y, want[i].y) << label << " #" << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " #" << i;
  }
}

// ---------------------------------------------------------------- goldens

TEST(SimdGolden, FastDetectMatchesScalarReferenceAcrossSizes) {
  // 333x241 is deliberately not a multiple of 16: the last vector block of
  // each row runs with a partial valid-lane mask.
  const struct { int w, h; std::uint64_t seed; } frames[] = {
      {320, 240, 1}, {640, 480, 2}, {1280, 960, 3}, {333, 241, 4}};
  for (const auto& f : frames) {
    Image img = seeded_scene(f.w, f.h, f.seed);
    expect_same_features(fast_detect(img, 20), ref_fast_detect(img, 20, 4), "fast/t20");
    expect_same_features(fast_detect(img, 7), ref_fast_detect(img, 7, 4), "fast/t7");
  }
}

TEST(SimdGolden, FastDetectExtremeThresholds) {
  Image img = seeded_scene(160, 120, 9);
  // threshold 0: every comparison is strict, maximum candidate density.
  expect_same_features(fast_detect(img, 0), ref_fast_detect(img, 0, 4), "fast/t0");
  // threshold 255: center+255 saturates; nothing can be brighter.
  expect_same_features(fast_detect(img, 255), ref_fast_detect(img, 255, 4), "fast/t255");
  // Out-of-u8-range thresholds take the scalar full-scan path.
  expect_same_features(fast_detect(img, 300), ref_fast_detect(img, 300, 4), "fast/t300");
  expect_same_features(fast_detect(img, -5), ref_fast_detect(img, -5, 4), "fast/t-5");
}

TEST(SimdGolden, BoxBlurMatchesNaiveReference) {
  const struct { int w, h; std::uint64_t seed; } frames[] = {
      {320, 240, 11}, {333, 241, 12}, {16, 16, 13}, {17, 3, 14}, {5, 5, 15}, {1, 1, 16}};
  for (const auto& f : frames) {
    Image img = seeded_scene(f.w, f.h, f.seed);
    for (int radius : {1, 2, 3}) {  // 1 and 2 are the SIMD paths, 3 generic
      Image got = box_blur(img, radius);
      Image want = ref_box_blur(img, radius);
      ASSERT_EQ(got.width(), want.width());
      ASSERT_EQ(got.height(), want.height());
      for (int y = 0; y < got.height(); ++y) {
        for (int x = 0; x < got.width(); ++x) {
          ASSERT_EQ(got.at(x, y), want.at(x, y))
              << f.w << "x" << f.h << " r=" << radius << " at " << x << "," << y;
        }
      }
    }
  }
}

TEST(SimdGolden, BoxBlurIntoReusesScratchExactly) {
  Image img = seeded_scene(333, 97, 21);
  Image dst;  // wrong-size scratch must be resized, then reused in place
  box_blur_into(img, 2, dst);
  Image want = box_blur(img, 2);
  ASSERT_EQ(dst.width(), want.width());
  ASSERT_EQ(dst.height(), want.height());
  EXPECT_TRUE(dst.data() == want.data());
  // Second pass into the warm scratch: same result, no reallocation needed.
  box_blur_into(img, 2, dst);
  EXPECT_TRUE(dst.data() == want.data());
}

TEST(SimdGolden, HarrisMatchesDoubleReference) {
  const struct { int w, h; std::uint64_t seed; } frames[] = {
      {320, 240, 31}, {640, 480, 32}, {333, 241, 33}};
  for (const auto& f : frames) {
    Image img = seeded_scene(f.w, f.h, f.seed);
    HarrisParams p;
    expect_same_features(harris_detect(img, p), ref_harris_detect(img, p), "harris/r1");
    p.window_radius = 2;
    expect_same_features(harris_detect(img, p), ref_harris_detect(img, p), "harris/r2");
  }
}

TEST(SimdGolden, DescriptorsIdenticalOnOddWidthFrames) {
  // Descriptor sampling walks raw row pointers; odd strides must not skew
  // the sample offsets. Self-consistency across an image copy catches any
  // dependence on allocation placement or stale padding.
  Image img = seeded_scene(333, 241, 41);
  Image copy = img;
  auto feats = fast_detect(img, 15);
  ASSERT_FALSE(feats.empty());
  auto a = brief_describe(img, feats);
  auto b = brief_describe(copy, feats);
  ASSERT_EQ(a.descriptors.size(), b.descriptors.size());
  for (std::size_t i = 0; i < a.descriptors.size(); ++i) {
    for (int w = 0; w < 4; ++w) {
      EXPECT_EQ(a.descriptors[i].bits[static_cast<std::size_t>(w)],
                b.descriptors[i].bits[static_cast<std::size_t>(w)]);
    }
  }
}

// ------------------------------------------------------ wrapper semantics

TEST(SimdWrapper, ByteOpsMatchScalarSemantics) {
  sim::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint8_t a[16], b[16];
    for (int i = 0; i < 16; ++i) {
      a[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      b[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const simd::U8x16 va = simd::U8x16::load(a);
    const simd::U8x16 vb = simd::U8x16::load(b);
    std::uint8_t out[16];
    simd::adds(va, vb).store(out);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], std::min(a[i] + b[i], 255));
    simd::subs(va, vb).store(out);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], std::max(a[i] - b[i], 0));
    simd::gt(va, vb).store(out);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], a[i] > b[i] ? 0xFF : 0x00);
    const std::uint32_t m = simd::movemask(simd::gt(va, vb));
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ((m >> i) & 1u, a[i] > b[i] ? 1u : 0u);
    }
  }
}

TEST(SimdWrapper, WordOpsMatchScalarSemantics) {
  sim::Rng rng(78);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint16_t a[8], b[8];
    for (int i = 0; i < 8; ++i) {
      a[i] = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
      b[i] = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    }
    const simd::U16x8 va = simd::U16x8::load(a);
    const simd::U16x8 vb = simd::U16x8::load(b);
    std::uint16_t out[8];
    simd::add(va, vb).store(out);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], static_cast<std::uint16_t>(a[i] + b[i]));
    simd::sub(va, vb).store(out);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], static_cast<std::uint16_t>(a[i] - b[i]));
    simd::mulhi(va, vb).store(out);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(out[i], static_cast<std::uint16_t>(
                            (static_cast<std::uint32_t>(a[i]) * b[i]) >> 16));
    }
    simd::shr<3>(va).store(out);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], a[i] >> 3);
  }
}

TEST(SimdWrapper, WidenPackRoundTrip) {
  std::uint8_t a[16];
  for (int i = 0; i < 16; ++i) a[i] = static_cast<std::uint8_t>(i * 16 + 3);
  const simd::U8x16 v = simd::U8x16::load(a);
  std::uint8_t out[16];
  simd::pack(simd::widen_lo(v), simd::widen_hi(v)).store(out);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], a[i]);
}

TEST(SimdWrapper, MagicDivisorsExactOverReachableRange) {
  // /9 via mulhi(v, 7282): exact for every v a radius-1 blur can produce
  // (9 * 255 = 2295). /25 via mulhi(v, 5243) >> 1: exact for every v a
  // radius-2 blur can produce (25 * 255 = 6375); verified far beyond, to the
  // first value where the naive (v * 2622) >> 16 form would already fail.
  for (std::uint32_t v = 0; v <= 2295; ++v) {
    const std::uint16_t q = static_cast<std::uint16_t>((v * 7282u) >> 16);
    ASSERT_EQ(q, v / 9) << v;
  }
  for (std::uint32_t v = 0; v <= 43674; ++v) {
    const std::uint16_t q = static_cast<std::uint16_t>(((v * 5243u) >> 16) >> 1);
    ASSERT_EQ(q, v / 25) << v;
  }
}

TEST(SimdWrapper, BackendNameIsDeclared) {
#if defined(ARNET_NO_SIMD)
  EXPECT_STREQ(simd::kBackendName, "scalar");
#else
  EXPECT_TRUE(simd::kBackendName != nullptr);
#endif
}

// --------------------------------------------------------- image layout

TEST(ImageLayout, StrideIsPaddedTo16AndDeterministic) {
  Image img(333, 3, 7);
  EXPECT_GE(img.stride(), img.width());
  EXPECT_EQ(img.stride() % 16, 0);
  // Padding bytes are part of the deterministic fill: two same-shape images
  // with identical pixels compare equal through data() (vision_test relies
  // on that for warp round-trips).
  Image other(333, 3, 7);
  EXPECT_TRUE(img.data() == other.data());
}

}  // namespace
