// Tests for the Figure 1 workload profiles and ARTP sub-priorities.
#include <gtest/gtest.h>

#include "arnet/mar/workloads.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/artp.hpp"

namespace arnet::mar {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(Workloads, FourUseCasesWithDistinctRequirements) {
  const auto& gaming = workload(MarUseCase::kGaming);
  const auto& memorial = workload(MarUseCase::kVirtualMemorial);
  const auto& orientation = workload(MarUseCase::kOrientation);
  const auto& art = workload(MarUseCase::kArt);

  // Gaming has the harshest budget and the hottest feed.
  EXPECT_LT(gaming.deadline, orientation.deadline);
  EXPECT_LT(gaming.deadline, memorial.deadline);
  EXPECT_GT(gaming.video.compressed_bps(), memorial.video.compressed_bps());
  EXPECT_GT(gaming.recognition_hz, art.recognition_hz);
  // Art and the memorial are asset-heavy, not frame-heavy.
  EXPECT_GT(art.db_object_bytes, gaming.db_object_bytes);
  EXPECT_GT(memorial.db_object_bytes, orientation.db_object_bytes);
}

TEST(Workloads, AppParamsReflectProfile) {
  const auto& g = workload(MarUseCase::kGaming);
  auto app = g.app_params();
  EXPECT_DOUBLE_EQ(app.fps, 60.0);
  EXPECT_EQ(app.deadline, milliseconds(50));
  EXPECT_EQ(app.object_bytes, g.db_object_bytes);
}

TEST(Workloads, OffloadConfigRunsEndToEnd) {
  for (auto uc : {MarUseCase::kOrientation, MarUseCase::kVirtualMemorial,
                  MarUseCase::kGaming, MarUseCase::kArt}) {
    sim::Simulator sim;
    net::Network net(sim, 5);
    auto c = net.add_node("c");
    auto s = net.add_node("s");
    net.connect(c, s, 30e6, milliseconds(5), 500);
    auto cfg = workload(uc).offload_config();
    OffloadSession session(net, c, s, cfg);
    session.start();
    sim.run_until(seconds(5));
    session.stop();
    EXPECT_GT(session.stats().results, 20) << to_string(uc);
  }
}

}  // namespace
}  // namespace arnet::mar

namespace arnet::transport {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(ArtpSubPriority, UrgentMessageOvertakesQueuedBacklog) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.connect(a, b, 2e6, milliseconds(5), 500);
  ArtpReceiver rx(net, b, 80);
  std::vector<std::uint32_t> order;
  rx.set_message_callback([&](const ArtpDelivery& d) {
    if (d.complete) order.push_back(d.frame_id);
  });
  ArtpSender tx(net, a, 1000, b, 80, 1, ArtpSenderConfig{});

  // Queue a deep backlog of ordinary messages, then one urgent message.
  for (std::uint32_t i = 0; i < 10; ++i) {
    ArtpMessageSpec m;
    m.bytes = 8000;
    m.tclass = net::TrafficClass::kFullBestEffort;
    m.priority = net::Priority::kMediumNoDrop;
    m.sub_priority = 128;
    m.frame_id = i;
    tx.send_message(m);
  }
  sim.at(milliseconds(40), [&] {
    ArtpMessageSpec urgent;
    urgent.bytes = 2000;
    urgent.tclass = net::TrafficClass::kFullBestEffort;
    urgent.priority = net::Priority::kMediumNoDrop;
    urgent.sub_priority = 1;
    urgent.frame_id = 999;
    tx.send_message(urgent);
  });
  sim.run_until(seconds(5));
  ASSERT_GE(order.size(), 11u);
  auto pos = std::find(order.begin(), order.end(), 999u) - order.begin();
  // The urgent message jumps most of the backlog (only the in-flight
  // message may precede it).
  EXPECT_LE(pos, 3);
}

TEST(ArtpSubPriority, NeverSplitsAMessageMidSend) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.connect(a, b, 2e6, milliseconds(5), 500);
  ArtpReceiver rx(net, b, 80);
  int incomplete = 0, complete = 0;
  rx.set_message_callback([&](const ArtpDelivery& d) {
    (d.complete ? complete : incomplete) += 1;
  });
  ArtpSender tx(net, a, 1000, b, 80, 1, ArtpSenderConfig{});
  // Interleave urgent submissions while big messages drain: no message may
  // end up incomplete (no chunk interleaving corruption, no expiry).
  for (int i = 0; i < 30; ++i) {
    sim.at(milliseconds(25) * i, [&tx, i] {
      ArtpMessageSpec m;
      m.bytes = 12'000;
      m.tclass = net::TrafficClass::kBestEffortLossRecovery;
      m.priority = net::Priority::kMediumNoDrop;
      m.sub_priority = 200;
      m.frame_id = static_cast<std::uint32_t>(i);
      tx.send_message(m);
    });
    sim.at(milliseconds(25) * i + milliseconds(7), [&tx, i] {
      ArtpMessageSpec u;
      u.bytes = 1000;
      u.tclass = net::TrafficClass::kBestEffortLossRecovery;
      u.priority = net::Priority::kMediumNoDrop;
      u.sub_priority = 10;
      u.frame_id = 1000 + static_cast<std::uint32_t>(i);
      tx.send_message(u);
    });
  }
  sim.run_until(seconds(10));
  EXPECT_EQ(incomplete, 0);
  EXPECT_EQ(complete, 60);
}

TEST(ArtpSubPriority, EqualSubPriorityKeepsFifo) {
  sim::Simulator sim;
  net::Network net(sim, 3);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.connect(a, b, 5e6, milliseconds(5), 500);
  ArtpReceiver rx(net, b, 80);
  std::vector<std::uint32_t> order;
  rx.set_message_callback([&](const ArtpDelivery& d) {
    if (d.complete) order.push_back(d.frame_id);
  });
  ArtpSender tx(net, a, 1000, b, 80, 1, ArtpSenderConfig{});
  for (std::uint32_t i = 0; i < 20; ++i) {
    ArtpMessageSpec m;
    m.bytes = 3000;
    m.tclass = net::TrafficClass::kFullBestEffort;
    m.priority = net::Priority::kMediumNoDrop;
    m.frame_id = i;
    tx.send_message(m);
  }
  sim.run_until(seconds(5));
  ASSERT_EQ(order.size(), 20u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

}  // namespace
}  // namespace arnet::transport
