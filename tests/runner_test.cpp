#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "arnet/check/determinism.hpp"
#include "arnet/net/network.hpp"
#include "arnet/obs/export.hpp"
#include "arnet/obs/registry.hpp"
#include "arnet/runner/experiment.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/tcp.hpp"

namespace arnet::runner {
namespace {

TEST(Runner, DeriveSeedIsDeterministicAndDecorrelated) {
  // Same (root, index) -> same seed; the per-run stream must not depend on
  // which worker thread picks the run up.
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_EQ(derive_seed(99, 7), derive_seed(99, 7));
  // Adjacent indices and adjacent roots must give well-separated seeds.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t root : {1ull, 2ull, 0xDEADBEEFull}) {
    for (std::uint64_t i = 0; i < 64; ++i) seeds.insert(derive_seed(root, i));
  }
  EXPECT_EQ(seeds.size(), 3u * 64u);
  // SplitMix64 finalization: no seed should be 0 or equal to its input.
  EXPECT_NE(derive_seed(0, 0), 0u);
}

TEST(Runner, ParseJobsFlag) {
  {
    const char* raw[] = {"bench", "--jobs", "4"};
    EXPECT_EQ(parse_jobs_flag(3, const_cast<char**>(raw), 1), 4);
  }
  {
    const char* raw[] = {"bench", "--jobs=8"};
    EXPECT_EQ(parse_jobs_flag(2, const_cast<char**>(raw), 1), 8);
  }
  {
    const char* raw[] = {"bench"};
    EXPECT_EQ(parse_jobs_flag(1, const_cast<char**>(raw), 3), 3);
  }
  {
    // 0 and negatives mean "use all cores".
    const char* raw[] = {"bench", "--jobs", "0"};
    EXPECT_EQ(parse_jobs_flag(3, const_cast<char**>(raw), 1),
              ExperimentRunner::hardware_jobs());
  }
}

TEST(Runner, MapReturnsResultsInRunIndexOrder) {
  ExperimentRunner::Config cfg;
  cfg.jobs = 8;
  ExperimentRunner pool(cfg);
  const std::size_t kRuns = 100;
  auto out = pool.map<std::uint64_t>(kRuns, [](RunContext& ctx) {
    return ctx.run_index * 10 + 1;
  });
  ASSERT_EQ(out.size(), kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) EXPECT_EQ(out[i], i * 10 + 1);
}

TEST(Runner, SeedsMatchDeriveSeedRegardlessOfJobs) {
  for (int jobs : {1, 8}) {
    ExperimentRunner::Config cfg;
    cfg.jobs = jobs;
    cfg.root_seed = 1234;
    ExperimentRunner pool(cfg);
    auto seeds = pool.map<std::uint64_t>(16, [](RunContext& ctx) { return ctx.seed; });
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      EXPECT_EQ(seeds[i], derive_seed(1234, i)) << "jobs=" << jobs << " run=" << i;
    }
  }
}

TEST(Runner, ExceptionInRunPropagatesToCaller) {
  ExperimentRunner::Config cfg;
  cfg.jobs = 4;
  ExperimentRunner pool(cfg);
  EXPECT_THROW(pool.for_each(16,
                             [](RunContext& ctx) {
                               if (ctx.run_index == 9) {
                                 throw std::runtime_error("run 9 failed");
                               }
                             }),
               std::runtime_error);
}

// One self-contained simulated TCP transfer; returns the strict
// (event + packet) trace fingerprint and fills per-run metrics.
std::uint64_t traced_run(RunContext& ctx) {
  sim::Simulator sim;
  check::TraceRecorder rec;
  rec.attach(sim);
  net::Network net(sim, static_cast<std::uint32_t>(ctx.seed % 1000));
  rec.attach(net);
  auto a = net.add_node("a");
  auto b = net.add_node("b");
  net.connect(a, b, 10e6, sim::milliseconds(5 + ctx.run_index % 3), 64);
  net.compute_routes();
  transport::TcpSink sink(net, b, 80);
  transport::TcpSource src(net, a, 1000, b, 80, 1);
  src.send(200'000);
  sim.run_until(sim::seconds(5));
  ctx.metrics.counter("runner.delivered_bytes", "sink").add(sink.received_bytes());
  ctx.metrics.histogram("runner.events", "sim")
      .record(static_cast<double>(sim.events_executed()));
  return rec.fingerprint();
}

std::string registry_jsonl(const obs::MetricsRegistry& reg) {
  std::ostringstream os;
  obs::write_jsonl(reg, os);
  return os.str();
}

TEST(Runner, ParallelRunsAreBitIdenticalToSerial) {
  // The tentpole determinism claim: per-run event/packet fingerprints and
  // the merged registry must not depend on --jobs.
  auto fingerprints = [](int jobs) {
    ExperimentRunner::Config cfg;
    cfg.jobs = jobs;
    cfg.root_seed = 77;
    ExperimentRunner pool(cfg);
    return pool.map<std::uint64_t>(12, [](RunContext& ctx) { return traced_run(ctx); });
  };
  auto serial = fingerprints(1);
  auto parallel = fingerprints(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "run " << i << " diverged under jobs=8";
  }
  // Different seeds must actually produce different traces (the fingerprints
  // would also agree trivially if every run were identical).
  std::set<std::uint64_t> distinct(serial.begin(), serial.end());
  EXPECT_GT(distinct.size(), 1u);
}

TEST(Runner, MergedRegistryIsIdenticalAcrossJobCounts) {
  auto merged = [](int jobs) {
    ExperimentRunner::Config cfg;
    cfg.jobs = jobs;
    cfg.root_seed = 77;
    ExperimentRunner pool(cfg);
    return pool.run_merged(8, [](RunContext& ctx) { (void)traced_run(ctx); });
  };
  auto serial = merged(1);
  auto parallel = merged(8);
  EXPECT_EQ(registry_jsonl(serial), registry_jsonl(parallel));
  // Merge semantics: counters add across runs.
  const auto* total = serial.find_counter("runner.delivered_bytes", "sink");
  ASSERT_NE(total, nullptr);
  EXPECT_GT(total->value(), 0);
  const auto* h = serial.find_histogram("runner.events", "sim");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 8);
}

TEST(Runner, ForEachRunsEveryIndexExactlyOnce) {
  ExperimentRunner::Config cfg;
  cfg.jobs = 8;
  ExperimentRunner pool(cfg);
  std::vector<std::atomic<int>> hits(64);
  pool.for_each(64, [&hits](RunContext& ctx) { hits[ctx.run_index].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

}  // namespace
}  // namespace arnet::runner
