#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "arnet/net/loss.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/artp.hpp"

namespace arnet::transport {
namespace {

using net::AppData;
using net::Link;
using net::Network;
using net::NodeId;
using net::Priority;
using net::TrafficClass;
using sim::milliseconds;
using sim::seconds;

struct ArtpPair {
  sim::Simulator sim;
  Network net{sim, 7};
  NodeId client, server;
  Link* up;
  Link* down;
  std::unique_ptr<ArtpReceiver> rx;
  std::unique_ptr<ArtpSender> tx;
  std::vector<ArtpDelivery> deliveries;

  ArtpPair(double up_bps, sim::Time delay, std::size_t queue_pkts, double up_loss = 0.0,
           ArtpSenderConfig scfg = {}) {
    client = net.add_node("client");
    server = net.add_node("server");
    Link::Config cu;
    cu.rate_bps = up_bps;
    cu.delay = delay;
    cu.queue_packets = queue_pkts;
    if (up_loss > 0) cu.loss = std::make_unique<net::BernoulliLoss>(up_loss);
    Link::Config cd;
    cd.rate_bps = up_bps;
    cd.delay = delay;
    cd.queue_packets = queue_pkts;
    auto [l1, l2] = net.connect(client, server, std::move(cu), std::move(cd));
    up = l1;
    down = l2;
    rx = std::make_unique<ArtpReceiver>(net, server, 80);
    rx->set_message_callback([this](const ArtpDelivery& d) { deliveries.push_back(d); });
    tx = std::make_unique<ArtpSender>(net, client, 1000, server, 80, 1, scfg);
  }

  int count(AppData app, bool complete_only = true) const {
    int n = 0;
    for (const auto& d : deliveries) {
      if (d.app == app && (!complete_only || d.complete)) ++n;
    }
    return n;
  }
};

ArtpMessageSpec spec(std::int64_t bytes, TrafficClass tc, Priority prio, AppData app,
                     std::uint32_t frame = 0) {
  ArtpMessageSpec s;
  s.bytes = bytes;
  s.tclass = tc;
  s.priority = prio;
  s.app = app;
  s.frame_id = frame;
  return s;
}

TEST(Artp, DeliversSingleChunkMessage) {
  ArtpPair p(10e6, milliseconds(10), 100);
  p.tx->send_message(spec(500, TrafficClass::kCriticalData, Priority::kHighest,
                          AppData::kConnectionMetadata));
  p.sim.run_until(seconds(1));
  ASSERT_EQ(p.deliveries.size(), 1u);
  const auto& d = p.deliveries[0];
  EXPECT_TRUE(d.complete);
  EXPECT_EQ(d.app, AppData::kConnectionMetadata);
  // Highest priority bypasses the pacer: latency ~ propagation + tx.
  EXPECT_LT(d.latency(), milliseconds(15));
}

TEST(Artp, ChunksAndReassemblesLargeMessage) {
  ArtpPair p(50e6, milliseconds(5), 1000);
  // 100 KB -> ~77 chunks at 1300 B payload.
  p.tx->send_message(spec(100'000, TrafficClass::kCriticalData, Priority::kHighest,
                          AppData::kVideoReferenceFrame, 1));
  p.sim.run_until(seconds(2));
  ASSERT_EQ(p.deliveries.size(), 1u);
  EXPECT_TRUE(p.deliveries[0].complete);
  EXPECT_NEAR(static_cast<double>(p.deliveries[0].bytes), 100'000, 2000);
}

TEST(Artp, PacedTrafficRespectsControllerRate) {
  ArtpPair p(10e6, milliseconds(10), 1000);
  // Offer ~4 Mb/s of low-priority traffic; initial controller rate is 1 Mb/s
  // and climbs. Early on, the backlog must be paced, not blasted.
  for (int i = 0; i < 100; ++i) {
    p.sim.at(milliseconds(i * 10), [&, i] {
      p.tx->send_message(spec(5000, TrafficClass::kFullBestEffort, Priority::kMediumNoDrop,
                              AppData::kSensorData, static_cast<std::uint32_t>(i)));
    });
  }
  p.sim.run_until(milliseconds(200));
  // At 1 Mb/s initial rate, at most ~25 KB can have left in 200 ms (plus one
  // burst allowance); well under the 100 KB offered by then.
  EXPECT_LT(p.tx->sent_bytes(), 60'000);
  p.sim.run_until(seconds(10));
  EXPECT_GT(p.count(AppData::kSensorData), 90);  // eventually all through
}

TEST(Artp, FecRecoversLossesWithoutRetransmission) {
  ArtpSenderConfig cfg;
  cfg.fec_parity = 2;
  ArtpPair p(20e6, milliseconds(10), 1000, /*loss=*/0.03, cfg);
  for (int i = 0; i < 200; ++i) {
    p.sim.at(milliseconds(i * 20), [&, i] {
      p.tx->send_message(spec(13'000, TrafficClass::kBestEffortLossRecovery,
                              Priority::kMediumNoDrop, AppData::kVideoReferenceFrame,
                              static_cast<std::uint32_t>(i)));
    });
  }
  p.sim.run_until(seconds(6));
  EXPECT_GT(p.rx->fec_recoveries(), 0);
  EXPECT_EQ(p.tx->retransmitted_chunks(), 0);
  // 10-chunk messages with 2 parity tolerate up to 2 losses: the vast
  // majority of messages must arrive complete.
  EXPECT_GT(p.count(AppData::kVideoReferenceFrame), 180);
}

TEST(Artp, FecDisabledMeansIncompleteMessagesExpire) {
  ArtpSenderConfig cfg;
  cfg.fec_parity = 0;
  ArtpPair p(20e6, milliseconds(10), 1000, /*loss=*/0.05, cfg);
  for (int i = 0; i < 100; ++i) {
    p.sim.at(milliseconds(i * 20), [&, i] {
      p.tx->send_message(spec(13'000, TrafficClass::kBestEffortLossRecovery,
                              Priority::kMediumNoDrop, AppData::kVideoInterFrame,
                              static_cast<std::uint32_t>(i)));
    });
  }
  p.sim.run_until(seconds(6));
  EXPECT_EQ(p.rx->fec_recoveries(), 0);
  EXPECT_GT(p.rx->expired_messages(), 0);
  int incomplete = 0;
  for (const auto& d : p.deliveries) {
    if (!d.complete) {
      ++incomplete;
      EXPECT_LT(d.completeness, 1.0);
      EXPECT_GT(d.completeness, 0.0);
    }
  }
  EXPECT_GT(incomplete, 0);
}

TEST(Artp, CriticalClassRecoversViaNacks) {
  ArtpPair p(20e6, milliseconds(10), 1000, /*loss=*/0.05);
  for (int i = 0; i < 100; ++i) {
    p.sim.at(milliseconds(i * 20), [&, i] {
      p.tx->send_message(spec(6500, TrafficClass::kCriticalData, Priority::kMediumNoDrop,
                              AppData::kConnectionMetadata, static_cast<std::uint32_t>(i)));
    });
  }
  p.sim.run_until(seconds(10));
  EXPECT_GT(p.tx->retransmitted_chunks(), 0);
  EXPECT_EQ(p.count(AppData::kConnectionMetadata), 100);  // all delivered
}

TEST(Artp, CriticalDeliveryIsInOrder) {
  ArtpPair p(20e6, milliseconds(10), 1000, /*loss=*/0.08);
  for (int i = 0; i < 80; ++i) {
    p.sim.at(milliseconds(i * 15), [&, i] {
      p.tx->send_message(spec(4000, TrafficClass::kCriticalData, Priority::kMediumNoDrop,
                              AppData::kConnectionMetadata, static_cast<std::uint32_t>(i)));
    });
  }
  p.sim.run_until(seconds(15));
  ASSERT_EQ(p.count(AppData::kConnectionMetadata), 80);
  std::uint64_t prev = 0;
  for (const auto& d : p.deliveries) {
    EXPECT_GT(d.msg_id, prev);  // strictly increasing
    prev = d.msg_id;
  }
}

TEST(Artp, GracefulDegradationShedsLowestFirst) {
  // 2 Mb/s bottleneck, offered ~6 Mb/s: lowest priority must be shed while
  // highest-priority metadata all gets through.
  ArtpPair p(2e6, milliseconds(10), 1000);
  for (int i = 0; i < 300; ++i) {
    p.sim.at(milliseconds(i * 20), [&, i] {
      p.tx->send_message(spec(200, TrafficClass::kCriticalData, Priority::kHighest,
                              AppData::kConnectionMetadata, static_cast<std::uint32_t>(i)));
      p.tx->send_message(spec(14'000, TrafficClass::kFullBestEffort, Priority::kLowest,
                              AppData::kVideoInterFrame, static_cast<std::uint32_t>(i)));
    });
  }
  p.sim.run_until(seconds(8));
  EXPECT_EQ(p.count(AppData::kConnectionMetadata), 300);
  EXPECT_GT(p.tx->shed_messages(), 50);
  EXPECT_LT(p.count(AppData::kVideoInterFrame), 250);
}

TEST(Artp, CongestionLevelRisesUnderOverload) {
  ArtpPair p(1e6, milliseconds(10), 1000);
  int max_level = 0;
  p.tx->set_qos_callback([&](const ArtpQosReport& r) { max_level = std::max(max_level, r.congestion_level); });
  for (int i = 0; i < 100; ++i) {
    p.sim.at(milliseconds(i * 10), [&, i] {
      p.tx->send_message(spec(10'000, TrafficClass::kFullBestEffort, Priority::kMediumNoDrop,
                              AppData::kSensorData, static_cast<std::uint32_t>(i)));
    });
  }
  p.sim.run_until(seconds(3));
  EXPECT_GE(max_level, 1);
}

TEST(Artp, DelayGradientKeepsQueueShort) {
  // Offered load exceeds the 5 Mb/s bottleneck; delay-gradient control must
  // keep the standing queue (and hence latency) small.
  ArtpPair p(5e6, milliseconds(10), 1000);
  for (int i = 0; i < 600; ++i) {
    p.sim.at(milliseconds(i * 10), [&, i] {
      p.tx->send_message(spec(10'000, TrafficClass::kFullBestEffort, Priority::kMediumNoDelay,
                              AppData::kVideoInterFrame, static_cast<std::uint32_t>(i)));
    });
  }
  p.sim.run_until(seconds(7));
  // Post-convergence deliveries stay fast: check p95-ish by counting.
  int slow = 0, total = 0;
  for (const auto& d : p.deliveries) {
    if (d.submitted_at < seconds(3)) continue;  // skip ramp-up
    ++total;
    if (d.latency() > milliseconds(120)) ++slow;
  }
  ASSERT_GT(total, 50);
  EXPECT_LT(static_cast<double>(slow) / total, 0.2);
}

TEST(Artp, LossAimdBloatsQueueComparedToDelayGradient) {
  auto run = [](std::unique_ptr<RateController> ctl) {
    ArtpSenderConfig cfg;
    std::vector<ArtpPathConfig> paths;
    ArtpPathConfig pc;
    pc.controller = std::move(ctl);
    paths.push_back(std::move(pc));
    sim::Simulator sim;
    Network net(sim, 7);
    NodeId c = net.add_node("c");
    NodeId s = net.add_node("s");
    net.connect(c, s, 5e6, milliseconds(10), /*bufferbloat*/ 2000);
    ArtpReceiver rx(net, s, 80);
    sim::Samples latency_ms;
    rx.set_message_callback([&](const ArtpDelivery& d) {
      if (d.submitted_at > seconds(4)) latency_ms.add(sim::to_milliseconds(d.latency()));
    });
    ArtpSender tx(net, c, 1000, s, 80, 1, cfg, std::move(paths));
    for (int i = 0; i < 1000; ++i) {
      sim.at(milliseconds(i * 10), [&tx, i] {
        ArtpMessageSpec m;
        m.bytes = 12'000;
        m.tclass = TrafficClass::kFullBestEffort;
        m.priority = Priority::kMediumNoDrop;
        m.app = AppData::kVideoInterFrame;
        m.frame_id = static_cast<std::uint32_t>(i);
        tx.send_message(m);
      });
    }
    sim.run_until(seconds(10));
    return latency_ms.percentile(0.9);
  };
  double dg = run(std::make_unique<DelayGradientController>());
  double la = run(std::make_unique<LossAimdController>());
  // Loss-based probing must fill the oversized buffer before backing off,
  // giving markedly higher tail latency than delay-gradient control.
  EXPECT_GT(la, 2.0 * dg);
}

struct MultipathFixture {
  sim::Simulator sim;
  Network net{sim, 11};
  NodeId client, ap, enb, server;
  Link* wifi_up;
  Link* lte_up;
  std::unique_ptr<ArtpReceiver> rx;
  std::unique_ptr<ArtpSender> tx;
  std::vector<ArtpDelivery> deliveries;

  explicit MultipathFixture(MultipathPolicy policy, bool duplicate_critical = false,
                            double wifi_loss = 0.0) {
    client = net.add_node("client");
    ap = net.add_node("ap");
    enb = net.add_node("enb");
    server = net.add_node("server");
    Link::Config wu;
    wu.rate_bps = 30e6;
    wu.delay = milliseconds(2);
    wu.queue_packets = 300;
    if (wifi_loss > 0) wu.loss = std::make_unique<net::BernoulliLoss>(wifi_loss);
    Link::Config wd;
    wd.rate_bps = 30e6;
    wd.delay = milliseconds(2);
    wd.queue_packets = 300;
    auto [w1, w2] = net.connect(client, ap, std::move(wu), std::move(wd));
    wifi_up = w1;
    (void)w2;
    net.connect(ap, server, 100e6, milliseconds(8), 1000);
    auto [l1, l2] = net.connect(client, enb, 20e6, milliseconds(25), 300);
    lte_up = l1;
    (void)l2;
    net.connect(enb, server, 100e6, milliseconds(10), 1000);

    rx = std::make_unique<ArtpReceiver>(net, server, 80);
    rx->set_message_callback([this](const ArtpDelivery& d) { deliveries.push_back(d); });

    ArtpSenderConfig cfg;
    cfg.policy = policy;
    cfg.duplicate_critical_on_two_paths = duplicate_critical;
    std::vector<ArtpPathConfig> paths;
    ArtpPathConfig p0;
    p0.first_hop = wifi_up;
    p0.name = "wifi";
    paths.push_back(std::move(p0));
    ArtpPathConfig p1;
    p1.first_hop = lte_up;
    p1.name = "lte";
    paths.push_back(std::move(p1));
    tx = std::make_unique<ArtpSender>(net, client, 1000, server, 80, 1, cfg, std::move(paths));
  }

  void offer_cbr(int count, sim::Time gap, std::int64_t bytes,
                 TrafficClass tc = TrafficClass::kFullBestEffort,
                 Priority prio = Priority::kMediumNoDrop) {
    for (int i = 0; i < count; ++i) {
      sim.at(gap * i, [this, bytes, tc, prio, i] {
        ArtpMessageSpec m;
        m.bytes = bytes;
        m.tclass = tc;
        m.priority = prio;
        m.app = AppData::kSensorData;
        m.frame_id = static_cast<std::uint32_t>(i);
        tx->send_message(m);
      });
    }
  }
};

TEST(ArtpMultipath, HandoverFailsOverWhenWifiDies) {
  MultipathFixture f(MultipathPolicy::kHandoverOnly);
  f.offer_cbr(600, milliseconds(10), 4000);
  f.sim.at(seconds(3), [&] { f.wifi_up->set_up(false); });
  f.sim.run_until(seconds(8));
  int before = 0, after = 0;
  for (const auto& d : f.deliveries) {
    if (d.submitted_at < seconds(3)) ++before;
    if (d.submitted_at > milliseconds(3500)) ++after;
  }
  EXPECT_GT(before, 100);
  EXPECT_GT(after, 100);  // traffic continued on LTE
  EXPECT_GT(f.tx->path_sent_bytes(1), 100'000);
}

TEST(ArtpMultipath, SinglePolicyStallsWhenWifiDies) {
  MultipathFixture f(MultipathPolicy::kSingle);
  f.offer_cbr(600, milliseconds(10), 4000);
  f.sim.at(seconds(3), [&] { f.wifi_up->set_up(false); });
  f.sim.run_until(seconds(8));
  int after = 0;
  for (const auto& d : f.deliveries) {
    if (d.submitted_at > milliseconds(3500)) ++after;
  }
  EXPECT_EQ(after, 0);  // naive single-homed client goes dark
  EXPECT_EQ(f.tx->path_sent_bytes(1), 0);
}

TEST(ArtpMultipath, AggregateUsesBothPaths) {
  MultipathFixture f(MultipathPolicy::kAggregate);
  f.offer_cbr(1000, milliseconds(5), 12'000);  // ~19 Mb/s offered
  f.sim.run_until(seconds(8));
  EXPECT_GT(f.tx->path_sent_bytes(0), 500'000);
  EXPECT_GT(f.tx->path_sent_bytes(1), 500'000);
}

TEST(ArtpMultipath, DuplicatedCriticalSurvivesLossyWifi) {
  MultipathFixture f(MultipathPolicy::kAggregate, /*duplicate_critical=*/true,
                     /*wifi_loss=*/0.3);
  for (int i = 0; i < 200; ++i) {
    f.sim.at(milliseconds(i * 20), [&f, i] {
      ArtpMessageSpec m;
      m.bytes = 800;
      m.tclass = TrafficClass::kCriticalData;
      m.priority = Priority::kHighest;
      m.app = AppData::kConnectionMetadata;
      m.frame_id = static_cast<std::uint32_t>(i);
      f.tx->send_message(m);
    });
  }
  f.sim.run_until(seconds(10));
  int complete = 0;
  for (const auto& d : f.deliveries) complete += d.complete ? 1 : 0;
  EXPECT_EQ(complete, 200);  // every critical message arrives
}

TEST(Artp, QosReportContainsPathDelay) {
  ArtpPair p(10e6, milliseconds(20), 100);
  sim::Time seen_owd = 0;
  p.tx->set_qos_callback([&](const ArtpQosReport& r) {
    if (r.min_path_owd > 0) seen_owd = r.min_path_owd;
  });
  for (int i = 0; i < 50; ++i) {
    p.sim.at(milliseconds(i * 20), [&, i] {
      p.tx->send_message(spec(2000, TrafficClass::kFullBestEffort, Priority::kMediumNoDrop,
                              AppData::kSensorData, static_cast<std::uint32_t>(i)));
    });
  }
  p.sim.run_until(seconds(3));
  EXPECT_GT(seen_owd, milliseconds(18));
  EXPECT_LT(seen_owd, milliseconds(80));
}

}  // namespace
}  // namespace arnet::transport
