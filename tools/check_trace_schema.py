#!/usr/bin/env python3
"""Sanity-check arnet trace artifacts (Perfetto JSON, flight JSONL, pcap-ng).

Usage: check_trace_schema.py FILE [FILE...]

Dispatches on extension:
  .json    Chrome/Perfetto trace-event file: a traceEvents list whose events
           carry valid phases (X duration / i instant / M metadata), numeric
           microsecond timestamps, and the arnet-trace-v1 schema tag in
           otherData.
  .jsonl   Flight-recorder dump: a header line (schema, cause, ring
           accounting), event lines, and a final end line whose count matches
           the events written.
  .pcapng  pcap-ng capture: SHB magic, 4-byte-aligned blocks whose trailing
           length echoes the leading one, exactly one interface, and at least
           one Enhanced Packet Block.

Fails (exit 1) on the first structural problem per file so CI catches a
broken exporter instead of archiving garbage artifacts. stdlib only.
"""
import json
import struct
import sys

VALID_PHASES = {"X", "i", "M"}
SCHEMA = "arnet-trace-v1"


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return 1


def check_perfetto(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "empty or missing traceEvents list")
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != SCHEMA:
        return fail(path, f"otherData.schema != {SCHEMA!r}")

    phases = {p: 0 for p in VALID_PHASES}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in VALID_PHASES:
            return fail(path, f"traceEvents[{i}]: unexpected phase {ph!r}")
        phases[ph] += 1
        if not isinstance(e.get("name"), str) or not e["name"]:
            return fail(path, f"traceEvents[{i}]: missing name")
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(path, f"traceEvents[{i}]: bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(path, f"traceEvents[{i}]: duration event with bad dur {dur!r}")
    if phases["M"] == 0:
        return fail(path, "no entity metadata (M) events")
    print(f"{path}: OK ({len(events)} events: "
          f"{phases['X']} spans, {phases['i']} instants, {phases['M']} metadata)")
    return 0


def check_flight(path):
    try:
        with open(path) as f:
            lines = [l for l in (line.strip() for line in f) if l]
    except OSError as e:
        return fail(path, f"unreadable: {e}")
    if len(lines) < 2:
        return fail(path, "needs at least a header and an end line")

    try:
        docs = [json.loads(l) for l in lines]
    except json.JSONDecodeError as e:
        return fail(path, f"invalid JSONL: {e}")

    header, body, end = docs[0], docs[1:-1], docs[-1]
    if header.get("kind") != "header":
        return fail(path, f"first line kind {header.get('kind')!r}, expected 'header'")
    if header.get("schema") != SCHEMA:
        return fail(path, f"header schema != {SCHEMA!r}")
    if not isinstance(header.get("cause"), str) or not header["cause"]:
        return fail(path, "header missing cause")
    if end.get("kind") != "end":
        return fail(path, f"last line kind {end.get('kind')!r}, expected 'end'")

    events = 0
    for i, e in enumerate(body):
        if e.get("kind") != "event":
            return fail(path, f"line {i + 2}: kind {e.get('kind')!r}, expected 'event'")
        if not isinstance(e.get("t_ns"), int):
            return fail(path, f"line {i + 2}: missing integer t_ns")
        events += 1
    if end.get("events") != events:
        return fail(path, f"end line says {end.get('events')} events, file has {events}")
    print(f"{path}: OK (cause {header['cause']!r}, {events} events)")
    return 0


SHB_TYPE = 0x0A0D0D0A
BYTE_ORDER_MAGIC = 0x1A2B3C4D
IDB_TYPE = 1
EPB_TYPE = 6


def check_pcapng(path):
    try:
        with open(path, "rb") as f:
            buf = f.read()
    except OSError as e:
        return fail(path, f"unreadable: {e}")
    if len(buf) < 28:
        return fail(path, "too short for a section header block")

    u32 = lambda off: struct.unpack_from("<I", buf, off)[0]
    if u32(0) != SHB_TYPE:
        return fail(path, f"bad SHB type 0x{u32(0):08X}")
    if u32(8) != BYTE_ORDER_MAGIC:
        return fail(path, f"bad byte-order magic 0x{u32(8):08X}")

    off, counts = 0, {SHB_TYPE: 0, IDB_TYPE: 0, EPB_TYPE: 0}
    while off < len(buf):
        if off + 12 > len(buf):
            return fail(path, f"truncated block header at offset {off}")
        btype, blen = u32(off), u32(off + 4)
        if blen % 4 != 0 or blen < 12:
            return fail(path, f"block at {off}: bad length {blen}")
        if off + blen > len(buf):
            return fail(path, f"block at {off}: length {blen} overruns file")
        if u32(off + blen - 4) != blen:
            return fail(path, f"block at {off}: trailing length mismatch")
        counts[btype] = counts.get(btype, 0) + 1
        off += blen

    if counts[SHB_TYPE] != 1:
        return fail(path, f"expected exactly one SHB, found {counts[SHB_TYPE]}")
    if counts[IDB_TYPE] != 1:
        return fail(path, f"expected exactly one interface block, found {counts[IDB_TYPE]}")
    if counts[EPB_TYPE] == 0:
        return fail(path, "no Enhanced Packet Blocks (empty capture)")
    print(f"{path}: OK ({counts[EPB_TYPE]} packets)")
    return 0


def check_file(path):
    if path.endswith(".jsonl"):
        return check_flight(path)
    if path.endswith(".json"):
        return check_perfetto(path)
    if path.endswith(".pcapng") or path.endswith(".pcap"):
        return check_pcapng(path)
    return fail(path, "unknown artifact extension (.json/.jsonl/.pcapng)")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= check_file(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
