#!/usr/bin/env python3
"""Sanity-check arnet trace artifacts (Perfetto JSON, flight JSONL, pcap-ng).

Usage: check_trace_schema.py FILE [FILE...]

Dispatches on extension:
  .json    Chrome/Perfetto trace-event file: a traceEvents list whose events
           carry valid phases (X duration / i instant / M metadata), numeric
           microsecond timestamps, and the arnet-trace-v1 schema tag in
           otherData.
  .jsonl   Dispatched on the first line's schema tag:
             arnet-trace-v1   flight-recorder dump: a header line (schema,
                              cause, ring accounting), event lines, and a
                              final end line whose count matches the events
             arnet-slo-v1     SLO log: meta, per-objective summary with its
                              alert transitions and burn timeline, end line
             arnet-sample-v1  tail-sampled traces: meta, per-run summary
                              with frame/span/note lines, end line
  .pcapng  pcap-ng capture: SHB magic, 4-byte-aligned blocks whose trailing
           length echoes the leading one, exactly one interface, and at least
           one Enhanced Packet Block.

Fails (exit 1) on the first structural problem per file so CI catches a
broken exporter instead of archiving garbage artifacts. stdlib only.
"""
import json
import struct
import sys

VALID_PHASES = {"X", "i", "M"}
SCHEMA = "arnet-trace-v1"
SLO_SCHEMA = "arnet-slo-v1"
SAMPLE_SCHEMA = "arnet-sample-v1"
SLO_STATES = {"ok", "slow-burn", "fast-burn"}
SAMPLE_VERDICTS = {"miss", "drop", "outlier", "reservoir"}


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return 1


def check_perfetto(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(path, "empty or missing traceEvents list")
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != SCHEMA:
        return fail(path, f"otherData.schema != {SCHEMA!r}")

    phases = {p: 0 for p in VALID_PHASES}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in VALID_PHASES:
            return fail(path, f"traceEvents[{i}]: unexpected phase {ph!r}")
        phases[ph] += 1
        if not isinstance(e.get("name"), str) or not e["name"]:
            return fail(path, f"traceEvents[{i}]: missing name")
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(path, f"traceEvents[{i}]: bad ts {ts!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(path, f"traceEvents[{i}]: duration event with bad dur {dur!r}")
    if phases["M"] == 0:
        return fail(path, "no entity metadata (M) events")
    print(f"{path}: OK ({len(events)} events: "
          f"{phases['X']} spans, {phases['i']} instants, {phases['M']} metadata)")
    return 0


def check_flight(path):
    try:
        with open(path) as f:
            lines = [l for l in (line.strip() for line in f) if l]
    except OSError as e:
        return fail(path, f"unreadable: {e}")
    if len(lines) < 2:
        return fail(path, "needs at least a header and an end line")

    try:
        docs = [json.loads(l) for l in lines]
    except json.JSONDecodeError as e:
        return fail(path, f"invalid JSONL: {e}")

    header, body, end = docs[0], docs[1:-1], docs[-1]
    if header.get("kind") != "header":
        return fail(path, f"first line kind {header.get('kind')!r}, expected 'header'")
    if header.get("schema") != SCHEMA:
        return fail(path, f"header schema != {SCHEMA!r}")
    if not isinstance(header.get("cause"), str) or not header["cause"]:
        return fail(path, "header missing cause")
    if end.get("kind") != "end":
        return fail(path, f"last line kind {end.get('kind')!r}, expected 'end'")

    events = 0
    for i, e in enumerate(body):
        if e.get("kind") != "event":
            return fail(path, f"line {i + 2}: kind {e.get('kind')!r}, expected 'event'")
        if not isinstance(e.get("t_ns"), int):
            return fail(path, f"line {i + 2}: missing integer t_ns")
        events += 1
    if end.get("events") != events:
        return fail(path, f"end line says {end.get('events')} events, file has {events}")
    print(f"{path}: OK (cause {header['cause']!r}, {events} events)")
    return 0


def load_jsonl(path):
    try:
        with open(path) as f:
            lines = [l for l in (line.strip() for line in f) if l]
    except OSError as e:
        raise ValueError(f"unreadable: {e}")
    try:
        return [json.loads(l) for l in lines]
    except json.JSONDecodeError as e:
        raise ValueError(f"invalid JSONL: {e}")


def check_slo(path, docs):
    meta, body, end = docs[0], docs[1:-1], docs[-1]
    if end.get("kind") != "end":
        return fail(path, f"last line kind {end.get('kind')!r}, expected 'end'")
    objectives, alerts = 0, 0
    entities = set()
    for i, d in enumerate(body):
        kind = d.get("kind")
        entity = d.get("entity")
        if not entity:
            return fail(path, f"line {i + 2}: missing entity")
        if kind == "objective":
            objectives += 1
            entities.add(entity)
            if not 0.0 < d.get("objective", 0) < 1.0:
                return fail(path, f"line {i + 2}: objective outside (0, 1)")
            if d.get("good", -1) < 0 or d.get("miss", -1) < 0:
                return fail(path, f"line {i + 2}: negative good/miss counts")
            if d.get("state") not in SLO_STATES:
                return fail(path, f"line {i + 2}: bad state {d.get('state')!r}")
        elif kind in ("alert", "burn"):
            if entity not in entities:
                return fail(path, f"line {i + 2}: {kind} precedes its objective line")
            if not isinstance(d.get("t_ns"), int):
                return fail(path, f"line {i + 2}: missing integer t_ns")
            if d.get("state") not in SLO_STATES:
                return fail(path, f"line {i + 2}: bad state {d.get('state')!r}")
            alerts += kind == "alert"
        else:
            return fail(path, f"line {i + 2}: unknown kind {kind!r}")
    if meta.get("objectives") != objectives or end.get("objectives") != objectives:
        return fail(path, f"objective count mismatch: meta {meta.get('objectives')}, "
                          f"end {end.get('objectives')}, file has {objectives}")
    if end.get("alerts") != alerts:
        return fail(path, f"end line says {end.get('alerts')} alerts, file has {alerts}")
    print(f"{path}: OK ({objectives} objectives, {alerts} alerts)")
    return 0


def check_samples(path, docs):
    meta, body, end = docs[0], docs[1:-1], docs[-1]
    del meta
    if end.get("kind") != "end":
        return fail(path, f"last line kind {end.get('kind')!r}, expected 'end'")
    runs = 0
    run_scope = None
    frame_spans_left = 0  # span lines owed by the last frame line
    for i, d in enumerate(body):
        kind = d.get("kind")
        if kind == "run":
            runs += 1
            run_scope = d.get("scope")
            if not run_scope:
                return fail(path, f"line {i + 2}: run missing scope")
            retained = d.get("retained", -1)
            counts = [d.get(k, -1) for k in
                      ("miss", "drop", "outlier", "reservoir", "evicted")]
            if retained < 0 or any(c < 0 for c in counts):
                return fail(path, f"line {i + 2}: negative retention counters")
            if sum(counts[:4]) - counts[4] != retained:
                return fail(path, f"line {i + 2}: retained {retained} != "
                                  f"verdict counts minus evictions")
            if d.get("spans", 0) > d.get("span_budget", 0):
                return fail(path, f"line {i + 2}: spans over span_budget")
            continue
        if run_scope is None or d.get("scope") != run_scope:
            return fail(path, f"line {i + 2}: {kind} outside its run scope")
        if kind == "frame":
            if frame_spans_left:
                return fail(path, f"line {i + 2}: previous frame is "
                                  f"{frame_spans_left} span lines short")
            if d.get("verdict") not in SAMPLE_VERDICTS:
                return fail(path, f"line {i + 2}: bad verdict {d.get('verdict')!r}")
            if not isinstance(d.get("trace"), int) or d["trace"] == 0:
                return fail(path, f"line {i + 2}: bad trace id")
            frame_spans_left = d.get("spans", 0)
        elif kind == "span":
            if frame_spans_left <= 0:
                return fail(path, f"line {i + 2}: span line without a frame")
            if not isinstance(d.get("t_ns"), int):
                return fail(path, f"line {i + 2}: missing integer t_ns")
            if not d.get("event"):
                return fail(path, f"line {i + 2}: missing event kind")
            frame_spans_left -= 1
        elif kind == "note":
            if not isinstance(d.get("t_ns"), int) or not d.get("reason"):
                return fail(path, f"line {i + 2}: note missing t_ns/reason")
        else:
            return fail(path, f"line {i + 2}: unknown kind {kind!r}")
    if frame_spans_left:
        return fail(path, f"last frame is {frame_spans_left} span lines short")
    if end.get("runs") != runs:
        return fail(path, f"end line says {end.get('runs')} runs, file has {runs}")
    print(f"{path}: OK ({runs} runs)")
    return 0


def check_jsonl(path):
    try:
        docs = load_jsonl(path)
    except ValueError as e:
        return fail(path, str(e))
    if len(docs) < 2:
        return fail(path, "needs at least a header and an end line")
    schema = docs[0].get("schema")
    if schema == SLO_SCHEMA:
        return check_slo(path, docs)
    if schema == SAMPLE_SCHEMA:
        return check_samples(path, docs)
    if schema == SCHEMA:
        return check_flight(path)
    return fail(path, f"unknown JSONL schema {schema!r}")


SHB_TYPE = 0x0A0D0D0A
BYTE_ORDER_MAGIC = 0x1A2B3C4D
IDB_TYPE = 1
EPB_TYPE = 6


def check_pcapng(path):
    try:
        with open(path, "rb") as f:
            buf = f.read()
    except OSError as e:
        return fail(path, f"unreadable: {e}")
    if len(buf) < 28:
        return fail(path, "too short for a section header block")

    u32 = lambda off: struct.unpack_from("<I", buf, off)[0]
    if u32(0) != SHB_TYPE:
        return fail(path, f"bad SHB type 0x{u32(0):08X}")
    if u32(8) != BYTE_ORDER_MAGIC:
        return fail(path, f"bad byte-order magic 0x{u32(8):08X}")

    off, counts = 0, {SHB_TYPE: 0, IDB_TYPE: 0, EPB_TYPE: 0}
    while off < len(buf):
        if off + 12 > len(buf):
            return fail(path, f"truncated block header at offset {off}")
        btype, blen = u32(off), u32(off + 4)
        if blen % 4 != 0 or blen < 12:
            return fail(path, f"block at {off}: bad length {blen}")
        if off + blen > len(buf):
            return fail(path, f"block at {off}: length {blen} overruns file")
        if u32(off + blen - 4) != blen:
            return fail(path, f"block at {off}: trailing length mismatch")
        counts[btype] = counts.get(btype, 0) + 1
        off += blen

    if counts[SHB_TYPE] != 1:
        return fail(path, f"expected exactly one SHB, found {counts[SHB_TYPE]}")
    if counts[IDB_TYPE] != 1:
        return fail(path, f"expected exactly one interface block, found {counts[IDB_TYPE]}")
    if counts[EPB_TYPE] == 0:
        return fail(path, "no Enhanced Packet Blocks (empty capture)")
    print(f"{path}: OK ({counts[EPB_TYPE]} packets)")
    return 0


def check_file(path):
    if path.endswith(".jsonl"):
        return check_jsonl(path)
    if path.endswith(".json"):
        return check_perfetto(path)
    if path.endswith(".pcapng") or path.endswith(".pcap"):
        return check_pcapng(path)
    return fail(path, "unknown artifact extension (.json/.jsonl/.pcapng)")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= check_file(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
