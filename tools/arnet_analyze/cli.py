"""arnet-analyze command line.

    python3 tools/arnet_analyze [--root DIR] [PATH...] \
        [--baseline FILE] [--write-baseline FILE] [--json FILE] [--list-rules]

PATHs default to `src bench tests` and are resolved relative to --root
(default: the repo root inferred from this package's location), so the ctest
gate can run from build/ with stable root-relative finding paths.

Exit codes: 0 clean, 1 findings / stale baseline / stale or malformed
suppressions, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import baseline as baseline_mod
from . import lexer, report, suppress
from .rules import ALL_RULES, Context, Finding, rule_catalog

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}


def collect_files(root: Path, paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for arg in paths:
        p = (root / arg) if not Path(arg).is_absolute() else Path(arg)
        if p.is_dir():
            files.extend(sorted(
                f for f in p.rglob("*") if f.suffix in SOURCE_SUFFIXES))
        elif p.is_file():
            files.append(p)
        else:
            print(f"arnet-analyze: no such path: {arg}", file=sys.stderr)
            return []
    return files


def analyze(root: Path, files: list[Path]):
    """Run every applicable rule over every file.

    Returns (active_findings, suppression_set, files_scanned)."""
    ctx = Context(root)
    findings: list[Finding] = []
    supp_sets = []
    for f in files:
        rel = f.relative_to(root).as_posix() if f.is_relative_to(root) \
            else f.as_posix()
        lexed = lexer.lex(rel, f.read_text(encoding="utf-8", errors="replace"))
        supp = suppress.collect(lexed)
        supp_sets.append(supp)
        for rule in ALL_RULES:
            if not rule.applies(rel):
                continue
            for finding in rule.check(lexed, ctx):
                if not supp.try_suppress(rel, finding.line, finding.rule):
                    findings.append(finding)
    return findings, suppress.merge(supp_sets), len(files)


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="arnet-analyze", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: src bench tests)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: inferred from the package path)")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON; matching findings are not active")
    ap.add_argument("--write-baseline", default=None, metavar="FILE",
                    help="write the active findings as a new baseline and exit 0")
    ap.add_argument("--json", default=None, metavar="FILE",
                    help="write the arnet-analyze-v1 findings report")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    try:
        args = ap.parse_args(argv)
    except SystemExit as e:
        return 2 if e.code not in (0,) else 0

    if args.list_rules:
        for r in rule_catalog():
            print(f"{r['id']:22s} {r['description']}")
        return 0

    root = Path(args.root).resolve() if args.root \
        else Path(__file__).resolve().parents[2]
    paths = args.paths or ["src", "bench", "tests"]
    files = collect_files(root, paths)
    if not files:
        print("arnet-analyze: nothing to scan", file=sys.stderr)
        return 2

    findings, supp, files_scanned = analyze(root, files)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))

    # Suppression hygiene: a justification is mandatory, and a suppression
    # that matched nothing is itself a finding.
    for file, line, why in supp.malformed:
        findings.append(Finding(file=file, line=line, rule="bad-suppression",
                                message=why, snippet=""))
    for s in supp.stale():
        findings.append(Finding(
            file=s.file, line=s.comment_line, rule="stale-suppression",
            message=(f"suppression for {','.join(s.rules)} matched no "
                     "finding; remove it"),
            snippet=""))

    if args.write_baseline:
        # Suppression hygiene is never baselined: a bad or stale NOLINT must
        # be fixed at the annotation, not carried as debt.
        baselinable = [f for f in findings
                       if f.rule not in ("bad-suppression", "stale-suppression")]
        Path(args.write_baseline).write_text(baseline_mod.dump(baselinable),
                                             encoding="utf-8")
        print(f"arnet-analyze: wrote baseline with {len(baselinable)} "
              f"finding(s) to {args.write_baseline}")
        return 0

    baselined = 0
    stale_baseline: list[str] = []
    if args.baseline:
        try:
            base = baseline_mod.load(args.baseline)
        except (OSError, ValueError, KeyError) as e:
            print(f"arnet-analyze: cannot load baseline: {e}", file=sys.stderr)
            return 2
        active = []
        for f in findings:
            if f.rule not in ("bad-suppression", "stale-suppression") \
                    and base.try_consume(f):
                baselined += 1
            else:
                active.append(f)
        findings = active
        for (file, rule, snippet), n in base.stale():
            stale_baseline.append(
                f"stale baseline entry: {file} [{rule}] {snippet!r} x{n} "
                "matched nothing; remove it")

    for f in findings:
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}")
        if f.snippet:
            print(f"    {f.snippet}")
    for msg in stale_baseline:
        print(msg)

    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            report.render([str(p) for p in paths], files_scanned, findings,
                          baselined, sum(1 for s in supp.suppressions if s.used)),
            encoding="utf-8")

    used = sum(1 for s in supp.suppressions if s.used)
    if findings or stale_baseline:
        print(f"\narnet-analyze: {len(findings)} active finding(s), "
              f"{len(stale_baseline)} stale baseline entr(y/ies) "
              f"in {files_scanned} files")
        return 1
    print(f"arnet-analyze: clean ({files_scanned} files, {baselined} "
          f"baselined, {used} justified suppression(s) in use)")
    return 0
