"""`NOLINT-arnet` suppression handling.

Grammar (inside any comment):

    // NOLINT-arnet(rule[,rule...]): justification
    // NOLINTNEXTLINE-arnet(rule[,rule...]): justification

A suppression *must* carry a non-empty justification after the colon; one
without it does not suppress anything and instead raises a `bad-suppression`
finding (which itself cannot be suppressed). A suppression that matches no
finding raises `stale-suppression` so dead annotations cannot rot in place —
same posture as the retired lint_determinism allowlist.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .lexer import LexedFile

_PATTERN = re.compile(
    r"(?P<next>NOLINTNEXTLINE-arnet|NOLINT-arnet)"
    r"\(\s*(?P<rules>[a-z0-9_,\s-]*)\s*\)"
    r"(?P<colon>\s*:\s*(?P<reason>.*))?"
)


@dataclass
class Suppression:
    file: str
    comment_line: int   # line the annotation sits on
    target_line: int    # line whose findings it suppresses
    rules: tuple[str, ...]
    reason: str
    used: bool = False


@dataclass
class SuppressionSet:
    suppressions: list[Suppression] = field(default_factory=list)
    malformed: list[tuple[str, int, str]] = field(default_factory=list)  # file, line, why

    def try_suppress(self, file: str, line: int, rule: str) -> bool:
        for s in self.suppressions:
            if s.file == file and s.target_line == line and rule in s.rules:
                s.used = True
                return True
        return False

    def stale(self) -> list[Suppression]:
        return [s for s in self.suppressions if not s.used]


def collect(lexed: LexedFile) -> SuppressionSet:
    out = SuppressionSet()
    for line, text in sorted(lexed.comments.items()):
        for m in _PATTERN.finditer(text):
            rules = tuple(r.strip() for r in m.group("rules").split(",") if r.strip())
            reason = (m.group("reason") or "").strip()
            if not rules:
                out.malformed.append(
                    (lexed.path, line, "suppression names no rules"))
                continue
            if not reason:
                out.malformed.append(
                    (lexed.path, line,
                     "suppression lacks a justification (`: reason` is required)"))
                continue
            target = line + 1 if m.group("next").startswith("NOLINTNEXTLINE") else line
            out.suppressions.append(Suppression(
                file=lexed.path, comment_line=line, target_line=target,
                rules=rules, reason=reason))
        # Catch the annotation spelled without parentheses at all.
        if "NOLINT-arnet" in text and not _PATTERN.search(text):
            out.malformed.append(
                (lexed.path, line,
                 "malformed NOLINT-arnet (expected `NOLINT-arnet(rule): reason`)"))
    return out


def merge(sets: list[SuppressionSet]) -> SuppressionSet:
    merged = SuppressionSet()
    for s in sets:
        merged.suppressions.extend(s.suppressions)
        merged.malformed.extend(s.malformed)
    return merged
