"""Entry point: `python3 tools/arnet_analyze [args...]`.

Running the package as a *directory* puts the package dir itself on
sys.path[0]; bootstrap the parent so relative imports resolve either way.
"""

import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from arnet_analyze.cli import main
else:
    from .cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
