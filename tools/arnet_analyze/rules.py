"""Rule registry for arnet-analyze.

Each rule walks the token stream of one lexed file and yields Findings.
Rules are deliberately repo-specific: they encode the determinism contract
that makes `--jobs N` runs byte-identical to serial runs (DESIGN.md §8) and
the release-build semantics of the check macros (DESIGN.md §6).

Path scoping: determinism rules apply to `src/` (the simulation stack);
hygiene rules extend to `bench/` and `tests/`. Bench harness code measures
wall time by design (json_bench), so the wall-clock rule does not gate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .lexer import LexedFile, Token, balanced_span


@dataclass(frozen=True)
class Finding:
    file: str
    line: int
    rule: str
    message: str
    snippet: str

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift, code content does not."""
        return (self.file, self.rule, " ".join(self.snippet.split()))


class Context:
    """Cross-file facts a rule may need (repo header graph for include
    hygiene). Lazily built; stdlib only."""

    def __init__(self, root):
        self.root = root
        self._header_map: Optional[dict[str, object]] = None
        self._include_cache: dict[str, tuple[set[str], set[str]]] = {}

    def header_map(self) -> dict[str, object]:
        """Map 'arnet/mod/x.hpp' -> absolute Path for every public header."""
        if self._header_map is None:
            m = {}
            for p in sorted((self.root / "src").glob("*/include/arnet/*/*.hpp")):
                m[p.relative_to(p.parents[2]).as_posix()] = p
            self._header_map = m
        return self._header_map

    def direct_includes(self, rel_arnet: str) -> tuple[set[str], set[str]]:
        """(std_includes, arnet_includes) of one repo header."""
        if rel_arnet in self._include_cache:
            return self._include_cache[rel_arnet]
        std: set[str] = set()
        arnet: set[str] = set()
        path = self.header_map().get(rel_arnet)
        if path is not None:
            std, arnet = parse_includes(path.read_text(encoding="utf-8",
                                                       errors="replace"))
        self._include_cache[rel_arnet] = (std, arnet)
        return std, arnet

    def closure_std_includes(self, std: set[str], arnet: set[str]) -> set[str]:
        """All std headers visible through the arnet include closure."""
        seen_std = set(std)
        seen_arnet: set[str] = set()
        work = list(arnet)
        while work:
            h = work.pop()
            if h in seen_arnet:
                continue
            seen_arnet.add(h)
            s, a = self.direct_includes(h)
            seen_std |= s
            work.extend(a - seen_arnet)
        return seen_std


def parse_includes(text: str) -> tuple[set[str], set[str]]:
    std: set[str] = set()
    arnet: set[str] = set()
    for line in text.splitlines():
        ls = line.strip()
        if not ls.startswith("#include"):
            continue
        rest = ls[len("#include"):].strip()
        if rest.startswith("<") and rest.endswith(">"):
            std.add(rest[1:-1])
        elif rest.startswith('"') and rest.endswith('"'):
            inner = rest[1:-1]
            if inner.startswith("arnet/"):
                arnet.add(inner)
    return std, arnet


class Rule:
    id: str = ""
    description: str = ""

    def applies(self, path: str) -> bool:
        raise NotImplementedError

    def check(self, lexed: LexedFile, ctx: Context) -> Iterable[Finding]:
        raise NotImplementedError

    def _finding(self, lexed: LexedFile, line: int, message: str) -> Finding:
        return Finding(file=lexed.path, line=line, rule=self.id,
                       message=message, snippet=lexed.line_text(line).strip())


def _prev_text(tokens: list[Token], i: int) -> str:
    return tokens[i - 1].text if i > 0 else ""


def _next_text(tokens: list[Token], i: int) -> str:
    return tokens[i + 1].text if i + 1 < len(tokens) else ""


# --------------------------------------------------------------- wall-clock

class WallClockRule(Rule):
    id = "wall-clock"
    description = ("Wall-clock reads in sim-path code: simulated time must "
                   "come from sim::Simulator::now(); real time enters only "
                   "through the SimProfiler clock-injection seam.")

    CLOCK_TYPES = {"system_clock", "steady_clock", "high_resolution_clock"}
    CLOCK_CALLS = {"gettimeofday", "clock_gettime", "getrusage", "ftime",
                   "timespec_get"}
    # The profiler takes an injected WallClockFn precisely so the rest of
    # src/ never names a clock; the seam itself may document the types.
    SEAM = ("src/trace/include/arnet/trace/profiler.hpp",
            "src/trace/profiler.cpp")

    def applies(self, path: str) -> bool:
        return path.startswith("src/") and path not in self.SEAM

    def check(self, lexed: LexedFile, ctx: Context) -> Iterable[Finding]:
        toks = lexed.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident":
                continue
            if t.text in self.CLOCK_TYPES:
                yield self._finding(
                    lexed, t.line,
                    f"std::chrono::{t.text} in sim-path code; use "
                    "sim::Simulator::now() (real time enters only via the "
                    "SimProfiler injection seam)")
            elif t.text in self.CLOCK_CALLS and _next_text(toks, i) == "(":
                yield self._finding(
                    lexed, t.line,
                    f"{t.text}() reads the wall clock; use "
                    "sim::Simulator::now()")
            elif (t.text == "time" and _next_text(toks, i) == "("
                  and _prev_text(toks, i) not in (".", "->", "::")):
                close = balanced_span(toks, i + 1)
                if close is not None and close == i + 3 \
                        and toks[i + 2].text in ("NULL", "nullptr", "0"):
                    yield self._finding(
                        lexed, t.line,
                        "time(NULL) reads the wall clock; use "
                        "sim::Simulator::now()")


# ------------------------------------------------------- ambient-randomness

class AmbientRandomnessRule(Rule):
    id = "ambient-randomness"
    description = ("Unseeded randomness (std::random_device, rand(), "
                   "srand(), *rand48): all randomness must flow from a "
                   "seeded sim::Rng stream or derive_seed.")

    CALLS = {"rand", "srand", "drand48", "lrand48", "mrand48", "srand48",
             "random", "srandom", "getentropy"}

    def applies(self, path: str) -> bool:
        return path.startswith(("src/", "bench/", "tests/", "examples/"))

    def check(self, lexed: LexedFile, ctx: Context) -> Iterable[Finding]:
        toks = lexed.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident":
                continue
            if t.text == "random_device":
                yield self._finding(
                    lexed, t.line,
                    "std::random_device is nondeterministic; seed a "
                    "sim::Rng from derive_seed instead")
            elif (t.text in self.CALLS and _next_text(toks, i) == "("
                  and _prev_text(toks, i) not in (".", "->", "::")):
                yield self._finding(
                    lexed, t.line,
                    f"{t.text}() draws from ambient process state; route "
                    "through a seeded sim::Rng stream")


# ---------------------------------------------------------- rng-discipline

class RngDisciplineRule(Rule):
    id = "rng-discipline"
    description = ("Every Rng / std::mt19937 construction must be fed from "
                   "derive_seed, a fork, or a named seed parameter so each "
                   "stream's derivation path is auditable.")

    ENGINES = {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
               "default_random_engine", "ranlux24", "ranlux48", "knuth_b"}
    # Idents that mark a seed expression as disciplined. Substring match,
    # case-insensitive: `seed`, `root_seed`, `kSeed`, `derive_seed`,
    # `engine_()`, `next_u64()`, a parent `rng`, a fork.
    OK_MARKERS = ("seed", "fork", "engine", "next_u64", "rng", "hash")

    def applies(self, path: str) -> bool:
        return path.startswith(("src/", "bench/", "tests/", "examples/"))

    def check(self, lexed: LexedFile, ctx: Context) -> Iterable[Finding]:
        toks = lexed.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident" or (t.text != "Rng" and
                                     t.text not in self.ENGINES):
                continue
            if _next_text(toks, i) == "::":  # Rng::something, not a build
                continue
            j = i + 1
            var_name = None
            if j < len(toks) and toks[j].kind == "ident":
                var_name = toks[j].text
                j += 1
            if j >= len(toks):
                continue
            opener = toks[j].text
            if opener == ";" and var_name is not None:
                # `std::mt19937 gen;` default-seeds the engine: every such
                # stream is identical, a guaranteed seed collision. Class
                # members are seeded in the ctor init list; skip those.
                scope = lexed.scopes[i] if i < len(lexed.scopes) else ()
                if t.text in self.ENGINES and (not scope or
                                               scope[-1] != "class"):
                    yield self._finding(
                        lexed, t.line,
                        f"default-constructed {t.text} uses the fixed "
                        "default seed (all such streams collide); feed it "
                        "from derive_seed or a named seed")
                continue
            if opener not in ("(", "{"):
                continue
            close = balanced_span(toks, j, opener,
                                  ")" if opener == "(" else "}")
            if close is None:
                continue
            args = toks[j + 1:close]
            if not args:
                continue
            if self._args_declare_params(args):
                continue  # function/ctor declaration, not a construction
            if self._args_disciplined(args):
                continue
            yield self._finding(
                lexed, t.line,
                f"{t.text} constructed from an expression with no seed "
                "provenance; feed it derive_seed(...), a fork, or a "
                "parameter named *seed*")

    @staticmethod
    def _args_declare_params(args: list[Token]) -> bool:
        # `Rng fork(std::string_view label)`-style parameter lists have two
        # consecutive identifiers (type then name) or cv/ref qualifiers.
        for k in range(len(args) - 1):
            if args[k].kind == "ident" and args[k + 1].kind == "ident":
                return True
            if args[k].text in ("const", "&", "&&") and \
                    args[k + 1].kind == "ident":
                return True
        return False

    def _args_disciplined(self, args: list[Token]) -> bool:
        if all(a.kind in ("number", "punct") for a in args):
            return True  # literal seed: deterministic by construction
        for a in args:
            if a.kind == "ident":
                low = a.text.lower()
                if any(m in low for m in self.OK_MARKERS):
                    return True
        return False


# ------------------------------------------------------ unordered-container

class UnorderedContainerRule(Rule):
    id = "unordered-container"
    description = ("Hash-ordered containers: banned outright in src/ "
                   "(iteration order is not reproducible); in bench/tests "
                   "only iteration over one is flagged.")

    UNORDERED = {"unordered_map", "unordered_multimap", "unordered_set",
                 "unordered_multiset"}

    def applies(self, path: str) -> bool:
        return path.startswith(("src/", "bench/", "tests/", "examples/"))

    def check(self, lexed: LexedFile, ctx: Context) -> Iterable[Finding]:
        toks = lexed.tokens
        strict = lexed.path.startswith("src/")
        unordered_vars: set[str] = set()
        for i, t in enumerate(toks):
            if t.kind == "ident" and t.text in self.UNORDERED:
                if strict:
                    yield self._finding(
                        lexed, t.line,
                        f"std::{t.text} in src/: iteration order depends on "
                        "hash seeding and allocation history; use "
                        "std::map/std::set or sort before iterating")
                # Record declared variable names for the iteration check.
                j = i + 1
                if j < len(toks) and toks[j].text == "<":
                    close = balanced_span(toks, j, "<", ">")
                    if close is not None:
                        j = close + 1
                if j < len(toks) and toks[j].kind == "ident":
                    unordered_vars.add(toks[j].text)
        if strict:
            return
        # Range-for or explicit .begin() iteration over an unordered var.
        for i, t in enumerate(toks):
            if t.kind == "ident" and t.text in unordered_vars:
                nxt = _next_text(toks, i)
                prev = _prev_text(toks, i)
                if prev == ":" and self._in_range_for(toks, i):
                    yield self._finding(
                        lexed, t.line,
                        f"iterating unordered container `{t.text}`: order "
                        "is nondeterministic; sort keys first if the loop "
                        "feeds any artifact")
                elif nxt in (".",) and i + 2 < len(toks) and \
                        toks[i + 2].text in ("begin", "cbegin"):
                    yield self._finding(
                        lexed, t.line,
                        f"iterator sweep over unordered container "
                        f"`{t.text}`: order is nondeterministic")

    @staticmethod
    def _in_range_for(toks: list[Token], i: int) -> bool:
        # `for ( decl : var )` — scan back for `for` within a few tokens of
        # the opening paren.
        depth = 0
        for k in range(i - 1, max(-1, i - 40), -1):
            t = toks[k].text
            if t == ")":
                depth += 1
            elif t == "(":
                if depth == 0:
                    return k > 0 and toks[k - 1].text == "for"
                depth -= 1
        return False


# ------------------------------------------------------------ pointer-order

class PointerOrderRule(Rule):
    id = "pointer-order"
    description = ("Pointer-keyed ordered containers or std::hash over a "
                   "pointer: ordering/hashing follows ASLR'd addresses; key "
                   "on a stable id instead.")

    def applies(self, path: str) -> bool:
        return path.startswith(("src/", "bench/", "tests/", "examples/"))

    def check(self, lexed: LexedFile, ctx: Context) -> Iterable[Finding]:
        toks = lexed.tokens
        keyed_first = {"map", "multimap", "unordered_map", "unordered_multimap"}
        keyed_whole = {"set", "multiset", "unordered_set", "unordered_multiset",
                       "hash", "less", "greater"}
        for i, t in enumerate(toks):
            if t.kind != "ident" or _next_text(toks, i) != "<":
                continue
            if t.text not in keyed_first and t.text not in keyed_whole:
                continue
            if _prev_text(toks, i) != "::":  # only std:: / qualified forms
                continue
            close = balanced_span(toks, i + 1, "<", ">")
            if close is None:
                continue
            inner = toks[i + 2:close]
            key_toks = inner
            if t.text in keyed_first:
                key_toks = self._first_arg(inner)
            if self._has_top_level_ptr(key_toks):
                what = ("key type" if t.text in keyed_first else
                        "element/argument type")
                yield self._finding(
                    lexed, t.line,
                    f"std::{t.text} with a pointer {what}: comparison/hash "
                    "order follows ASLR'd addresses and changes every run; "
                    "key on a stable id")

    @staticmethod
    def _first_arg(inner: list[Token]) -> list[Token]:
        depth = 0
        for k, t in enumerate(inner):
            if t.text in ("<", "(", "["):
                depth += 1
            elif t.text in (">", ")", "]"):
                depth -= 1
            elif t.text == "," and depth == 0:
                return inner[:k]
        return inner

    @staticmethod
    def _has_top_level_ptr(key_toks: list[Token]) -> bool:
        depth = 0
        for t in key_toks:
            if t.text in ("<", "(", "["):
                depth += 1
            elif t.text in (">", ")", "]"):
                depth -= 1
            elif t.text == "*" and depth == 0:
                return True
        return False


# -------------------------------------------------------- assert-side-effect

class AssertSideEffectRule(Rule):
    id = "assert-side-effect"
    description = ("Side-effecting expression inside ARNET_ASSERT: the "
                   "macro compiles out under ARNET_DISABLE_ASSERTS "
                   "(microbenchmark builds), so the side effect silently "
                   "disappears with it.")

    MUTATING_PUNCT = {"++", "--", "=", "+=", "-=", "*=", "/=", "%=", "&=",
                      "|=", "^=", "<<=", ">>="}
    MUTATING_CALLS = {"insert", "erase", "push_back", "pop_back", "pop_front",
                      "push_front", "emplace", "emplace_back", "emplace_front",
                      "clear", "reset", "release", "store", "exchange",
                      "fetch_add", "fetch_sub", "advance", "pop", "push",
                      "send", "schedule", "cancel", "next_u64", "uniform",
                      "uniform_int", "bernoulli", "exponential", "normal",
                      "fork", "next", "tick", "step", "consume"}

    def applies(self, path: str) -> bool:
        return path.startswith(("src/", "bench/", "tests/", "examples/"))

    def check(self, lexed: LexedFile, ctx: Context) -> Iterable[Finding]:
        toks = lexed.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.text != "ARNET_ASSERT":
                continue
            if _next_text(toks, i) != "(":
                continue
            close = balanced_span(toks, i + 1)
            if close is None:
                continue
            cond = self._condition(toks[i + 2:close])
            why = self._side_effect(cond)
            if why:
                yield self._finding(
                    lexed, t.line,
                    f"ARNET_ASSERT condition {why}; the expression vanishes "
                    "under ARNET_DISABLE_ASSERTS — hoist the side effect "
                    "out of the macro (ARNET_CHECK is always-on if the "
                    "effect is intended)")

    @staticmethod
    def _condition(inner: list[Token]) -> list[Token]:
        depth = 0
        for k, t in enumerate(inner):
            if t.text in ("(", "[", "{"):
                depth += 1
            elif t.text in (")", "]", "}"):
                depth -= 1
            elif t.text == "," and depth == 0:
                return inner[:k]
        return inner

    def _side_effect(self, cond: list[Token]) -> Optional[str]:
        for k, t in enumerate(cond):
            if t.kind == "punct" and t.text in self.MUTATING_PUNCT:
                return f"contains mutation `{t.text}`"
            if (t.kind == "ident" and t.text in self.MUTATING_CALLS
                    and k > 0 and cond[k - 1].text in (".", "->")
                    and k + 1 < len(cond) and cond[k + 1].text == "("):
                return f"calls mutating `{t.text}()`"
        return None


# ---------------------------------------------------- global-mutable-state

class GlobalMutableStateRule(Rule):
    id = "global-mutable-state"
    description = ("Mutable namespace-scope state outside the registered "
                   "singletons: process-global state leaks across "
                   "ExperimentRunner workers and across same-seed runs.")

    # The blessed process-global singletons. Every entry carries a reviewed
    # justification; a stale entry (matching nothing) fails the run so the
    # registry cannot rot — the same posture as the retired lint's allowlist.
    REGISTERED_SINGLETONS: dict[tuple[str, str], str] = {
        ("src/check/assert.cpp", "g_policy"):
            "process-wide check FailPolicy; atomic, set at scenario setup",
        ("src/check/assert.cpp", "g_failures"):
            "monotonic failure counter; atomic",
        ("src/check/assert.cpp", "g_hook_mu"):
            "mutex guarding the failure hook",
        ("src/check/assert.cpp", "g_hook"):
            "failure hook installed single-threaded at setup (DESIGN.md §6)",
        ("src/check/rng_audit.cpp", "g_auditor"):
            "RNG auditor activation seam; atomic pointer, test-scoped",
        ("src/check/hash_canary.cpp", "g_hash_seed"):
            "hash-canary perturbation seed; atomic, set once from env",
        ("src/check/hash_canary.cpp", "g_hash_seed_once"):
            "std::once_flag for the single getenv read",
    }

    # "inline" is deliberately absent: an inline namespace-scope variable in
    # a header is exactly the mutable-global hazard this rule exists for.
    SKIP_LEAD = {"using", "typedef", "extern", "template", "friend",
                 "static_assert", "namespace", "concept", "enum", "class",
                 "struct", "union", "return"}

    def applies(self, path: str) -> bool:
        return path.startswith("src/")

    def check(self, lexed: LexedFile, ctx: Context) -> Iterable[Finding]:
        toks = lexed.tokens
        scopes = lexed.scopes
        used_singletons: set[tuple[str, str]] = set()
        stmt_start = 0
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if not all(s == "namespace" for s in scopes[i]):
                i += 1
                stmt_start = i
                continue
            if t.text == ";" and t.kind == "punct":
                stmt = toks[stmt_start:i]
                f = self._check_statement(lexed, stmt, used_singletons)
                if f is not None:
                    yield f
                stmt_start = i + 1
            elif t.text == "{" and t.kind == "punct":
                # Distinguish a scope-opening brace (namespace/class/function
                # body — ends the statement) from a brace *initializer* of a
                # namespace-scope variable (`std::atomic<X> g{...};` — part
                # of the statement).
                pushed = (scopes[i + 1][-1]
                          if i + 1 < n and len(scopes[i + 1]) > len(scopes[i])
                          else "block")
                if pushed in ("init", "block"):
                    close = balanced_span(toks, i, "{", "}")
                    if close is not None:
                        i = close  # keep accumulating the same statement
                    else:
                        stmt_start = i + 1
                else:
                    stmt_start = i + 1
            elif t.text == "}" and t.kind == "punct":
                stmt_start = i + 1
            i += 1
        for key, _just in self.REGISTERED_SINGLETONS.items():
            if key[0] == lexed.path and key not in used_singletons:
                yield Finding(
                    file=lexed.path, line=1, rule=self.id,
                    message=(f"stale singleton-registry entry "
                             f"`{key[1]}`: it matches no namespace-scope "
                             "variable in this file; remove it from "
                             "REGISTERED_SINGLETONS"),
                    snippet=key[1])

    def _check_statement(self, lexed: LexedFile, stmt: list[Token],
                         used: set[tuple[str, str]]) -> Optional[Finding]:
        if not stmt:
            return None
        texts = [t.text for t in stmt]
        if stmt[0].text.startswith("#"):
            return None
        if any(x in self.SKIP_LEAD for x in texts[:3]):
            return None
        if "constexpr" in texts or "consteval" in texts or "constinit" in texts:
            return None
        if "const" in texts:
            return None  # accepts the rare const-pointer-to-mutable; fine
        if "operator" in texts:
            return None
        # A top-level `(` before any `=`/`{` means a function declaration.
        depth = 0
        for t in stmt:
            if t.text in ("{", "["):
                depth += 1
            elif t.text in ("}", "]"):
                depth -= 1
            elif depth == 0 and t.text == "=":
                break
            elif depth == 0 and t.text == "(":
                return None
        # Variable name: last ident before `;`, `=`, or `{`.
        name = None
        for t in stmt:
            if t.text in ("=", "{"):
                break
            if t.kind == "ident":
                name = t.text
        if name is None:
            return None
        key = (lexed.path, name)
        if key in self.REGISTERED_SINGLETONS:
            used.add(key)
            return None
        return self._finding(
            lexed, stmt[0].line,
            f"mutable namespace-scope state `{name}`: process-global state "
            "leaks across ExperimentRunner workers and same-seed runs; make "
            "it const/constexpr, scope it to the scenario, or register it "
            "as a reviewed singleton in GlobalMutableStateRule")


# -------------------------------------------------------- missing-include

class MissingIncludeRule(Rule):
    id = "missing-include"
    description = ("Public-header include hygiene: every std:: symbol a "
                   "src/*/include header uses must be provided by a header "
                   "it (or its arnet include closure) includes directly.")

    # std::<symbol> -> acceptable providing headers. Curated to symbols with
    # unambiguous homes; `size_t` accepts the two headers the repo uses.
    PROVIDERS: dict[str, tuple[str, ...]] = {
        "vector": ("vector",), "string": ("string",),
        "string_view": ("string_view",), "map": ("map",),
        "multimap": ("map",), "set": ("set",), "multiset": ("set",),
        "array": ("array",), "deque": ("deque",), "list": ("list",),
        "queue": ("queue",), "priority_queue": ("queue",),
        "optional": ("optional",), "nullopt": ("optional",),
        "variant": ("variant",), "tuple": ("tuple",),
        "function": ("functional",), "reference_wrapper": ("functional",),
        "unique_ptr": ("memory",), "shared_ptr": ("memory",),
        "weak_ptr": ("memory",), "make_unique": ("memory",),
        "make_shared": ("memory",), "atomic": ("atomic",),
        "mutex": ("mutex",), "lock_guard": ("mutex",),
        "scoped_lock": ("mutex",), "unique_lock": ("mutex",),
        "call_once": ("mutex",), "once_flag": ("mutex",),
        "condition_variable": ("condition_variable",),
        "thread": ("thread",), "this_thread": ("thread",),
        "chrono": ("chrono",), "pair": ("utility", "map"),
        "make_pair": ("utility",), "move": ("utility",),
        "forward": ("utility",), "exchange": ("utility",),
        "sort": ("algorithm",), "stable_sort": ("algorithm",),
        "lower_bound": ("algorithm",), "upper_bound": ("algorithm",),
        "nth_element": ("algorithm",), "max_element": ("algorithm",),
        "min_element": ("algorithm",), "min": ("algorithm",),
        "max": ("algorithm",), "clamp": ("algorithm",),
        "find_if": ("algorithm",), "remove_if": ("algorithm",),
        "accumulate": ("numeric",), "iota": ("numeric",),
        "numeric_limits": ("limits",),
        "uint8_t": ("cstdint",), "uint16_t": ("cstdint",),
        "uint32_t": ("cstdint",), "uint64_t": ("cstdint",),
        "int8_t": ("cstdint",), "int16_t": ("cstdint",),
        "int32_t": ("cstdint",), "int64_t": ("cstdint",),
        "size_t": ("cstddef", "cstdint"),
        "ptrdiff_t": ("cstddef",), "byte": ("cstddef",),
        "ostringstream": ("sstream",), "istringstream": ("sstream",),
        "stringstream": ("sstream",),
        "ofstream": ("fstream",), "ifstream": ("fstream",),
        "fstream": ("fstream",),
        "ostream": ("ostream", "iostream", "sstream", "fstream", "iosfwd"),
        "istream": ("istream", "iostream", "sstream", "fstream", "iosfwd"),
        "cout": ("iostream",), "cerr": ("iostream",),
        "runtime_error": ("stdexcept",), "logic_error": ("stdexcept",),
        "invalid_argument": ("stdexcept",), "out_of_range": ("stdexcept",),
        "to_string": ("string",),
        "mt19937": ("random",), "mt19937_64": ("random",),
        "uniform_real_distribution": ("random",),
        "uniform_int_distribution": ("random",),
        "bernoulli_distribution": ("random",),
        "exponential_distribution": ("random",),
        "normal_distribution": ("random",),
        "poisson_distribution": ("random",),
        "initializer_list": ("initializer_list",),
        "bitset": ("bitset",), "span": ("span",),
    }

    def applies(self, path: str) -> bool:
        return path.startswith("src/") and "/include/arnet/" in path \
            and path.endswith(".hpp")

    def check(self, lexed: LexedFile, ctx: Context) -> Iterable[Finding]:
        has_pragma = any(
            t.text.startswith("#") and "pragma" in t.text and "once" in t.text
            for t in lexed.tokens)
        if not has_pragma:
            yield self._finding(lexed, 1,
                                "public header lacks `#pragma once`")
        std, arnet = parse_includes("\n".join(lexed.lines))
        visible = ctx.closure_std_includes(std, arnet)
        toks = lexed.tokens
        reported: set[str] = set()
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.text != "std":
                continue
            if _next_text(toks, i) != "::" or i + 2 >= len(toks):
                continue
            sym = toks[i + 2].text
            if sym in reported or sym not in self.PROVIDERS:
                continue
            if not any(p in visible for p in self.PROVIDERS[sym]):
                reported.add(sym)
                want = self.PROVIDERS[sym][0]
                yield self._finding(
                    lexed, t.line,
                    f"uses std::{sym} but neither this header nor its arnet "
                    f"include closure includes <{want}>")


ALL_RULES: list[Rule] = [
    WallClockRule(), AmbientRandomnessRule(), RngDisciplineRule(),
    UnorderedContainerRule(), PointerOrderRule(), AssertSideEffectRule(),
    GlobalMutableStateRule(), MissingIncludeRule(),
]

# Meta-rules raised by the driver, not by a Rule subclass.
META_RULES: dict[str, str] = {
    "bad-suppression": ("NOLINT-arnet annotation without the required "
                        "`: justification` (or naming no rules)."),
    "stale-suppression": ("NOLINT-arnet annotation that suppressed nothing; "
                          "remove it so dead suppressions cannot rot."),
}


def rule_catalog() -> list[dict[str, str]]:
    cat = [{"id": r.id, "description": " ".join(r.description.split())}
           for r in ALL_RULES]
    cat.extend({"id": k, "description": " ".join(v.split())}
               for k, v in sorted(META_RULES.items()))
    return cat
