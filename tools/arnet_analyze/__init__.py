"""arnet-analyze: determinism- and concurrency-aware static analysis for arnet.

Every figure and table this repo reproduces comes out of a discrete-event
simulator whose runs must be byte-identical between serial and `--jobs N`
execution. The invariants that make that possible (seeded `derive_seed` RNG
streams, no wall-clock or address-dependent behavior in src/, ordered
containers on fingerprint paths, side-effect-free ARNET_ASSERTs) are enforced
at runtime by the determinism harness — this package enforces them *before*
the code compiles.

Layout:
  lexer.py    — C++ lexer: comments/strings/raw-strings stripped, tokens with
                file:line, scope classification (namespace/class/function)
  rules.py    — rule registry; each rule walks the token stream of one file
  suppress.py — `// NOLINT-arnet(rule): reason` handling (reason required)
  baseline.py — committed-findings baseline for incremental adoption
  report.py   — `arnet-analyze-v1` JSON findings report
  cli.py      — entry point (also reachable as `python3 tools/arnet_analyze`)

Exit codes: 0 clean, 1 findings (or stale baseline/suppressions), 2 usage.
"""

__version__ = "1.0"

SCHEMA_ID = "arnet-analyze-v1"
BASELINE_SCHEMA_ID = "arnet-analyze-baseline-v1"
