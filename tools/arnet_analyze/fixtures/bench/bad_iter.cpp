// Fixture: bench-scope rules. Unordered containers are legal here (bench
// harness code is off the fingerprint path) — but *iterating* one feeds
// hash-order into whatever artifact the loop builds.
#include <cstdio>
#include <string>
#include <unordered_map>

namespace demo_bench {

void report() {
  std::unordered_map<std::string, double> by_name;  // ok in bench: no iteration yet
  by_name["a"] = 1.0;
  for (const auto& kv : by_name) {  // VIOLATION unordered-container
    std::printf("%s %f\n", kv.first.c_str(), kv.second);
  }
  auto it = by_name.begin();  // VIOLATION unordered-container
  (void)it;
}

// Wall-clock is NOT flagged in bench scope: the harness measures real time.
long stamp();

}  // namespace demo_bench
