// Fixture: a clean test file — literal seeds, ordered containers, pure
// assertions. Must produce zero findings.
#include <cstdint>
#include <map>
#include <random>

namespace demo_test {

void deterministic_case() {
  std::mt19937_64 engine(42);  // ok: literal seed
  std::map<std::uint64_t, int> hits;
  hits[engine()] += 1;
}

}  // namespace demo_test
