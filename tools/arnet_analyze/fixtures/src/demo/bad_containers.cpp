// Fixture: unordered-container (blanket ban in src/) and pointer-order
// (address-dependent ordering/hashing) violations.
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace demo {

struct Session {
  std::uint64_t id = 0;
};

// VIOLATION unordered-container: hash-ordered container in src/.
std::unordered_map<std::string, int> tally_by_name();

// VIOLATION pointer-order: comparator sorts by ASLR'd address.
using SessionsByPtr = std::map<Session*, int>;

// VIOLATION pointer-order: set of pointers, same hazard.
std::set<const Session*> live_sessions();

// VIOLATION pointer-order: hashing an address.
std::size_t session_hash(Session* s) { return std::hash<Session*>{}(s); }

// ok: value types keyed on a stable id; pointer *values* are fine.
std::map<std::uint64_t, Session*> sessions_by_id();
std::vector<Session*> session_list();

}  // namespace demo
