// Fixture: side-effecting ARNET_ASSERT conditions (the macro compiles out
// under ARNET_DISABLE_ASSERTS) and the suppression grammar.
#include <deque>
#include <vector>

#define ARNET_ASSERT(cond, ...) ((void)(cond))
#define ARNET_CHECK(cond, ...) ((void)(cond))

namespace demo {

int drain(std::deque<int>& q, std::vector<int>& log, int budget) {
  int seen = 0;
  ARNET_ASSERT(++seen <= budget, "budget exceeded");  // VIOLATION assert-side-effect
  ARNET_ASSERT(!q.empty(), "queue underflow");        // ok: pure observation
  ARNET_ASSERT((seen = budget) > 0, "oops");          // VIOLATION assert-side-effect
  log.push_back(seen);
  // ARNET_CHECK is always-on; a side effect there is legal (if ugly).
  ARNET_CHECK(log.size() > 0, "log empty");
  // Justified suppression: accounted as used, not a finding.
  ARNET_ASSERT(q.front() == log.back() && seen++ >= 0, "x");  // NOLINT-arnet(assert-side-effect): fixture exercises a justified suppression
  // VIOLATION bad-suppression: no justification after the colon.
  ARNET_ASSERT(--seen >= 0, "y");  // NOLINT-arnet(assert-side-effect):
  // VIOLATION stale-suppression: suppresses a rule that never fires here.
  int clean = budget;  // NOLINT-arnet(wall-clock): nothing on this line reads a clock
  return seen + clean;
}

}  // namespace demo
