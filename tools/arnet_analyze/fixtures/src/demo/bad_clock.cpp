// Fixture: wall-clock and ambient-randomness violations in src-scope code.
// Every line marked VIOLATION must appear in golden_findings.json; the rest
// must not be flagged (they probe the lexer's comment/string stripping).
#include <chrono>
#include <cstdlib>
#include <ctime>

namespace demo {

// "std::random_device in a comment is fine"; so is this string:
const char* kDoc = "std::chrono::steady_clock::now() and rand() and time(NULL)";

double sample_wall_time() {
  auto t0 = std::chrono::steady_clock::now();  // VIOLATION wall-clock
  auto t1 = std::chrono::system_clock::now();  // VIOLATION wall-clock
  (void)t1;
  long stamp = time(NULL);  // VIOLATION wall-clock
  return static_cast<double>(stamp) + t0.time_since_epoch().count();
}

int ambient_draw() {
  int a = rand();       // VIOLATION ambient-randomness
  srand(42);            // VIOLATION ambient-randomness
  return a;
}

// A member function named rand() is still flagged only when called freely;
// method calls through an object are not.
struct HasRand {
  int rand_count = 0;
  int do_rand() { return rand_count; }
};

int not_ambient(HasRand& h) { return h.do_rand(); }

}  // namespace demo
