// Fixture: rng-discipline across a sharded city grid — per-cell population
// streams must come from derive_seed(root, cell), never from the raw cell
// index (every grid re-run would mint colliding streams 0..N-1) or from
// arithmetic with no seed provenance.
#include <cstdint>
#include <vector>

namespace sim {
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

 private:
  std::uint64_t state_;
};
}  // namespace sim

namespace demo {

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t idx);

void sharded_city_ok(std::uint64_t root_seed, std::size_t cells) {
  std::vector<sim::Rng> streams;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    streams.emplace_back(derive_seed(root_seed, cell));  // ok: derived per cell
  }
}

void sharded_city_bad(std::size_t cells, int grid_x) {
  std::vector<sim::Rng> streams;
  for (std::size_t cell = 0; cell < cells; ++cell) {
    sim::Rng per_cell(cell);                        // VIOLATION rng-discipline
    sim::Rng by_position(cell * 31 + grid_x);       // VIOLATION rng-discipline
    streams.push_back(per_cell);
    streams.push_back(by_position);
  }
}

}  // namespace demo
