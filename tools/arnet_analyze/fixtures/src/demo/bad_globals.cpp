// Fixture: mutable namespace-scope state outside the registered singletons.
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace demo {

int g_run_count = 0;  // VIOLATION global-mutable-state

namespace {
std::string g_last_error;                       // VIOLATION global-mutable-state
std::atomic<std::uint64_t> g_ticket{7};         // VIOLATION global-mutable-state
constexpr int kTableSize = 64;                  // ok: constexpr
const char* const kName = "demo";               // ok: const
}  // namespace

// ok: function declarations and definitions are not state.
int bump();
int bump() {
  static int local_cache = 0;  // ok: function-local static is out of scope here
  return ++local_cache + g_run_count;
}

// ok: types and aliases are not state.
struct Config {
  int retries = 3;
};
using ConfigList = std::vector<Config>;

}  // namespace demo
