// Fixture: public-header include hygiene. Missing `#pragma once` and two
// std symbols used with no providing include in the closure.
// (VIOLATION missing-include x3)
#include <cstdint>

#include "arnet/demo/good_header.hpp"

namespace demo {

struct Batch {
  std::vector<std::uint64_t> ids;      // VIOLATION: <vector> not included
  std::string label;                   // ok: good_header.hpp brings <string>
  std::function<void()> on_done;       // VIOLATION: <functional> not included
};

}  // namespace demo
