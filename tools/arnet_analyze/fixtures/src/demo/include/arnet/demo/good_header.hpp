#pragma once

// Fixture: a clean public header; also feeds <string> into the include
// closure of bad_header.hpp.
#include <cstdint>
#include <string>

namespace demo {

struct Tag {
  std::string name;
  std::uint32_t id = 0;
};

}  // namespace demo
