// Fixture: rng-discipline violations — RNG streams with no seed provenance.
#include <cstdint>
#include <random>

namespace sim {
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

 private:
  std::mt19937_64 engine_;
};
}  // namespace sim

namespace demo {

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t idx);

void disciplined(std::uint64_t seed) {
  sim::Rng a(seed);                    // ok: named seed parameter
  sim::Rng b(derive_seed(seed, 1));    // ok: derive_seed
  sim::Rng c(12345);                   // ok: literal seed
  std::mt19937 d(static_cast<unsigned>(seed));  // ok: seed provenance
  (void)a; (void)b; (void)c; (void)d;
}

void undisciplined(int run_count, std::uint64_t ticket) {
  sim::Rng a(static_cast<std::uint64_t>(run_count));  // VIOLATION rng-discipline
  sim::Rng b(ticket * 31 + 7);                        // VIOLATION rng-discipline
  std::mt19937 gen;                                   // VIOLATION rng-discipline (default-seeded)
  std::mt19937_64 wide(ticket);                       // VIOLATION rng-discipline
  (void)a; (void)b; (void)gen; (void)wide;
}

}  // namespace demo
