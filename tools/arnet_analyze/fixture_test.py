#!/usr/bin/env python3
"""Golden test for arnet-analyze, run under ctest as `arnet_analyze_fixtures`.

Three parts:
  1. Golden findings: analyzing fixtures/{src,bench,tests} must reproduce
     fixtures/golden_findings.json exactly (every seeded violation detected,
     nothing else). Regenerate after an intentional rule change with:
       python3 tools/arnet_analyze --root tools/arnet_analyze/fixtures \
           src bench tests --json tools/arnet_analyze/fixtures/golden_findings.json
  2. Baseline round-trip: --write-baseline over a violating fixture, then a
     re-run with that baseline, must come back clean (exit 0).
  3. Stale-baseline: an entry matching nothing must fail the run (exit 1).

Exit 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import io
import json
import os
import sys
import tempfile
from contextlib import redirect_stderr, redirect_stdout

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(_HERE))

from arnet_analyze.cli import main as analyze_main  # noqa: E402

FIXTURES = os.path.join(_HERE, "fixtures")
GOLDEN = os.path.join(FIXTURES, "golden_findings.json")


def run(argv: list[str]) -> tuple[int, str]:
    buf = io.StringIO()
    with redirect_stdout(buf), redirect_stderr(buf):
        rc = analyze_main(argv)
    return rc, buf.getvalue()


def fail(msg: str) -> int:
    print(f"fixture_test: FAIL — {msg}", file=sys.stderr)
    return 1


def test_golden(tmp: str) -> int:
    out = os.path.join(tmp, "findings.json")
    rc, text = run(["--root", FIXTURES, "src", "bench", "tests",
                    "--json", out])
    if rc != 1:
        return fail(f"fixture scan should exit 1 (violations seeded), got {rc}:\n{text}")
    with open(out, encoding="utf-8") as f:
        got = json.load(f)
    with open(GOLDEN, encoding="utf-8") as f:
        want = json.load(f)
    if got != want:
        gf = {(x["file"], x["line"], x["rule"]) for x in got["findings"]}
        wf = {(x["file"], x["line"], x["rule"]) for x in want["findings"]}
        missing = sorted(wf - gf)
        extra = sorted(gf - wf)
        return fail("golden mismatch"
                    + (f"\n  missing: {missing}" if missing else "")
                    + (f"\n  extra:   {extra}" if extra else "")
                    + ("\n  (finding sets equal; metadata differs — diff the"
                       " JSON files)" if not missing and not extra else ""))
    print(f"fixture_test: golden OK ({len(got['findings'])} findings, "
          f"{len(got['rules'])} rules)")
    return 0


def test_baseline_roundtrip(tmp: str) -> int:
    base = os.path.join(tmp, "base.json")
    # bad_globals.cpp has 3 real findings and no suppression-hygiene ones.
    target = "src/demo/bad_globals.cpp"
    rc, text = run(["--root", FIXTURES, target, "--write-baseline", base])
    if rc != 0:
        return fail(f"--write-baseline should exit 0, got {rc}:\n{text}")
    with open(base, encoding="utf-8") as f:
        n = len(json.load(f)["entries"])
    if n != 3:
        return fail(f"expected 3 baseline entries for {target}, got {n}")
    rc, text = run(["--root", FIXTURES, target, "--baseline", base])
    if rc != 0:
        return fail(f"baselined re-run should be clean, got {rc}:\n{text}")
    print("fixture_test: baseline round-trip OK")
    return 0


def test_stale_baseline(tmp: str) -> int:
    base = os.path.join(tmp, "stale.json")
    with open(base, "w", encoding="utf-8") as f:
        json.dump({"schema": "arnet-analyze-baseline-v1",
                   "entries": [{"file": "tests/ok_test.cpp",
                                "rule": "wall-clock",
                                "snippet": "long gone();",
                                "count": 1}]}, f)
    rc, text = run(["--root", FIXTURES, "tests", "--baseline", base])
    if rc != 1 or "stale baseline entry" not in text:
        return fail(f"stale baseline entry must fail the run, got {rc}:\n{text}")
    print("fixture_test: stale-baseline detection OK")
    return 0


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="arnet-analyze-fixture.") as tmp:
        for test in (test_golden, test_baseline_roundtrip, test_stale_baseline):
            rc = test(tmp)
            if rc:
                return rc
    print("fixture_test: all OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
