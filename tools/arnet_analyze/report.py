"""`arnet-analyze-v1` JSON findings report.

Shape (validated by tools/check_analyze_schema.py, the same posture as the
existing check_bench_schema.py / check_trace_schema.py gates):

{
  "schema": "arnet-analyze-v1",
  "tool": "arnet-analyze", "version": "1.0",
  "paths": ["src", "bench", "tests"],
  "files_scanned": 123,
  "rules": [{"id": ..., "description": ...}, ...],
  "findings": [{"file", "line", "rule", "message", "snippet"}, ...],
  "baselined": 0, "suppressions_used": 2,
  "summary": {"<rule-id>": <active finding count>, ...}
}

`findings` holds only *active* findings (not baselined, not suppressed);
clean runs carry an empty list so CI artifacts diff trivially.
"""

from __future__ import annotations

import json
from collections import Counter

from . import SCHEMA_ID, __version__
from .rules import Finding, rule_catalog


def render(paths: list[str], files_scanned: int, findings: list[Finding],
           baselined: int, suppressions_used: int) -> str:
    summary = Counter(f.rule for f in findings)
    doc = {
        "schema": SCHEMA_ID,
        "tool": "arnet-analyze",
        "version": __version__,
        "paths": paths,
        "files_scanned": files_scanned,
        "rules": rule_catalog(),
        "findings": [
            {"file": f.file, "line": f.line, "rule": f.rule,
             "message": f.message, "snippet": f.snippet}
            for f in findings
        ],
        "baselined": baselined,
        "suppressions_used": suppressions_used,
        "summary": dict(sorted(summary.items())),
    }
    return json.dumps(doc, indent=2) + "\n"
