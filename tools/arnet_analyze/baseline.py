"""Committed-findings baseline for incremental adoption.

A baseline entry identifies a finding by (file, rule, whitespace-normalized
snippet) plus a count, so line-number drift never invalidates it but any
change to the offending code does. Matching consumes entries; a leftover
entry is *stale* and fails the run — the baseline may only shrink silently,
never rot. The repo's contract (ISSUE 6) is that the baseline stays empty
for `src/`: new src findings must be fixed or NOLINT-suppressed with a
justification, not baselined.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field

from . import BASELINE_SCHEMA_ID
from .rules import Finding


@dataclass
class Baseline:
    entries: Counter = field(default_factory=Counter)  # key-tuple -> count
    consumed: Counter = field(default_factory=Counter)

    def try_consume(self, finding: Finding) -> bool:
        key = finding.key()
        if self.consumed[key] < self.entries.get(key, 0):
            self.consumed[key] += 1
            return True
        return False

    def stale(self) -> list[tuple[tuple[str, str, str], int]]:
        out = []
        for key, n in sorted(self.entries.items()):
            unused = n - self.consumed[key]
            if unused > 0:
                out.append((key, unused))
        return out


def load(path) -> Baseline:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != BASELINE_SCHEMA_ID:
        raise ValueError(f"{path}: bad baseline schema id: {doc.get('schema')!r}")
    b = Baseline()
    for e in doc.get("entries", []):
        key = (e["file"], e["rule"], e["snippet"])
        b.entries[key] += int(e.get("count", 1))
    return b


def dump(findings: list[Finding]) -> str:
    counts = Counter(f.key() for f in findings)
    entries = [
        {"file": file, "rule": rule, "snippet": snippet, "count": n}
        for (file, rule, snippet), n in sorted(counts.items())
    ]
    doc = {"schema": BASELINE_SCHEMA_ID, "entries": entries}
    return json.dumps(doc, indent=2) + "\n"
