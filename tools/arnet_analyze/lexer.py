"""C++ lexer for arnet-analyze.

Good enough C++ lexing for static rules, stdlib-only: strips // and /* */
comments, blanks the contents of string/char literals (keeping the quotes so
rules can still see "a string was here"), handles raw string literals
R"delim(...)delim", and emits a token stream where every token carries its
1-based line number. Comment text is kept per-line so the suppression layer
can find `NOLINT-arnet(...)` annotations.

On top of the raw stream, `lex()` classifies every brace scope as
namespace / class / enum / function / initializer so rules can distinguish
"mutable state at namespace scope" from a function-local or a class member.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# Longest-first so the matcher never splits `<<=` into `<<` `=`.
MULTI_PUNCT = [
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
]

IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
IDENT_CONT = IDENT_START | set("0123456789")
DIGITS = set("0123456789")


@dataclass
class Token:
    text: str
    line: int
    kind: str  # "ident" | "number" | "string" | "char" | "punct"

    def __repr__(self) -> str:  # compact for debugging fixtures
        return f"{self.text}@{self.line}"


@dataclass
class LexedFile:
    path: str                       # root-relative posix path
    tokens: list[Token] = field(default_factory=list)
    comments: dict[int, str] = field(default_factory=dict)  # line -> text
    lines: list[str] = field(default_factory=list)          # raw source lines
    # Parallel to tokens: the scope-kind stack depth context. scope_of[i] is a
    # tuple of scope kinds ("namespace", "class", "enum", "function", "init",
    # "block") enclosing token i, outermost first. File scope is ().
    scopes: list[tuple[str, ...]] = field(default_factory=list)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def _strip(text: str) -> tuple[str, dict[int, str]]:
    """Blank comments and literal contents, preserving line structure.

    Returns (stripped_text, comments_by_line). String/char literals keep
    their delimiting quotes; raw strings are reduced to an empty "".
    """
    out: list[str] = []
    comments: dict[int, list[str]] = {}
    i, n = 0, len(text)
    line = 1

    def note_comment(ch: str) -> None:
        comments.setdefault(line, []).append(ch)

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            for ch in text[i:j]:
                note_comment(ch)
            out.append(" " * (j - i))
            i = j
            continue
        if c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            for ch in text[i:j]:
                if ch == "\n":
                    out.append("\n")
                    line += 1
                else:
                    note_comment(ch)
                    out.append(" ")
            i = j
            continue
        if c == "R" and nxt == '"':
            # Raw string literal R"delim( ... )delim"
            k = text.find("(", i + 2)
            if k != -1 and k - (i + 2) <= 16:
                delim = text[i + 2:k]
                end = text.find(")" + delim + '"', k + 1)
                if end != -1:
                    stop = end + len(delim) + 2
                    out.append('""')
                    for ch in text[i + 2:stop]:
                        if ch == "\n":
                            out.append("\n")
                            line += 1
                    i = stop
                    continue
        if c == '"' or (c == "'" and _is_char_literal(text, i)):
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                c2 = text[i]
                if c2 == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if c2 == quote:
                    out.append(quote)
                    i += 1
                    break
                if c2 == "\n":  # unterminated; keep line structure
                    out.append("\n")
                    line += 1
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        if c == "\n":
            line += 1
        out.append(c)
        i += 1
    return "".join(out), {ln: "".join(chs) for ln, chs in comments.items()}


def _is_char_literal(text: str, i: int) -> bool:
    """Distinguish 'x' char literals from digit separators (1'000'000)."""
    if i > 0 and text[i - 1] in IDENT_CONT:
        return False
    return True


def _tokenize(stripped: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(stripped)
    line = 1
    while i < n:
        c = stripped[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if c == "#":  # preprocessor directive: consume to end of line (minus
            # continuations) as one token so rules can see #include lines.
            j = i
            while j < n and stripped[j] != "\n":
                if stripped[j] == "\\" and j + 1 < n and stripped[j + 1] == "\n":
                    j += 2
                    line += 1
                    continue
                j += 1
            tokens.append(Token(stripped[i:j].rstrip(), line, "punct"))
            i = j
            continue
        if c in IDENT_START:
            j = i
            while j < n and stripped[j] in IDENT_CONT:
                j += 1
            tokens.append(Token(stripped[i:j], line, "ident"))
            i = j
            continue
        if c in DIGITS or (c == "." and i + 1 < n and stripped[i + 1] in DIGITS):
            j = i
            while j < n:
                ch = stripped[j]
                if ch in IDENT_CONT or ch in ".'":
                    j += 1
                elif ch in "+-" and j > i and stripped[j - 1] in "eEpP":
                    j += 1  # exponent sign: 1e+9, 0x1p-3
                else:
                    break
            tokens.append(Token(stripped[i:j], line, "number"))
            i = j
            continue
        if c == '"':
            j = stripped.find('"', i + 1)
            j = n if j == -1 else j + 1
            tokens.append(Token('""', line, "string"))
            i = j
            continue
        if c == "'":
            j = stripped.find("'", i + 1)
            j = n if j == -1 else j + 1
            tokens.append(Token("''", line, "char"))
            i = j
            continue
        matched = False
        for p in MULTI_PUNCT:
            if stripped.startswith(p, i):
                tokens.append(Token(p, line, "punct"))
                i += len(p)
                matched = True
                break
        if not matched:
            tokens.append(Token(c, line, "punct"))
            i += 1
    return tokens


_SCOPE_INTRO_KEYWORDS = {"class": "class", "struct": "class", "union": "class",
                         "enum": "enum"}


def _classify_scopes(tokens: list[Token]) -> list[tuple[str, ...]]:
    """For each token, the stack of enclosing brace-scope kinds.

    Classification looks backwards from each `{`:
      - `namespace [name] {`                       -> namespace
      - `class/struct/union/enum ... {`            -> class/enum (skips
        base-clause and attribute noise; stops at `;`/`}`/`{`)
      - `) {`, `) const/noexcept/override... {`,
        `else/do/try {`, `-> type {`               -> function
      - `= {`, `{` after ident/`(`/`,`/`return`    -> init (braced initializer)
      - anything else                              -> block
    """
    scopes: list[tuple[str, ...]] = []
    stack: list[str] = []
    for idx, tok in enumerate(tokens):
        if tok.text == "{" and tok.kind == "punct":
            kind = _scope_kind(tokens, idx)
            scopes.append(tuple(stack))
            stack.append(kind)
            continue
        if tok.text == "}" and tok.kind == "punct":
            if stack:
                stack.pop()
            scopes.append(tuple(stack))
            continue
        scopes.append(tuple(stack))
    return scopes


_FUNCTIONISH_TAIL = {"const", "noexcept", "override", "final", "mutable",
                     "volatile", "&", "&&", "try"}


def _scope_kind(tokens: list[Token], brace_idx: int) -> str:
    j = brace_idx - 1
    # Skip function-tail qualifiers and trailing-return-type tokens.
    depth_angle = 0
    hops = 0
    while j >= 0 and hops < 64:
        t = tokens[j].text
        if t in (";", "}", "{"):
            break
        if t in _FUNCTIONISH_TAIL or depth_angle > 0:
            if t == ">":
                depth_angle += 1
            elif t == "<":
                depth_angle -= 1
            j -= 1
            hops += 1
            continue
        break
    if j < 0:
        return "block"
    t = tokens[j].text
    if t == ")":
        return "function"
    if t in ("else", "do", "try"):
        return "function"
    if t == "=" or t == "," or t == "(" or t == "return":
        return "init"
    # Walk back over identifiers/`::`/template args to a scope keyword.
    k = j
    depth = 0
    while k >= 0:
        tk = tokens[k].text
        if tk in (";", "}", "{", ")"):
            break
        if tk == ">":
            depth += 1
        elif tk == "<":
            depth = max(0, depth - 1)
        elif depth == 0:
            if tk == "namespace":
                return "namespace"
            if tk in _SCOPE_INTRO_KEYWORDS:
                return _SCOPE_INTRO_KEYWORDS[tk]
        k -= 1
        if j - k > 128:
            break
    return "block"


def lex(path: str, text: str) -> LexedFile:
    stripped, comments = _strip(text)
    tokens = _tokenize(stripped)
    lf = LexedFile(path=path, tokens=tokens, comments=comments,
                   lines=text.splitlines())
    lf.scopes = _classify_scopes(tokens)
    return lf


def qualified_name(tokens: list[Token], i: int) -> tuple[str, int]:
    """Join the `a::b::c` qualified-name run starting at token i.

    Returns (joined_text, index_past_run)."""
    parts: list[str] = []
    j = i
    while j < len(tokens):
        t = tokens[j]
        if t.kind == "ident" or t.text == "::":
            parts.append(t.text)
            j += 1
        else:
            break
    return "".join(parts), j


def balanced_span(tokens: list[Token], open_idx: int,
                  open_ch: str = "(", close_ch: str = ")") -> Optional[int]:
    """Index of the matching close token for tokens[open_idx], or None.

    For angle brackets a `>>` token counts as two closes (the lexer emits
    the shift operator as one token, but in `map<string, set<int>>` it
    closes two template argument lists)."""
    depth = 0
    for j in range(open_idx, len(tokens)):
        t = tokens[j].text
        if t == open_ch:
            depth += 1
        elif t == close_ch:
            depth -= 1
            if depth == 0:
                return j
        elif close_ch == ">" and t == ">>":
            depth -= 2
            if depth <= 0:
                return j
    return None
