#!/usr/bin/env python3
"""Compare a fresh arnet-bench-v1 run against a committed baseline.

Usage: compare_bench.py [--threshold PCT] BASELINE CANDIDATE [BASELINE CANDIDATE...]

For each (baseline, candidate) pair, matches benchmarks by name and fails
(exit 1) when a candidate's ops_per_sec drops more than --threshold percent
(default 20) below the baseline. Benchmarks present only on one side are
reported but never fatal — new benches land without a baseline, and retired
ones linger in old baselines until they are regenerated.

CI wires this between the bench run and the artifact upload, so a hot-path
regression fails the job instead of silently becoming the next baseline.
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "arnet-bench-v1":
        raise ValueError(f"{path}: bad schema id: {doc.get('schema')!r}")
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def compare_pair(baseline_path, candidate_path, threshold_pct):
    try:
        baseline = load(baseline_path)
        candidate = load(candidate_path)
    except (OSError, json.JSONDecodeError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    rc = 0
    for name in sorted(baseline.keys() | candidate.keys()):
        b = baseline.get(name)
        c = candidate.get(name)
        if b is None:
            print(f"  NEW      {name}: no baseline entry "
                  f"({c['ops_per_sec']:.4g} ops/s)")
            continue
        if c is None:
            print(f"  MISSING  {name}: in baseline but not in candidate")
            continue
        base_ops = b["ops_per_sec"]
        cand_ops = c["ops_per_sec"]
        delta_pct = (cand_ops / base_ops - 1.0) * 100
        if delta_pct < -threshold_pct:
            print(f"  FAIL     {name}: {base_ops:.4g} -> {cand_ops:.4g} ops/s "
                  f"({delta_pct:+.1f} %, limit -{threshold_pct:g} %)")
            rc = 1
        else:
            print(f"  ok       {name}: {base_ops:.4g} -> {cand_ops:.4g} ops/s "
                  f"({delta_pct:+.1f} %)")
    return rc


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--threshold", type=float, default=20.0,
                    help="max allowed ops_per_sec regression in percent (default 20)")
    ap.add_argument("files", nargs="+", metavar="BASELINE CANDIDATE",
                    help="alternating baseline/candidate file pairs")
    args = ap.parse_args(argv[1:])
    if len(args.files) % 2 != 0:
        ap.error("files must come in BASELINE CANDIDATE pairs")

    rc = 0
    for i in range(0, len(args.files), 2):
        baseline_path, candidate_path = args.files[i], args.files[i + 1]
        print(f"{baseline_path} vs {candidate_path}:")
        rc |= compare_pair(baseline_path, candidate_path, args.threshold)
    if rc:
        print("benchmark regression beyond threshold", file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
