#!/usr/bin/env python3
"""Compare a fresh arnet-bench-v1 run against a committed baseline.

Usage: compare_bench.py [--threshold PCT] [--floor NAME=RATIO ...]
                        BASELINE CANDIDATE [BASELINE CANDIDATE...]
       compare_bench.py --pair OFF:ON:MAX_RATIO FILE [FILE...]

For each (baseline, candidate) pair, matches benchmarks by name and fails
(exit 1) when a candidate's ops_per_sec drops more than --threshold percent
(default 20) below the baseline. Benchmarks present only on one side are
reported but never fatal — new benches land without a baseline, and retired
ones linger in old baselines until they are regenerated.

`--floor NAME=RATIO` inverts the check into a speedup gate: the candidate
must run at least RATIO times the baseline's ops_per_sec. Used with frozen
pre-optimization baselines (tools/BENCH_pre_simd_*.json) to pin the SIMD
and event-batching wins — a change that quietly serializes the fast path
again fails CI even if it is "only" a regression back to scalar speed. A
floored name missing from either file is fatal (the gate cannot silently
evaporate).

`--pair OFF:ON:MAX_RATIO` gates two benchmarks *within* each given file
instead of across files: the ON case's wall time must stay within MAX_RATIO
of the OFF case's (equivalently ops[ON] >= ops[OFF] / MAX_RATIO). Used for
the telemetry-overhead budget — the fleet churn cell with the full tracing +
sampling + SLO stack attached must stay within a few percent of the bare
run. Both names missing is fatal: the gate cannot silently evaporate.

CI wires this between the bench run and the artifact upload, so a hot-path
regression fails the job instead of silently becoming the next baseline.
"""
import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "arnet-bench-v1":
        raise ValueError(f"{path}: bad schema id: {doc.get('schema')!r}")
    return {b["name"]: b for b in doc.get("benchmarks", [])}


def compare_pair(baseline_path, candidate_path, threshold_pct, floors):
    try:
        baseline = load(baseline_path)
        candidate = load(candidate_path)
    except (OSError, json.JSONDecodeError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1

    rc = 0
    for name in sorted(baseline.keys() | candidate.keys()):
        b = baseline.get(name)
        c = candidate.get(name)
        floor = floors.get(name)
        if b is None or c is None:
            if floor is not None:
                side = "baseline" if b is None else "candidate"
                print(f"  FAIL     {name}: floor x{floor:g} set but missing "
                      f"from {side}")
                rc = 1
            elif b is None:
                print(f"  NEW      {name}: no baseline entry "
                      f"({c['ops_per_sec']:.4g} ops/s)")
            else:
                print(f"  MISSING  {name}: in baseline but not in candidate")
            continue
        base_ops = b["ops_per_sec"]
        cand_ops = c["ops_per_sec"]
        ratio = cand_ops / base_ops
        if floor is not None:
            if ratio < floor:
                print(f"  FAIL     {name}: {base_ops:.4g} -> {cand_ops:.4g} ops/s "
                      f"(x{ratio:.2f}, floor x{floor:g})")
                rc = 1
            else:
                print(f"  ok       {name}: {base_ops:.4g} -> {cand_ops:.4g} ops/s "
                      f"(x{ratio:.2f} >= floor x{floor:g})")
            continue
        delta_pct = (ratio - 1.0) * 100
        if delta_pct < -threshold_pct:
            print(f"  FAIL     {name}: {base_ops:.4g} -> {cand_ops:.4g} ops/s "
                  f"({delta_pct:+.1f} %, limit -{threshold_pct:g} %)")
            rc = 1
        else:
            print(f"  ok       {name}: {base_ops:.4g} -> {cand_ops:.4g} ops/s "
                  f"({delta_pct:+.1f} %)")
    return rc


def check_pairs(path, pairs):
    try:
        benches = load(path)
    except (OSError, json.JSONDecodeError, ValueError, KeyError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    rc = 0
    print(f"{path}:")
    for off_name, on_name, max_ratio in pairs:
        off = benches.get(off_name)
        on = benches.get(on_name)
        if off is None or on is None:
            missing = off_name if off is None else on_name
            print(f"  FAIL     pair {off_name}:{on_name}: {missing!r} "
                  f"missing from {path}")
            rc = 1
            continue
        # ops_per_sec is inversely proportional to cost per iteration, so
        # the slowdown factor of ON relative to OFF is ops[OFF] / ops[ON].
        slowdown = off["ops_per_sec"] / on["ops_per_sec"]
        if slowdown > max_ratio:
            print(f"  FAIL     {on_name}: x{slowdown:.3f} slower than "
                  f"{off_name} (limit x{max_ratio:g})")
            rc = 1
        else:
            print(f"  ok       {on_name}: x{slowdown:.3f} vs {off_name} "
                  f"(limit x{max_ratio:g})")
    return rc


def parse_pair(spec):
    parts = spec.split(":")
    if len(parts) != 3 or not parts[0] or not parts[1]:
        raise argparse.ArgumentTypeError(f"expected OFF:ON:MAX_RATIO, got {spec!r}")
    try:
        ratio = float(parts[2])
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad ratio in {spec!r}")
    if ratio <= 0:
        raise argparse.ArgumentTypeError(f"ratio must be positive: {spec!r}")
    return parts[0], parts[1], ratio


def parse_floor(spec):
    name, sep, ratio = spec.partition("=")
    if not sep or not name:
        raise argparse.ArgumentTypeError(f"expected NAME=RATIO, got {spec!r}")
    try:
        value = float(ratio)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad ratio in {spec!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"ratio must be positive: {spec!r}")
    return name, value


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--threshold", type=float, default=20.0,
                    help="max allowed ops_per_sec regression in percent (default 20)")
    ap.add_argument("--floor", type=parse_floor, action="append", default=[],
                    metavar="NAME=RATIO",
                    help="require candidate[NAME] >= RATIO * baseline[NAME] "
                         "(speedup gate; repeatable)")
    ap.add_argument("--pair", type=parse_pair, action="append", default=[],
                    metavar="OFF:ON:MAX_RATIO",
                    help="within each file, require benchmark ON to run at "
                         "most MAX_RATIO times slower than OFF (repeatable); "
                         "files are standalone candidates in this mode")
    ap.add_argument("files", nargs="+", metavar="BASELINE CANDIDATE",
                    help="alternating baseline/candidate file pairs "
                         "(standalone files with --pair)")
    args = ap.parse_args(argv[1:])

    rc = 0
    if args.pair:
        for path in args.files:
            rc |= check_pairs(path, args.pair)
        if rc:
            print("benchmark pair gate failed", file=sys.stderr)
        return rc

    if len(args.files) % 2 != 0:
        ap.error("files must come in BASELINE CANDIDATE pairs")
    floors = dict(args.floor)
    for i in range(0, len(args.files), 2):
        baseline_path, candidate_path = args.files[i], args.files[i + 1]
        print(f"{baseline_path} vs {candidate_path}:")
        rc |= compare_pair(baseline_path, candidate_path, args.threshold, floors)
    if rc:
        print("benchmark regression beyond threshold", file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
