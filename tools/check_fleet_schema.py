#!/usr/bin/env python3
"""Sanity-check the scale_fleet / scale_city sweep artifacts.

Usage: check_fleet_schema.py METRICS_JSONL SUMMARY_JSON

Validates the metrics/summary pair a sweep writes under --out-dir and the
internal consistency between the two files. The summary's "suite" field
selects the profile:

  scale_fleet   per-cell "cell.*" gauges plus the fleet.* instruments
                underneath them (packet-level capacity sweep)
  scale_city    per-cell "city.*" gauges, fluid.* instruments, and slo.*
                gauges per grid cell, plus the aggregate "city" entity
                (concurrent peak) and the validate/uNNN/{packet,fluid}
                cross-validation pairs

Percentiles must be ordered, rates positive, and every summary benchmark
must have its gauge family in the JSONL. Fails (exit 1) on the first
structural problem so CI archives only coherent artifacts.
"""
import json
import sys

OBS_KINDS = {"counter", "gauge", "histogram", "series"}
OBS_SCHEMA_PREFIX = "arnet-obs-"
CELL_GAUGES = ("cell.offered_users", "cell.p50_ms", "cell.p99_ms",
               "cell.miss_rate", "cell.served_fps", "cell.rejected",
               "cell.servers_final")
CITY_GAUGES = ("city.peak_sessions", "city.knee_sessions", "city.p50_ms",
               "city.p99_ms", "city.miss_rate", "city.served_fps",
               "city.rejected", "city.first_breach_s")


def fail(msg):
    print(f"check_fleet_schema: {msg}", file=sys.stderr)
    return 1


def load_metrics(path):
    """Returns {(name, entity): line-dict} for the JSONL file."""
    out = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {e}")
            kind = obj.get("kind")
            if kind == "meta":
                schema = obj.get("schema", "")
                if not schema.startswith(OBS_SCHEMA_PREFIX):
                    raise ValueError(
                        f"{path}:{lineno}: meta schema {schema!r} is not "
                        f"{OBS_SCHEMA_PREFIX}*")
                continue
            if kind not in OBS_KINDS:
                raise ValueError(f"{path}:{lineno}: unknown kind {kind!r}")
            name, entity = obj.get("name"), obj.get("entity")
            if not name or entity is None:
                raise ValueError(f"{path}:{lineno}: missing name/entity")
            if kind == "histogram":
                for i, ex in enumerate(obj.get("exemplars", [])):
                    if (not isinstance(ex, list) or len(ex) != 3
                            or not all(isinstance(v, (int, float)) for v in ex)):
                        raise ValueError(
                            f"{path}:{lineno}: exemplars[{i}] is not a "
                            f"[bucket, trace, value] triple")
            out[(name, entity)] = obj
    return out


def check_city_bench(cell, metrics, metrics_path):
    """One scale_city benchmark: grid cells carry the city.*/fluid.*/slo.*
    families; validate/uNNN/{packet,fluid} rows are summary-only. Returns
    None when fine, 1 (already reported) otherwise."""
    if cell.startswith("validate/"):
        return None
    for g in CITY_GAUGES:
        if (g, cell) not in metrics:
            return fail(f"{cell}: gauge {g} missing from {metrics_path}")
    p50 = metrics[("city.p50_ms", cell)]["value"]
    p99 = metrics[("city.p99_ms", cell)]["value"]
    if p50 > p99:
        return fail(f"{cell}: city.p50_ms {p50} > city.p99_ms {p99}")
    miss = metrics[("city.miss_rate", cell)]["value"]
    if not 0.0 <= miss <= 1.0:
        return fail(f"{cell}: city.miss_rate {miss} outside [0, 1]")
    for name in ("fluid.arrivals", "fluid.served"):
        if (name, cell) not in metrics:
            return fail(f"{cell}: counter {name} missing from {metrics_path}")
    hist = metrics.get(("fluid.m2p_ms", cell))
    if hist is None or hist["kind"] != "histogram":
        return fail(f"{cell}: fluid.m2p_ms histogram missing")
    if hist.get("count", 0) < 1:
        return fail(f"{cell}: fluid.m2p_ms histogram is empty")
    if ("slo.state", cell) not in metrics:
        return fail(f"{cell}: slo.state gauge missing (SLO publish skipped?)")
    return None


def check_city_aggregate(cells, metrics, metrics_path, summary_path):
    """City-wide invariants: the aggregate entity and the validation pairs.
    Returns None when fine, 1 (already reported) otherwise."""
    grid = [c for c in cells if not c.startswith("validate/")]
    packet = {c for c in cells if c.startswith("validate/") and
              c.endswith("/packet")}
    fluid = {c for c in cells if c.startswith("validate/") and
             c.endswith("/fluid")}
    if {c.rsplit("/", 1)[0] for c in packet} !=             {c.rsplit("/", 1)[0] for c in fluid}:
        return fail(f"{summary_path}: unpaired validate/ benchmarks")
    if not grid:
        return fail(f"{summary_path}: no grid cells in summary")
    peak = metrics.get(("city.concurrent_peak", "city"))
    if peak is None:
        return fail(f"{metrics_path}: city.concurrent_peak aggregate missing")
    if peak["value"] <= 0:
        return fail(f"city.concurrent_peak must be positive, got "
                    f"{peak['value']}")
    total = metrics.get(("city.cells_total", "city"))
    if total is None or int(total["value"]) != len(grid):
        return fail(f"city.cells_total disagrees with summary grid cells "
                    f"({total and total['value']} vs {len(grid)})")
    return None


def check(metrics_path, summary_path):
    try:
        metrics = load_metrics(metrics_path)
    except (OSError, ValueError) as e:
        return fail(str(e))
    if not metrics:
        return fail(f"{metrics_path}: no metric lines")

    try:
        with open(summary_path) as f:
            summary = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{summary_path}: unreadable or invalid JSON: {e}")
    if summary.get("schema") != "arnet-bench-v1":
        return fail(f"{summary_path}: bad schema id: {summary.get('schema')!r}")
    suite = summary.get("suite")
    if suite not in ("scale_fleet", "scale_city"):
        return fail(f"{summary_path}: unexpected suite: {suite!r}")
    benches = summary.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        return fail(f"{summary_path}: empty or missing benchmarks list")

    cells = [b.get("name") for b in benches]
    if len(set(cells)) != len(cells):
        return fail(f"{summary_path}: duplicate cell names")

    for b in benches:
        cell = b.get("name")
        if not cell:
            return fail(f"{summary_path}: benchmark with no name")
        lat = b.get("latency_ns")
        if not isinstance(lat, dict):
            return fail(f"{cell}: missing latency_ns")
        for k in ("mean", "p50", "p90", "p99", "min", "max"):
            if not isinstance(lat.get(k), (int, float)):
                return fail(f"{cell}: latency_ns.{k} missing")
        if not lat["min"] <= lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]:
            return fail(f"{cell}: latency percentiles disordered")
        if not b.get("wall_time_s", 0) > 0 or not b.get("ops_per_sec", 0) > 0:
            return fail(f"{cell}: non-positive wall_time_s/ops_per_sec")

        if suite == "scale_city":
            if check_city_bench(cell, metrics, metrics_path) is not None:
                return 1
            continue

        # Every summary cell must have its gauge family in the JSONL — the
        # two artifacts describe the same run.
        for g in CELL_GAUGES:
            line = metrics.get((g, cell))
            if line is None:
                return fail(f"{cell}: gauge {g} missing from {metrics_path}")
        p50 = metrics[("cell.p50_ms", cell)]["value"]
        p99 = metrics[("cell.p99_ms", cell)]["value"]
        if p50 > p99:
            return fail(f"{cell}: cell.p50_ms {p50} > cell.p99_ms {p99}")
        if metrics[("cell.offered_users", cell)]["value"] <= 0:
            return fail(f"{cell}: cell.offered_users must be positive")
        miss = metrics[("cell.miss_rate", cell)]["value"]
        if not 0.0 <= miss <= 1.0:
            return fail(f"{cell}: cell.miss_rate {miss} outside [0, 1]")

        # The fleet instruments the cell's world publishes under the cell
        # entity: arrival/frame counters and the latency histogram.
        for name in ("fleet.arrivals", "fleet.frames"):
            if (name, cell) not in metrics:
                return fail(f"{cell}: counter {name} missing from {metrics_path}")
        hist = metrics.get(("fleet.m2p_ms", cell))
        if hist is None or hist["kind"] != "histogram":
            return fail(f"{cell}: fleet.m2p_ms histogram missing")
        if hist.get("count", 0) < 1:
            return fail(f"{cell}: fleet.m2p_ms histogram is empty")

    if suite == "scale_city":
        rc = check_city_aggregate(cells, metrics, metrics_path, summary_path)
        if rc is not None:
            return rc
    else:
        # Per-server instruments exist for at least one server of some cell.
        if not any(n == "fleet.requests" and "/server:" in e
                   for n, e in metrics):
            return fail(f"{metrics_path}: no per-server fleet.requests counters")

    print(f"{metrics_path}: OK ({len(metrics)} instruments)")
    print(f"{summary_path}: OK ({len(benches)} cells)")
    return 0


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    return check(argv[1], argv[2])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
