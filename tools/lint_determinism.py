#!/usr/bin/env python3
"""Nondeterminism lint for arnet simulation-path code.

Every figure and table this repo reproduces comes out of the discrete-event
simulator, so a single source of run-to-run variation silently invalidates
results. This lint statically bans the common hazard classes from src/:

  wall-clock          std::chrono::{system,steady,high_resolution}_clock,
                      gettimeofday / clock_gettime / time(NULL): simulated
                      time must come from sim::Simulator::now() only.
  ambient-randomness  rand()/srand()/std::random_device: all randomness must
                      flow from a seeded sim::Rng (or a substream fork).
  unordered-container std::unordered_{map,set,...}: iteration order depends
                      on hash seeding, allocation history and libstdc++
                      version; a sweep over one that feeds scheduling or
                      aggregation decisions reorders events between runs.
                      Use std::map/std::set (or sort before iterating).
  address-keyed       std::map/std::set keyed on a pointer type: ordering
                      follows the allocator's address layout, which ASLR
                      re-rolls every run.

Known-benign uses are allowlisted below with a justification; the list is
deliberately tiny and a stale entry fails the lint so it cannot rot.

Usage: lint_determinism.py <dir-or-file> [...]
Exit code 0 = clean, 1 = violations (or stale allowlist), 2 = usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

RULES = [
    (
        "wall-clock",
        re.compile(
            r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
            r"|\bgettimeofday\s*\("
            r"|\bclock_gettime\s*\("
            r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)\s*\)"
        ),
        "wall-clock time in sim-path code; use sim::Simulator::now()",
    ),
    (
        "ambient-randomness",
        re.compile(r"(?<![\w:.])(?:rand|srand)\s*\(|std::random_device"),
        "unseeded randomness; route through a seeded sim::Rng stream",
    ),
    (
        "unordered-container",
        re.compile(r"std::unordered_(?:map|multimap|set|multiset)\s*<"),
        "hash-ordered container; iteration order is not reproducible "
        "(use std::map/std::set, or allowlist a provably non-iterated use)",
    ),
    (
        "address-keyed",
        # Ordered associative container whose key type is a pointer: the
        # comparator sorts by address, which ASLR randomizes.
        re.compile(
            r"std::(?:multi)?map\s*<\s*[\w:<>\s]*?\*\s*,"
            r"|std::(?:multi)?set\s*<\s*[\w:<>\s]*?\*\s*>"
        ),
        "pointer-keyed ordered container; ordering follows ASLR'd addresses "
        "(key on a stable id instead)",
    ),
]

# (path suffix, rule id) -> justification. Kept deliberately small (<= 3);
# growing it needs a reviewed justification here. (The simulator's former
# unordered id-set entry was retired when the engine moved to a slab +
# generation-counted handles: no hash containers remain on the event path.)
ALLOWLIST = {}

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}


def strip_comments(text: str) -> str:
    """Blank out //... and /*...*/ spans (and string literals), preserving
    line structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def lint_file(path: Path, root: Path):
    violations = []
    allow_hits = set()
    rel = path.as_posix()
    code = strip_comments(path.read_text(encoding="utf-8", errors="replace"))
    for lineno, line in enumerate(code.splitlines(), start=1):
        for rule_id, pattern, message in RULES:
            if not pattern.search(line):
                continue
            allow_key = next(
                (k for k in ALLOWLIST
                 if rel.endswith(k[0]) and k[1] == rule_id),
                None,
            )
            if allow_key is not None:
                allow_hits.add(allow_key)
                continue
            violations.append((rel, lineno, rule_id, message))
    return violations, allow_hits


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            files.extend(
                sorted(f for f in p.rglob("*") if f.suffix in SOURCE_SUFFIXES))
        elif p.is_file():
            files.append(p)
        else:
            print(f"lint_determinism: no such path: {arg}", file=sys.stderr)
            return 2

    all_violations = []
    used_allow = set()
    for f in files:
        violations, allow_hits = lint_file(f, Path(argv[1]))
        all_violations.extend(violations)
        used_allow.update(allow_hits)

    for rel, lineno, rule_id, message in all_violations:
        print(f"{rel}:{lineno}: [{rule_id}] {message}")

    stale = set(ALLOWLIST) - used_allow
    for suffix, rule_id in sorted(stale):
        print(f"stale allowlist entry: ({suffix}, {rule_id}) matched nothing; "
              f"remove it")

    if all_violations or stale:
        print(f"\nlint_determinism: {len(all_violations)} violation(s), "
              f"{len(stale)} stale allowlist entr(y/ies) in {len(files)} files")
        return 1
    print(f"lint_determinism: clean ({len(files)} files, "
          f"{len(used_allow)}/{len(ALLOWLIST)} allowlist entries in use)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
