#!/usr/bin/env python3
"""Sanity-check arnet-analyze-v1 findings reports.

Usage: check_analyze_schema.py FILE [FILE...]

Fails (exit 1) on a structurally broken report so CI archives findings, not
garbage: wrong schema id, empty rule catalog, findings whose rule id is not
in the catalog, non-positive line numbers, or a summary that disagrees with
the findings list. Same posture as check_bench_schema.py.
"""
import json
import sys
from collections import Counter


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return 1


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    rc = 0
    if doc.get("schema") != "arnet-analyze-v1":
        return fail(path, f"bad schema id: {doc.get('schema')!r}")
    if doc.get("tool") != "arnet-analyze":
        rc |= fail(path, f"bad tool name: {doc.get('tool')!r}")
    if not isinstance(doc.get("files_scanned"), int) or doc["files_scanned"] < 1:
        rc |= fail(path, "files_scanned must be a positive integer")
    rules = doc.get("rules")
    if not isinstance(rules, list) or not rules:
        return fail(path, "empty or missing rule catalog")
    rule_ids = set()
    for r in rules:
        if not isinstance(r.get("id"), str) or not r["id"]:
            rc |= fail(path, "rule with missing id")
            continue
        if not isinstance(r.get("description"), str) or not r["description"]:
            rc |= fail(path, f"rule {r['id']}: missing description")
        rule_ids.add(r["id"])

    findings = doc.get("findings")
    if not isinstance(findings, list):
        return fail(path, "findings must be a list (empty when clean)")
    for f in findings:
        where = f.get("file", "<nofile>")
        if not isinstance(f.get("file"), str) or not f["file"]:
            rc |= fail(path, "finding with missing file")
        if not isinstance(f.get("line"), int) or f["line"] < 1:
            rc |= fail(path, f"{where}: finding line must be >= 1")
        if f.get("rule") not in rule_ids:
            rc |= fail(path, f"{where}: finding rule {f.get('rule')!r} "
                             "not in the rule catalog")
        if not isinstance(f.get("message"), str) or not f["message"]:
            rc |= fail(path, f"{where}: finding with empty message")

    for k in ("baselined", "suppressions_used"):
        if not isinstance(doc.get(k), int) or doc[k] < 0:
            rc |= fail(path, f"{k} must be a non-negative integer")

    summary = doc.get("summary")
    if not isinstance(summary, dict):
        rc |= fail(path, "missing summary object")
    else:
        want = Counter(f.get("rule") for f in findings)
        if dict(want) != summary:
            rc |= fail(path, f"summary {summary} disagrees with findings "
                             f"{dict(want)}")
    if rc == 0:
        print(f"{path}: OK ({len(findings)} findings, {len(rule_ids)} rules, "
              f"{doc['files_scanned']} files scanned)")
    return rc


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= check_file(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
