#!/usr/bin/env python3
"""Sanity-check an arnet_report.py HTML report.

Usage: check_report_schema.py REPORT_HTML [REPORT_HTML...]

Validates the machine-readable manifest embedded by tools/arnet_report.py
(<script type="application/json" id="arnet-report-manifest">, schema
"arnet-report-v1") and the structure it promises:

  - manifest parses as JSON with the right schema id and required fields
  - every section id listed in the manifest exists as a <section id=...>
  - every anomaly has its embedded Perfetto trace blob (id="trace-<i>"),
    each a valid JSON document with a non-empty traceEvents list
  - counts are plausible (cells/objectives/anomalies are non-negative ints)

Fails (exit 1) on the first structural problem so CI uploads only coherent
reports. stdlib only.
"""
import json
import sys
from html.parser import HTMLParser

MANIFEST_SCHEMA = "arnet-report-v1"
REQUIRED_FIELDS = ("schema", "title", "inputs", "sections", "cells",
                   "objectives", "anomalies")


class ReportScanner(HTMLParser):
    """Collects <script type="application/json"> payloads by id and the ids
    of all <section> elements."""

    def __init__(self):
        super().__init__()
        self.json_blobs = {}
        self.section_ids = set()
        self._script_id = None
        self._buf = []

    def handle_starttag(self, tag, attrs):
        a = dict(attrs)
        if tag == "script" and a.get("type") == "application/json" and "id" in a:
            self._script_id = a["id"]
            self._buf = []
        elif tag == "section" and "id" in a:
            self.section_ids.add(a["id"])

    def handle_endtag(self, tag):
        if tag == "script" and self._script_id is not None:
            self.json_blobs[self._script_id] = "".join(self._buf)
            self._script_id = None

    def handle_data(self, data):
        if self._script_id is not None:
            self._buf.append(data)


def fail(path, msg):
    print(f"check_report_schema: {path}: {msg}", file=sys.stderr)
    return 1


def check(path):
    try:
        with open(path) as f:
            doc = f.read()
    except OSError as e:
        return fail(path, str(e))

    scanner = ReportScanner()
    scanner.feed(doc)

    raw = scanner.json_blobs.get("arnet-report-manifest")
    if raw is None:
        return fail(path, "no arnet-report-manifest script block")
    try:
        manifest = json.loads(raw)
    except json.JSONDecodeError as e:
        return fail(path, f"manifest is not valid JSON: {e}")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        return fail(path, f"bad manifest schema: {manifest.get('schema')!r}")
    for field in REQUIRED_FIELDS:
        if field not in manifest:
            return fail(path, f"manifest missing field {field!r}")
    for field in ("cells", "objectives", "anomalies"):
        v = manifest[field]
        if not isinstance(v, int) or v < 0:
            return fail(path, f"manifest {field} is not a non-negative int: {v!r}")
    sections = manifest["sections"]
    if not isinstance(sections, list) or not sections:
        return fail(path, "manifest sections is empty or not a list")
    for sid in sections:
        if sid not in scanner.section_ids:
            return fail(path, f"manifest lists section {sid!r} but no "
                              f"<section id=\"{sid}\"> exists")
    if not isinstance(manifest["inputs"], dict) or "bench" not in manifest["inputs"]:
        return fail(path, "manifest inputs missing the bench path")

    for i in range(manifest["anomalies"]):
        blob = scanner.json_blobs.get(f"trace-{i}")
        if blob is None:
            return fail(path, f"anomaly {i} has no embedded trace blob")
        try:
            trace = json.loads(blob)
        except json.JSONDecodeError as e:
            return fail(path, f"trace-{i} is not valid JSON: {e}")
        events = trace.get("traceEvents")
        if not isinstance(events, list) or not events:
            return fail(path, f"trace-{i} has no traceEvents")
        for e in events:
            if "ph" not in e or "pid" not in e:
                return fail(path, f"trace-{i}: event missing ph/pid: {e}")

    print(f"{path}: OK ({manifest['cells']} cells, {manifest['objectives']} "
          f"objectives, {manifest['anomalies']} anomalies)")
    return 0


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= check(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
