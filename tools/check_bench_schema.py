#!/usr/bin/env python3
"""Sanity-check arnet-bench-v1 JSON files (BENCH_*.json).

Usage: check_bench_schema.py FILE [FILE...]

Fails (exit 1) on malformed output so CI catches a broken bench runner
instead of archiving garbage baselines: wrong schema id, empty benchmark
list, non-positive wall times or rates, or disordered latency percentiles.
"""
import json
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    return 1


def check_file(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(path, f"unreadable or invalid JSON: {e}")

    if doc.get("schema") != "arnet-bench-v1":
        return fail(path, f"bad schema id: {doc.get('schema')!r}")
    if not isinstance(doc.get("suite"), str) or not doc["suite"]:
        return fail(path, "missing suite name")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        return fail(path, "empty or missing benchmarks list")

    rc = 0
    for b in benches:
        name = b.get("name", "<unnamed>")
        if not isinstance(b.get("name"), str) or not b["name"]:
            rc |= fail(path, "benchmark with missing name")
            continue
        if not isinstance(b.get("iterations"), int) or b["iterations"] < 1:
            rc |= fail(path, f"{name}: iterations must be >= 1")
        if not isinstance(b.get("wall_time_s"), (int, float)) or b["wall_time_s"] <= 0:
            rc |= fail(path, f"{name}: wall_time_s must be > 0")
        if not isinstance(b.get("ops_per_sec"), (int, float)) or b["ops_per_sec"] <= 0:
            rc |= fail(path, f"{name}: ops_per_sec must be > 0")
        if not isinstance(b.get("sim_events_per_sec"), (int, float)) or b["sim_events_per_sec"] < 0:
            rc |= fail(path, f"{name}: sim_events_per_sec must be >= 0")
        lat = b.get("latency_ns")
        if not isinstance(lat, dict):
            rc |= fail(path, f"{name}: missing latency_ns object")
            continue
        for k in ("mean", "p50", "p90", "p99", "min", "max"):
            if not isinstance(lat.get(k), (int, float)):
                rc |= fail(path, f"{name}: latency_ns.{k} missing or non-numeric")
        if all(isinstance(lat.get(k), (int, float)) for k in ("p50", "p90", "p99")):
            if not lat["p50"] <= lat["p90"] <= lat["p99"]:
                rc |= fail(path, f"{name}: latency percentiles disordered "
                                 f"(p50={lat['p50']}, p90={lat['p90']}, p99={lat['p99']})")
    if rc == 0:
        print(f"{path}: OK ({len(benches)} benchmarks)")
    return rc


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    rc = 0
    for path in argv[1:]:
        rc |= check_file(path)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
