#!/usr/bin/env python3
"""Render one self-contained HTML report from a bench-out/ run.

Usage: arnet_report.py --bench BENCH_JSON --slo SLO_JSONL --samples SAMPLES_JSONL
                       [--metrics METRICS_JSONL] [--title NAME] --out REPORT_HTML

Inputs are the artifacts a bench run writes under --out-dir:

  BENCH_*.json        arnet-bench-v1 per-cell summary (required)
  *_slo.jsonl         arnet-slo-v1 burn/alert log (required)
  *_samples.jsonl     arnet-sample-v1 tail-sampled traces (required)
  *_metrics.jsonl     arnet-obs-v1/v2 registry export (optional; enables the
                      capacity-knee section driven by cell.* gauges)

The output is a single HTML file with no external fetches: inline CSS, inline
SVG charts, and per-anomaly Chrome/Perfetto trace-event JSON embedded as
<script type="application/json"> blobs with a download button (open the
downloaded file in ui.perfetto.dev). A machine-readable manifest rides in
<script type="application/json" id="arnet-report-manifest"> with schema
"arnet-report-v1" — tools/check_report_schema.py validates it in CI.

stdlib only; deterministic given deterministic inputs (insertion-ordered
dicts, stable sorts, no timestamps).
"""
import argparse
import html
import json
import sys

MANIFEST_SCHEMA = "arnet-report-v1"
TOP_ANOMALIES = 20

CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif; margin: 2em auto;
       max-width: 70em; color: #1a1a2e; background: #fafafa; }
h1 { border-bottom: 2px solid #16213e; padding-bottom: .3em; }
h2 { margin-top: 2em; color: #16213e; }
table { border-collapse: collapse; margin: 1em 0; font-size: .9em; }
th, td { border: 1px solid #ccc; padding: .3em .6em; text-align: right; }
th { background: #16213e; color: #fff; }
td:first-child, th:first-child { text-align: left; }
.ok { color: #0a7a0a; } .alerting { color: #c0392b; font-weight: bold; }
.verdict-miss { color: #c0392b; } .verdict-drop { color: #d35400; }
.verdict-outlier { color: #8e44ad; } .verdict-reservoir { color: #0a7a0a; }
svg { background: #fff; border: 1px solid #ddd; margin: .5em 0; }
.legend span { margin-right: 1.2em; }
button { cursor: pointer; }
footer { margin-top: 3em; font-size: .8em; color: #888; }
"""

DOWNLOAD_JS = """
function downloadTrace(id, name) {
  var blob = new Blob([document.getElementById(id).textContent],
                      {type: 'application/json'});
  var a = document.createElement('a');
  a.href = URL.createObjectURL(blob);
  a.download = name;
  a.click();
  URL.revokeObjectURL(a.href);
}
"""


def esc(s):
    return html.escape(str(s), quote=True)


def load_jsonl(path):
    docs = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                docs.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {e}")
    return docs


def load_bench(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "arnet-bench-v1":
        raise ValueError(f"{path}: bad schema id: {doc.get('schema')!r}")
    return doc


# ----------------------------------------------------------------- charts

def svg_open(width, height):
    return (f'<svg viewBox="0 0 {width} {height}" width="{width}" '
            f'height="{height}" xmlns="http://www.w3.org/2000/svg">')


def polyline(points, color, width=2, dash=None):
    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    d = f' stroke-dasharray="{dash}"' if dash else ""
    return (f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"{d}/>')


PALETTE = ["#16213e", "#c0392b", "#0a7a0a", "#8e44ad", "#d35400", "#2980b9",
           "#7f8c8d", "#27ae60"]


def line_chart(series, x_label, y_label, markers=(), width=640, height=300,
               y_ref=None):
    """series: [(label, color, dash, [(x, y), ...])]; markers: [(x, label)].
    Returns inline SVG with axes, labels, and optional y reference line."""
    pad_l, pad_r, pad_t, pad_b = 55, 15, 15, 35
    xs = [x for _, _, _, pts in series for x, _ in pts] + [x for x, _ in markers]
    ys = [y for _, _, _, pts in series for _, y in pts]
    if y_ref is not None:
        ys.append(y_ref)
    if not xs or not ys:
        return "<p>(no data)</p>"
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys + [0.0]), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    iw, ih = width - pad_l - pad_r, height - pad_t - pad_b

    def px(x):
        return pad_l + (x - x0) / (x1 - x0) * iw

    def py(y):
        return pad_t + ih - (y - y0) / (y1 - y0) * ih

    out = [svg_open(width, height)]
    out.append(f'<line x1="{pad_l}" y1="{pad_t + ih}" x2="{pad_l + iw}" '
               f'y2="{pad_t + ih}" stroke="#999"/>')
    out.append(f'<line x1="{pad_l}" y1="{pad_t}" x2="{pad_l}" '
               f'y2="{pad_t + ih}" stroke="#999"/>')
    for frac in (0.0, 0.5, 1.0):
        yv = y0 + (y1 - y0) * frac
        out.append(f'<text x="{pad_l - 6}" y="{py(yv) + 4:.1f}" font-size="11" '
                   f'text-anchor="end" fill="#555">{yv:.3g}</text>')
        xv = x0 + (x1 - x0) * frac
        out.append(f'<text x="{px(xv):.1f}" y="{height - pad_b + 16}" '
                   f'font-size="11" text-anchor="middle" fill="#555">{xv:.4g}</text>')
    out.append(f'<text x="{pad_l + iw / 2:.1f}" y="{height - 4}" font-size="12" '
               f'text-anchor="middle" fill="#333">{esc(x_label)}</text>')
    out.append(f'<text x="12" y="{pad_t + ih / 2:.1f}" font-size="12" '
               f'text-anchor="middle" fill="#333" '
               f'transform="rotate(-90 12 {pad_t + ih / 2:.1f})">{esc(y_label)}</text>')
    if y_ref is not None and y0 <= y_ref <= y1:
        out.append(polyline([(x0, y_ref), (x1, y_ref)], "#999", 1, "4 3"))
    for x, _label in markers:
        out.append(polyline([(x, y0), (x, y1)], "#c0392b", 1, "2 2"))
    for _label, color, dash, pts in series:
        if pts:
            out.append(polyline([(px(x), py(y)) for x, y in pts], color, 2, dash))
    out.append("</svg>")
    legend = "".join(
        f'<span style="color:{color}">{"&#8212;" if not dash else "&#8943;"} '
        f'{esc(label)}</span>'
        for label, color, dash, pts in series if pts)
    return "".join(out) + f'<div class="legend">{legend}</div>'


# ---------------------------------------------------------------- sections

def split_cell_name(name):
    """'u050/least-outstanding/batch=on/...' -> (50.0, 'least-outstanding/...');
    other names -> (None, name)."""
    head, _, rest = name.partition("/")
    if head.startswith("u") and head[1:].isdigit() and rest:
        return float(head[1:]), rest
    return None, name


def capacity_section(bench, metrics):
    """Per-mode p99-vs-offered-users curves from cell.* gauges (preferred) or
    the bench summary's latency_ns.p99 when no metrics JSONL was given."""
    by_mode = {}
    if metrics:
        offered = {e: l["value"] for (n, e), l in metrics.items()
                   if n == "cell.offered_users"}
        p99 = {e: l["value"] for (n, e), l in metrics.items() if n == "cell.p99_ms"}
        for entity, users in offered.items():
            if entity not in p99:
                continue
            _, mode = split_cell_name(entity)
            by_mode.setdefault(mode, []).append((users, p99[entity]))
    else:
        for b in bench.get("benchmarks", []):
            users, mode = split_cell_name(b.get("name", ""))
            lat = b.get("latency_ns", {})
            if users is None or "p99" not in lat:
                continue
            by_mode.setdefault(mode, []).append((users, lat["p99"] / 1e6))
    series = []
    for i, (mode, pts) in enumerate(sorted(by_mode.items())):
        pts.sort()
        series.append((mode, PALETTE[i % len(PALETTE)], None, pts))
    if not series:
        return "<p>(no capacity-sweep cells in this run)</p>"
    chart = line_chart(series, "offered users", "p99 m2p (ms)", y_ref=75.0)
    return chart + "<p>Dashed line: the 75 ms motion-to-photon budget. The knee " \
                   "of each curve is the mode's capacity.</p>"


def burn_section(slo_docs):
    """One chart per objective that has burn samples; alert transitions are
    vertical markers. Objectives that never left 'ok' collapse to a row of
    the summary table only."""
    objectives = [d for d in slo_docs if d.get("kind") == "objective"]
    rows = []
    charts = []
    for obj in objectives:
        entity = obj["entity"]
        state = obj.get("state", "ok")
        cls = "ok" if state == "ok" else "alerting"
        good, miss = obj.get("good", 0), obj.get("miss", 0)
        total = good + miss
        rows.append(
            f"<tr><td>{esc(entity)}</td><td>{obj.get('objective', 0):.3g}</td>"
            f"<td>{obj.get('deadline_ms', 0):.4g}</td><td>{total}</td><td>{miss}</td>"
            f"<td>{obj.get('burn_fast', 0):.3g}</td><td>{obj.get('burn_slow', 0):.3g}</td>"
            f"<td class=\"{cls}\">{esc(state)}</td><td>{obj.get('episodes', 0)}</td></tr>")
        burns = [d for d in slo_docs
                 if d.get("kind") == "burn" and d.get("entity") == entity]
        alerts = [d for d in slo_docs
                  if d.get("kind") == "alert" and d.get("entity") == entity]
        if not alerts and obj.get("episodes", 0) == 0:
            continue  # healthy objective: table row only
        fast = [(b["t_ns"] / 1e9, b["fast"]) for b in burns]
        slow = [(b["t_ns"] / 1e9, b["slow"]) for b in burns]
        markers = [(a["t_ns"] / 1e9, a["state"]) for a in alerts]
        charts.append(
            f"<h3>{esc(entity)}</h3>" +
            line_chart([("fast burn", "#16213e", None, fast),
                        ("slow burn", "#2980b9", "5 3", slow)],
                       "sim time (s)", "burn rate", markers=markers))
    table = ("<table><tr><th>objective</th><th>target</th><th>deadline ms</th>"
             "<th>frames</th><th>miss</th><th>burn fast</th><th>burn slow</th>"
             "<th>state</th><th>episodes</th></tr>" + "".join(rows) + "</table>")
    return table + "".join(charts)


def perfetto_trace(frame, spans):
    """Chrome trace-event JSON for one retained frame: the frame itself as a
    duration slice plus every sampled span as an instant on its entity row."""
    entities = []
    for s in spans:
        if s.get("entity") not in entities:
            entities.append(s.get("entity"))
    events = []
    for tid, name in enumerate(entities):
        events.append({"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
                       "args": {"name": name or "?"}})
    events.append({
        "ph": "X", "pid": 1, "tid": 0, "name": f"frame {frame['trace']}",
        "ts": frame["t0_ns"] / 1e3,
        "dur": max(frame["t1_ns"] - frame["t0_ns"], 1) / 1e3,
        "args": {"verdict": frame["verdict"],
                 "latency_ms": frame["latency_ns"] / 1e6}})
    for s in spans:
        args = {"uid": s.get("uid", 0), "size": s.get("size", 0)}
        if s.get("reason"):
            args["reason"] = s["reason"]
        events.append({"ph": "i", "pid": 1,
                       "tid": entities.index(s.get("entity")), "s": "t",
                       "name": s.get("event", "?"), "ts": s["t_ns"] / 1e3,
                       "args": args})
    return {"traceEvents": events,
            "otherData": {"schema": "arnet-trace-v1",
                          "scope": frame.get("scope", ""),
                          "verdict": frame["verdict"]}}


def anomaly_section(sample_docs):
    """Top anomalous frames (miss > drop > outlier, then slowest first), each
    with its embedded Perfetto trace blob, plus the admission-anomaly notes."""
    frames = [d for d in sample_docs if d.get("kind") == "frame"]
    spans_by_frame = {}
    for d in sample_docs:
        if d.get("kind") == "span":
            spans_by_frame.setdefault((d.get("scope"), d.get("trace")), []).append(d)
    prio = {"miss": 0, "drop": 1, "outlier": 2}
    anomalies = sorted(
        (f for f in frames if f.get("verdict") in prio),
        key=lambda f: (prio[f["verdict"]], -f.get("latency_ns", 0),
                       f.get("scope", ""), f.get("trace", 0)))[:TOP_ANOMALIES]
    out = []
    blobs = []
    if anomalies:
        out.append("<table><tr><th>cell</th><th>trace</th><th>verdict</th>"
                   "<th>latency ms</th><th>spans</th><th>trace file</th></tr>")
        for i, f in enumerate(anomalies):
            spans = spans_by_frame.get((f.get("scope"), f.get("trace")), [])
            trace_doc = perfetto_trace(f, spans)
            blob_id = f"trace-{i}"
            fname = f"anomaly-{i}-trace-{f['trace']}.json"
            blobs.append(
                f'<script type="application/json" id="{blob_id}">'
                f'{json.dumps(trace_doc, sort_keys=True)}</script>')
            out.append(
                f"<tr><td>{esc(f.get('scope', ''))}</td><td>{f['trace']}</td>"
                f"<td class=\"verdict-{esc(f['verdict'])}\">{esc(f['verdict'])}</td>"
                f"<td>{f.get('latency_ns', 0) / 1e6:.2f}</td><td>{len(spans)}</td>"
                f"<td><button onclick=\"downloadTrace('{blob_id}', '{esc(fname)}')\">"
                f"download</button></td></tr>")
        out.append("</table><p>Open a downloaded trace in "
                   "<a href=\"https://ui.perfetto.dev\">ui.perfetto.dev</a> "
                   "(or chrome://tracing).</p>")
    else:
        out.append("<p>No anomalous frames were retained — every sampled frame "
                   "met its deadline.</p>")
    notes = [d for d in sample_docs if d.get("kind") == "note"]
    if notes:
        out.append(f"<h3>Admission anomalies ({len(notes)} notes)</h3>"
                   "<table><tr><th>cell</th><th>t (s)</th><th>session</th>"
                   "<th>decision</th></tr>")
        for n in notes[:50]:
            out.append(f"<tr><td>{esc(n.get('scope', ''))}</td>"
                       f"<td>{n.get('t_ns', 0) / 1e9:.2f}</td><td>{n.get('uid', 0)}</td>"
                       f"<td>{esc(n.get('reason', ''))}</td></tr>")
        out.append("</table>")
        if len(notes) > 50:
            out.append(f"<p>({len(notes) - 50} more notes in the samples JSONL)</p>")
    return "".join(out), blobs, len(anomalies)


def summary_section(bench, slo_docs, sample_docs):
    benches = bench.get("benchmarks", [])
    objectives = [d for d in slo_docs if d.get("kind") == "objective"]
    runs = [d for d in sample_docs if d.get("kind") == "run"]
    alerting = sum(1 for o in objectives if o.get("state") != "ok")
    episodes = sum(o.get("episodes", 0) for o in objectives)
    retained = sum(r.get("retained", 0) for r in runs)
    rejected = sum(r.get("budget_rejected", 0) for r in runs)
    rows = [
        ("cells", len(benches)),
        ("objectives tracked", len(objectives)),
        ("objectives alerting at end", alerting),
        ("alert episodes", episodes),
        ("frames sampled (retained)", retained),
        ("retentions rejected by span budget", rejected),
    ]
    return ("<table>" +
            "".join(f"<tr><td>{esc(k)}</td><td>{v}</td></tr>" for k, v in rows) +
            "</table>")


def load_metrics_map(path):
    out = {}
    for d in load_jsonl(path):
        if d.get("kind") == "meta":
            continue
        if d.get("name") and d.get("entity") is not None:
            out[(d["name"], d["entity"])] = d
    return out


def build_report(title, bench, metrics, slo_docs, sample_docs, inputs):
    anomalies_html, blobs, n_anomalies = anomaly_section(sample_docs)
    sections = [
        ("summary", "Summary", summary_section(bench, slo_docs, sample_docs)),
        ("capacity", "Capacity knees", capacity_section(bench, metrics)),
        ("burn", "SLO burn rates", burn_section(slo_docs)),
        ("anomalies", "Top anomalies", anomalies_html),
    ]
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "title": title,
        "suite": bench.get("suite", ""),
        "inputs": inputs,
        "sections": [sid for sid, _, _ in sections],
        "cells": len(bench.get("benchmarks", [])),
        "objectives": sum(1 for d in slo_docs if d.get("kind") == "objective"),
        "anomalies": n_anomalies,
    }
    nav = " | ".join(f'<a href="#{sid}">{esc(label)}</a>'
                     for sid, label, _ in sections)
    body = "".join(f'<section id="{sid}"><h2>{esc(label)}</h2>{content}</section>'
                   for sid, label, content in sections)
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{esc(title)}</title><style>{CSS}</style>"
        f"<script>{DOWNLOAD_JS}</script></head><body>"
        f"<script type=\"application/json\" id=\"arnet-report-manifest\">"
        f"{json.dumps(manifest, sort_keys=True)}</script>"
        f"<h1>{esc(title)}</h1><nav>{nav}</nav>"
        f"{body}{''.join(blobs)}"
        f"<footer>generated by arnet_report.py from {esc(inputs['bench'])}"
        "</footer></body></html>\n")


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--bench", required=True)
    ap.add_argument("--slo", required=True)
    ap.add_argument("--samples", required=True)
    ap.add_argument("--metrics", default=None)
    ap.add_argument("--title", default="arnet report")
    ap.add_argument("--out", required=True)
    args = ap.parse_args(argv[1:])

    try:
        bench = load_bench(args.bench)
        slo_docs = load_jsonl(args.slo)
        sample_docs = load_jsonl(args.samples)
        metrics = load_metrics_map(args.metrics) if args.metrics else {}
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"arnet_report: {e}", file=sys.stderr)
        return 1
    if not slo_docs or slo_docs[0].get("schema") != "arnet-slo-v1":
        print(f"arnet_report: {args.slo}: not an arnet-slo-v1 file", file=sys.stderr)
        return 1
    if not sample_docs or sample_docs[0].get("schema") != "arnet-sample-v1":
        print(f"arnet_report: {args.samples}: not an arnet-sample-v1 file",
              file=sys.stderr)
        return 1

    inputs = {"bench": args.bench, "slo": args.slo, "samples": args.samples,
              "metrics": args.metrics or ""}
    doc = build_report(args.title, bench, metrics, slo_docs, sample_docs, inputs)
    try:
        with open(args.out, "w") as f:
            f.write(doc)
    except OSError as e:
        print(f"arnet_report: {e}", file=sys.stderr)
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
