#include "arnet/runner/experiment.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <streambuf>
#include <thread>

namespace arnet::runner {

std::uint64_t derive_seed(std::uint64_t root_seed, std::uint64_t run_index) {
  // SplitMix64 (Steele/Lea/Flood): advance the state by the golden-gamma
  // once per index, then finalize. run_index + 1 keeps run 0 from collapsing
  // onto the raw root.
  std::uint64_t z = root_seed + 0x9E3779B97F4A7C15ULL * (run_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

int ExperimentRunner::hardware_jobs() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ExperimentRunner::ExperimentRunner(Config cfg)
    : jobs_(cfg.jobs > 0 ? cfg.jobs : hardware_jobs()), root_seed_(cfg.root_seed) {}

void ExperimentRunner::for_each(std::size_t runs, const RunFn& fn) {
  if (runs == 0) return;

  auto execute = [&](std::size_t index) {
    RunContext ctx;
    ctx.run_index = index;
    ctx.seed = derive_seed(root_seed_, index);
    fn(ctx);
  };

  const std::size_t workers =
      std::min(runs, static_cast<std::size_t>(jobs_));
  if (workers <= 1) {
    for (std::size_t i = 0; i < runs; ++i) execute(i);
    return;
  }

  // Dynamic work stealing over a shared index counter: runs are uneven (a
  // placement search instance is not a WiFi cell), so static striping would
  // leave workers idle. Determinism is unaffected — no run reads another
  // run's state, and all aggregation happens index-ordered after the join.
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= runs) return;
      try {
        execute(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

obs::MetricsRegistry ExperimentRunner::run_merged(std::size_t runs, const RunFn& fn) {
  std::vector<obs::MetricsRegistry> per_run(runs);
  for_each(runs, [&](RunContext& ctx) {
    fn(ctx);
    per_run[ctx.run_index] = std::move(ctx.metrics);
  });
  obs::MetricsRegistry merged;
  for (const obs::MetricsRegistry& r : per_run) merged.merge_from(r);
  return merged;
}

int parse_jobs_flag(int argc, char** argv, int fallback) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      value = arg + 7;
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else {
      continue;
    }
    const int n = std::atoi(value);
    return n > 0 ? n : ExperimentRunner::hardware_jobs();
  }
  return fallback;
}

std::string parse_string_flag(int argc, char** argv, const char* name, std::string fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') return arg + len + 1;
    if (std::strcmp(arg, name) == 0 && i + 1 < argc) return argv[i + 1];
  }
  return fallback;
}

std::string parse_out_dir(int argc, char** argv) {
  return parse_string_flag(argc, argv, "--out-dir", "bench-out");
}

std::string out_path(const std::string& dir, const std::string& file) {
  std::filesystem::create_directories(dir);
  return dir + "/" + file;
}

namespace {

/// streambuf that forwards every byte to two underlying buffers. Only the
/// console buffer's errors are reported upward: losing the report copy must
/// never turn a successful experiment run into a failed one.
class TeeBuf : public std::streambuf {
 public:
  TeeBuf(std::streambuf* console, std::streambuf* copy)
      : console_(console), copy_(copy) {}

 protected:
  int overflow(int ch) override {
    if (ch == traits_type::eof()) return traits_type::not_eof(ch);
    copy_->sputc(static_cast<char>(ch));
    return console_->sputc(static_cast<char>(ch));
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    copy_->sputn(s, n);
    return console_->sputn(s, n);
  }

  int sync() override {
    copy_->pubsync();
    return console_->pubsync();
  }

 private:
  std::streambuf* console_;
  std::streambuf* copy_;
};

}  // namespace

struct ReportTee::Impl {
  std::ofstream file;
  std::unique_ptr<TeeBuf> tee;
  std::streambuf* saved = nullptr;
};

ReportTee::ReportTee(const std::string& path) : impl_(std::make_unique<Impl>()) {
  impl_->file.open(path);
  if (!impl_->file.is_open()) return;
  impl_->saved = std::cout.rdbuf();
  impl_->tee = std::make_unique<TeeBuf>(impl_->saved, impl_->file.rdbuf());
  std::cout.rdbuf(impl_->tee.get());
}

ReportTee::~ReportTee() {
  if (impl_->saved) {
    std::cout.flush();
    std::cout.rdbuf(impl_->saved);
  }
}

bool ReportTee::active() const { return impl_->saved != nullptr; }

}  // namespace arnet::runner
