#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arnet/obs/registry.hpp"

namespace arnet::runner {

/// SplitMix64 finalizer over (root_seed, run_index): every run of a sweep
/// gets a statistically independent seed, and run k's seed depends only on
/// the root and k — never on how many workers executed the sweep or in what
/// order. This is what makes `--jobs N` output bit-identical to serial runs.
std::uint64_t derive_seed(std::uint64_t root_seed, std::uint64_t run_index);

/// Per-run environment handed to each Run closure. The closure builds its
/// own Simulator/Network world from `seed`, publishes results into
/// `metrics`, and must not touch anything shared — one simulator per thread,
/// no shared mutable simulation state (see DESIGN.md §8).
struct RunContext {
  std::uint64_t run_index = 0;
  std::uint64_t seed = 0;
  obs::MetricsRegistry metrics;
};

/// Thread-pool fan-out for embarrassingly parallel experiment grids (the
/// paper's Fig. 2-5 sweeps, §VI ablations, placement search). Each run owns
/// its full simulation world, so runs never share mutable state; the only
/// cross-thread traffic is handing out run indices and collecting per-run
/// results, which are merged deterministically in run-index order after the
/// join.
class ExperimentRunner {
 public:
  struct Config {
    /// Worker threads; 0 = one per hardware thread, 1 = run inline on the
    /// calling thread (no pool).
    int jobs = 0;
    /// Root of the per-run seed derivation chain.
    std::uint64_t root_seed = 1;
  };

  explicit ExperimentRunner(Config cfg);
  ExperimentRunner() : ExperimentRunner(Config{}) {}

  using RunFn = std::function<void(RunContext&)>;

  /// Execute `runs` independent closures across the pool and merge every
  /// per-run registry into one (counters add, histograms merge bucket-wise,
  /// series append), always in run-index order.
  obs::MetricsRegistry run_merged(std::size_t runs, const RunFn& fn);

  /// Generic fan-out: collect one `R` per run, in run-index order regardless
  /// of worker scheduling. `R` must be default-constructible.
  template <typename R>
  std::vector<R> map(std::size_t runs, const std::function<R(RunContext&)>& fn) {
    std::vector<R> out(runs);
    for_each(runs, [&](RunContext& ctx) { out[ctx.run_index] = fn(ctx); });
    return out;
  }

  /// Lowest-level primitive: run `fn` once per index with a fresh
  /// RunContext. The first exception thrown by any run is rethrown on the
  /// calling thread after all workers join.
  void for_each(std::size_t runs, const RunFn& fn);

  /// Resolved worker count (>= 1).
  int jobs() const { return jobs_; }
  std::uint64_t root_seed() const { return root_seed_; }

  static int hardware_jobs();

 private:
  int jobs_;
  std::uint64_t root_seed_;
};

/// Parse a `--jobs N` / `--jobs=N` flag (shared by the experiment binaries);
/// returns `fallback` when absent. N = 0 means one job per hardware thread.
int parse_jobs_flag(int argc, char** argv, int fallback = 1);

/// Parse a generic `--name value` / `--name=value` string flag; returns
/// `fallback` when absent. `name` includes the leading dashes ("--trace").
std::string parse_string_flag(int argc, char** argv, const char* name,
                              std::string fallback = "");

/// The shared `--out-dir` convention: where experiment binaries place their
/// artifacts (metrics JSONL, traces, pcaps). Defaults to "bench-out" so bare
/// runs never litter the CWD; CI uploads the whole directory.
std::string parse_out_dir(int argc, char** argv);

/// Join `dir` and `file`, creating `dir` (and parents) on first use.
std::string out_path(const std::string& dir, const std::string& file);

/// Mirrors everything written to std::cout into a file for this object's
/// lifetime, then restores the original stream. The experiment binaries whose
/// product is the rendered report itself (paper tables/figures) use this so
/// the report lands under --out-dir next to the JSONL/trace artifacts and CI
/// can archive one directory. A failed open is non-fatal: output still goes
/// to the console, report() just returns false.
class ReportTee {
 public:
  explicit ReportTee(const std::string& path);
  ~ReportTee();

  ReportTee(const ReportTee&) = delete;
  ReportTee& operator=(const ReportTee&) = delete;

  /// True when the report file is open and receiving a copy.
  bool active() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace arnet::runner
