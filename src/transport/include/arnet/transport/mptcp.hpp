#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/transport/tcp.hpp"

namespace arnet::transport {

/// Multipath TCP baseline (paper §V-B1): one logical bulk connection
/// striped over several subflows, each pinned to its own first-hop link,
/// with a coupled congestion-avoidance controller so the aggregate grows
/// like a single TCP at a shared bottleneck (LIA-flavored: each subflow's
/// CA growth is scaled by its share of the total window).
///
/// Simplifications (documented): subflows carry independent byte streams
/// rather than striping one sequence space — equivalent for bulk-transfer
/// throughput/handover studies, which is what the paper uses MPTCP for
/// (bandwidth aggregation and WiFi handover).
class MultipathTcp {
 public:
  struct PathSpec {
    net::Link* first_hop = nullptr;  ///< nullptr = default route
    std::string name = "subflow";
  };

  struct Config {
    TcpSource::Config subflow;   ///< template for every subflow
    bool coupled = true;         ///< couple CA growth across subflows
    sim::Time couple_interval = sim::milliseconds(100);
  };

  MultipathTcp(net::Network& net, net::NodeId local, net::NodeId remote,
               net::Port base_local_port, net::Port base_remote_port,
               std::vector<PathSpec> paths, Config cfg);

  /// Greedy logical connection: every subflow saturates its path.
  void send_forever();

  std::int64_t total_received() const;
  std::int64_t subflow_received(std::size_t i) const;
  std::size_t subflow_count() const { return subflows_.size(); }
  const TcpSource& subflow_source(std::size_t i) const { return *subflows_[i].source; }

 private:
  void recouple();

  struct Subflow {
    std::unique_ptr<TcpSource> source;
    std::unique_ptr<TcpSink> sink;
    std::string name;
  };

  net::Network& net_;
  Config cfg_;
  std::vector<Subflow> subflows_;
  sim::Timer couple_timer_;
};

}  // namespace arnet::transport
