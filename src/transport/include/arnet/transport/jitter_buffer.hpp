#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "arnet/sim/stats.hpp"
#include "arnet/sim/time.hpp"

namespace arnet::transport {

/// RTP/RTCP-style receiver playout machinery (paper §V-A2: "jitter
/// compensation mechanisms" and "intermedia synchronization"). Samples are
/// buffered for a playout delay measured against their source timestamps;
/// late samples are discarded (new data beats old, §V-B3), and the delay
/// adapts to the observed jitter (EWMA of |transit - mean transit|, as in
/// RFC 3550's interarrival jitter).
class JitterBuffer {
 public:
  struct Config {
    sim::Time initial_playout_delay = sim::milliseconds(40);
    sim::Time min_playout_delay = sim::milliseconds(5);
    sim::Time max_playout_delay = sim::milliseconds(300);
    double jitter_headroom = 3.0;  ///< playout = mean transit + k * jitter
    bool adaptive = true;
  };

  struct Sample {
    std::uint32_t seq = 0;
    sim::Time source_ts = 0;   ///< capture timestamp at the sender
    sim::Time arrival = 0;
  };

  JitterBuffer() : JitterBuffer(Config{}) {}
  explicit JitterBuffer(Config cfg) : cfg_(cfg), playout_delay_(cfg.initial_playout_delay) {}

  /// Offer an arrived sample; returns false if it is already too late to
  /// play (discarded).
  bool push(const Sample& s, sim::Time now);

  /// Pop every sample whose playout time has come, in sequence order.
  /// Samples missing at their playout time are counted as underruns.
  std::vector<Sample> due(sim::Time now);

  sim::Time playout_delay() const { return playout_delay_; }
  sim::Time interarrival_jitter() const { return jitter_; }
  std::int64_t late_discards() const { return late_discards_; }
  std::int64_t played() const { return played_; }
  std::int64_t underruns() const { return underruns_; }

 private:
  sim::Time playout_time(const Sample& s) const;

  Config cfg_;
  sim::Time playout_delay_;
  std::map<std::uint32_t, Sample> buffer_;
  // RFC 3550-flavored transit statistics.
  bool have_transit_ = false;
  sim::Time last_transit_ = 0;
  sim::Time jitter_ = 0;
  double mean_transit_ = 0.0;
  std::uint32_t next_seq_ = 0;
  bool have_seq_ = false;
  std::int64_t late_discards_ = 0;
  std::int64_t played_ = 0;
  std::int64_t underruns_ = 0;
};

/// Intermedia synchronizer (§V-A2: "receive content from different
/// sources"): aligns N streams (e.g. video + audio + sensor overlays) on a
/// common playout axis by delaying the faster streams to the slowest one's
/// playout delay.
class IntermediaSync {
 public:
  explicit IntermediaSync(std::size_t streams) : buffers_(streams) {}

  JitterBuffer& stream(std::size_t i) { return buffers_[i]; }
  std::size_t streams() const { return buffers_.size(); }

  /// The common playout delay: the max across streams, so every stream's
  /// sample for timestamp T is available when T+delay arrives.
  sim::Time sync_playout_delay() const {
    sim::Time d = 0;
    for (const auto& b : buffers_) d = std::max(d, b.playout_delay());
    return d;
  }

  /// Inter-stream skew if each stream played at its own delay (what sync
  /// removes).
  sim::Time max_skew() const {
    if (buffers_.empty()) return 0;
    sim::Time lo = buffers_[0].playout_delay(), hi = lo;
    for (const auto& b : buffers_) {
      lo = std::min(lo, b.playout_delay());
      hi = std::max(hi, b.playout_delay());
    }
    return hi - lo;
  }

 private:
  std::vector<JitterBuffer> buffers_;
};

}  // namespace arnet::transport
