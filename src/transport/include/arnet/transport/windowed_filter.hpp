#pragma once

#include <cstdint>
#include <deque>

#include "arnet/sim/time.hpp"

namespace arnet::transport {

/// Windowed extremum filter over a monotone clock (Kathleen Nichols' design,
/// as used by BBR): tracks the best value seen in the trailing `window` of an
/// int64 axis — simulation time for min-OWD / min-RTT estimators, round count
/// for BBR's bandwidth filter.
///
/// Implementation: a monotone deque of (axis, value) entries. `update` evicts
/// entries the new sample dominates from the back and expired entries from
/// the front, so the front is always the in-window extremum. Amortized O(1)
/// per sample; memory bounded by the number of strictly-improving samples in
/// one window.
///
/// This replaces the all-time `min_owd` latches that used to live in ARTP
/// path state: an all-time minimum never forgets, so a route change that
/// *raises* the base delay looks like a permanent standing queue and pins a
/// delay-gradient controller at its floor rate. A windowed minimum converges
/// to the new base within one window.
template <typename V, typename Better>
class WindowedFilter {
 public:
  /// `window` is in axis units (nanoseconds when the axis is sim::Time).
  explicit WindowedFilter(std::int64_t window) : window_(window) {}

  void update(V value, std::int64_t now) {
    while (!entries_.empty() && !Better{}(entries_.back().value, value)) {
      entries_.pop_back();
    }
    entries_.push_back({now, value});
    expire(now);
  }

  /// Drop entries older than the window without adding a sample (call before
  /// reading if samples may be sparse relative to the window).
  void expire(std::int64_t now) {
    while (!entries_.empty() && entries_.front().at < now - window_) {
      entries_.pop_front();
    }
  }

  bool empty() const { return entries_.empty(); }

  /// Best value within the window; callers must check empty() first (or use
  /// get_or).
  V get() const { return entries_.front().value; }

  V get_or(V fallback) const { return entries_.empty() ? fallback : entries_.front().value; }

  /// Axis position of the current extremum (e.g. when the min-RTT was seen;
  /// BBR's ProbeRTT trigger is "no new minimum for 10 s").
  std::int64_t best_at() const { return entries_.front().at; }

  std::int64_t window() const { return window_; }
  void set_window(std::int64_t w) { window_ = w; }

  void reset() { entries_.clear(); }

 private:
  struct Entry {
    std::int64_t at;
    V value;
  };

  std::int64_t window_;
  std::deque<Entry> entries_;
};

/// Trailing-window minimum keyed on sim::Time (min-OWD, min-RTT estimators).
class WindowedMinTime {
 public:
  explicit WindowedMinTime(sim::Time window = sim::seconds(10)) : filter_(window) {}

  void update(sim::Time value, sim::Time now) { filter_.update(value, now); }
  void expire(sim::Time now) { filter_.expire(now); }
  bool empty() const { return filter_.empty(); }
  sim::Time get_or(sim::Time fallback) const { return filter_.get_or(fallback); }
  sim::Time best_at() const { return filter_.best_at(); }
  void set_window(sim::Time w) { filter_.set_window(w); }
  void reset() { filter_.reset(); }

 private:
  struct Less {
    bool operator()(sim::Time a, sim::Time b) const { return a < b; }
  };
  WindowedFilter<sim::Time, Less> filter_;
};

/// Trailing-window maximum keyed on an abstract round counter (BBR's
/// delivery-rate filter: "max bandwidth over the last ~10 rounds").
class WindowedMaxDouble {
 public:
  explicit WindowedMaxDouble(std::int64_t window_rounds = 10) : filter_(window_rounds) {}

  void update(double value, std::int64_t round) { filter_.update(value, round); }
  bool empty() const { return filter_.empty(); }
  double get_or(double fallback) const { return filter_.get_or(fallback); }
  void reset() { filter_.reset(); }

 private:
  struct Greater {
    bool operator()(double a, double b) const { return a > b; }
  };
  WindowedFilter<double, Greater> filter_;
};

}  // namespace arnet::transport
