#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <tuple>

#include "arnet/net/network.hpp"
#include "arnet/net/packet.hpp"
#include "arnet/obs/registry.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/trace/trace.hpp"
#include "arnet/transport/windowed_filter.hpp"

namespace arnet::transport {

/// TCP congestion-control flavor.
enum class TcpFlavor {
  kReno,     ///< fast retransmit/recovery, full window collapse on timeout
  kNewReno,  ///< + partial-ACK hole retransmission during recovery
  kCubic,    ///< NewReno loss handling + CUBIC window growth (RFC 8312)
  kVegas,    ///< delay-based: backs off on rising RTT (paper ref [65])
  kBbr,      ///< model-based: cwnd from measured bottleneck bw x min RTT
};

const char* to_string(TcpFlavor f);

/// BBR (v1) state machine phases. The window-driven approximation here keeps
/// BBR's defining property — cwnd follows a bandwidth/min-RTT *model*, not a
/// loss signal — while staying inside TcpSource's ack-clocked machinery
/// (there is no pacer; gains act on the window directly).
enum class BbrState {
  kStartup,   ///< exponential bw probing (gain 2.885) until the pipe fills
  kDrain,     ///< bleed the startup queue back down to one BDP
  kProbeBw,   ///< steady state: 8-phase gain cycle 1.25/0.75/1x6
  kProbeRtt,  ///< periodic cwnd floor to re-measure the true min RTT
};

const char* to_string(BbrState s);

/// Bulk-data TCP sender (ns-style "agent"): full slow start, AIMD congestion
/// avoidance, fast retransmit/recovery, Jacobson/Karn RTO with exponential
/// backoff. The paper uses TCP as the baseline whose behaviors motivate ARTP
/// (Fig. 3 asymmetric-link collapse, Fig. 4 cwnd sawtooth).
///
/// Simplifications (documented, standard for simulation): no handshake, no
/// flow-control window (receiver buffer assumed unbounded), segments are
/// MSS-aligned.
class TcpSource {
 public:
  struct Config {
    std::int32_t mss = 1460;               ///< payload bytes per segment
    std::int32_t header_bytes = 40;        ///< IP+TCP overhead on the wire
    double initial_window_segments = 2.0;
    /// Bounded by default so the first slow-start overshoot does not strand
    /// the flow in a hole-by-hole NewReno recovery for seconds (set very
    /// large to study that pathology).
    double initial_ssthresh_segments = 64.0;
    sim::Time min_rto = sim::milliseconds(200);
    sim::Time initial_rto = sim::seconds(1);
    sim::Time max_rto = sim::seconds(60);
    TcpFlavor flavor = TcpFlavor::kNewReno;
    /// Selective acknowledgments (RFC 2018/6675): the sender keeps a
    /// scoreboard of SACKed ranges and retransmits only true holes during
    /// recovery — one lost *burst* no longer costs one RTT per segment.
    bool sack = false;
    bool trace_cwnd = false;
    /// Pin all segments to this first-hop link (multipath subflows);
    /// nullptr = default routing.
    net::Link* first_hop = nullptr;
    /// Congestion-avoidance growth multiplier; MPTCP-style coupled
    /// controllers shrink this so N subflows grow like one flow at a
    /// shared bottleneck.
    double ca_growth_scale = 1.0;
    /// When set, the source publishes "tcp.cwnd"/"tcp.ssthresh" time series,
    /// a "tcp.rtt_ms" histogram, and "tcp.rto_timeouts"/
    /// "tcp.fast_retransmits" counters under `metrics_entity`. The registry
    /// must outlive the source.
    obs::MetricsRegistry* metrics = nullptr;
    std::string metrics_entity = "tcp";
    /// When set, the source registers `trace_entity` and records kTx/kRetx/
    /// kAck span events plus a per-connection TraceContext stamped on every
    /// segment (so the causal chain survives the net layer). If `trace_ctx`
    /// is inactive a fresh trace id is minted at construction. MPTCP subflows
    /// inherit this via the subflow config template.
    trace::Tracer* tracer = nullptr;
    std::string trace_entity = "tcp";
    trace::TraceContext trace_ctx;
  };

  TcpSource(net::Network& net, net::NodeId local, net::Port local_port, net::NodeId remote,
            net::Port remote_port, net::FlowId flow);
  TcpSource(net::Network& net, net::NodeId local, net::Port local_port, net::NodeId remote,
            net::Port remote_port, net::FlowId flow, Config cfg);

  /// Queue `bytes` of application data (cumulative; -1 from `send_forever`).
  void send(std::int64_t bytes);

  /// Unbounded transfer (greedy flow).
  void send_forever();

  /// Bytes acknowledged by the receiver so far.
  std::int64_t acked_bytes() const { return static_cast<std::int64_t>(highest_ack_); }

  bool complete() const {
    return app_limit_ >= 0 && static_cast<std::int64_t>(highest_ack_) >= app_limit_;
  }

  double cwnd_bytes() const { return cwnd_; }
  void set_ca_growth_scale(double s) { cfg_.ca_growth_scale = s; }
  double ssthresh_bytes() const { return ssthresh_; }
  sim::Time srtt() const { return srtt_; }
  /// BBR model observables (meaningful only for TcpFlavor::kBbr).
  BbrState bbr_state() const { return bbr_state_; }
  double bbr_bandwidth_bps() const { return bbr_bw_filter_.get_or(0.0); }
  sim::Time bbr_min_rtt() const { return bbr_min_rtt_.get_or(0); }
  int timeouts() const { return timeouts_; }
  int fast_retransmits() const { return fast_retransmits_; }
  const sim::TimeSeries& cwnd_trace() const { return cwnd_trace_; }

  /// Invoked when `complete()` first becomes true.
  void set_on_complete(std::function<void()> cb) { on_complete_ = std::move(cb); }

 private:
  void on_packet(net::Packet&& p);
  void on_ack(std::uint64_t ack);
  void on_rto();
  void on_tlp();
  void arm_tlp();
  void grow_window(std::int64_t newly_acked);
  void on_loss_window_reduction();
  void vegas_rtt_tick();
  double cubic_target() const;
  void try_send();
  void send_segment(std::uint64_t seq, bool retransmission);
  void enter_recovery();
  void update_rtt(sim::Time sample);
  void arm_rto();
  void trace();
  void record_trace(trace::EventKind kind, std::uint64_t uid, std::int64_t size,
                    const char* reason = nullptr);
  std::int64_t flight_size() const {
    return static_cast<std::int64_t>(next_seq_ - highest_ack_);
  }
  /// What the cwnd send gate compares against. Non-SACK loss-based flavors
  /// use raw flight plus recovery window inflation (the classic NewReno
  /// dance). SACK flavors and BBR use the RFC 6675 pipe: everything above
  /// the highest SACKed byte is in flight, everything below it is either
  /// SACKed (delivered) or lost (gone from the network), and retransmissions
  /// still out add back in. Gating on raw flight instead stalls new data a
  /// full RTT per hole — and for BBR the recovery rounds then crater the
  /// delivery-rate samples its model feeds on.
  std::int64_t send_gate_inflight() const {
    if (cfg_.flavor != TcpFlavor::kBbr && !cfg_.sack) return flight_size();
    std::int64_t pipe = flight_size();
    if (!sacked_.empty()) {
      std::uint64_t highest_sacked = std::prev(sacked_.end())->second;
      if (highest_sacked > highest_ack_) {
        pipe = static_cast<std::int64_t>(next_seq_ - highest_sacked);
      }
    }
    return pipe + recovery_rtx_inflight_;
  }
  bool sack_pipe_repair();
  std::int32_t segment_payload(std::uint64_t seq) const;

  net::Network& net_;
  net::NodeId local_, remote_;
  net::Port local_port_, remote_port_;
  net::FlowId flow_;
  Config cfg_;
  sim::Timer rto_timer_;
  sim::Timer tlp_timer_;  ///< RFC 8985-style tail-loss probe (SACK flows only)
  bool tlp_fired_ = false;  ///< one probe per flight; reset on cum-ACK advance

  // Stream state (byte offsets).
  std::uint64_t next_seq_ = 0;      ///< next new byte to send
  std::uint64_t highest_ack_ = 0;   ///< highest cumulative ACK received
  std::int64_t app_limit_ = 0;      ///< total bytes the app asked for; -1 = infinite

  // Congestion control.
  double cwnd_;      ///< bytes
  double ssthresh_;  ///< bytes
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;  ///< NewReno recovery point
  sim::Time rto_;
  sim::Time srtt_ = 0;
  sim::Time rttvar_ = 0;
  int backoff_ = 1;

  // SACK scoreboard: byte ranges the receiver holds above highest_ack_.
  std::map<std::uint64_t, std::uint64_t> sacked_;  ///< begin -> end
  /// Bytes known to have reached the receiver: cumulative-ack advances plus
  /// newly SACKed ranges, counted on arrival. This is what BBR's per-round
  /// delivery-rate samples quotient — the cumulative ack alone stalls at
  /// holes and under-measures during recovery.
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t sack_retransmit_cursor_ = 0;       ///< next hole to repair
  sim::Time sack_bottom_rtx_at_ = 0;  ///< last retransmit of the lowest hole
  /// Retransmitted bytes believed still in the network (drained as the
  /// cumulative ACK advances over them); the `+ retransmissions` term of the
  /// RFC 6675 pipe estimate.
  std::int64_t recovery_rtx_inflight_ = 0;
  void integrate_sack(const net::TcpHeader& h);
  bool retransmit_next_sack_hole();

  // RTT timing (one in-flight sample, Karn's rule).
  std::optional<std::pair<std::uint64_t, sim::Time>> timed_seq_;
  std::uint64_t retransmitted_above_ = UINT64_MAX;  ///< lowest retransmitted seq since last sample

  // CUBIC state (RFC 8312): window is a cubic function of time since the
  // last reduction, anchored at the pre-loss maximum.
  double cubic_wmax_ = 0.0;       ///< bytes
  sim::Time cubic_epoch_ = -1;    ///< start of the current growth epoch
  double cubic_k_ = 0.0;          ///< seconds to return to wmax
  /// Last congestion-avoidance ACK; gaps longer than the RTO are quiescent
  /// periods the cubic clock must not run across (RFC 8312 §5.8).
  sim::Time cubic_last_progress_ = -1;

  // BBR state: cwnd is recomputed from the bw/min-RTT model on every
  // delivery (bbr_sample); the filters are the shared WindowedFilter
  // infrastructure also used by ARTP's min-OWD estimate.
  void bbr_sample(std::uint64_t ack);
  void bbr_update_model(sim::Time now, bool round_start);
  void bbr_set_cwnd();
  BbrState bbr_state_ = BbrState::kStartup;
  WindowedMaxDouble bbr_bw_filter_{10};    ///< bps, keyed by round count
  WindowedMinTime bbr_min_rtt_{sim::seconds(10)};
  sim::Time bbr_min_rtt_stamp_ = sim::kNever;  ///< last strict min improvement
  std::uint64_t bbr_round_count_ = 0;
  std::uint64_t bbr_round_end_seq_ = 0;    ///< ack crossing this ends a round
  /// Per-packet delivery-rate sampling state (draft-cheng delivery-rate
  /// style): each first-transmission records the delivered counter at send;
  /// when the packet is cumulatively acked, the bytes delivered across its
  /// flight over the flight duration form one bandwidth sample.
  struct BbrPktSample {
    std::uint64_t end_seq = 0;
    sim::Time sent_at = 0;
    std::uint64_t delivered_at_send = 0;
    bool loss_limited = false;  ///< sent during recovery: rate not credible
  };
  std::deque<BbrPktSample> bbr_pkt_samples_;
  double bbr_full_bw_ = 0.0;               ///< startup growth reference
  int bbr_full_bw_rounds_ = 0;
  bool bbr_filled_pipe_ = false;
  int bbr_cycle_index_ = 0;                ///< probe-BW gain-cycle phase
  sim::Time bbr_cycle_stamp_ = 0;
  sim::Time bbr_probe_rtt_done_ = sim::kNever;

  // Vegas state: expected vs actual throughput once per RTT.
  sim::Time vegas_base_rtt_ = sim::kNever;
  sim::Time vegas_min_rtt_epoch_ = sim::kNever;  ///< min sample this RTT
  std::uint64_t vegas_next_tick_seq_ = 0;        ///< ends the current RTT epoch

  trace::EntityId trace_entity_ = trace::kNoEntity;
  trace::TraceContext trace_ctx_;

  int timeouts_ = 0;
  int fast_retransmits_ = 0;
  sim::TimeSeries cwnd_trace_;
  std::function<void()> on_complete_;
  bool completion_reported_ = false;
};

/// TCP receiver: cumulative ACKs, out-of-order reassembly, optional delayed
/// ACKs. ACKs are real packets and traverse (and queue on) the reverse path,
/// which is the crux of the paper's Fig. 3.
class TcpSink {
 public:
  struct Config {
    std::int32_t ack_bytes = 40;
    bool sack = true;  ///< advertise out-of-order ranges (senders may ignore)
    bool delayed_ack = false;                 ///< ACK every 2nd segment
    sim::Time delack_timeout = sim::milliseconds(40);
    net::Priority ack_priority = net::Priority::kLowest;
  };

  TcpSink(net::Network& net, net::NodeId local, net::Port local_port);
  TcpSink(net::Network& net, net::NodeId local, net::Port local_port, Config cfg);
  ~TcpSink();

  std::int64_t received_bytes() const { return received_bytes_; }
  std::uint64_t rcv_next() const { return rcv_next_; }
  sim::RateMeter& goodput() { return goodput_; }

 private:
  void on_packet(net::Packet&& p);
  void send_ack(net::NodeId to, net::Port port, net::FlowId flow);

  net::Network& net_;
  net::NodeId local_;
  net::Port local_port_;
  Config cfg_;
  sim::Timer delack_timer_;

  std::uint64_t rcv_next_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< seq -> end (out of order)
  std::uint64_t last_ooo_begin_ = 0;  ///< freshest out-of-order block (RFC 2018)
  std::int64_t received_bytes_ = 0;
  int unacked_segments_ = 0;
  // Return address learned from the first segment (single-peer sink).
  std::optional<std::tuple<net::NodeId, net::Port, net::FlowId>> peer_;
  sim::RateMeter goodput_;
};

}  // namespace arnet::transport
