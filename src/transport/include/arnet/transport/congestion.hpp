#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "arnet/sim/time.hpp"

namespace arnet::transport {

/// Feedback digest handed to a rate controller once per feedback epoch.
struct CcFeedback {
  sim::Time owd = 0;            ///< latest one-way delay sample
  sim::Time min_owd = 0;        ///< lowest one-way delay seen on the path
  double loss_fraction = 0.0;   ///< losses during the epoch
  double recv_rate_bps = 0.0;   ///< receiver-observed goodput
};

/// Rate-based congestion controller interface for ARTP (paper §VI-B): the
/// protocol cannot shrink a window of queued real-time data, so controllers
/// output an allowed *send rate* that the degradation machinery honors.
class RateController {
 public:
  virtual ~RateController() = default;

  /// Digest one feedback epoch; returns the new allowed sending rate (bps).
  virtual double on_feedback(const CcFeedback& fb, sim::Time now) = 0;

  /// Called when the path reports a hard loss burst / timeout-equivalent.
  virtual void on_severe_congestion(sim::Time now) = 0;

  virtual double rate_bps() const = 0;
};

/// Delay-gradient controller (paper §VI-B: "a sudden rise of delay or jitter
/// should be treated as a congestion indication, with immediate reaction").
///
/// AIMD on rate: additive increase while the standing queue delay
/// (owd - min_owd) stays below `queue_threshold`; multiplicative decrease
/// proportional to how far delay has risen, plus a loss response. Reacting to
/// delay keeps the uplink queue short so downloads sharing the bottleneck are
/// not harmed (the Fig. 3 pathology).
class DelayGradientController final : public RateController {
 public:
  struct Config {
    double initial_rate_bps = 1e6;
    double min_rate_bps = 64e3;
    double max_rate_bps = 1e9;
    sim::Time queue_threshold = sim::milliseconds(15);
    double increase_bps_per_epoch = 200e3;
    double decrease_factor = 0.85;
    double loss_decrease_factor = 0.7;
    double loss_tolerance = 0.02;  ///< losses below this are noise
  };

  DelayGradientController() : DelayGradientController(Config{}) {}
  explicit DelayGradientController(Config cfg) : cfg_(cfg), rate_(cfg.initial_rate_bps) {}

  double on_feedback(const CcFeedback& fb, sim::Time /*now*/) override {
    sim::Time standing = fb.owd - fb.min_owd;
    // Loss is treated as congestion only when the queueing delay corroborates
    // it; random wireless loss with an empty queue is left to FEC/NACKs
    // rather than starving the flow (paper §VI-B/C trade-off).
    bool congestion_loss =
        fb.loss_fraction > cfg_.loss_tolerance && standing > cfg_.queue_threshold / 2;
    if (congestion_loss) {
      rate_ *= cfg_.loss_decrease_factor;
    } else if (standing > cfg_.queue_threshold) {
      // Scale the decrease with the delay excess, saturating at 2x threshold.
      double excess = std::min<double>(
          static_cast<double>(standing - cfg_.queue_threshold) /
              static_cast<double>(cfg_.queue_threshold),
          1.0);
      rate_ *= cfg_.decrease_factor - 0.15 * excess;
    } else {
      // Additive probe. Overshoot is bounded by the standing-delay response
      // above; capping against the receiver's observed rate would deadlock
      // an app-limited or shedding sender at its own (low) current rate.
      rate_ += cfg_.increase_bps_per_epoch;
    }
    clamp();
    return rate_;
  }

  void on_severe_congestion(sim::Time /*now*/) override {
    rate_ *= 0.5;
    clamp();
  }

  double rate_bps() const override { return rate_; }

 private:
  void clamp() { rate_ = std::clamp(rate_, cfg_.min_rate_bps, cfg_.max_rate_bps); }

  Config cfg_;
  double rate_;
};

/// Loss-based AIMD rate controller (TCP-like behavior on rates); the ablation
/// baseline showing why pure loss signals bufferbloat the uplink.
class LossAimdController final : public RateController {
 public:
  struct Config {
    double initial_rate_bps = 1e6;
    double min_rate_bps = 64e3;
    double max_rate_bps = 1e9;
    double increase_bps_per_epoch = 200e3;
    double decrease_factor = 0.5;
    double loss_tolerance = 0.0;
  };

  LossAimdController() : LossAimdController(Config{}) {}
  explicit LossAimdController(Config cfg) : cfg_(cfg), rate_(cfg.initial_rate_bps) {}

  double on_feedback(const CcFeedback& fb, sim::Time /*now*/) override {
    if (fb.loss_fraction > cfg_.loss_tolerance) {
      rate_ *= cfg_.decrease_factor;
    } else {
      rate_ += cfg_.increase_bps_per_epoch;
    }
    rate_ = std::clamp(rate_, cfg_.min_rate_bps, cfg_.max_rate_bps);
    return rate_;
  }

  void on_severe_congestion(sim::Time /*now*/) override {
    rate_ = std::max(cfg_.min_rate_bps, rate_ * 0.5);
  }

  double rate_bps() const override { return rate_; }

 private:
  Config cfg_;
  double rate_;
};

/// TFRC-style equation-based controller (RFC 5348, cited by the paper via
/// the D2D multimedia work of §V-A4): the allowed rate is the throughput a
/// conformant TCP would achieve at the observed loss event rate and RTT,
/// yielding a much smoother rate than AIMD — attractive for media, at the
/// cost of slower reactions.
class TfrcController final : public RateController {
 public:
  struct Config {
    double initial_rate_bps = 1e6;
    double min_rate_bps = 64e3;
    double max_rate_bps = 1e9;
    double segment_bytes = 1200.0;    ///< s in the TCP equation
    double loss_ewma = 0.08;          ///< smoothing of the loss estimate
    double min_loss = 5e-5;           ///< keeps the equation bounded
    double max_increase_per_epoch = 1.25;  ///< rate smoothing on the way up
  };

  TfrcController() : TfrcController(Config{}) {}
  explicit TfrcController(Config cfg) : cfg_(cfg), rate_(cfg.initial_rate_bps) {}

  double on_feedback(const CcFeedback& fb, sim::Time /*now*/) override {
    loss_est_ = (1.0 - cfg_.loss_ewma) * loss_est_ + cfg_.loss_ewma * fb.loss_fraction;
    double p = std::max(loss_est_, cfg_.min_loss);
    double rtt = std::max(2.0 * sim::to_seconds(fb.owd), 1e-4);
    double rto = std::max(4.0 * rtt, 0.2);
    // X = s / (R*sqrt(2bp/3) + t_RTO*(3*sqrt(3bp/8))*p*(1+32p^2)), b = 1.
    double f = rtt * std::sqrt(2.0 * p / 3.0) +
               rto * 3.0 * std::sqrt(3.0 * p / 8.0) * p * (1.0 + 32.0 * p * p);
    double x_bps = cfg_.segment_bytes * 8.0 / f;
    // Media-grade smoothing: bounded relative increase per epoch.
    rate_ = std::clamp(x_bps, cfg_.min_rate_bps,
                       std::min(cfg_.max_increase_per_epoch * rate_, cfg_.max_rate_bps));
    return rate_;
  }

  void on_severe_congestion(sim::Time /*now*/) override {
    rate_ = std::max(cfg_.min_rate_bps, rate_ * 0.5);
  }

  double rate_bps() const override { return rate_; }
  double loss_estimate() const { return loss_est_; }

 private:
  Config cfg_;
  double rate_;
  double loss_est_ = 0.0;
};

}  // namespace arnet::transport
