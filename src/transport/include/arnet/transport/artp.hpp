#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

#include "arnet/net/link.hpp"
#include "arnet/net/network.hpp"
#include "arnet/net/packet.hpp"
#include "arnet/obs/registry.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/trace/trace.hpp"
#include "arnet/transport/congestion.hpp"
#include "arnet/transport/windowed_filter.hpp"

namespace arnet::transport {

/// How a multipath ARTP sender spreads traffic over its paths (paper §VI-D).
enum class MultipathPolicy {
  kSingle,        ///< first path only
  kHandoverOnly,  ///< path 0 while up, else fail over to the next live path
  kPreferred,     ///< path 0 when healthy; overflow + highest-priority
                  ///< duplicates on later paths
  kAggregate,     ///< all paths by available rate; latency-critical traffic
                  ///< on the lowest-delay path
};

/// Application-visible description of one ARTP message (a frame, a sensor
/// batch, a metadata record...).
struct ArtpMessageSpec {
  std::int64_t bytes = 0;
  net::TrafficClass tclass = net::TrafficClass::kFullBestEffort;
  net::Priority priority = net::Priority::kLowest;
  /// Ordering *within* a priority band (paper §VI-A: "For each priority,
  /// various levels may be defined"): lower values are served first. A
  /// newly submitted message overtakes queued messages of the same band
  /// with a greater sub-priority, but never splits a message mid-send.
  std::uint8_t sub_priority = 128;
  net::AppData app = net::AppData::kGeneric;
  std::uint32_t frame_id = 0;
  /// Drop-eligible chunks older than this are shed instead of sent
  /// (0 = class default; kNever for non-droppable priorities).
  sim::Time stale_after = 0;
  /// Causal trace identity; stamped onto every packet of the message so the
  /// per-frame timeline crosses the transport/net boundary. Zero = untraced.
  trace::TraceContext trace;
};

/// Delivery record handed to the receiver's message callback.
struct ArtpDelivery {
  std::uint64_t msg_id = 0;
  std::uint32_t frame_id = 0;
  net::TrafficClass tclass = net::TrafficClass::kFullBestEffort;
  net::Priority priority = net::Priority::kLowest;
  net::AppData app = net::AppData::kGeneric;
  std::int64_t bytes = 0;
  sim::Time submitted_at = 0;
  sim::Time completed_at = 0;
  bool complete = true;        ///< all chunks arrived (possibly via FEC)
  bool fec_recovered = false;  ///< at least one chunk rebuilt from parity
  double completeness = 1.0;   ///< fraction of chunks received (expired msgs)
  /// Trace context of the sender's message (from the first packet seen).
  trace::TraceContext trace;

  sim::Time latency() const { return completed_at - submitted_at; }
};

/// Periodic QoS report surfaced to the application (paper §VI-B: "the
/// protocol can provide QoS information to the application").
struct ArtpQosReport {
  double allowed_rate_bps = 0.0;  ///< sum of per-path controller rates
  std::int64_t backlog_bytes = 0;
  /// 0 = none, 1 = shedding lowest, 2 = shedding medium, 3 = critical-only.
  int congestion_level = 0;
  sim::Time min_path_owd = 0;
};

/// ARTP sender-side configuration.
struct ArtpSenderConfig {
  std::int32_t mtu_payload = 1300;
  std::int32_t header_bytes = 30;
  sim::Time pace_interval = sim::milliseconds(5);
  sim::Time default_stale_after = sim::milliseconds(60);
  /// FEC for the kBestEffortLossRecovery class: parity chunks appended per
  /// protected message (0 disables FEC). Any `fec_parity` losses within one
  /// message are recoverable without retransmission (paper §VI-C).
  std::uint32_t fec_parity = 1;
  /// Backlog (in send-time at the current rate) beyond which the sender
  /// escalates the congestion level and starts shedding.
  sim::Time shed_backlog_threshold = sim::milliseconds(40);
  /// Tail-loss timer for the critical class: if nothing of an unacknowledged
  /// critical message has been on the wire for this long, re-stage it
  /// (NACK-driven recovery handles everything except a fully lost tail).
  sim::Time critical_rto = sim::milliseconds(200);
  /// Window of the per-path min-OWD estimate mirrored from receiver feedback.
  /// Windowed (not all-time) so a base-delay increase — handover, reroute —
  /// ages out instead of reading as a permanent standing queue.
  sim::Time min_owd_window = sim::seconds(10);
  MultipathPolicy policy = MultipathPolicy::kSingle;
  bool duplicate_critical_on_two_paths = false;
  /// When set, the sender publishes per-band "artp.sent_bytes" counters
  /// (entity "<metrics_entity>/band:N"), shed counters, an
  /// "artp.congestion_level" gauge, and an "artp.degradation_events" counter
  /// (level escalations) under `metrics_entity`. The registry must outlive
  /// the sender.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_entity = "artp";
  /// When set, the sender registers `trace_entity` and records message
  /// enqueue/tx/retx/shed/ack events into its ring. Must outlive the sender.
  trace::Tracer* tracer = nullptr;
  std::string trace_entity = "artp-tx";
};

/// One transmission path of a (possibly multipath) ARTP connection.
struct ArtpPathConfig {
  /// First-hop link for policy routing; nullptr = default routed path.
  net::Link* first_hop = nullptr;
  std::unique_ptr<RateController> controller;  ///< defaults to delay-gradient
  std::string name = "path";
};

/// ARTP sender: classful staging queues, strict-priority pacing at the
/// controller rate, graceful degradation (shedding by priority rather than
/// shrinking a window), FEC injection, NACK-driven retransmission of the
/// critical class, and multipath scheduling. This is the paper's §VI
/// proposal realized as a transport agent.
class ArtpSender {
 public:
  ArtpSender(net::Network& net, net::NodeId local, net::Port local_port, net::NodeId remote,
             net::Port remote_port, net::FlowId flow, ArtpSenderConfig cfg,
             std::vector<ArtpPathConfig> paths = {});
  ~ArtpSender();

  ArtpSender(const ArtpSender&) = delete;
  ArtpSender& operator=(const ArtpSender&) = delete;

  /// Submit one application message; returns its id.
  std::uint64_t send_message(const ArtpMessageSpec& spec);

  void set_qos_callback(std::function<void(const ArtpQosReport&)> cb) {
    qos_cb_ = std::move(cb);
  }

  double allowed_rate_bps() const;
  int congestion_level() const { return congestion_level_; }
  std::int64_t backlog_bytes() const { return backlog_bytes_; }

  std::int64_t sent_bytes() const { return sent_bytes_; }
  std::int64_t shed_messages() const { return shed_messages_; }
  std::int64_t shed_bytes() const { return shed_bytes_; }
  std::int64_t retransmitted_chunks() const { return retransmitted_chunks_; }

  /// Per-application-type wire-rate meters (Fig. 4 traces). Callers sample().
  sim::RateMeter& app_meter(net::AppData app) { return app_meters_[static_cast<std::size_t>(app)]; }

  /// Sum of controller rates currently allowed (bps), per path.
  std::size_t path_count() const { return paths_.size(); }
  double path_rate_bps(std::size_t i) const { return paths_[i].cfg.controller->rate_bps(); }
  sim::Time path_owd(std::size_t i) const { return paths_[i].last_owd; }
  bool path_up(std::size_t i) const;
  std::int64_t path_sent_bytes(std::size_t i) const { return paths_[i].sent_bytes; }

 private:
  struct Chunk {
    std::uint64_t msg_id = 0;
    std::uint32_t critical_seq = 0;
    std::uint8_t sub_priority = 128;
    std::uint32_t index = 0;
    std::uint32_t count = 1;
    std::int32_t payload = 0;
    net::TrafficClass tclass{};
    net::Priority priority{};
    net::AppData app{};
    std::uint32_t frame_id = 0;
    sim::Time submitted_at = 0;
    sim::Time stale_after = 0;
    bool retransmission = false;
    trace::TraceContext trace;
  };

  struct Path {
    ArtpPathConfig cfg;
    std::uint8_t id = 0;
    double budget_bytes = 0.0;
    std::uint64_t next_path_seq = 0;
    sim::Time last_owd = 0;
    /// Trailing-window minimum of the receiver's fb_min_owd reports.
    WindowedMinTime min_owd;
    std::int64_t sent_bytes = 0;
    bool saw_feedback = false;
  };

  void on_packet(net::Packet&& p);
  void on_feedback(const net::ArtpHeader& h);
  void pace_tick();
  /// Chooses a path for `c` under the policy; may also duplicate critical
  /// chunks. Returns nullptr when no path may carry it now.
  Path* pick_path(const Chunk& c, bool& duplicate_on_secondary);
  void transmit(const Chunk& c, Path& path);
  /// Per-band wire-byte accounting into the attached metrics registry.
  void note_sent(const Chunk& c, std::int32_t wire_bytes);
  void update_congestion_level();
  std::size_t band_of(const Chunk& c) const { return static_cast<std::size_t>(c.priority); }
  Path* lowest_owd_up_path(const Path* exclude = nullptr);
  Path* first_up_path();
  /// Drop the band-front chunk and every following chunk of the same message
  /// (a message missing chunks is useless to the application).
  void shed_front_message(std::deque<Chunk>& q);
  void record_trace(trace::EventKind kind, const trace::TraceContext& ctx, std::uint64_t uid,
                    std::int64_t size, const char* reason = nullptr);

  net::Network& net_;
  net::NodeId local_, remote_;
  net::Port local_port_, remote_port_;
  net::FlowId flow_;
  ArtpSenderConfig cfg_;
  std::vector<Path> paths_;
  sim::Timer pace_timer_;

  std::uint64_t next_msg_id_ = 1;
  std::array<std::deque<Chunk>, 4> bands_;  ///< staging, indexed by Priority
  std::int64_t backlog_bytes_ = 0;
  int congestion_level_ = 0;

  // Bookkeeping for critical-class recovery, keyed by critical_seq. Entries
  // are pruned by the receiver's in-order watermark.
  struct CriticalMsg {
    std::vector<Chunk> chunks;
    sim::Time last_wire_activity = 0;  ///< last (re)transmission of any chunk
    bool fully_sent = false;
  };
  std::map<std::uint32_t, CriticalMsg> critical_sent_;
  std::uint32_t next_critical_seq_ = 1;
  void restage_critical(std::uint32_t cseq, std::uint32_t only_chunk, bool whole_message);
  void check_critical_tail();

  std::int64_t sent_bytes_ = 0;
  std::int64_t shed_messages_ = 0;
  std::int64_t shed_bytes_ = 0;
  std::int64_t retransmitted_chunks_ = 0;
  std::array<sim::RateMeter, net::kAppDataCount> app_meters_;
  std::function<void(const ArtpQosReport&)> qos_cb_;
  trace::EntityId trace_entity_ = trace::kNoEntity;
};

/// ARTP receiver: reassembles messages, recovers FEC-protected chunks,
/// detects per-path loss, emits periodic feedback (delay/loss/rate + NACKs),
/// and enforces in-order delivery for the critical class only.
class ArtpReceiver {
 public:
  struct Config {
    sim::Time feedback_interval = sim::milliseconds(25);
    std::int32_t feedback_bytes = 60;
    /// Incomplete non-critical messages are reported (incomplete) after this.
    sim::Time expiry = sim::milliseconds(250);
    /// Window of the per-path min-OWD estimate that anchors the delay-
    /// gradient feedback. Must be windowed: an all-time minimum turns any
    /// later base-delay increase into a phantom standing queue that pins the
    /// sender's controller at its floor rate (see windowed_filter.hpp).
    sim::Time min_owd_window = sim::seconds(10);
    /// When set, the receiver publishes "artp.delivered_messages", per-app
    /// goodput counters ("artp.goodput_bytes" under
    /// "<metrics_entity>/app:<name>"), and an "artp.msg_latency_ms"
    /// histogram under `metrics_entity`.
    obs::MetricsRegistry* metrics = nullptr;
    std::string metrics_entity = "artp-rx";
    /// When set, the receiver registers `trace_entity` and records message
    /// deliver/FEC-repair events into its ring. Must outlive the receiver.
    trace::Tracer* tracer = nullptr;
    std::string trace_entity = "artp-rx";
  };

  ArtpReceiver(net::Network& net, net::NodeId local, net::Port local_port);
  ArtpReceiver(net::Network& net, net::NodeId local, net::Port local_port, Config cfg);
  ~ArtpReceiver();

  ArtpReceiver(const ArtpReceiver&) = delete;
  ArtpReceiver& operator=(const ArtpReceiver&) = delete;

  void set_message_callback(std::function<void(const ArtpDelivery&)> cb) {
    message_cb_ = std::move(cb);
  }

  std::int64_t delivered_messages() const { return delivered_messages_; }
  std::int64_t fec_recoveries() const { return fec_recoveries_; }
  std::int64_t expired_messages() const { return expired_messages_; }
  sim::RateMeter& goodput() { return goodput_; }

 private:
  struct PathState {
    std::uint64_t highest_seq = 0;
    std::int64_t received_in_epoch = 0;
    std::int64_t lost_in_epoch = 0;
    std::int64_t bytes_in_epoch = 0;
    sim::Time last_owd = 0;
    /// Trailing-window minimum of observed one-way delays on this path.
    WindowedMinTime min_owd;
    bool active = false;
  };

  struct PendingMsg {
    std::uint32_t critical_seq = 0;
    std::uint32_t chunk_count = 0;
    std::vector<bool> have;
    std::uint32_t have_count = 0;
    std::int64_t bytes = 0;
    net::TrafficClass tclass{};
    net::Priority priority{};
    net::AppData app{};
    std::uint32_t frame_id = 0;
    sim::Time submitted_at = 0;
    sim::Time first_arrival = 0;
    std::uint32_t parity_seen = 0;
    bool fec_recovered = false;
    bool delivered = false;
    trace::TraceContext trace;  ///< from the first packet of the message
  };

  void on_packet(net::Packet&& p);
  void note_chunk(std::uint64_t msg_id, const net::ArtpHeader& h, const net::Packet& p,
                  bool via_fec);
  void try_deliver(std::uint64_t msg_id);
  void note_delivery(const ArtpDelivery& d);
  void flush_critical_in_order();
  void feedback_tick();
  void expire_stale(sim::Time now);
  void record_trace(trace::EventKind kind, const trace::TraceContext& ctx, std::uint64_t uid,
                    std::int64_t size, const char* reason = nullptr);

  net::Network& net_;
  net::NodeId local_;
  net::Port local_port_;
  Config cfg_;
  sim::Timer feedback_timer_;

  std::optional<std::tuple<net::NodeId, net::Port, net::FlowId>> peer_;
  std::map<std::uint8_t, PathState> path_state_;
  std::map<std::uint64_t, PendingMsg> pending_;

  // Critical-class in-order delivery over critical_seq: completed messages
  // ahead of the contiguity watermark wait here.
  std::map<std::uint32_t, ArtpDelivery> critical_ready_;
  std::uint32_t next_critical_seq_ = 1;  ///< contiguity watermark (expected)
  std::uint32_t highest_critical_seen_ = 0;
  /// Critical seqs known to exist (a later seq arrived) but never seen on
  /// the wire, with the time the gap was noticed. Drives full-loss NACKs.
  std::map<std::uint32_t, sim::Time> missing_critical_since_;

  std::int64_t delivered_messages_ = 0;
  std::int64_t fec_recoveries_ = 0;
  std::int64_t expired_messages_ = 0;
  sim::RateMeter goodput_;
  std::function<void(const ArtpDelivery&)> message_cb_;
  trace::EntityId trace_entity_ = trace::kNoEntity;
};

}  // namespace arnet::transport
