#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "arnet/net/link.hpp"
#include "arnet/net/network.hpp"
#include "arnet/net/packet.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/trace/trace.hpp"

namespace arnet::transport {

/// Per-frame outcome handed to the receiver's frame callback and folded into
/// the on-time / late / incomplete counters (the arvr-sim accounting: a frame
/// either reassembles within its deadline, reassembles late, or never
/// reassembles at all).
struct QuicFrameResult {
  std::uint32_t frame_id = 0;
  std::int64_t bytes = 0;        ///< payload bytes received
  sim::Time submitted_at = 0;    ///< sender-side frame submission time
  sim::Time completed_at = sim::kNever;  ///< kNever while incomplete
  bool complete = false;
  bool on_time = false;          ///< complete && latency() <= deadline
  /// Trace context stamped by send_frame(bytes, ctx); inactive otherwise.
  trace::TraceContext trace;

  sim::Time latency() const { return completed_at - submitted_at; }
};

/// QUIC-lite sender: fragments each application frame into ~MTU datagrams and
/// clocks them out at a fixed inter-fragment pacing interval (200 us by
/// default, after arvr-sim.cc). Deliberately congestion-blind: this is the
/// "modern paced UDP stack" contrast point of the transport shootout — pacing
/// removes the burst-loss failure mode of window transports, but nothing
/// backs off when the path slows down.
class QuicLiteSender {
 public:
  struct Config {
    std::int32_t mtu_payload = 1200;   ///< fragment payload bytes
    std::int32_t header_bytes = 38;    ///< IP + UDP + QUIC short header
    sim::Time pace_interval = sim::microseconds(200);
    /// Pin fragments to this first-hop link; nullptr = default routing.
    net::Link* first_hop = nullptr;
  };

  QuicLiteSender(net::Network& net, net::NodeId local, net::Port local_port,
                 net::NodeId remote, net::Port remote_port, net::FlowId flow, Config cfg);
  ~QuicLiteSender();

  QuicLiteSender(const QuicLiteSender&) = delete;
  QuicLiteSender& operator=(const QuicLiteSender&) = delete;

  /// Fragment and stage one application frame; returns its frame id.
  std::uint32_t send_frame(std::int64_t bytes);

  /// Same, stamping `ctx` on every fragment's wire packet so the frame's
  /// datagrams are attributable in packet traces and the receiver can hand
  /// the context back in its QuicFrameResult.
  std::uint32_t send_frame(std::int64_t bytes, const trace::TraceContext& ctx);

  std::uint32_t frames_sent() const { return next_frame_id_; }
  std::int64_t sent_bytes() const { return sent_bytes_; }
  std::int64_t backlog_fragments() const { return static_cast<std::int64_t>(queue_.size()); }

 private:
  struct Fragment {
    std::uint32_t frame_id = 0;
    std::uint32_t frag = 0;
    std::uint32_t frag_count = 1;
    std::int32_t payload = 0;
    sim::Time frame_submitted_at = 0;
    trace::TraceContext trace;
  };

  void pace_tick();
  void transmit(const Fragment& f);

  net::Network& net_;
  net::NodeId local_, remote_;
  net::Port local_port_, remote_port_;
  net::FlowId flow_;
  Config cfg_;
  sim::Timer pace_timer_;

  std::deque<Fragment> queue_;
  std::uint32_t next_frame_id_ = 0;
  std::uint64_t next_wire_seq_ = 0;
  std::int64_t sent_bytes_ = 0;
};

/// QUIC-lite receiver: reassembles frames keyed by frame id (tolerating
/// reordered and duplicate fragments), and classifies every frame against its
/// deadline — on-time, late, or incomplete once the expiry sweep gives up on
/// its missing fragments.
class QuicLiteReceiver {
 public:
  struct Config {
    sim::Time deadline = sim::milliseconds(50);  ///< arvr-sim default
    /// Incomplete frames are abandoned (and counted) after this long.
    sim::Time expiry = sim::milliseconds(250);
    sim::Time sweep_interval = sim::milliseconds(10);
  };

  QuicLiteReceiver(net::Network& net, net::NodeId local, net::Port local_port);
  QuicLiteReceiver(net::Network& net, net::NodeId local, net::Port local_port, Config cfg);
  ~QuicLiteReceiver();

  QuicLiteReceiver(const QuicLiteReceiver&) = delete;
  QuicLiteReceiver& operator=(const QuicLiteReceiver&) = delete;

  /// Invoked once per frame: at completion (complete=true) or when the sweep
  /// abandons it (complete=false).
  void set_frame_callback(std::function<void(const QuicFrameResult&)> cb) {
    frame_cb_ = std::move(cb);
  }

  std::int64_t frames_on_time() const { return on_time_; }
  std::int64_t frames_late() const { return late_; }
  std::int64_t frames_incomplete() const { return incomplete_; }
  std::int64_t frames_completed() const { return on_time_ + late_; }
  std::int64_t fragments_received() const { return fragments_received_; }
  std::int64_t duplicate_fragments() const { return duplicate_fragments_; }
  const sim::Samples& frame_latency_ms() const { return latency_ms_; }
  sim::RateMeter& goodput() { return goodput_; }

 private:
  struct PendingFrame {
    std::uint32_t frag_count = 0;
    std::vector<bool> have;
    std::uint32_t have_count = 0;
    std::int64_t bytes = 0;
    sim::Time submitted_at = 0;
    sim::Time first_arrival = 0;
    trace::TraceContext trace;  ///< from the first fragment's packet
    bool delivered = false;     ///< tombstone: absorbs trailing duplicates
  };

  void on_packet(net::Packet&& p);
  void sweep();

  net::Network& net_;
  net::NodeId local_;
  net::Port local_port_;
  Config cfg_;
  sim::Timer sweep_timer_;

  std::map<std::uint32_t, PendingFrame> pending_;  ///< frame_id -> state
  std::int64_t on_time_ = 0;
  std::int64_t late_ = 0;
  std::int64_t incomplete_ = 0;
  std::int64_t fragments_received_ = 0;
  std::int64_t duplicate_fragments_ = 0;
  sim::Samples latency_ms_;
  sim::RateMeter goodput_;
  std::function<void(const QuicFrameResult&)> frame_cb_;
};

}  // namespace arnet::transport
