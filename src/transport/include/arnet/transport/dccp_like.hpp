#pragma once

#include <functional>
#include <memory>

#include "arnet/transport/artp.hpp"

namespace arnet::transport {

/// DCCP-flavored facade (paper §V-B3: "congestion control without reliable
/// in-order delivery. New data is always preferred to former data for
/// transmission"): unreliable datagrams over a rate controller, where
/// anything that could not be sent fresh is dropped rather than queued.
///
/// Internally this is ARTP restricted to one full-best-effort, drop-eligible
/// class with a tight staleness bound and no FEC — which is exactly the
/// sense in which the paper's protocol generalizes the DCCP design.
class DatagramCcSocket {
 public:
  struct Config {
    sim::Time freshness = sim::milliseconds(50);  ///< drop datagrams older than this
    std::unique_ptr<RateController> controller;   ///< default delay-gradient
  };

  DatagramCcSocket(net::Network& net, net::NodeId local, net::Port local_port,
                   net::NodeId remote, net::Port remote_port, net::FlowId flow)
      : DatagramCcSocket(net, local, local_port, remote, remote_port, flow, Config{}) {}

  DatagramCcSocket(net::Network& net, net::NodeId local, net::Port local_port,
                   net::NodeId remote, net::Port remote_port, net::FlowId flow, Config cfg)
      : freshness_(cfg.freshness) {
    ArtpSenderConfig scfg;
    scfg.fec_parity = 0;
    scfg.default_stale_after = cfg.freshness;
    std::vector<ArtpPathConfig> paths;
    if (cfg.controller) {
      ArtpPathConfig pc;
      pc.controller = std::move(cfg.controller);
      paths.push_back(std::move(pc));
    }
    tx_ = std::make_unique<ArtpSender>(net, local, local_port, remote, remote_port, flow,
                                       scfg, std::move(paths));
  }

  /// Queue one datagram; it is sent at the controller's rate or silently
  /// dropped once stale.
  std::uint64_t send(std::int64_t bytes, std::uint32_t tag = 0) {
    ArtpMessageSpec m;
    m.bytes = bytes;
    m.tclass = net::TrafficClass::kFullBestEffort;
    m.priority = net::Priority::kMediumNoDelay;
    m.app = net::AppData::kGeneric;
    m.frame_id = tag;
    m.stale_after = freshness_;
    return tx_->send_message(m);
  }

  double rate_bps() const { return tx_->allowed_rate_bps(); }
  std::int64_t dropped_stale() const { return tx_->shed_messages(); }
  std::int64_t sent_bytes() const { return tx_->sent_bytes(); }
  ArtpSender& sender() { return *tx_; }

 private:
  sim::Time freshness_;
  std::unique_ptr<ArtpSender> tx_;
};

}  // namespace arnet::transport
