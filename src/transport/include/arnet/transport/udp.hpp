#pragma once

#include <cstdint>
#include <functional>

#include "arnet/net/network.hpp"
#include "arnet/net/packet.hpp"
#include "arnet/sim/simulator.hpp"

namespace arnet::transport {

/// Thin datagram endpoint: fire-and-forget sends plus a receive callback.
class UdpEndpoint {
 public:
  using Handler = std::function<void(net::Packet&&)>;

  UdpEndpoint(net::Network& net, net::NodeId local, net::Port port)
      : net_(net), local_(local), port_(port) {
    net_.node(local_).bind(port_, [this](net::Packet&& p) {
      if (handler_) handler_(std::move(p));
    });
  }

  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;

  ~UdpEndpoint() { net_.node(local_).unbind(port_); }

  void set_handler(Handler h) { handler_ = std::move(h); }

  void send(net::NodeId to, net::Port port, std::int32_t payload_bytes,
            net::FlowId flow = 0) {
    net::Packet p;
    p.flow = flow;
    p.src = local_;
    p.dst = to;
    p.src_port = port_;
    p.dst_port = port;
    p.size_bytes = payload_bytes + 28;  // IP + UDP headers
    p.header = net::UdpHeader{next_seq_++};
    net_.node(local_).send(std::move(p));
  }

  net::NodeId node() const { return local_; }
  net::Port port() const { return port_; }

 private:
  net::Network& net_;
  net::NodeId local_;
  net::Port port_;
  Handler handler_;
  std::uint64_t next_seq_ = 0;
};

/// Constant-bit-rate datagram source (saturating stations, video feeds).
class CbrSource {
 public:
  struct Config {
    double rate_bps = 1e6;
    std::int32_t payload_bytes = 1472;
    net::FlowId flow = 0;
  };

  CbrSource(net::Network& net, net::NodeId local, net::Port local_port, net::NodeId to,
            net::Port to_port, Config cfg)
      : endpoint_(net, local, local_port), to_(to), to_port_(to_port), cfg_(cfg), net_(net) {}

  void start() {
    running_ = true;
    tick();
  }

  void stop() { running_ = false; }

  std::int64_t sent_packets() const { return sent_; }

 private:
  void tick() {
    if (!running_) return;
    endpoint_.send(to_, to_port_, cfg_.payload_bytes, cfg_.flow);
    ++sent_;
    sim::Time gap = sim::transmission_delay(cfg_.payload_bytes + 28, cfg_.rate_bps);
    net_.sim().after(gap, [this] { tick(); });
  }

  UdpEndpoint endpoint_;
  net::NodeId to_;
  net::Port to_port_;
  Config cfg_;
  net::Network& net_;
  bool running_ = false;
  std::int64_t sent_ = 0;
};

}  // namespace arnet::transport
