#include "arnet/transport/quic_lite.hpp"

#include <algorithm>

namespace arnet::transport {

using net::Packet;
using net::QuicHeader;

// ------------------------------------------------------------ QuicLiteSender

QuicLiteSender::QuicLiteSender(net::Network& net, net::NodeId local, net::Port local_port,
                               net::NodeId remote, net::Port remote_port, net::FlowId flow,
                               Config cfg)
    : net_(net),
      local_(local),
      remote_(remote),
      local_port_(local_port),
      remote_port_(remote_port),
      flow_(flow),
      cfg_(cfg),
      pace_timer_(net.sim(), [this] { pace_tick(); }) {
  // Bound so ICMP-style errors or future receiver feedback have somewhere to
  // land; the transport itself is one-directional.
  net_.node(local_).bind(local_port_, [](Packet&&) {});
}

QuicLiteSender::~QuicLiteSender() { net_.node(local_).unbind(local_port_); }

std::uint32_t QuicLiteSender::send_frame(std::int64_t bytes) {
  return send_frame(bytes, trace::TraceContext{});
}

std::uint32_t QuicLiteSender::send_frame(std::int64_t bytes, const trace::TraceContext& ctx) {
  std::uint32_t id = next_frame_id_++;
  auto count = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, (bytes + cfg_.mtu_payload - 1) / cfg_.mtu_payload));
  std::int64_t remaining = std::max<std::int64_t>(bytes, 1);
  const bool was_idle = queue_.empty();
  for (std::uint32_t i = 0; i < count; ++i) {
    Fragment f;
    f.frame_id = id;
    f.frag = i;
    f.frag_count = count;
    f.payload = static_cast<std::int32_t>(std::min<std::int64_t>(remaining, cfg_.mtu_payload));
    remaining -= f.payload;
    f.frame_submitted_at = net_.sim().now();
    f.trace = ctx;
    queue_.push_back(f);
  }
  // First fragment goes out immediately; the pacer clocks out the rest. A
  // busy pacer keeps its cadence (new frames join the back of the queue).
  if (was_idle && !pace_timer_.armed()) pace_tick();
  return id;
}

void QuicLiteSender::pace_tick() {
  if (queue_.empty()) return;
  transmit(queue_.front());
  queue_.pop_front();
  if (!queue_.empty()) pace_timer_.arm(cfg_.pace_interval);
}

void QuicLiteSender::transmit(const Fragment& f) {
  Packet p;
  p.flow = flow_;
  p.src = local_;
  p.dst = remote_;
  p.src_port = local_port_;
  p.dst_port = remote_port_;
  p.size_bytes = f.payload + cfg_.header_bytes;
  p.tclass = net::TrafficClass::kFullBestEffort;
  p.priority = net::Priority::kLowest;
  QuicHeader h;
  h.frame_id = f.frame_id;
  h.frag = f.frag;
  h.frag_count = f.frag_count;
  h.wire_seq = next_wire_seq_++;
  h.sent_at = net_.sim().now();
  h.frame_submitted_at = f.frame_submitted_at;
  p.header = h;
  p.trace = f.trace;
  sent_bytes_ += p.size_bytes;
  if (cfg_.first_hop) {
    net_.send_via(*cfg_.first_hop, std::move(p));
  } else {
    net_.node(local_).send(std::move(p));
  }
}

// ---------------------------------------------------------- QuicLiteReceiver

QuicLiteReceiver::QuicLiteReceiver(net::Network& net, net::NodeId local, net::Port local_port)
    : QuicLiteReceiver(net, local, local_port, Config{}) {}

QuicLiteReceiver::QuicLiteReceiver(net::Network& net, net::NodeId local, net::Port local_port,
                                   Config cfg)
    : net_(net),
      local_(local),
      local_port_(local_port),
      cfg_(cfg),
      sweep_timer_(net.sim(), [this] { sweep(); }) {
  net_.node(local_).bind(local_port_, [this](Packet&& p) { on_packet(std::move(p)); });
  sweep_timer_.arm(cfg_.sweep_interval);
}

QuicLiteReceiver::~QuicLiteReceiver() { net_.node(local_).unbind(local_port_); }

void QuicLiteReceiver::on_packet(Packet&& p) {
  const auto* h = std::get_if<QuicHeader>(&p.header);
  if (!h) return;
  sim::Time now = net_.sim().now();
  ++fragments_received_;

  auto [it, inserted] = pending_.try_emplace(h->frame_id);
  PendingFrame& f = it->second;
  if (inserted) {
    f.frag_count = h->frag_count;
    f.have.assign(h->frag_count, false);
    f.submitted_at = h->frame_submitted_at;
    f.first_arrival = now;
    f.trace = p.trace;
  }
  if (f.delivered || h->frag >= f.have.size() || f.have[h->frag]) {
    ++duplicate_fragments_;
    return;
  }
  f.have[h->frag] = true;
  ++f.have_count;
  f.bytes += p.size_bytes;
  goodput_.on_bytes(p.size_bytes);

  if (f.have_count == f.frag_count) {
    f.delivered = true;  // tombstone until the sweep forgets the frame
    QuicFrameResult r;
    r.frame_id = h->frame_id;
    r.bytes = f.bytes;
    r.submitted_at = f.submitted_at;
    r.completed_at = now;
    r.trace = f.trace;
    r.complete = true;
    r.on_time = r.latency() <= cfg_.deadline;
    if (r.on_time) {
      ++on_time_;
    } else {
      ++late_;
    }
    latency_ms_.add(sim::to_milliseconds(r.latency()));
    if (frame_cb_) frame_cb_(r);
  }
}

void QuicLiteReceiver::sweep() {
  sim::Time now = net_.sim().now();
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingFrame& f = it->second;
    // Age from first arrival, not submission: a frame stuck behind a long
    // uplink queue should still get its expiry grace once fragments show up.
    sim::Time anchor = std::max(f.submitted_at, f.first_arrival);
    if (now - anchor < cfg_.expiry) {
      ++it;
      continue;
    }
    if (!f.delivered) {
      ++incomplete_;
      QuicFrameResult r;
      r.frame_id = it->first;
      r.bytes = f.bytes;
      r.submitted_at = f.submitted_at;
      r.trace = f.trace;
      r.complete = false;
      r.on_time = false;
      if (frame_cb_) frame_cb_(r);
    }
    it = pending_.erase(it);
  }
  sweep_timer_.arm(cfg_.sweep_interval);
}

}  // namespace arnet::transport
