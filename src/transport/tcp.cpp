#include "arnet/transport/tcp.hpp"

#include "arnet/check/assert.hpp"
#include "arnet/trace/profiler.hpp"

#include <algorithm>
#include <cmath>

namespace arnet::transport {

using net::Packet;
using net::TcpHeader;

const char* to_string(TcpFlavor f) {
  switch (f) {
    case TcpFlavor::kReno: return "Reno";
    case TcpFlavor::kNewReno: return "NewReno";
    case TcpFlavor::kCubic: return "CUBIC";
    case TcpFlavor::kVegas: return "Vegas";
    case TcpFlavor::kBbr: return "BBR";
  }
  return "?";
}

const char* to_string(BbrState s) {
  switch (s) {
    case BbrState::kStartup: return "startup";
    case BbrState::kDrain: return "drain";
    case BbrState::kProbeBw: return "probe-bw";
    case BbrState::kProbeRtt: return "probe-rtt";
  }
  return "?";
}

namespace {
// BBRv1 constants: startup gain 2/ln2, the 8-phase probe-BW cycle, the
// ProbeRTT cadence, and the 4-segment ProbeRTT window floor.
constexpr double kBbrStartupGain = 2.885;
constexpr double kBbrCycleGains[8] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
// Window-driven BBR keeps a cwnd quanta above the BDP in ProbeBw cruise
// phases (real BBR uses cwnd_gain = 2 for the same reason — with pacing the
// queue stays empty; without pacing 2x would stand a full BDP of queue, so we
// use 1.25: ~0.25 BDP standing, drained by the 0.75 phase each cycle). The
// headroom is what lets the estimator see above its own operating point: a
// cwnd pinned at exactly bw*min_rtt makes every delivery-rate sample equal
// the current estimate, which is a neutral equilibrium at *any* rate below
// capacity.
constexpr double kBbrCruiseCwndGain = 1.25;
constexpr sim::Time kBbrProbeRttInterval = sim::seconds(10);
constexpr sim::Time kBbrProbeRttDuration = sim::milliseconds(200);
constexpr double kBbrMinCwndSegments = 4.0;
}  // namespace

// ---------------------------------------------------------------- TcpSource

TcpSource::TcpSource(net::Network& net, net::NodeId local, net::Port local_port,
                     net::NodeId remote, net::Port remote_port, net::FlowId flow)
    : TcpSource(net, local, local_port, remote, remote_port, flow, Config{}) {}

TcpSource::TcpSource(net::Network& net, net::NodeId local, net::Port local_port,
                     net::NodeId remote, net::Port remote_port, net::FlowId flow, Config cfg)
    : net_(net),
      local_(local),
      remote_(remote),
      local_port_(local_port),
      remote_port_(remote_port),
      flow_(flow),
      cfg_(cfg),
      rto_timer_(net.sim(), [this] { on_rto(); }),
      tlp_timer_(net.sim(), [this] { on_tlp(); }),
      cwnd_(cfg.initial_window_segments * cfg.mss),
      ssthresh_(cfg.initial_ssthresh_segments * cfg.mss),
      rto_(cfg.initial_rto) {
  net_.node(local_).bind(local_port_, [this](Packet&& p) { on_packet(std::move(p)); });
  if (cfg_.tracer) {
    trace_entity_ = cfg_.tracer->register_entity(cfg_.trace_entity);
    trace_ctx_ = cfg_.trace_ctx.active() ? cfg_.trace_ctx : cfg_.tracer->new_trace();
  }
}

void TcpSource::record_trace(trace::EventKind kind, std::uint64_t uid, std::int64_t size,
                             const char* reason) {
  if (!cfg_.tracer) return;
  trace::TraceEvent e;
  e.time = net_.sim().now();
  e.uid = uid;
  e.size = size;
  e.trace_id = trace_ctx_.trace_id;
  e.span_id = trace_ctx_.span_id;
  e.kind = kind;
  e.reason = reason;
  cfg_.tracer->record(trace_entity_, e);
}

void TcpSource::send(std::int64_t bytes) {
  if (app_limit_ >= 0) app_limit_ += bytes;
  try_send();
}

void TcpSource::send_forever() {
  app_limit_ = -1;
  try_send();
}

std::int32_t TcpSource::segment_payload(std::uint64_t seq) const {
  if (app_limit_ < 0) return cfg_.mss;
  std::int64_t remaining = app_limit_ - static_cast<std::int64_t>(seq);
  return static_cast<std::int32_t>(std::min<std::int64_t>(cfg_.mss, std::max<std::int64_t>(remaining, 0)));
}

void TcpSource::try_send() {
  trace::ProfScope prof(cfg_.tracer, "TcpSource::try_send");
  while (true) {
    std::int32_t payload = segment_payload(next_seq_);
    if (payload <= 0) break;  // app-limited
    // Window check against the *actual* next segment, not a full MSS: an
    // app-limited sub-MSS tail may fill the remaining window instead of
    // stalling until flight drains below cwnd - MSS (which costs the tail a
    // spurious extra RTT on every short transfer).
    if (send_gate_inflight() + payload > static_cast<std::int64_t>(cwnd_)) break;
    send_segment(next_seq_, /*retransmission=*/false);
    next_seq_ += static_cast<std::uint64_t>(payload);
  }
}

void TcpSource::send_segment(std::uint64_t seq, bool retransmission) {
  std::int32_t payload = segment_payload(seq);
  if (payload <= 0) return;
  Packet p;
  p.flow = flow_;
  p.src = local_;
  p.dst = remote_;
  p.src_port = local_port_;
  p.dst_port = remote_port_;
  p.size_bytes = payload + cfg_.header_bytes;
  p.tclass = net::TrafficClass::kCriticalData;
  p.priority = net::Priority::kLowest;
  TcpHeader h;
  h.seq = seq;
  p.header = h;
  p.trace = trace_ctx_;
  record_trace(retransmission ? trace::EventKind::kRetx : trace::EventKind::kTx, seq,
               p.size_bytes);
  if (cfg_.first_hop) {
    p.src = local_;
    net_.send_via(*cfg_.first_hop, std::move(p));
  } else {
    net_.node(local_).send(std::move(p));
  }

  if (retransmission) {
    retransmitted_above_ = std::min(retransmitted_above_, seq);
    recovery_rtx_inflight_ += payload;
    timed_seq_.reset();  // Karn: never time retransmitted data
  } else {
    if (!timed_seq_) timed_seq_ = {seq, net_.sim().now()};
    if (cfg_.flavor == TcpFlavor::kBbr) {
      // Karn applies to rate samples too: only first transmissions get a
      // flight record (a retransmission's flight time is ambiguous).
      bbr_pkt_samples_.push_back({seq + static_cast<std::uint64_t>(payload),
                                  net_.sim().now(), delivered_bytes_,
                                  in_recovery_});
    }
  }
  if (!rto_timer_.armed()) arm_rto();
  if (cfg_.sack && !tlp_fired_) arm_tlp();
}

void TcpSource::arm_rto() { rto_timer_.arm(rto_ * backoff_); }

void TcpSource::arm_tlp() {
  // Probe timeout: 2*SRTT, the RFC 8985 tail-loss probe cadence. Before the
  // first RTT sample, fall back to the (un-backed-off) RTO estimate.
  tlp_timer_.arm(srtt_ > 0 ? 2 * srtt_ : rto_);
}

void TcpSource::on_tlp() {
  // Tail-loss probe (RFC 8985 flavor, SACK flows only — the probe's value is
  // the SACK evidence it elicits). When the tail of a flight is lost there
  // are no further ACKs: no dup-ACKs, no fast recovery, and the only repair
  // path is the retransmission timer with exponential backoff — 200 ms, then
  // 400, 800, 1600... On a bursty link this is a death spiral: the flow sends
  // one packet per backed-off RTO, each one a coin flip, and a few unlucky
  // flips idle the link for seconds. The probe converts the stall back into
  // an ACK-clocked event: send one segment of *new* data (allowed to exceed
  // cwnd by that one segment); if it lands, the receiver SACKs it, the
  // scoreboard shows data above the hole, and ordinary fast recovery takes
  // over — no RTO, no backoff.
  if (!cfg_.sack || complete() || flight_size() == 0 || tlp_fired_) return;
  tlp_fired_ = true;
  if (cfg_.metrics) cfg_.metrics->counter("tcp.tlp_probes", cfg_.metrics_entity).add();
  std::int32_t payload = segment_payload(next_seq_);
  if (payload > 0) {
    send_segment(next_seq_, /*retransmission=*/false);
    next_seq_ += static_cast<std::uint64_t>(payload);
  } else {
    // App-limited, nothing new to send: probe with the lowest hole instead
    // (on success the cumulative ACK advances, which is just as good).
    send_segment(highest_ack_, /*retransmission=*/true);
  }
  if (!rto_timer_.armed()) arm_rto();
}

void TcpSource::update_rtt(sim::Time sample) {
  vegas_base_rtt_ = std::min(vegas_base_rtt_, sample);
  vegas_min_rtt_epoch_ = std::min(vegas_min_rtt_epoch_, sample);
  if (cfg_.flavor == TcpFlavor::kBbr) {
    sim::Time now = net_.sim().now();
    // The ProbeRTT clock restarts only on a *strict* improvement: in a
    // deterministic simulation samples equal the floor exactly during quiet
    // phases, and refreshing on equality would postpone ProbeRTT forever.
    if (bbr_min_rtt_.empty() || sample < bbr_min_rtt_.get_or(0)) {
      bbr_min_rtt_stamp_ = now;
    }
    bbr_min_rtt_.update(sample, now);
  }
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    sim::Time err = sample - srtt_;
    srtt_ += err / 8;
    rttvar_ += (std::abs(err) - rttvar_) / 4;
  }
  rto_ = std::max(cfg_.min_rto, srtt_ + 4 * rttvar_);
  rto_ = std::min(rto_, cfg_.max_rto);
  if (cfg_.metrics) {
    cfg_.metrics->histogram("tcp.rtt_ms", cfg_.metrics_entity)
        .record(sim::to_milliseconds(sample));
  }
}

void TcpSource::on_packet(Packet&& p) {
  const auto* h = std::get_if<TcpHeader>(&p.header);
  if (!h || !h->is_ack) return;
  if (cfg_.sack) integrate_sack(*h);
  on_ack(h->ack);
}

void TcpSource::integrate_sack(const net::TcpHeader& h) {
  const std::uint64_t delivered_before = delivered_bytes_;
  for (const auto& [begin, end] : h.sack) {
    if (end <= begin) continue;
    // Insert and merge with overlapping/adjacent ranges. Whatever length the
    // merged range gains over the ranges it absorbed is newly-arrived data:
    // it feeds the delivered counter BBR's rate samples are computed from
    // (sacked data has reached the receiver even while the cumulative ack
    // is pinned at a hole).
    std::uint64_t b = begin, e = end;
    std::uint64_t absorbed = 0;
    auto it = sacked_.lower_bound(b);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= b) {
        b = prev->first;
        e = std::max(e, prev->second);
        absorbed += prev->second - prev->first;
        it = sacked_.erase(prev);
      }
    }
    while (it != sacked_.end() && it->first <= e) {
      e = std::max(e, it->second);
      absorbed += it->second - it->first;
      it = sacked_.erase(it);
    }
    sacked_.emplace(b, e);
    delivered_bytes_ += (e - b) - absorbed;
  }
  if (delivered_bytes_ > delivered_before) {
    // Fresh SACK evidence: both path directions demonstrably work right now,
    // so a backed-off RTO estimate is about a stall that has ended — restart
    // the timer at its base value (Linux re-arms the RTO on every ACK the
    // same way). Without this, one surviving probe still leaves the flow
    // parked behind a multi-second backoff.
    backoff_ = 1;
    arm_rto();
    // RACK-style lost-retransmission detection: `recover_` was next_seq_ when
    // the bottom hole was (re)transmitted, so any newly SACKed byte above it
    // was sent *after* that retransmission. On a FIFO path, later data
    // arriving while the cumulative ACK is still pinned means the
    // retransmission is gone — un-gate the rescue instead of waiting out the
    // once-per-SRTT clock. The min-RTT guard keeps a retransmission younger
    // than one path traversal from being declared dead.
    if (in_recovery_ && !sacked_.empty() &&
        std::prev(sacked_.end())->second > recover_ &&
        vegas_base_rtt_ != sim::kNever &&
        net_.sim().now() - sack_bottom_rtx_at_ >= vegas_base_rtt_) {
      sack_bottom_rtx_at_ = 0;
    }
  }
}

bool TcpSource::retransmit_next_sack_hole() {
  // RFC 6675: a segment is retransmittable only when the scoreboard shows
  // SACKed data *above* it — the receiver demonstrably got something later,
  // so the gap is a loss, not data still in flight. Sweeping all unSACKed
  // bytes up to `recover_` instead (the pre-fix behaviour) retransmits the
  // whole outstanding window one segment per dup-ACK whenever the scoreboard
  // is empty or sparse: an ungated duplicate-traffic echo that stands a
  // queue at the bottleneck and holds the flow in recovery indefinitely.
  if (sacked_.empty()) return false;
  const std::uint64_t highest_sacked = std::prev(sacked_.end())->second;
  std::uint64_t seq = std::max(highest_ack_, sack_retransmit_cursor_);
  while (seq < std::min(recover_, highest_sacked)) {
    // Skip over SACKed ranges.
    auto it = sacked_.upper_bound(seq);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > seq) {
        seq = prev->second;
        continue;
      }
    }
    send_segment(seq, /*retransmission=*/true);
    sack_retransmit_cursor_ = seq + static_cast<std::uint64_t>(segment_payload(seq));
    return true;
  }
  return false;
}

bool TcpSource::sack_pipe_repair() {
  // RFC 6675 pipe-driven repair: keep retransmitting evidenced holes while
  // the pipe estimate leaves room under cwnd. One-repair-per-ACK (the pre-fix
  // behaviour) heals a multi-segment burst one hole per round trip; the pipe
  // already accounts every lost segment as gone from the network, so sending
  // several repairs back-to-back is conservative, not a burst.
  bool sent = false;
  while (send_gate_inflight() + static_cast<std::int64_t>(cfg_.mss) <=
         static_cast<std::int64_t>(cwnd_)) {
    if (!retransmit_next_sack_hole()) break;
    sent = true;
    sack_bottom_rtx_at_ = net_.sim().now();
  }
  return sent;
}

void TcpSource::on_ack(std::uint64_t ack) {
  // A peer can only acknowledge bytes we actually put on the wire; anything
  // beyond next_seq_ means sender/receiver sequence state diverged.
  ARNET_ASSERT(ack <= next_seq_, "ACK for byte ", ack, " but only ", next_seq_,
               " bytes were ever sent (flow ", flow_, ")");
  record_trace(trace::EventKind::kAck, ack, 0, ack > highest_ack_ ? nullptr : "dup");
  if (cfg_.sack) {
    // Any ACK demonstrates liveness: restart the probe clock, and a
    // cumulative advance opens a new flight (one probe per flight).
    if (ack > highest_ack_) tlp_fired_ = false;
    arm_tlp();
  }
  if (ack > highest_ack_) {
    // New data acknowledged.
    backoff_ = 1;
    if (timed_seq_ && ack > timed_seq_->first && timed_seq_->first < retransmitted_above_) {
      update_rtt(net_.sim().now() - timed_seq_->second);
    }
    if (timed_seq_ && ack > timed_seq_->first) timed_seq_.reset();
    if (ack >= retransmitted_above_) retransmitted_above_ = UINT64_MAX;

    // Advance the delivered counter by the cum-ack jump, minus whatever part
    // of [highest_ack_, ack) was already counted when it arrived as a SACK.
    {
      std::uint64_t sacked_overlap = 0;
      for (auto it = sacked_.begin(); it != sacked_.end() && it->first < ack; ++it) {
        std::uint64_t lo = std::max(it->first, highest_ack_);
        std::uint64_t hi = std::min(it->second, ack);
        if (hi > lo) sacked_overlap += hi - lo;
      }
      delivered_bytes_ += (ack - highest_ack_) - sacked_overlap;
    }
    // Cum-ACK progress covers the retransmissions that repaired the holes
    // below it; drain them from the pipe's retransmission term.
    recovery_rtx_inflight_ = std::max<std::int64_t>(
        0, recovery_rtx_inflight_ - static_cast<std::int64_t>(ack - highest_ack_));

    // BBR digests every delivery — including recovery-path ones — into its
    // bw/min-RTT model and sets cwnd from it; the loss-driven window edits
    // below are skipped for it.
    if (cfg_.flavor == TcpFlavor::kBbr) bbr_sample(ack);

    if (in_recovery_) {
      if (ack >= recover_ || cfg_.flavor == TcpFlavor::kReno) {
        // Full ACK (or plain Reno): leave recovery.
        in_recovery_ = false;
        dupacks_ = 0;
        if (cfg_.flavor != TcpFlavor::kBbr) cwnd_ = ssthresh_;
        sack_retransmit_cursor_ = 0;
        recovery_rtx_inflight_ = 0;
      } else {
        // Partial ACK. NewReno (RFC 6582): retransmit the hole at `ack`,
        // deflate the window by the newly acked amount, keep sending.
        // SACK (RFC 6675): the scoreboard decides what is lost — repair as
        // many evidenced holes as the pipe allows, no deflation (pipe
        // conservation replaces it). The blind NewReno retransmit of `ack`
        // is wrong under SACK when nothing is SACKed above it (the data is
        // usually in flight, and each duplicate triggers a dup-ACK echo
        // that re-enters recovery and floods the bottleneck), but burst
        // losses can wipe out SACK evidence entirely — so when the sweep is
        // dry, fall back to it at most once per RTT: an RTT of cum-ACK
        // silence is real evidence that `ack` is gone.
        double newly = static_cast<double>(ack - highest_ack_);
        highest_ack_ = ack;
        if (cfg_.sack) {
          sack_retransmit_cursor_ = ack;
          if (!sack_pipe_repair() && net_.sim().now() - sack_bottom_rtx_at_ > srtt_) {
            send_segment(ack, /*retransmission=*/true);
            sack_bottom_rtx_at_ = net_.sim().now();
          }
        } else {
          if (cfg_.flavor != TcpFlavor::kBbr) {
            cwnd_ = std::max(cwnd_ - newly + cfg_.mss, 2.0 * cfg_.mss);
          }
          send_segment(ack, /*retransmission=*/true);
        }
        trace();
        arm_rto();
        try_send();
        return;
      }
    } else {
      dupacks_ = 0;
    }

    std::int64_t newly = static_cast<std::int64_t>(ack - highest_ack_);
    highest_ack_ = ack;
    // Drop scoreboard state the cumulative ACK has overtaken.
    for (auto it = sacked_.begin(); it != sacked_.end() && it->first < highest_ack_;) {
      std::uint64_t end = it->second;
      it = sacked_.erase(it);
      if (end > highest_ack_) sacked_.emplace(highest_ack_, end);
    }
    grow_window(newly);
    if (cfg_.flavor == TcpFlavor::kVegas && ack >= vegas_next_tick_seq_) vegas_rtt_tick();
    trace();

    if (complete()) {
      rto_timer_.stop();
      if (!completion_reported_) {
        completion_reported_ = true;
        if (on_complete_) on_complete_();
      }
      return;
    }
    arm_rto();
    try_send();
  } else if (ack == highest_ack_ && flight_size() > 0) {
    ++dupacks_;
    if (in_recovery_) {
      if (cfg_.sack) {
        // RFC 6675: each dup-ACK frees pipe space (a SACKed packet left the
        // network); repair holes while the pipe allows.
        if (!sack_pipe_repair() && net_.sim().now() - sack_bottom_rtx_at_ > srtt_) {
          // Lost-retransmission rescue. The sweep is dry yet the cumulative
          // ACK is still stuck below SACKed data: the lowest hole was
          // retransmitted over an RTT ago, dup-ACKs keep arriving, and no
          // partial ACK ever came back — the retransmission itself is gone.
          // Without the rescue the flow deadlocks until RTO (the cursor only
          // sweeps upward; only a partial ACK rewinds it, and the lost
          // retransmission is precisely what prevents any partial ACK from
          // arriving). The RTT gate keeps the rescue from re-firing while a
          // live retransmission is still legitimately in flight (dup-ACKs
          // arrive every packet; a DupThresh-style count would re-send the
          // same hole dozens of times per round trip). The retransmissions we
          // believed in flight are evidently gone with it — drop them from
          // the pipe too. The rescue itself must bypass the pipe gate: after
          // an RTO cwnd is one segment and probe traffic above the highest
          // SACK keeps the pipe full, so a gated rescue would never fire and
          // the flow would sit out the full backed-off RTO chain.
          recovery_rtx_inflight_ = 0;
          sack_retransmit_cursor_ = highest_ack_;
          if (retransmit_next_sack_hole()) sack_bottom_rtx_at_ = net_.sim().now();
        }
      } else if (cfg_.flavor != TcpFlavor::kBbr) {
        // Non-SACK recovery: window inflation lets new data flow while the
        // single known hole repairs (the classic NewReno dance).
        cwnd_ += cfg_.mss;
      }
      try_send();
    } else if (dupacks_ == 3) {
      enter_recovery();
    } else if (cfg_.sack) {
      // Limited transmit (RFC 3042, mandated by RFC 6675 §5 when SACK is in
      // use): the first two dup-ACKs may each put one new segment in flight,
      // up to two segments beyond cwnd. At small windows this is the
      // difference between fast recovery and a timeout — lose 3 of 5
      // outstanding segments and only 2 dup-ACKs ever come back, which never
      // reaches DupThresh unless these extra segments go out and get SACKed.
      std::int32_t payload = segment_payload(next_seq_);
      if (payload > 0 && flight_size() + payload <=
                             static_cast<std::int64_t>(cwnd_) + 2 * cfg_.mss) {
        send_segment(next_seq_, /*retransmission=*/false);
        next_seq_ += static_cast<std::uint64_t>(payload);
      }
    }
    trace();
  }
}

void TcpSource::grow_window(std::int64_t newly_acked) {
  switch (cfg_.flavor) {
    case TcpFlavor::kReno:
    case TcpFlavor::kNewReno:
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(newly_acked);  // slow start (ABC-style)
      } else {
        // ~1 MSS/RTT, scaled down for coupled multipath subflows.
        cwnd_ += cfg_.ca_growth_scale * static_cast<double>(cfg_.mss) * cfg_.mss / cwnd_;
      }
      break;
    case TcpFlavor::kCubic:
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(newly_acked);
        cubic_epoch_ = -1;
        cubic_last_progress_ = -1;
      } else {
        sim::Time now = net_.sim().now();
        if (cubic_epoch_ < 0) {
          cubic_epoch_ = now;
          if (cubic_wmax_ < cwnd_) {
            // New maximum territory: probe from here.
            cubic_wmax_ = cwnd_;
            cubic_k_ = 0.0;
          }
        } else if (cubic_last_progress_ >= 0 && now - cubic_last_progress_ > rto_) {
          // RFC 8312 §5.8: W_cubic(t) is a function of *congestion-epoch*
          // time, not wall time. An app-limited or idle gap must not run the
          // cubic clock, or the first ACK after the gap lands far up the
          // curve and every subsequent ACK grows the window at the full
          // per-ACK clamp regardless of wmax — a sustained slow-start-like
          // burst into the network. Shift the epoch by the quiescent gap so
          // growth resumes exactly where it paused.
          cubic_epoch_ += now - cubic_last_progress_;
        }
        cubic_last_progress_ = now;
        double target = cubic_target();
        double inc = target > cwnd_
                         ? std::min<double>(cfg_.mss, cfg_.mss * (target - cwnd_) / cwnd_)
                         : 0.01 * cfg_.mss;  // slow floor below the curve
        cwnd_ += inc;
      }
      break;
    case TcpFlavor::kVegas:
      // Slow start only; congestion avoidance is the once-per-RTT tick.
      if (cwnd_ < ssthresh_) cwnd_ += static_cast<double>(newly_acked);
      break;
    case TcpFlavor::kBbr:
      // cwnd was already set from the model in bbr_sample(); before the
      // first delivery-rate sample exists, grow like slow start so the
      // model has something to measure.
      if (bbr_bw_filter_.empty()) cwnd_ += static_cast<double>(newly_acked);
      break;
  }
}

double TcpSource::cubic_target() const {
  // RFC 8312 with C = 0.4, beta = 0.7, computed in MSS units.
  double t = sim::to_seconds(net_.sim().now() - cubic_epoch_);
  double wmax_mss = cubic_wmax_ / cfg_.mss;
  double target_mss = 0.4 * std::pow(t - cubic_k_, 3.0) + wmax_mss;
  return target_mss * cfg_.mss;
}

void TcpSource::vegas_rtt_tick() {
  std::uint64_t epoch_end = next_seq_;
  if (vegas_min_rtt_epoch_ != sim::kNever && vegas_base_rtt_ != sim::kNever &&
      !in_recovery_) {
    double obs = static_cast<double>(vegas_min_rtt_epoch_);
    double base = static_cast<double>(vegas_base_rtt_);
    // Packets queued by us = cwnd * (obs - base) / obs, in MSS.
    double diff_mss = (cwnd_ / cfg_.mss) * (obs - base) / obs;
    if (cwnd_ < ssthresh_) {
      if (diff_mss > 4.0) ssthresh_ = cwnd_;  // gamma: leave slow start early
    } else if (diff_mss < 2.0) {
      cwnd_ += cfg_.mss;  // alpha: too few packets in the pipe
    } else if (diff_mss > 4.0) {
      cwnd_ -= cfg_.mss;  // beta: backing off before loss
    }
    cwnd_ = std::max(cwnd_, 2.0 * cfg_.mss);
    // Track the threshold down so a delay-driven decrease cannot bounce the
    // flow back into slow start.
    ssthresh_ = std::min(ssthresh_, cwnd_);
  }
  vegas_min_rtt_epoch_ = sim::kNever;
  vegas_next_tick_seq_ = epoch_end;
}

void TcpSource::bbr_sample(std::uint64_t ack) {
  sim::Time now = net_.sim().now();
  // Delivery-rate estimator, per-packet-flight style (after the
  // delivery-rate-estimation draft): when a first-transmission is
  // cumulatively acked, its sample is the growth of `delivered_bytes_`
  // (cum-ack advances plus newly SACKed data, counted when they arrive)
  // across the packet's flight, over the flight's duration. Estimators that
  // look equivalent are not:
  //  - Quotienting ack deltas over inter-ACK spacing breaks under SACK
  //    recovery: a cumulative ACK that jumps a repaired hole "delivers"
  //    tens of segments in one tiny gap — and even a delivered-counter
  //    variant bursts when the bounded SACK option hides arrivals until
  //    the hole repairs. A windowed *max* filter latches such spikes as
  //    phantom bandwidth (40x the link rate on a lossy path, which also
  //    keeps the startup growth check firing forever).
  //  - Quotienting delivered bytes over whole *rounds* measures goodput
  //    (~cwnd/RTT), not bottleneck bandwidth, and a window-driven BBR then
  //    locks into a self-fulfilling underestimate: cwnd = bw*min_rtt is a
  //    neutral equilibrium at *any* rate below capacity, and the ProbeBw
  //    1.25-gain bump gets averaged away with its neighboring 0.75 drain.
  // A flight-long quotient is physically bounded — arrivals during any
  // >=RTT interval cannot exceed link_rate*interval + one segment — while
  // packets sent under the 1.25 probe gain genuinely measure the elevated
  // delivery rate, so the filter can ratchet up to true capacity but
  // never above it.
  std::optional<BbrPktSample> newest;
  while (!bbr_pkt_samples_.empty() && bbr_pkt_samples_.front().end_seq <= ack) {
    newest = bbr_pkt_samples_.front();
    bbr_pkt_samples_.pop_front();
  }
  if (newest && now > newest->sent_at && delivered_bytes_ > newest->delivered_at_send) {
    double bps = static_cast<double>(delivered_bytes_ - newest->delivered_at_send) * 8.0 /
                 sim::to_seconds(now - newest->sent_at);
    bbr_bw_filter_.update(bps, static_cast<std::int64_t>(bbr_round_count_));
  }

  // Round accounting: a round ends when data sent after the previous round
  // marker is acknowledged (one round ~ one RTT of delivered data). Rounds
  // key the bw filter's expiry window and pace the ProbeBw gain cycle.
  bool round_start = false;
  if (ack > bbr_round_end_seq_) {
    ++bbr_round_count_;
    bbr_round_end_seq_ = next_seq_;
    round_start = true;
  }
  bbr_update_model(now, round_start);
}

void TcpSource::bbr_update_model(sim::Time now, bool round_start) {
  // Startup exit: bandwidth grew < 25 % for three consecutive rounds.
  if (round_start && !bbr_filled_pipe_) {
    double bw = bbr_bw_filter_.get_or(0.0);
    if (bw >= bbr_full_bw_ * 1.25) {
      bbr_full_bw_ = bw;
      bbr_full_bw_rounds_ = 0;
    } else if (++bbr_full_bw_rounds_ >= 3) {
      bbr_filled_pipe_ = true;
    }
  }

  // ProbeRTT entry: the min-RTT estimate has not improved for the whole
  // probe interval, so the model may be riding a stale (too-low inflight
  // would be fine, too-high builds queue) floor — drop to 4 segments and
  // re-measure.
  if (bbr_state_ != BbrState::kProbeRtt && bbr_min_rtt_stamp_ != sim::kNever &&
      now - bbr_min_rtt_stamp_ > kBbrProbeRttInterval) {
    bbr_state_ = BbrState::kProbeRtt;
    bbr_probe_rtt_done_ = now + std::max(kBbrProbeRttDuration, srtt_);
  }

  switch (bbr_state_) {
    case BbrState::kStartup:
      if (bbr_filled_pipe_) bbr_state_ = BbrState::kDrain;
      break;
    case BbrState::kDrain: {
      double bw = bbr_bw_filter_.get_or(0.0);
      sim::Time min_rtt = bbr_min_rtt_.get_or(srtt_);
      double bdp = bw * sim::to_seconds(min_rtt) / 8.0;
      if (static_cast<double>(flight_size()) <= bdp) {
        // Queue from startup has bled off; cruise. Enter the cycle at a
        // neutral phase (deterministic, unlike Linux's randomized entry).
        bbr_state_ = BbrState::kProbeBw;
        bbr_cycle_index_ = 2;
        bbr_cycle_stamp_ = now;
      }
      break;
    }
    case BbrState::kProbeBw:
      // Gain phases advance per *round trip*, not per wall-clock min-RTT.
      // The delivery-rate sample for data sent under the 1.25 probe gain
      // lands in the following round; a wall-clock cycle desynced from
      // rounds smears the probe bump across the adjacent 0.75 drain phase
      // inside one sampling round, the filter never sees a sample above its
      // current estimate, and the whole model decays toward zero instead of
      // probing (cwnd = bw*min_rtt is a *neutral* equilibrium at any rate
      // below capacity — only the probe phase pushes it up).
      if (round_start) {
        bbr_cycle_index_ = (bbr_cycle_index_ + 1) % 8;
        bbr_cycle_stamp_ = now;
      }
      break;
    case BbrState::kProbeRtt:
      if (now >= bbr_probe_rtt_done_) {
        bbr_min_rtt_stamp_ = now;  // restart the probe interval
        bbr_state_ = bbr_filled_pipe_ ? BbrState::kProbeBw : BbrState::kStartup;
        bbr_cycle_index_ = 2;
        bbr_cycle_stamp_ = now;
      }
      break;
  }
  bbr_set_cwnd();
}

void TcpSource::bbr_set_cwnd() {
  if (bbr_state_ == BbrState::kProbeRtt) {
    cwnd_ = kBbrMinCwndSegments * cfg_.mss;
    return;
  }
  double bw = bbr_bw_filter_.get_or(0.0);
  sim::Time min_rtt = bbr_min_rtt_.get_or(0);
  if (bw <= 0.0 || min_rtt <= 0) return;  // no model yet: keep slow start
  double bdp = bw * sim::to_seconds(min_rtt) / 8.0;
  double gain = kBbrStartupGain;  // kStartup
  if (bbr_state_ == BbrState::kDrain) {
    gain = 1.0;  // window-driven drain: cap inflight at one BDP
  } else if (bbr_state_ == BbrState::kProbeBw) {
    gain = kBbrCycleGains[bbr_cycle_index_];
    if (gain >= 1.0) gain = std::max(gain, kBbrCruiseCwndGain);
  }
  cwnd_ = std::max(gain * bdp, kBbrMinCwndSegments * cfg_.mss);
}

void TcpSource::on_loss_window_reduction() {
  if (cfg_.flavor == TcpFlavor::kBbr) {
    // BBR: loss is not a window signal. The bw filter forgets a vanished
    // path capacity within its round window; nothing to do here.
    return;
  }
  if (cfg_.flavor == TcpFlavor::kCubic) {
    // CUBIC: remember the pre-loss maximum and decay by beta = 0.7.
    double wmax_mss = cwnd_ / cfg_.mss;
    cubic_wmax_ = cwnd_;
    cubic_k_ = std::cbrt(wmax_mss * 0.3 / 0.4);
    cubic_epoch_ = -1;
    ssthresh_ = std::max(cwnd_ * 0.7, 2.0 * cfg_.mss);
  } else {
    ssthresh_ = std::max(static_cast<double>(flight_size()) / 2.0, 2.0 * cfg_.mss);
  }
}

void TcpSource::enter_recovery() {
  ++fast_retransmits_;
  if (cfg_.metrics) cfg_.metrics->counter("tcp.fast_retransmits", cfg_.metrics_entity).add();
  on_loss_window_reduction();
  if (cfg_.flavor != TcpFlavor::kBbr) cwnd_ = ssthresh_ + 3 * cfg_.mss;
  in_recovery_ = true;
  recover_ = next_seq_;
  sack_bottom_rtx_at_ = net_.sim().now();
  sack_retransmit_cursor_ = highest_ack_;
  recovery_rtx_inflight_ = 0;
  send_segment(highest_ack_, /*retransmission=*/true);
  if (cfg_.sack) sack_retransmit_cursor_ = highest_ack_ + static_cast<std::uint64_t>(segment_payload(highest_ack_));
  trace();
}

void TcpSource::on_rto() {
  if (complete() || flight_size() == 0) return;
  ++timeouts_;
  if (cfg_.metrics) cfg_.metrics->counter("tcp.rto_timeouts", cfg_.metrics_entity).add();
  on_loss_window_reduction();
  cwnd_ = cfg_.mss;
  dupacks_ = 0;
  backoff_ = std::min(backoff_ * 2, 64);
  // Stay in (or enter) recovery covering everything outstanding. Classic TCP
  // rewinds snd_nxt to snd_una after a timeout and go-back-N's through the
  // gap; this sender never rewinds next_seq_, so without recovery state each
  // surviving hole from a loss burst waits for its *own* backed-off RTO —
  // one segment per 200 ms..3.2 s instead of one per partial-ACK round trip.
  in_recovery_ = true;
  recover_ = next_seq_;
  sack_bottom_rtx_at_ = net_.sim().now();
  sack_retransmit_cursor_ = highest_ack_ + static_cast<std::uint64_t>(segment_payload(highest_ack_));
  recovery_rtx_inflight_ = 0;
  tlp_fired_ = false;  // each RTO epoch gets a fresh probe
  trace();
  send_segment(highest_ack_, /*retransmission=*/true);
  arm_rto();
}

void TcpSource::trace() {
  if (cfg_.trace_cwnd) cwnd_trace_.add(net_.sim().now(), cwnd_);
  if (cfg_.metrics) {
    auto& rec = cfg_.metrics->recorder();
    rec.record("tcp.cwnd", cfg_.metrics_entity, net_.sim().now(), cwnd_);
    rec.record("tcp.ssthresh", cfg_.metrics_entity, net_.sim().now(), ssthresh_);
  }
}

// ------------------------------------------------------------------ TcpSink

TcpSink::TcpSink(net::Network& net, net::NodeId local, net::Port local_port)
    : TcpSink(net, local, local_port, Config{}) {}

TcpSink::TcpSink(net::Network& net, net::NodeId local, net::Port local_port, Config cfg)
    : net_(net),
      local_(local),
      local_port_(local_port),
      cfg_(cfg),
      delack_timer_(net.sim(), [this] {
        if (peer_) {
          auto [n, port, flow] = *peer_;
          send_ack(n, port, flow);
        }
      }) {
  net_.node(local_).bind(local_port_, [this](Packet&& p) { on_packet(std::move(p)); });
}

TcpSink::~TcpSink() { net_.node(local_).unbind(local_port_); }

void TcpSink::on_packet(Packet&& p) {
  const auto* h = std::get_if<TcpHeader>(&p.header);
  if (!h || h->is_ack) return;
  peer_ = {p.src, p.src_port, p.flow};
  std::uint64_t seg_begin = h->seq;
  std::uint64_t seg_end = h->seq + static_cast<std::uint64_t>(p.size_bytes - 40);
  bool out_of_order = seg_begin > rcv_next_;

  std::uint64_t before = rcv_next_;
  if (seg_end > rcv_next_) {
    if (seg_begin <= rcv_next_) {
      rcv_next_ = seg_end;
      // Absorb any contiguous out-of-order segments.
      for (auto it = ooo_.begin(); it != ooo_.end() && it->first <= rcv_next_;) {
        rcv_next_ = std::max(rcv_next_, it->second);
        it = ooo_.erase(it);
      }
    } else {
      auto& end = ooo_[seg_begin];
      end = std::max(end, seg_end);
      last_ooo_begin_ = seg_begin;
    }
  }
  // Goodput counts only in-order stream progress (retransmissions and
  // duplicates don't inflate it).
  std::int64_t delivered = static_cast<std::int64_t>(rcv_next_ - before);
  received_bytes_ += delivered;
  goodput_.on_bytes(delivered);

  ++unacked_segments_;
  if (!cfg_.delayed_ack || unacked_segments_ >= 2 || out_of_order || !ooo_.empty()) {
    send_ack(p.src, p.src_port, p.flow);
  } else {
    delack_timer_.arm(cfg_.delack_timeout);
  }
}

void TcpSink::send_ack(net::NodeId to, net::Port port, net::FlowId flow) {
  delack_timer_.stop();
  unacked_segments_ = 0;
  Packet ack;
  ack.flow = flow;
  ack.src = local_;
  ack.dst = to;
  ack.src_port = local_port_;
  ack.dst_port = port;
  ack.size_bytes = cfg_.ack_bytes;
  ack.priority = cfg_.ack_priority;
  TcpHeader h;
  h.is_ack = true;
  h.ack = rcv_next_;
  if (cfg_.sack) {
    // RFC 2018: the block containing the most recently received segment
    // MUST lead the option. With only 3 block slots, reporting the lowest
    // ranges instead permanently hides every hole above the third from the
    // sender — after a burst loss its scoreboard never learns about the
    // upper scoreboard, the holes are never deemed lost, and the flow sits
    // silent until RTO.
    std::uint64_t lead = 0;
    if (last_ooo_begin_ > rcv_next_) {
      auto it = ooo_.find(last_ooo_begin_);
      if (it != ooo_.end()) {
        h.sack.emplace_back(it->first, it->second);
        lead = it->first;
      }
    }
    for (const auto& [begin, end] : ooo_) {
      if (h.sack.full()) break;
      if (begin != lead) h.sack.emplace_back(begin, end);
    }
  }
  ack.header = std::move(h);
  net_.node(local_).send(std::move(ack));
}

}  // namespace arnet::transport
