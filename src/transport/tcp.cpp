#include "arnet/transport/tcp.hpp"

#include "arnet/check/assert.hpp"
#include "arnet/trace/profiler.hpp"

#include <algorithm>
#include <cmath>

namespace arnet::transport {

using net::Packet;
using net::TcpHeader;

const char* to_string(TcpFlavor f) {
  switch (f) {
    case TcpFlavor::kReno: return "Reno";
    case TcpFlavor::kNewReno: return "NewReno";
    case TcpFlavor::kCubic: return "CUBIC";
    case TcpFlavor::kVegas: return "Vegas";
  }
  return "?";
}

// ---------------------------------------------------------------- TcpSource

TcpSource::TcpSource(net::Network& net, net::NodeId local, net::Port local_port,
                     net::NodeId remote, net::Port remote_port, net::FlowId flow)
    : TcpSource(net, local, local_port, remote, remote_port, flow, Config{}) {}

TcpSource::TcpSource(net::Network& net, net::NodeId local, net::Port local_port,
                     net::NodeId remote, net::Port remote_port, net::FlowId flow, Config cfg)
    : net_(net),
      local_(local),
      remote_(remote),
      local_port_(local_port),
      remote_port_(remote_port),
      flow_(flow),
      cfg_(cfg),
      rto_timer_(net.sim(), [this] { on_rto(); }),
      cwnd_(cfg.initial_window_segments * cfg.mss),
      ssthresh_(cfg.initial_ssthresh_segments * cfg.mss),
      rto_(cfg.initial_rto) {
  net_.node(local_).bind(local_port_, [this](Packet&& p) { on_packet(std::move(p)); });
  if (cfg_.tracer) {
    trace_entity_ = cfg_.tracer->register_entity(cfg_.trace_entity);
    trace_ctx_ = cfg_.trace_ctx.active() ? cfg_.trace_ctx : cfg_.tracer->new_trace();
  }
}

void TcpSource::record_trace(trace::EventKind kind, std::uint64_t uid, std::int64_t size,
                             const char* reason) {
  if (!cfg_.tracer) return;
  trace::TraceEvent e;
  e.time = net_.sim().now();
  e.uid = uid;
  e.size = size;
  e.trace_id = trace_ctx_.trace_id;
  e.span_id = trace_ctx_.span_id;
  e.kind = kind;
  e.reason = reason;
  cfg_.tracer->record(trace_entity_, e);
}

void TcpSource::send(std::int64_t bytes) {
  if (app_limit_ >= 0) app_limit_ += bytes;
  try_send();
}

void TcpSource::send_forever() {
  app_limit_ = -1;
  try_send();
}

std::int32_t TcpSource::segment_payload(std::uint64_t seq) const {
  if (app_limit_ < 0) return cfg_.mss;
  std::int64_t remaining = app_limit_ - static_cast<std::int64_t>(seq);
  return static_cast<std::int32_t>(std::min<std::int64_t>(cfg_.mss, std::max<std::int64_t>(remaining, 0)));
}

void TcpSource::try_send() {
  trace::ProfScope prof(cfg_.tracer, "TcpSource::try_send");
  while (true) {
    std::int32_t payload = segment_payload(next_seq_);
    if (payload <= 0) break;  // app-limited
    // Window check against the *actual* next segment, not a full MSS: an
    // app-limited sub-MSS tail may fill the remaining window instead of
    // stalling until flight drains below cwnd - MSS (which costs the tail a
    // spurious extra RTT on every short transfer).
    if (flight_size() + payload > static_cast<std::int64_t>(cwnd_)) break;
    send_segment(next_seq_, /*retransmission=*/false);
    next_seq_ += static_cast<std::uint64_t>(payload);
  }
}

void TcpSource::send_segment(std::uint64_t seq, bool retransmission) {
  std::int32_t payload = segment_payload(seq);
  if (payload <= 0) return;
  Packet p;
  p.flow = flow_;
  p.src = local_;
  p.dst = remote_;
  p.src_port = local_port_;
  p.dst_port = remote_port_;
  p.size_bytes = payload + cfg_.header_bytes;
  p.tclass = net::TrafficClass::kCriticalData;
  p.priority = net::Priority::kLowest;
  TcpHeader h;
  h.seq = seq;
  p.header = h;
  p.trace = trace_ctx_;
  record_trace(retransmission ? trace::EventKind::kRetx : trace::EventKind::kTx, seq,
               p.size_bytes);
  if (cfg_.first_hop) {
    p.src = local_;
    net_.send_via(*cfg_.first_hop, std::move(p));
  } else {
    net_.node(local_).send(std::move(p));
  }

  if (retransmission) {
    retransmitted_above_ = std::min(retransmitted_above_, seq);
    timed_seq_.reset();  // Karn: never time retransmitted data
  } else if (!timed_seq_) {
    timed_seq_ = {seq, net_.sim().now()};
  }
  if (!rto_timer_.armed()) arm_rto();
}

void TcpSource::arm_rto() { rto_timer_.arm(rto_ * backoff_); }

void TcpSource::update_rtt(sim::Time sample) {
  vegas_base_rtt_ = std::min(vegas_base_rtt_, sample);
  vegas_min_rtt_epoch_ = std::min(vegas_min_rtt_epoch_, sample);
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    sim::Time err = sample - srtt_;
    srtt_ += err / 8;
    rttvar_ += (std::abs(err) - rttvar_) / 4;
  }
  rto_ = std::max(cfg_.min_rto, srtt_ + 4 * rttvar_);
  rto_ = std::min(rto_, cfg_.max_rto);
  if (cfg_.metrics) {
    cfg_.metrics->histogram("tcp.rtt_ms", cfg_.metrics_entity)
        .record(sim::to_milliseconds(sample));
  }
}

void TcpSource::on_packet(Packet&& p) {
  const auto* h = std::get_if<TcpHeader>(&p.header);
  if (!h || !h->is_ack) return;
  if (cfg_.sack) integrate_sack(*h);
  on_ack(h->ack);
}

void TcpSource::integrate_sack(const net::TcpHeader& h) {
  for (const auto& [begin, end] : h.sack) {
    if (end <= begin) continue;
    // Insert and merge with overlapping/adjacent ranges.
    std::uint64_t b = begin, e = end;
    auto it = sacked_.lower_bound(b);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= b) {
        b = prev->first;
        e = std::max(e, prev->second);
        it = sacked_.erase(prev);
      }
    }
    while (it != sacked_.end() && it->first <= e) {
      e = std::max(e, it->second);
      it = sacked_.erase(it);
    }
    sacked_.emplace(b, e);
  }
}

bool TcpSource::retransmit_next_sack_hole() {
  std::uint64_t seq = std::max(highest_ack_, sack_retransmit_cursor_);
  while (seq < recover_) {
    // Skip over SACKed ranges.
    auto it = sacked_.upper_bound(seq);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > seq) {
        seq = prev->second;
        continue;
      }
    }
    send_segment(seq, /*retransmission=*/true);
    sack_retransmit_cursor_ = seq + static_cast<std::uint64_t>(segment_payload(seq));
    return true;
  }
  return false;
}

void TcpSource::on_ack(std::uint64_t ack) {
  // A peer can only acknowledge bytes we actually put on the wire; anything
  // beyond next_seq_ means sender/receiver sequence state diverged.
  ARNET_ASSERT(ack <= next_seq_, "ACK for byte ", ack, " but only ", next_seq_,
               " bytes were ever sent (flow ", flow_, ")");
  record_trace(trace::EventKind::kAck, ack, 0, ack > highest_ack_ ? nullptr : "dup");
  if (ack > highest_ack_) {
    // New data acknowledged.
    backoff_ = 1;
    if (timed_seq_ && ack > timed_seq_->first && timed_seq_->first < retransmitted_above_) {
      update_rtt(net_.sim().now() - timed_seq_->second);
    }
    if (timed_seq_ && ack > timed_seq_->first) timed_seq_.reset();
    if (ack >= retransmitted_above_) retransmitted_above_ = UINT64_MAX;

    if (in_recovery_) {
      if (ack >= recover_ || cfg_.flavor == TcpFlavor::kReno) {
        // Full ACK (or plain Reno): leave recovery.
        in_recovery_ = false;
        dupacks_ = 0;
        cwnd_ = ssthresh_;
        sack_retransmit_cursor_ = 0;
      } else {
        // NewReno partial ACK (RFC 6582): retransmit the next hole, deflate
        // the window by the newly acked amount, and keep sending new data.
        // With SACK the scoreboard names the hole precisely.
        double newly = static_cast<double>(ack - highest_ack_);
        highest_ack_ = ack;
        cwnd_ = std::max(cwnd_ - newly + cfg_.mss, 2.0 * cfg_.mss);
        if (cfg_.sack) {
          // A partial ACK means the lowest hole is still open (possibly a
          // lost retransmission): restart the scoreboard sweep from it.
          sack_retransmit_cursor_ = ack;
          if (!retransmit_next_sack_hole()) send_segment(ack, /*retransmission=*/true);
        } else {
          send_segment(ack, /*retransmission=*/true);
        }
        trace();
        arm_rto();
        try_send();
        return;
      }
    } else {
      dupacks_ = 0;
    }

    std::int64_t newly = static_cast<std::int64_t>(ack - highest_ack_);
    highest_ack_ = ack;
    // Drop scoreboard state the cumulative ACK has overtaken.
    for (auto it = sacked_.begin(); it != sacked_.end() && it->first < highest_ack_;) {
      std::uint64_t end = it->second;
      it = sacked_.erase(it);
      if (end > highest_ack_) sacked_.emplace(highest_ack_, end);
    }
    grow_window(newly);
    if (cfg_.flavor == TcpFlavor::kVegas && ack >= vegas_next_tick_seq_) vegas_rtt_tick();
    trace();

    if (complete()) {
      rto_timer_.stop();
      if (!completion_reported_) {
        completion_reported_ = true;
        if (on_complete_) on_complete_();
      }
      return;
    }
    arm_rto();
    try_send();
  } else if (ack == highest_ack_ && flight_size() > 0) {
    ++dupacks_;
    if (in_recovery_) {
      // Window inflation during recovery lets new data flow; SACK repairs
      // one more hole per incoming ACK (ack-clocked retransmission).
      cwnd_ += cfg_.mss;
      if (cfg_.sack) retransmit_next_sack_hole();
      try_send();
    } else if (dupacks_ == 3) {
      enter_recovery();
    }
    trace();
  }
}

void TcpSource::grow_window(std::int64_t newly_acked) {
  switch (cfg_.flavor) {
    case TcpFlavor::kReno:
    case TcpFlavor::kNewReno:
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(newly_acked);  // slow start (ABC-style)
      } else {
        // ~1 MSS/RTT, scaled down for coupled multipath subflows.
        cwnd_ += cfg_.ca_growth_scale * static_cast<double>(cfg_.mss) * cfg_.mss / cwnd_;
      }
      break;
    case TcpFlavor::kCubic:
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(newly_acked);
        cubic_epoch_ = -1;
      } else {
        if (cubic_epoch_ < 0) {
          cubic_epoch_ = net_.sim().now();
          if (cubic_wmax_ < cwnd_) {
            // New maximum territory: probe from here.
            cubic_wmax_ = cwnd_;
            cubic_k_ = 0.0;
          }
        }
        double target = cubic_target();
        double inc = target > cwnd_
                         ? std::min<double>(cfg_.mss, cfg_.mss * (target - cwnd_) / cwnd_)
                         : 0.01 * cfg_.mss;  // slow floor below the curve
        cwnd_ += inc;
      }
      break;
    case TcpFlavor::kVegas:
      // Slow start only; congestion avoidance is the once-per-RTT tick.
      if (cwnd_ < ssthresh_) cwnd_ += static_cast<double>(newly_acked);
      break;
  }
}

double TcpSource::cubic_target() const {
  // RFC 8312 with C = 0.4, beta = 0.7, computed in MSS units.
  double t = sim::to_seconds(net_.sim().now() - cubic_epoch_);
  double wmax_mss = cubic_wmax_ / cfg_.mss;
  double target_mss = 0.4 * std::pow(t - cubic_k_, 3.0) + wmax_mss;
  return target_mss * cfg_.mss;
}

void TcpSource::vegas_rtt_tick() {
  std::uint64_t epoch_end = next_seq_;
  if (vegas_min_rtt_epoch_ != sim::kNever && vegas_base_rtt_ != sim::kNever &&
      !in_recovery_) {
    double obs = static_cast<double>(vegas_min_rtt_epoch_);
    double base = static_cast<double>(vegas_base_rtt_);
    // Packets queued by us = cwnd * (obs - base) / obs, in MSS.
    double diff_mss = (cwnd_ / cfg_.mss) * (obs - base) / obs;
    if (cwnd_ < ssthresh_) {
      if (diff_mss > 4.0) ssthresh_ = cwnd_;  // gamma: leave slow start early
    } else if (diff_mss < 2.0) {
      cwnd_ += cfg_.mss;  // alpha: too few packets in the pipe
    } else if (diff_mss > 4.0) {
      cwnd_ -= cfg_.mss;  // beta: backing off before loss
    }
    cwnd_ = std::max(cwnd_, 2.0 * cfg_.mss);
    // Track the threshold down so a delay-driven decrease cannot bounce the
    // flow back into slow start.
    ssthresh_ = std::min(ssthresh_, cwnd_);
  }
  vegas_min_rtt_epoch_ = sim::kNever;
  vegas_next_tick_seq_ = epoch_end;
}

void TcpSource::on_loss_window_reduction() {
  if (cfg_.flavor == TcpFlavor::kCubic) {
    // CUBIC: remember the pre-loss maximum and decay by beta = 0.7.
    double wmax_mss = cwnd_ / cfg_.mss;
    cubic_wmax_ = cwnd_;
    cubic_k_ = std::cbrt(wmax_mss * 0.3 / 0.4);
    cubic_epoch_ = -1;
    ssthresh_ = std::max(cwnd_ * 0.7, 2.0 * cfg_.mss);
  } else {
    ssthresh_ = std::max(static_cast<double>(flight_size()) / 2.0, 2.0 * cfg_.mss);
  }
}

void TcpSource::enter_recovery() {
  ++fast_retransmits_;
  if (cfg_.metrics) cfg_.metrics->counter("tcp.fast_retransmits", cfg_.metrics_entity).add();
  on_loss_window_reduction();
  cwnd_ = ssthresh_ + 3 * cfg_.mss;
  in_recovery_ = true;
  recover_ = next_seq_;
  sack_retransmit_cursor_ = highest_ack_;
  send_segment(highest_ack_, /*retransmission=*/true);
  if (cfg_.sack) sack_retransmit_cursor_ = highest_ack_ + static_cast<std::uint64_t>(segment_payload(highest_ack_));
  trace();
}

void TcpSource::on_rto() {
  if (complete() || flight_size() == 0) return;
  ++timeouts_;
  if (cfg_.metrics) cfg_.metrics->counter("tcp.rto_timeouts", cfg_.metrics_entity).add();
  on_loss_window_reduction();
  cwnd_ = cfg_.mss;
  dupacks_ = 0;
  in_recovery_ = false;
  backoff_ = std::min(backoff_ * 2, 64);
  trace();
  send_segment(highest_ack_, /*retransmission=*/true);
  arm_rto();
}

void TcpSource::trace() {
  if (cfg_.trace_cwnd) cwnd_trace_.add(net_.sim().now(), cwnd_);
  if (cfg_.metrics) {
    auto& rec = cfg_.metrics->recorder();
    rec.record("tcp.cwnd", cfg_.metrics_entity, net_.sim().now(), cwnd_);
    rec.record("tcp.ssthresh", cfg_.metrics_entity, net_.sim().now(), ssthresh_);
  }
}

// ------------------------------------------------------------------ TcpSink

TcpSink::TcpSink(net::Network& net, net::NodeId local, net::Port local_port)
    : TcpSink(net, local, local_port, Config{}) {}

TcpSink::TcpSink(net::Network& net, net::NodeId local, net::Port local_port, Config cfg)
    : net_(net),
      local_(local),
      local_port_(local_port),
      cfg_(cfg),
      delack_timer_(net.sim(), [this] {
        if (peer_) {
          auto [n, port, flow] = *peer_;
          send_ack(n, port, flow);
        }
      }) {
  net_.node(local_).bind(local_port_, [this](Packet&& p) { on_packet(std::move(p)); });
}

TcpSink::~TcpSink() { net_.node(local_).unbind(local_port_); }

void TcpSink::on_packet(Packet&& p) {
  const auto* h = std::get_if<TcpHeader>(&p.header);
  if (!h || h->is_ack) return;
  peer_ = {p.src, p.src_port, p.flow};
  std::uint64_t seg_begin = h->seq;
  std::uint64_t seg_end = h->seq + static_cast<std::uint64_t>(p.size_bytes - 40);
  bool out_of_order = seg_begin > rcv_next_;

  std::uint64_t before = rcv_next_;
  if (seg_end > rcv_next_) {
    if (seg_begin <= rcv_next_) {
      rcv_next_ = seg_end;
      // Absorb any contiguous out-of-order segments.
      for (auto it = ooo_.begin(); it != ooo_.end() && it->first <= rcv_next_;) {
        rcv_next_ = std::max(rcv_next_, it->second);
        it = ooo_.erase(it);
      }
    } else {
      auto& end = ooo_[seg_begin];
      end = std::max(end, seg_end);
    }
  }
  // Goodput counts only in-order stream progress (retransmissions and
  // duplicates don't inflate it).
  std::int64_t delivered = static_cast<std::int64_t>(rcv_next_ - before);
  received_bytes_ += delivered;
  goodput_.on_bytes(delivered);

  ++unacked_segments_;
  if (!cfg_.delayed_ack || unacked_segments_ >= 2 || out_of_order || !ooo_.empty()) {
    send_ack(p.src, p.src_port, p.flow);
  } else {
    delack_timer_.arm(cfg_.delack_timeout);
  }
}

void TcpSink::send_ack(net::NodeId to, net::Port port, net::FlowId flow) {
  delack_timer_.stop();
  unacked_segments_ = 0;
  Packet ack;
  ack.flow = flow;
  ack.src = local_;
  ack.dst = to;
  ack.src_port = local_port_;
  ack.dst_port = port;
  ack.size_bytes = cfg_.ack_bytes;
  ack.priority = cfg_.ack_priority;
  TcpHeader h;
  h.is_ack = true;
  h.ack = rcv_next_;
  if (cfg_.sack) {
    for (const auto& [begin, end] : ooo_) {
      if (h.sack.full()) break;
      h.sack.emplace_back(begin, end);
    }
  }
  ack.header = std::move(h);
  net_.node(local_).send(std::move(ack));
}

}  // namespace arnet::transport
