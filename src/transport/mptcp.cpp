#include "arnet/transport/mptcp.hpp"

namespace arnet::transport {

MultipathTcp::MultipathTcp(net::Network& net, net::NodeId local, net::NodeId remote,
                           net::Port base_local_port, net::Port base_remote_port,
                           std::vector<PathSpec> paths, Config cfg)
    : net_(net), cfg_(cfg), couple_timer_(net.sim(), [this] { recouple(); }) {
  net::FlowId flow = 0xA0000000;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    Subflow sf;
    sf.name = paths[i].name;
    auto rport = static_cast<net::Port>(base_remote_port + i);
    auto lport = static_cast<net::Port>(base_local_port + i);
    sf.sink = std::make_unique<TcpSink>(net_, remote, rport);
    TcpSource::Config scfg = cfg_.subflow;
    scfg.first_hop = paths[i].first_hop;
    sf.source = std::make_unique<TcpSource>(net_, local, lport, remote, rport,
                                            flow + static_cast<net::FlowId>(i), scfg);
    subflows_.push_back(std::move(sf));
  }
  if (cfg_.coupled && subflows_.size() > 1) couple_timer_.arm(cfg_.couple_interval);
}

void MultipathTcp::send_forever() {
  for (auto& sf : subflows_) sf.source->send_forever();
}

std::int64_t MultipathTcp::total_received() const {
  std::int64_t total = 0;
  for (const auto& sf : subflows_) total += sf.sink->received_bytes();
  return total;
}

std::int64_t MultipathTcp::subflow_received(std::size_t i) const {
  return subflows_[i].sink->received_bytes();
}

void MultipathTcp::recouple() {
  // LIA-flavored coupling: subflow i grows in proportion to its window
  // share, so the sum of growth across subflows is ~1 MSS/RTT — a single
  // TCP's worth — when they share a bottleneck.
  double total_cwnd = 0.0;
  for (const auto& sf : subflows_) total_cwnd += sf.source->cwnd_bytes();
  if (total_cwnd > 0) {
    for (auto& sf : subflows_) {
      sf.source->set_ca_growth_scale(sf.source->cwnd_bytes() / total_cwnd);
    }
  }
  couple_timer_.arm(cfg_.couple_interval);
}

}  // namespace arnet::transport
