#include "arnet/transport/jitter_buffer.hpp"

#include <algorithm>
#include <cmath>

namespace arnet::transport {

sim::Time JitterBuffer::playout_time(const Sample& s) const {
  return s.source_ts + playout_delay_;
}

bool JitterBuffer::push(const Sample& s, sim::Time now) {
  // RFC 3550 interarrival jitter: J += (|D| - J) / 16 where D is the
  // difference of consecutive transit times.
  sim::Time transit = s.arrival - s.source_ts;
  if (have_transit_) {
    sim::Time d = transit - last_transit_;
    if (d < 0) d = -d;
    jitter_ += (d - jitter_) / 16;
  }
  last_transit_ = transit;
  have_transit_ = true;
  mean_transit_ = 0.9 * mean_transit_ + 0.1 * static_cast<double>(transit);

  if (cfg_.adaptive) {
    auto target = static_cast<sim::Time>(
        mean_transit_ + cfg_.jitter_headroom * static_cast<double>(jitter_));
    // The playout point must cover the transit path; clamp to configured
    // bounds and move gradually (re-syncing playout mid-stream is visible).
    target = std::clamp(target, cfg_.min_playout_delay, cfg_.max_playout_delay);
    playout_delay_ += (target - playout_delay_) / 8;
  }

  if (!have_seq_ || (played_ == 0 && underruns_ == 0 && s.seq < next_seq_)) {
    // Until playback starts, reordered arrivals may still lower the base.
    next_seq_ = s.seq;
    have_seq_ = true;
  }
  bool behind_playback = (played_ > 0 || underruns_ > 0) && s.seq < next_seq_;
  if (playout_time(s) <= now || behind_playback) {
    ++late_discards_;
    return false;
  }
  buffer_.emplace(s.seq, s);
  return true;
}

std::vector<JitterBuffer::Sample> JitterBuffer::due(sim::Time now) {
  std::vector<Sample> out;
  while (!buffer_.empty()) {
    auto it = buffer_.begin();
    if (playout_time(it->second) > now) break;
    // Sequence gaps whose playout time passed without arrival are underruns.
    if (it->first > next_seq_) underruns_ += it->first - next_seq_;
    next_seq_ = it->first + 1;
    ++played_;
    out.push_back(it->second);
    buffer_.erase(it);
  }
  return out;
}

}  // namespace arnet::transport
