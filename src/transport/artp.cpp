#include "arnet/transport/artp.hpp"

#include "arnet/check/assert.hpp"
#include "arnet/trace/profiler.hpp"

#include <algorithm>
#include <cassert>

namespace arnet::transport {

using net::ArtpHeader;
using net::Packet;

namespace {
constexpr sim::Time kNeverStale = sim::kNever;

bool droppable(net::Priority p) {
  return p == net::Priority::kMediumNoDelay || p == net::Priority::kLowest;
}
}  // namespace

// ---------------------------------------------------------------- ArtpSender

ArtpSender::ArtpSender(net::Network& net, net::NodeId local, net::Port local_port,
                       net::NodeId remote, net::Port remote_port, net::FlowId flow,
                       ArtpSenderConfig cfg, std::vector<ArtpPathConfig> paths)
    : net_(net),
      local_(local),
      remote_(remote),
      local_port_(local_port),
      remote_port_(remote_port),
      flow_(flow),
      cfg_(cfg),
      pace_timer_(net.sim(), [this] { pace_tick(); }) {
  if (paths.empty()) {
    paths.push_back(ArtpPathConfig{});  // single default-routed path
  }
  std::uint8_t id = 0;
  for (auto& pc : paths) {
    Path p;
    if (!pc.controller) pc.controller = std::make_unique<DelayGradientController>();
    p.cfg = std::move(pc);
    p.id = id++;
    p.min_owd.set_window(cfg_.min_owd_window);
    paths_.push_back(std::move(p));
  }
  if (cfg_.tracer) trace_entity_ = cfg_.tracer->register_entity(cfg_.trace_entity);
  net_.node(local_).bind(local_port_, [this](Packet&& p) { on_packet(std::move(p)); });
  pace_timer_.arm(cfg_.pace_interval);
}

void ArtpSender::record_trace(trace::EventKind kind, const trace::TraceContext& ctx,
                              std::uint64_t uid, std::int64_t size, const char* reason) {
  if (!cfg_.tracer) return;
  trace::TraceEvent e;
  e.time = net_.sim().now();
  e.uid = uid;
  e.size = size;
  e.trace_id = ctx.trace_id;
  e.span_id = ctx.span_id;
  e.kind = kind;
  e.reason = reason;
  cfg_.tracer->record(trace_entity_, e);
}

ArtpSender::~ArtpSender() { net_.node(local_).unbind(local_port_); }

double ArtpSender::allowed_rate_bps() const {
  double r = 0.0;
  for (const auto& p : paths_) {
    if (path_up(&p - paths_.data())) r += p.cfg.controller->rate_bps();
  }
  return r;
}

bool ArtpSender::path_up(std::size_t i) const {
  const Path& p = paths_[i];
  return p.cfg.first_hop == nullptr || p.cfg.first_hop->is_up();
}

std::uint64_t ArtpSender::send_message(const ArtpMessageSpec& spec) {
  std::uint64_t id = next_msg_id_++;
  auto count = static_cast<std::uint32_t>(
      std::max<std::int64_t>(1, (spec.bytes + cfg_.mtu_payload - 1) / cfg_.mtu_payload));
  sim::Time stale = spec.stale_after;
  if (stale == 0) stale = droppable(spec.priority) ? cfg_.default_stale_after : kNeverStale;

  std::int64_t remaining = std::max<std::int64_t>(spec.bytes, 1);
  std::vector<Chunk> staged;
  staged.reserve(static_cast<std::size_t>(count));
  std::uint32_t cseq = 0;
  CriticalMsg* critical_record = nullptr;
  if (spec.tclass == net::TrafficClass::kCriticalData) {
    cseq = next_critical_seq_++;
    critical_record = &critical_sent_[cseq];
    critical_record->last_wire_activity = net_.sim().now();
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    Chunk c;
    c.msg_id = id;
    c.critical_seq = cseq;
    c.index = i;
    c.count = count;
    c.payload = static_cast<std::int32_t>(std::min<std::int64_t>(remaining, cfg_.mtu_payload));
    remaining -= c.payload;
    c.tclass = spec.tclass;
    c.priority = spec.priority;
    c.app = spec.app;
    c.frame_id = spec.frame_id;
    c.sub_priority = spec.sub_priority;
    c.submitted_at = net_.sim().now();
    c.stale_after = stale;
    c.trace = spec.trace;
    if (critical_record) critical_record->chunks.push_back(c);
    backlog_bytes_ += c.payload;
    staged.push_back(std::move(c));
  }

  record_trace(trace::EventKind::kEnqueue, spec.trace, id, spec.bytes);

  // Insert the whole message before the first queued message of strictly
  // lower importance (greater sub_priority), never splitting a message:
  // insertion points are message boundaries (index == 0) only.
  auto& dest_band = bands_[static_cast<std::size_t>(spec.priority)];
  auto insert_at = dest_band.end();
  for (auto it = dest_band.begin(); it != dest_band.end(); ++it) {
    if (it->index == 0 && !it->retransmission && it->sub_priority > spec.sub_priority) {
      insert_at = it;
      break;
    }
  }
  dest_band.insert(insert_at, std::make_move_iterator(staged.begin()),
                   std::make_move_iterator(staged.end()));

  if (spec.priority == net::Priority::kHighest) {
    // "Should neither be discarded nor delayed": bypass the pacer.
    auto& band = bands_[0];
    while (!band.empty()) {
      Chunk c = std::move(band.front());
      band.pop_front();
      bool dup = false;
      Path* path = pick_path(c, dup);
      if (!path) path = first_up_path();
      if (!path) {
        // No connectivity at all; leave it staged for the pacer.
        band.push_front(std::move(c));
        break;
      }
      backlog_bytes_ -= c.payload;
      transmit(c, *path);
      if (dup) {
        if (Path* other = lowest_owd_up_path(path); other) transmit(c, *other);
      }
    }
  }
  return id;
}

ArtpSender::Path* ArtpSender::first_up_path() {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (path_up(i)) return &paths_[i];
  }
  return nullptr;
}

ArtpSender::Path* ArtpSender::lowest_owd_up_path(const Path* exclude) {
  Path* best = nullptr;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (!path_up(i) || &paths_[i] == exclude) continue;
    Path& p = paths_[i];
    if (!best || (p.saw_feedback && (!best->saw_feedback || p.last_owd < best->last_owd))) {
      best = &p;
    }
  }
  return best;
}

ArtpSender::Path* ArtpSender::pick_path(const Chunk& c, bool& duplicate_on_secondary) {
  duplicate_on_secondary = false;
  std::size_t up_count = 0;
  for (std::size_t i = 0; i < paths_.size(); ++i) up_count += path_up(i) ? 1 : 0;
  if (up_count == 0) return nullptr;

  bool critical = c.tclass == net::TrafficClass::kCriticalData;
  if (cfg_.duplicate_critical_on_two_paths && critical && up_count >= 2 &&
      cfg_.policy != MultipathPolicy::kSingle) {
    duplicate_on_secondary = true;
  }

  switch (cfg_.policy) {
    case MultipathPolicy::kSingle:
      return &paths_[0];  // even if down: models a naive single-homed client
    case MultipathPolicy::kHandoverOnly:
      return first_up_path();
    case MultipathPolicy::kPreferred: {
      if (path_up(0) && (paths_[0].budget_bytes > 0 || c.priority == net::Priority::kHighest)) {
        return &paths_[0];
      }
      // Overflow / failover to the next live path.
      for (std::size_t i = 1; i < paths_.size(); ++i) {
        if (path_up(i)) return &paths_[i];
      }
      return path_up(0) ? &paths_[0] : nullptr;
    }
    case MultipathPolicy::kAggregate: {
      if (c.priority == net::Priority::kHighest || critical) return lowest_owd_up_path();
      Path* best = nullptr;
      for (std::size_t i = 0; i < paths_.size(); ++i) {
        if (!path_up(i)) continue;
        if (!best || paths_[i].budget_bytes > best->budget_bytes) best = &paths_[i];
      }
      return best;
    }
  }
  return nullptr;
}

void ArtpSender::update_congestion_level() {
  int before = congestion_level_;
  double rate = allowed_rate_bps();
  if (rate <= 0) {
    congestion_level_ = 3;
  } else {
    sim::Time backlog_time = sim::from_seconds(static_cast<double>(backlog_bytes_) * 8.0 / rate);
    if (backlog_time < cfg_.shed_backlog_threshold) {
      congestion_level_ = 0;
    } else if (backlog_time < 2 * cfg_.shed_backlog_threshold) {
      congestion_level_ = 1;
    } else if (backlog_time < 4 * cfg_.shed_backlog_threshold) {
      congestion_level_ = 2;
    } else {
      congestion_level_ = 3;
    }
  }
  if (cfg_.metrics) {
    cfg_.metrics->gauge("artp.congestion_level", cfg_.metrics_entity)
        .set(static_cast<double>(congestion_level_));
    if (congestion_level_ > before) {
      cfg_.metrics->counter("artp.degradation_events", cfg_.metrics_entity).add();
    }
  }
}

void ArtpSender::shed_front_message(std::deque<Chunk>& q) {
  std::uint64_t msg = q.front().msg_id;
  record_trace(trace::EventKind::kShed, q.front().trace, msg, 0,
               congestion_level_ >= 2 ? "congestion" : "stale");
  while (!q.empty() && q.front().msg_id == msg) {
    backlog_bytes_ -= q.front().payload;
    shed_bytes_ += q.front().payload;
    q.pop_front();
  }
  ++shed_messages_;
  if (cfg_.metrics) {
    cfg_.metrics->counter("artp.shed_messages", cfg_.metrics_entity).add();
  }
  // Shedding must never double-subtract a chunk: a negative backlog would
  // silently disable graceful degradation (it gates on backlog thresholds).
  ARNET_ASSERT(backlog_bytes_ >= 0, "ARTP backlog went negative (", backlog_bytes_,
               " bytes) after shedding message ", msg);
}

void ArtpSender::restage_critical(std::uint32_t cseq, std::uint32_t only_chunk,
                                  bool whole_message) {
  auto it = critical_sent_.find(cseq);
  if (it == critical_sent_.end()) return;
  sim::Time now = net_.sim().now();
  // Back off: at most one re-stage per quarter critical_rto per message, so
  // repeated NACKs across feedback epochs don't multiply traffic while
  // recovery still fits interactive budgets (paper §VI-C).
  if (now - it->second.last_wire_activity < cfg_.critical_rto / 4) return;
  for (const Chunk& orig : it->second.chunks) {
    if (!whole_message && orig.index != only_chunk) continue;
    Chunk c = orig;
    c.retransmission = true;
    c.submitted_at = now;
    backlog_bytes_ += c.payload;
    bands_[band_of(c)].push_front(std::move(c));
    ++retransmitted_chunks_;
  }
  it->second.last_wire_activity = now;
}

void ArtpSender::check_critical_tail() {
  sim::Time now = net_.sim().now();
  for (auto& [cseq, msg] : critical_sent_) {
    if (msg.fully_sent && now - msg.last_wire_activity > cfg_.critical_rto) {
      restage_critical(cseq, 0, /*whole_message=*/true);
    }
  }
}

void ArtpSender::pace_tick() {
  trace::ProfScope prof(cfg_.tracer, "ArtpSender::pace_tick");
  sim::Time now = net_.sim().now();
  check_critical_tail();
  double dt = sim::to_seconds(cfg_.pace_interval);
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    Path& p = paths_[i];
    if (!path_up(i)) {
      p.budget_bytes = 0;
      continue;
    }
    double per_tick = p.cfg.controller->rate_bps() * dt / 8.0;
    p.budget_bytes = std::min(p.budget_bytes + per_tick, 2.0 * per_tick);
  }
  update_congestion_level();

  // Drain strict-priority. Band 0 ignores budgets (never delayed); lower
  // bands stop as soon as no permissible path has budget.
  for (std::size_t band = 0; band < 4; ++band) {
    auto& q = bands_[band];
    while (!q.empty()) {
      Chunk& head = q.front();
      // Shed rules: stale droppable messages always; whole droppable bands
      // under escalating congestion (paper Fig. 4's graceful degradation).
      // Decisions are taken at message boundaries only — a partially sent
      // message is always finished, since a message missing chunks is dead
      // weight on the wire.
      bool shed = false;
      if (droppable(head.priority) && head.index == 0) {
        if (head.stale_after != kNeverStale && now - head.submitted_at > head.stale_after) {
          shed = true;
        } else if (head.priority == net::Priority::kLowest && congestion_level_ >= 2) {
          shed = true;
        } else if (head.priority == net::Priority::kMediumNoDelay && congestion_level_ >= 3) {
          shed = true;
        }
      }
      if (shed) {
        shed_front_message(q);
        continue;
      }

      bool dup = false;
      Path* path = pick_path(head, dup);
      if (!path) break;
      if (band != 0 && path->budget_bytes <= 0) {
        // Try any other up path with budget under aggregate policy.
        if (cfg_.policy == MultipathPolicy::kAggregate) {
          bool ignored = false;
          path = nullptr;
          for (std::size_t i = 0; i < paths_.size(); ++i) {
            if (path_up(i) && paths_[i].budget_bytes > 0) {
              path = &paths_[i];
              break;
            }
          }
          (void)ignored;
        } else {
          path = nullptr;
        }
      }
      if (!path) break;

      Chunk c = std::move(q.front());
      q.pop_front();
      backlog_bytes_ -= c.payload;
      transmit(c, *path);
      if (dup) {
        if (Path* other = lowest_owd_up_path(path); other) transmit(c, *other);
      }
    }
    if (band != 0 && !q.empty()) break;  // strict priority: lower bands wait
  }

  if (qos_cb_) {
    ArtpQosReport r;
    r.allowed_rate_bps = allowed_rate_bps();
    r.backlog_bytes = backlog_bytes_;
    r.congestion_level = congestion_level_;
    Path* best = lowest_owd_up_path();
    r.min_path_owd = best && best->saw_feedback ? best->last_owd : 0;
    qos_cb_(r);
  }
  pace_timer_.arm(cfg_.pace_interval);
}

void ArtpSender::note_sent(const Chunk& c, std::int32_t wire_bytes) {
  if (!cfg_.metrics) return;
  cfg_.metrics
      ->counter("artp.sent_bytes",
                cfg_.metrics_entity + "/band:" + std::to_string(band_of(c)))
      .add(wire_bytes);
}

void ArtpSender::transmit(const Chunk& c, Path& path) {
  Packet p;
  p.flow = flow_;
  p.src = local_;
  p.dst = remote_;
  p.src_port = local_port_;
  p.dst_port = remote_port_;
  p.size_bytes = c.payload + cfg_.header_bytes;
  p.tclass = c.tclass;
  p.priority = c.priority;
  p.app = c.app;

  ArtpHeader h;
  h.kind = ArtpHeader::Kind::kData;
  h.msg_id = c.msg_id;
  h.chunk = c.index;
  h.chunk_count = c.count;
  h.frame_id = c.frame_id;
  h.critical_seq = c.critical_seq;
  h.path_id = path.id;
  h.path_seq = path.next_path_seq++;
  h.sent_at = net_.sim().now();
  h.msg_submitted_at = c.submitted_at;
  p.header = h;
  p.trace = c.trace;

  record_trace(c.retransmission ? trace::EventKind::kRetx : trace::EventKind::kTx, c.trace,
               c.msg_id, p.size_bytes);

  path.budget_bytes -= p.size_bytes;
  path.sent_bytes += p.size_bytes;
  sent_bytes_ += p.size_bytes;
  app_meters_[static_cast<std::size_t>(c.app)].on_bytes(p.size_bytes);
  note_sent(c, p.size_bytes);

  if (path.cfg.first_hop) {
    p.src = local_;
    net_.send_via(*path.cfg.first_hop, std::move(p));
  } else {
    net_.node(local_).send(std::move(p));
  }

  if (c.critical_seq != 0) {
    if (auto it = critical_sent_.find(c.critical_seq); it != critical_sent_.end()) {
      it->second.last_wire_activity = net_.sim().now();
      if (c.index + 1 == c.count) it->second.fully_sent = true;
    }
  }

  // Per-message FEC: after the last data chunk of a protected message,
  // append parity chunks sized to the largest chunk.
  if (c.tclass == net::TrafficClass::kBestEffortLossRecovery && !c.retransmission &&
      cfg_.fec_parity > 0 && c.index + 1 == c.count) {
    for (std::uint32_t i = 0; i < cfg_.fec_parity; ++i) {
      Packet fp;
      fp.flow = flow_;
      fp.src = local_;
      fp.dst = remote_;
      fp.src_port = local_port_;
      fp.dst_port = remote_port_;
      // Parity chunks match the largest data chunk of the message.
      fp.size_bytes = (c.count > 1 ? cfg_.mtu_payload : c.payload) + cfg_.header_bytes;
      fp.tclass = c.tclass;
      fp.priority = c.priority;
      fp.app = c.app;
      ArtpHeader fh;
      fh.kind = ArtpHeader::Kind::kParity;
      fh.msg_id = c.msg_id;
      fh.chunk = i;
      fh.chunk_count = c.count;
      fh.frame_id = c.frame_id;
      fh.path_id = path.id;
      fh.path_seq = path.next_path_seq++;
      fh.sent_at = net_.sim().now();
      fh.msg_submitted_at = c.submitted_at;
      fp.header = fh;
      fp.trace = c.trace;
      record_trace(trace::EventKind::kTx, c.trace, c.msg_id, fp.size_bytes, "fec-parity");
      path.budget_bytes -= fp.size_bytes;
      path.sent_bytes += fp.size_bytes;
      sent_bytes_ += fp.size_bytes;
      app_meters_[static_cast<std::size_t>(c.app)].on_bytes(fp.size_bytes);
      note_sent(c, fp.size_bytes);
      if (path.cfg.first_hop) {
        net_.send_via(*path.cfg.first_hop, std::move(fp));
      } else {
        net_.node(local_).send(std::move(fp));
      }
    }
  }
}

void ArtpSender::on_packet(Packet&& p) {
  const auto* h = std::get_if<ArtpHeader>(&p.header);
  if (!h || h->kind != ArtpHeader::Kind::kFeedback) return;
  on_feedback(*h);
}

void ArtpSender::on_feedback(const ArtpHeader& h) {
  if (h.path_id >= paths_.size()) return;
  record_trace(trace::EventKind::kAck, trace::TraceContext{}, h.fb_highest_seen,
               static_cast<std::int64_t>(h.fb_nacks.size()));
  Path& path = paths_[h.path_id];
  path.last_owd = h.fb_owd;
  path.min_owd.update(h.fb_min_owd, net_.sim().now());
  path.saw_feedback = true;

  CcFeedback fb;
  fb.owd = h.fb_owd;
  fb.min_owd = h.fb_min_owd;
  fb.loss_fraction = h.fb_loss_fraction;
  fb.recv_rate_bps = h.fb_recv_rate_bps;
  path.cfg.controller->on_feedback(fb, net_.sim().now());

  // Prune bookkeeping covered by the receiver's in-order critical watermark.
  if (h.fb_highest_seen > 0) {
    critical_sent_.erase(critical_sent_.begin(),
                         critical_sent_.upper_bound(static_cast<std::uint32_t>(h.fb_highest_seen)));
  }

  // Chunk NACKs: the receiver saw part of the message and names the holes.
  // ArtpNack::msg_id carries the critical_seq for critical messages.
  for (const auto& nack : h.fb_nacks) {
    restage_critical(static_cast<std::uint32_t>(nack.msg_id), nack.chunk,
                     /*whole_message=*/false);
  }
  // Full-loss NACKs: a critical_seq gap with no surviving packet.
  for (std::uint32_t cseq : h.fb_missing_critical) {
    restage_critical(cseq, 0, /*whole_message=*/true);
  }
}

// -------------------------------------------------------------- ArtpReceiver

ArtpReceiver::ArtpReceiver(net::Network& net, net::NodeId local, net::Port local_port)
    : ArtpReceiver(net, local, local_port, Config{}) {}

ArtpReceiver::ArtpReceiver(net::Network& net, net::NodeId local, net::Port local_port, Config cfg)
    : net_(net),
      local_(local),
      local_port_(local_port),
      cfg_(cfg),
      feedback_timer_(net.sim(), [this] { feedback_tick(); }) {
  if (cfg_.tracer) trace_entity_ = cfg_.tracer->register_entity(cfg_.trace_entity);
  net_.node(local_).bind(local_port_, [this](Packet&& p) { on_packet(std::move(p)); });
  feedback_timer_.arm(cfg_.feedback_interval);
}

ArtpReceiver::~ArtpReceiver() { net_.node(local_).unbind(local_port_); }

void ArtpReceiver::record_trace(trace::EventKind kind, const trace::TraceContext& ctx,
                                std::uint64_t uid, std::int64_t size, const char* reason) {
  if (!cfg_.tracer) return;
  trace::TraceEvent e;
  e.time = net_.sim().now();
  e.uid = uid;
  e.size = size;
  e.trace_id = ctx.trace_id;
  e.span_id = ctx.span_id;
  e.kind = kind;
  e.reason = reason;
  cfg_.tracer->record(trace_entity_, e);
}

void ArtpReceiver::on_packet(Packet&& p) {
  const auto* h = std::get_if<ArtpHeader>(&p.header);
  if (!h || h->kind == ArtpHeader::Kind::kFeedback) return;
  sim::Time now = net_.sim().now();
  peer_ = {p.src, p.src_port, p.flow};

  auto [ps_it, ps_new] = path_state_.try_emplace(h->path_id);
  PathState& ps = ps_it->second;
  if (ps_new) ps.min_owd.set_window(cfg_.min_owd_window);
  ps.active = true;
  // `highest_seq` is the next expected per-path wire sequence; any jump
  // counts the skipped packets as losses (paths are FIFO in simulation).
  if (h->path_seq >= ps.highest_seq) {
    ps.lost_in_epoch += static_cast<std::int64_t>(h->path_seq - ps.highest_seq);
    ps.highest_seq = h->path_seq + 1;
  }
  ++ps.received_in_epoch;
  ps.bytes_in_epoch += p.size_bytes;
  ps.last_owd = now - h->sent_at;
  ps.min_owd.update(ps.last_owd, now);
  goodput_.on_bytes(p.size_bytes);

  // Critical-sequence gap tracking: any arrival of cseq X reveals every
  // unseen cseq below it (full-loss detection, independent of chunk state).
  if (h->critical_seq != 0) {
    missing_critical_since_.erase(h->critical_seq);
    if (h->critical_seq > highest_critical_seen_) {
      for (std::uint32_t c = std::max(highest_critical_seen_ + 1, next_critical_seq_);
           c < h->critical_seq; ++c) {
        missing_critical_since_.emplace(c, now);
      }
      highest_critical_seen_ = h->critical_seq;
    }
  }

  auto [it, inserted] = pending_.try_emplace(h->msg_id);
  PendingMsg& m = it->second;
  if (inserted) {
    m.critical_seq = h->critical_seq;
    m.chunk_count = h->chunk_count;
    m.have.assign(h->chunk_count, false);
    m.tclass = p.tclass;
    m.priority = p.priority;
    m.app = p.app;
    m.frame_id = h->frame_id;
    m.submitted_at = h->msg_submitted_at;
    m.first_arrival = now;
  }
  if (!m.trace.active() && p.trace.active()) m.trace = p.trace;
  if (m.delivered) return;  // duplicate of an already-delivered message

  if (h->kind == ArtpHeader::Kind::kData) {
    if (h->chunk < m.have.size() && !m.have[h->chunk]) {
      m.have[h->chunk] = true;
      ++m.have_count;
      m.bytes += p.size_bytes - 30;
    }
  } else {  // parity
    ++m.parity_seen;
  }

  // FEC recovery: enough parity to rebuild every missing data chunk.
  if (m.have_count < m.chunk_count && m.have_count + m.parity_seen >= m.chunk_count) {
    std::uint32_t recovered = m.chunk_count - m.have_count;
    m.have.assign(m.chunk_count, true);
    m.have_count = m.chunk_count;
    m.fec_recovered = true;
    fec_recoveries_ += recovered;
    record_trace(trace::EventKind::kFecRepair, m.trace, h->msg_id, recovered);
  }

  try_deliver(h->msg_id);
}

void ArtpReceiver::try_deliver(std::uint64_t msg_id) {
  auto it = pending_.find(msg_id);
  if (it == pending_.end()) return;
  PendingMsg& m = it->second;
  if (m.delivered || m.have_count < m.chunk_count) return;
  m.delivered = true;

  ArtpDelivery d;
  d.msg_id = msg_id;
  d.frame_id = m.frame_id;
  d.tclass = m.tclass;
  d.priority = m.priority;
  d.app = m.app;
  d.bytes = m.bytes;
  d.submitted_at = m.submitted_at;
  d.completed_at = net_.sim().now();
  d.complete = true;
  d.fec_recovered = m.fec_recovered;
  d.completeness = 1.0;
  d.trace = m.trace;

  // The (delivered) entry is retained until expiry as a tombstone so that
  // late duplicates (multipath duplication, spurious retransmits) cannot
  // re-deliver the message.
  m.have.clear();
  m.have.shrink_to_fit();

  if (m.tclass == net::TrafficClass::kCriticalData) {
    // A message behind the watermark was already delivered in the past
    // (late duplicates after tombstone GC); emplacing it would wedge the
    // in-order flush.
    if (m.critical_seq >= next_critical_seq_) {
      critical_ready_.emplace(m.critical_seq, std::move(d));
      flush_critical_in_order();
    }
  } else {
    ++delivered_messages_;
    note_delivery(d);
    if (message_cb_) message_cb_(d);
  }
}

void ArtpReceiver::note_delivery(const ArtpDelivery& d) {
  record_trace(trace::EventKind::kDeliver, d.trace, d.msg_id, d.bytes,
               d.fec_recovered ? "fec-recovered" : nullptr);
  if (!cfg_.metrics) return;
  cfg_.metrics->counter("artp.delivered_messages", cfg_.metrics_entity).add();
  cfg_.metrics
      ->counter("artp.goodput_bytes",
                cfg_.metrics_entity + "/app:" + net::to_string(d.app))
      .add(d.bytes);
  cfg_.metrics->histogram("artp.msg_latency_ms", cfg_.metrics_entity)
      .record(sim::to_milliseconds(d.latency()));
  // Per-band end-to-end delay: lets per-priority latency be compared against
  // the per-band bytes the sender publishes (and against trace timelines).
  cfg_.metrics
      ->histogram("artp.band_delay_ms",
                  cfg_.metrics_entity + "/band:" +
                      std::to_string(static_cast<int>(d.priority)))
      .record(sim::to_milliseconds(d.latency()));
}

void ArtpReceiver::flush_critical_in_order() {
  // Deliver completed critical messages strictly in critical_seq order; a
  // hole (lost or still in flight) blocks everything behind it.
  while (!critical_ready_.empty() && critical_ready_.begin()->first == next_critical_seq_) {
    auto ready = critical_ready_.begin();
    ++delivered_messages_;
    ++next_critical_seq_;
    note_delivery(ready->second);
    if (message_cb_) message_cb_(ready->second);
    critical_ready_.erase(ready);
  }
}

void ArtpReceiver::expire_stale(sim::Time now) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingMsg& m = it->second;
    if (m.delivered) {
      // Garbage-collect tombstones once late duplicates are implausible.
      if (now - m.first_arrival > cfg_.expiry) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
      continue;
    }
    if (m.tclass != net::TrafficClass::kCriticalData && now - m.first_arrival > cfg_.expiry) {
      ArtpDelivery d;
      d.msg_id = it->first;
      d.frame_id = m.frame_id;
      d.tclass = m.tclass;
      d.priority = m.priority;
      d.app = m.app;
      d.bytes = m.bytes;
      d.submitted_at = m.submitted_at;
      d.completed_at = now;
      d.complete = false;
      d.completeness = m.chunk_count ? static_cast<double>(m.have_count) / m.chunk_count : 0.0;
      d.trace = m.trace;
      record_trace(trace::EventKind::kDeliver, m.trace, it->first, m.bytes, "expired");
      ++expired_messages_;
      it = pending_.erase(it);
      if (message_cb_) message_cb_(d);
    } else {
      ++it;
    }
  }
}

void ArtpReceiver::feedback_tick() {
  trace::ProfScope prof(cfg_.tracer, "ArtpReceiver::feedback_tick");
  sim::Time now = net_.sim().now();
  expire_stale(now);
  if (peer_) {
    auto [peer_node, peer_port, flow] = *peer_;

    // Collect NACKs (attached to the first feedback packet only, so
    // retransmissions are not duplicated). Chunk NACKs name holes in
    // partially received critical messages (by critical_seq); full-loss
    // NACKs name critical_seq gaps where nothing survived.
    std::vector<net::ArtpNack> nacks;
    for (const auto& [id, m] : pending_) {
      if (m.tclass != net::TrafficClass::kCriticalData || m.delivered) continue;
      if (now - m.first_arrival < cfg_.feedback_interval / 2) continue;
      for (std::uint32_t i = 0; i < m.chunk_count && nacks.size() < 64; ++i) {
        if (!m.have[i]) nacks.push_back({m.critical_seq, i});
      }
    }
    std::vector<std::uint32_t> missing;
    for (const auto& [cseq, since] : missing_critical_since_) {
      if (now - since >= cfg_.feedback_interval / 2 && missing.size() < 64) {
        missing.push_back(cseq);
      }
    }

    bool first = true;
    for (auto& [path_id, ps] : path_state_) {
      if (!ps.active) continue;
      Packet fb;
      fb.flow = flow;
      fb.src = local_;
      fb.dst = peer_node;
      fb.src_port = local_port_;
      fb.dst_port = peer_port;
      fb.size_bytes = cfg_.feedback_bytes;
      fb.tclass = net::TrafficClass::kCriticalData;
      fb.priority = net::Priority::kHighest;
      ArtpHeader h;
      h.kind = ArtpHeader::Kind::kFeedback;
      h.path_id = path_id;
      h.fb_owd = ps.last_owd;
      ps.min_owd.expire(now);
      h.fb_min_owd = ps.min_owd.get_or(ps.last_owd);
      std::int64_t expected = ps.received_in_epoch + ps.lost_in_epoch;
      h.fb_loss_fraction =
          expected > 0 ? static_cast<double>(ps.lost_in_epoch) / static_cast<double>(expected)
                       : 0.0;
      h.fb_recv_rate_bps = static_cast<double>(ps.bytes_in_epoch) * 8.0 /
                           sim::to_seconds(cfg_.feedback_interval);
      h.fb_highest_seen = next_critical_seq_ - 1;
      if (first) {
        h.fb_nacks = nacks;
        h.fb_missing_critical = missing;
        first = false;
      }
      fb.header = std::move(h);
      net_.node(local_).send(std::move(fb));

      ps.received_in_epoch = 0;
      ps.lost_in_epoch = 0;
      ps.bytes_in_epoch = 0;
      ps.active = false;
    }
  }
  feedback_timer_.arm(cfg_.feedback_interval);
}

}  // namespace arnet::transport
