#include "arnet/edge/placement.hpp"

#include <algorithm>
#include <cmath>

namespace arnet::edge {

double distance_km(const GeoPoint& a, const GeoPoint& b) {
  return std::hypot(a.x_km - b.x_km, a.y_km - b.y_km);
}

int PlacementProblem::add_site(CandidateSite site) {
  sites_.push_back(std::move(site));
  return static_cast<int>(sites_.size()) - 1;
}

int PlacementProblem::add_user(MobileUser user) {
  users_.push_back(user);
  return static_cast<int>(users_.size()) - 1;
}

bool PlacementProblem::covers(int s, int u) const {
  const MobileUser& user = users_[static_cast<std::size_t>(u)];
  auto it = constraints_.find(user.app);
  sim::Time bound = it != constraints_.end() ? it->second.max_rtt : sim::milliseconds(20);
  return latency_.rtt(user.pos, sites_[static_cast<std::size_t>(s)].pos) <= bound;
}

PlacementSolution PlacementProblem::assemble(const std::vector<int>& chosen) const {
  PlacementSolution sol;
  sol.chosen_sites = chosen;
  sol.assignment.assign(users_.size(), -1);
  sol.feasible = true;
  for (int u = 0; u < static_cast<int>(users_.size()); ++u) {
    sim::Time best = sim::kNever;
    for (int s : chosen) {
      if (!covers(s, u)) continue;
      sim::Time r = latency_.rtt(users_[static_cast<std::size_t>(u)].pos,
                                 sites_[static_cast<std::size_t>(s)].pos);
      if (r < best) {
        best = r;
        sol.assignment[static_cast<std::size_t>(u)] = s;
      }
    }
    if (sol.assignment[static_cast<std::size_t>(u)] < 0) sol.feasible = false;
  }
  return sol;
}

PlacementSolution PlacementProblem::solve_greedy() const {
  std::vector<bool> covered(users_.size(), false);
  std::vector<int> chosen;
  std::size_t covered_count = 0;

  while (covered_count < users_.size()) {
    int best_site = -1;
    int best_gain = 0;
    for (int s = 0; s < static_cast<int>(sites_.size()); ++s) {
      if (std::find(chosen.begin(), chosen.end(), s) != chosen.end()) continue;
      int gain = 0;
      for (int u = 0; u < static_cast<int>(users_.size()); ++u) {
        if (!covered[static_cast<std::size_t>(u)] && covers(s, u)) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_site = s;
      }
    }
    if (best_site < 0) break;  // remaining users are uncoverable
    chosen.push_back(best_site);
    for (int u = 0; u < static_cast<int>(users_.size()); ++u) {
      if (!covered[static_cast<std::size_t>(u)] && covers(best_site, u)) {
        covered[static_cast<std::size_t>(u)] = true;
        ++covered_count;
      }
    }
  }
  return assemble(chosen);
}

PlacementSolution PlacementProblem::solve_exact() const {
  const int n = static_cast<int>(sites_.size());
  const int m = static_cast<int>(users_.size());
  // The exact path uses 64-bit coverage bitmasks; fall back to the greedy
  // beyond that (the exact solver exists to validate greedy quality on
  // small instances anyway).
  if (m > 64) return solve_greedy();
  std::vector<std::uint64_t> cover_mask(static_cast<std::size_t>(n), 0);
  std::uint64_t all = m >= 64 ? ~0ULL : ((1ULL << m) - 1);
  for (int s = 0; s < n; ++s) {
    for (int u = 0; u < m && u < 64; ++u) {
      if (covers(s, u)) cover_mask[static_cast<std::size_t>(s)] |= 1ULL << u;
    }
  }

  std::vector<int> best;
  bool found = false;
  // Iterate subsets in increasing popcount via sorted enumeration.
  for (int k = 1; k <= n && !found; ++k) {
    std::vector<int> idx(static_cast<std::size_t>(k));
    // Lexicographic k-combinations.
    for (int i = 0; i < k; ++i) idx[static_cast<std::size_t>(i)] = i;
    while (true) {
      std::uint64_t mask = 0;
      for (int i : idx) mask |= cover_mask[static_cast<std::size_t>(i)];
      if ((mask & all) == all) {
        best = idx;
        found = true;
        break;
      }
      // Next combination.
      int i = k - 1;
      while (i >= 0 && idx[static_cast<std::size_t>(i)] == n - k + i) --i;
      if (i < 0) break;
      ++idx[static_cast<std::size_t>(i)];
      for (int j = i + 1; j < k; ++j) {
        idx[static_cast<std::size_t>(j)] = idx[static_cast<std::size_t>(j - 1)] + 1;
      }
    }
  }
  if (!found) return solve_greedy();  // uncoverable: report the greedy best-effort
  return assemble(best);
}

PlacementSolution PlacementProblem::solve_greedy_capacitated() const {
  std::vector<int> assignment(users_.size(), -1);
  std::vector<int> chosen;
  std::vector<int> remaining_capacity;  // parallel to chosen
  std::size_t assigned = 0;

  while (assigned < users_.size()) {
    // Pick the unchosen site that can newly absorb the most users.
    int best_site = -1;
    int best_gain = 0;
    for (int s = 0; s < static_cast<int>(sites_.size()); ++s) {
      if (std::find(chosen.begin(), chosen.end(), s) != chosen.end()) continue;
      int cap = sites_[static_cast<std::size_t>(s)].capacity_users;
      int gain = 0;
      for (int u = 0; u < static_cast<int>(users_.size()); ++u) {
        if (assignment[static_cast<std::size_t>(u)] < 0 && covers(s, u)) {
          ++gain;
          if (cap > 0 && gain >= cap) break;
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_site = s;
      }
    }
    if (best_site < 0) break;
    chosen.push_back(best_site);
    int cap = sites_[static_cast<std::size_t>(best_site)].capacity_users;
    remaining_capacity.push_back(cap > 0 ? cap : static_cast<int>(users_.size()));

    // Assign nearest-first so the capacity goes to the users that need this
    // site most.
    std::vector<std::pair<sim::Time, int>> order;
    for (int u = 0; u < static_cast<int>(users_.size()); ++u) {
      if (assignment[static_cast<std::size_t>(u)] >= 0 || !covers(best_site, u)) continue;
      order.emplace_back(latency_.rtt(users_[static_cast<std::size_t>(u)].pos,
                                      sites_[static_cast<std::size_t>(best_site)].pos),
                         u);
    }
    std::sort(order.begin(), order.end());
    int& slots = remaining_capacity.back();
    for (const auto& [rtt, u] : order) {
      if (slots <= 0) break;
      assignment[static_cast<std::size_t>(u)] = best_site;
      --slots;
      ++assigned;
    }
  }

  PlacementSolution sol;
  sol.chosen_sites = std::move(chosen);
  sol.assignment = std::move(assignment);
  sol.feasible = assigned == users_.size();
  return sol;
}

PlacementSolution PlacementProblem::refine_mean_rtt(const PlacementSolution& base,
                                                    int max_swaps) const {
  PlacementSolution best = base;
  sim::Time best_mean = mean_assigned_rtt(best);
  for (int round = 0; round < max_swaps; ++round) {
    bool improved = false;
    for (std::size_t ci = 0; ci < best.chosen_sites.size() && !improved; ++ci) {
      for (int s = 0; s < static_cast<int>(sites_.size()); ++s) {
        if (std::find(best.chosen_sites.begin(), best.chosen_sites.end(), s) !=
            best.chosen_sites.end()) {
          continue;
        }
        std::vector<int> candidate_sites = best.chosen_sites;
        candidate_sites[ci] = s;
        PlacementSolution candidate = assemble(candidate_sites);
        if (!candidate.feasible) continue;
        sim::Time mean = mean_assigned_rtt(candidate);
        if (mean < best_mean) {
          best = std::move(candidate);
          best_mean = mean;
          improved = true;
          break;
        }
      }
    }
    if (!improved) break;
  }
  return best;
}

sim::Time PlacementProblem::mean_assigned_rtt(const PlacementSolution& sol) const {
  double total = 0;
  int n = 0;
  for (std::size_t u = 0; u < users_.size(); ++u) {
    int s = sol.assignment[u];
    if (s < 0) continue;
    total += static_cast<double>(
        latency_.rtt(users_[u].pos, sites_[static_cast<std::size_t>(s)].pos));
    ++n;
  }
  return n ? static_cast<sim::Time>(total / n) : 0;
}

sim::Time PlacementProblem::max_assigned_rtt(const PlacementSolution& sol) const {
  sim::Time worst = 0;
  for (std::size_t u = 0; u < users_.size(); ++u) {
    int s = sol.assignment[u];
    if (s < 0) continue;
    worst = std::max(worst, latency_.rtt(users_[u].pos, sites_[static_cast<std::size_t>(s)].pos));
  }
  return worst;
}

sim::Time nway_sync_period(const std::vector<CandidateSite>& sites,
                           const std::vector<int>& chosen, const LatencyModel& model,
                           double inter_dc_factor) {
  sim::Time worst = 0;
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    for (std::size_t j = i + 1; j < chosen.size(); ++j) {
      sim::Time r = model.rtt(sites[static_cast<std::size_t>(chosen[i])].pos,
                              sites[static_cast<std::size_t>(chosen[j])].pos);
      worst = std::max(worst, r);
    }
  }
  return static_cast<sim::Time>(static_cast<double>(worst) * inter_dc_factor);
}

}  // namespace arnet::edge
