#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "arnet/sim/time.hpp"

namespace arnet::edge {

/// Planar coordinates in kilometres (a metro area).
struct GeoPoint {
  double x_km = 0.0;
  double y_km = 0.0;
};

double distance_km(const GeoPoint& a, const GeoPoint& b);

/// A candidate edge-datacenter location.
struct CandidateSite {
  GeoPoint pos;
  std::string name;
  /// Maximum users a deployed datacenter at this site can serve
  /// (0 = unconstrained).
  int capacity_users = 0;
};

/// A mobile user running application `app` (index into the constraint set).
struct MobileUser {
  GeoPoint pos;
  int app = 0;
};

/// Per-application delay constraint: the P_offloading bound of §VI-F
/// collapsed to a maximum user<->datacenter RTT once the compute terms are
/// fixed.
struct AppConstraint {
  sim::Time max_rtt = sim::milliseconds(20);
};

/// Distance -> RTT model: wireless access base cost plus metro routing.
struct LatencyModel {
  sim::Time access_rtt = sim::milliseconds(4);       ///< radio + first hop
  sim::Time rtt_per_km = sim::microseconds(150);     ///< metro fiber detours
  sim::Time rtt(const GeoPoint& user, const GeoPoint& site) const {
    return access_rtt +
           static_cast<sim::Time>(distance_km(user, site) *
                                  static_cast<double>(rtt_per_km));
  }
};

struct PlacementSolution {
  std::vector<int> chosen_sites;   ///< indices into the candidate list
  std::vector<int> assignment;     ///< user -> chosen site index (-1 = uncovered)
  bool feasible = false;           ///< every user covered
  std::size_t datacenters() const { return chosen_sites.size(); }
};

/// The §VI-F problem: minimize |C| subject to every user's app meeting its
/// delay constraint from some chosen datacenter. This is minimum set cover
/// (NP-hard), so the library ships the standard greedy (ln n approximation)
/// plus an exact branch-over-subset-size solver for small instances.
class PlacementProblem {
 public:
  int add_site(CandidateSite site);
  int add_user(MobileUser user);
  void set_constraint(int app, AppConstraint c) { constraints_[app] = c; }
  void set_latency_model(LatencyModel m) { latency_ = m; }

  std::size_t sites() const { return sites_.size(); }
  std::size_t users() const { return users_.size(); }
  const LatencyModel& latency_model() const { return latency_; }

  /// Can site `s` serve user `u` within the constraint?
  bool covers(int s, int u) const;

  PlacementSolution solve_greedy() const;

  /// Exhaustive search over subset sizes 1..sites(); exponential — intended
  /// for <= ~20 candidate sites to validate the greedy's quality.
  PlacementSolution solve_exact() const;

  /// Greedy that respects per-site `capacity_users`: a site only covers as
  /// many users as its remaining capacity, so dense hotspots need several
  /// datacenters even when one would meet every delay constraint.
  PlacementSolution solve_greedy_capacitated() const;

  /// Local-search refinement at fixed |C| (k-median flavor): swap chosen
  /// sites for unchosen ones while the mean assigned RTT improves. Keeps
  /// feasibility; returns the improved solution.
  PlacementSolution refine_mean_rtt(const PlacementSolution& base,
                                    int max_swaps = 64) const;

  /// Build the nearest-feasible assignment for an explicit site choice.
  PlacementSolution solution_for(const std::vector<int>& chosen) const {
    return assemble(chosen);
  }

  /// Mean/max RTT of an assignment (reporting helpers).
  sim::Time max_assigned_rtt(const PlacementSolution& sol) const;
  sim::Time mean_assigned_rtt(const PlacementSolution& sol) const;

 private:
  PlacementSolution assemble(const std::vector<int>& chosen) const;

  std::vector<CandidateSite> sites_;
  std::vector<MobileUser> users_;
  std::map<int, AppConstraint> constraints_;
  LatencyModel latency_;
};

/// n-way inter-server synchronization bound (§VI-E): the state convergence
/// period across the chosen datacenters is governed by the slowest pairwise
/// link; `inter_dc_factor` models firewalls/policies on the interconnect.
sim::Time nway_sync_period(const std::vector<CandidateSite>& sites,
                           const std::vector<int>& chosen, const LatencyModel& model,
                           double inter_dc_factor = 1.5);

}  // namespace arnet::edge
