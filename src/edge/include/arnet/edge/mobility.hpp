#pragma once

#include <vector>

#include "arnet/edge/placement.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/sim/time.hpp"

namespace arnet::edge {

/// Random-waypoint walker inside a rectangular city: picks a destination,
/// walks there at `speed`, pauses, repeats. Drives the dynamic
/// server-selection study (paper §VI-E: "the nearest server would be
/// selected for a given path", which changes as the user moves).
class RandomWaypoint {
 public:
  struct Config {
    double city_km = 20.0;
    double speed_kmh_min = 3.0;   ///< walking
    double speed_kmh_max = 40.0;  ///< bus/car
    sim::Time pause_max = sim::seconds(60);
  };

  RandomWaypoint(sim::Rng rng, Config cfg);

  /// Position at absolute time `t` (t must not decrease between calls).
  GeoPoint position_at(sim::Time t);

 private:
  void next_leg();

  sim::Rng rng_;
  Config cfg_;
  GeoPoint from_{}, to_{};
  sim::Time leg_start_ = 0;
  sim::Time leg_end_ = 0;
  sim::Time pause_until_ = 0;
};

/// Offline simulation of mobile users against a fixed edge deployment:
/// every `reselect_interval` each user re-picks the nearest feasible
/// datacenter; switching datacenters costs a session migration (state
/// transfer + n-way re-sync, §VI-E).
struct MigrationStudy {
  struct Config {
    sim::Time duration = sim::seconds(1800);
    sim::Time reselect_interval = sim::seconds(5);
    double city_km = 20.0;  ///< walkers roam this square
    std::int64_t session_state_bytes = 2'000'000;  ///< maps/features/pose state
    double inter_dc_bps = 1e9;
    LatencyModel latency;
    sim::Time max_rtt = sim::milliseconds(12);  ///< app constraint
  };

  struct Result {
    sim::Samples rtt_ms;            ///< sampled user->assigned-DC RTT
    int migrations = 0;
    double out_of_constraint_fraction = 0.0;  ///< time with no feasible DC
    sim::Time mean_migration_downtime = 0;    ///< per-migration state-transfer time
    double migrations_per_user_hour = 0.0;
  };

  /// Run `users` random-waypoint walkers against the chosen sites.
  static Result run(const std::vector<CandidateSite>& sites, const std::vector<int>& chosen,
                    int users, std::uint64_t seed, const Config& cfg);
};

}  // namespace arnet::edge
