#include "arnet/edge/mobility.hpp"

#include <algorithm>
#include <cmath>

namespace arnet::edge {

RandomWaypoint::RandomWaypoint(sim::Rng rng, Config cfg) : rng_(std::move(rng)), cfg_(cfg) {
  from_ = {rng_.uniform(0, cfg_.city_km), rng_.uniform(0, cfg_.city_km)};
  to_ = from_;
  next_leg();
}

void RandomWaypoint::next_leg() {
  from_ = to_;
  to_ = {rng_.uniform(0, cfg_.city_km), rng_.uniform(0, cfg_.city_km)};
  double speed_kms = rng_.uniform(cfg_.speed_kmh_min, cfg_.speed_kmh_max) / 3600.0;
  double dist = distance_km(from_, to_);
  leg_start_ = pause_until_;
  leg_end_ = leg_start_ + sim::from_seconds(dist / std::max(speed_kms, 1e-6));
  pause_until_ = leg_end_ + sim::from_seconds(rng_.uniform(0, sim::to_seconds(cfg_.pause_max)));
}

GeoPoint RandomWaypoint::position_at(sim::Time t) {
  while (t >= pause_until_) next_leg();
  if (t <= leg_start_) return from_;
  if (t >= leg_end_) return to_;
  double f = static_cast<double>(t - leg_start_) / static_cast<double>(leg_end_ - leg_start_);
  return {from_.x_km + f * (to_.x_km - from_.x_km), from_.y_km + f * (to_.y_km - from_.y_km)};
}

MigrationStudy::Result MigrationStudy::run(const std::vector<CandidateSite>& sites,
                                           const std::vector<int>& chosen, int users,
                                           std::uint64_t seed, const Config& cfg) {
  Result result;
  sim::Rng root(seed);
  sim::Time transfer = sim::transmission_delay(cfg.session_state_bytes, cfg.inter_dc_bps);

  std::int64_t samples = 0, out_of_constraint = 0;
  RandomWaypoint::Config walk_cfg;
  walk_cfg.city_km = cfg.city_km;
  for (int u = 0; u < users; ++u) {
    RandomWaypoint walker(root.fork("user" + std::to_string(u)), walk_cfg);
    int current_dc = -1;
    for (sim::Time t = 0; t < cfg.duration; t += cfg.reselect_interval) {
      GeoPoint pos = walker.position_at(t);
      // Nearest feasible chosen site.
      int best = -1;
      sim::Time best_rtt = sim::kNever;
      for (int s : chosen) {
        sim::Time r = cfg.latency.rtt(pos, sites[static_cast<std::size_t>(s)].pos);
        if (r < best_rtt) {
          best_rtt = r;
          best = s;
        }
      }
      ++samples;
      if (best < 0 || best_rtt > cfg.max_rtt) {
        ++out_of_constraint;
        continue;
      }
      result.rtt_ms.add(sim::to_milliseconds(best_rtt));
      if (current_dc >= 0 && best != current_dc) {
        ++result.migrations;
      }
      current_dc = best;
    }
  }
  result.out_of_constraint_fraction =
      samples ? static_cast<double>(out_of_constraint) / static_cast<double>(samples) : 0.0;
  result.mean_migration_downtime = transfer;
  double user_hours = users * sim::to_seconds(cfg.duration) / 3600.0;
  result.migrations_per_user_hour =
      user_hours > 0 ? result.migrations / user_hours : 0.0;
  return result;
}

}  // namespace arnet::edge
