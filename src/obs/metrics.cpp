#include "arnet/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace arnet::obs {

int Histogram::bucket_of(double v) {
  if (!(v >= 1.0)) return 0;  // underflow: v < 1, zero, negative, NaN
  int idx = 1 + static_cast<int>(std::floor(std::log10(v) * kBucketsPerDecade));
  return std::min(idx, kBucketCount - 1);
}

double Histogram::bucket_lower(int i) {
  if (i <= 0) return 0.0;
  return std::pow(10.0, static_cast<double>(i - 1) / kBucketsPerDecade);
}

void Histogram::record(double v) {
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
  ++counts_[static_cast<std::size_t>(bucket_of(v))];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

void Histogram::record(double v, std::uint32_t trace_id) {
  record(v);
  if (trace_id != 0) note_exemplar(bucket_of(v), trace_id, v);
}

void Histogram::note_exemplar(int bucket, std::uint32_t trace_id, double value) {
  if (trace_id == 0 || bucket < 0 || bucket >= kBucketCount) return;
  auto it = exemplars_.find(bucket);
  if (it == exemplars_.end() || value > it->second.value ||
      (value == it->second.value && trace_id < it->second.trace_id)) {
    exemplars_[bucket] = Exemplar{trace_id, value};
  }
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank in [0, count-1], matching linear-interpolated exact quantiles.
  double rank = p * static_cast<double>(count_ - 1);
  std::int64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    std::int64_t c = counts_[static_cast<std::size_t>(i)];
    if (c == 0) continue;
    if (rank < static_cast<double>(seen + c)) {
      double frac = (rank - static_cast<double>(seen)) / static_cast<double>(c);
      double lo = bucket_lower(i);
      double hi = bucket_lower(i + 1);
      double v = lo + (hi - lo) * frac;
      return std::clamp(v, min_, max_);
    }
    seen += c;
  }
  return max_;
}

void Histogram::merge(const Histogram& o) {
  if (o.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
  for (int i = 0; i < kBucketCount; ++i) {
    counts_[static_cast<std::size_t>(i)] += o.counts_[static_cast<std::size_t>(i)];
  }
  count_ += o.count_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  for (const auto& [b, ex] : o.exemplars_) note_exemplar(b, ex.trace_id, ex.value);
}

std::vector<std::pair<int, std::int64_t>> Histogram::nonzero_buckets() const {
  std::vector<std::pair<int, std::int64_t>> out;
  for (int i = 0; i < kBucketCount && !counts_.empty(); ++i) {
    std::int64_t c = counts_[static_cast<std::size_t>(i)];
    if (c > 0) out.emplace_back(i, c);
  }
  return out;
}

void Histogram::restore(const std::vector<std::pair<int, std::int64_t>>& buckets, double sum,
                        double min_v, double max_v) {
  if (buckets.empty()) return;
  if (counts_.empty()) counts_.assign(kBucketCount, 0);
  for (const auto& [i, c] : buckets) {
    if (i < 0 || i >= kBucketCount || c <= 0) continue;
    counts_[static_cast<std::size_t>(i)] += c;
    count_ += c;
  }
  sum_ += sum;
  min_ = std::min(min_, min_v);
  max_ = std::max(max_, max_v);
}

}  // namespace arnet::obs
