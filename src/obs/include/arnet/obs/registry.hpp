#pragma once

#include <map>
#include <string>

#include "arnet/obs/metrics.hpp"
#include "arnet/obs/recorder.hpp"

namespace arnet::obs {

/// Per-entity metrics hub: counters, gauges, log-bucketed histograms, and a
/// time-series recorder, all keyed by (metric name, entity). Subsystems are
/// handed a registry pointer and publish into it; exporters (JSONL/CSV) and
/// figure harnesses consume it. Instruments are created on first touch, so
/// publishing code never needs registration ceremony.
///
/// Ordered maps keep iteration (export, merge) deterministic — a hard
/// requirement for this repo's trace-fingerprint harness.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& entity) {
    return counters_[MetricId{name, entity}];
  }
  Gauge& gauge(const std::string& name, const std::string& entity) {
    return gauges_[MetricId{name, entity}];
  }
  Histogram& histogram(const std::string& name, const std::string& entity) {
    return histograms_[MetricId{name, entity}];
  }
  TimeSeriesRecorder& recorder() { return recorder_; }
  const TimeSeriesRecorder& recorder() const { return recorder_; }

  const std::map<MetricId, Counter>& counters() const { return counters_; }
  const std::map<MetricId, Gauge>& gauges() const { return gauges_; }
  const std::map<MetricId, Histogram>& histograms() const { return histograms_; }

  /// Lookup without creation; nullptr when the instrument does not exist.
  const Counter* find_counter(const std::string& name, const std::string& entity) const {
    auto it = counters_.find(MetricId{name, entity});
    return it == counters_.end() ? nullptr : &it->second;
  }
  const Gauge* find_gauge(const std::string& name, const std::string& entity) const {
    auto it = gauges_.find(MetricId{name, entity});
    return it == gauges_.end() ? nullptr : &it->second;
  }
  const Histogram* find_histogram(const std::string& name, const std::string& entity) const {
    auto it = histograms_.find(MetricId{name, entity});
    return it == histograms_.end() ? nullptr : &it->second;
  }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() && recorder_.empty();
  }

  /// Aggregate another registry into this one: counters add, histograms
  /// merge bucket-wise, gauges latest-wins, series append. Used to combine
  /// per-shard or per-run registries into one report.
  void merge_from(const MetricsRegistry& o) {
    for (const auto& [id, c] : o.counters_) counters_[id].merge(c);
    for (const auto& [id, g] : o.gauges_) gauges_[id].merge(g);
    for (const auto& [id, h] : o.histograms_) histograms_[id].merge(h);
    recorder_.merge_from(o.recorder_);
  }

 private:
  std::map<MetricId, Counter> counters_;
  std::map<MetricId, Gauge> gauges_;
  std::map<MetricId, Histogram> histograms_;
  TimeSeriesRecorder recorder_;
};

}  // namespace arnet::obs
