#pragma once

#include <iosfwd>
#include <string>

#include "arnet/obs/registry.hpp"

namespace arnet::obs {

/// JSONL export: one self-describing JSON object per line, so consumers can
/// stream-filter with grep/jq and partial files stay parseable. Schema
/// (`arnet-obs-v2`): a leading meta line, then one of:
///
///   {"kind":"meta","schema":"arnet-obs-v2"}
///   {"kind":"counter","name":N,"entity":E,"value":I}
///   {"kind":"gauge","name":N,"entity":E,"value":F}
///   {"kind":"histogram","name":N,"entity":E,"count":I,"sum":F,"min":F,
///    "max":F,"mean":F,"p50":F,"p90":F,"p99":F,"buckets":[[idx,count],...]
///    [,"exemplars":[[idx,trace_id,value],...]]}
///   {"kind":"series","name":N,"entity":E,"points":[[t_ns,value],...]}
///
/// Histogram lines carry both the derived summary (for humans and plotting
/// scripts) and the raw buckets (so a re-import is lossless up to bucket
/// resolution and histograms stay mergeable downstream); `sum` is the raw
/// accumulated sum, bit-exact through the round trip. The optional
/// exemplars join buckets to retained trace ids (see obs::Exemplar). The
/// reader also accepts v1 files (no meta line, no exemplars).
void write_jsonl(const MetricsRegistry& reg, std::ostream& os);

/// Parse a `write_jsonl` document back into `out`, merging into whatever it
/// already holds. Returns false (and stops) on the first malformed line.
/// This is deliberately a reader for the schema above, not a general JSON
/// parser.
bool read_jsonl(std::istream& is, MetricsRegistry& out);

/// CSV export of every recorded time series: `name,entity,t_ns,value` with a
/// header row — the format the plotting scripts and spreadsheet spot checks
/// consume.
void write_csv(const TimeSeriesRecorder& rec, std::ostream& os);

/// JSON string escaping (exposed for the bench JSON emitter).
std::string json_escape(const std::string& s);

}  // namespace arnet::obs
