#pragma once

#include <map>
#include <string>

#include "arnet/obs/metrics.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/sim/time.hpp"

namespace arnet::obs {

/// Named, entity-keyed collection of timestamped series: cwnd traces, RTT
/// samples over time, queue sojourn, per-class delivered rate... This is the
/// uniform replacement for the ad-hoc per-agent trace members scattered
/// through transport and the figure harnesses: agents `record()` into the
/// recorder they were handed, exporters serialize all of it in one pass.
class TimeSeriesRecorder {
 public:
  void record(const std::string& name, const std::string& entity, sim::Time t, double v) {
    series_[MetricId{name, entity}].add(t, v);
  }

  /// Series accessor, created on first use (for publishers).
  sim::TimeSeries& series(const std::string& name, const std::string& entity) {
    return series_[MetricId{name, entity}];
  }

  /// Lookup without creation (for consumers); nullptr when absent.
  const sim::TimeSeries* find(const std::string& name, const std::string& entity) const {
    auto it = series_.find(MetricId{name, entity});
    return it == series_.end() ? nullptr : &it->second;
  }

  const std::map<MetricId, sim::TimeSeries>& all() const { return series_; }
  bool empty() const { return series_.empty(); }

  /// Append the other recorder's points series-by-series.
  void merge_from(const TimeSeriesRecorder& o) {
    for (const auto& [id, ts] : o.series_) {
      sim::TimeSeries& mine = series_[id];
      for (const auto& [t, v] : ts.points()) mine.add(t, v);
    }
  }

 private:
  std::map<MetricId, sim::TimeSeries> series_;
};

}  // namespace arnet::obs
