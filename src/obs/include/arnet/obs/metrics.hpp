#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace arnet::obs {

/// Identity of one metric instance: what is measured plus which entity it
/// belongs to. Entities are stable string keys ("flow:3", "link:uplink",
/// "queue:ap", "node:edge", "sta:2") so a registry dump groups naturally and
/// merges deterministically.
struct MetricId {
  std::string name;    ///< measurement, e.g. "tcp.cwnd" or "queue.sojourn_ms"
  std::string entity;  ///< owner, e.g. "flow:1"

  bool operator<(const MetricId& o) const {
    if (name != o.name) return name < o.name;
    return entity < o.entity;
  }
  bool operator==(const MetricId& o) const {
    return name == o.name && entity == o.entity;
  }
};

/// Monotonic event/byte counter.
class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  std::int64_t value() const { return value_; }
  void merge(const Counter& o) { value_ += o.value_; }

 private:
  std::int64_t value_ = 0;
};

/// Last-value instrument (utilization, congestion level, MOS...).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    set_ = true;
  }
  double value() const { return value_; }
  bool has_value() const { return set_; }
  /// Merge keeps the other side's value when it has one (documented
  /// latest-wins; counters and histograms carry the associative state).
  void merge(const Gauge& o) {
    if (o.set_) {
      value_ = o.value_;
      set_ = true;
    }
  }

 private:
  double value_ = 0.0;
  bool set_ = false;
};

/// A bucket's representative retained trace: the metrics-to-traces join.
/// When the tail sampler keeps a frame, its latency bucket remembers the
/// trace id so a report can deep-link "p99 bucket" straight to a concrete
/// per-frame timeline. Merge keeps the larger value (ties: lower trace id)
/// — an associative, commutative rule, so cross-shard merges agree no
/// matter the merge order.
struct Exemplar {
  std::uint32_t trace_id = 0;
  double value = 0.0;
};

/// Log-bucketed histogram for positive, latency-like values (ns, ms, bytes).
///
/// Buckets are geometric: kBucketsPerDecade per decade over [1, 10^kDecades),
/// so any reported quantile is within one bucket width — a relative error of
/// 10^(1/kBucketsPerDecade) - 1 ≈ 15% — of the exact sample quantile, while
/// the whole instrument is a fixed few hundred integers. Two histograms with
/// the same layout merge by adding bucket counts, which makes per-entity
/// registries aggregatable across runs, shards, or time windows.
class Histogram {
 public:
  static constexpr int kBucketsPerDecade = 16;
  static constexpr int kDecades = 12;
  /// Bucket 0 is the underflow bucket (v < 1, including non-positives);
  /// the last bucket absorbs overflow.
  static constexpr int kBucketCount = kBucketsPerDecade * kDecades + 2;

  void record(double v);
  /// Record with a trace exemplar: `trace_id` 0 behaves exactly like the
  /// plain overload (untraced), otherwise the value's bucket may adopt it
  /// as its representative (keep-max-value rule; see Exemplar).
  void record(double v, std::uint32_t trace_id);

  std::int64_t count() const { return count_; }
  double sum() const { return count_ ? sum_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Quantile estimate, `p` in [0, 1]: linear interpolation inside the
  /// containing bucket, clamped to the exact observed [min, max].
  double percentile(double p) const;
  double p50() const { return percentile(0.50); }
  double p90() const { return percentile(0.90); }
  double p99() const { return percentile(0.99); }

  void merge(const Histogram& o);

  /// Sparse view of the occupied buckets, for export: (index, count) pairs.
  std::vector<std::pair<int, std::int64_t>> nonzero_buckets() const;

  /// Rebuild state from exported parts (importer side of the JSONL
  /// round-trip); merges into whatever is already recorded.
  void restore(const std::vector<std::pair<int, std::int64_t>>& buckets, double sum,
               double min_v, double max_v);

  /// Occupied exemplar slots, keyed by bucket index (sparse; ordered for
  /// deterministic export).
  const std::map<int, Exemplar>& exemplars() const { return exemplars_; }

  /// Importer-side exemplar merge (same keep-max rule as record/merge).
  void note_exemplar(int bucket, std::uint32_t trace_id, double value);

  /// Lower edge of bucket `i` (the value-domain boundary used for
  /// interpolation); exposed for tests.
  static double bucket_lower(int i);

 private:
  static int bucket_of(double v);

  std::vector<std::int64_t> counts_;  ///< lazily sized to kBucketCount
  std::map<int, Exemplar> exemplars_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace arnet::obs
