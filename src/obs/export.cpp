#include "arnet/obs/export.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <istream>
#include <map>
#include <ostream>
#include <vector>

namespace arnet::obs {

namespace {

/// Shortest round-trip formatting of a double (std::to_chars), so an
/// export -> import cycle reproduces values bit-exactly.
std::string fmt_double(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

void write_id(std::ostream& os, const char* kind, const MetricId& id) {
  os << "{\"kind\":\"" << kind << "\",\"name\":\"" << json_escape(id.name)
     << "\",\"entity\":\"" << json_escape(id.entity) << "\"";
}

// ------------------------------------------------------------- line parser
//
// A minimal parser for the flat objects write_jsonl emits: string values,
// numeric values, and arrays of [number, number] pairs. Anything else is a
// malformed line.

struct ParsedLine {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
  /// Arrays of fixed-arity number tuples ([[a,b],...] bucket/point pairs,
  /// [[a,b,c],...] exemplar triples). Arity is per-element as parsed.
  std::map<std::string, std::vector<std::vector<double>>> lists;
};

struct Cursor {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
  }
  bool eat(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (c.p < c.end) {
    char ch = *c.p++;
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.p >= c.end) return false;
      char esc = *c.p++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        default: return false;  // \uXXXX not emitted by the writer
      }
    } else {
      out += ch;
    }
  }
  return false;
}

bool parse_number(Cursor& c, double& out) {
  c.skip_ws();
  char* after = nullptr;
  out = std::strtod(c.p, &after);
  if (after == c.p) return false;
  c.p = after;
  return true;
}

bool parse_tuple_list(Cursor& c, std::vector<std::vector<double>>& out) {
  if (!c.eat('[')) return false;
  out.clear();
  if (c.eat(']')) return true;  // empty list
  do {
    if (!c.eat('[')) return false;
    std::vector<double> tuple;
    do {
      double v = 0;
      if (!parse_number(c, v)) return false;
      tuple.push_back(v);
    } while (c.eat(','));
    if (!c.eat(']') || tuple.empty()) return false;
    out.push_back(std::move(tuple));
  } while (c.eat(','));
  return c.eat(']');
}

bool parse_line(const std::string& line, ParsedLine& out) {
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.eat('{')) return false;
  if (c.eat('}')) return true;
  do {
    std::string key;
    if (!parse_string(c, key) || !c.eat(':')) return false;
    c.skip_ws();
    if (c.peek('"')) {
      std::string v;
      if (!parse_string(c, v)) return false;
      out.strings[key] = v;
    } else if (c.peek('[')) {
      std::vector<std::vector<double>> v;
      if (!parse_tuple_list(c, v)) return false;
      out.lists[key] = std::move(v);
    } else {
      double v = 0;
      if (!parse_number(c, v)) return false;
      out.numbers[key] = v;
    }
  } while (c.eat(','));
  return c.eat('}');
}

bool has_keys(const ParsedLine& l, std::initializer_list<const char*> strs,
              std::initializer_list<const char*> nums) {
  for (const char* k : strs) {
    if (l.strings.find(k) == l.strings.end()) return false;
  }
  for (const char* k : nums) {
    if (l.numbers.find(k) == l.numbers.end()) return false;
  }
  return true;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void write_jsonl(const MetricsRegistry& reg, std::ostream& os) {
  os << "{\"kind\":\"meta\",\"schema\":\"arnet-obs-v2\"}\n";
  for (const auto& [id, c] : reg.counters()) {
    write_id(os, "counter", id);
    os << ",\"value\":" << c.value() << "}\n";
  }
  for (const auto& [id, g] : reg.gauges()) {
    write_id(os, "gauge", id);
    os << ",\"value\":" << fmt_double(g.value()) << "}\n";
  }
  for (const auto& [id, h] : reg.histograms()) {
    write_id(os, "histogram", id);
    // The raw accumulated sum, not mean*count: the divide-then-multiply
    // round trip can drift by ULPs, which breaks the bit-exact export ->
    // import -> merge contract the cross-shard property test pins.
    os << ",\"count\":" << h.count() << ",\"sum\":" << fmt_double(h.sum())
       << ",\"min\":" << fmt_double(h.min()) << ",\"max\":" << fmt_double(h.max())
       << ",\"mean\":" << fmt_double(h.mean()) << ",\"p50\":" << fmt_double(h.p50())
       << ",\"p90\":" << fmt_double(h.p90()) << ",\"p99\":" << fmt_double(h.p99())
       << ",\"buckets\":[";
    bool first = true;
    for (const auto& [idx, n] : h.nonzero_buckets()) {
      if (!first) os << ",";
      first = false;
      os << "[" << idx << "," << n << "]";
    }
    os << "]";
    if (!h.exemplars().empty()) {
      os << ",\"exemplars\":[";
      first = true;
      for (const auto& [idx, ex] : h.exemplars()) {
        if (!first) os << ",";
        first = false;
        os << "[" << idx << "," << ex.trace_id << "," << fmt_double(ex.value) << "]";
      }
      os << "]";
    }
    os << "}\n";
  }
  for (const auto& [id, ts] : reg.recorder().all()) {
    write_id(os, "series", id);
    os << ",\"points\":[";
    bool first = true;
    for (const auto& [t, v] : ts.points()) {
      if (!first) os << ",";
      first = false;
      os << "[" << t << "," << fmt_double(v) << "]";
    }
    os << "]}\n";
  }
}

bool read_jsonl(std::istream& is, MetricsRegistry& out) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ParsedLine l;
    if (!parse_line(line, l)) return false;
    if (!has_keys(l, {"kind"}, {})) return false;
    const std::string& kind = l.strings["kind"];
    if (kind == "meta") {
      // v2 header. v1 files have none (the reader accepts both); anything
      // claiming a non-obs schema is not ours.
      auto sit = l.strings.find("schema");
      if (sit == l.strings.end() || sit->second.rfind("arnet-obs-", 0) != 0) return false;
      continue;
    }
    if (!has_keys(l, {"name", "entity"}, {})) return false;
    const std::string& name = l.strings["name"];
    const std::string& entity = l.strings["entity"];
    if (kind == "counter") {
      if (!has_keys(l, {}, {"value"})) return false;
      out.counter(name, entity).add(static_cast<std::int64_t>(l.numbers["value"]));
    } else if (kind == "gauge") {
      if (!has_keys(l, {}, {"value"})) return false;
      out.gauge(name, entity).set(l.numbers["value"]);
    } else if (kind == "histogram") {
      if (!has_keys(l, {}, {"sum", "min", "max"})) return false;
      auto it = l.lists.find("buckets");
      if (it == l.lists.end()) return false;
      std::vector<std::pair<int, std::int64_t>> buckets;
      for (const auto& tuple : it->second) {
        if (tuple.size() != 2) return false;
        buckets.emplace_back(static_cast<int>(tuple[0]),
                             static_cast<std::int64_t>(tuple[1]));
      }
      Histogram& h = out.histogram(name, entity);
      h.restore(buckets, l.numbers["sum"], l.numbers["min"], l.numbers["max"]);
      auto ex = l.lists.find("exemplars");
      if (ex != l.lists.end()) {
        for (const auto& tuple : ex->second) {
          if (tuple.size() != 3) return false;
          h.note_exemplar(static_cast<int>(tuple[0]),
                          static_cast<std::uint32_t>(tuple[1]), tuple[2]);
        }
      }
    } else if (kind == "series") {
      auto it = l.lists.find("points");
      if (it == l.lists.end()) return false;
      sim::TimeSeries& ts = out.recorder().series(name, entity);
      for (const auto& tuple : it->second) {
        if (tuple.size() != 2) return false;
        ts.add(static_cast<sim::Time>(tuple[0]), tuple[1]);
      }
    } else {
      return false;
    }
  }
  return true;
}

void write_csv(const TimeSeriesRecorder& rec, std::ostream& os) {
  os << "name,entity,t_ns,value\n";
  for (const auto& [id, ts] : rec.all()) {
    for (const auto& [t, v] : ts.points()) {
      os << id.name << "," << id.entity << "," << t << "," << fmt_double(v) << "\n";
    }
  }
}

}  // namespace arnet::obs
