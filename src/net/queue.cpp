#include "arnet/net/queue.hpp"

#include <cmath>

namespace arnet::net {

// ---------------------------------------------------------------- DropTail

bool DropTailQueue::enqueue(Packet p, sim::Time now) {
  // The supplement counts packets a batching Link has claimed for future
  // serialization slots; un-batched they would still occupy this queue.
  if (q_.size() + (supplement_ ? supplement_() : 0) >= capacity_) {
    drop(p, DropReason::kQueue);
    return false;
  }
  p.enqueued_at = now;
  bytes_ += p.size_bytes;
  q_.push_back(std::move(p));
  return true;
}

std::optional<Packet> DropTailQueue::dequeue(sim::Time /*now*/) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

// ------------------------------------------------------------------- CoDel

CoDelQueue::CoDelQueue() : CoDelQueue(Config{}) {}

bool CoDelQueue::enqueue(Packet p, sim::Time now) {
  if (q_.size() >= cfg_.capacity_packets) {
    drop(p, DropReason::kQueue);
    return false;
  }
  p.enqueued_at = now;
  bytes_ += p.size_bytes;
  q_.push_back(std::move(p));
  return true;
}

std::optional<Packet> CoDelQueue::pop_front() {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  bytes_ -= p.size_bytes;
  return p;
}

bool CoDelQueue::should_drop(const Packet& p, sim::Time now) {
  sim::Time sojourn = now - p.enqueued_at;
  if (sojourn < cfg_.target || bytes_ < 2 * cfg_.mtu_bytes) {
    first_above_time_ = 0;
    return false;
  }
  if (first_above_time_ == 0) {
    first_above_time_ = now + cfg_.interval;
    return false;
  }
  return now >= first_above_time_;
}

std::optional<Packet> CoDelQueue::dequeue(sim::Time now) {
  auto p = pop_front();
  if (!p) {
    dropping_ = false;
    return std::nullopt;
  }
  bool above = should_drop(*p, now);
  if (dropping_) {
    if (!above) {
      dropping_ = false;
    } else if (now >= drop_next_) {
      // Drop and re-dequeue, tightening the control interval.
      while (p && now >= drop_next_ && dropping_) {
        drop(*p, DropReason::kAqm);
        ++count_;
        p = pop_front();
        if (!p) {
          dropping_ = false;
          break;
        }
        if (!should_drop(*p, now)) {
          dropping_ = false;
        } else {
          drop_next_ += static_cast<sim::Time>(
              static_cast<double>(cfg_.interval) / std::sqrt(static_cast<double>(count_)));
        }
      }
    }
  } else if (above && (recently_dropping(now) || now - first_above_time_ >= cfg_.interval)) {
    // Enter dropping state.
    drop(*p, DropReason::kAqm);
    ++count_;
    p = pop_front();
    dropping_ = true;
    // Control-law memory: restart from a higher rate if we were dropping
    // recently. drop_next_ == 0 means "never dropped" — at cold start the
    // raw `now - drop_next_ < interval` test would read as "recently
    // dropping" and seed the first spell with stale-looking memory.
    if (recently_dropping(now)) {
      count_ = count_ > 2 ? count_ - 2 : 1;
    } else {
      count_ = 1;
    }
    drop_next_ = now + static_cast<sim::Time>(
        static_cast<double>(cfg_.interval) / std::sqrt(static_cast<double>(count_)));
  }
  return p;
}

// ---------------------------------------------------------------- FQ-CoDel

FqCoDelQueue::FqCoDelQueue() : FqCoDelQueue(Config{}) {}

FqCoDelQueue::FqCoDelQueue(Config cfg) : cfg_(cfg) {
  buckets_.resize(cfg_.bucket_count);
  for (auto& b : buckets_) b.codel = std::make_unique<CoDelQueue>(cfg_.codel);
}

void FqCoDelQueue::set_drop_hook(DropHook hook) {
  // The composite's own counter still ticks via count_drop(); the packets
  // themselves are reported by the bucket that discards them.
  for (auto& b : buckets_) b.codel->set_drop_hook(hook);
}

std::size_t FqCoDelQueue::bucket_of(const Packet& p) const {
  // Flow hash over the 5-tuple-ish identity.
  std::uint64_t h = p.flow * 0x9E3779B97F4A7C15ULL;
  h ^= (static_cast<std::uint64_t>(p.src) << 32) | p.dst;
  h ^= (static_cast<std::uint64_t>(p.src_port) << 16) | p.dst_port;
  h *= 0xBF58476D1CE4E5B9ULL;
  return static_cast<std::size_t>(h % buckets_.size());
}

bool FqCoDelQueue::enqueue(Packet p, sim::Time now) {
  std::size_t idx = bucket_of(p);
  Bucket& b = buckets_[idx];
  std::int64_t sz = p.size_bytes;
  if (!b.codel->enqueue(std::move(p), now)) {
    count_drop();
    return false;
  }
  ++packets_;
  bytes_ += sz;
  if (!b.queued) {
    b.queued = true;
    b.deficit = cfg_.quantum_bytes;
    new_flows_.push_back(idx);
  }
  return true;
}

std::optional<Packet> FqCoDelQueue::dequeue(sim::Time now) {
  for (int guard = 0; guard < 4 * static_cast<int>(buckets_.size()) + 8; ++guard) {
    std::deque<std::size_t>* list = !new_flows_.empty() ? &new_flows_ : &old_flows_;
    if (list->empty()) return std::nullopt;
    std::size_t idx = list->front();
    Bucket& b = buckets_[idx];
    if (b.deficit <= 0) {
      b.deficit += cfg_.quantum_bytes;
      list->pop_front();
      old_flows_.push_back(idx);
      continue;
    }
    std::size_t before = b.codel->packets();
    auto p = b.codel->dequeue(now);
    std::size_t after = b.codel->packets();
    if (!p) {
      // Either the bucket was empty or CoDel dropped everything it held.
      packets_ -= before;
      b.queued = false;
      list->pop_front();
      continue;
    }
    // `before - after` covers the returned packet plus AQM-internal drops.
    packets_ -= (before - after);
    bytes_ = 0;
    for (const auto& bb : buckets_) bytes_ += bb.codel->bytes();
    b.deficit -= p->size_bytes;
    if (b.codel->empty()) {
      b.queued = false;
      list->pop_front();
    }
    return p;
  }
  return std::nullopt;
}

// ---------------------------------------------- Classful strict priorities

bool ClassfulPriorityQueue::enqueue(Packet p, sim::Time now) {
  auto band = static_cast<std::size_t>(p.priority);
  if (bands_[band].size() >= capacity_) {
    drop(p, DropReason::kQueue);
    return false;
  }
  p.enqueued_at = now;
  bytes_ += p.size_bytes;
  bands_[band].push_back(std::move(p));
  return true;
}

std::optional<Packet> ClassfulPriorityQueue::dequeue(sim::Time /*now*/) {
  for (auto& band : bands_) {
    if (!band.empty()) {
      Packet p = std::move(band.front());
      band.pop_front();
      bytes_ -= p.size_bytes;
      return p;
    }
  }
  return std::nullopt;
}

std::size_t ClassfulPriorityQueue::packets() const {
  std::size_t n = 0;
  for (const auto& band : bands_) n += band.size();
  return n;
}

// -------------------------------------------------- Weighted fair (DRR)

WeightedFairQueue::WeightedFairQueue(std::vector<ClassConfig> classes, Classifier classify)
    : classify_(std::move(classify)) {
  for (auto& c : classes) classes_.push_back(Class{c, {}, 0.0, false, 0});
}

WeightedFairQueue::Classifier WeightedFairQueue::reserve_flow(FlowId flow) {
  return [flow](const Packet& p) -> std::size_t { return p.flow == flow ? 0 : 1; };
}

bool WeightedFairQueue::enqueue(Packet p, sim::Time now) {
  std::size_t cls = std::min(classify_(p), classes_.size() - 1);
  Class& c = classes_[cls];
  if (c.q.size() >= c.cfg.capacity_packets) {
    drop(p, DropReason::kQueue);
    return false;
  }
  p.enqueued_at = now;
  bytes_ += p.size_bytes;
  ++packets_;
  c.q.push_back(std::move(p));
  return true;
}

std::optional<Packet> WeightedFairQueue::dequeue(sim::Time /*now*/) {
  if (packets_ == 0) return std::nullopt;
  // DRR: a visit credits the class's quantum exactly once; the class then
  // sends while its deficit lasts (possibly across several dequeue calls)
  // and yields the round-robin token when the deficit runs out.
  for (std::size_t guard = 0; guard < 8 * classes_.size() + 8; ++guard) {
    Class& c = classes_[rr_];
    if (c.q.empty()) {
      c.deficit = 0.0;
      c.in_visit = false;
      rr_ = (rr_ + 1) % classes_.size();
      continue;
    }
    if (!c.in_visit) {
      c.deficit += quantum_base_ * c.cfg.weight;
      c.in_visit = true;
    }
    if (c.deficit >= c.q.front().size_bytes) {
      Packet p = std::move(c.q.front());
      c.q.pop_front();
      c.deficit -= p.size_bytes;
      c.dequeued_bytes += p.size_bytes;
      bytes_ -= p.size_bytes;
      --packets_;
      return p;
    }
    c.in_visit = false;  // visit over; keep the residual deficit
    rr_ = (rr_ + 1) % classes_.size();
  }
  return std::nullopt;
}

std::size_t ClassfulPriorityQueue::shed_at_or_below(Priority p) {
  std::size_t shed = 0;
  for (std::size_t i = static_cast<std::size_t>(p); i < 4; ++i) {
    for (const auto& pkt : bands_[i]) {
      bytes_ -= pkt.size_bytes;
      drop(pkt, DropReason::kShed);
    }
    shed += bands_[i].size();
    bands_[i].clear();
  }
  return shed;
}

}  // namespace arnet::net
