#include "arnet/net/link.hpp"

#include <algorithm>
#include <utility>

namespace arnet::net {

Link::Link(sim::Simulator& sim, sim::Rng rng, Config cfg)
    : sim_(sim), rng_(std::move(rng)), cfg_(std::move(cfg)) {
  if (cfg_.queue) {
    queue_ = std::move(cfg_.queue);
  } else {
    queue_ = std::make_unique<DropTailQueue>(cfg_.queue_packets);
  }
}

void Link::attach_obs(obs::MetricsRegistry& reg, std::string entity) {
  metrics_ = &reg;
  obs_entity_ = std::move(entity);
  install_queue_hook();
}

void Link::set_drop_hook(DropHook hook) {
  drop_hook_ = std::move(hook);
  install_queue_hook();
}

void Link::install_queue_hook() {
  // Route queue discards through notify_drop so both the observer hook and
  // the "link.drop.queue" counter see them.
  queue_->set_drop_hook(
      (drop_hook_ || metrics_)
          ? [this](const Packet& p) { notify_drop(p, DropReason::kQueue); }
          : Queue::DropHook{});
}

void Link::send(Packet p) {
  if (!up_) {
    ++lost_packets_;
    notify_drop(p, DropReason::kLinkDown);
    return;
  }
  if (!queue_->enqueue(std::move(p), sim_.now())) return;  // tail drop
  start_transmission_if_idle();
}

void Link::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (!up) {
    // Flush the queue and invalidate in-flight serializations/deliveries.
    while (auto p = queue_->dequeue(sim_.now())) {
      ++lost_packets_;
      notify_drop(*p, DropReason::kLinkDown);
    }
    transmitting_ = false;
    ++epoch_;
  } else {
    start_transmission_if_idle();
  }
}

void Link::start_transmission_if_idle() {
  if (transmitting_ || !up_) return;
  auto p = queue_->dequeue(sim_.now());
  if (!p) return;
  transmitting_ = true;
  queueing_delay_ms_.add(sim::to_milliseconds(sim_.now() - p->enqueued_at));
  sim::Time tx = sim::transmission_delay(p->size_bytes, cfg_.rate_bps);
  if (metrics_) {
    metrics_->histogram("queue.sojourn_ms", obs_entity_)
        .record(sim::to_milliseconds(sim_.now() - p->enqueued_at));
    busy_time_ += tx;
    sim::Time elapsed = sim_.now() + tx;  // utilization through this frame
    if (elapsed > 0) {
      metrics_->gauge("link.utilization", obs_entity_)
          .set(sim::to_seconds(busy_time_) / sim::to_seconds(elapsed));
    }
  }
  std::uint64_t epoch = epoch_;
  sim_.after(tx, [this, epoch, pkt = std::move(*p)]() mutable {
    if (epoch != epoch_) {  // link went down mid-serialization
      notify_drop(pkt, DropReason::kLinkDown);
      return;
    }
    transmitting_ = false;
    on_transmit_complete(std::move(pkt));
    start_transmission_if_idle();
  });
}

void Link::on_transmit_complete(Packet p) {
  if (cfg_.loss && cfg_.loss->lose(rng_, p)) {
    ++lost_packets_;
    notify_drop(p, DropReason::kRandomLoss);
    return;
  }
  std::uint64_t epoch = epoch_;
  // A point-to-point pipe is FIFO: if the (mutable) propagation delay
  // shrank since the previous packet, do not let this one overtake it.
  sim::Time arrival = std::max(sim_.now() + cfg_.delay, last_arrival_);
  last_arrival_ = arrival;
  sim_.at(arrival, [this, epoch, pkt = std::move(p)]() mutable {
    if (epoch != epoch_) {  // link went down while propagating
      notify_drop(pkt, DropReason::kLinkDown);
      return;
    }
    delivered_bytes_ += pkt.size_bytes;
    ++delivered_packets_;
    if (metrics_) {
      metrics_->counter("link.delivered_bytes", obs_entity_).add(pkt.size_bytes);
      metrics_->counter("link.delivered_packets", obs_entity_).add();
    }
    if (sink_) sink_(std::move(pkt));
  });
}

}  // namespace arnet::net
