#include "arnet/net/link.hpp"

#include <algorithm>
#include <utility>

#include "arnet/trace/profiler.hpp"

namespace arnet::net {
namespace {

/// Snapshot a packet at serialization start for pcap synthesis.
trace::WireRecord make_wire(const Packet& p, sim::Time now) {
  trace::WireRecord w;
  w.time = now;
  w.uid = p.uid;
  w.src = p.src;
  w.dst = p.dst;
  w.src_port = p.src_port;
  w.dst_port = p.dst_port;
  w.size_bytes = p.size_bytes;
  w.tclass = static_cast<std::uint8_t>(p.tclass);
  w.priority = static_cast<std::uint8_t>(p.priority);
  w.app = to_string(p.app);
  w.trace_id = p.trace.trace_id;
  if (const auto* artp = std::get_if<ArtpHeader>(&p.header)) {
    w.proto = 2;
    w.artp_kind = static_cast<std::uint8_t>(artp->kind);
    w.msg_id = artp->msg_id;
    w.chunk = artp->chunk;
    w.chunk_count = artp->chunk_count;
    w.frame_id = artp->frame_id;
  } else if (const auto* tcp = std::get_if<TcpHeader>(&p.header)) {
    w.proto = 1;
    w.seq = tcp->seq;
    w.ack = tcp->ack;
  }
  return w;
}

}  // namespace

Link::Link(sim::Simulator& sim, sim::Rng rng, Config cfg)
    : sim_(sim), rng_(std::move(rng)), cfg_(std::move(cfg)) {
  if (cfg_.queue) {
    queue_ = std::move(cfg_.queue);
  } else {
    queue_ = std::make_unique<DropTailQueue>(cfg_.queue_packets);
  }
}

void Link::attach_obs(obs::MetricsRegistry& reg, std::string entity) {
  metrics_ = &reg;
  obs_entity_ = std::move(entity);
  install_queue_hook();
}

void Link::attach_trace(trace::Tracer& tracer, std::string name) {
  tracer_ = &tracer;
  trace_entity_ = tracer.register_entity(std::move(name));
  install_queue_hook();
}

void Link::set_drop_hook(DropHook hook) {
  drop_hook_ = std::move(hook);
  install_queue_hook();
}

void Link::install_queue_hook() {
  // Route queue discards through notify_drop so the observer hook, the
  // "link.drop.<reason>" counter and the trace ring all see them with the
  // discipline's own reason (tail drop vs. AQM vs. shedding).
  queue_->set_drop_hook(
      (drop_hook_ || metrics_ || tracer_ != nullptr)
          ? [this](const Packet& p, DropReason r) { notify_drop(p, r); }
          : Queue::DropHook{});
}

void Link::send(Packet p) {
  if (!up_) {
    ++lost_packets_;
    notify_drop(p, DropReason::kLinkDown);
    return;
  }
  record_trace(trace::EventKind::kEnqueue, p);
  if (!queue_->enqueue(std::move(p), sim_.now())) return;  // tail drop
  start_transmission_if_idle();
}

void Link::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (!up) {
    // Flush the queue and invalidate in-flight serializations/deliveries.
    while (auto p = queue_->dequeue(sim_.now())) {
      ++lost_packets_;
      notify_drop(*p, DropReason::kLinkDown);
    }
    transmitting_ = false;
    ++epoch_;
  } else {
    start_transmission_if_idle();
  }
}

void Link::start_transmission_if_idle() {
  if (transmitting_ || !up_) return;
  trace::ProfScope prof(tracer_, "Link::tx");
  auto p = queue_->dequeue(sim_.now());
  if (!p) return;
  transmitting_ = true;
  record_trace(trace::EventKind::kTxStart, *p);
  if (tracer_ != nullptr) tracer_->record_wire(make_wire(*p, sim_.now()));
  queueing_delay_ms_.add(sim::to_milliseconds(sim_.now() - p->enqueued_at));
  sim::Time tx = sim::transmission_delay(p->size_bytes, cfg_.rate_bps);
  if (metrics_) {
    metrics_->histogram("queue.sojourn_ms", obs_entity_)
        .record(sim::to_milliseconds(sim_.now() - p->enqueued_at));
    busy_time_ += tx;
    sim::Time elapsed = sim_.now() + tx;  // utilization through this frame
    if (elapsed > 0) {
      metrics_->gauge("link.utilization", obs_entity_)
          .set(sim::to_seconds(busy_time_) / sim::to_seconds(elapsed));
    }
  }
  std::uint64_t epoch = epoch_;
  sim_.after(tx, [this, epoch, pkt = std::move(*p)]() mutable {
    if (epoch != epoch_) {  // link went down mid-serialization
      notify_drop(pkt, DropReason::kLinkDown);
      return;
    }
    transmitting_ = false;
    on_transmit_complete(std::move(pkt));
    start_transmission_if_idle();
  });
}

void Link::on_transmit_complete(Packet p) {
  if (cfg_.loss && cfg_.loss->lose(rng_, p)) {
    ++lost_packets_;
    notify_drop(p, DropReason::kRandomLoss);
    return;
  }
  std::uint64_t epoch = epoch_;
  // A point-to-point pipe is FIFO: if the (mutable) propagation delay
  // shrank since the previous packet, do not let this one overtake it.
  sim::Time arrival = std::max(sim_.now() + cfg_.delay, last_arrival_);
  last_arrival_ = arrival;
  sim_.at(arrival, [this, epoch, pkt = std::move(p)]() mutable {
    if (epoch != epoch_) {  // link went down while propagating
      notify_drop(pkt, DropReason::kLinkDown);
      return;
    }
    delivered_bytes_ += pkt.size_bytes;
    ++delivered_packets_;
    record_trace(trace::EventKind::kRx, pkt);
    if (metrics_) {
      metrics_->counter("link.delivered_bytes", obs_entity_).add(pkt.size_bytes);
      metrics_->counter("link.delivered_packets", obs_entity_).add();
    }
    if (sink_) sink_(std::move(pkt));
  });
}

}  // namespace arnet::net
