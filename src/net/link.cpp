#include "arnet/net/link.hpp"

#include <algorithm>
#include <utility>

#include "arnet/trace/profiler.hpp"

namespace arnet::net {
namespace {

/// Snapshot a packet at serialization start for pcap synthesis.
trace::WireRecord make_wire(const Packet& p, sim::Time now) {
  trace::WireRecord w;
  w.time = now;
  w.uid = p.uid;
  w.src = p.src;
  w.dst = p.dst;
  w.src_port = p.src_port;
  w.dst_port = p.dst_port;
  w.size_bytes = p.size_bytes;
  w.tclass = static_cast<std::uint8_t>(p.tclass);
  w.priority = static_cast<std::uint8_t>(p.priority);
  w.app = to_string(p.app);
  w.trace_id = p.trace.trace_id;
  if (const auto* artp = std::get_if<ArtpHeader>(&p.header)) {
    w.proto = 2;
    w.artp_kind = static_cast<std::uint8_t>(artp->kind);
    w.msg_id = artp->msg_id;
    w.chunk = artp->chunk;
    w.chunk_count = artp->chunk_count;
    w.frame_id = artp->frame_id;
  } else if (const auto* tcp = std::get_if<TcpHeader>(&p.header)) {
    w.proto = 1;
    w.seq = tcp->seq;
    w.ack = tcp->ack;
  }
  return w;
}

}  // namespace

Link::Link(sim::Simulator& sim, sim::Rng rng, Config cfg)
    : sim_(sim), rng_(std::move(rng)), cfg_(std::move(cfg)) {
  if (cfg_.queue) {
    queue_ = std::move(cfg_.queue);
  } else {
    queue_ = std::make_unique<DropTailQueue>(cfg_.queue_packets);
  }
  if (cfg_.tx_path == TxPath::kArenaBatched && !cfg_.loss && queue_->fifo_time_invariant()) {
    // Packets claimed by an active transmit plan but not yet at their logical
    // serialization start must still occupy queue capacity, or batching would
    // admit packets the un-batched link tail-drops.
    queue_->set_occupancy_supplement([this] { return phantom_count(); });
  }
}

void Link::attach_obs(obs::MetricsRegistry& reg, std::string entity) {
  metrics_ = &reg;
  obs_entity_ = std::move(entity);
  install_queue_hook();
}

void Link::attach_trace(trace::Tracer& tracer, std::string name) {
  tracer_ = &tracer;
  trace_entity_ = tracer.register_entity(std::move(name));
  install_queue_hook();
}

void Link::set_drop_hook(DropHook hook) {
  drop_hook_ = std::move(hook);
  install_queue_hook();
}

void Link::install_queue_hook() {
  // Route queue discards through notify_drop so the observer hook, the
  // "link.drop.<reason>" counter and the trace ring all see them with the
  // discipline's own reason (tail drop vs. AQM vs. shedding).
  queue_->set_drop_hook(
      (drop_hook_ || metrics_ || tracer_ != nullptr)
          ? [this](const Packet& p, DropReason r) { notify_drop(p, r); }
          : Queue::DropHook{});
}

void Link::send(Packet p) {
  if (!up_) {
    ++lost_packets_;
    notify_drop(p, DropReason::kLinkDown);
    return;
  }
  record_trace(trace::EventKind::kEnqueue, p);
  if (!queue_->enqueue(std::move(p), sim_.now())) return;  // tail drop
  start_transmission_if_idle();
}

void Link::set_rate(double bps) {
  if (bps == cfg_.rate_bps) return;
  cfg_.rate_bps = bps;
  // The new rate applies from the next serialization: packets a transmit
  // plan timed with the old rate but has not started go back to the queue.
  unwind_future_batch_entries();
}

void Link::set_delay(sim::Time d) {
  if (d == cfg_.delay) return;
  cfg_.delay = d;
  if (batch_.empty()) return;
  unwind_future_batch_entries();
  // The un-batched link samples the delay when serialization *ends*, so the
  // currently serializing packet gets the new value; already-propagating
  // packets keep their old arrival times.
  BatchEntry& e = batch_.back();
  const sim::Time now = sim_.now();
  if (e.tx_end > now) {
    const sim::Time prev = batch_.size() >= 2 ? batch_[batch_.size() - 2].arrival
                                              : batch_prev_arrival_;
    const sim::Time arrival = std::max(e.tx_end + cfg_.delay, prev);
    if (arrival != e.arrival) {
      sim_.cancel(e.arrival_ev);
      e.arrival = arrival;
      const std::uint64_t epoch = epoch_;
      e.arrival_ev = sim_.at(arrival, [this, epoch, slot = e.slot] {
        if (epoch != epoch_) {  // link went down while propagating
          Packet pkt = arena_.take(slot);
          notify_drop(pkt, DropReason::kLinkDown);
          return;
        }
        record_batched_tx(slot);
        deliver_from_arena(slot);
      });
      last_arrival_ = arrival;
    }
  }
}

void Link::set_up(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (!up) {
    const sim::Time now = sim_.now();
    if (!batch_.empty()) {
      sim_.cancel(batch_done_);
      batch_done_ = {};
      // Entries that reached their logical serialization start behave like
      // legacy in-flight packets; the rest would still be queued un-batched,
      // so they are dropped ahead of the residual queue (FIFO flush order).
      std::size_t started = 0;
      while (started < batch_.size() && batch_[started].start <= now) ++started;
      for (std::size_t i = 0; i < started; ++i) {
        BatchEntry& e = batch_[i];
        record_tx_stats(e);  // it began serializing; legacy accounted it then
        record_batched_tx(e.slot);  // ... and traced its tx then, too
        if (e.tx_end > now) {
          // Mid-serialization: legacy reports this drop when the (stale
          // epoch) tx-complete event fires at tx_end, not counted as lost.
          sim_.cancel(e.arrival_ev);
          sim_.at(e.tx_end, [this, slot = e.slot] {
            Packet pkt = arena_.take(slot);
            notify_drop(pkt, DropReason::kLinkDown);
          });
        }
        // else: propagating — its arrival event stays scheduled and the
        // stale-epoch check there reports the drop, exactly like legacy.
      }
      for (std::size_t i = started; i < batch_.size(); ++i) {
        sim_.cancel(batch_[i].arrival_ev);
        ++lost_packets_;
        Packet pkt = arena_.take(batch_[i].slot);
        notify_drop(pkt, DropReason::kLinkDown);
      }
      batch_.clear();
    }
    // Flush the queue and invalidate in-flight serializations/deliveries.
    while (auto p = queue_->dequeue(now)) {
      ++lost_packets_;
      notify_drop(*p, DropReason::kLinkDown);
    }
    transmitting_ = false;
    ++epoch_;
  } else {
    start_transmission_if_idle();
  }
}

void Link::start_transmission_if_idle() {
  if (transmitting_ || !up_) return;
  switch (cfg_.tx_path) {
    case TxPath::kLegacy:
      start_transmission_legacy();
      return;
    case TxPath::kArena:
      start_transmission_arena();
      return;
    case TxPath::kArenaBatched:
      if (batch_eligible()) {
        start_batch();
      } else {
        start_transmission_arena();
      }
      return;
  }
}

bool Link::batch_eligible() const {
  // Batching must not change behavior: it needs a clock-free FIFO discipline
  // (AQM drop decisions depend on dequeue time) and no loss model (the RNG
  // draw happens per tx-complete event, and batching reorders event
  // structure). A tracer is fine: tx events are emitted at delivery (or at
  // link-down for entries that had started) with the logical serialization
  // start captured at plan time (record_batched_tx), so trace timestamps
  // match the un-batched path.
  return cfg_.tx_path == TxPath::kArenaBatched && !cfg_.loss &&
         queue_->fifo_time_invariant();
}

// --------------------------------------------------------------- legacy path

void Link::start_transmission_legacy() {
  trace::ProfScope prof(tracer_, "Link::tx");
  auto p = queue_->dequeue(sim_.now());
  if (!p) return;
  transmitting_ = true;
  record_trace(trace::EventKind::kTxStart, *p);
  if (tracer_ != nullptr && tracer_->wire_capture()) {
    tracer_->record_wire(make_wire(*p, sim_.now()));
  }
  queueing_delay_ms_.add(sim::to_milliseconds(sim_.now() - p->enqueued_at));
  sim::Time tx = sim::transmission_delay(p->size_bytes, cfg_.rate_bps);
  if (metrics_) {
    metrics_->histogram("queue.sojourn_ms", obs_entity_)
        .record(sim::to_milliseconds(sim_.now() - p->enqueued_at));
    busy_time_ += tx;
    sim::Time elapsed = sim_.now() + tx;  // utilization through this frame
    if (elapsed > 0) {
      metrics_->gauge("link.utilization", obs_entity_)
          .set(sim::to_seconds(busy_time_) / sim::to_seconds(elapsed));
    }
  }
  std::uint64_t epoch = epoch_;
  sim_.after(tx, [this, epoch, pkt = std::move(*p)]() mutable {
    if (epoch != epoch_) {  // link went down mid-serialization
      notify_drop(pkt, DropReason::kLinkDown);
      return;
    }
    transmitting_ = false;
    on_transmit_complete(std::move(pkt));
    start_transmission_if_idle();
  });
}

void Link::on_transmit_complete(Packet p) {
  if (cfg_.loss && cfg_.loss->lose(rng_, p)) {
    ++lost_packets_;
    notify_drop(p, DropReason::kRandomLoss);
    return;
  }
  std::uint64_t epoch = epoch_;
  // A point-to-point pipe is FIFO: if the (mutable) propagation delay
  // shrank since the previous packet, do not let this one overtake it.
  sim::Time arrival = std::max(sim_.now() + cfg_.delay, last_arrival_);
  last_arrival_ = arrival;
  sim_.at(arrival, [this, epoch, pkt = std::move(p)]() mutable {
    if (epoch != epoch_) {  // link went down while propagating
      notify_drop(pkt, DropReason::kLinkDown);
      return;
    }
    delivered_bytes_ += pkt.size_bytes;
    ++delivered_packets_;
    record_trace(trace::EventKind::kRx, pkt);
    if (metrics_) {
      metrics_->counter("link.delivered_bytes", obs_entity_).add(pkt.size_bytes);
      metrics_->counter("link.delivered_packets", obs_entity_).add();
    }
    if (sink_) sink_(std::move(pkt));
  });
}

// ---------------------------------------------------------------- arena path
//
// Event structure, times, and ordering identical to the legacy path (the
// simulator-level fingerprint is byte-identical); the packet is parked in
// the slab arena so each closure captures {this, epoch, slot} — 20 bytes,
// inside the simulator's inline callback buffer, zero allocations.

void Link::start_transmission_arena() {
  trace::ProfScope prof(tracer_, "Link::tx");
  auto p = queue_->dequeue(sim_.now());
  if (!p) return;
  transmitting_ = true;
  record_trace(trace::EventKind::kTxStart, *p);
  if (tracer_ != nullptr && tracer_->wire_capture()) {
    tracer_->record_wire(make_wire(*p, sim_.now()));
  }
  queueing_delay_ms_.add(sim::to_milliseconds(sim_.now() - p->enqueued_at));
  sim::Time tx = sim::transmission_delay(p->size_bytes, cfg_.rate_bps);
  if (metrics_) {
    metrics_->histogram("queue.sojourn_ms", obs_entity_)
        .record(sim::to_milliseconds(sim_.now() - p->enqueued_at));
    busy_time_ += tx;
    sim::Time elapsed = sim_.now() + tx;  // utilization through this frame
    if (elapsed > 0) {
      metrics_->gauge("link.utilization", obs_entity_)
          .set(sim::to_seconds(busy_time_) / sim::to_seconds(elapsed));
    }
  }
  const std::uint64_t epoch = epoch_;
  const std::uint32_t slot = arena_.acquire(std::move(*p));
  sim_.after(tx, [this, epoch, slot] {
    if (epoch != epoch_) {  // link went down mid-serialization
      Packet pkt = arena_.take(slot);
      notify_drop(pkt, DropReason::kLinkDown);
      return;
    }
    transmitting_ = false;
    tx_complete_from_arena(slot);
    start_transmission_if_idle();
  });
}

void Link::tx_complete_from_arena(std::uint32_t slot) {
  if (cfg_.loss && cfg_.loss->lose(rng_, arena_.at(slot))) {
    ++lost_packets_;
    Packet pkt = arena_.take(slot);
    notify_drop(pkt, DropReason::kRandomLoss);
    return;
  }
  const std::uint64_t epoch = epoch_;
  // A point-to-point pipe is FIFO: if the (mutable) propagation delay
  // shrank since the previous packet, do not let this one overtake it.
  const sim::Time arrival = std::max(sim_.now() + cfg_.delay, last_arrival_);
  last_arrival_ = arrival;
  sim_.at(arrival, [this, epoch, slot] {
    if (epoch != epoch_) {  // link went down while propagating
      Packet pkt = arena_.take(slot);
      notify_drop(pkt, DropReason::kLinkDown);
      return;
    }
    deliver_from_arena(slot);
  });
}

void Link::deliver_from_arena(std::uint32_t slot) {
  Packet pkt = arena_.take(slot);
  delivered_bytes_ += pkt.size_bytes;
  ++delivered_packets_;
  record_trace(trace::EventKind::kRx, pkt);
  if (metrics_) {
    metrics_->counter("link.delivered_bytes", obs_entity_).add(pkt.size_bytes);
    metrics_->counter("link.delivered_packets", obs_entity_).add();
  }
  if (sink_) sink_(std::move(pkt));
}

// -------------------------------------------------------------- batched path
//
// Dequeue up to kBatchMax packets at once and precompute their back-to-back
// serialization timeline: the i-th packet's logical window is exactly when
// the un-batched link would have served it, so arrival times, drop decisions
// and metric values are unchanged. Cost drops from 2 events per packet to
// one arrival event per packet plus one batch-complete event.

void Link::start_batch() {
  const sim::Time now = sim_.now();
  batch_.clear();
  batch_prev_arrival_ = last_arrival_;
  sim::Time t = now;
  sim::Time prev_arrival = last_arrival_;
  const std::uint64_t epoch = epoch_;
  while (batch_.size() < kBatchMax) {
    auto p = queue_->dequeue(now);
    if (!p) break;
    BatchEntry e;
    e.stats_recorded = false;
    e.enqueued_at = p->enqueued_at;
    e.start = t;
    e.tx_end = t + sim::transmission_delay(p->size_bytes, cfg_.rate_bps);
    e.arrival = std::max(e.tx_end + cfg_.delay, prev_arrival);
    e.slot = arena_.acquire(std::move(*p));
    if (e.slot >= batch_tx_start_.size()) batch_tx_start_.resize(e.slot + 1, -1);
    batch_tx_start_[e.slot] = e.start;
    e.arrival_ev = sim_.at(e.arrival, [this, epoch, slot = e.slot] {
      if (epoch != epoch_) {  // link went down while propagating
        Packet pkt = arena_.take(slot);
        notify_drop(pkt, DropReason::kLinkDown);
        return;
      }
      record_batched_tx(slot);
      deliver_from_arena(slot);
    });
    prev_arrival = e.arrival;
    t = e.tx_end;
    batch_.push_back(e);
  }
  if (batch_.empty()) return;
  transmitting_ = true;
  last_arrival_ = prev_arrival;
  // The first packet starts serializing now, exactly like un-batched; the
  // others are accounted when their logical start has passed (batch end or
  // unwind) so an unwound packet is never double-counted.
  record_tx_stats(batch_.front());
  batch_done_ = sim_.at(batch_.back().tx_end, [this, epoch] {
    if (epoch != epoch_) return;  // defensive; set_up(false) cancels this
    finish_batch();
  });
}

void Link::finish_batch() {
  for (auto& e : batch_) record_tx_stats(e);
  batch_.clear();
  batch_done_ = {};
  transmitting_ = false;
  start_transmission_if_idle();
}

void Link::record_batched_tx(std::uint32_t slot) {
  if (tracer_ == nullptr || slot >= batch_tx_start_.size()) return;
  const sim::Time start = batch_tx_start_[slot];
  if (start < 0) return;  // planned before the tracer attached
  batch_tx_start_[slot] = -1;  // each entry serializes (and records) once
  const Packet& p = arena_.at(slot);
  trace::TraceEvent e;
  e.time = start;
  e.uid = p.uid;
  e.size = p.size_bytes;
  e.trace_id = p.trace.trace_id;
  e.span_id = p.trace.span_id;
  e.kind = trace::EventKind::kTxStart;
  tracer_->record(trace_entity_, e);
  if (tracer_->wire_capture()) tracer_->record_wire(make_wire(p, start));
}

void Link::record_tx_stats(BatchEntry& e) {
  if (e.stats_recorded) return;
  e.stats_recorded = true;
  const double sojourn_ms = sim::to_milliseconds(e.start - e.enqueued_at);
  queueing_delay_ms_.add(sojourn_ms);
  if (metrics_) {
    metrics_->histogram("queue.sojourn_ms", obs_entity_).record(sojourn_ms);
    busy_time_ += e.tx_end - e.start;
    if (e.tx_end > 0) {  // utilization through this frame
      metrics_->gauge("link.utilization", obs_entity_)
          .set(sim::to_seconds(busy_time_) / sim::to_seconds(e.tx_end));
    }
  }
}

void Link::unwind_future_batch_entries() {
  if (batch_.empty()) return;
  const sim::Time now = sim_.now();
  // Walk from the back so requeue_front restores original FIFO order.
  while (!batch_.empty() && batch_.back().start > now) {
    BatchEntry& e = batch_.back();
    sim_.cancel(e.arrival_ev);
    queue_->requeue_front(arena_.take(e.slot));
    batch_.pop_back();
  }
  // The entry whose window contains `now` is never unwound, so the batch
  // cannot empty here.
  last_arrival_ = batch_.back().arrival;
  sim_.cancel(batch_done_);
  const std::uint64_t epoch = epoch_;
  batch_done_ = sim_.at(batch_.back().tx_end, [this, epoch] {
    if (epoch != epoch_) return;
    finish_batch();
  });
}

std::size_t Link::phantom_count() const {
  const sim::Time now = sim_.now();
  std::size_t n = 0;
  for (const auto& e : batch_) {
    if (e.start > now) ++n;
  }
  return n;
}

}  // namespace arnet::net
