#include "arnet/net/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "arnet/check/assert.hpp"

namespace arnet::net {

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kQueue: return "queue";
    case DropReason::kAqm: return "aqm";
    case DropReason::kShed: return "shed";
    case DropReason::kLinkDown: return "link-down";
    case DropReason::kRandomLoss: return "random-loss";
    case DropReason::kUnroutable: return "unroutable";
  }
  return "unknown";
}

const char* to_string(AppData a) {
  switch (a) {
    case AppData::kConnectionMetadata: return "connection-metadata";
    case AppData::kSensorData: return "sensor-data";
    case AppData::kVideoReferenceFrame: return "video-reference-frame";
    case AppData::kVideoInterFrame: return "video-inter-frame";
    case AppData::kFeaturePayload: return "feature-payload";
    case AppData::kComputeResult: return "compute-result";
    case AppData::kDatabaseObject: return "database-object";
    case AppData::kGeneric: return "generic";
  }
  return "unknown";
}

void Node::send(Packet p) {
  p.src = id_;
  net_.send(std::move(p));
}

void Node::on_packet(Packet&& p) {
  ++received_packets_;
  if (net_.tap_) net_.tap_(p, id_, p.dst == id_);
  if (p.dst == id_) {
    // Reaching the destination node is final delivery for conservation
    // accounting, whether or not a handler consumes the payload.
    net_.notify_deliver(p, id_);
    if (auto it = handlers_.find(p.dst_port); it != handlers_.end()) {
      it->second(std::move(p));
    }
    return;
  }
  if (forwarding_delay_ > 0) {
    // Park the packet in the network arena so the closure stays inside the
    // simulator's inline callback buffer (a moved Packet would force a heap
    // allocation per forwarded packet).
    const std::uint32_t slot = net_.arena_.acquire(std::move(p));
    net_.sim_.after(forwarding_delay_,
                    [this, slot] { net_.forward(id_, net_.arena_.take(slot)); });
  } else {
    net_.forward(id_, std::move(p));
  }
}

NodeId Network::add_node(std::string name) {
  auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(*this, id, std::move(name)));
  routes_fresh_ = false;
  return id;
}

Link& Network::add_link(NodeId a, NodeId b, Link::Config cfg) {
  if (cfg.name.empty()) cfg.name = node(a).name() + "->" + node(b).name();
  auto link = std::make_unique<Link>(sim_, rng_.fork(cfg.name), std::move(cfg));
  Link* raw = link.get();
  raw->set_sink([this, b](Packet&& p) { node(b).on_packet(std::move(p)); });
  raw->set_drop_hook([this](const Packet& p, DropReason r) { notify_drop(p, r); });
  links_.push_back(std::move(link));
  adjacency_[a][b] = raw;
  routes_fresh_ = false;
  return *raw;
}

std::pair<Link*, Link*> Network::connect(NodeId a, NodeId b, Link::Config ab, Link::Config ba) {
  Link& l1 = add_link(a, b, std::move(ab));
  Link& l2 = add_link(b, a, std::move(ba));
  return {&l1, &l2};
}

std::pair<Link*, Link*> Network::connect(NodeId a, NodeId b, double rate_bps, sim::Time delay,
                                         std::size_t queue_packets) {
  Link::Config cfg;
  cfg.rate_bps = rate_bps;
  cfg.delay = delay;
  cfg.queue_packets = queue_packets;
  Link::Config cfg2;
  cfg2.rate_bps = rate_bps;
  cfg2.delay = delay;
  cfg2.queue_packets = queue_packets;
  return connect(a, b, std::move(cfg), std::move(cfg2));
}

void Network::compute_routes() {
  const std::size_t n = nodes_.size();
  next_hop_.assign(n, std::vector<NodeId>(n, kNoNode));
  // Dijkstra from every source; weights = propagation + nominal serialization.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<double> dist(n, std::numeric_limits<double>::infinity());
    std::vector<NodeId> first(n, kNoNode);  // first hop from src
    using Item = std::pair<double, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[src] = 0.0;
    pq.emplace(0.0, src);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      auto it = adjacency_.find(u);
      if (it == adjacency_.end()) continue;
      for (auto& [v, link] : it->second) {
        double w = sim::to_seconds(link->delay()) + 1500.0 * 8.0 / link->rate_bps();
        if (dist[u] + w < dist[v]) {
          dist[v] = dist[u] + w;
          first[v] = (u == src) ? v : first[u];
          pq.emplace(dist[v], v);
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) next_hop_[src][dst] = first[dst];
  }
  routes_fresh_ = true;
}

void Network::ensure_routes() {
  if (!routes_fresh_) compute_routes();
}

void Network::send(Packet p) {
  if (p.uid == 0) p.uid = assign_uid();
  if (p.created_at == 0) p.created_at = sim_.now();
  notify_inject(p);
  deliver_or_forward(p.src, std::move(p));
}

void Network::send_via(Link& first_hop, Packet p) {
  if (p.uid == 0) p.uid = assign_uid();
  if (p.created_at == 0) p.created_at = sim_.now();
  notify_inject(p);
  first_hop.send(std::move(p));
}

void Network::add_observer(NetworkObserver* obs) {
  ARNET_CHECK(obs != nullptr, "null NetworkObserver");
  observers_.push_back(obs);
}

void Network::remove_observer(NetworkObserver* obs) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), obs), observers_.end());
}

void Network::notify_inject(const Packet& p) {
  for (NetworkObserver* o : observers_) o->on_inject(sim_.now(), p);
}

void Network::notify_deliver(const Packet& p, NodeId at) {
  for (NetworkObserver* o : observers_) o->on_deliver(sim_.now(), p, at);
}

void Network::notify_drop(const Packet& p, DropReason r) {
  for (NetworkObserver* o : observers_) o->on_drop(sim_.now(), p, r);
}

Link* Network::link_between(NodeId a, NodeId b) {
  auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return nullptr;
  auto jt = it->second.find(b);
  return jt == it->second.end() ? nullptr : jt->second;
}

void Network::deliver_or_forward(NodeId at, Packet&& p) {
  if (p.dst == at) {
    // Local delivery without touching any link; decouple via the event loop
    // to avoid handler reentrancy. The packet is parked in the arena so the
    // closure fits the simulator's inline callback buffer.
    const std::uint32_t slot = arena_.acquire(std::move(p));
    sim_.after(0, [this, at, slot] { node(at).on_packet(arena_.take(slot)); });
    return;
  }
  forward(at, std::move(p));
}

void Network::forward(NodeId at, Packet&& p) {
  ensure_routes();
  NodeId nh = next_hop_.at(at).at(p.dst);
  if (nh == kNoNode) {  // unroutable: drop
    notify_drop(p, DropReason::kUnroutable);
    return;
  }
  Link* link = adjacency_.at(at).at(nh);
  link->send(std::move(p));
}

}  // namespace arnet::net
