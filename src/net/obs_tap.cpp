#include "arnet/net/obs_tap.hpp"

#include <utility>

#include "arnet/sim/time.hpp"

namespace arnet::net {

ObsTap::ObsTap(Network& net, obs::MetricsRegistry& reg, std::string entity)
    : net_(net), reg_(reg), entity_(std::move(entity)) {
  net_.add_observer(this);
}

ObsTap::~ObsTap() { net_.remove_observer(this); }

std::string ObsTap::flow_entity(FlowId flow) {
  return "flow:" + std::to_string(flow);
}

void ObsTap::on_inject(sim::Time /*now*/, const Packet& /*p*/) {
  reg_.counter("net.injected_packets", entity_).add();
}

void ObsTap::on_deliver(sim::Time now, const Packet& p, NodeId /*at*/) {
  reg_.counter("net.delivered_packets", entity_).add();
  reg_.counter("net.delivered_bytes", entity_).add(p.size_bytes);
  std::string fe = flow_entity(p.flow);
  reg_.counter("flow.delivered_packets", fe).add();
  reg_.counter("flow.delivered_bytes", fe).add(p.size_bytes);
  reg_.histogram("flow.delay_ms", fe).record(sim::to_milliseconds(now - p.created_at));
}

void ObsTap::on_drop(sim::Time /*now*/, const Packet& /*p*/, DropReason reason) {
  reg_.counter(std::string("net.drop.") + to_string(reason), entity_).add();
}

}  // namespace arnet::net
