#pragma once

#include <memory>

#include "arnet/net/packet.hpp"
#include "arnet/sim/rng.hpp"

namespace arnet::net {

/// Wire-loss process applied as a packet leaves a link.
class LossModel {
 public:
  virtual ~LossModel() = default;
  virtual bool lose(sim::Rng& rng, const Packet& p) = 0;
};

/// Independent per-packet loss with fixed probability.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p) : p_(p) {}
  bool lose(sim::Rng& rng, const Packet&) override { return rng.bernoulli(p_); }

 private:
  double p_;
};

/// Two-state Gilbert-Elliott bursty loss: Good/Bad states with per-state
/// loss probabilities; models wireless fading bursts.
class GilbertElliottLoss final : public LossModel {
 public:
  struct Config {
    double p_good_to_bad = 0.01;
    double p_bad_to_good = 0.3;
    double loss_in_good = 0.0;
    double loss_in_bad = 0.5;
  };

  explicit GilbertElliottLoss(Config cfg) : cfg_(cfg) {}

  bool lose(sim::Rng& rng, const Packet&) override {
    if (good_) {
      if (rng.bernoulli(cfg_.p_good_to_bad)) good_ = false;
    } else {
      if (rng.bernoulli(cfg_.p_bad_to_good)) good_ = true;
    }
    return rng.bernoulli(good_ ? cfg_.loss_in_good : cfg_.loss_in_bad);
  }

  bool in_good_state() const { return good_; }

 private:
  Config cfg_;
  bool good_ = true;
};

}  // namespace arnet::net
