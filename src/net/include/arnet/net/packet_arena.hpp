#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "arnet/net/packet.hpp"

namespace arnet::net {

/// Slab arena for in-flight packets.
///
/// A Packet is a ~200-byte value (its transport header variant can hold ARTP
/// feedback vectors), so a simulator callback that captures one by move is
/// forced onto the heap — one allocation and one ~200-byte copy per
/// serialization and per propagation hop, on the hottest path the simulator
/// has. Parking the packet in an arena slot and capturing the 4-byte slot
/// index keeps every link/network closure inside SmallFn's inline buffer.
///
/// Slots are recycled LIFO, so steady-state traffic reuses a handful of warm
/// slots (and the header vectors' capacity inside them) instead of growing.
/// The deque gives slots stable addresses: acquire() never moves a parked
/// packet, so references from at() stay valid across growth.
class PacketArena {
 public:
  std::uint32_t acquire(Packet&& p) {
    if (!free_.empty()) {
      const std::uint32_t slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(p);
      return slot;
    }
    slots_.push_back(std::move(p));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  Packet& at(std::uint32_t slot) { return slots_[slot]; }
  const Packet& at(std::uint32_t slot) const { return slots_[slot]; }

  /// Move the packet out and free its slot.
  Packet take(std::uint32_t slot) {
    Packet p = std::move(slots_[slot]);
    free_.push_back(slot);
    return p;
  }

  /// Free a slot without needing its contents (the parked packet is
  /// destroyed in place when the slot is next reused).
  void release(std::uint32_t slot) { free_.push_back(slot); }

  std::size_t in_flight() const { return slots_.size() - free_.size(); }
  std::size_t capacity() const { return slots_.size(); }

 private:
  std::deque<Packet> slots_;
  std::vector<std::uint32_t> free_;  // recycled LIFO
};

}  // namespace arnet::net
