#pragma once

#include "arnet/net/packet.hpp"
#include "arnet/sim/time.hpp"

namespace arnet::net {

/// Packet life-cycle observer. The network reports the three terminal
/// accounting events for every packet it carries:
///   on_inject  — the packet entered the network (uid assigned),
///   on_deliver — it arrived at its destination node (consumed),
///   on_drop    — it died in transit (queue/loss/link-down/unroutable).
/// Every injected packet sees exactly one deliver or drop, or is still in
/// flight (queued, serializing, or propagating) when the simulation stops.
/// arnet::check::ConservationAuditor audits exactly this contract; keep
/// implementations cheap — these run per packet.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_inject(sim::Time /*now*/, const Packet& /*p*/) {}
  virtual void on_deliver(sim::Time /*now*/, const Packet& /*p*/, NodeId /*at*/) {}
  virtual void on_drop(sim::Time /*now*/, const Packet& /*p*/, DropReason /*reason*/) {}
};

}  // namespace arnet::net
