#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "arnet/net/packet.hpp"
#include "arnet/sim/time.hpp"

namespace arnet::net {

/// Buffering discipline attached to a link's sender side (paper §VI-H:
/// the uplink queue policy strongly shapes MAR latency).
class Queue {
 public:
  /// Invoked with every packet the discipline discards, at the moment it is
  /// discarded, along with *why* (tail drop vs. AQM control law vs. priority
  /// shedding). Installed by Link for drop accounting.
  using DropHook = std::function<void(const Packet&, DropReason)>;

  virtual ~Queue() = default;

  /// Returns false if the packet was dropped on arrival.
  virtual bool enqueue(Packet p, sim::Time now) = 0;

  /// Next packet to transmit, or nullopt if empty. AQM disciplines may drop
  /// internally during dequeue.
  virtual std::optional<Packet> dequeue(sim::Time now) = 0;

  virtual std::size_t packets() const = 0;
  virtual std::int64_t bytes() const = 0;

  /// Virtual so composite disciplines (FQ-CoDel) can propagate the hook to
  /// their inner queues.
  virtual void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  /// True when dequeue order and drop decisions depend only on the sequence
  /// of enqueues/dequeues, never on the clock. Such a discipline can be
  /// drained ahead of time by a batching serializer (Link) without changing
  /// which packet goes next or which gets dropped. AQM disciplines (CoDel)
  /// are time-dependent and must return false.
  virtual bool fifo_time_invariant() const { return false; }

  /// Extra occupancy charged against the capacity check on enqueue, beyond
  /// the packets the discipline physically holds. A batching Link registers
  /// a callback counting packets it has committed to future serialization
  /// slots but not yet started transmitting — in un-batched operation those
  /// would still be sitting in the queue, so they must still count, or
  /// batching would admit packets the un-batched link drops. Only meaningful
  /// for disciplines with fifo_time_invariant() == true; others ignore it.
  using OccupancySupplement = std::function<std::size_t()>;
  virtual void set_occupancy_supplement(OccupancySupplement s) { (void)s; }

  /// Put a packet back at the *head* of the queue (it will be the next
  /// dequeue), preserving its original enqueued_at. Used by a batching Link
  /// to unwind not-yet-started transmissions when the link's rate or delay
  /// changes mid-batch. Bypasses the capacity check: the packet was already
  /// admitted once (and counted via the occupancy supplement since). Only
  /// disciplines with fifo_time_invariant() == true support it.
  virtual void requeue_front(Packet&& p) { (void)p; }

  bool empty() const { return packets() == 0; }
  std::int64_t drops() const { return drops_; }

 protected:
  /// Count a drop without notifying (composite queues whose inner discipline
  /// already reported the packet).
  void count_drop() { ++drops_; }

  /// Count a drop and report the dying packet (and cause) to the hook.
  void drop(const Packet& p, DropReason reason) {
    ++drops_;
    if (drop_hook_) drop_hook_(p, reason);
  }

 private:
  std::int64_t drops_ = 0;
  DropHook drop_hook_;
};

/// FIFO with a packet-count capacity. Oversized instances model bufferbloat
/// (the "around 1000 packets" kernel uplink buffer of §VI-H).
class DropTailQueue final : public Queue {
 public:
  explicit DropTailQueue(std::size_t capacity_packets)
      : capacity_(capacity_packets) {}

  bool enqueue(Packet p, sim::Time now) override;
  std::optional<Packet> dequeue(sim::Time now) override;
  std::size_t packets() const override { return q_.size(); }
  std::int64_t bytes() const override { return bytes_; }

  bool fifo_time_invariant() const override { return true; }
  void set_occupancy_supplement(OccupancySupplement s) override {
    supplement_ = std::move(s);
  }
  void requeue_front(Packet&& p) override {
    bytes_ += p.size_bytes;
    q_.push_front(std::move(p));
  }

 private:
  std::size_t capacity_;
  std::int64_t bytes_ = 0;
  std::deque<Packet> q_;
  OccupancySupplement supplement_;
};

/// CoDel AQM (RFC 8289): drops to keep the standing sojourn time near
/// `target`, entering a drop state whose rate increases as sqrt(count).
class CoDelQueue final : public Queue {
 public:
  struct Config {
    sim::Time target = sim::milliseconds(5);
    sim::Time interval = sim::milliseconds(100);
    std::size_t capacity_packets = 10000;
    /// Link MTU for the "standing queue of at least two full packets" exit
    /// condition (RFC 8289 §4.3). Must track the link's real MTU: with small
    /// frames (features, sensor batches, D2D) a hardcoded Ethernet MTU would
    /// exempt a permanently standing queue from AQM entirely.
    std::int32_t mtu_bytes = 1514;
  };

  CoDelQueue();
  explicit CoDelQueue(Config cfg) : cfg_(cfg) {}

  bool enqueue(Packet p, sim::Time now) override;
  std::optional<Packet> dequeue(sim::Time now) override;
  std::size_t packets() const override { return q_.size(); }
  std::int64_t bytes() const override { return bytes_; }

 private:
  std::optional<Packet> pop_front();
  bool should_drop(const Packet& p, sim::Time now);
  /// True when a drop spell ended less than one interval ago. drop_next_ == 0
  /// means the queue has never dropped, which must not count as "recent".
  bool recently_dropping(sim::Time now) const {
    return drop_next_ > 0 && now - drop_next_ < cfg_.interval;
  }

  Config cfg_;
  std::int64_t bytes_ = 0;
  std::deque<Packet> q_;
  // CoDel state machine.
  bool dropping_ = false;
  std::uint32_t count_ = 0;
  sim::Time first_above_time_ = 0;
  sim::Time drop_next_ = 0;
};

/// FQ-CoDel (RFC 8290, simplified): flows hashed into DRR buckets, each
/// running CoDel; new flows get priority credits.
class FqCoDelQueue final : public Queue {
 public:
  struct Config {
    std::size_t bucket_count = 64;
    std::int64_t quantum_bytes = 1514;
    CoDelQueue::Config codel;
  };

  FqCoDelQueue();
  explicit FqCoDelQueue(Config cfg);

  bool enqueue(Packet p, sim::Time now) override;
  std::optional<Packet> dequeue(sim::Time now) override;
  std::size_t packets() const override { return packets_; }
  std::int64_t bytes() const override { return bytes_; }

  /// Inner CoDel buckets drop both on enqueue and inside dequeue; they get
  /// the hook so AQM drops are reported exactly once.
  void set_drop_hook(DropHook hook) override;

 private:
  struct Bucket {
    std::unique_ptr<CoDelQueue> codel;
    std::int64_t deficit = 0;
    bool queued = false;  // present in new_/old_ lists
  };

  std::size_t bucket_of(const Packet& p) const;

  Config cfg_;
  std::vector<Bucket> buckets_;
  std::deque<std::size_t> new_flows_;
  std::deque<std::size_t> old_flows_;
  std::size_t packets_ = 0;
  std::int64_t bytes_ = 0;
};

/// Strict-priority classful queue: four bands indexed by Packet::priority.
/// This is the ARTP sender-side discipline (paper §VI-A/B).
class ClassfulPriorityQueue final : public Queue {
 public:
  explicit ClassfulPriorityQueue(std::size_t capacity_packets_per_band = 4096)
      : capacity_(capacity_packets_per_band) {}

  bool enqueue(Packet p, sim::Time now) override;
  std::optional<Packet> dequeue(sim::Time now) override;
  std::size_t packets() const override;
  std::int64_t bytes() const override { return bytes_; }

  std::size_t packets_in_band(Priority p) const {
    return bands_[static_cast<std::size_t>(p)].size();
  }

  /// Drop everything queued at priority `p` or lower-importance (numerically
  /// greater). Returns packets shed. Used for graceful degradation.
  std::size_t shed_at_or_below(Priority p);

 private:
  std::size_t capacity_;
  std::int64_t bytes_ = 0;
  std::deque<Packet> bands_[4];
};

/// Deficit-round-robin weighted fair queue over traffic classes, the
/// mechanism behind RSVP-style per-flow guarantees (paper §V-A1: "the
/// possibility to provide QoS guarantees on specific AR applications could
/// be a commercial argument for mobile broadband operators"). A class with
/// weight w is guaranteed w / sum(w) of the link whenever it is backlogged,
/// regardless of how hard other classes push.
class WeightedFairQueue final : public Queue {
 public:
  struct ClassConfig {
    double weight = 1.0;
    std::size_t capacity_packets = 500;
  };

  /// `classify` maps a packet to a class index [0, classes.size()).
  using Classifier = std::function<std::size_t(const Packet&)>;

  WeightedFairQueue(std::vector<ClassConfig> classes, Classifier classify);

  bool enqueue(Packet p, sim::Time now) override;
  std::optional<Packet> dequeue(sim::Time now) override;
  std::size_t packets() const override { return packets_; }
  std::int64_t bytes() const override { return bytes_; }

  std::int64_t class_dequeued_bytes(std::size_t cls) const {
    return classes_[cls].dequeued_bytes;
  }

  /// Classifier for the common case: one reserved class for a given flow id
  /// (class 0), everything else best-effort (class 1).
  static Classifier reserve_flow(FlowId flow);

 private:
  struct Class {
    ClassConfig cfg;
    std::deque<Packet> q;
    double deficit = 0.0;
    bool in_visit = false;
    std::int64_t dequeued_bytes = 0;
  };

  std::vector<Class> classes_;
  Classifier classify_;
  std::size_t rr_ = 0;
  std::size_t packets_ = 0;
  std::int64_t bytes_ = 0;
  double quantum_base_ = 1514.0;
};

}  // namespace arnet::net
