#pragma once

#include <functional>
#include <memory>
#include <string>

#include "arnet/net/loss.hpp"
#include "arnet/net/observer.hpp"
#include "arnet/net/packet.hpp"
#include "arnet/net/queue.hpp"
#include "arnet/obs/registry.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/trace/trace.hpp"

namespace arnet::net {

/// Unidirectional point-to-point link: output queue -> serializer at
/// `rate_bps` -> propagation pipe of `delay` -> optional loss -> sink.
///
/// `set_rate` may be called at any time (wireless models modulate capacity);
/// the new rate applies from the next packet serialization.
class Link {
 public:
  struct Config {
    double rate_bps = 10e6;
    sim::Time delay = sim::milliseconds(1);
    std::size_t queue_packets = 100;          ///< used if `queue` is null
    std::unique_ptr<Queue> queue;             ///< custom discipline
    std::unique_ptr<LossModel> loss;          ///< null = lossless
    std::string name;
  };

  using Sink = std::function<void(Packet&&)>;

  /// Invoked for every packet the link kills, wherever it dies: queue
  /// discipline, loss model, or link-down flush/invalidation. Installed by
  /// Network to feed its NetworkObservers.
  using DropHook = std::function<void(const Packet&, DropReason)>;

  Link(sim::Simulator& sim, sim::Rng rng, Config cfg);

  /// Hand a packet to the link; drops according to the queue discipline.
  void send(Packet p);

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_drop_hook(DropHook hook);
  void set_rate(double bps) { cfg_.rate_bps = bps; }
  void set_delay(sim::Time d) { cfg_.delay = d; }

  /// Administratively disable the link (e.g. out of coverage); queued and
  /// in-flight packets are lost.
  void set_up(bool up);
  bool is_up() const { return up_; }

  double rate_bps() const { return cfg_.rate_bps; }
  sim::Time delay() const { return cfg_.delay; }
  const std::string& name() const { return cfg_.name; }

  const Queue& queue() const { return *queue_; }
  std::int64_t delivered_bytes() const { return delivered_bytes_; }
  std::int64_t delivered_packets() const { return delivered_packets_; }
  std::int64_t lost_packets() const { return lost_packets_; }
  sim::Summary& queueing_delay_ms() { return queueing_delay_ms_; }

  /// Publish this link's behavior into `reg` under `entity` (e.g.
  /// "link:uplink"): per-packet queue sojourn ("queue.sojourn_ms"
  /// histogram), drops by reason ("link.drop.<reason>" counters), delivered
  /// bytes/packets counters, and a running "link.utilization" gauge
  /// (serialization busy-time / elapsed time). The registry must outlive
  /// the link.
  void attach_obs(obs::MetricsRegistry& reg, std::string entity);

  /// Register this link as a trace entity under `name` and record the packet
  /// life cycle into its ring: kEnqueue on send, kTxStart when serialization
  /// begins (also a WireRecord for pcap export), kRx on delivery, kDrop with
  /// the reason string wherever the packet dies. The tracer must outlive the
  /// link. Purely observational — no simulator events, no Rng draws.
  void attach_trace(trace::Tracer& tracer, std::string name);

 private:
  void start_transmission_if_idle();
  void on_transmit_complete(Packet p);
  void install_queue_hook();
  void record_trace(trace::EventKind kind, const Packet& p, const char* reason = nullptr) {
    if (tracer_ == nullptr) return;
    trace::TraceEvent e;
    e.time = sim_.now();
    e.uid = p.uid;
    e.size = p.size_bytes;
    e.trace_id = p.trace.trace_id;
    e.span_id = p.trace.span_id;
    e.kind = kind;
    e.reason = reason;
    tracer_->record(trace_entity_, e);
  }
  void notify_drop(const Packet& p, DropReason r) {
    if (metrics_) metrics_->counter(std::string("link.drop.") + to_string(r), obs_entity_).add();
    record_trace(trace::EventKind::kDrop, p, to_string(r));
    if (drop_hook_) drop_hook_(p, r);
  }

  sim::Simulator& sim_;
  sim::Rng rng_;
  Config cfg_;
  std::unique_ptr<Queue> queue_;
  Sink sink_;
  DropHook drop_hook_;
  bool transmitting_ = false;
  bool up_ = true;
  std::uint64_t epoch_ = 0;  ///< bumped on set_up(false) to void in-flight packets
  sim::Time last_arrival_ = 0;  ///< FIFO guard when delay shrinks mid-flight

  std::int64_t delivered_bytes_ = 0;
  std::int64_t delivered_packets_ = 0;
  std::int64_t lost_packets_ = 0;
  sim::Summary queueing_delay_ms_;

  // Observability (attach_obs): null when not attached.
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string obs_entity_;
  sim::Time busy_time_ = 0;  ///< cumulative serialization time

  // Causal tracing (attach_trace): null when not attached.
  trace::Tracer* tracer_ = nullptr;
  trace::EntityId trace_entity_ = trace::kNoEntity;
};

}  // namespace arnet::net
