#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arnet/net/loss.hpp"
#include "arnet/net/observer.hpp"
#include "arnet/net/packet.hpp"
#include "arnet/net/packet_arena.hpp"
#include "arnet/net/queue.hpp"
#include "arnet/obs/registry.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/trace/trace.hpp"

namespace arnet::net {

/// Unidirectional point-to-point link: output queue -> serializer at
/// `rate_bps` -> propagation pipe of `delay` -> optional loss -> sink.
///
/// `set_rate` may be called at any time (wireless models modulate capacity);
/// the new rate applies from the next packet serialization.
class Link {
 public:
  /// Hot-path strategy for the serializer/propagation pipeline. All three
  /// are behaviorally equivalent; they differ in how many simulator events
  /// and heap allocations a packet costs.
  enum class TxPath : std::uint8_t {
    /// Two events per packet (tx-complete + arrival), each capturing the
    /// ~200-byte Packet by move (heap-allocated closure). The reference
    /// implementation the fingerprint tests compare against.
    kLegacy,
    /// Same event structure, times, and ordering as kLegacy — sim-level
    /// fingerprints are identical — but in-flight packets are parked in a
    /// slab arena and closures capture a 4-byte slot, staying inside the
    /// simulator's inline callback buffer (no allocation per event).
    kArena,
    /// kArena plus transmit batching: up to kBatchMax queued packets are
    /// dequeued together and their serialization timeline precomputed
    /// (back-to-back), costing one batch-complete event plus one arrival
    /// event per packet instead of two events per packet. Packet-level
    /// behavior (delivery times/order, drops, metrics totals) is unchanged;
    /// the simulator-level event stream necessarily differs (fewer events).
    /// Batching self-disables per transmission — falling back to kArena —
    /// whenever it could change behavior: time-dependent queue disciplines
    /// (AQM), a configured loss model (per-packet RNG draw order), or an
    /// attached tracer (records real event times).
    kArenaBatched,
  };

  struct Config {
    double rate_bps = 10e6;
    sim::Time delay = sim::milliseconds(1);
    std::size_t queue_packets = 100;          ///< used if `queue` is null
    std::unique_ptr<Queue> queue;             ///< custom discipline
    std::unique_ptr<LossModel> loss;          ///< null = lossless
    std::string name;
    TxPath tx_path = TxPath::kArenaBatched;
  };

  using Sink = std::function<void(Packet&&)>;

  /// Invoked for every packet the link kills, wherever it dies: queue
  /// discipline, loss model, or link-down flush/invalidation. Installed by
  /// Network to feed its NetworkObservers.
  using DropHook = std::function<void(const Packet&, DropReason)>;

  Link(sim::Simulator& sim, sim::Rng rng, Config cfg);

  /// Hand a packet to the link; drops according to the queue discipline.
  void send(Packet p);

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_drop_hook(DropHook hook);

  /// Change the serialization rate. Applies from the next packet
  /// serialization; a batched transmit plan is unwound (not-yet-started
  /// packets return to the queue head) so they re-serialize at the new rate,
  /// exactly as un-batched operation would.
  void set_rate(double bps);

  /// Change the propagation delay. In-flight (already serialized) packets
  /// keep their old arrival times; the currently serializing packet and all
  /// queued ones use the new delay — same semantics as the un-batched path,
  /// where delay is sampled at serialization end.
  void set_delay(sim::Time d);

  /// Administratively disable the link (e.g. out of coverage); queued and
  /// in-flight packets are lost.
  void set_up(bool up);
  bool is_up() const { return up_; }

  double rate_bps() const { return cfg_.rate_bps; }
  sim::Time delay() const { return cfg_.delay; }
  const std::string& name() const { return cfg_.name; }

  const Queue& queue() const { return *queue_; }
  std::int64_t delivered_bytes() const { return delivered_bytes_; }
  std::int64_t delivered_packets() const { return delivered_packets_; }
  std::int64_t lost_packets() const { return lost_packets_; }
  sim::Summary& queueing_delay_ms() { return queueing_delay_ms_; }

  /// Publish this link's behavior into `reg` under `entity` (e.g.
  /// "link:uplink"): per-packet queue sojourn ("queue.sojourn_ms"
  /// histogram), drops by reason ("link.drop.<reason>" counters), delivered
  /// bytes/packets counters, and a running "link.utilization" gauge
  /// (serialization busy-time / elapsed time). The registry must outlive
  /// the link.
  void attach_obs(obs::MetricsRegistry& reg, std::string entity);

  /// Register this link as a trace entity under `name` and record the packet
  /// life cycle into its ring: kEnqueue on send, kTxStart when serialization
  /// begins (also a WireRecord for pcap export), kRx on delivery, kDrop with
  /// the reason string wherever the packet dies. The tracer must outlive the
  /// link. Purely observational — no simulator events, no Rng draws — but it
  /// disables transmit batching (trace events carry real times).
  void attach_trace(trace::Tracer& tracer, std::string name);

 private:
  /// One packet of a precomputed batch timeline. `start`/`tx_end` are the
  /// logical serialization window (identical to when the un-batched link
  /// would have served it back-to-back); `arrival` its delivery time.
  struct BatchEntry {
    std::uint32_t slot;        ///< arena slot holding the packet
    bool stats_recorded;       ///< sojourn/busy-time already accounted
    sim::Time enqueued_at;     ///< for deferred sojourn accounting
    sim::Time start;
    sim::Time tx_end;
    sim::Time arrival;
    sim::EventHandle arrival_ev;
  };
  static constexpr std::size_t kBatchMax = 8;

  void start_transmission_if_idle();
  bool batch_eligible() const;
  void start_transmission_legacy();
  void start_transmission_arena();
  void start_batch();
  /// Loss roll + arrival scheduling for the kArena path (same timing as the
  /// legacy on_transmit_complete).
  void tx_complete_from_arena(std::uint32_t slot);
  /// Final delivery of an arena-parked packet (epoch already checked).
  void deliver_from_arena(std::uint32_t slot);
  void on_transmit_complete(Packet p);
  /// Batch-complete event: account deferred stats, retire the plan, pump.
  void finish_batch();
  /// Record sojourn/busy-time/utilization for one batch entry using its
  /// logical serialization window (values identical to the un-batched path).
  void record_tx_stats(BatchEntry& e);
  /// Return not-yet-started batch entries (start > now) to the queue head
  /// and re-time the batch-complete event; called when rate or delay changes
  /// invalidate the precomputed timeline. No-op outside a batch.
  void unwind_future_batch_entries();
  /// Packets this link has committed to future serialization slots; counted
  /// against the queue capacity so batching admits exactly what un-batched
  /// operation would.
  std::size_t phantom_count() const;
  void install_queue_hook();
  /// Batched-path trace record: emits kTxStart (and the wire record) for a
  /// batch entry using the logical serialization start captured at plan
  /// time, called from the entry's arrival event while the packet is still
  /// in the arena. Keeps batched trace timestamps identical to un-batched.
  void record_batched_tx(std::uint32_t slot);
  void record_trace(trace::EventKind kind, const Packet& p, const char* reason = nullptr) {
    if (tracer_ == nullptr) return;
    trace::TraceEvent e;
    e.time = sim_.now();
    e.uid = p.uid;
    e.size = p.size_bytes;
    e.trace_id = p.trace.trace_id;
    e.span_id = p.trace.span_id;
    e.kind = kind;
    e.reason = reason;
    tracer_->record(trace_entity_, e);
  }
  void notify_drop(const Packet& p, DropReason r) {
    if (metrics_) metrics_->counter(std::string("link.drop.") + to_string(r), obs_entity_).add();
    record_trace(trace::EventKind::kDrop, p, to_string(r));
    if (drop_hook_) drop_hook_(p, r);
  }

  sim::Simulator& sim_;
  sim::Rng rng_;
  Config cfg_;
  std::unique_ptr<Queue> queue_;
  Sink sink_;
  DropHook drop_hook_;
  bool transmitting_ = false;
  bool up_ = true;
  std::uint64_t epoch_ = 0;  ///< bumped on set_up(false) to void in-flight packets
  sim::Time last_arrival_ = 0;  ///< FIFO guard when delay shrinks mid-flight

  PacketArena arena_;                ///< in-flight packets (kArena/kArenaBatched)
  std::vector<BatchEntry> batch_;    ///< active transmit plan (kArenaBatched)
  /// Logical serialization start per arena slot, written at batch-plan time
  /// when a tracer is attached (the arrival lambda stays at 20 captured
  /// bytes — inside the simulator's inline callback buffer).
  std::vector<sim::Time> batch_tx_start_;
  sim::EventHandle batch_done_;      ///< batch-complete event
  sim::Time batch_prev_arrival_ = 0; ///< last_arrival_ snapshot at batch start

  std::int64_t delivered_bytes_ = 0;
  std::int64_t delivered_packets_ = 0;
  std::int64_t lost_packets_ = 0;
  sim::Summary queueing_delay_ms_;

  // Observability (attach_obs): null when not attached.
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string obs_entity_;
  sim::Time busy_time_ = 0;  ///< cumulative serialization time

  // Causal tracing (attach_trace): null when not attached.
  trace::Tracer* tracer_ = nullptr;
  trace::EntityId trace_entity_ = trace::kNoEntity;
};

}  // namespace arnet::net
