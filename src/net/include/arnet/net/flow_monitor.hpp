#pragma once

#include <map>

#include "arnet/net/network.hpp"
#include "arnet/sim/stats.hpp"

namespace arnet::net {

/// Per-flow accounting over a whole Network (ns-3 FlowMonitor-style):
/// delivered packets/bytes, end-to-end delays, hop counts. Installs itself
/// as the network's packet tap; keep one instance per network.
class FlowMonitor {
 public:
  struct FlowStats {
    std::int64_t delivered_packets = 0;
    std::int64_t delivered_bytes = 0;
    std::int64_t transit_hops = 0;  ///< router traversals (not deliveries)
    sim::Samples delay_ms;          ///< created_at -> destination arrival
    sim::Time first_delivery = 0;
    sim::Time last_delivery = 0;

    double mean_hops() const {
      return delivered_packets
                 ? 1.0 + static_cast<double>(transit_hops) / delivered_packets
                 : 0.0;
    }
    double throughput_mbps() const {
      sim::Time span = last_delivery - first_delivery;
      return span > 0 ? delivered_bytes * 8.0 / sim::to_seconds(span) / 1e6 : 0.0;
    }
  };

  explicit FlowMonitor(Network& net) : net_(net) {
    net_.set_packet_tap([this](const Packet& p, NodeId at, bool is_dst) {
      on_packet(p, at, is_dst);
    });
  }

  FlowMonitor(const FlowMonitor&) = delete;
  FlowMonitor& operator=(const FlowMonitor&) = delete;

  ~FlowMonitor() { net_.set_packet_tap(nullptr); }

  const FlowStats& flow(FlowId id) { return flows_[id]; }
  const std::map<FlowId, FlowStats>& flows() const { return flows_; }
  std::size_t flow_count() const { return flows_.size(); }

  std::int64_t total_delivered_bytes() const {
    std::int64_t t = 0;
    for (const auto& [id, f] : flows_) t += f.delivered_bytes;
    return t;
  }

 private:
  void on_packet(const Packet& p, NodeId /*at*/, bool is_dst) {
    FlowStats& f = flows_[p.flow];
    if (is_dst) {
      ++f.delivered_packets;
      f.delivered_bytes += p.size_bytes;
      f.delay_ms.add(sim::to_milliseconds(net_.sim().now() - p.created_at));
      if (f.first_delivery == 0) f.first_delivery = net_.sim().now();
      f.last_delivery = net_.sim().now();
    } else {
      ++f.transit_hops;
    }
  }

  Network& net_;
  std::map<FlowId, FlowStats> flows_;
};

}  // namespace arnet::net
