#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "arnet/sim/time.hpp"
#include "arnet/trace/trace.hpp"

namespace arnet::net {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;
using Port = std::uint16_t;

inline constexpr NodeId kNoNode = 0xFFFFFFFF;

/// ARTP traffic classes (paper §VI-A).
enum class TrafficClass : std::uint8_t {
  kFullBestEffort,          ///< latency first; never recovered
  kBestEffortLossRecovery,  ///< latency-sensitive but protected (FEC)
  kCriticalData,            ///< reliable in-order delivery
};

/// ARTP traffic priorities (paper §VI-A): how to degrade under congestion.
enum class Priority : std::uint8_t {
  kHighest = 0,       ///< never discarded nor delayed
  kMediumNoDrop = 1,  ///< may be delayed, never discarded
  kMediumNoDelay = 2, ///< may be discarded, never delayed
  kLowest = 3,        ///< discarded first under congestion
};

/// Application payload types used by the MAR traffic model (paper Fig. 4).
enum class AppData : std::uint8_t {
  kConnectionMetadata,
  kSensorData,
  kVideoReferenceFrame,
  kVideoInterFrame,
  kFeaturePayload,  ///< extracted features (CloudRidAR-style offloading)
  kComputeResult,
  kDatabaseObject,
  kGeneric,
};
inline constexpr std::size_t kAppDataCount = 8;

const char* to_string(AppData a);

/// Why a packet left the network without reaching its destination. Lives
/// next to Packet (not observer.hpp) because queues report it through their
/// drop hooks before any observer is involved.
enum class DropReason : std::uint8_t {
  kQueue,       ///< tail/limit drop: the queue was full on enqueue
  kAqm,         ///< AQM control law (CoDel) dropped it to signal congestion
  kShed,        ///< priority shedding evicted it to protect higher classes
  kLinkDown,    ///< link administratively down (queued or in flight)
  kRandomLoss,  ///< link loss model fired
  kUnroutable,  ///< no route to destination
};

const char* to_string(DropReason r);

/// Fixed-capacity SACK block list: up to 3 [begin, end) byte ranges
/// (RFC 2018 allows 3-4 next to timestamps). Inline storage on purpose —
/// Packet is a value type that Network::send and Link::on_transmit_complete
/// copy on every hop, and a std::vector here meant one heap allocation per
/// copied ACK on the simulator's hottest path.
class SackBlocks {
 public:
  using Block = std::pair<std::uint64_t, std::uint64_t>;
  static constexpr std::size_t kMaxBlocks = 3;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == kMaxBlocks; }
  const Block& operator[](std::size_t i) const { return blocks_[i]; }
  const Block* begin() const { return blocks_.data(); }
  const Block* end() const { return blocks_.data() + count_; }

  /// Append a block; excess blocks past the RFC cap are silently dropped
  /// (callers report the freshest ranges first).
  void emplace_back(std::uint64_t begin_seq, std::uint64_t end_seq) {
    if (count_ < kMaxBlocks) blocks_[count_++] = {begin_seq, end_seq};
  }
  void clear() { count_ = 0; }

 private:
  std::array<Block, kMaxBlocks> blocks_{};
  std::uint8_t count_ = 0;
};

/// TCP segment header (simplified: no window scaling).
struct TcpHeader {
  std::uint64_t seq = 0;       ///< first payload byte offset
  std::uint64_t ack = 0;       ///< next expected byte
  bool is_ack = false;         ///< carries acknowledgment
  bool is_syn = false;
  bool is_fin = false;
  /// SACK blocks received above `ack`.
  SackBlocks sack;
};

/// Retransmission request for one missing critical chunk.
struct ArtpNack {
  std::uint64_t msg_id = 0;
  std::uint32_t chunk = 0;
};

/// ARTP message header.
struct ArtpHeader {
  enum class Kind : std::uint8_t { kData, kParity, kFeedback };
  Kind kind = Kind::kData;
  std::uint64_t msg_id = 0;      ///< per-flow message sequence
  std::uint32_t chunk = 0;       ///< chunk index (or parity index for kParity)
  std::uint32_t chunk_count = 1; ///< data chunks in the message
  std::uint32_t frame_id = 0;    ///< application frame/sample id
  /// Contiguous sequence over critical-class messages (1-based; 0 for other
  /// classes). Lets the receiver detect critical messages lost in full.
  std::uint32_t critical_seq = 0;
  std::uint8_t path_id = 0;      ///< multipath subflow id
  std::uint64_t path_seq = 0;    ///< per-path wire sequence (loss detection)
  sim::Time sent_at = 0;         ///< wire timestamp (delay-gradient CC)
  sim::Time msg_submitted_at = 0;  ///< when the app handed over the message
  // Feedback fields (valid when kind == kFeedback):
  std::uint64_t fb_highest_seen = 0;
  sim::Time fb_owd = 0;          ///< latest one-way delay sample on path_id
  sim::Time fb_min_owd = 0;      ///< lowest one-way delay seen on path_id
  double fb_loss_fraction = 0.0; ///< losses in the last feedback epoch
  double fb_recv_rate_bps = 0.0; ///< goodput observed by the receiver
  std::vector<ArtpNack> fb_nacks;  ///< missing chunks of partially seen messages
  std::vector<std::uint32_t> fb_missing_critical;  ///< critical_seq gaps (full loss)
};

/// Raw datagram header for plain UDP-style traffic.
struct UdpHeader {
  std::uint64_t seq = 0;
};

/// QUIC-lite fragment header: one paced UDP datagram of an application frame
/// (arvr-sim's VrHeader — frameId/pktId/pktCount/sendTs — plus the frame
/// submission timestamp so the receiver can do deadline accounting).
struct QuicHeader {
  std::uint32_t frame_id = 0;
  std::uint32_t frag = 0;        ///< fragment index within the frame
  std::uint32_t frag_count = 1;  ///< fragments in the frame
  std::uint64_t wire_seq = 0;    ///< per-connection send sequence
  sim::Time sent_at = 0;             ///< wire timestamp of this fragment
  sim::Time frame_submitted_at = 0;  ///< when the app handed over the frame
};

using TransportHeader =
    std::variant<std::monostate, TcpHeader, ArtpHeader, UdpHeader, QuicHeader>;

/// A simulated packet. Value type: links and queues move/copy it freely.
struct Packet {
  std::uint64_t uid = 0;  ///< globally unique (assigned by Network)
  FlowId flow = 0;
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  Port src_port = 0;
  Port dst_port = 0;
  std::int32_t size_bytes = 0;  ///< wire size including headers

  TrafficClass tclass = TrafficClass::kFullBestEffort;
  Priority priority = Priority::kLowest;
  AppData app = AppData::kGeneric;

  sim::Time created_at = 0;
  sim::Time enqueued_at = 0;  ///< set by queues for sojourn-time AQM

  /// Causal trace identity (zero = untraced). Stamped by the transport when
  /// the packet is built and carried through every hop, so link/queue/radio
  /// events join the per-frame timeline.
  trace::TraceContext trace;

  TransportHeader header;
};

}  // namespace arnet::net
