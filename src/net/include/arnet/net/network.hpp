#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arnet/net/link.hpp"
#include "arnet/net/observer.hpp"
#include "arnet/net/packet.hpp"
#include "arnet/net/packet_arena.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"

namespace arnet::net {

class Network;

/// Handler invoked when a packet reaches its destination node and port.
using PacketHandler = std::function<void(Packet&&)>;

/// A host or router. Endpoints bind transport handlers to ports; routers
/// forward by the network's next-hop tables. `forwarding_delay` models
/// middlebox processing (firewalls etc., paper §IV-B's university scenario).
class Node {
 public:
  Node(Network& net, NodeId id, std::string name)
      : net_(net), id_(id), name_(std::move(name)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  void bind(Port port, PacketHandler handler) { handlers_[port] = std::move(handler); }
  void unbind(Port port) { handlers_.erase(port); }

  void set_forwarding_delay(sim::Time d) { forwarding_delay_ = d; }
  sim::Time forwarding_delay() const { return forwarding_delay_; }

  /// Send from this node toward p.dst via computed routes.
  void send(Packet p);

  /// Called by the network layer on packet arrival at this node.
  void on_packet(Packet&& p);

  std::int64_t received_packets() const { return received_packets_; }

 private:
  Network& net_;
  NodeId id_;
  std::string name_;
  sim::Time forwarding_delay_ = 0;
  // std::map, not unordered: port->handler lookup is tiny, and ordered
  // iteration keeps any future per-node sweeps deterministic (lint policy).
  std::map<Port, PacketHandler> handlers_;
  std::int64_t received_packets_ = 0;
};

/// Topology container: nodes, directed links, shortest-path routing.
class Network {
 public:
  Network(sim::Simulator& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

  NodeId add_node(std::string name);
  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size(); }

  /// Create a directed link a->b. Routing is recomputed lazily.
  Link& add_link(NodeId a, NodeId b, Link::Config cfg);

  /// Create a duplex pipe: returns {a->b, b->a}.
  std::pair<Link*, Link*> connect(NodeId a, NodeId b, Link::Config ab, Link::Config ba);

  /// Symmetric convenience: same rate/delay both ways.
  std::pair<Link*, Link*> connect(NodeId a, NodeId b, double rate_bps, sim::Time delay,
                                  std::size_t queue_packets = 100);

  /// Dijkstra over (propagation + 1500B serialization) per hop.
  void compute_routes();

  /// Inject a packet at node p.src; routes hop by hop to p.dst.
  void send(Packet p);

  /// Inject on an explicit first-hop link (client-side path/policy routing
  /// for multipath); later hops follow computed routes.
  void send_via(Link& first_hop, Packet p);

  Link* link_between(NodeId a, NodeId b);

  sim::Simulator& sim() { return sim_; }
  std::uint64_t assign_uid() { return next_uid_++; }
  sim::Rng fork_rng(std::string_view label) { return rng_.fork(label); }

  /// Claim a contiguous block of ephemeral ports. Per-network, not
  /// process-global: a scenario rebuilt from the same seed binds identical
  /// ports, so its traces fingerprint identically (determinism harness).
  ///
  /// Released blocks are recycled LIFO per block size before the bump
  /// allocator advances, so long-lived networks that churn sessions (the
  /// fleet serving layer admits and retires thousands) never exhaust the
  /// 16-bit port space. LIFO reuse is a deterministic function of the
  /// allocate/release sequence, which is itself seed-determined.
  Port allocate_port_block(Port count) {
    auto it = free_port_blocks_.find(count);
    if (it != free_port_blocks_.end() && !it->second.empty()) {
      Port base = it->second.back();
      it->second.pop_back();
      return base;
    }
    Port base = next_port_;
    next_port_ = static_cast<Port>(next_port_ + count);
    return base;
  }

  /// Return a block claimed by `allocate_port_block` for reuse. Callers must
  /// have unbound every handler in the block first (transport destructors
  /// do), or a later claimant would receive a port with a stale handler.
  void release_port_block(Port base, Port count) {
    free_port_blocks_[count].push_back(base);
  }

  /// Observation tap invoked for every packet arriving at any node (both
  /// transit and final delivery). Used by FlowMonitor; keep it cheap.
  using PacketTap = std::function<void(const Packet&, NodeId at, bool is_destination)>;
  void set_packet_tap(PacketTap tap) { tap_ = std::move(tap); }

  /// Register every link added so far as a trace entity ("link:<name>").
  /// Call after the topology is built; links added later are not traced.
  void attach_trace(trace::Tracer& tracer) {
    for (auto& link : links_) link->attach_trace(tracer, "link:" + link->name());
  }

  /// Life-cycle observers (inject/deliver/drop); see NetworkObserver. Several
  /// may be registered (auditor + trace recorder); notification order is
  /// registration order. Observers must outlive the network or remove
  /// themselves first.
  void add_observer(NetworkObserver* obs);
  void remove_observer(NetworkObserver* obs);

 private:
  friend class Node;
  void forward(NodeId at, Packet&& p);
  void deliver_or_forward(NodeId at, Packet&& p);
  void ensure_routes();
  void notify_inject(const Packet& p);
  void notify_deliver(const Packet& p, NodeId at);
  void notify_drop(const Packet& p, DropReason r);

  sim::Simulator& sim_;
  sim::Rng rng_;
  /// Packets in the event-loop gap between hops (local delivery decoupling,
  /// forwarding delay). Slots are LIFO-recycled; closures capture the 4-byte
  /// slot instead of the ~200-byte Packet.
  PacketArena arena_;
  std::uint64_t next_uid_ = 1;
  Port next_port_ = 5000;  ///< ephemeral range start
  // count -> LIFO stack of released block bases (deterministic reuse order).
  std::map<Port, std::vector<Port>> free_port_blocks_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  // adjacency[a][b] -> first link a->b
  std::map<NodeId, std::map<NodeId, Link*>> adjacency_;
  // next_hop_[a][dst] -> neighbor
  std::vector<std::vector<NodeId>> next_hop_;
  bool routes_fresh_ = false;
  PacketTap tap_;
  std::vector<NetworkObserver*> observers_;
};

}  // namespace arnet::net
