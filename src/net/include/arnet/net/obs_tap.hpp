#pragma once

#include <string>

#include "arnet/net/network.hpp"
#include "arnet/net/observer.hpp"
#include "arnet/obs/registry.hpp"

namespace arnet::net {

/// NetworkObserver that publishes packet life-cycle accounting into an
/// obs::MetricsRegistry, replacing ad-hoc per-experiment FlowMonitor
/// plumbing. Registers itself on construction, unregisters on destruction.
///
/// Metrics published:
///  - "net.injected_packets" / "net.delivered_packets" /
///    "net.delivered_bytes" counters under `entity`,
///  - "net.drop.<reason>" counters under `entity` for every DropReason,
///  - per-flow "flow.delivered_packets" / "flow.delivered_bytes" counters
///    and a "flow.delay_ms" end-to-end latency histogram under entity
///    "flow:<id>" (created_at -> delivery time).
///
/// The registry must outlive the tap; the tap must not outlive the network.
class ObsTap final : public NetworkObserver {
 public:
  ObsTap(Network& net, obs::MetricsRegistry& reg, std::string entity = "net");
  ~ObsTap() override;

  ObsTap(const ObsTap&) = delete;
  ObsTap& operator=(const ObsTap&) = delete;

  void on_inject(sim::Time now, const Packet& p) override;
  void on_deliver(sim::Time now, const Packet& p, NodeId at) override;
  void on_drop(sim::Time now, const Packet& p, DropReason reason) override;

 private:
  static std::string flow_entity(FlowId flow);

  Network& net_;
  obs::MetricsRegistry& reg_;
  std::string entity_;
};

}  // namespace arnet::net
