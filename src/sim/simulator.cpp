#include "arnet/sim/simulator.hpp"

#include <stdexcept>

#include "arnet/check/assert.hpp"

namespace arnet::sim {

EventHandle Simulator::at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  Event e{t, next_seq_++, next_id_++, std::move(cb)};
  EventHandle h{e.id};
  pending_ids_.insert(e.id);
  queue_.push(std::move(e));
  return h;
}

void Simulator::cancel(EventHandle h) {
  if (!h.valid()) return;
  for (SimObserver* o : observers_) o->on_cancel(h.id, h.id < next_id_);
  // Tombstone only ids that are actually still queued: a cancel of an
  // already-fired (or never-issued, or double-cancelled) handle must not
  // leave state behind, or the set grows without bound over long runs.
  if (pending_ids_.erase(h.id) > 0) cancelled_.insert(h.id);
}

/// Pop cancelled events off the queue front, collecting their tombstones.
/// Returns true iff a live event remains at the front.
bool Simulator::discard_cancelled_front() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return true;
    cancelled_.erase(it);
    queue_.pop();
  }
  return false;
}

bool Simulator::pop_and_run_front() {
  if (!discard_cancelled_front()) return false;
  // priority_queue::top() is const; the event must be moved out to run it
  // without copying the callback state.
  Event e = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  pending_ids_.erase(e.id);
  // Survives NDEBUG: a backwards clock silently corrupts every downstream
  // trace, so it must halt release runs too.
  ARNET_ASSERT(e.time >= now_, "event ", e.id, " (seq ", e.seq, ") fires at t=", e.time,
               "ns but the clock is already at t=", now_, "ns");
  for (SimObserver* o : observers_) o->on_execute(e.time, e.seq, e.id);
  now_ = e.time;
  ++executed_;
  e.cb();
  return true;
}

void Simulator::run() {
  while (pop_and_run_front()) {
  }
}

void Simulator::run_until(Time t) {
  while (discard_cancelled_front() && queue_.top().time <= t) {
    pop_and_run_front();
  }
  if (now_ < t) now_ = t;
}

}  // namespace arnet::sim
