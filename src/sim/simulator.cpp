#include "arnet/sim/simulator.hpp"

#include <stdexcept>

#include "arnet/check/assert.hpp"

namespace arnet::sim {

// 4-ary heap: shallower than binary for the same size, and the four children
// of a node share cache lines, so the sift-down comparison fan-out is nearly
// free. Sifts move entries hole-style (no swaps: one write per level).

void Simulator::heap_push(HeapEntry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!entry_before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::heap_pop_front() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    if (first_child + 4 <= n) {
      // Interior node: the four 24-byte children span at most two cache
      // lines; unrolling keeps the min-scan branch-predictable.
      if (entry_before(heap_[first_child + 1], heap_[best])) best = first_child + 1;
      if (entry_before(heap_[first_child + 2], heap_[best])) best = first_child + 2;
      if (entry_before(heap_[first_child + 3], heap_[best])) best = first_child + 3;
    } else {
      for (std::size_t c = first_child + 1; c < n; ++c) {
        if (entry_before(heap_[c], heap_[best])) best = c;
      }
    }
    if (!entry_before(heap_[best], last)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = last;
}

void Simulator::release_slot(std::uint32_t slot) {
  Event& e = event_at(slot);
  e.state = Event::kFree;
  e.generation = next_generation(e.generation);
  free_.push_back(slot);
}

EventHandle Simulator::at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    ARNET_ASSERT(slab_size_ < kNoSlot, "event slab exhausted (2^32 - 1 concurrent events)");
    slot = slab_size_++;
    if ((slot & kChunkMask) == 0) {
      chunks_.push_back(std::make_unique<Event[]>(kChunkSize));
    }
  }
  Event& e = event_at(slot);
  e.state = Event::kPending;
  e.cb = std::move(cb);
  const std::uint64_t seq = next_seq_++;
  if (tail_head_ == tail_.size() || t >= tail_.back().time) {
    if (tail_head_ != 0 && tail_head_ == tail_.size()) {
      tail_.clear();
      tail_head_ = 0;
    }
    tail_.push_back(HeapEntry{t, seq, slot});
  } else {
    heap_push(HeapEntry{t, seq, slot});
  }
  ++live_;
  return EventHandle{pack_id(slot, e.generation)};
}

void Simulator::cancel(EventHandle h) {
  if (!h.valid()) return;
  const std::uint32_t slot = slot_of(h.id);
  const std::uint32_t gen = generation_of(h.id);
  // "Issued" = this id could have come out of at(): its slot exists and its
  // generation is non-zero (0 is never issued). Fired and double-cancelled
  // handles were issued; forged ids like EventHandle{999999} were not.
  const bool issued = gen != 0 && slot < slab_size_;
  for (SimObserver* o : observers_) o->on_cancel(h.id, issued);
  if (!issued) return;
  Event& e = event_at(slot);
  if (e.state != Event::kPending || e.generation != gen) return;  // stale handle: no-op
  // O(1) mark: bump the generation so every outstanding copy of this handle
  // goes stale, and leave the dead heap entry to be discarded at the front.
  e.state = Event::kCancelled;
  e.generation = next_generation(e.generation);
  e.cb = nullptr;  // drop captures now; owners may die before the entry pops
  --live_;
}

bool Simulator::has_live_front() {
  while (tail_head_ < tail_.size()) {
    const std::uint32_t slot = tail_[tail_head_].slot;
    if (event_at(slot).state == Event::kPending) break;
    ++tail_head_;
    release_slot(slot);
  }
  if (tail_head_ == tail_.size() && tail_head_ != 0) {
    tail_.clear();
    tail_head_ = 0;
  }
  while (!heap_.empty()) {
    const std::uint32_t slot = heap_[0].slot;
    if (event_at(slot).state == Event::kPending) break;
    heap_pop_front();
    release_slot(slot);
  }
  return tail_head_ < tail_.size() || !heap_.empty();
}

bool Simulator::tail_is_front() const {
  if (tail_head_ == tail_.size()) return false;
  if (heap_.empty()) return true;
  return entry_before(tail_[tail_head_], heap_[0]);
}

Time Simulator::front_time() const {
  if (tail_head_ == tail_.size()) return heap_[0].time;
  if (heap_.empty()) return tail_[tail_head_].time;
  return std::min(tail_[tail_head_].time, heap_[0].time);
}

void Simulator::run_front() {
  HeapEntry front;
  if (tail_is_front()) {
    front = tail_[tail_head_];
    ++tail_head_;
  } else {
    front = heap_[0];
    heap_pop_front();
  }
  const std::uint32_t slot = front.slot;
  Event& e = event_at(slot);
  const Time t = front.time;
  const std::uint64_t seq = front.seq;
  const std::uint64_t id = pack_id(slot, e.generation);
  // Survives NDEBUG: a backwards clock silently corrupts every downstream
  // trace, so it must halt release runs too.
  ARNET_ASSERT(t >= now_, "event ", id, " (seq ", seq, ") fires at t=", t,
               "ns but the clock is already at t=", now_, "ns");
  // Free the slot before invoking: the callback may schedule (reusing this
  // warm slot) or grow the slab, either of which would invalidate `e`.
  running_cb_ = std::move(e.cb);
  release_slot(slot);
  --live_;
  for (SimObserver* o : observers_) o->on_execute(t, seq, id);
  now_ = t;
  ++executed_;
  running_cb_();
}

void Simulator::run() {
  while (has_live_front()) {
    run_front();
  }
}

void Simulator::run_until(Time t) {
  while (has_live_front() && front_time() <= t) {
    run_front();
  }
  if (now_ < t) now_ = t;
}

}  // namespace arnet::sim
