#include "arnet/sim/simulator.hpp"

#include <stdexcept>

#include "arnet/check/assert.hpp"

namespace arnet::sim {

EventHandle Simulator::at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  Event e{t, next_seq_++, next_id_++, std::move(cb)};
  EventHandle h{e.id};
  queue_.push(std::move(e));
  return h;
}

void Simulator::cancel(EventHandle h) {
  if (!h.valid()) return;
  for (SimObserver* o : observers_) o->on_cancel(h.id, h.id < next_id_);
  cancelled_.insert(h.id);
}

bool Simulator::pop_and_run_front() {
  while (!queue_.empty()) {
    if (auto it = cancelled_.find(queue_.top().id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    // priority_queue::top() is const; the event must be moved out to run it
    // without copying the callback state.
    Event e = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    // Survives NDEBUG: a backwards clock silently corrupts every downstream
    // trace, so it must halt release runs too.
    ARNET_ASSERT(e.time >= now_, "event ", e.id, " (seq ", e.seq, ") fires at t=", e.time,
                 "ns but the clock is already at t=", now_, "ns");
    for (SimObserver* o : observers_) o->on_execute(e.time, e.seq, e.id);
    now_ = e.time;
    ++executed_;
    e.cb();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (pop_and_run_front()) {
  }
}

void Simulator::run_until(Time t) {
  while (!queue_.empty()) {
    if (auto it = cancelled_.find(queue_.top().id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    if (queue_.top().time > t) break;
    pop_and_run_front();
  }
  if (now_ < t) now_ = t;
}

}  // namespace arnet::sim
