#pragma once

#include <cstdint>

namespace arnet::sim {

/// Simulated time in nanoseconds since simulation start.
///
/// A plain integer keeps arithmetic in hot paths trivial; all construction
/// should go through the named helpers below so unit mistakes stay greppable.
using Time = std::int64_t;

inline constexpr Time kNever = INT64_MAX;

constexpr Time nanoseconds(std::int64_t v) { return v; }
constexpr Time microseconds(std::int64_t v) { return v * 1'000; }
constexpr Time milliseconds(std::int64_t v) { return v * 1'000'000; }
constexpr Time seconds(std::int64_t v) { return v * 1'000'000'000; }

/// Fractional-second construction (e.g. transmission delays from rates).
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * 1e9);
}
constexpr Time from_milliseconds(double ms) {
  return static_cast<Time>(ms * 1e6);
}

constexpr double to_seconds(Time t) { return static_cast<double>(t) / 1e9; }
constexpr double to_milliseconds(Time t) {
  return static_cast<double>(t) / 1e6;
}
constexpr double to_microseconds(Time t) {
  return static_cast<double>(t) / 1e3;
}

/// Time taken to serialize `bytes` onto a link of `bits_per_second`.
constexpr Time transmission_delay(std::int64_t bytes, double bits_per_second) {
  return from_seconds(static_cast<double>(bytes) * 8.0 / bits_per_second);
}

}  // namespace arnet::sim
