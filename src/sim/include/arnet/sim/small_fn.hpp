#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace arnet::sim {

/// Move-only callable wrapper with a large inline buffer, used as the
/// simulator's event callback type. std::function's small-buffer optimisation
/// tops out at 16 trivially-copyable bytes (libstdc++), so every closure that
/// captures a Packet handle plus a couple of fields heap-allocates on the
/// simulator's hottest path. SmallFn inlines up to `kInlineBytes` of capture
/// state (and falls back to the heap above that), and being move-only it can
/// hold move-only captures that std::function rejects.
class SmallFn {
 public:
  static constexpr std::size_t kInlineBytes = 24;

  SmallFn() = default;
  SmallFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "SmallFn requires a void() callable");
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](SmallFn& self) { (*std::launder(reinterpret_cast<Fn*>(self.buf_)))(); };
      manage_ = [](SmallFn& self, SmallFn* dst) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(self.buf_));
        if (dst != nullptr) ::new (static_cast<void*>(dst->buf_)) Fn(std::move(*src));
        src->~Fn();
      };
    } else {
      heap_ = new Fn(std::forward<F>(f));
      invoke_ = [](SmallFn& self) { (*static_cast<Fn*>(self.heap_))(); };
      manage_ = [](SmallFn& self, SmallFn* dst) {
        if (dst != nullptr) {
          dst->heap_ = self.heap_;
        } else {
          delete static_cast<Fn*>(self.heap_);
        }
      };
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(*this); }

 private:
  void reset() {
    if (manage_ != nullptr) manage_(*this, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// Move `other`'s callable into this (pre: *this is empty). For inline
  /// callables this move-constructs into our buffer; for heap callables it
  /// just steals the pointer. `other` is left empty either way.
  void move_from(SmallFn& other) {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (manage_ != nullptr) other.manage_(other, this);
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  using Invoke = void (*)(SmallFn&);
  /// dst == nullptr: destroy. dst != nullptr: move into dst's storage (which
  /// must be empty), then leave the source destroyed-but-unset.
  using Manage = void (*)(SmallFn&, SmallFn*);

  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void* heap_;
  };
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace arnet::sim
