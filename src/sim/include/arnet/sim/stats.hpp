#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "arnet/sim/time.hpp"

namespace arnet::sim {

/// Streaming summary statistics (Welford's algorithm).
class Summary {
 public:
  void add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample store with exact quantiles; fine at simulation scales.
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return xs_.size(); }

  double mean() const {
    if (xs_.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs_) s += x;
    return s / static_cast<double>(xs_.size());
  }

  /// Quantile by linear interpolation; `p` in [0, 1].
  double percentile(double p) const {
    if (xs_.empty()) return 0.0;
    sort_if_needed();
    double idx = p * static_cast<double>(xs_.size() - 1);
    auto lo = static_cast<std::size_t>(idx);
    auto hi = std::min(lo + 1, xs_.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
  }

  double median() const { return percentile(0.5); }
  double min() const { return percentile(0.0); }
  double max() const { return percentile(1.0); }

  const std::vector<double>& values() const {
    sort_if_needed();
    return xs_;
  }

 private:
  void sort_if_needed() const {
    if (!sorted_) {
      std::sort(xs_.begin(), xs_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
};

/// Timestamped series, e.g. a cwnd or throughput trace for a figure.
class TimeSeries {
 public:
  void add(Time t, double v) { points_.emplace_back(t, v); }

  const std::vector<std::pair<Time, double>>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Mean of values with timestamp in [t0, t1).
  double mean_in(Time t0, Time t1) const {
    double s = 0.0;
    std::int64_t n = 0;
    for (const auto& [t, v] : points_) {
      if (t >= t0 && t < t1) {
        s += v;
        ++n;
      }
    }
    return n ? s / static_cast<double>(n) : 0.0;
  }

 private:
  std::vector<std::pair<Time, double>> points_;
};

/// Byte counter that converts interval deltas into Mb/s series.
class RateMeter {
 public:
  void on_bytes(std::int64_t bytes) { total_ += bytes; }

  /// Record throughput since the previous sample as one series point.
  void sample(Time now) {
    double mbps = 0.0;
    if (now > last_t_) {
      mbps = static_cast<double>(total_ - last_total_) * 8.0 /
             to_seconds(now - last_t_) / 1e6;
    }
    series_.add(now, mbps);
    last_total_ = total_;
    last_t_ = now;
  }

  std::int64_t total_bytes() const { return total_; }
  const TimeSeries& series() const { return series_; }

  /// Average rate in Mb/s over [0, now].
  double average_mbps(Time now) const {
    if (now <= 0) return 0.0;
    return static_cast<double>(total_) * 8.0 / to_seconds(now) / 1e6;
  }

 private:
  std::int64_t total_ = 0;
  std::int64_t last_total_ = 0;
  Time last_t_ = 0;
  TimeSeries series_;
};

}  // namespace arnet::sim
