#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace arnet::sim {

/// Deterministic random stream.
///
/// Every stochastic component takes an `Rng` (or forks a substream from one)
/// so whole-scenario runs are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derive an independent substream; `label` decorrelates components that
  /// fork from the same parent.
  Rng fork(std::string_view label) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (char c : label) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 1099511628211ULL;
    }
    return Rng(h ^ engine_());
  }

  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Normal truncated below at `lo` (delays must not go negative).
  double normal_at_least(double mean, double stddev, double lo) {
    double v = normal(mean, stddev);
    return v < lo ? lo : v;
  }

  std::uint64_t next_u64() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace arnet::sim
