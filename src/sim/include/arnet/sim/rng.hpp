#pragma once

#include <cstdint>
#include <random>
#include <string_view>

#include "arnet/check/rng_audit.hpp"

namespace arnet::sim {

/// Deterministic random stream.
///
/// Every stochastic component takes an `Rng` (or forks a substream from one)
/// so whole-scenario runs are reproducible from a single seed.
///
/// When a check::RngAuditor is active (ScopedRngAudit), construction
/// registers the stream and every draw through the named helpers reports to
/// it, so seed collisions and cross-thread draws surface as findings. With
/// no auditor active `audit_id_` stays 0 and the draw path is one predicted
/// branch. Copying an Rng duplicates the engine state *and* the stream id:
/// the copy's draws are attributed to the original stream, which is exactly
/// the attribution you want when hunting an accidental copy. Draws through
/// the raw engine() escape hatch are not audited.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {
    if (auto* a = check::active_rng_auditor()) {
      audit_id_ = a->on_register(seed);
    }
  }

  /// Derive an independent substream; `label` decorrelates components that
  /// fork from the same parent.
  Rng fork(std::string_view label) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (char c : label) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 1099511628211ULL;
    }
    touch_();
    Rng child(h ^ engine_());
    if (audit_id_ != 0 && child.audit_id_ != 0) {
      if (auto* a = check::active_rng_auditor()) {
        a->on_fork(audit_id_, child.audit_id_, label);
      }
    }
    return child;
  }

  double uniform() {
    touch_();
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  double uniform(double lo, double hi) {
    touch_();
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    touch_();
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  bool bernoulli(double p) {
    touch_();
    return std::bernoulli_distribution(p)(engine_);
  }

  double exponential(double mean) {
    touch_();
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  double normal(double mean, double stddev) {
    touch_();
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Normal truncated below at `lo` (delays must not go negative).
  double normal_at_least(double mean, double stddev, double lo) {
    double v = normal(mean, stddev);
    return v < lo ? lo : v;
  }

  std::uint64_t next_u64() {
    touch_();
    return engine_();
  }

  std::mt19937_64& engine() { return engine_; }

  /// Auditor stream id; 0 when constructed with no auditor active.
  std::uint32_t audit_stream() const { return audit_id_; }

 private:
  void touch_() {
    if (audit_id_ != 0) {
      if (auto* a = check::active_rng_auditor()) {
        a->on_draw(audit_id_);
      }
    }
  }

  std::mt19937_64 engine_;
  std::uint32_t audit_id_ = 0;
};

}  // namespace arnet::sim
