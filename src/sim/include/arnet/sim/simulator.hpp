#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "arnet/sim/time.hpp"

namespace arnet::sim {

/// Opaque handle to a scheduled event; used to cancel timers.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// Execution observer: sees every event the simulator runs and every cancel
/// request. arnet::check::SimAuditor uses it to machine-check the engine's
/// ordering contract; arnet::check::TraceRecorder folds the stream into a
/// determinism fingerprint. Callbacks run per event — keep them cheap.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  /// An event is about to run; `seq` is its scheduling order, `id` its handle.
  virtual void on_execute(Time /*t*/, std::uint64_t /*seq*/, std::uint64_t /*id*/) {}
  /// cancel() was called on a valid handle; `issued` is false if the id was
  /// never returned by at()/after().
  virtual void on_cancel(std::uint64_t /*id*/, bool /*issued*/) {}
};

/// Single-threaded discrete-event simulator.
///
/// Events at equal times run in scheduling order (FIFO), which keeps
/// protocol traces deterministic.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now()).
  EventHandle at(Time t, Callback cb);

  /// Schedule `cb` `delay` after now().
  EventHandle after(Time delay, Callback cb) { return at(now_ + delay, std::move(cb)); }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid handle is a true no-op: it leaves no tombstone behind, so
  /// long-running scenarios that race timers against completions (every RTO
  /// path does) cannot grow the cancelled set without bound.
  void cancel(EventHandle h);

  /// Run until the event queue drains.
  void run();

  /// Run all events with time <= `t`, then set now() to `t`.
  void run_until(Time t);

  void run_for(Time delay) { run_until(now_ + delay); }

  std::uint64_t events_executed() const { return executed_; }
  /// Live (scheduled, not cancelled) events. Exact: cancel() only tombstones
  /// ids that are actually queued, so the subtraction cannot underflow.
  std::size_t pending_events() const { return queue_.size() - cancelled_.size(); }

  /// Cancel tombstones not yet matched against a queued event. Bounded by
  /// pending_events(); always 0 once the queue drains. SimAuditor::finish()
  /// still audits that invariant as a backstop.
  std::size_t cancel_backlog() const { return cancelled_.size(); }

  /// Register/unregister an execution observer (auditing & trace
  /// fingerprinting). Several may be registered; order = registration order.
  void add_observer(SimObserver* obs) { observers_.push_back(obs); }
  void remove_observer(SimObserver* obs) {
    observers_.erase(std::remove(observers_.begin(), observers_.end(), obs), observers_.end());
  }

 private:
  struct Event {
    Time time;
    std::uint64_t seq;  // tie-break: FIFO among equal-time events
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run_front();
  bool discard_cancelled_front();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Membership-only id sets (never iterated): which ids are still queued,
  // and which queued ids were cancelled (tombstones matched lazily at pop).
  std::unordered_set<std::uint64_t> pending_ids_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::vector<SimObserver*> observers_;
};

/// Restartable one-shot timer bound to a simulator (e.g. a TCP RTO timer).
///
/// (Re)arming cancels any pending expiry. The owner must outlive the timer's
/// pending callback or stop() it first; destruction stops it automatically.
class Timer {
 public:
  Timer(Simulator& sim, Simulator::Callback on_expire)
      : sim_(sim), on_expire_(std::move(on_expire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { stop(); }

  /// Arm (or re-arm) to fire `delay` from now.
  void arm(Time delay) {
    stop();
    handle_ = sim_.after(delay, [this] {
      handle_ = EventHandle{};
      on_expire_();
    });
  }

  void stop() {
    if (handle_.valid()) {
      sim_.cancel(handle_);
      handle_ = EventHandle{};
    }
  }

  bool armed() const { return handle_.valid(); }

 private:
  Simulator& sim_;
  Simulator::Callback on_expire_;
  EventHandle handle_;
};

}  // namespace arnet::sim
