#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "arnet/sim/small_fn.hpp"
#include "arnet/sim/time.hpp"

namespace arnet::sim {

/// Opaque handle to a scheduled event; used to cancel timers. The id packs
/// {slab slot, generation} so the engine can validate it in O(1) without any
/// hash lookup; 0 is never issued, so a default handle is always invalid.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

/// Execution observer: sees every event the simulator runs and every cancel
/// request. arnet::check::SimAuditor uses it to machine-check the engine's
/// ordering contract; arnet::check::TraceRecorder folds the stream into a
/// determinism fingerprint. Callbacks run per event — keep them cheap.
class SimObserver {
 public:
  virtual ~SimObserver() = default;
  /// An event is about to run; `seq` is its scheduling order, `id` its handle.
  virtual void on_execute(Time /*t*/, std::uint64_t /*seq*/, std::uint64_t /*id*/) {}
  /// cancel() was called on a valid handle; `issued` is false if the id was
  /// never returned by at()/after().
  virtual void on_cancel(std::uint64_t /*id*/, bool /*issued*/) {}
};

struct SimulatorTestPeer;

/// Single-threaded discrete-event simulator.
///
/// Events at equal times run in scheduling order (FIFO), which keeps
/// protocol traces deterministic.
///
/// Engine layout (ns-3-style slab scheduler): every scheduled event lives in
/// a slot of a chunked slab, and a 4-ary min-heap of slot indices orders the
/// slots by (time, seq). Handles pack {slot, generation}; freeing a slot
/// bumps its generation, so a stale handle (already fired, already
/// cancelled, forged) is rejected by a single compare — no id hash sets, no
/// tombstone growth. cancel() is an O(1) slot mark; the dead heap entry is
/// discarded when it surfaces at the front. Freed slots are recycled LIFO,
/// so steady-state scheduling reuses warm Event records (including their
/// Callback storage) instead of allocating. The slab grows in fixed chunks
/// with stable addresses: growth never moves live Event records (and their
/// callback captures), which a flat vector did on every regrow.
class Simulator {
 public:
  using Callback = SmallFn;

  Time now() const { return now_; }

  /// Schedule `cb` at absolute time `t` (>= now()).
  EventHandle at(Time t, Callback cb);

  /// Schedule `cb` `delay` after now().
  EventHandle after(Time delay, Callback cb) { return at(now_ + delay, std::move(cb)); }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid handle is a true no-op: the handle's generation no longer
  /// matches its slot, so no state changes and nothing can accumulate over
  /// long scenarios that race timers against completions (every RTO path).
  void cancel(EventHandle h);

  /// Run until the event queue drains.
  void run();

  /// Run all events with time <= `t`, then set now() to `t`.
  void run_until(Time t);

  void run_for(Time delay) { run_until(now_ + delay); }

  std::uint64_t events_executed() const { return executed_; }
  /// Live (scheduled, not cancelled) events.
  std::size_t pending_events() const { return live_; }

  /// Cancelled events whose heap entry has not yet surfaced at the front and
  /// been discarded. Bounded by the queue size; always 0 once the queue
  /// drains. SimAuditor::finish() still audits that invariant as a backstop.
  std::size_t cancel_backlog() const {
    return heap_.size() + (tail_.size() - tail_head_) - live_;
  }

  /// Register/unregister an execution observer (auditing & trace
  /// fingerprinting). Several may be registered; order = registration order.
  void add_observer(SimObserver* obs) { observers_.push_back(obs); }
  void remove_observer(SimObserver* obs) {
    observers_.erase(std::remove(observers_.begin(), observers_.end(), obs), observers_.end());
  }

 private:
  friend struct SimulatorTestPeer;

  struct Event {
    std::uint32_t generation = 1;
    enum State : std::uint8_t { kFree, kPending, kCancelled };
    State state = kFree;
    Callback cb;
  };

  /// Slab chunk geometry: 512 events per chunk keeps a chunk around 24 KiB
  /// (well inside L2) while bounding growth allocations to one every 512
  /// schedules at peak.
  static constexpr std::uint32_t kChunkShift = 9;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  Event& event_at(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }
  const Event& event_at(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }

  static std::uint64_t pack_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) | slot;
  }
  static std::uint32_t slot_of(std::uint64_t id) { return static_cast<std::uint32_t>(id); }
  static std::uint32_t generation_of(std::uint64_t id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  /// Generations skip 0 (so a packed id is never 0) and wrap; a handle can
  /// only alias after 2^32 - 1 reuses of one slot.
  static std::uint32_t next_generation(std::uint32_t g) { return g + 1 == 0 ? 1 : g + 1; }

  /// Lane entries carry the full ordering key (time, seq) next to the slot
  /// index: sift comparisons and front merges run over contiguous lane
  /// memory and never chase slab slots, which is where a slab scheduler's
  /// cache misses hide. Keeping time/seq out of the slab also shrinks an
  /// Event to one cache line, which is what bounds a cold simulator's
  /// first-touch cost (the dominant term in short-lived worlds).
  struct HeapEntry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool entry_before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void heap_push(HeapEntry e);
  void heap_pop_front();
  /// True when the front of the monotone tail lane orders before the heap
  /// front (pre: at least one lane non-empty after has_live_front()).
  bool tail_is_front() const;
  Time front_time() const;
  /// Discard cancelled entries off the heap front (freeing their slots);
  /// afterwards heap_[0] is the live front event. Returns false when
  /// drained. The single pass shared by run()/run_until().
  bool has_live_front();
  /// Fire the known-live front event (pre: has_live_front() returned true).
  void run_front();
  void release_slot(std::uint32_t slot);

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<std::unique_ptr<Event[]>> chunks_;
  std::uint32_t slab_size_ = 0;      // slots handed out so far (all chunks)
  std::vector<HeapEntry> heap_;      // 4-ary min-heap keyed by (time, seq)
  // Monotone tail lane: most discrete-event workloads schedule in nearly
  // non-decreasing time order (per-hop delays, timer re-arms). An event whose
  // time is >= the newest tail entry is appended here instead of the heap;
  // the lane is sorted by construction ((time, seq) increases with every
  // append), so both push and pop are O(1). Out-of-order events still take
  // the heap, and the dispatcher merges the two fronts by exact (time, seq)
  // — execution order (and thus every fingerprint) is identical to a pure
  // heap.
  std::vector<HeapEntry> tail_;
  std::size_t tail_head_ = 0;
  std::vector<std::uint32_t> free_;  // freed slots, reused LIFO
  // The firing callback is moved here (not run in place) because it may
  // schedule events and grow the slab under its own feet; the member is
  // reused across fires so steady-state turnover does not allocate.
  Callback running_cb_;
  std::vector<SimObserver*> observers_;
};

/// White-box seam for tests only: lets the slab stress test force a slot to
/// the edge of the generation counter to cover wrap-around, and inspect how
/// handles pack. Not part of the simulation API.
struct SimulatorTestPeer {
  static std::uint32_t slot_of(EventHandle h) { return Simulator::slot_of(h.id); }
  static std::uint32_t generation_of(EventHandle h) { return Simulator::generation_of(h.id); }
  static std::size_t slab_size(const Simulator& s) { return s.slab_size_; }
  static void set_slot_generation(Simulator& s, std::uint32_t slot, std::uint32_t generation) {
    s.event_at(slot).generation = generation;
  }
};

/// Restartable one-shot timer bound to a simulator (e.g. a TCP RTO timer).
///
/// (Re)arming cancels any pending expiry. The owner must outlive the timer's
/// pending callback or stop() it first; destruction stops it automatically.
class Timer {
 public:
  Timer(Simulator& sim, Simulator::Callback on_expire)
      : sim_(sim), on_expire_(std::move(on_expire)) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { stop(); }

  /// Arm (or re-arm) to fire `delay` from now.
  void arm(Time delay) {
    stop();
    handle_ = sim_.after(delay, [this] {
      handle_ = EventHandle{};
      on_expire_();
    });
  }

  void stop() {
    if (handle_.valid()) {
      sim_.cancel(handle_);
      handle_ = EventHandle{};
    }
  }

  bool armed() const { return handle_.valid(); }

 private:
  Simulator& sim_;
  Simulator::Callback on_expire_;
  EventHandle handle_;
};

}  // namespace arnet::sim
