#include "arnet/wireless/cellular.hpp"

#include <algorithm>
#include <cmath>

namespace arnet::wireless {

CellularProfile CellularProfile::hspa_plus() {
  CellularProfile p;
  p.name = "HSPA+";
  p.mean_down_bps = 3.0e6;
  p.mean_up_bps = 1.4e6;
  p.rate_sigma = 0.9;  // order-of-magnitude swings
  p.base_one_way_delay = sim::milliseconds(55);
  p.delay_jitter = sim::milliseconds(18);
  p.spike_extra_delay = sim::milliseconds(340);  // ~800 ms RTT spikes
  p.spike_probability = 0.02;
  p.uplink_queue_packets = 1000;
  return p;
}

CellularProfile CellularProfile::lte() {
  CellularProfile p;
  p.name = "LTE";
  p.mean_down_bps = 18.0e6;
  p.mean_up_bps = 8.0e6;
  p.rate_sigma = 0.45;
  p.base_one_way_delay = sim::milliseconds(34);
  p.delay_jitter = sim::milliseconds(8);
  p.spike_extra_delay = sim::milliseconds(120);
  p.spike_probability = 0.01;
  p.uplink_queue_packets = 1000;
  return p;
}

CellularProfile CellularProfile::lte_theoretical() {
  CellularProfile p;
  p.name = "LTE (theoretical)";
  p.mean_down_bps = 326.0e6;
  p.mean_up_bps = 75.0e6;
  p.rate_sigma = 0.0;
  p.base_one_way_delay = sim::milliseconds(5);
  p.delay_jitter = 0;
  p.spike_extra_delay = 0;
  p.spike_probability = 0.0;
  p.uplink_queue_packets = 1000;
  return p;
}

CellularProfile CellularProfile::fiveg_kpi() {
  CellularProfile p;
  p.name = "5G (NGMN AR KPI)";
  p.mean_down_bps = 300.0e6;
  p.mean_up_bps = 50.0e6;
  p.rate_sigma = 0.15;
  p.base_one_way_delay = sim::milliseconds(5);
  p.delay_jitter = sim::milliseconds(1);
  p.spike_extra_delay = sim::milliseconds(10);
  p.spike_probability = 0.005;
  p.uplink_queue_packets = 500;
  return p;
}

CellularProfile CellularProfile::nr_5g() {
  CellularProfile p;
  p.name = "5G NR";
  p.mean_down_bps = 600.0e6;
  p.mean_up_bps = 120.0e6;
  p.rate_sigma = 0.35;  // beamforming makes the rate process jumpy
  p.base_one_way_delay = sim::milliseconds(4);
  p.delay_jitter = sim::from_milliseconds(1.5);
  p.spike_extra_delay = sim::milliseconds(15);
  p.spike_probability = 0.008;
  p.uplink_queue_packets = 500;
  p.blockage.enabled = true;
  return p;
}

CellularModulator::CellularModulator(sim::Simulator& sim, sim::Rng rng, net::Link& uplink,
                                     net::Link& downlink, Config cfg)
    : sim_(sim),
      rng_(std::move(rng)),
      uplink_(uplink),
      downlink_(downlink),
      cfg_(cfg),
      down_bps_(cfg.profile.mean_down_bps),
      up_bps_(cfg.profile.mean_up_bps),
      delay_(cfg.profile.base_one_way_delay) {
  if (cfg_.profile.blockage.enabled) blockage_rng_ = rng_.fork("nr-blockage");
}

void CellularModulator::start() {
  running_ = true;
  if (blockage_rng_) {
    // Arm the first clear->blocked transition; subsequent toggles rearm
    // themselves at exact (not tick-quantized) times.
    sim::Time first = sim::from_seconds(
        blockage_rng_->exponential(cfg_.profile.blockage.mean_clear_s));
    sim_.after(first, [this] { toggle_blockage(); });
  }
  tick();
}

void CellularModulator::toggle_blockage() {
  if (!running_) return;
  const NrBlockage& b = cfg_.profile.blockage;
  blocked_ = !blocked_;
  if (blocked_) ++blockage_bursts_;
  blockage_log_.push_back(sim_.now());
  apply();
  double hold_s = blocked_ ? blockage_rng_->exponential(b.mean_blocked_s)
                           : blockage_rng_->exponential(b.mean_clear_s);
  sim_.after(sim::from_seconds(hold_s), [this] { toggle_blockage(); });
}

void CellularModulator::tick() {
  if (!running_) return;
  const CellularProfile& pr = cfg_.profile;

  // Log-normal multiplicative rate noise with mean-reversion: blend the
  // previous value toward a fresh sample so rates wander rather than jump
  // i.i.d. every tick.
  auto sample_rate = [&](double mean) {
    double target = mean * std::exp(rng_.normal(-0.5 * pr.rate_sigma * pr.rate_sigma,
                                                pr.rate_sigma));
    return std::max(32e3, target);
  };
  down_bps_ = 0.6 * down_bps_ + 0.4 * sample_rate(pr.mean_down_bps);
  up_bps_ = 0.6 * up_bps_ + 0.4 * sample_rate(pr.mean_up_bps);

  sim::Time jitter = sim::from_milliseconds(
      std::abs(rng_.normal(0.0, sim::to_milliseconds(pr.delay_jitter))));
  delay_ = pr.base_one_way_delay + jitter;
  if (pr.spike_probability > 0 && rng_.bernoulli(pr.spike_probability)) {
    delay_ += pr.spike_extra_delay;
  }

  apply();

  sim_.after(cfg_.update_interval, [this] { tick(); });
}

void CellularModulator::apply() {
  const NrBlockage& b = cfg_.profile.blockage;
  double rate_mult = blocked_ ? b.rate_factor : 1.0;
  sim::Time extra = blocked_ ? b.extra_delay : 0;
  uplink_.set_rate(std::max(32e3, up_bps_ * rate_mult));
  uplink_.set_delay(delay_ + extra);
  downlink_.set_rate(std::max(32e3, down_bps_ * rate_mult));
  downlink_.set_delay(delay_ + extra);
}

CellularAttachment attach_cellular(net::Network& net, net::NodeId client, net::NodeId tower,
                                   const CellularProfile& profile, std::uint64_t seed) {
  net::Link::Config up;
  up.rate_bps = profile.mean_up_bps;
  up.delay = profile.base_one_way_delay;
  up.queue_packets = profile.uplink_queue_packets;
  up.name = profile.name + "-up";
  net::Link::Config down;
  down.rate_bps = profile.mean_down_bps;
  down.delay = profile.base_one_way_delay;
  // eNB downlink buffers are deep in practice (RLC buffering), which also
  // absorbs the rate swings of the fading process.
  down.queue_packets = 750;
  down.name = profile.name + "-down";
  auto [ul, dl] = net.connect(client, tower, std::move(up), std::move(down));

  CellularModulator::Config mc;
  mc.profile = profile;
  auto mod = std::make_unique<CellularModulator>(net.sim(), sim::Rng(seed), *ul, *dl, mc);
  return {ul, dl, std::move(mod)};
}

}  // namespace arnet::wireless
