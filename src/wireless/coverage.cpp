#include "arnet/wireless/coverage.hpp"

#include <algorithm>

namespace arnet::wireless {

CoverageProcess::Config CoverageProcess::wi2me_wifi() { return Config{}; }

CoverageProcess::Config CoverageProcess::cellular() {
  Config c;
  c.mean_usable = sim::seconds(600);
  c.mean_gap = sim::seconds(3);
  c.min_gap = sim::seconds(1);
  return c;
}

CoverageProcess::CoverageProcess(sim::Simulator& sim, sim::Rng rng, net::Link& up,
                                 net::Link& down, Config cfg)
    : sim_(sim), rng_(std::move(rng)), up_(up), down_(down), cfg_(cfg),
      usable_(cfg.start_usable) {}

void CoverageProcess::start() {
  running_ = true;
  up_.set_up(usable_);
  down_.set_up(usable_);
  last_toggle_ = sim_.now();
  schedule_next();
}

void CoverageProcess::schedule_next() {
  if (!running_) return;
  sim::Time hold;
  if (usable_) {
    hold = sim::from_seconds(rng_.exponential(sim::to_seconds(cfg_.mean_usable)));
  } else {
    hold = std::max(cfg_.min_gap,
                    sim::from_seconds(rng_.exponential(sim::to_seconds(cfg_.mean_gap))));
  }
  sim_.after(hold, [this] {
    if (!running_) return;
    if (usable_) {
      usable_time_ += sim_.now() - last_toggle_;
    } else {
      ++handovers_;
    }
    usable_ = !usable_;
    last_toggle_ = sim_.now();
    up_.set_up(usable_);
    down_.set_up(usable_);
    schedule_next();
  });
}

}  // namespace arnet::wireless
