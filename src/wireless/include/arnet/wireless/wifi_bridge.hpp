#pragma once

#include <string>
#include <vector>

#include "arnet/net/link.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/wireless/wifi.hpp"

namespace arnet::wireless {

/// Couples a group of station->AP Links inside a routed Network to one DCF
/// medium: every tick, backlogged stations share the cell per 802.11's
/// equal transmission opportunities, so each backlogged link's service rate
/// becomes goodput_share(own PHY, set of contenders). This imports the
/// performance anomaly (Fig. 2) into full offloading scenarios without
/// replacing the Link/Network machinery.
///
/// Flow-level approximation of WifiCell's frame-level model: per-frame
/// airtimes are computed with the same WifiMacParams, but service is fluid
/// within a tick.
class WifiSharedMedium {
 public:
  struct Config {
    WifiMacParams mac;
    sim::Time update_interval = sim::milliseconds(20);
    std::int32_t reference_frame_bytes = 1500;
  };

  explicit WifiSharedMedium(sim::Simulator& sim) : WifiSharedMedium(sim, Config{}) {}
  WifiSharedMedium(sim::Simulator& sim, Config cfg) : sim_(sim), cfg_(cfg) {}

  /// Register a station's uplink (station->AP Link) with its PHY rate.
  void attach(net::Link& uplink, double phy_bps, std::string name = "sta");

  void set_phy_rate(std::size_t station, double phy_bps) {
    stations_[station].phy_bps = phy_bps;
  }

  void start() {
    running_ = true;
    tick();
  }
  void stop() { running_ = false; }

  /// Goodput of one station transmitting alone (for calibration).
  double solo_goodput_bps(double phy_bps) const;

  std::size_t stations() const { return stations_.size(); }
  double current_rate_bps(std::size_t station) const { return stations_[station].last_rate; }

 private:
  struct Station {
    net::Link* uplink = nullptr;
    double phy_bps = 54e6;
    double last_rate = 0.0;
    std::string name;
  };

  void tick();
  sim::Time frame_airtime(double phy_bps) const;

  sim::Simulator& sim_;
  Config cfg_;
  std::vector<Station> stations_;
  bool running_ = false;
};

}  // namespace arnet::wireless
