#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arnet/net/link.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"

namespace arnet::wireless {

/// mmWave blockage process for 5G NR: a two-state (clear/blocked) renewal
/// process with exponential holding times. While blocked, link capacity
/// collapses to `rate_factor` of the fading-process value and the one-way
/// delay gains `extra_delay` (beam re-acquisition / fallback). The schedule
/// is drawn from a dedicated forked substream of the modulator's rng, so the
/// same seed always produces the same burst schedule and profiles without
/// blockage draw exactly what they drew before this existed.
struct NrBlockage {
  bool enabled = false;
  double mean_clear_s = 4.0;     ///< mean time between bursts
  double mean_blocked_s = 0.25;  ///< mean burst duration
  double rate_factor = 0.05;     ///< capacity multiplier while blocked
  sim::Time extra_delay = sim::milliseconds(20);
};

/// Stochastic access-network profile: everyday (not theoretical) behavior of
/// a radio technology, calibrated to the measurements the paper cites
/// (OpenSignal / SpeedTest / Xu et al., §IV-A).
struct CellularProfile {
  std::string name;
  double mean_down_bps;
  double mean_up_bps;
  /// Log-normal sigma of the rate process ("abrupt changes of several
  /// orders of magnitude" for HSPA+).
  double rate_sigma;
  sim::Time base_one_way_delay;   ///< per-direction radio+core latency
  sim::Time delay_jitter;         ///< stddev of the delay process
  sim::Time spike_extra_delay;    ///< occasional latency spike magnitude
  double spike_probability;       ///< per-update chance of a spike
  std::size_t uplink_queue_packets;  ///< oversized on real cellular uplinks
  /// mmWave blockage bursts (5G NR only; disabled for the other profiles).
  NrBlockage blockage;

  /// HSPA+ as measured: ~0.7-3.5 Mb/s down, ~1.5 Mb/s up, 110-130 ms RTT,
  /// spikes to 800 ms (Xu et al. Singapore study).
  static CellularProfile hspa_plus();
  /// LTE as measured: ~12-20 Mb/s down, ~8 Mb/s up, 66-85 ms RTT.
  static CellularProfile lte();
  /// LTE under ideal lab conditions (the "advertised" row of §IV-A2).
  static CellularProfile lte_theoretical();
  /// 5G per the NGMN white paper AR KPIs: 300/50 Mb/s, 10 ms end-to-end.
  static CellularProfile fiveg_kpi();
  /// 5G NR as deployed: very high but volatile rate, low base latency, and
  /// seeded mmWave blockage bursts that briefly collapse the link — the
  /// regime where BBR/QUIC-style transports behave qualitatively differently
  /// from loss-based TCP (PAPERS.md: "Evaluating Transport Protocols on 5G").
  static CellularProfile nr_5g();
};

/// Attaches to an uplink/downlink Link pair and modulates their rate and
/// delay with a log-normal rate process plus delay jitter and spikes, turning
/// static point-to-point pipes into everyday cellular behavior.
class CellularModulator {
 public:
  struct Config {
    CellularProfile profile;
    sim::Time update_interval = sim::milliseconds(100);
  };

  CellularModulator(sim::Simulator& sim, sim::Rng rng, net::Link& uplink, net::Link& downlink,
                    Config cfg);

  void start();
  void stop() { running_ = false; }

  double current_down_bps() const { return down_bps_; }
  double current_up_bps() const { return up_bps_; }
  sim::Time current_one_way_delay() const { return delay_; }

  /// Blockage observables (meaningful when profile.blockage.enabled).
  bool blockage_active() const { return blocked_; }
  std::int64_t blockage_bursts() const { return blockage_bursts_; }
  /// Toggle times, alternating enter/leave; the determinism contract is that
  /// equal seeds produce byte-equal schedules.
  const std::vector<sim::Time>& blockage_log() const { return blockage_log_; }

 private:
  void tick();
  void toggle_blockage();
  void apply();

  sim::Simulator& sim_;
  sim::Rng rng_;
  /// Dedicated substream for the blockage schedule (forked only when the
  /// profile enables blockage, so legacy profiles' draw sequences — and thus
  /// their fingerprints — are unchanged).
  std::optional<sim::Rng> blockage_rng_;
  net::Link& uplink_;
  net::Link& downlink_;
  Config cfg_;
  bool running_ = false;
  double down_bps_ = 0;
  double up_bps_ = 0;
  sim::Time delay_ = 0;
  bool blocked_ = false;
  std::int64_t blockage_bursts_ = 0;
  std::vector<sim::Time> blockage_log_;
};

/// Builds a client<->core duplex pair shaped like `profile` inside `net`,
/// returning the modulator that keeps it moving. The caller owns the links
/// via the network; the modulator must be kept alive and started.
struct CellularAttachment {
  net::Link* uplink;
  net::Link* downlink;
  std::unique_ptr<CellularModulator> modulator;
};

CellularAttachment attach_cellular(net::Network& net, net::NodeId client, net::NodeId tower,
                                   const CellularProfile& profile, std::uint64_t seed);

}  // namespace arnet::wireless
