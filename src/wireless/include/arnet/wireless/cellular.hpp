#pragma once

#include <string>

#include "arnet/net/link.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"

namespace arnet::wireless {

/// Stochastic access-network profile: everyday (not theoretical) behavior of
/// a radio technology, calibrated to the measurements the paper cites
/// (OpenSignal / SpeedTest / Xu et al., §IV-A).
struct CellularProfile {
  std::string name;
  double mean_down_bps;
  double mean_up_bps;
  /// Log-normal sigma of the rate process ("abrupt changes of several
  /// orders of magnitude" for HSPA+).
  double rate_sigma;
  sim::Time base_one_way_delay;   ///< per-direction radio+core latency
  sim::Time delay_jitter;         ///< stddev of the delay process
  sim::Time spike_extra_delay;    ///< occasional latency spike magnitude
  double spike_probability;       ///< per-update chance of a spike
  std::size_t uplink_queue_packets;  ///< oversized on real cellular uplinks

  /// HSPA+ as measured: ~0.7-3.5 Mb/s down, ~1.5 Mb/s up, 110-130 ms RTT,
  /// spikes to 800 ms (Xu et al. Singapore study).
  static CellularProfile hspa_plus();
  /// LTE as measured: ~12-20 Mb/s down, ~8 Mb/s up, 66-85 ms RTT.
  static CellularProfile lte();
  /// LTE under ideal lab conditions (the "advertised" row of §IV-A2).
  static CellularProfile lte_theoretical();
  /// 5G per the NGMN white paper AR KPIs: 300/50 Mb/s, 10 ms end-to-end.
  static CellularProfile fiveg_kpi();
};

/// Attaches to an uplink/downlink Link pair and modulates their rate and
/// delay with a log-normal rate process plus delay jitter and spikes, turning
/// static point-to-point pipes into everyday cellular behavior.
class CellularModulator {
 public:
  struct Config {
    CellularProfile profile;
    sim::Time update_interval = sim::milliseconds(100);
  };

  CellularModulator(sim::Simulator& sim, sim::Rng rng, net::Link& uplink, net::Link& downlink,
                    Config cfg);

  void start();
  void stop() { running_ = false; }

  double current_down_bps() const { return down_bps_; }
  double current_up_bps() const { return up_bps_; }
  sim::Time current_one_way_delay() const { return delay_; }

 private:
  void tick();

  sim::Simulator& sim_;
  sim::Rng rng_;
  net::Link& uplink_;
  net::Link& downlink_;
  Config cfg_;
  bool running_ = false;
  double down_bps_ = 0;
  double up_bps_ = 0;
  sim::Time delay_ = 0;
};

/// Builds a client<->core duplex pair shaped like `profile` inside `net`,
/// returning the modulator that keeps it moving. The caller owns the links
/// via the network; the modulator must be kept alive and started.
struct CellularAttachment {
  net::Link* uplink;
  net::Link* downlink;
  std::unique_ptr<CellularModulator> modulator;
};

CellularAttachment attach_cellular(net::Network& net, net::NodeId client, net::NodeId tower,
                                   const CellularProfile& profile, std::uint64_t seed);

}  // namespace arnet::wireless
