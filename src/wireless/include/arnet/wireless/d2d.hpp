#pragma once

#include <string>

#include "arnet/net/link.hpp"
#include "arnet/sim/time.hpp"

namespace arnet::wireless {

/// Device-to-device technologies compared in the paper (§IV-A3/A5, §VI-E):
/// WiFi Direct (unlicensed, ~200 m, up to 500 Mb/s, strongly mobility
/// dependent) and LTE Direct (licensed, ~1 km, up to 1 Gb/s, not deployed).
enum class D2dTechnology { kWifiDirect, kLteDirect };

struct D2dParams {
  std::string name;
  double max_rate_bps;
  double range_m;
  sim::Time base_delay;
  /// Energy model (relative units per MB): the paper's cited comparison —
  /// WiFi Direct wins for small transfers, LTE Direct for dense crowds.
  double energy_per_mb;
  double discovery_energy;  ///< cost of finding nearby peers
};

D2dParams d2d_params(D2dTechnology tech);

/// Achievable D2D rate at `distance_m`, derated by relative mobility
/// (0 = static, 1 = both peers walking; cf. the opportunistic video
/// compression measurements the paper cites for WiFi Direct).
double d2d_rate_bps(D2dTechnology tech, double distance_m, double mobility = 0.0);

/// One-way latency at `distance_m` (propagation is negligible; this models
/// MAC contention growing near the range edge).
sim::Time d2d_delay(D2dTechnology tech, double distance_m);

/// Link::Config for a D2D pipe between two devices at `distance_m`.
net::Link::Config d2d_link_config(D2dTechnology tech, double distance_m,
                                  double mobility = 0.0);

/// Total energy (relative units) to discover `peers` nearby devices and
/// move `mb` megabytes — the paper's §IV-A5 comparison: "LTE-Direct is able
/// to provide the most energy efficient communication scheme when the
/// number of user is relatively high ... WiFi-direct presents a better
/// energy efficiency in case of small amount of data".
double d2d_energy(D2dTechnology tech, double mb, int peers);

/// The cheaper technology for this workload.
D2dTechnology d2d_energy_winner(double mb, int peers);

}  // namespace arnet::wireless
