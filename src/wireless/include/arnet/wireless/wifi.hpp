#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "arnet/net/packet.hpp"
#include "arnet/obs/registry.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/sim/time.hpp"
#include "arnet/trace/trace.hpp"

namespace arnet::wireless {

/// 802.11 MAC/PHY overhead parameters. Defaults approximate 802.11a/g OFDM
/// timing; the absolute values matter less than the structure: every frame
/// pays fixed airtime (DIFS + backoff + preamble + SIFS + ACK) plus payload
/// serialization at the *station's own* PHY rate.
struct WifiMacParams {
  sim::Time difs = sim::microseconds(34);
  sim::Time sifs = sim::microseconds(16);
  sim::Time slot = sim::microseconds(9);
  std::uint32_t cw_min_slots = 15;       ///< mean backoff = cw_min/2 slots
  sim::Time phy_preamble = sim::microseconds(20);
  sim::Time ack_duration = sim::microseconds(44);  ///< ACK at control rate
  std::int32_t mac_header_bytes = 34;
  std::uint32_t retry_limit = 7;
  /// RTS/CTS handshake before each data frame (hidden-terminal protection;
  /// costs two control frames + SIFS gaps of airtime per exchange).
  bool rts_cts = false;
  sim::Time rts_duration = sim::microseconds(52);
  sim::Time cts_duration = sim::microseconds(44);
};

/// Shared-medium 802.11 DCF cell: one AP plus stations, each with its own
/// PHY rate. DCF gives every backlogged transmitter an (approximately) equal
/// share of transmission *opportunities* — not airtime — which is exactly the
/// mechanism behind the performance anomaly of Fig. 2 (Heusse et al. 2003):
/// one slow station drags every station's throughput down to roughly the
/// slow station's level.
///
/// The cell is deliberately standalone (it does not pretend to be a
/// point-to-point Link): frames are handed in per station and delivered to
/// per-entity sinks. kApId addresses the AP; the AP contends for the medium
/// like any station.
class WifiCell {
 public:
  static constexpr std::uint32_t kApId = 0;

  using Sink = std::function<void(net::Packet&&, std::uint32_t from)>;

  struct Config {
    WifiMacParams mac;
    double ap_phy_bps = 54e6;
    std::size_t queue_packets = 200;
    double frame_loss = 0.0;  ///< per-attempt corruption probability
  };

  WifiCell(sim::Simulator& sim, sim::Rng rng, Config cfg);

  /// Register a station; returns its id (>= 1).
  std::uint32_t add_station(double phy_bps, std::string name = "sta");

  /// Change a station's PHY rate (rate adaptation as it moves).
  void set_phy_rate(std::uint32_t station, double phy_bps);

  /// Deliver sink for frames addressed to `entity` (station id or kApId).
  void set_sink(std::uint32_t entity, Sink sink);

  /// Enqueue a frame from `from` to `to` (station->AP, AP->station, or
  /// station->station which relays through the AP, costing double airtime).
  void send(std::uint32_t from, std::uint32_t to, net::Packet p);

  std::int64_t delivered_bytes(std::uint32_t entity) const;
  std::int64_t delivered_packets(std::uint32_t entity) const;
  std::int64_t dropped_frames() const { return dropped_; }

  /// Mean medium occupancy of one `bytes`-sized frame at `phy_bps`.
  sim::Time frame_airtime(std::int32_t bytes, double phy_bps) const;

  /// Publish the cell's behavior into `reg`: per-entity
  /// "wifi.airtime_share" gauges (fraction of elapsed time this sender held
  /// the medium, entity "<entity>/<name>"), "wifi.sta_rate_bps" gauges, and
  /// delivered bytes/packets counters. The registry must outlive the cell.
  void attach_obs(obs::MetricsRegistry& reg, std::string entity);

  /// Record span events for every frame crossing the cell: kEnqueue on
  /// send(), kTxStart when the frame wins contention, kRx on delivery, and
  /// kDrop with a distinct reason for each discard path ("queue-full",
  /// "retry-limit", "relay-queue-full"). Drops also surface as
  /// "wifi.drop.<reason>" counters when attach_obs is active.
  void attach_trace(trace::Tracer& tracer, std::string name);

 private:
  struct Entity {
    std::string name;
    double phy_bps = 54e6;
    std::deque<std::pair<std::uint32_t, net::Packet>> queue;  ///< (dst, frame)
    Sink sink;
    std::int64_t delivered_bytes = 0;
    std::int64_t delivered_packets = 0;
    sim::Time airtime = 0;  ///< cumulative medium occupancy as sender
  };

  void try_start_transmission();
  void finish_transmission(std::uint32_t from, std::uint32_t to, net::Packet p);
  void record_trace(trace::EventKind kind, const net::Packet& p, const char* reason = nullptr);
  void drop_frame(const net::Packet& p, const char* reason);
  std::string entity_label(std::uint32_t id, const Entity& e) const;
  void publish_obs(std::uint32_t id, const Entity& e);

  sim::Simulator& sim_;
  sim::Rng rng_;
  Config cfg_;
  std::map<std::uint32_t, Entity> entities_;
  std::uint32_t next_station_ = 1;
  bool busy_ = false;
  std::uint32_t rr_cursor_ = 0;  ///< round-robin fairness over entity ids
  std::int64_t dropped_ = 0;

  // Observability (attach_obs): null when not attached.
  obs::MetricsRegistry* metrics_ = nullptr;
  std::string obs_entity_;

  // Tracing (attach_trace): null when not attached.
  trace::Tracer* tracer_ = nullptr;
  trace::EntityId trace_entity_ = trace::kNoEntity;
};

}  // namespace arnet::wireless
