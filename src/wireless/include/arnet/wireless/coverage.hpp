#pragma once

#include "arnet/net/link.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"

namespace arnet::wireless {

/// Urban WiFi usability process (paper §IV-A4, Wi2Me study): even where APs
/// are visible ~98.9% of the time, a *usable* Internet connection exists only
/// ~53.8% of the time because of sparse open APs and multi-second
/// association/handover gaps. Modeled as an alternating renewal process of
/// usable and gap periods that toggles a Link pair up/down.
class CoverageProcess {
 public:
  struct Config {
    sim::Time mean_usable = sim::seconds(30);
    sim::Time mean_gap = sim::seconds(26);  ///< ~53.8% duty cycle
    sim::Time min_gap = sim::seconds(2);    ///< handover takes seconds
    bool start_usable = true;
  };

  /// Calibrated to the Wi2Me measurements for mobile WiFi.
  static Config wi2me_wifi();
  /// Cellular stays associated through movement; rare short outages.
  static Config cellular();

  CoverageProcess(sim::Simulator& sim, sim::Rng rng, net::Link& up, net::Link& down, Config cfg);

  void start();
  void stop() { running_ = false; }

  bool usable() const { return usable_; }
  double usable_fraction(sim::Time now) const {
    return now > 0 ? sim::to_seconds(usable_time_ + (usable_ ? now - last_toggle_ : 0)) /
                         sim::to_seconds(now)
                   : 0.0;
  }
  int handovers() const { return handovers_; }

 private:
  void schedule_next();

  sim::Simulator& sim_;
  sim::Rng rng_;
  net::Link& up_;
  net::Link& down_;
  Config cfg_;
  bool running_ = false;
  bool usable_ = true;
  sim::Time last_toggle_ = 0;
  sim::Time usable_time_ = 0;
  int handovers_ = 0;
};

}  // namespace arnet::wireless
