#pragma once

#include <string>
#include <vector>

namespace arnet::wireless {

/// One row of the paper's §IV-A wireless survey: advertised capability vs
/// everyday measured behavior (OpenSignal / SpeedTest / peer-reviewed
/// studies cited in the text). Used by the `sec4_network_survey` bench both
/// as the reference column and to parameterize the simulated access models.
struct SurveyRow {
  std::string technology;
  double theoretical_down_mbps;
  double theoretical_up_mbps;
  double measured_down_mbps;   ///< midpoint of the cited measured range
  double measured_up_mbps;
  double measured_rtt_ms;
  std::string notes;
};

inline std::vector<SurveyRow> wireless_survey() {
  return {
      {"HSPA+", 42.0, 22.0, 2.1, 1.5, 120.0,
       "0.66-3.48 Mb/s down, 110-131 ms RTT (US); spikes to 800 ms (SG)"},
      {"LTE", 326.0, 75.0, 12.3, 7.9, 75.0,
       "6.6-12.3 Mb/s down (US avg), 19.6/7.9 Mb/s (SpeedTest), 66-85 ms RTT"},
      {"LTE Direct", 1000.0, 1000.0, 0.0, 0.0, 0.0,
       "D2D, ~1 km range; not commercially deployed"},
      {"802.11n", 600.0, 600.0, 6.7, 6.7, 150.0,
       "OpenSignal everyday download average; ~ms in a clean home cell"},
      {"802.11ac", 1300.0, 1300.0, 33.4, 33.4, 150.0,
       "OpenSignal everyday download average"},
      {"WiFi Direct", 500.0, 500.0, 0.0, 0.0, 0.0,
       "D2D, ~200 m; strongly mobility-dependent"},
      {"5G (NGMN AR KPI)", 1000.0, 1000.0, 300.0, 50.0, 10.0,
       "target: 300/50 Mb/s at 10 ms e2e, 0-100 km/h"},
  };
}

/// §III-B bandwidth requirement estimates reproduced by the
/// `sec3_bandwidth_requirements` bench.
struct BandwidthEstimate {
  std::string source;
  double mbps;
  std::string notes;
};

std::vector<BandwidthEstimate> mar_bandwidth_estimates();

}  // namespace arnet::wireless
