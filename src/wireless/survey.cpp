#include "arnet/wireless/survey.hpp"

namespace arnet::wireless {

std::vector<BandwidthEstimate> mar_bandwidth_estimates() {
  // Values as stated in §III-B of the paper (midpoints of quoted ranges).
  return {
      {"Human eye -> brain (foveal only)", 8.0, "6-10 Mb/s, central 2 deg of retina"},
      {"Raw FOV-scaled camera estimate", 10'500.0, "9-12 Gb/s for a 60-70 deg camera FOV"},
      {"Uncompressed 4K 60 FPS 12 bpp video", 711.0, "paper's stated bitrate"},
      {"Lossy-compressed 4K 60 FPS video", 25.0, "20-30 Mb/s"},
      {"Minimum for advanced AR operations", 10.0, "paper's working estimate"},
      {"Future stereo/IR multi-feed flows", 300.0, "\"several hundreds of Mbps\""},
  };
}

}  // namespace arnet::wireless
