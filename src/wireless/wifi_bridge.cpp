#include "arnet/wireless/wifi_bridge.hpp"

#include <algorithm>

namespace arnet::wireless {

void WifiSharedMedium::attach(net::Link& uplink, double phy_bps, std::string name) {
  Station s;
  s.uplink = &uplink;
  s.phy_bps = phy_bps;
  s.name = std::move(name);
  stations_.push_back(std::move(s));
}

sim::Time WifiSharedMedium::frame_airtime(double phy_bps) const {
  const WifiMacParams& m = cfg_.mac;
  sim::Time backoff = m.slot * (m.cw_min_slots / 2);
  sim::Time payload =
      sim::transmission_delay(cfg_.reference_frame_bytes + m.mac_header_bytes, phy_bps);
  sim::Time handshake = m.rts_cts ? m.rts_duration + m.sifs + m.cts_duration + m.sifs : 0;
  return m.difs + backoff + handshake + m.phy_preamble + payload + m.sifs + m.ack_duration;
}

double WifiSharedMedium::solo_goodput_bps(double phy_bps) const {
  return cfg_.reference_frame_bytes * 8.0 / sim::to_seconds(frame_airtime(phy_bps));
}

void WifiSharedMedium::tick() {
  if (!running_) return;
  // DCF equal opportunities among *backlogged* stations: over one round,
  // each backlogged station sends one reference frame, occupying
  // airtime(phy_i); everyone's goodput is frame_bytes / sum(airtimes).
  sim::Time round = 0;
  std::size_t backlogged = 0;
  for (const Station& s : stations_) {
    if (s.uplink->is_up() && !s.uplink->queue().empty()) {
      round += frame_airtime(s.phy_bps);
      ++backlogged;
    }
  }
  for (Station& s : stations_) {
    double rate;
    if (backlogged == 0 || s.uplink->queue().empty()) {
      // Idle medium: a newly active station starts at its solo rate.
      rate = solo_goodput_bps(s.phy_bps);
    } else if (s.uplink->is_up()) {
      rate = cfg_.reference_frame_bytes * 8.0 / sim::to_seconds(round);
    } else {
      rate = s.last_rate;
    }
    rate = std::max(rate, 16e3);
    s.last_rate = rate;
    s.uplink->set_rate(rate);
  }
  sim_.after(cfg_.update_interval, [this] { tick(); });
}

}  // namespace arnet::wireless
