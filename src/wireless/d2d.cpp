#include "arnet/wireless/d2d.hpp"

#include <algorithm>
#include <cmath>

namespace arnet::wireless {

D2dParams d2d_params(D2dTechnology tech) {
  switch (tech) {
    case D2dTechnology::kWifiDirect:
      return {"WiFi Direct", 500e6, 200.0, sim::milliseconds(2), 0.8, 2.0};
    case D2dTechnology::kLteDirect:
      return {"LTE Direct", 1e9, 1000.0, sim::milliseconds(1), 1.8, 0.5};
  }
  return {};
}

double d2d_rate_bps(D2dTechnology tech, double distance_m, double mobility) {
  D2dParams p = d2d_params(tech);
  if (distance_m >= p.range_m) return 0.0;
  // Smooth rate falloff with distance (log-distance path loss mapped onto
  // discrete PHY rates in reality) and a mobility derating of up to 70%,
  // matching the strong dependence observed experimentally for WiFi Direct.
  double distance_factor = std::pow(1.0 - distance_m / p.range_m, 2.5);
  double mobility_factor =
      1.0 - std::clamp(mobility, 0.0, 1.0) * (tech == D2dTechnology::kWifiDirect ? 0.7 : 0.4);
  return p.max_rate_bps * distance_factor * mobility_factor;
}

sim::Time d2d_delay(D2dTechnology tech, double distance_m) {
  D2dParams p = d2d_params(tech);
  double edge = std::clamp(distance_m / p.range_m, 0.0, 1.0);
  return p.base_delay + sim::from_milliseconds(4.0 * edge * edge);
}

double d2d_energy(D2dTechnology tech, double mb, int peers) {
  D2dParams p = d2d_params(tech);
  return p.discovery_energy * peers + p.energy_per_mb * mb;
}

D2dTechnology d2d_energy_winner(double mb, int peers) {
  return d2d_energy(D2dTechnology::kWifiDirect, mb, peers) <=
                 d2d_energy(D2dTechnology::kLteDirect, mb, peers)
             ? D2dTechnology::kWifiDirect
             : D2dTechnology::kLteDirect;
}

net::Link::Config d2d_link_config(D2dTechnology tech, double distance_m, double mobility) {
  net::Link::Config cfg;
  cfg.rate_bps = std::max(d2d_rate_bps(tech, distance_m, mobility), 1e3);
  cfg.delay = d2d_delay(tech, distance_m);
  cfg.queue_packets = 200;
  cfg.name = d2d_params(tech).name;
  return cfg;
}

}  // namespace arnet::wireless
