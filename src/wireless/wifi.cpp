#include "arnet/wireless/wifi.hpp"

#include <utility>

namespace arnet::wireless {

WifiCell::WifiCell(sim::Simulator& sim, sim::Rng rng, Config cfg)
    : sim_(sim), rng_(std::move(rng)), cfg_(cfg) {
  Entity ap;
  ap.name = "ap";
  ap.phy_bps = cfg_.ap_phy_bps;
  entities_.emplace(kApId, std::move(ap));
}

std::uint32_t WifiCell::add_station(double phy_bps, std::string name) {
  std::uint32_t id = next_station_++;
  Entity e;
  e.name = std::move(name);
  e.phy_bps = phy_bps;
  entities_.emplace(id, std::move(e));
  return id;
}

void WifiCell::set_phy_rate(std::uint32_t station, double phy_bps) {
  entities_.at(station).phy_bps = phy_bps;
}

void WifiCell::set_sink(std::uint32_t entity, Sink sink) {
  entities_.at(entity).sink = std::move(sink);
}

sim::Time WifiCell::frame_airtime(std::int32_t bytes, double phy_bps) const {
  const WifiMacParams& m = cfg_.mac;
  sim::Time backoff = m.slot * (m.cw_min_slots / 2);
  sim::Time payload =
      sim::transmission_delay(bytes + m.mac_header_bytes, phy_bps);
  sim::Time handshake = m.rts_cts ? m.rts_duration + m.sifs + m.cts_duration + m.sifs : 0;
  return m.difs + backoff + handshake + m.phy_preamble + payload + m.sifs + m.ack_duration;
}

void WifiCell::attach_obs(obs::MetricsRegistry& reg, std::string entity) {
  metrics_ = &reg;
  obs_entity_ = std::move(entity);
}

void WifiCell::attach_trace(trace::Tracer& tracer, std::string name) {
  tracer_ = &tracer;
  trace_entity_ = tracer.register_entity(std::move(name));
}

void WifiCell::record_trace(trace::EventKind kind, const net::Packet& p, const char* reason) {
  if (tracer_ == nullptr) return;
  trace::TraceEvent e;
  e.time = sim_.now();
  e.uid = p.uid;
  e.size = p.size_bytes;
  e.trace_id = p.trace.trace_id;
  e.span_id = p.trace.span_id;
  e.kind = kind;
  e.reason = reason;
  tracer_->record(trace_entity_, e);
}

void WifiCell::drop_frame(const net::Packet& p, const char* reason) {
  ++dropped_;
  record_trace(trace::EventKind::kDrop, p, reason);
  if (metrics_) {
    metrics_->counter(std::string("wifi.drop.") + reason, obs_entity_).add();
  }
}

std::string WifiCell::entity_label(std::uint32_t id, const Entity& e) const {
  return obs_entity_ + "/" + e.name + ":" + std::to_string(id);
}

void WifiCell::publish_obs(std::uint32_t id, const Entity& e) {
  if (!metrics_) return;
  std::string label = entity_label(id, e);
  metrics_->gauge("wifi.sta_rate_bps", label).set(e.phy_bps);
  if (sim_.now() > 0) {
    metrics_->gauge("wifi.airtime_share", label)
        .set(sim::to_seconds(e.airtime) / sim::to_seconds(sim_.now()));
  }
}

void WifiCell::send(std::uint32_t from, std::uint32_t to, net::Packet p) {
  Entity& e = entities_.at(from);
  if (e.queue.size() >= cfg_.queue_packets) {
    drop_frame(p, "queue-full");
    return;
  }
  record_trace(trace::EventKind::kEnqueue, p);
  e.queue.emplace_back(to, std::move(p));
  try_start_transmission();
}

void WifiCell::try_start_transmission() {
  if (busy_) return;
  // DCF fairness: every backlogged entity wins the contention equally often.
  // Round-robin over entity ids approximates that without simulating
  // per-slot backoff.
  const std::size_t n = entities_.size();
  Entity* winner = nullptr;
  std::uint32_t winner_id = 0;
  for (std::size_t step = 0; step < n; ++step) {
    rr_cursor_ = (rr_cursor_ + 1) % n;
    auto it = entities_.begin();
    std::advance(it, rr_cursor_);
    if (!it->second.queue.empty()) {
      winner = &it->second;
      winner_id = it->first;
      break;
    }
  }
  if (!winner) return;

  busy_ = true;
  auto [to, pkt] = std::move(winner->queue.front());
  winner->queue.pop_front();
  record_trace(trace::EventKind::kTxStart, pkt);

  // Occupancy = airtime of the frame at the sender's PHY rate, plus full
  // retries on corruption (up to the retry limit).
  sim::Time occupancy = frame_airtime(pkt.size_bytes, winner->phy_bps);
  bool delivered = true;
  if (cfg_.frame_loss > 0.0) {
    std::uint32_t attempts = 1;
    while (rng_.bernoulli(cfg_.frame_loss) && attempts < cfg_.mac.retry_limit) {
      ++attempts;
      occupancy += frame_airtime(pkt.size_bytes, winner->phy_bps);
    }
    if (attempts >= cfg_.mac.retry_limit && rng_.bernoulli(cfg_.frame_loss)) {
      delivered = false;
      drop_frame(pkt, "retry-limit");
    }
  }

  winner->airtime += occupancy;
  sim_.after(occupancy, [this, winner_id, to, delivered, p = std::move(pkt)]() mutable {
    busy_ = false;
    if (auto it = entities_.find(winner_id); it != entities_.end()) {
      publish_obs(winner_id, it->second);
    }
    if (delivered) finish_transmission(winner_id, to, std::move(p));
    try_start_transmission();
  });
}

void WifiCell::finish_transmission(std::uint32_t from, std::uint32_t to, net::Packet p) {
  // Station-to-station frames relay via the AP: requeue from the AP, paying
  // a second medium occupancy, as in infrastructure mode.
  if (from != kApId && to != kApId) {
    Entity& ap = entities_.at(kApId);
    if (ap.queue.size() >= cfg_.queue_packets) {
      drop_frame(p, "relay-queue-full");
      return;
    }
    ap.queue.emplace_back(to, std::move(p));
    return;
  }
  auto it = entities_.find(to);
  if (it == entities_.end()) return;
  record_trace(trace::EventKind::kRx, p);
  it->second.delivered_bytes += p.size_bytes;
  ++it->second.delivered_packets;
  if (metrics_) {
    std::string label = entity_label(to, it->second);
    metrics_->counter("wifi.delivered_bytes", label).add(p.size_bytes);
    metrics_->counter("wifi.delivered_packets", label).add();
  }
  if (it->second.sink) it->second.sink(std::move(p), from);
}

std::int64_t WifiCell::delivered_bytes(std::uint32_t entity) const {
  return entities_.at(entity).delivered_bytes;
}

std::int64_t WifiCell::delivered_packets(std::uint32_t entity) const {
  return entities_.at(entity).delivered_packets;
}

}  // namespace arnet::wireless
