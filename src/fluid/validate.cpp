#include "arnet/fluid/validate.hpp"

#include <cmath>

#include "arnet/check/assert.hpp"

namespace arnet::fluid {

FluidConfig fluid_cell_config(const fleet::CellConfig& cell, std::uint64_t seed) {
  ARNET_CHECK(!cell.autoscale, "fluid cells have no autoscaler counterpart");
  const fleet::FleetConfig packet = fleet::cell_fleet_config(cell, seed);
  FluidConfig cfg;
  cfg.seed = seed;
  cfg.population = packet.population;
  cfg.sites = packet.sites;
  cfg.latency = packet.latency;
  cfg.servers = packet.initial_servers;
  cfg.server_profile = packet.server_profile;
  cfg.batch = packet.batch;
  cfg.admission = packet.admission;
  cfg.access_rate_bps = packet.access_rate_bps;
  cfg.downgrade_fps_factor = packet.downgrade_fps_factor;
  cfg.duration = cell.duration;
  cfg.tick = sim::milliseconds(10);
  cfg.entity = cell.name + "/fluid";
  return cfg;
}

ValidationRow run_validation_level(double users, sim::Time duration,
                                   std::uint64_t seed) {
  fleet::CellConfig cell;
  cell.name = "validate/u" + std::to_string(static_cast<int>(users));
  cell.offered_users = users;
  cell.admit = false;  // open loop: compare the serving paths, not control loops
  cell.duration = duration;

  ValidationRow row;
  row.users = users;
  row.packet = fleet::run_capacity_cell(cell, seed);
  FluidCell fluid(fluid_cell_config(cell, seed));
  row.fluid = fluid.run();
  const auto rel = [](double model, double reference) {
    return reference > 0.0 ? 100.0 * std::abs(model - reference) / reference : 0.0;
  };
  row.p99_delta_pct = rel(row.fluid.p99_ms, row.packet.p99_ms);
  row.goodput_delta_pct = rel(row.fluid.served_fps, row.packet.served_fps);
  return row;
}

}  // namespace arnet::fluid
