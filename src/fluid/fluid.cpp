#include "arnet/fluid/fluid.hpp"

#include <algorithm>
#include <cmath>

#include "arnet/check/assert.hpp"
#include "arnet/obs/registry.hpp"
#include "arnet/runner/experiment.hpp"
#include "arnet/slo/slo.hpp"

namespace arnet::fluid {

namespace {

/// Same slot rule as PopulationModel::diurnal_multiplier: the fluid and
/// packet models must agree on the instantaneous arrival rate or the
/// cross-validation would measure the diurnal sampling, not the serving path.
double diurnal_multiplier(const fleet::PopulationConfig& cfg, sim::Time t) {
  if (cfg.profile.active()) return cfg.profile.multiplier(t);
  if (cfg.diurnal.empty() || cfg.diurnal_period <= 0) return 1.0;
  sim::Time phase = t % cfg.diurnal_period;
  auto slot = static_cast<std::size_t>(
      static_cast<double>(phase) / static_cast<double>(cfg.diurnal_period) *
      static_cast<double>(cfg.diurnal.size()));
  return cfg.diurnal[std::min(slot, cfg.diurnal.size() - 1)];
}

/// obs::Histogram's log-bucket rule (bucket_of is private; the layout is a
/// documented stable export format, kBucketsPerDecade buckets per decade
/// with bucket 0 as underflow).
int log_bucket_of(double v) {
  if (!(v >= 1.0)) return 0;
  int idx = 1 + static_cast<int>(
                    std::floor(std::log10(v) * obs::Histogram::kBucketsPerDecade));
  return std::min(idx, obs::Histogram::kBucketCount - 1);
}

/// Weighted quantile over (value, weight) pairs sorted by value.
double quantile_sorted(const std::vector<std::pair<double, double>>& sorted,
                       double total_weight, double p) {
  if (sorted.empty() || total_weight <= 0.0) return 0.0;
  const double target = p * total_weight;
  double cum = 0.0;
  for (const auto& [v, w] : sorted) {
    cum += w;
    if (cum >= target) return v;
  }
  return sorted.back().first;
}

}  // namespace

FluidCell::FluidCell(FluidConfig cfg)
    : cfg_(std::move(cfg)),
      // Same stream convention as the packet-level PopulationModel: the
      // arrival/MMPP point process draws from derive_seed(seed, 0), so a
      // sharded city's per-cell streams are exactly the audited
      // derive_seed(root, cell) chain.
      arrivals_(runner::derive_seed(cfg_.seed, 0)),
      admission_(cfg_.admission) {
  ARNET_CHECK(cfg_.servers >= 1, "fluid cell needs at least one server");
  ARNET_CHECK(cfg_.tick > 0, "fluid tick must be positive");
  ARNET_CHECK(cfg_.duration >= cfg_.tick, "fluid duration shorter than one tick");
  ARNET_CHECK(cfg_.rtt_quantiles >= 1 && cfg_.wait_quantiles >= 1,
              "fluid probe grid needs at least 1x1");
  ARNET_CHECK(!cfg_.population.device_mix.empty(), "population needs a device mix");
  ARNET_CHECK(!cfg_.population.app_mix.empty(), "population needs an app mix");

  double app_total = 0.0;
  fps_mean_ = 0.0;
  server_work_ms_ = 0.0;
  for (const fleet::AppMixEntry& e : cfg_.population.app_mix) app_total += e.weight;
  for (const fleet::AppMixEntry& e : cfg_.population.app_mix) {
    const double w = e.weight / app_total;
    fps_mean_ += w * e.app.fps;
    server_work_ms_ += w * sim::to_milliseconds(e.app.server_cost);
  }
  server_scale_ = mar::device_profile(cfg_.server_profile).compute_scale;
  lanes_ = static_cast<int>(cfg_.servers) * std::max(1, cfg_.batch.executors);
  const double b_max = cfg_.batch.enabled ? cfg_.batch.max_batch : 1;
  mu_max_ = static_cast<double>(lanes_) * b_max / (service_ms(b_max) / 1000.0);

  build_probes();
  occupancy_.assign(static_cast<std::size_t>(std::max(1, cfg_.occupancy_slots)), 0.0);
  lat_mass_.assign(kFineBins + kCoarseBins + 1, 0.0);
  sorted_scratch_.reserve(probes_.size());
}

double FluidCell::service_ms(double occupancy) const {
  // The EdgeServer batch curve: setup + w_max + marginal * (w_sum - w_max),
  // at the app-mix mean item cost and the server's compute scale.
  const double setup_ms = sim::to_milliseconds(cfg_.batch.setup);
  const double b = std::max(1.0, occupancy);
  return server_scale_ *
         (setup_ms + server_work_ms_ * (1.0 + cfg_.batch.marginal * (b - 1.0)));
}

edge::GeoPoint FluidCell::site_pos(std::size_t server_index) const {
  if (!cfg_.sites.empty()) return cfg_.sites[server_index % cfg_.sites.size()].pos;
  // Same default deployment as Fleet::site_pos: a 2x2 grid, cycled.
  const double a = cfg_.population.area_km;
  const std::size_t cell = server_index % 4;
  return {a * (0.25 + 0.5 * static_cast<double>(cell % 2)),
          a * (0.25 + 0.5 * static_cast<double>(cell / 2))};
}

void FluidCell::build_probes() {
  // RTT distribution of a uniformly placed user against the (cycled) server
  // sites. The balancer picks by queue depth, not proximity, so the serving
  // site is effectively independent of the user's position — exactly a
  // uniform position vs uniform server draw.
  std::vector<double> rtt_ms;
  constexpr int kGrid = 48;
  rtt_ms.reserve(kGrid * kGrid * cfg_.servers);
  const double a = cfg_.population.area_km;
  for (int i = 0; i < kGrid; ++i) {
    for (int j = 0; j < kGrid; ++j) {
      const edge::GeoPoint pos{a * (i + 0.5) / kGrid, a * (j + 0.5) / kGrid};
      for (std::size_t s = 0; s < cfg_.servers; ++s) {
        rtt_ms.push_back(sim::to_milliseconds(cfg_.latency.rtt(pos, site_pos(s))));
      }
    }
  }
  std::sort(rtt_ms.begin(), rtt_ms.end());

  double dev_total = 0.0, app_total = 0.0;
  for (const fleet::DeviceMixEntry& d : cfg_.population.device_mix) dev_total += d.weight;
  for (const fleet::AppMixEntry& e : cfg_.population.app_mix) app_total += e.weight;

  const int R = cfg_.rtt_quantiles;
  const int W = cfg_.wait_quantiles;
  for (const fleet::DeviceMixEntry& d : cfg_.population.device_mix) {
    for (std::size_t ai = 0; ai < cfg_.population.app_mix.size(); ++ai) {
      const fleet::AppMixEntry& e = cfg_.population.app_mix[ai];
      const double stage_ms = sim::to_milliseconds(
          mar::scaled_cost(mar::device_profile(d.cls), e.app.device_cost));
      const double tx_ms =
          sim::to_milliseconds(sim::transmission_delay(e.app.request_bytes,
                                                       cfg_.access_rate_bps) +
                               sim::transmission_delay(e.app.result_bytes,
                                                       cfg_.access_rate_bps));
      for (int r = 0; r < R; ++r) {
        const double q = (r + 0.5) / R;
        const double rtt =
            rtt_ms[std::min(rtt_ms.size() - 1,
                            static_cast<std::size_t>(q * static_cast<double>(
                                                             rtt_ms.size())))];
        for (int w = 0; w < W; ++w) {
          Probe p;
          p.weight = (d.weight / dev_total) * (e.weight / app_total) / (R * W);
          p.base_ms = stage_ms + rtt + tx_ms;
          p.wait_frac = (w + 0.5) / W;
          p.deadline_ms = sim::to_milliseconds(e.app.deadline);
          p.app = static_cast<int>(ai);
          probes_.push_back(p);
        }
      }
    }
  }
}

int FluidCell::lat_bin(double ms) {
  if (!(ms > 0.0)) return 0;
  if (ms < 1000.0) return static_cast<int>(ms * 10.0);
  if (ms < 60000.0) return kFineBins + static_cast<int>((ms - 1000.0) / 10.0);
  return kFineBins + kCoarseBins;
}

double FluidCell::lat_bin_mid(int bin) {
  if (bin < kFineBins) return (bin + 0.5) * 0.1;
  if (bin < kFineBins + kCoarseBins) return 1000.0 + (bin - kFineBins + 0.5) * 10.0;
  return 60000.0;
}

void FluidCell::record_mass(double latency_ms, double mass) {
  lat_mass_[static_cast<std::size_t>(lat_bin(latency_ms))] += mass;
  lat_sum_ += latency_ms * mass;
  if (!lat_any_) {
    lat_min_ = lat_max_ = latency_ms;
    lat_any_ = true;
  } else {
    lat_min_ = std::min(lat_min_, latency_ms);
    lat_max_ = std::max(lat_max_, latency_ms);
  }
}

double FluidCell::lat_quantile(double p) const {
  if (served_mass_ <= 0.0) return 0.0;
  const double target = std::clamp(p, 0.0, 1.0) * served_mass_;
  double cum = 0.0;
  for (std::size_t i = 0; i < lat_mass_.size(); ++i) {
    const double m = lat_mass_[i];
    if (m <= 0.0) continue;
    if (cum + m >= target) {
      return std::clamp(lat_bin_mid(static_cast<int>(i)), lat_min_, lat_max_);
    }
    cum += m;
  }
  return lat_max_;
}

void FluidCell::step() {
  const fleet::PopulationConfig& pop = cfg_.population;
  const double dt = sim::to_seconds(cfg_.tick);
  const sim::Time t0 = ticks_ * cfg_.tick;
  const sim::Time t_mid = t0 + cfg_.tick / 2;
  const sim::Time t_end = t0 + cfg_.tick;

  // 1. MMPP state, advanced lazily on the cell's derived stream (same dwell
  // distributions as the packet model; trajectories differ because the
  // packet model interleaves dwell and interarrival draws).
  if (pop.process == fleet::ArrivalProcess::kMmpp) {
    while (t0 >= state_until_) {
      burst_ = state_until_ == 0 ? false : !burst_;
      const double dwell = arrivals_.exponential(burst_ ? pop.burst_dwell_mean_s
                                                        : pop.calm_dwell_mean_s);
      state_until_ = std::max(t0, state_until_) + sim::from_seconds(dwell);
    }
  }

  // 2. Session arrivals this tick, routed by the live admission projection —
  // the same controller/interface the packet model consults per session,
  // here consulted once per tick for the tick's arriving mass.
  double rate = pop.base_arrivals_per_s * diurnal_multiplier(pop, t_mid);
  if (pop.process == fleet::ArrivalProcess::kMmpp && burst_) {
    rate *= pop.burst_multiplier;
  }
  const double arrive = rate * dt;
  arrivals_mass_ += arrive;
  const fleet::AdmissionDecision d = admission_.decide(t0, static_cast<std::uint64_t>(ticks_));
  double a_full = 0.0, a_deg = 0.0;
  switch (d) {
    case fleet::AdmissionDecision::kAdmit:
      a_full = arrive;
      admitted_mass_ += arrive;
      break;
    case fleet::AdmissionDecision::kDowngrade:
      a_deg = arrive;
      downgraded_mass_ += arrive;
      break;
    case fleet::AdmissionDecision::kReject:
      rejected_mass_ += arrive;
      break;
  }

  // 3. Population ODE, integrated exactly for a constant within-tick rate:
  // n(t+dt) = n e^{-dt/L} + a L (1 - e^{-dt/L}).
  const double L = std::max(1e-9, pop.mean_lifetime_s);
  const double decay = std::exp(-dt / L);
  n_full_ = n_full_ * decay + (a_full / dt) * L * (1.0 - decay);
  n_deg_ = n_deg_ * decay + (a_deg / dt) * L * (1.0 - decay);

  // 4. Offered frame flow and the serving backlog ODE.
  const double lam_f =
      (n_full_ + n_deg_ * cfg_.downgrade_fps_factor) * fps_mean_;
  const double f_in = lam_f * dt;
  const double cap = mu_max_ * dt;
  const double served = std::min(backlog_ + f_in, cap);
  backlog_ += f_in - served;
  const double t_mid_s = sim::to_seconds(t_mid);
  if (f_in > 0.0) queue_.emplace_back(t_mid_s, f_in);
  // Drain the served mass FIFO and take its mass-weighted entry time; frames
  // entering and leaving within the same tick wait zero.
  double w_queue_ms = 0.0;
  if (served > 0.0) {
    double drained = served, enter_sum = 0.0;
    while (drained > 0.0 && !queue_.empty()) {
      auto& [enter, mass] = queue_.front();
      const double take = std::min(mass, drained);
      enter_sum += enter * take;
      drained -= take;
      mass -= take;
      if (mass <= 1e-12) queue_.pop_front();
    }
    const double accounted = served - drained;
    if (accounted > 0.0) {
      w_queue_ms = 1000.0 * std::max(0.0, t_mid_s - enter_sum / accounted);
    }
  }

  // 5. Batch occupancy and waits for the tick's latency reconstruction.
  const double b_max = cfg_.batch.enabled ? cfg_.batch.max_batch : 1.0;
  const double lam_srv = lam_f / static_cast<double>(cfg_.servers);
  double b = 1.0, t_form_ms = 0.0;
  const bool saturated = backlog_ > static_cast<double>(lanes_) * b_max;
  if (cfg_.batch.enabled) {
    if (saturated) {
      // Queue never drains below a full batch: formation is instantaneous
      // and its cost is already inside the backlog wait.
      b = b_max;
    } else {
      const double fill = lam_srv * sim::to_seconds(cfg_.batch.timeout);
      b = std::min(b_max, 1.0 + fill);
      t_form_ms = lam_srv > 0.0
                      ? std::min(sim::to_milliseconds(cfg_.batch.timeout),
                                 1000.0 * b_max / lam_srv)
                      : sim::to_milliseconds(cfg_.batch.timeout);
    }
  }
  const double s_ms = service_ms(b);
  // Heavy-traffic stochastic queueing the deterministic fluid limit misses
  // (Allen-Cunneen M/G/c shape over the executor lanes); clamped so the
  // correction hands over to the explicit backlog term at saturation.
  double w_stoch_ms = 0.0;
  const double rho = lam_f / mu_max_;
  if (rho > 0.0) {
    const double rc = std::min(rho, 0.95);
    w_stoch_ms = 0.5 * s_ms *
                 std::pow(rc, std::sqrt(2.0 * static_cast<double>(lanes_ + 1))) /
                 (static_cast<double>(lanes_) * (1.0 - rc));
  }
  const double shift_ms = s_ms + w_queue_ms + w_stoch_ms;

  // 6. Distribute the tick's completed mass over the latency probes.
  double good = 0.0, miss = 0.0;
  if (served > 0.0) {
    sorted_scratch_.clear();
    for (const Probe& p : probes_) {
      const double lat = p.base_ms + p.wait_frac * t_form_ms + shift_ms;
      const double mass = served * p.weight;
      record_mass(lat, mass);
      if (lat > p.deadline_ms) {
        miss += mass;
      } else {
        good += mass;
      }
      sorted_scratch_.emplace_back(lat, p.weight);
    }
    served_mass_ += served;
    miss_mass_ += miss;
    std::sort(sorted_scratch_.begin(), sorted_scratch_.end());

    const double p99_tick = quantile_sorted(sorted_scratch_, 1.0, 0.99);
    if (p99_tick <= cfg_.budget_ms) {
      knee_sessions_ = std::max(knee_sessions_, sessions());
    } else if (first_breach_ < 0) {
      first_breach_ = t_end;
    }

    // Keep the admission window tracking the live distribution: a 32-point
    // quantile stencil per tick (tail point at 0.995 so the windowed p99
    // projection sees the tail, not just the body).
    if (cfg_.admission.enabled && served >= 1.0) {
      constexpr int kStencil = 32;
      for (int i = 0; i < kStencil; ++i) {
        const double q = i == kStencil - 1 ? 0.995 : (i + 0.5) / kStencil;
        admission_.observe_latency_ms(quantile_sorted(sorted_scratch_, 1.0, q));
      }
    }
  }

  // 7. SLO batch feed with integer-emission carries (exact totals over time).
  if (cfg_.slo) {
    good_carry_ += good;
    miss_carry_ += miss;
    const auto g = static_cast<std::int64_t>(good_carry_);
    const auto m = static_cast<std::int64_t>(miss_carry_);
    if (g > 0 || m > 0) {
      cfg_.slo->observe_batch(t_end, g, m);
      good_carry_ -= static_cast<double>(g);
      miss_carry_ -= static_cast<double>(m);
    }
  }

  // 8. Occupancy bookkeeping.
  peak_sessions_ = std::max(peak_sessions_, sessions());
  const std::int64_t total_ticks =
      std::max<std::int64_t>(1, (cfg_.duration + cfg_.tick - 1) / cfg_.tick);
  const auto slot = static_cast<std::size_t>(
      std::min<std::int64_t>(static_cast<std::int64_t>(occupancy_.size()) - 1,
                             ticks_ * static_cast<std::int64_t>(occupancy_.size()) /
                                 total_ticks));
  occupancy_[slot] += sessions();
  ++ticks_;
}

FluidResult FluidCell::run() {
  const std::int64_t total_ticks =
      std::max<std::int64_t>(1, (cfg_.duration + cfg_.tick - 1) / cfg_.tick);
  while (ticks_ < total_ticks) step();
  return finish();
}

FluidResult FluidCell::finish() {
  FluidResult r;
  r.name = cfg_.entity;
  r.arrivals = static_cast<std::uint64_t>(std::llround(arrivals_mass_));
  r.admitted = static_cast<std::uint64_t>(std::llround(admitted_mass_));
  r.downgraded = static_cast<std::uint64_t>(std::llround(downgraded_mass_));
  r.rejected = static_cast<std::uint64_t>(std::llround(rejected_mass_));
  r.frames = std::llround(served_mass_);
  r.misses = std::llround(miss_mass_);
  r.mean_ms = served_mass_ > 0.0 ? lat_sum_ / served_mass_ : 0.0;
  r.min_ms = lat_any_ ? lat_min_ : 0.0;
  r.max_ms = lat_any_ ? lat_max_ : 0.0;
  r.p50_ms = lat_quantile(0.50);
  r.p90_ms = lat_quantile(0.90);
  r.p99_ms = lat_quantile(0.99);
  r.miss_rate = served_mass_ > 0.0 ? miss_mass_ / served_mass_ : 0.0;
  r.sim_seconds = sim::to_seconds(static_cast<sim::Time>(ticks_) * cfg_.tick);
  r.served_fps = r.sim_seconds > 0.0 ? served_mass_ / r.sim_seconds : 0.0;
  r.peak_sessions = peak_sessions_;
  r.knee_sessions = knee_sessions_;
  r.first_breach = first_breach_;
  r.backlog_end = backlog_;
  r.ticks = ticks_;
  const std::int64_t total_ticks =
      std::max<std::int64_t>(1, (cfg_.duration + cfg_.tick - 1) / cfg_.tick);
  r.occupancy.resize(occupancy_.size());
  for (std::size_t i = 0; i < occupancy_.size(); ++i) {
    // Ticks land in slot i when i = tick * slots / total: count them exactly
    // so partially filled tails stay a proper time mean.
    const std::int64_t lo = (static_cast<std::int64_t>(i) * total_ticks +
                             static_cast<std::int64_t>(occupancy_.size()) - 1) /
                            static_cast<std::int64_t>(occupancy_.size());
    const std::int64_t hi = (static_cast<std::int64_t>(i + 1) * total_ticks +
                             static_cast<std::int64_t>(occupancy_.size()) - 1) /
                            static_cast<std::int64_t>(occupancy_.size());
    const std::int64_t in_slot = std::max<std::int64_t>(1, hi - lo);
    r.occupancy[i] = occupancy_[i] / static_cast<double>(in_slot);
  }

  if (cfg_.metrics) {
    obs::MetricsRegistry& m = *cfg_.metrics;
    m.counter("fluid.arrivals", cfg_.entity).add(static_cast<std::int64_t>(r.arrivals));
    m.counter("fluid.admitted", cfg_.entity).add(static_cast<std::int64_t>(r.admitted));
    m.counter("fluid.downgraded", cfg_.entity)
        .add(static_cast<std::int64_t>(r.downgraded));
    m.counter("fluid.rejected", cfg_.entity).add(static_cast<std::int64_t>(r.rejected));
    m.counter("fluid.served", cfg_.entity).add(r.frames);
    m.counter("fluid.deadline_miss", cfg_.entity).add(r.misses);
    m.gauge("fluid.peak_sessions", cfg_.entity).set(r.peak_sessions);
    m.gauge("fluid.knee_sessions", cfg_.entity).set(r.knee_sessions);
    m.gauge("fluid.backlog_end", cfg_.entity).set(r.backlog_end);
    // Fold the fine-grained mass histogram into the mergeable log-bucketed
    // instrument (restore() merges injected bucket counts).
    std::vector<std::int64_t> acc(obs::Histogram::kBucketCount, 0);
    std::vector<double> accf(obs::Histogram::kBucketCount, 0.0);
    for (std::size_t i = 0; i < lat_mass_.size(); ++i) {
      if (lat_mass_[i] <= 0.0) continue;
      accf[static_cast<std::size_t>(log_bucket_of(lat_bin_mid(static_cast<int>(i))))] +=
          lat_mass_[i];
    }
    std::vector<std::pair<int, std::int64_t>> buckets;
    for (int i = 0; i < obs::Histogram::kBucketCount; ++i) {
      acc[static_cast<std::size_t>(i)] = std::llround(accf[static_cast<std::size_t>(i)]);
      if (acc[static_cast<std::size_t>(i)] > 0) {
        buckets.emplace_back(i, acc[static_cast<std::size_t>(i)]);
      }
    }
    if (!buckets.empty()) {
      m.histogram("fluid.m2p_ms", cfg_.entity).restore(buckets, lat_sum_, r.min_ms,
                                                       r.max_ms);
    }
  }
  return r;
}

}  // namespace arnet::fluid
