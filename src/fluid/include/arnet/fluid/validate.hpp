#pragma once

#include <cstdint>

#include "arnet/fleet/scenario.hpp"
#include "arnet/fluid/fluid.hpp"

namespace arnet::fluid {

/// The FluidConfig that mirrors a packet-level capacity cell: identical
/// population, serving-path, and admission parameters (the fluid counterpart
/// of fleet::cell_fleet_config), so a paired run compares the two *models*,
/// not two configurations. Autoscaling has no fluid counterpart and is
/// rejected by ARNET_CHECK.
FluidConfig fluid_cell_config(const fleet::CellConfig& cell, std::uint64_t seed);

/// One fluid-vs-packet comparison point of the 25-200 user validation range.
struct ValidationRow {
  double users = 0.0;
  fleet::CellResult packet;
  FluidResult fluid;
  /// Relative deltas in percent of the packet-model value.
  double p99_delta_pct = 0.0;
  double goodput_delta_pct = 0.0;
};

/// Run the same open-loop cell through both models and compare p99 and
/// goodput (served fps). Pure function of (users, duration, seed).
ValidationRow run_validation_level(double users, sim::Time duration,
                                   std::uint64_t seed);

}  // namespace arnet::fluid
