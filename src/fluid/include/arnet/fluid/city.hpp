#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arnet/fluid/fluid.hpp"
#include "arnet/slo/slo.hpp"

namespace arnet::fluid {

/// A neighborhood class of the city grid: how many sessions it carries at
/// diurnal multiplier 1.0, its 24-slot day shape, its arrival process, and
/// how its serving capacity is provisioned. Archetypes are deliberately
/// provisioned so their peaks straddle the capacity knee — that is the
/// city-scale story (which neighborhoods breach the motion-to-photon budget,
/// when, and what admission does about it).
struct CityArchetype {
  std::string name;
  double base_users = 250.0;  ///< steady-state concurrent sessions at 1.0x
  std::vector<double> curve;  ///< 24-slot diurnal shape over the day
  fleet::ArrivalProcess process = fleet::ArrivalProcess::kPoisson;
  double burst_multiplier = 2.0;  ///< MMPP burst intensity (kMmpp only)
  double burst_dwell_s = 1200.0;
  double calm_dwell_s = 5400.0;
  bool admit = false;        ///< admission control on (else open loop)
  std::size_t servers = 2;
};

/// The sharded city: grid_x * grid_y cells, each an independent FluidCell
/// whose population stream is derive_seed(seed, cell_index) — one cell per
/// ExperimentRunner run, merged in cell order, byte-identical at any --jobs.
struct CityConfig {
  int grid_x = 20;
  int grid_y = 20;
  std::uint64_t seed = 1;
  sim::Time day = sim::seconds(86400);
  sim::Time tick = sim::seconds(1);
  double mean_lifetime_s = 600.0;  ///< city sessions run ~10 min
  double budget_ms = 75.0;
  int rtt_quantiles = 2;
  int wait_quantiles = 2;
  int occupancy_slots = 96;
  /// Empty = default_city_archetypes(). Assignment is a pure function of the
  /// grid position (core downtown, commercial ring, residential/nightlife/
  /// transit mix outside), see archetype_index().
  std::vector<CityArchetype> archetypes;

  std::size_t cells() const {
    return static_cast<std::size_t>(grid_x) * static_cast<std::size_t>(grid_y);
  }
};

/// The five default neighborhood classes (core / commercial / residential /
/// nightlife / transit) with curves shaped so rush hours, evenings, and
/// transit bursts breach their respective knees.
std::vector<CityArchetype> default_city_archetypes();

/// Deterministic archetype assignment for grid position (cx, cy): downtown
/// core inside the central radius, a commercial ring around it, and a hashed
/// residential/nightlife/transit mix outside.
std::size_t archetype_index(const CityConfig& city, int cx, int cy);

/// Resolve cell `index` of the grid to its FluidConfig (entity
/// "cell:<cx>,<cy>/<archetype>"); `seed` must be the per-cell
/// derive_seed(city.seed, index) stream root. Same-archetype neighbors get
/// staggered diurnal phases (+/- 1 h), exercising per-subpopulation profiles.
FluidConfig make_city_cell(const CityConfig& city, std::size_t index,
                           std::uint64_t seed);

/// SLO objective for one city cell: the frame-deadline objective with burn
/// windows scaled to the diurnal horizon (fast = day/48, slow = day/4).
slo::SloConfig city_slo_config(const CityConfig& city, const std::string& entity);

struct CityCellOutcome {
  std::size_t index = 0;
  int cx = 0, cy = 0;
  std::string archetype;
  FluidResult r;
};

/// Run one city cell with optional telemetry; publishes per-cell "city.*"
/// gauges (and the SLO gauges) under the cell entity when `metrics` is given.
/// Pure function of (city, index, seed).
CityCellOutcome run_city_cell(const CityConfig& city, std::size_t index,
                              std::uint64_t seed,
                              obs::MetricsRegistry* metrics = nullptr,
                              slo::SloTracker* slo = nullptr);

}  // namespace arnet::fluid
