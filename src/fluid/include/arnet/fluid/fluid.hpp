#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "arnet/edge/placement.hpp"
#include "arnet/fleet/admission.hpp"
#include "arnet/fleet/population.hpp"
#include "arnet/fleet/server.hpp"
#include "arnet/sim/rng.hpp"
#include "arnet/sim/time.hpp"

namespace arnet::obs {
class MetricsRegistry;
}
namespace arnet::slo {
class SloTracker;
}

namespace arnet::fluid {

/// Mean-field (fluid) counterpart of the packet-level fleet::Fleet cell: the
/// per-cell session population advances as a flow aggregate on a fixed tick
/// instead of per-frame events. Per tick the stepper integrates
///
///   dN/dt = a(t) - N / L              (session mass; a(t) = admitted rate)
///   dQ/dt = lambda_f(t) - mu(t)       (frame backlog; Q >= 0)
///
/// where lambda_f = N * fps is the offered frame rate and mu comes from the
/// batched service curve service(b) = setup + w + marginal*(b-1)*w evaluated
/// at the tick's expected batch occupancy. Latency is reconstructed per tick
/// from a deterministic grid of quantile probes (device class x RTT quantile
/// x batch-formation-wait quantile) shifted by the shared backlog wait, so
/// the cell still produces full latency distributions (p50/p99 through the
/// mergeable obs::Histogram), deadline-miss counts for the SLO tracker, and
/// live samples for an embedded fleet::AdmissionController — the same
/// admission interface the packet model uses, driving per-tick
/// admit/downgrade/reject routing of arriving session mass.
///
/// Everything is pure double arithmetic in tick order: a cell's outputs are
/// a pure function of its config (bit-identical across serial and --jobs
/// sweeps), and a simulated day costs ~86k ticks instead of ~10^8 events.
struct FluidConfig {
  std::uint64_t seed = 1;
  /// Arrival process, mixes, lifetime, diurnal shape (profile or legacy
  /// fields) — the same config the packet-level PopulationModel consumes.
  fleet::PopulationConfig population;
  /// Edge deployment mirror of FleetConfig: servers anchored to `sites`
  /// (cycled; default 2x2 grid in the population area when empty).
  std::vector<edge::CandidateSite> sites;
  edge::LatencyModel latency;
  std::size_t servers = 2;
  mar::DeviceClass server_profile = mar::DeviceClass::kDesktop;
  fleet::BatchConfig batch;
  /// Open loop by default (CellConfig::admit=false semantics); flip
  /// `admission.enabled` to gate arriving mass through the controller.
  fleet::AdmissionConfig admission{.enabled = false};
  double access_rate_bps = 25e6;
  double downgrade_fps_factor = 0.5;
  /// Integration step. 10 ms tracks the packet model through the knee for
  /// validation; 1 s is ample for city-scale diurnal runs (the fastest
  /// population dynamics are session lifetimes of minutes).
  sim::Time tick = sim::milliseconds(100);
  sim::Time duration = sim::seconds(30);
  /// Latency-probe grid resolution: RTT quantiles x formation-wait quantiles
  /// per (device, app) pair. 4x4 for validation-grade distributions, 2x2 for
  /// city cells where per-tick cost dominates.
  int rtt_quantiles = 4;
  int wait_quantiles = 4;
  /// Occupancy time-series resolution (slots over `duration`); aggregating
  /// these across cells yields the city's concurrent-session curve.
  int occupancy_slots = 96;
  /// Latency p99 budget used for knee tracking only (reporting, not control).
  double budget_ms = 75.0;
  /// Observability (optional; must outlive the cell). The histogram is
  /// published once at the end of run() via Histogram::restore.
  obs::MetricsRegistry* metrics = nullptr;
  slo::SloTracker* slo = nullptr;
  std::string entity = "fluid";
};

/// Summary of one fluid-cell run; field meanings match fleet::CellResult so
/// validation tables and the bench summary can compare the two directly.
/// Session/frame "counts" are rounded flow mass.
struct FluidResult {
  std::string name;
  std::uint64_t arrivals = 0, admitted = 0, downgraded = 0, rejected = 0;
  std::int64_t frames = 0;  ///< completed (served) frames
  std::int64_t misses = 0;
  double mean_ms = 0.0, min_ms = 0.0, max_ms = 0.0;
  double p50_ms = 0.0, p90_ms = 0.0, p99_ms = 0.0, miss_rate = 0.0;
  double served_fps = 0.0;       ///< completed frames per simulated second
  double peak_sessions = 0.0;    ///< max concurrent session mass
  double knee_sessions = 0.0;    ///< largest concurrency whose tick p99 met budget
  sim::Time first_breach = -1;   ///< first tick whose p99 broke budget (-1 = never)
  double backlog_end = 0.0;      ///< frames still queued at the horizon
  std::int64_t ticks = 0;
  double sim_seconds = 0.0;
  /// Time-mean concurrent sessions per occupancy slot (config.occupancy_slots
  /// entries); summable across cells slot-by-slot.
  std::vector<double> occupancy;
};

class FluidCell {
 public:
  explicit FluidCell(FluidConfig cfg);

  FluidCell(const FluidCell&) = delete;
  FluidCell& operator=(const FluidCell&) = delete;

  /// Advance one tick (exposed for the FluidStep micro-bench and tests).
  void step();

  sim::Time now() const { return ticks_ * cfg_.tick; }
  double sessions() const { return n_full_ + n_deg_; }
  double backlog() const { return backlog_; }
  const fleet::AdmissionController& admission() const { return admission_; }
  const FluidConfig& config() const { return cfg_; }

  /// Step to the configured horizon, publish instruments ("fluid.*" under
  /// config().entity) and SLO batches as configured, and summarize.
  FluidResult run();

  /// Summarize current state without stepping further (run() = steps + this).
  FluidResult finish();

 private:
  struct Probe {
    double weight = 0.0;    ///< fraction of frame mass this probe represents
    double base_ms = 0.0;   ///< device stage + RTT + serialization (fixed)
    double wait_frac = 0.0; ///< position inside the batch-formation window
    double deadline_ms = 75.0;
    int app = 0;
  };

  edge::GeoPoint site_pos(std::size_t server_index) const;
  void build_probes();
  double service_ms(double occupancy) const;
  void record_mass(double latency_ms, double mass);

  FluidConfig cfg_;
  sim::Rng arrivals_;  ///< MMPP dwell stream, derive_seed(seed, 0) like the packet model
  fleet::AdmissionController admission_;

  // Precomputed aggregates.
  double fps_mean_ = 30.0;           ///< app-mix weighted frames/s per session
  double server_work_ms_ = 3.0;      ///< app-mix weighted reference server cost
  double server_scale_ = 1.0;        ///< server profile compute scale
  double mu_max_ = 1.0;              ///< max drain rate, frames/s, all servers
  int lanes_ = 1;                    ///< total executor lanes
  std::vector<Probe> probes_;
  std::vector<std::pair<double, double>> sorted_scratch_;  ///< (latency, weight)

  // Population / serving state.
  std::int64_t ticks_ = 0;
  bool burst_ = false;
  sim::Time state_until_ = 0;
  double n_full_ = 0.0;
  double n_deg_ = 0.0;
  double backlog_ = 0.0;  ///< queued frame mass
  /// FIFO parcels of queued mass as (entry mid-tick, seconds; mass): served
  /// mass drains from the front so the recorded queueing wait is the sojourn
  /// of the frames actually completing this tick, not the (backlog / mu)
  /// virtual wait of frames arriving now — under a growing backlog those
  /// differ by a factor of lambda/mu, exactly the horizon semantics the
  /// packet model's completed-frames-only accounting uses.
  std::deque<std::pair<double, double>> queue_;

  // Accounting.
  double arrivals_mass_ = 0.0, admitted_mass_ = 0.0;
  double downgraded_mass_ = 0.0, rejected_mass_ = 0.0;
  double served_mass_ = 0.0, miss_mass_ = 0.0;
  double good_carry_ = 0.0, miss_carry_ = 0.0;  ///< SLO integer-emission remainders
  double peak_sessions_ = 0.0, knee_sessions_ = 0.0;
  sim::Time first_breach_ = -1;
  std::vector<double> occupancy_;  ///< per-slot accumulated session mass

  // Two-tier fine-grained latency mass histogram: 0.1 ms bins below 1 s,
  // 10 ms bins to 60 s, one overflow bin. Fine enough that reported
  // quantiles are exact to well under the validation tolerance (the obs
  // histogram's log buckets are only ~15% accurate), cheap enough to live
  // per cell; folded into the mergeable obs::Histogram at finish().
  static constexpr int kFineBins = 10000;   ///< [0, 1000) ms at 0.1 ms
  static constexpr int kCoarseBins = 5900;  ///< [1000, 60000) ms at 10 ms
  std::vector<double> lat_mass_;
  double lat_sum_ = 0.0;
  double lat_min_ = 0.0, lat_max_ = 0.0;
  bool lat_any_ = false;

  static int lat_bin(double ms);
  static double lat_bin_mid(int bin);
  double lat_quantile(double p) const;
};

}  // namespace arnet::fluid
