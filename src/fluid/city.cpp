#include "arnet/fluid/city.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "arnet/check/assert.hpp"
#include "arnet/obs/registry.hpp"

namespace arnet::fluid {

std::vector<CityArchetype> default_city_archetypes() {
  std::vector<CityArchetype> a(5);
  // Downtown core: business-hours plateau; admission-controlled (the
  // operator protects the dense deployment instead of letting p99 run away).
  a[0].name = "core";
  a[0].base_users = 500.0;
  a[0].curve = {0.25, 0.2, 0.15, 0.12, 0.12, 0.2, 0.5, 1.0, 1.6, 2.0, 2.0, 1.9,
                1.8,  1.9, 2.0,  1.9,  1.7,  1.4, 1.0, 0.7, 0.55, 0.45, 0.35, 0.3};
  a[0].admit = true;
  a[0].servers = 16;
  // Commercial ring: daytime shopping curve, lightly over-provisioned.
  a[1].name = "commercial";
  a[1].base_users = 320.0;
  a[1].curve = {0.3, 0.25, 0.2, 0.2, 0.2, 0.3, 0.5, 0.8, 1.2, 1.5, 1.7, 1.8,
                1.8, 1.7,  1.6, 1.5, 1.4, 1.3, 1.1, 0.9, 0.7, 0.55, 0.45, 0.35};
  a[1].servers = 12;
  // Residential: twin commute peaks; the evening one breaches the knee.
  a[2].name = "residential";
  a[2].base_users = 260.0;
  a[2].curve = {0.5,  0.35, 0.25, 0.2, 0.2, 0.3, 0.8, 1.3, 1.0, 0.7, 0.6, 0.6,
                0.65, 0.7,  0.7,  0.8, 1.0, 1.4, 1.8, 2.0, 1.9, 1.5, 1.0, 0.7};
  a[2].servers = 9;
  // Nightlife: evening/night peak; admission-controlled.
  a[3].name = "nightlife";
  a[3].base_users = 280.0;
  a[3].curve = {1.4, 1.1, 0.8, 0.5, 0.3, 0.2, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7,
                0.8, 0.9, 1.0, 1.1, 1.2, 1.4, 1.7, 2.0, 2.2, 2.2, 2.0, 1.7};
  a[3].admit = true;
  a[3].servers = 11;
  // Transit hubs: commute shape plus MMPP event bursts (a delayed train, a
  // stadium letting out) long enough to move a 10-minute-lifetime population.
  a[4].name = "transit";
  a[4].base_users = 240.0;
  a[4].curve = {0.3, 0.2, 0.15, 0.15, 0.2, 0.5, 1.0, 1.5, 1.3, 0.9, 0.8, 0.8,
                0.9, 0.9, 0.9,  1.0,  1.3, 1.5, 1.2, 0.9, 0.7, 0.6, 0.5, 0.4};
  a[4].process = fleet::ArrivalProcess::kMmpp;
  a[4].burst_multiplier = 2.0;
  a[4].burst_dwell_s = 1200.0;
  a[4].calm_dwell_s = 5400.0;
  a[4].servers = 8;
  return a;
}

std::size_t archetype_index(const CityConfig& city, int cx, int cy) {
  const std::size_t n =
      city.archetypes.empty() ? std::size_t{5} : city.archetypes.size();
  if (n == 1) return 0;
  const double dx = cx + 0.5 - static_cast<double>(city.grid_x) / 2.0;
  const double dy = cy + 0.5 - static_cast<double>(city.grid_y) / 2.0;
  const double r = std::sqrt(dx * dx + dy * dy) /
                   (std::max(1, std::min(city.grid_x, city.grid_y)) / 2.0);
  if (r < 0.25) return 0 % n;                 // downtown core
  if (r < 0.45) return 1 % n;                 // commercial ring
  const unsigned h = static_cast<unsigned>(cx) * 31u + static_cast<unsigned>(cy) * 17u;
  if (h % 10u < 2u) return 3 % n;             // nightlife pockets
  if (h % 10u == 2u) return 4 % n;            // transit hubs
  return 2 % n;                               // residential fabric
}

FluidConfig make_city_cell(const CityConfig& city, std::size_t index,
                           std::uint64_t seed) {
  ARNET_CHECK(index < city.cells(), "city cell index out of range");
  const std::vector<CityArchetype> defaults =
      city.archetypes.empty() ? default_city_archetypes()
                              : std::vector<CityArchetype>{};
  const std::vector<CityArchetype>& archetypes =
      city.archetypes.empty() ? defaults : city.archetypes;
  const int cx = static_cast<int>(index) % city.grid_x;
  const int cy = static_cast<int>(index) / city.grid_x;
  const CityArchetype& arch = archetypes[archetype_index(city, cx, cy)];

  FluidConfig f;
  f.seed = seed;
  f.population.process = arch.process;
  f.population.base_arrivals_per_s =
      arch.base_users / std::max(1e-9, city.mean_lifetime_s);
  f.population.mean_lifetime_s = city.mean_lifetime_s;
  f.population.burst_multiplier = arch.burst_multiplier;
  f.population.burst_dwell_mean_s = arch.burst_dwell_s;
  f.population.calm_dwell_mean_s = arch.calm_dwell_s;
  // Cell-local day shape: shared archetype curve, staggered so neighboring
  // cells of the same class don't hit rush hour in lockstep.
  f.population.profile.curve = arch.curve;
  f.population.profile.period = city.day;
  f.population.profile.phase =
      (static_cast<sim::Time>((cx + cy) % 3) - 1) * (city.day / 24);
  f.population.area_km = 1.0;  // a dense city cell, not the 4 km default
  f.servers = arch.servers;
  f.admission.enabled = arch.admit;
  f.tick = city.tick;
  f.duration = city.day;
  f.rtt_quantiles = city.rtt_quantiles;
  f.wait_quantiles = city.wait_quantiles;
  f.occupancy_slots = city.occupancy_slots;
  f.budget_ms = city.budget_ms;
  std::ostringstream name;
  name << "cell:" << (cx < 10 ? "0" : "") << cx << "," << (cy < 10 ? "0" : "")
       << cy << "/" << arch.name;
  f.entity = name.str();
  return f;
}

slo::SloConfig city_slo_config(const CityConfig& city, const std::string& entity) {
  slo::SloConfig c;
  c.deadline_ms = city.budget_ms;
  // Burn windows scaled to the diurnal horizon: fast catches a neighborhood
  // tipping over its knee within half an hour (of a 24 h day), slow the
  // sustained multi-hour drift.
  c.fast_window = city.day / 48;
  c.slow_window = city.day / 4;
  c.slots_per_fast_window = 6;
  c.entity = entity;
  return c;
}

CityCellOutcome run_city_cell(const CityConfig& city, std::size_t index,
                              std::uint64_t seed, obs::MetricsRegistry* metrics,
                              slo::SloTracker* slo) {
  FluidConfig f = make_city_cell(city, index, seed);
  f.metrics = metrics;
  f.slo = slo;

  CityCellOutcome out;
  out.index = index;
  out.cx = static_cast<int>(index) % city.grid_x;
  out.cy = static_cast<int>(index) / city.grid_x;
  const std::string entity = f.entity;
  const std::size_t slash = entity.rfind('/');
  out.archetype = slash == std::string::npos ? entity : entity.substr(slash + 1);

  FluidCell cell(std::move(f));
  out.r = cell.run();

  if (metrics) {
    if (slo) slo->publish(*metrics);
    metrics->gauge("city.peak_sessions", entity).set(out.r.peak_sessions);
    metrics->gauge("city.knee_sessions", entity).set(out.r.knee_sessions);
    metrics->gauge("city.p50_ms", entity).set(out.r.p50_ms);
    metrics->gauge("city.p99_ms", entity).set(out.r.p99_ms);
    metrics->gauge("city.miss_rate", entity).set(out.r.miss_rate);
    metrics->gauge("city.served_fps", entity).set(out.r.served_fps);
    metrics->gauge("city.rejected", entity)
        .set(static_cast<double>(out.r.rejected));
    metrics->gauge("city.first_breach_s", entity)
        .set(out.r.first_breach < 0 ? -1.0 : sim::to_seconds(out.r.first_breach));
  }
  return out;
}

}  // namespace arnet::fluid
