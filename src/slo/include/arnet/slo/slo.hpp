#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "arnet/sim/time.hpp"

namespace arnet::obs {
class MetricsRegistry;
}

namespace arnet::slo {

/// SLO alert states. `kFastBurn` means the short window is consuming error
/// budget so fast the objective dies within the fast horizon; `kSlowBurn`
/// is the sustained-drift signal over the long window. Fast takes priority.
enum class AlertState : std::uint8_t {
  kOk,
  kSlowBurn,
  kFastBurn,
};

const char* to_string(AlertState s);

/// One transition of the alert state machine (entering an alerting state or
/// clearing back to ok). The alert callback fires only on entering.
struct AlertEvent {
  sim::Time time = 0;
  AlertState state = AlertState::kOk;  ///< state entered
  double burn_fast = 0.0;
  double burn_slow = 0.0;
};

/// Periodic burn-rate sample, taken once per wheel slot so a report can draw
/// the fast/slow burn timelines without replaying the run.
struct BurnSample {
  sim::Time time = 0;  ///< slot start
  double fast = 0.0;
  double slow = 0.0;
  AlertState state = AlertState::kOk;
};

/// One frame-deadline objective: "at least `objective` of frames complete
/// within `deadline_ms`". Burn rate is the SRE definition: observed miss
/// rate over a window divided by the error budget (1 - objective) — burn 1.0
/// consumes the budget exactly at the sustainable rate, burn 14.4 exhausts a
/// 30-day budget in 50 hours (scaled here to simulation horizons).
struct SloConfig {
  double deadline_ms = 75.0;  ///< the motion-to-photon budget (Table II)
  double objective = 0.99;    ///< target on-time fraction
  /// Burn windows. Fast catches cliff outages (a cell tipping over its
  /// capacity knee); slow catches sustained drift that a short window
  /// forgives between bursts.
  sim::Time fast_window = sim::seconds(5);
  sim::Time slow_window = sim::seconds(60);
  double fast_burn_threshold = 14.4;
  double slow_burn_threshold = 6.0;
  /// An alert clears only once its window's burn falls below
  /// threshold * clear_factor — the hysteresis band that stops the state
  /// machine from flapping while burn oscillates around the threshold.
  double clear_factor = 0.5;
  /// Wheel resolution: fast_window is split into this many slots; the slow
  /// window reuses the same slot width. More slots = finer expiry at the
  /// cost of a longer ring.
  int slots_per_fast_window = 10;
  /// A window with fewer completed frames than this never alerts (cold
  /// start / drained cell: one missed frame out of two is not burn 50).
  std::int64_t min_samples = 20;
  std::size_t max_alerts = 256;        ///< alert log bound
  std::size_t max_burn_samples = 4096; ///< burn timeline bound
  std::string entity = "slo";          ///< export scope name
};

/// Deterministic windowed burn-rate tracker + alert state machine for one
/// objective (one cell, one session class). All state advances through
/// observe()/observe_miss() on simulation time only — no wall clock, no
/// randomness — so a tracker-attached run is bit-identical to a detached
/// one and serial/parallel sweeps export byte-identical SLO logs.
class SloTracker {
 public:
  explicit SloTracker(SloConfig cfg);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Feed one completed frame: missed iff latency_ms > deadline_ms.
  void observe(sim::Time now, double latency_ms);
  /// Feed a frame that never completed (counts as a miss).
  void observe_miss(sim::Time now);
  /// Feed an aggregate of frames completing at `now`: `good` on-time and
  /// `miss` late, all landing in one wheel slot with a single advance and a
  /// single alert evaluation. Window sums and totals end up exactly as if
  /// observe()/observe_miss() had been called good+miss times at the same
  /// timestamp; only intra-batch alert transitions are collapsed. This is
  /// what lets a fluid-mode cell report thousands of frames per tick at
  /// O(1) cost instead of per-frame events.
  void observe_batch(sim::Time now, std::int64_t good, std::int64_t miss);

  /// Fired on every transition *into* an alerting state (never on clear);
  /// the scenario layer wires this to FlightRecorder::dump so a burning
  /// cell leaves its trace timeline behind.
  void set_alert_callback(std::function<void(const AlertEvent&)> cb) {
    on_alert_ = std::move(cb);
  }

  AlertState state() const { return state_; }
  double burn_fast() const;
  double burn_slow() const;
  std::int64_t good() const { return total_good_; }
  std::int64_t miss() const { return total_miss_; }
  const SloConfig& config() const { return cfg_; }
  const std::vector<AlertEvent>& alerts() const { return alerts_; }
  std::uint64_t alerts_dropped() const { return alerts_dropped_; }
  const std::vector<BurnSample>& burn_samples() const { return burn_samples_; }
  std::uint64_t burn_samples_dropped() const { return burn_samples_dropped_; }
  /// Total transitions into an alerting state (clears not counted).
  std::uint64_t alert_episodes() const { return alert_episodes_; }

  /// Publish burn/state gauges under `config().entity` ("slo.burn_fast",
  /// "slo.burn_slow", "slo.state", "slo.alert_episodes").
  void publish(obs::MetricsRegistry& reg) const;

 private:
  struct Slot {
    std::int64_t good = 0;
    std::int64_t miss = 0;
  };

  void record(sim::Time now, bool missed);
  void advance(sim::Time now);
  void evaluate(sim::Time now);
  double burn_from(const Slot& window) const;
  void sample_burn(sim::Time slot_start);

  SloConfig cfg_;
  sim::Time slot_width_ = 1;
  std::size_t fast_slots_ = 1;        ///< slots covering the fast window
  std::vector<Slot> wheel_;           ///< ring covering the slow window
  std::int64_t cur_slot_ = -1;        ///< absolute slot index of wheel head
  /// Running window sums, maintained incrementally as slots expire so
  /// evaluate() never rescans the wheel: fast_ covers the last fast_slots_
  /// slots, slow_ the whole wheel.
  Slot fast_;
  Slot slow_;
  std::int64_t total_good_ = 0;
  std::int64_t total_miss_ = 0;
  AlertState state_ = AlertState::kOk;
  std::vector<AlertEvent> alerts_;
  std::uint64_t alerts_dropped_ = 0;
  std::uint64_t alert_episodes_ = 0;
  std::vector<BurnSample> burn_samples_;
  std::uint64_t burn_samples_dropped_ = 0;
  std::function<void(const AlertEvent&)> on_alert_;
};

/// `arnet-slo-v1` JSONL: a meta line, then per tracker one "objective"
/// summary line, its "alert" transitions, and its "burn" timeline samples,
/// closed by an "end" line. Deterministic given deterministic tracker
/// state (shortest-round-trip doubles, insertion order preserved).
void write_slo_jsonl(const std::vector<const SloTracker*>& trackers, std::ostream& os);

}  // namespace arnet::slo
