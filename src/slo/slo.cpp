#include "arnet/slo/slo.hpp"

#include <algorithm>
#include <charconv>
#include <ostream>

#include "arnet/check/assert.hpp"
#include "arnet/obs/export.hpp"
#include "arnet/obs/registry.hpp"

namespace arnet::slo {

namespace {

/// Shortest round-trip formatting (same contract as the obs exporter): the
/// SLO log must be byte-identical across serial and parallel sweeps.
std::string fmt_double(double v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

}  // namespace

const char* to_string(AlertState s) {
  switch (s) {
    case AlertState::kOk: return "ok";
    case AlertState::kSlowBurn: return "slow-burn";
    case AlertState::kFastBurn: return "fast-burn";
  }
  return "?";
}

SloTracker::SloTracker(SloConfig cfg) : cfg_(std::move(cfg)) {
  ARNET_CHECK(cfg_.objective > 0.0 && cfg_.objective < 1.0,
              "slo objective must be in (0, 1)");
  ARNET_CHECK(cfg_.fast_window > 0 && cfg_.slow_window >= cfg_.fast_window,
              "slo windows: need 0 < fast <= slow");
  const int per_fast = std::max(1, cfg_.slots_per_fast_window);
  slot_width_ = std::max<sim::Time>(1, cfg_.fast_window / per_fast);
  fast_slots_ = static_cast<std::size_t>(
      std::max<sim::Time>(1, (cfg_.fast_window + slot_width_ - 1) / slot_width_));
  const auto slow_slots = static_cast<std::size_t>(
      std::max<sim::Time>(1, (cfg_.slow_window + slot_width_ - 1) / slot_width_));
  wheel_.assign(std::max(fast_slots_, slow_slots), Slot{});
}

void SloTracker::observe(sim::Time now, double latency_ms) {
  record(now, latency_ms > cfg_.deadline_ms);
}

void SloTracker::observe_miss(sim::Time now) { record(now, true); }

void SloTracker::observe_batch(sim::Time now, std::int64_t good, std::int64_t miss) {
  ARNET_CHECK(good >= 0 && miss >= 0, "slo batch counts must be non-negative");
  if (good == 0 && miss == 0) return;
  advance(now);
  Slot& s = wheel_[static_cast<std::size_t>(cur_slot_) % wheel_.size()];
  s.good += good;
  s.miss += miss;
  fast_.good += good;
  fast_.miss += miss;
  slow_.good += good;
  slow_.miss += miss;
  total_good_ += good;
  total_miss_ += miss;
  evaluate(now);
}

void SloTracker::record(sim::Time now, bool missed) {
  advance(now);
  Slot& s = wheel_[static_cast<std::size_t>(cur_slot_) % wheel_.size()];
  if (missed) {
    ++s.miss;
    ++fast_.miss;
    ++slow_.miss;
    ++total_miss_;
  } else {
    ++s.good;
    ++fast_.good;
    ++slow_.good;
    ++total_good_;
  }
  evaluate(now);
}

void SloTracker::advance(sim::Time now) {
  const std::int64_t target = now / slot_width_;
  if (cur_slot_ < 0) {
    cur_slot_ = target;
    return;
  }
  if (target <= cur_slot_) return;
  // Crossing into a new slot: snapshot the burn timeline once per slot
  // boundary, then expire everything the gap skipped. A gap longer than the
  // whole wheel clears it wholesale (idle cells forget their history).
  sample_burn(cur_slot_ * slot_width_);
  const std::int64_t steps = target - cur_slot_;
  const auto w = static_cast<std::int64_t>(wheel_.size());
  if (steps >= w) {
    for (Slot& s : wheel_) s = Slot{};
    fast_ = Slot{};
    slow_ = Slot{};
  } else {
    for (std::int64_t i = 1; i <= steps; ++i) {
      const std::int64_t t = cur_slot_ + i;
      // The slot sliding out of the fast window. When the gap outruns the
      // window, the slot was already zeroed earlier in this loop, so the
      // subtraction is a no-op.
      const std::int64_t out_idx = t - static_cast<std::int64_t>(fast_slots_);
      const Slot& out = wheel_[static_cast<std::size_t>((out_idx % w + w) % w)];
      fast_.good -= out.good;
      fast_.miss -= out.miss;
      // The slot the window advances into still holds counts from one full
      // wheel revolution ago: they leave the slow window now.
      Slot& in = wheel_[static_cast<std::size_t>(t % w)];
      slow_.good -= in.good;
      slow_.miss -= in.miss;
      in = Slot{};
    }
  }
  cur_slot_ = target;
}

double SloTracker::burn_from(const Slot& window) const {
  const std::int64_t n = window.good + window.miss;
  if (n < std::max<std::int64_t>(1, cfg_.min_samples)) return 0.0;
  const double miss_rate = static_cast<double>(window.miss) / static_cast<double>(n);
  return miss_rate / (1.0 - cfg_.objective);
}

double SloTracker::burn_fast() const { return burn_from(fast_); }
double SloTracker::burn_slow() const { return burn_from(slow_); }

void SloTracker::sample_burn(sim::Time slot_start) {
  if (burn_samples_.size() >= cfg_.max_burn_samples) {
    ++burn_samples_dropped_;
    return;
  }
  BurnSample b;
  b.time = slot_start;
  b.fast = burn_fast();
  b.slow = burn_slow();
  b.state = state_;
  burn_samples_.push_back(b);
}

void SloTracker::evaluate(sim::Time now) {
  const double fast = burn_fast();
  const double slow = burn_slow();
  AlertState next = state_;
  switch (state_) {
    case AlertState::kOk:
      if (fast >= cfg_.fast_burn_threshold) {
        next = AlertState::kFastBurn;
      } else if (slow >= cfg_.slow_burn_threshold) {
        next = AlertState::kSlowBurn;
      }
      break;
    case AlertState::kFastBurn:
      if (fast < cfg_.fast_burn_threshold * cfg_.clear_factor) {
        next = slow >= cfg_.slow_burn_threshold ? AlertState::kSlowBurn : AlertState::kOk;
      }
      break;
    case AlertState::kSlowBurn:
      if (fast >= cfg_.fast_burn_threshold) {
        next = AlertState::kFastBurn;
      } else if (slow < cfg_.slow_burn_threshold * cfg_.clear_factor) {
        next = AlertState::kOk;
      }
      break;
  }
  if (next == state_) return;
  state_ = next;
  AlertEvent e;
  e.time = now;
  e.state = next;
  e.burn_fast = fast;
  e.burn_slow = slow;
  if (alerts_.size() < cfg_.max_alerts) {
    alerts_.push_back(e);
  } else {
    ++alerts_dropped_;
  }
  if (next != AlertState::kOk) {
    ++alert_episodes_;
    if (on_alert_) on_alert_(e);
  }
}

void SloTracker::publish(obs::MetricsRegistry& reg) const {
  reg.gauge("slo.burn_fast", cfg_.entity).set(burn_fast());
  reg.gauge("slo.burn_slow", cfg_.entity).set(burn_slow());
  reg.gauge("slo.state", cfg_.entity).set(static_cast<double>(state_));
  reg.gauge("slo.alert_episodes", cfg_.entity)
      .set(static_cast<double>(alert_episodes_));
  reg.gauge("slo.miss_total", cfg_.entity).set(static_cast<double>(total_miss_));
  reg.gauge("slo.good_total", cfg_.entity).set(static_cast<double>(total_good_));
}

void write_slo_jsonl(const std::vector<const SloTracker*>& trackers, std::ostream& os) {
  os << "{\"kind\":\"meta\",\"schema\":\"arnet-slo-v1\",\"objectives\":"
     << trackers.size() << "}\n";
  std::uint64_t alerts_total = 0;
  for (const SloTracker* t : trackers) {
    if (!t) continue;
    const SloConfig& c = t->config();
    os << "{\"kind\":\"objective\",\"entity\":\"" << obs::json_escape(c.entity)
       << "\",\"deadline_ms\":" << fmt_double(c.deadline_ms)
       << ",\"objective\":" << fmt_double(c.objective) << ",\"good\":" << t->good()
       << ",\"miss\":" << t->miss() << ",\"burn_fast\":" << fmt_double(t->burn_fast())
       << ",\"burn_slow\":" << fmt_double(t->burn_slow()) << ",\"state\":\""
       << to_string(t->state()) << "\",\"alerts\":" << t->alerts().size()
       << ",\"alerts_dropped\":" << t->alerts_dropped()
       << ",\"episodes\":" << t->alert_episodes() << "}\n";
    for (const AlertEvent& a : t->alerts()) {
      os << "{\"kind\":\"alert\",\"entity\":\"" << obs::json_escape(c.entity)
         << "\",\"t_ns\":" << a.time << ",\"state\":\"" << to_string(a.state)
         << "\",\"burn_fast\":" << fmt_double(a.burn_fast)
         << ",\"burn_slow\":" << fmt_double(a.burn_slow) << "}\n";
      ++alerts_total;
    }
    for (const BurnSample& b : t->burn_samples()) {
      os << "{\"kind\":\"burn\",\"entity\":\"" << obs::json_escape(c.entity)
         << "\",\"t_ns\":" << b.time << ",\"fast\":" << fmt_double(b.fast)
         << ",\"slow\":" << fmt_double(b.slow) << ",\"state\":\""
         << to_string(b.state) << "\"}\n";
    }
  }
  os << "{\"kind\":\"end\",\"objectives\":" << trackers.size()
     << ",\"alerts\":" << alerts_total << "}\n";
}

}  // namespace arnet::slo
