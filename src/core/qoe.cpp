#include "arnet/core/qoe.hpp"

#include <algorithm>
#include <cmath>

#include "arnet/check/assert.hpp"

namespace arnet::core {

namespace {

/// Smooth score in [0,1]: ~1 below `good`, ~0 above `bad`.
double logistic_score(double value, double good, double bad) {
  double mid = 0.5 * (good + bad);
  double scale = (bad - good) / 6.0;  // ~±3 sigmoid widths across the band
  return 1.0 / (1.0 + std::exp((value - mid) / std::max(scale, 1e-9)));
}

}  // namespace

double qoe_mos(const QoeInputs& in) {
  // Latency: 20 ms (Abrash) -> 250 ms (telemetry-class, dead for AR).
  double latency_score = logistic_score(in.median_latency_ms, 20.0, 250.0);
  // Jitter proxy: a p95 far above the median breaks the virtual layer's
  // stability even when the median is fine. Band is wider than the latency
  // one: prediction/tracking hides occasional slow refreshes (paper §III-B
  // cites motion prediction hiding latency).
  double spread = std::max(in.p95_latency_ms - in.median_latency_ms, 0.0);
  double jitter_score = logistic_score(spread, 25.0, 400.0);
  // Deadline misses: occasional (<2 %) invisible, frequent (>40 %) fatal.
  double miss_score = logistic_score(in.miss_rate * 100.0, 2.0, 40.0);
  // Result rate vs the camera rate: stale augmentations drift.
  double rate = in.target_fps > 0 ? std::clamp(in.result_rate_hz / in.target_fps, 0.0, 1.0)
                                  : 1.0;
  double rate_score = rate * rate;  // dropping half the frames hurts more than half

  double composite = latency_score * jitter_score * miss_score * rate_score;
  double mos = 1.0 + 4.0 * composite;
  // MOS is on the 1..5 ACR scale by construction; NaN inputs (e.g. an empty
  // latency sample set divided through) would otherwise propagate into every
  // table that reports QoE.
  ARNET_CHECK(mos >= 1.0 && mos <= 5.0, "QoE MOS ", mos,
              " outside [1,5] — check inputs (median=", in.median_latency_ms,
              "ms, p95=", in.p95_latency_ms, "ms, miss=", in.miss_rate, ")");
  return mos;
}

QoeInputs qoe_inputs(const mar::OffloadStats& stats, double duration_s, double target_fps) {
  QoeInputs in;
  in.median_latency_ms = stats.latency_ms.median();
  in.p95_latency_ms = stats.latency_ms.percentile(0.95);
  in.miss_rate = stats.miss_rate();
  in.result_rate_hz = duration_s > 0 ? static_cast<double>(stats.results) / duration_s : 0.0;
  in.target_fps = target_fps;
  return in;
}

double record_qoe(obs::MetricsRegistry& reg, const std::string& entity,
                  const mar::OffloadStats& stats, double duration_s, double target_fps) {
  QoeInputs in = qoe_inputs(stats, duration_s, target_fps);
  double mos = qoe_mos(in);
  reg.gauge("mar.mos", entity).set(mos);
  reg.gauge("mar.latency_p95_ms", entity).set(in.p95_latency_ms);
  reg.gauge("mar.miss_rate", entity).set(in.miss_rate);
  reg.gauge("mar.result_rate_hz", entity).set(in.result_rate_hz);
  return mos;
}

const char* qoe_grade(double mos) {
  if (mos >= 4.3) return "excellent";
  if (mos >= 3.5) return "good";
  if (mos >= 2.5) return "fair";
  if (mos >= 1.7) return "poor";
  return "bad";
}

}  // namespace arnet::core
