#include "arnet/core/scenarios.hpp"

#include "arnet/transport/udp.hpp"

namespace arnet::core {

using net::Link;
using sim::milliseconds;

const char* to_string(Table2Setup s) {
  switch (s) {
    case Table2Setup::kLocalServerWifi:
      return "Local server / WiFi";
    case Table2Setup::kCloudServerWifi:
      return "Cloud server / WiFi";
    case Table2Setup::kUniversityServerWifi:
      return "University server / WiFi";
    case Table2Setup::kCloudServerLte:
      return "Cloud server / LTE";
  }
  return "?";
}

namespace {

/// Client <-WiFi-> AP hop shared by the three WiFi rows: a clean personal /
/// campus cell (single station; the multi-station anomaly is Fig. 2's
/// business). One-way ~3 ms including MAC overheads.
net::NodeId add_wifi_hop(net::Network& net, net::NodeId client) {
  net::NodeId ap = net.add_node("ap");
  auto wifi_cfg = [] {
    Link::Config cfg;
    cfg.rate_bps = 25e6;  // everyday 802.11n figure, not the PHY rate
    cfg.delay = milliseconds(3);
    cfg.queue_packets = 300;
    return cfg;
  };
  net.connect(client, ap, wifi_cfg(), wifi_cfg());
  return ap;
}

}  // namespace

Scenario make_table2_scenario(Table2Setup setup, std::uint64_t seed) {
  Scenario sc;
  sc.name = to_string(setup);
  sc.sim = std::make_unique<sim::Simulator>();
  sc.net = std::make_unique<net::Network>(*sc.sim, seed);
  net::Network& net = *sc.net;
  sc.client = net.add_node("client");

  switch (setup) {
    case Table2Setup::kLocalServerWifi: {
      // Same-room server: WiFi hop straight into a LAN box.
      sc.paper_rtt_ms = 8.0;
      net::NodeId ap = add_wifi_hop(net, sc.client);
      sc.server = net.add_node("local-server");
      net.connect(ap, sc.server, 1e9, sim::microseconds(300), 500);
      break;
    }
    case Table2Setup::kCloudServerWifi: {
      // Campus (eduroam) WiFi -> campus gateway -> regional WAN to the
      // nearest cloud region (Taiwan): ~13 ms one-way of fiber.
      sc.paper_rtt_ms = 36.0;
      net::NodeId ap = add_wifi_hop(net, sc.client);
      net::NodeId gw = net.add_node("campus-gw");
      sc.server = net.add_node("cloud-tw");
      net.connect(ap, gw, 1e9, milliseconds(1), 500);
      net.connect(gw, sc.server, 400e6, milliseconds(13), 1000);
      break;
    }
    case Table2Setup::kUniversityServerWifi: {
      // Geographically close, yet the eduroam<->university interconnection
      // crosses security middleboxes that add tens of ms of processing
      // (the paper's surprising doubled latency).
      sc.paper_rtt_ms = 72.0;
      net::NodeId ap = add_wifi_hop(net, sc.client);
      net::NodeId gw = net.add_node("eduroam-gw");
      net::NodeId fw1 = net.add_node("border-firewall");
      net::NodeId fw2 = net.add_node("dept-firewall");
      sc.server = net.add_node("univ-server");
      net.connect(ap, gw, 1e9, milliseconds(1), 500);
      net.connect(gw, fw1, 1e9, milliseconds(1), 500);
      net.connect(fw1, fw2, 1e9, milliseconds(1), 500);
      net.connect(fw2, sc.server, 1e9, milliseconds(1), 500);
      net.node(fw1).set_forwarding_delay(milliseconds(16));
      net.node(fw2).set_forwarding_delay(milliseconds(14));
      break;
    }
    case Table2Setup::kCloudServerLte: {
      // Commercial LTE RAN -> operator core -> inter-ISP transit -> cloud.
      sc.paper_rtt_ms = 120.0;
      net::NodeId enb = net.add_node("enb");
      net::NodeId core = net.add_node("epc");
      net::NodeId transit = net.add_node("transit");
      sc.server = net.add_node("cloud-tw");
      auto profile = wireless::CellularProfile::lte();
      profile.base_one_way_delay = milliseconds(40);  // busy commercial cell
      auto att = wireless::attach_cellular(net, sc.client, enb, profile, seed ^ 0xCE11);
      sc.modulators.push_back(std::move(att.modulator));
      net.connect(enb, core, 10e9, milliseconds(2), 1000);
      net.connect(core, transit, 10e9, milliseconds(5), 1000);
      net.connect(transit, sc.server, 10e9, milliseconds(12), 1000);
      break;
    }
  }
  net.compute_routes();
  return sc;
}

PingStats run_ping(Scenario& scenario, int count, sim::Time interval, std::int32_t bytes) {
  PingStats stats;
  net::Network& net = *scenario.net;
  sim::Simulator& sim = *scenario.sim;

  transport::UdpEndpoint echo(net, scenario.server, 7);
  echo.set_handler([&](net::Packet&& p) {
    echo.send(p.src, p.src_port, p.size_bytes - 28, p.flow);
  });

  transport::UdpEndpoint pinger(net, scenario.client, 1007);
  std::map<net::FlowId, sim::Time> sent_at;
  pinger.set_handler([&](net::Packet&& p) {
    auto it = sent_at.find(p.flow);
    if (it == sent_at.end()) return;
    stats.rtt_ms.add(sim::to_milliseconds(sim.now() - it->second));
    ++stats.received;
    sent_at.erase(it);
  });

  for (int i = 0; i < count; ++i) {
    sim.at(interval * i + sim.now(), [&, i] {
      sent_at[static_cast<net::FlowId>(i + 1)] = sim.now();
      ++stats.sent;
      pinger.send(scenario.server, 7, bytes, static_cast<net::FlowId>(i + 1));
    });
  }
  sim.run_until(sim.now() + interval * count + sim::seconds(2));
  return stats;
}

}  // namespace arnet::core
