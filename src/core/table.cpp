#include "arnet/core/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace arnet::core {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      os << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string fmt(double v, int decimals) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(decimals) << v;
  return ss.str();
}

std::string fmt_mbps(double bps, int decimals) { return fmt(bps / 1e6, decimals) + " Mb/s"; }

std::string fmt_ms(double ms, int decimals) { return fmt(ms, decimals) + " ms"; }

}  // namespace arnet::core
