#pragma once

#include <string>

#include "arnet/mar/offload.hpp"
#include "arnet/obs/registry.hpp"

namespace arnet::core {

/// Inputs of the MOS-style quality-of-experience estimate.
struct QoeInputs {
  double median_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double miss_rate = 0.0;       ///< fraction of results over the deadline
  double result_rate_hz = 0.0;  ///< recognition results per second
  double target_fps = 30.0;
};

/// Mean-opinion-score-like QoE in [1, 5], anchored on the latency numbers
/// the paper collects (§III-B): <=20 ms is Abrash's seamless-AR bound
/// (~excellent), 75 ms is the working interactive budget (~fair at the
/// edge of it), 250 ms is telemetry-class (unusable for AR). Penalties for
/// deadline misses, jitter (p95/median spread), and starved frame rates
/// compose multiplicatively — any single failure ruins the experience,
/// matching how users grade AR.
double qoe_mos(const QoeInputs& in);

/// Convenience: derive the inputs from a finished offloading session.
QoeInputs qoe_inputs(const mar::OffloadStats& stats, double duration_s,
                     double target_fps = 30.0);

const char* qoe_grade(double mos);  ///< "excellent" .. "bad"

/// Publish a session's QoE into `reg` under `entity`: a "mar.mos" gauge plus
/// "mar.latency_p95_ms" / "mar.miss_rate" / "mar.result_rate_hz" gauges for
/// the inputs the score was computed from. Returns the MOS. Lives in core
/// (not mar) because the MOS model depends on mar.
double record_qoe(obs::MetricsRegistry& reg, const std::string& entity,
                  const mar::OffloadStats& stats, double duration_s,
                  double target_fps = 30.0);

}  // namespace arnet::core
