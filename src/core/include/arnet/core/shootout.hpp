#pragma once

#include <cstdint>
#include <string>

#include "arnet/sim/time.hpp"
#include "arnet/slo/slo.hpp"
#include "arnet/trace/sampler.hpp"
#include "arnet/trace/trace.hpp"

namespace arnet::core {

/// Transport under test in the shootout: the paper's ARTP proposal against
/// the TCP loss-based baselines (Reno/CUBIC), the model-based BBR, and a
/// congestion-blind paced-UDP QUIC-lite stack.
enum class ShootoutTransport {
  kArtp,
  kReno,
  kCubic,
  kBbr,
  kQuicLite,
};

/// Access network the AR uplink crosses (paper §IV-A technologies).
enum class ShootoutNetwork {
  kWifi,  ///< shared DCF cell with backlogged contender stations
  kLte,   ///< everyday LTE (fading + jitter + spikes)
  kNr5g,  ///< 5G NR: very fast but volatile, with mmWave blockage bursts
};

const char* to_string(ShootoutTransport t);
const char* to_string(ShootoutNetwork n);

/// One cell of the transport shootout grid: a single AR client uploading
/// camera frames at `fps` over one access network, scored frame-by-frame
/// against a delivery deadline (the arvr-sim methodology: every frame ends
/// up exactly one of on-time, late, or incomplete).
struct ShootoutCellConfig {
  ShootoutTransport transport = ShootoutTransport::kArtp;
  ShootoutNetwork network = ShootoutNetwork::kWifi;
  double fps = 30.0;
  std::int64_t frame_bytes = 30000;  ///< ~30 KB compressed camera frame
  sim::Time deadline = sim::milliseconds(50);
  sim::Time duration = sim::seconds(20);
  int wifi_contenders = 2;  ///< backlogged stations sharing the WiFi cell

  std::string name() const;
};

/// Per-cell outcome. `frames_incomplete` counts every submitted frame that
/// never fully arrived (shed, expired, or still in flight at the end), so
/// on_time + late + incomplete == sent.
struct ShootoutCellResult {
  std::string name;
  std::int64_t frames_sent = 0;
  std::int64_t frames_on_time = 0;
  std::int64_t frames_late = 0;
  std::int64_t frames_incomplete = 0;
  double hit_ratio = 0.0;  ///< on_time / sent
  double mean_ms = 0.0;    ///< completed-frame delivery latency
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  /// Application bytes delivered per second of simulated time, in Mb/s
  /// (completed frames for ARTP/QUIC-lite, stream bytes for TCP).
  double goodput_mbps = 0.0;
  double sim_seconds = 0.0;
  std::int64_t sim_events = 0;
};

/// Per-cell telemetry attachments (all optional, caller-owned, outliving
/// the call). With a tracer, every submitted frame mints a trace id and
/// records capture/done/miss events (plus a drop event for frames that never
/// reassemble), so the tail sampler sees the same span stream the fleet
/// produces. The SLO tracker observes every frame's classification: on-time
/// and late frames by latency, incompletes as explicit misses.
struct ShootoutTelemetry {
  trace::Tracer* tracer = nullptr;
  trace::TailSampler* sampler = nullptr;  ///< wired as the tracer's sink
  slo::SloTracker* slo = nullptr;
};

/// Builds the cell's topology + transport, runs it for `cfg.duration` (plus a
/// short drain so in-flight frames classify), and scores every frame.
/// Deterministic per (cfg, seed): equal inputs give byte-equal results.
ShootoutCellResult run_shootout_cell(const ShootoutCellConfig& cfg, std::uint64_t seed);

/// Telemetry variant: same contract and identical scoring; the telemetry
/// stream is an observer and never perturbs the cell (fingerprint-neutral).
ShootoutCellResult run_shootout_cell(const ShootoutCellConfig& cfg, std::uint64_t seed,
                                     const ShootoutTelemetry& telemetry);

}  // namespace arnet::core
