#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace arnet::core {

/// Fixed-width ASCII table used by every bench harness to print the
/// reproduced paper tables/figures in a uniform format.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Number formatting helpers for table cells.
std::string fmt(double v, int decimals = 2);
std::string fmt_mbps(double bps, int decimals = 2);
std::string fmt_ms(double ms, int decimals = 1);

}  // namespace arnet::core
