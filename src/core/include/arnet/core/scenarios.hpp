#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/wireless/cellular.hpp"
#include "arnet/wireless/coverage.hpp"

namespace arnet::core {

/// A self-contained simulated deployment: simulator + topology + the moving
/// parts (cellular modulators, coverage processes) that keep it realistic.
struct Scenario {
  std::string name;
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::Network> net;
  net::NodeId client = 0;
  net::NodeId server = 0;
  double paper_rtt_ms = 0.0;  ///< the value Table II reports for this setup
  std::vector<std::unique_ptr<wireless::CellularModulator>> modulators;
  std::vector<std::unique_ptr<wireless::CoverageProcess>> coverage;

  void start_dynamics() {
    for (auto& m : modulators) m->start();
    for (auto& c : coverage) c->start();
  }
};

/// The four measurement setups of Table II (paper §IV-B, CloudRidAR).
enum class Table2Setup {
  kLocalServerWifi,      ///< server in the same room, direct WiFi: ~8 ms
  kCloudServerWifi,      ///< Google cloud (Taiwan) via campus WiFi: ~36 ms
  kUniversityServerWifi, ///< on-campus server behind middleboxes: ~72 ms
  kCloudServerLte,       ///< Google cloud via commercial LTE: ~120 ms
};

const char* to_string(Table2Setup s);

/// Builds the emulated topology for one Table II row. Deterministic per
/// seed; dynamics (cellular fading) must be started by the caller.
Scenario make_table2_scenario(Table2Setup setup, std::uint64_t seed);

/// UDP echo measurement over a scenario: `count` probes of `bytes` bytes.
struct PingStats {
  sim::Samples rtt_ms;
  int sent = 0;
  int received = 0;
};
PingStats run_ping(Scenario& scenario, int count, sim::Time interval,
                   std::int32_t bytes = 200);

}  // namespace arnet::core
