#include "arnet/core/shootout.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "arnet/net/link.hpp"
#include "arnet/net/network.hpp"
#include "arnet/sim/simulator.hpp"
#include "arnet/sim/stats.hpp"
#include "arnet/transport/artp.hpp"
#include "arnet/transport/quic_lite.hpp"
#include "arnet/transport/tcp.hpp"
#include "arnet/transport/udp.hpp"
#include "arnet/wireless/cellular.hpp"
#include "arnet/wireless/wifi_bridge.hpp"

namespace arnet::core {

const char* to_string(ShootoutTransport t) {
  switch (t) {
    case ShootoutTransport::kArtp: return "ARTP";
    case ShootoutTransport::kReno: return "Reno";
    case ShootoutTransport::kCubic: return "CUBIC";
    case ShootoutTransport::kBbr: return "BBR";
    case ShootoutTransport::kQuicLite: return "QUIC-lite";
  }
  return "?";
}

const char* to_string(ShootoutNetwork n) {
  switch (n) {
    case ShootoutNetwork::kWifi: return "WiFi";
    case ShootoutNetwork::kLte: return "LTE";
    case ShootoutNetwork::kNr5g: return "5G-NR";
  }
  return "?";
}

std::string ShootoutCellConfig::name() const {
  return std::string(to_string(transport)) + "/" + to_string(network);
}

namespace {

constexpr net::Port kArClientPort = 5000;
constexpr net::Port kArServerPort = 6000;
constexpr net::FlowId kArFlow = 1;

/// Frame-level scoreboard shared by all five transports: completion events
/// flow in here, and whatever never completes is incomplete by subtraction.
struct FrameScore {
  std::int64_t sent = 0;
  std::int64_t on_time = 0;
  std::int64_t late = 0;
  std::int64_t delivered_app_bytes = 0;
  sim::Samples latency_ms;

  void complete(sim::Time latency, sim::Time deadline, std::int64_t bytes) {
    if (latency <= deadline) {
      ++on_time;
    } else {
      ++late;
    }
    latency_ms.add(sim::to_milliseconds(latency));
    delivered_app_bytes += bytes;
  }
};

/// Everything that must stay alive while the cell runs.
struct CellPlant {
  std::unique_ptr<wireless::WifiSharedMedium> medium;
  std::vector<std::unique_ptr<wireless::CellularModulator>> modulators;
  std::vector<std::unique_ptr<transport::UdpEndpoint>> sinks;
  std::vector<std::unique_ptr<transport::CbrSource>> contenders;
  net::Link* uplink = nullptr;  ///< client->server (informational)
};

/// Builds the access network between client and server for the chosen leg.
void build_network(const ShootoutCellConfig& cfg, net::Network& net, net::NodeId client,
                   net::NodeId server, std::uint64_t seed, CellPlant& plant) {
  switch (cfg.network) {
    case ShootoutNetwork::kWifi: {
      // One DCF cell: the AR client plus `wifi_contenders` backlogged
      // stations share the medium; the AP->client downlink (ACKs, feedback)
      // is modeled contention-free.
      net::Link::Config up;
      up.rate_bps = 30e6;
      up.delay = sim::milliseconds(2);
      up.queue_packets = 200;
      up.name = "wifi-up";
      net::Link::Config down;
      down.rate_bps = 54e6;
      down.delay = sim::milliseconds(2);
      down.queue_packets = 200;
      down.name = "wifi-down";
      auto [ul, dl] = net.connect(client, server, std::move(up), std::move(down));
      plant.uplink = ul;
      plant.medium = std::make_unique<wireless::WifiSharedMedium>(net.sim());
      plant.medium->attach(*ul, 54e6, "ar-client");
      for (int i = 0; i < cfg.wifi_contenders; ++i) {
        net::NodeId sta = net.add_node("sta-" + std::to_string(i));
        net::Link::Config sup;
        sup.rate_bps = 30e6;
        sup.delay = sim::milliseconds(2);
        sup.queue_packets = 100;
        sup.name = "sta-up-" + std::to_string(i);
        net::Link::Config sdown;
        sdown.rate_bps = 54e6;
        sdown.delay = sim::milliseconds(2);
        sdown.name = "sta-down-" + std::to_string(i);
        auto [cul, cdl] = net.connect(sta, server, std::move(sup), std::move(sdown));
        (void)cdl;
        plant.medium->attach(*cul, 54e6, "sta-" + std::to_string(i));
        net::Port sink_port = static_cast<net::Port>(6100 + i);
        plant.sinks.push_back(
            std::make_unique<transport::UdpEndpoint>(net, server, sink_port));
        transport::CbrSource::Config cc;
        cc.rate_bps = 40e6;  // well above any fair share: permanently backlogged
        cc.flow = static_cast<net::FlowId>(10 + i);
        plant.contenders.push_back(std::make_unique<transport::CbrSource>(
            net, sta, static_cast<net::Port>(5100 + i), server, sink_port, cc));
      }
      plant.medium->start();
      for (auto& c : plant.contenders) c->start();
      break;
    }
    case ShootoutNetwork::kLte:
    case ShootoutNetwork::kNr5g: {
      wireless::CellularProfile profile = cfg.network == ShootoutNetwork::kLte
                                              ? wireless::CellularProfile::lte()
                                              : wireless::CellularProfile::nr_5g();
      auto att = wireless::attach_cellular(net, client, server, profile, seed ^ 0xCE11);
      plant.uplink = att.uplink;
      att.modulator->start();
      plant.modulators.push_back(std::move(att.modulator));
      break;
    }
  }
}

}  // namespace

ShootoutCellResult run_shootout_cell(const ShootoutCellConfig& cfg, std::uint64_t seed) {
  return run_shootout_cell(cfg, seed, ShootoutTelemetry{});
}

ShootoutCellResult run_shootout_cell(const ShootoutCellConfig& cfg, std::uint64_t seed,
                                     const ShootoutTelemetry& telemetry) {
  sim::Simulator sim;
  net::Network net(sim, seed);
  net::NodeId client = net.add_node("ar-client");
  net::NodeId server = net.add_node("edge-server");

  CellPlant plant;
  build_network(cfg, net, client, server, seed, plant);

  FrameScore score;

  // Telemetry is a pure observer: the trace/SLO stream reads completion
  // events the scoring path already produces and feeds nothing back.
  trace::EntityId ent = trace::kNoEntity;
  if (telemetry.tracer) {
    ent = telemetry.tracer->register_entity(cfg.name());
    if (telemetry.sampler) telemetry.tracer->set_sink(telemetry.sampler);
  }
  // Live trace context per in-flight frame id; erased on classification so
  // whatever remains at the end is provably unclassified.
  std::map<std::uint32_t, trace::TraceContext> frame_ctx;
  auto ctx_of = [&](std::uint32_t fid) {
    auto it = frame_ctx.find(fid);
    return it == frame_ctx.end() ? trace::TraceContext{} : it->second;
  };
  auto record = [&](trace::EventKind kind, const trace::TraceContext& ctx, std::uint64_t uid,
                    std::int64_t size, const char* reason = nullptr) {
    if (!telemetry.tracer) return;
    trace::TraceEvent e;
    e.time = sim.now();
    e.uid = uid;
    e.size = size;
    e.trace_id = ctx.trace_id;
    e.span_id = ctx.span_id;
    e.kind = kind;
    e.reason = reason;
    telemetry.tracer->record(ent, e);
  };
  // One frame, one verdict: complete frames observe their latency (late ==
  // miss for the SLO), incompletes record an explicit drop + miss.
  auto classify = [&](std::uint32_t fid, bool complete, sim::Time latency) {
    const trace::TraceContext ctx = ctx_of(fid);
    frame_ctx.erase(fid);
    if (!complete) {
      record(trace::EventKind::kDrop, ctx, fid, 0, "incomplete");
      record(trace::EventKind::kFrameMiss, ctx, fid, 0, "incomplete");
      if (telemetry.slo) telemetry.slo->observe_miss(sim.now());
      return;
    }
    const bool missed = latency > cfg.deadline;
    record(missed ? trace::EventKind::kFrameMiss : trace::EventKind::kFrameDone, ctx, fid,
           static_cast<std::int64_t>(latency), missed ? "deadline" : nullptr);
    if (telemetry.slo) telemetry.slo->observe(sim.now(), sim::to_milliseconds(latency));
  };

  // Transport plumbing. Exactly one of these sets of endpoints is live; the
  // submit closure hides which one.
  std::unique_ptr<transport::ArtpSender> artp_tx;
  std::unique_ptr<transport::ArtpReceiver> artp_rx;
  std::unique_ptr<transport::TcpSource> tcp_tx;
  std::unique_ptr<transport::TcpSink> tcp_rx;
  std::unique_ptr<transport::QuicLiteSender> quic_tx;
  std::unique_ptr<transport::QuicLiteReceiver> quic_rx;
  std::function<void()> submit_frame;

  // TCP frames are byte ranges of one stream: frame i is complete when the
  // sink's cumulative byte count crosses boundary (i+1)*frame_bytes.
  struct TcpFrame {
    std::uint32_t frame_id = 0;
    std::int64_t boundary = 0;
    sim::Time submitted_at = 0;
  };
  std::deque<TcpFrame> tcp_frames;
  std::int64_t tcp_submitted_bytes = 0;

  switch (cfg.transport) {
    case ShootoutTransport::kArtp: {
      transport::ArtpSenderConfig scfg;
      // Provision the delay-gradient controller at the media's nominal rate
      // (frame_bytes x fps), the way real-time stacks seed their start
      // bitrate from the encoder target. The controller default of 1 Mb/s
      // with +200 kb/s per epoch never catches a 7.2 Mb/s frame source:
      // the staging backlog blows past the 250 ms staleness bound within
      // four frames and from then on every message is shed before a single
      // chunk reaches the wire — zero deliveries, complete or otherwise.
      transport::DelayGradientController::Config dg;
      dg.initial_rate_bps = static_cast<double>(cfg.frame_bytes) * 8.0 * cfg.fps;
      std::vector<transport::ArtpPathConfig> paths(1);
      paths[0].controller = std::make_unique<transport::DelayGradientController>(dg);
      artp_tx = std::make_unique<transport::ArtpSender>(net, client, kArClientPort, server,
                                                        kArServerPort, kArFlow, scfg,
                                                        std::move(paths));
      artp_rx = std::make_unique<transport::ArtpReceiver>(net, server, kArServerPort);
      artp_rx->set_message_callback([&](const transport::ArtpDelivery& d) {
        // Incomplete (expired) deliveries stay in the incomplete bucket.
        if (d.complete) score.complete(d.latency(), cfg.deadline, cfg.frame_bytes);
        classify(d.frame_id, d.complete, d.latency());
      });
      submit_frame = [&] {
        transport::ArtpMessageSpec spec;
        spec.bytes = cfg.frame_bytes;
        spec.tclass = net::TrafficClass::kBestEffortLossRecovery;
        spec.priority = net::Priority::kMediumNoDelay;
        spec.app = net::AppData::kVideoReferenceFrame;
        // kMediumNoDelay is a droppable band, whose default stale-after
        // (60 ms) is shorter than one 30 KB frame's serialization at the
        // delay-gradient controller's initial 1 Mb/s — every frame would be
        // shed mid-flight before the rate ramps. Keep frames eligible until
        // the receiver's own 250 ms expiry would reclassify them anyway.
        spec.stale_after = sim::milliseconds(250);
        spec.frame_id = static_cast<std::uint32_t>(score.sent);
        spec.trace = ctx_of(spec.frame_id);
        artp_tx->send_message(spec);
      };
      break;
    }
    case ShootoutTransport::kReno:
    case ShootoutTransport::kCubic:
    case ShootoutTransport::kBbr: {
      transport::TcpSource::Config tc;
      tc.flavor = cfg.transport == ShootoutTransport::kReno    ? transport::TcpFlavor::kReno
                  : cfg.transport == ShootoutTransport::kCubic ? transport::TcpFlavor::kCubic
                                                               : transport::TcpFlavor::kBbr;
      tc.sack = true;
      tcp_rx = std::make_unique<transport::TcpSink>(net, server, kArServerPort);
      tcp_tx = std::make_unique<transport::TcpSource>(net, client, kArClientPort, server,
                                                      kArServerPort, kArFlow, tc);
      submit_frame = [&] {
        tcp_submitted_bytes += cfg.frame_bytes;
        tcp_frames.push_back(
            {static_cast<std::uint32_t>(score.sent), tcp_submitted_bytes, sim.now()});
        tcp_tx->send(cfg.frame_bytes);
      };
      break;
    }
    case ShootoutTransport::kQuicLite: {
      transport::QuicLiteSender::Config qs;
      quic_tx = std::make_unique<transport::QuicLiteSender>(net, client, kArClientPort, server,
                                                            kArServerPort, kArFlow, qs);
      transport::QuicLiteReceiver::Config qr;
      qr.deadline = cfg.deadline;
      quic_rx = std::make_unique<transport::QuicLiteReceiver>(net, server, kArServerPort, qr);
      quic_rx->set_frame_callback([&](const transport::QuicFrameResult& r) {
        if (r.complete) score.complete(r.latency(), cfg.deadline, cfg.frame_bytes);
        classify(r.frame_id, r.complete, r.latency());
      });
      submit_frame = [&] {
        quic_tx->send_frame(cfg.frame_bytes,
                            ctx_of(static_cast<std::uint32_t>(score.sent)));
      };
      break;
    }
  }

  // Frame clock: frame i is submitted at the absolute instant i/fps, so a
  // cell of duration D carries exactly floor(D*fps) frames. (A relative
  // `after(1/fps)` chain accumulates integer-ns truncation — 90 ticks of
  // 33'333'333 ns land 30 ns short of 3 s and a 91st frame sneaks in.)
  std::function<void()> frame_tick = [&] {
    const auto fid = static_cast<std::uint32_t>(score.sent);
    if (telemetry.tracer) {
      const trace::TraceContext ctx = telemetry.tracer->new_trace();
      frame_ctx.emplace(fid, ctx);
      record(trace::EventKind::kFrameCapture, ctx, fid, cfg.frame_bytes);
    }
    submit_frame();
    ++score.sent;
    const sim::Time next =
        sim::from_seconds(static_cast<double>(score.sent) / std::max(1e-9, cfg.fps));
    if (next < cfg.duration) sim.at(next, frame_tick);
  };
  frame_tick();

  // TCP completion poll: the sink has no frame notion, so watch its byte
  // counter on a 1 ms clock (quantizes latency upward by <=1 ms, identically
  // for all three TCP flavors).
  std::function<void()> tcp_poll = [&] {
    while (!tcp_frames.empty() && tcp_rx->received_bytes() >= tcp_frames.front().boundary) {
      const TcpFrame& front = tcp_frames.front();
      score.complete(sim.now() - front.submitted_at, cfg.deadline, cfg.frame_bytes);
      classify(front.frame_id, true, sim.now() - front.submitted_at);
      tcp_frames.pop_front();
    }
    sim.after(sim::milliseconds(1), tcp_poll);
  };
  if (tcp_rx) tcp_poll();

  // Drain grace so frames in flight at the cutoff get to classify (matches
  // the receivers' 250 ms expiry sweeps).
  sim.run_until(cfg.duration + sim::milliseconds(300));

  // Frames the transports never classified (shed at the sender, stream bytes
  // still buffered at the cutoff) are incomplete by subtraction in the
  // scoreboard; mirror that verdict into the telemetry stream so the sampler
  // and SLO see every submitted frame exactly once.
  if (telemetry.tracer || telemetry.slo) {
    while (!frame_ctx.empty()) classify(frame_ctx.begin()->first, false, 0);
  }

  ShootoutCellResult r;
  r.name = cfg.name();
  r.frames_sent = score.sent;
  r.frames_on_time = score.on_time;
  r.frames_late = score.late;
  r.frames_incomplete = score.sent - score.on_time - score.late;
  r.hit_ratio = score.sent > 0 ? static_cast<double>(score.on_time) / score.sent : 0.0;
  r.mean_ms = score.latency_ms.mean();
  r.p50_ms = score.latency_ms.median();
  r.p90_ms = score.latency_ms.percentile(0.90);
  r.p99_ms = score.latency_ms.percentile(0.99);
  r.min_ms = score.latency_ms.min();
  r.max_ms = score.latency_ms.max();
  r.sim_seconds = sim::to_seconds(cfg.duration);
  std::int64_t app_bytes =
      tcp_rx ? tcp_rx->received_bytes() : score.delivered_app_bytes;
  r.goodput_mbps = r.sim_seconds > 0 ? app_bytes * 8.0 / 1e6 / r.sim_seconds : 0.0;
  r.sim_events = static_cast<std::int64_t>(sim.events_executed());
  return r;
}

}  // namespace arnet::core
