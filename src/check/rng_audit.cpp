#include "arnet/check/rng_audit.hpp"

#include <algorithm>
#include <atomic>
#include <sstream>

namespace arnet::check {
namespace {

// Registered singleton (tools/arnet_analyze/rules.py): the activation seam
// the static pass whitelists by name.
std::atomic<RngAuditor*> g_auditor{nullptr};

std::string hex64(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

RngAuditor::~RngAuditor() {
  // A dangling active pointer would be a use-after-free on the next Rng
  // construction; clear it defensively even though ScopedRngAudit already
  // restores the previous auditor in well-formed code.
  RngAuditor* self = this;
  g_auditor.compare_exchange_strong(self, nullptr,
                                    std::memory_order_acq_rel);
}

std::uint32_t RngAuditor::on_register(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto id = static_cast<std::uint32_t>(streams_.size() + 1);
  Stream s;
  s.seed = seed;
  s.path = "rng#" + std::to_string(id);
  s.owner = std::this_thread::get_id();
  streams_.push_back(std::move(s));

  const auto key = std::make_pair(seed, id);
  auto it = std::lower_bound(first_by_seed_.begin(), first_by_seed_.end(),
                             std::make_pair(seed, std::uint32_t{0}));
  if (it != first_by_seed_.end() && it->first == seed) {
    Finding f;
    f.kind = Violation::kSeedCollision;
    f.stream = id;
    f.other = it->second;
    f.detail = "seed collision: " + streams_[id - 1].path + " reuses seed " +
               hex64(seed) + " of " + streams_[it->second - 1].path;
    findings_.push_back(std::move(f));
  } else {
    first_by_seed_.insert(it, key);
  }
  return id;
}

void RngAuditor::on_fork(std::uint32_t parent, std::uint32_t child,
                         std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  Stream* p = stream_(parent);
  Stream* c = stream_(child);
  if (p == nullptr || c == nullptr) return;
  c->path = p->path + "/" + std::string(label);
}

void RngAuditor::on_draw(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  Stream* s = stream_(id);
  if (s == nullptr) return;
  ++s->draws;
  if (!s->cross_thread_reported && std::this_thread::get_id() != s->owner) {
    s->cross_thread_reported = true;
    Finding f;
    f.kind = Violation::kCrossThreadDraw;
    f.stream = id;
    f.other = 0;
    f.detail = "cross-thread draw: " + s->path +
               " was created on another thread (draw #" +
               std::to_string(s->draws) + ")";
    findings_.push_back(std::move(f));
  }
}

void RngAuditor::label_stream(std::uint32_t id, std::string_view label) {
  std::lock_guard<std::mutex> lock(mu_);
  Stream* s = stream_(id);
  if (s == nullptr) return;
  s->path = std::string(label);
}

std::size_t RngAuditor::streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  return streams_.size();
}

std::uint64_t RngAuditor::draws(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > streams_.size()) return 0;
  return streams_[id - 1].draws;
}

std::string RngAuditor::path(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id > streams_.size()) return {};
  return streams_[id - 1].path;
}

std::vector<RngAuditor::Finding> RngAuditor::findings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return findings_;
}

bool RngAuditor::clean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return findings_.empty();
}

RngAuditor::Stream* RngAuditor::stream_(std::uint32_t id) {
  if (id == 0 || id > streams_.size()) return nullptr;
  return &streams_[id - 1];
}

RngAuditor* active_rng_auditor() noexcept {
  return g_auditor.load(std::memory_order_acquire);
}

ScopedRngAudit::ScopedRngAudit(RngAuditor& auditor)
    : prev_(g_auditor.exchange(&auditor, std::memory_order_acq_rel)) {}

ScopedRngAudit::~ScopedRngAudit() {
  g_auditor.store(prev_, std::memory_order_release);
}

}  // namespace arnet::check
