#include "arnet/check/conservation.hpp"

namespace arnet::check {

void ConservationAuditor::violation(const std::string& what) {
  ++violations_;
  ARNET_CHECK(false, "packet conservation: ", what);
}

void ConservationAuditor::on_inject(sim::Time now, const net::Packet& p) {
  if (p.uid == 0) {
    violation(detail::format("packet injected without uid (flow ", p.flow, ", t=", now, ")"));
    return;
  }
  auto [it, inserted] = outstanding_.emplace(p.uid, p.flow);
  if (!inserted) {
    violation(detail::format("uid ", p.uid, " re-injected while still in flight (flow ",
                             p.flow, ", t=", now, ")"));
    return;
  }
  ++flows_[p.flow].injected;
}

void ConservationAuditor::on_deliver(sim::Time now, const net::Packet& p, net::NodeId at) {
  auto it = outstanding_.find(p.uid);
  if (it == outstanding_.end()) {
    violation(detail::format("delivery of uid ", p.uid, " at node ", at,
                             " which is not in flight (flow ", p.flow, ", t=", now,
                             ") — double delivery or unreported injection"));
    return;
  }
  outstanding_.erase(it);
  ++flows_[p.flow].delivered;
}

void ConservationAuditor::on_drop(sim::Time now, const net::Packet& p, net::DropReason reason) {
  auto it = outstanding_.find(p.uid);
  if (it == outstanding_.end()) {
    violation(detail::format("drop (", net::to_string(reason), ") of uid ", p.uid,
                             " which is not in flight (flow ", p.flow, ", t=", now,
                             ") — double drop or unreported injection"));
    return;
  }
  outstanding_.erase(it);
  ++flows_[p.flow].dropped;
  ++drops_by_reason_[reason];
}

void ConservationAuditor::checkpoint() {
  // Tally the in-flight set per flow and compare against the counters. The
  // counters move on notification events, the set on uid identity, so any
  // missed/duplicated event desynchronizes the two views.
  std::map<net::FlowId, std::int64_t> live;
  for (const auto& [uid, flow] : outstanding_) ++live[flow];
  for (const auto& [flow, c] : flows_) {
    std::int64_t in_flight = 0;
    if (auto it = live.find(flow); it != live.end()) in_flight = it->second;
    if (c.injected != c.delivered + c.dropped + in_flight) {
      violation(detail::format("flow ", flow, ": injected=", c.injected,
                               " != delivered=", c.delivered, " + dropped=", c.dropped,
                               " + in_flight=", in_flight));
    }
  }
  for (const auto& [flow, n] : live) {
    if (flows_.find(flow) == flows_.end()) {
      violation(detail::format("flow ", flow, ": ", n, " packets in flight but no counters"));
    }
  }
}

void ConservationAuditor::expect_drained() {
  checkpoint();
  if (!outstanding_.empty()) {
    const auto& [uid, flow] = *outstanding_.begin();
    violation(detail::format(outstanding_.size(),
                             " packets still in flight after drain; first: uid ", uid,
                             " (flow ", flow, ") — a component lost it without "
                             "reporting a drop"));
  }
}

std::int64_t ConservationAuditor::drops_for(net::DropReason r) const {
  auto it = drops_by_reason_.find(r);
  return it == drops_by_reason_.end() ? 0 : it->second;
}

}  // namespace arnet::check
