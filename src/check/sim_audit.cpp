#include "arnet/check/sim_audit.hpp"

#include "arnet/check/assert.hpp"

namespace arnet::check {

void SimAuditor::violation(const std::string& what) {
  ++violations_;
  ARNET_CHECK(false, "simulator event order: ", what);
}

void SimAuditor::on_execute(sim::Time t, std::uint64_t seq, std::uint64_t id) {
  ++events_;
  if (any_) {
    if (t < last_time_) {
      violation(detail::format("event ", id, " fires at t=", t,
                               "ns after the clock reached t=", last_time_, "ns"));
    } else if (t == last_time_ && seq <= last_seq_) {
      violation(detail::format("FIFO tie-break broken at t=", t, "ns: event ", id,
                               " (seq ", seq, ") ran after seq ", last_seq_));
    }
  }
  any_ = true;
  last_time_ = t;
  last_seq_ = seq;
}

void SimAuditor::on_cancel(std::uint64_t id, bool issued) {
  if (!issued) {
    violation(detail::format("cancel of handle ", id, " which the simulator never issued"));
  }
}

void SimAuditor::finish() {
  if (sim_ && sim_->pending_events() == 0 && sim_->cancel_backlog() > 0) {
    violation(detail::format(sim_->cancel_backlog(),
                             " stale cancel tombstones after drain — handles were "
                             "cancelled after their events fired"));
  }
}

}  // namespace arnet::check
