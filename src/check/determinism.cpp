#include "arnet/check/determinism.hpp"

#include "arnet/check/assert.hpp"

namespace arnet::check {

void TraceRecorder::attach(net::Network& net) {
  net.add_observer(this);
  nets_.push_back(&net);
}

void TraceRecorder::attach(sim::Simulator& sim) {
  sim.add_observer(this);
  sims_.push_back(&sim);
}

void TraceRecorder::detach_all() {
  for (net::Network* n : nets_) n->remove_observer(this);
  nets_.clear();
  for (sim::Simulator* s : sims_) s->remove_observer(this);
  sims_.clear();
}

void TraceRecorder::mix(std::uint64_t v) {
  // FNV-1a over the value's 8 bytes, LSB first.
  for (int i = 0; i < 8; ++i) {
    fp_ ^= (v >> (8 * i)) & 0xFF;
    fp_ *= 1099511628211ULL;
  }
}

void TraceRecorder::record_packet(std::uint64_t tag, sim::Time now, const net::Packet& p) {
  ++records_;
  mix(tag);
  mix(static_cast<std::uint64_t>(now));
  mix(p.uid);
  mix(p.flow);
  mix(static_cast<std::uint64_t>(p.size_bytes));
}

void TraceRecorder::on_inject(sim::Time now, const net::Packet& p) {
  record_packet(0x01, now, p);
}

void TraceRecorder::on_deliver(sim::Time now, const net::Packet& p, net::NodeId at) {
  record_packet(0x100ULL | at, now, p);
}

void TraceRecorder::on_drop(sim::Time now, const net::Packet& p, net::DropReason reason) {
  record_packet(0x200ULL | static_cast<std::uint64_t>(reason), now, p);
}

void TraceRecorder::on_execute(sim::Time t, std::uint64_t seq, std::uint64_t /*id*/) {
  ++records_;
  mix(0x03);
  mix(static_cast<std::uint64_t>(t));
  mix(seq);
}

DeterminismReport DeterminismHarness::run_twice(const Scenario& scenario, std::uint64_t seed) {
  DeterminismReport report;
  report.seed = seed;
  {
    TraceRecorder first;
    scenario(seed, first);
    report.fingerprint_first = first.fingerprint();
    report.records_first = first.records();
  }
  {
    TraceRecorder second;
    scenario(seed, second);
    report.fingerprint_second = second.fingerprint();
    report.records_second = second.records();
  }
  return report;
}

DeterminismReport DeterminismHarness::verify(const Scenario& scenario, std::uint64_t seed) {
  DeterminismReport report = run_twice(scenario, seed);
  ARNET_CHECK(report.deterministic(), "same-seed runs diverged (seed ", report.seed,
              "): fingerprints ", report.fingerprint_first, " vs ", report.fingerprint_second,
              ", ", report.records_first, " vs ", report.records_second, " trace records");
  return report;
}

}  // namespace arnet::check
