#include "arnet/check/assert.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace arnet::check {
namespace {

std::atomic<FailPolicy> g_policy{FailPolicy::kAbort};
std::atomic<std::uint64_t> g_failures{0};

// Under kCountAndLog only the first few diagnostics are printed; a broken
// invariant in a per-packet path would otherwise flood stderr.
constexpr std::uint64_t kMaxLoggedFailures = 20;

// The failure hook is process-global like the policy, but hook installs
// happen at scenario setup (single-threaded), so a plain mutex around the
// call keeps parallel-runner failures safe without an atomic function.
std::mutex g_hook_mu;
FailureHook g_hook;

}  // namespace

FailPolicy fail_policy() noexcept { return g_policy.load(std::memory_order_relaxed); }
void set_fail_policy(FailPolicy p) noexcept { g_policy.store(p, std::memory_order_relaxed); }

std::uint64_t failure_count() noexcept { return g_failures.load(std::memory_order_relaxed); }
void reset_failures() noexcept { g_failures.store(0, std::memory_order_relaxed); }

FailureHook set_failure_hook(FailureHook hook) {
  std::lock_guard<std::mutex> lock(g_hook_mu);
  std::swap(g_hook, hook);
  return hook;
}

namespace detail {

void fail(const char* macro, const char* expr, const char* file, int line,
          const std::string& message) {
  std::uint64_t n = g_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string diag = std::string(macro) + " failed: (" + expr + ") at " + file + ":" +
                     std::to_string(line);
  if (!message.empty()) diag += " — " + message;
  // Notify the failure hook (flight recorder) before policy dispatch so the
  // dump happens even under kAbort/kThrow. A check failing *inside* the hook
  // must not recurse into it.
  {
    static thread_local bool in_hook = false;
    if (!in_hook) {
      std::lock_guard<std::mutex> lock(g_hook_mu);
      if (g_hook) {
        in_hook = true;
        try {
          g_hook(diag);
        } catch (...) {
          // A diagnostic hook must never turn one failure into another.
        }
        in_hook = false;
      }
    }
  }
  switch (fail_policy()) {
    case FailPolicy::kThrow:
      throw CheckError(diag);
    case FailPolicy::kCountAndLog:
      if (n <= kMaxLoggedFailures) {
        std::fprintf(stderr, "[arnet::check] %s (failure #%llu)\n", diag.c_str(),
                     static_cast<unsigned long long>(n));
        if (n == kMaxLoggedFailures) {
          std::fprintf(stderr, "[arnet::check] further failures counted but not logged\n");
        }
      }
      return;
    case FailPolicy::kAbort:
      break;
  }
  std::fprintf(stderr, "[arnet::check] %s\n", diag.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace arnet::check
