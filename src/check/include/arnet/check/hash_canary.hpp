#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace arnet::check {

/// Hash-seed canary: the runtime half of the arnet-analyze
/// `unordered-iteration` rule.
///
/// Iterating an unordered container on an export/fingerprint/merge path is
/// only a latent bug until the bucket order actually changes — which libstdc++
/// never does on its own, so the bug ships. The canary forces the issue:
/// `PerturbedHash` folds a process-wide seed (env `ARNET_HASH_SEED`, or
/// `set_hash_seed()` in tests) into every hash, so two runs under different
/// seeds visit buckets in different orders. The `determinism_hash_canary`
/// ctest gate runs the fingerprint probe twice under different seeds and
/// fails if any emitted byte differs.
///
/// Reading the seed is a single relaxed load after the one-time env parse;
/// with the default seed 0 `perturbed_mix` still permutes (SplitMix64
/// finalizer), so hashing behaviour does not special-case "canary off".

/// Current canary seed: `ARNET_HASH_SEED` parsed once (base 0: decimal,
/// 0x..., 0...), else 0. `set_hash_seed` overrides it afterwards.
std::uint64_t hash_seed() noexcept;

/// Test seam: override the seed for the rest of the process (or until the
/// next call). Takes effect for hashes computed after the store; rehash or
/// rebuild containers that must observe the change.
void set_hash_seed(std::uint64_t seed) noexcept;

/// SplitMix64 finalizer over `v ^ hash_seed()` — the mixing step
/// PerturbedHash applies on top of std::hash.
std::uint64_t perturbed_mix(std::uint64_t v) noexcept;

/// Drop-in Hasher for repo unordered containers on non-exported paths.
/// Using it makes the container's bucket order a function of the canary
/// seed, so CI's two-seed probe run turns any order-dependent consumer into
/// a hard failure instead of a latent one.
template <typename T>
struct PerturbedHash {
  std::size_t operator()(const T& v) const {
    return static_cast<std::size_t>(
        perturbed_mix(static_cast<std::uint64_t>(std::hash<T>{}(v))));
  }
};

}  // namespace arnet::check
