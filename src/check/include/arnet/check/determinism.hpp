#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "arnet/net/network.hpp"
#include "arnet/net/observer.hpp"
#include "arnet/sim/simulator.hpp"

namespace arnet::check {

/// Streaming FNV-1a fingerprint of a simulation trace. Attach to a Network
/// (packet life-cycle events: inject/deliver/drop, hashed over time, uid,
/// flow, size, node/reason) and optionally to a Simulator (every executed
/// event, hashed over time and scheduling seq). Two runs of a deterministic
/// scenario with the same seed must produce bit-identical fingerprints.
class TraceRecorder final : public net::NetworkObserver, public sim::SimObserver {
 public:
  TraceRecorder() = default;
  // No auto-detach: in the harness pattern the scenario-local Network and
  // Simulator are already gone by the time the recorder dies, so touching
  // the stored pointers here would be use-after-free. If an attached object
  // outlives the recorder instead, call detach_all() before destruction.
  ~TraceRecorder() override = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Record the packet trace of `net`. May be called for several networks
  /// (multi-network scenarios fold into one fingerprint).
  void attach(net::Network& net);

  /// Additionally record the full event trace of `sim`. Strictest mode: any
  /// divergence in event scheduling shows up even if packet traces agree.
  void attach(sim::Simulator& sim);

  /// Unregister from every attached Network/Simulator. All of them must
  /// still be alive; needed only when an attached object outlives this
  /// recorder (otherwise their destruction is the detach).
  void detach_all();

  std::uint64_t fingerprint() const { return fp_; }
  std::uint64_t records() const { return records_; }

  // NetworkObserver
  void on_inject(sim::Time now, const net::Packet& p) override;
  void on_deliver(sim::Time now, const net::Packet& p, net::NodeId at) override;
  void on_drop(sim::Time now, const net::Packet& p, net::DropReason reason) override;
  // SimObserver
  void on_execute(sim::Time t, std::uint64_t seq, std::uint64_t id) override;

 private:
  void mix(std::uint64_t v);
  void record_packet(std::uint64_t tag, sim::Time now, const net::Packet& p);

  std::vector<net::Network*> nets_;
  std::vector<sim::Simulator*> sims_;
  std::uint64_t fp_ = 14695981039346656037ULL;  // FNV-1a 64-bit offset basis
  std::uint64_t records_ = 0;
};

/// Result of a same-seed double run.
struct DeterminismReport {
  std::uint64_t seed = 0;
  std::uint64_t fingerprint_first = 0;
  std::uint64_t fingerprint_second = 0;
  std::uint64_t records_first = 0;
  std::uint64_t records_second = 0;
  bool deterministic() const {
    return fingerprint_first == fingerprint_second && records_first == records_second;
  }
};

/// Determinism harness: run a scenario twice with the same seed and compare
/// trace fingerprints. The scenario builds its own Simulator/Network(s) from
/// the seed and attaches the recorder before traffic starts:
///
///   auto report = DeterminismHarness::verify([](std::uint64_t seed,
///                                               check::TraceRecorder& trace) {
///     sim::Simulator sim;
///     net::Network net(sim, seed);
///     trace.attach(net);
///     trace.attach(sim);
///     ... build topology, run ...
///   }, /*seed=*/42);
class DeterminismHarness {
 public:
  using Scenario = std::function<void(std::uint64_t seed, TraceRecorder& trace)>;

  /// Run twice, report; never fails by itself.
  static DeterminismReport run_twice(const Scenario& scenario, std::uint64_t seed);

  /// run_twice + ARNET_CHECK that the traces are bit-identical.
  static DeterminismReport verify(const Scenario& scenario, std::uint64_t seed);
};

}  // namespace arnet::check
