#pragma once

#include <cstdint>
#include <string>

#include "arnet/sim/simulator.hpp"

namespace arnet::check {

/// Event-order auditor for the discrete-event engine. Attached to a
/// Simulator it machine-checks the engine's scheduling contract on every
/// executed event:
///   - monotonic time: an event never fires before the previous one,
///   - FIFO tie-break: among equal-time events, scheduling order (seq) wins,
///   - cancel hygiene: cancel() only sees handles the engine actually issued,
///     and (at finish(), once drained) no cancel tombstones remain — a
///     leftover tombstone means a handle was cancelled after it fired, which
///     silently skews pending_events() bookkeeping.
/// Violations go through ARNET_CHECK (policy decides abort/throw/count).
class SimAuditor final : public sim::SimObserver {
 public:
  explicit SimAuditor(sim::Simulator& sim) : sim_(&sim) { sim.add_observer(this); }
  ~SimAuditor() override {
    if (sim_) sim_->remove_observer(this);
  }
  SimAuditor(const SimAuditor&) = delete;
  SimAuditor& operator=(const SimAuditor&) = delete;

  void on_execute(sim::Time t, std::uint64_t seq, std::uint64_t id) override;
  void on_cancel(std::uint64_t id, bool issued) override;

  /// End-of-run hygiene check; only meaningful once the queue drained.
  void finish();

  std::uint64_t events_seen() const { return events_; }
  std::uint64_t violations() const { return violations_; }

 private:
  void violation(const std::string& what);

  sim::Simulator* sim_;
  bool any_ = false;
  sim::Time last_time_ = 0;
  std::uint64_t last_seq_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace arnet::check
