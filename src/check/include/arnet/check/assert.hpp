#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace arnet::check {

/// What a failed ARNET_ASSERT / ARNET_CHECK does. The policy is a process-wide
/// setting so a scenario driver (or test) can pick the failure mode without
/// recompiling:
///  - kAbort:       print the diagnostic and abort(). Default; a corrupted
///                  trace must never be mistaken for a result.
///  - kThrow:       throw CheckError. Lets tests assert that an invariant
///                  fires, and lets long batch drivers skip a bad scenario.
///  - kCountAndLog: increment failure_count(), log the first few diagnostics,
///                  and continue. For auditing runs that want a full tally.
enum class FailPolicy { kAbort, kThrow, kCountAndLog };

/// Thrown by failed checks under FailPolicy::kThrow.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

FailPolicy fail_policy() noexcept;
void set_fail_policy(FailPolicy p) noexcept;

/// Total failed checks since start / last reset (all policies count).
std::uint64_t failure_count() noexcept;
void reset_failures() noexcept;

/// Observer invoked (with the full diagnostic) when any check fails, *before*
/// the policy dispatch runs — so it fires even when the policy aborts or
/// throws. The trace flight recorder hooks this to dump its rings on the
/// first failure. Re-entrant failures inside the hook are suppressed.
/// Returns the previously installed hook so callers can chain/restore it.
using FailureHook = std::function<void(const std::string& diagnostic)>;
FailureHook set_failure_hook(FailureHook hook);

/// RAII policy override for a scope (exception-safe restore).
class ScopedFailPolicy {
 public:
  explicit ScopedFailPolicy(FailPolicy p) : prev_(fail_policy()) { set_fail_policy(p); }
  ~ScopedFailPolicy() { set_fail_policy(prev_); }
  ScopedFailPolicy(const ScopedFailPolicy&) = delete;
  ScopedFailPolicy& operator=(const ScopedFailPolicy&) = delete;

 private:
  FailPolicy prev_;
};

namespace detail {

/// Dispatch a failed check according to the current policy. Returns (only)
/// under kCountAndLog.
void fail(const char* macro, const char* expr, const char* file, int line,
          const std::string& message);

template <typename... Args>
std::string format(Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return {};
  } else {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
  }
}

}  // namespace detail
}  // namespace arnet::check

/// ARNET_CHECK(cond, msg...) — always-on invariant check (every build type,
/// including NDEBUG/Release). Message arguments are streamed only on failure.
#define ARNET_CHECK(cond, ...)                                                    \
  do {                                                                            \
    if (!(cond)) [[unlikely]] {                                                   \
      ::arnet::check::detail::fail("ARNET_CHECK", #cond, __FILE__, __LINE__,      \
                                   ::arnet::check::detail::format(__VA_ARGS__));  \
    }                                                                             \
  } while (0)

/// ARNET_ASSERT(cond, msg...) — hot-path invariant. Also active in release
/// builds (the simulator's traces are the product; guarding them is worth the
/// branch), but can be compiled out with -DARNET_DISABLE_ASSERTS for
/// microbenchmark builds.
#ifdef ARNET_DISABLE_ASSERTS
#define ARNET_ASSERT(cond, ...) \
  do {                          \
  } while (0)
#else
#define ARNET_ASSERT(cond, ...)                                                   \
  do {                                                                            \
    if (!(cond)) [[unlikely]] {                                                   \
      ::arnet::check::detail::fail("ARNET_ASSERT", #cond, __FILE__, __LINE__,     \
                                   ::arnet::check::detail::format(__VA_ARGS__));  \
    }                                                                             \
  } while (0)
#endif
