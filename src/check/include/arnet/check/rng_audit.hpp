#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace arnet::check {

/// Runtime complement to the arnet-analyze `rng-discipline` static rule:
/// while the static pass proves every stream is *constructed* from a seed
/// with provenance, the auditor watches the streams *live* and flags the two
/// hazards a lexer cannot see:
///
///  - seed collision: two streams registered with the same seed value emit
///    identical draw sequences — correlated "randomness" that silently
///    biases a sweep (the usual cause is a forgotten derive_seed index);
///  - cross-thread draw: a stream constructed on one thread drawn from
///    another. Under the ExperimentRunner contract (DESIGN.md §8) every run
///    owns its world, so a cross-thread draw means shared mutable sim state
///    — the exact class of bug the --jobs byte-identity tests exist for.
///
/// Activation is scoped and explicit (ScopedRngAudit); when no auditor is
/// active a Rng carries stream id 0 and the draw path costs one predicted
/// branch. Streams register automatically from the sim::Rng constructor and
/// fork(); label_stream() attaches a human-readable derivation path that
/// findings echo back.
class RngAuditor {
 public:
  enum class Violation { kSeedCollision, kCrossThreadDraw };

  struct Finding {
    Violation kind;
    std::uint32_t stream;   // offending stream id
    std::uint32_t other;    // colliding stream for kSeedCollision, else 0
    std::string detail;     // human-readable diagnostic with both paths
  };

  RngAuditor() = default;
  ~RngAuditor();
  RngAuditor(const RngAuditor&) = delete;
  RngAuditor& operator=(const RngAuditor&) = delete;

  // --- hooks called by sim::Rng through the activation seam -------------
  /// New root stream; returns its id (> 0).
  std::uint32_t on_register(std::uint64_t seed);
  /// `child` was forked from `parent` under `label`; rewrites the child's
  /// derivation path to "<parent-path>/<label>".
  void on_fork(std::uint32_t parent, std::uint32_t child, std::string_view label);
  /// A draw from stream `id` on the calling thread.
  void on_draw(std::uint32_t id);

  // --- instrumentation-side API -----------------------------------------
  /// Name a stream at its creation site ("population.arrivals"); findings
  /// and paths() echo the label so a collision names both derivations.
  void label_stream(std::uint32_t id, std::string_view label);

  std::size_t streams() const;
  std::uint64_t draws(std::uint32_t id) const;
  std::string path(std::uint32_t id) const;
  std::vector<Finding> findings() const;
  bool clean() const;

 private:
  struct Stream {
    std::uint64_t seed = 0;
    std::string path;
    std::thread::id owner;
    std::uint64_t draws = 0;
    bool cross_thread_reported = false;
  };

  Stream* stream_(std::uint32_t id);  // mu_ held; nullptr for bad id

  mutable std::mutex mu_;
  std::vector<Stream> streams_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> first_by_seed_;  // sorted
  std::vector<Finding> findings_;
};

/// The process-global activation seam sim::Rng consults. Null when auditing
/// is off (the default). Install/remove with ScopedRngAudit.
RngAuditor* active_rng_auditor() noexcept;

/// RAII activation: installs `auditor` as the process-active one, restores
/// the previous (normally null) on destruction. Activate around one scenario
/// run — the harness's run-twice pattern intentionally reuses seeds across
/// runs, which a single auditor spanning both would report as collisions.
class ScopedRngAudit {
 public:
  explicit ScopedRngAudit(RngAuditor& auditor);
  ~ScopedRngAudit();
  ScopedRngAudit(const ScopedRngAudit&) = delete;
  ScopedRngAudit& operator=(const ScopedRngAudit&) = delete;

 private:
  RngAuditor* prev_;
};

}  // namespace arnet::check
